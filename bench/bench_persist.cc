// Persistence bench: cold-start-to-first-insight with a memory-mapped
// snapshot vs a full re-ingest, plus sustained serve-mode throughput.
//
// The corpus is the bench_ingest shape (multi-type synthetic graph
// serialized as N-Triples, ~21 MiB at the default scale). Three phases:
//
//   reingest    parse + offline phase + fact-set selection + one explore
//               request — the build-every-morning cold start
//   save        SaveStore() on the built state; snapshot size on disk
//   load        attach the snapshot + the same explore request — the
//               build-once cold start (the paper's "explore many times")
//
// cold_start_speedup = reingest total / load total; the two runs must
// produce identical insights (checked, reported in the JSON). A final
// serve-mode phase replays a request stream through InsightServer and
// reports requests/sec at 1 and N threads.
//
// Usage: bench_persist [--facts=N] [--types=K] [--requests=N] [--json[=FILE]]
//
// --json writes the numbers as a machine-readable JSON array (default file:
// BENCH_persist.json; schema in bench/README.md).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench/bench_common.h"
#include "src/datagen/synthetic.h"
#include "src/ingest/chunk_source.h"
#include "src/persist/serve.h"
#include "src/persist/snapshot.h"
#include "src/rdf/ntriples.h"

namespace spade {
namespace bench {
namespace {

struct ColdStart {
  std::string mode;  ///< "reingest" | "load"
  double attach_ms = 0;   ///< parse+offline (reingest) or snapshot attach
  double prepare_ms = 0;  ///< fact-set selection (0 when reused)
  double explore_ms = 0;  ///< the first explore request
  double total_ms = 0;
  size_t num_triples = 0;
  uint64_t insight_checksum = 0;
};

struct ServeRun {
  size_t threads = 0;
  uint64_t requests = 0;
  double wall_ms = 0;
  double requests_per_sec = 0;
};

/// Content fingerprint of an explore outcome: exact score bits, keys and
/// descriptions. Equal outcomes => equal checksums.
uint64_t InsightChecksum(const ExploreOutcome& outcome) {
  uint64_t sum = outcome.insights.size();
  for (const Insight& insight : outcome.insights) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(insight.ranked.score), "bitcast");
    std::memcpy(&bits, &insight.ranked.score, sizeof(bits));
    sum = sum * 1000003 + bits;
    for (char c : insight.description) sum = sum * 131 + static_cast<uint8_t>(c);
  }
  return sum;
}

/// The "first insight" request both cold starts answer: the interactive
/// gesture — top insights of one fact set, not a full sweep.
ExploreRequest FirstRequest(const Spade& spade) {
  ExploreRequest req;
  req.top_k = 5;
  const CandidateFactSet* pick = nullptr;
  for (const CandidateFactSet& s : spade.fact_sets()) {
    if (pick == nullptr || s.members.size() < pick->members.size()) pick = &s;
  }
  if (pick != nullptr) req.cfs_names.push_back(pick->name);
  return req;
}

SpadeOptions PersistOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 6;
  options.enumeration.max_measures_per_lattice = 3;
  options.top_k = 10;
  options.num_threads = 1;  // the single-thread cold-start comparison
  return options;
}

ColdStart RunReingest(const std::string& nt, const std::string& save_path,
                      double* save_ms) {
  ColdStart r;
  r.mode = "reingest";
  Timer total;
  Graph graph;
  Spade spade(&graph, PersistOptions());
  {
    Timer t;
    std::istringstream in(nt);
    NTriplesChunkSource source(in, &graph);
    if (!spade.RunOffline(&source).ok()) {
      std::cerr << "bench_persist: offline phase failed\n";
      std::exit(1);
    }
    r.attach_ms = t.ElapsedMillis();
  }
  {
    Timer t;
    if (!spade.PrepareFactSets().ok()) std::exit(1);
    r.prepare_ms = t.ElapsedMillis();
  }
  {
    Timer t;
    auto outcome = spade.Explore(FirstRequest(spade), nullptr);
    if (!outcome.ok()) {
      std::cerr << "bench_persist: explore failed: "
                << outcome.status().ToString() << "\n";
      std::exit(1);
    }
    r.explore_ms = t.ElapsedMillis();
    r.insight_checksum = InsightChecksum(*outcome);
  }
  r.total_ms = total.ElapsedMillis();
  r.num_triples = graph.NumTriples();

  // The save is outside the cold-start clock: it happens once, the evening
  // before.
  Timer t;
  if (!spade.SaveStore(save_path).ok()) {
    std::cerr << "bench_persist: save failed\n";
    std::exit(1);
  }
  *save_ms = t.ElapsedMillis();
  return r;
}

ColdStart RunLoad(const std::string& load_path) {
  ColdStart r;
  r.mode = "load";
  Timer total;
  Graph graph;
  SpadeOptions options = PersistOptions();
  options.load_store = load_path;
  Spade spade(&graph, options);
  {
    Timer t;
    if (!spade.RunOffline().ok()) {
      std::cerr << "bench_persist: snapshot load failed\n";
      std::exit(1);
    }
    r.attach_ms = t.ElapsedMillis();
  }
  {
    Timer t;
    if (!spade.PrepareFactSets().ok()) std::exit(1);
    r.prepare_ms = t.ElapsedMillis();
  }
  {
    Timer t;
    auto outcome = spade.Explore(FirstRequest(spade), nullptr);
    if (!outcome.ok()) std::exit(1);
    r.explore_ms = t.ElapsedMillis();
    r.insight_checksum = InsightChecksum(*outcome);
  }
  r.total_ms = total.ElapsedMillis();
  r.num_triples = graph.NumTriples();
  return r;
}

ServeRun RunServe(const std::string& load_path, size_t threads,
                  size_t requests) {
  Graph graph;
  SpadeOptions options = PersistOptions();
  options.load_store = load_path;
  options.num_threads = threads;
  Spade spade(&graph, options);
  if (!spade.RunOffline().ok() || !spade.PrepareFactSets().ok()) std::exit(1);

  // A mixed request stream: rotate over the fact sets, vary top-k.
  std::ostringstream reqs;
  const auto& sets = spade.fact_sets();
  for (size_t i = 0; i < requests; ++i) {
    reqs << "explore top=" << (2 + i % 4);
    if (!sets.empty() && i % 3 != 0) {
      reqs << " cfs=" << sets[i % sets.size()].name;
    }
    reqs << "\n";
  }
  persist::ServeOptions sopts;
  sopts.num_threads = threads;
  persist::InsightServer server(&spade, sopts);
  std::istringstream in(reqs.str());
  std::ostringstream sink;
  persist::ServeStats stats = server.Serve(in, sink);
  if (stats.num_errors != 0) {
    std::cerr << "bench_persist: serve produced " << stats.num_errors
              << " errors\n";
    std::exit(1);
  }
  ServeRun r;
  r.threads = threads;
  r.requests = stats.num_requests;
  r.wall_ms = stats.wall_ms;
  r.requests_per_sec =
      stats.wall_ms > 0 ? 1000.0 * stats.num_requests / stats.wall_ms : 0;
  return r;
}

void WriteJson(const std::string& path, const ColdStart& full,
               const ColdStart& load, double save_ms, uint64_t snapshot_bytes,
               double speedup, const std::vector<ServeRun>& serves) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_persist: cannot write " << path << "\n";
    std::exit(1);
  }
  auto cold = [&](const ColdStart& r) {
    out << "  {\"kind\": \"cold_start\", \"mode\": \"" << r.mode
        << "\", \"attach_ms\": " << r.attach_ms
        << ", \"prepare_ms\": " << r.prepare_ms
        << ", \"explore_ms\": " << r.explore_ms
        << ", \"total_ms\": " << r.total_ms
        << ", \"num_triples\": " << r.num_triples
        << ", \"insight_checksum\": " << r.insight_checksum << "},\n";
  };
  out << "[\n";
  cold(full);
  cold(load);
  out << "  {\"kind\": \"snapshot\", \"bytes\": " << snapshot_bytes
      << ", \"save_ms\": " << save_ms << "},\n";
  out << "  {\"kind\": \"summary\", \"cold_start_speedup\": " << speedup
      << ", \"identical_insights\": "
      << (full.insight_checksum == load.insight_checksum ? "true" : "false")
      << "},\n";
  for (size_t i = 0; i < serves.size(); ++i) {
    const ServeRun& s = serves[i];
    out << "  {\"kind\": \"serve\", \"threads\": " << s.threads
        << ", \"requests\": " << s.requests << ", \"wall_ms\": " << s.wall_ms
        << ", \"requests_per_sec\": " << s.requests_per_sec << "}"
        << (i + 1 < serves.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  size_t facts = 120000;
  size_t types = 8;
  size_t requests = 48;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--facts=", 8) == 0) {
      facts = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--types=", 8) == 0) {
      types = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_persist.json";
    }
  }

  using spade::bench::ColdStart;
  using spade::bench::Ms;
  using spade::bench::ServeRun;

  // The same corpus shape as bench_ingest: the bench measures the real
  // parse + intern + build path against the mmap attach path.
  spade::SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality.assign(3, 100);
  sopts.num_measures = 6;
  sopts.num_fact_types = types;
  auto graph = spade::GenerateSynthetic(sopts);
  std::ostringstream nt_stream;
  spade::NTriplesWriter::Write(*graph, nt_stream);
  const std::string nt = nt_stream.str();
  graph.reset();

  const std::string snap_path = "bench_persist.spade-snapshot";
  std::cout << "== Snapshot cold start vs full re-ingest (corpus "
            << nt.size() / (1024 * 1024) << " MiB, 1 thread) ==\n\n";

  double save_ms = 0;
  ColdStart full = spade::bench::RunReingest(nt, snap_path, &save_ms);
  uint64_t snapshot_bytes = 0;
  {
    std::ifstream f(snap_path, std::ios::binary | std::ios::ate);
    snapshot_bytes = f ? static_cast<uint64_t>(f.tellg()) : 0;
  }
  ColdStart load = spade::bench::RunLoad(snap_path);
  const double speedup = load.total_ms > 0 ? full.total_ms / load.total_ms : 0;

  spade::TablePrinter table(
      {"mode", "attach ms", "prepare ms", "explore ms", "total ms"});
  for (const ColdStart* r : {&full, &load}) {
    table.AddRow({r->mode, Ms(r->attach_ms), Ms(r->prepare_ms),
                  Ms(r->explore_ms), Ms(r->total_ms)});
  }
  table.Print(std::cout);
  std::cout << "\nsnapshot " << snapshot_bytes / (1024 * 1024) << " MiB, saved in "
            << Ms(save_ms) << " ms\n";
  std::cout << "cold-start speedup " << Ms(speedup) << "x, insights "
            << (full.insight_checksum == load.insight_checksum
                    ? "identical"
                    : "DIFFER — the snapshot path is wrong")
            << "\n\n";

  std::vector<ServeRun> serves;
  serves.push_back(spade::bench::RunServe(snap_path, 1, requests));
  const size_t hw = spade::ThreadPool::HardwareConcurrency();
  if (hw > 1) serves.push_back(spade::bench::RunServe(snap_path, hw, requests));
  spade::TablePrinter serve_table(
      {"threads", "requests", "wall ms", "req/s"});
  for (const ServeRun& s : serves) {
    char rps[32];
    std::snprintf(rps, sizeof(rps), "%.1f", s.requests_per_sec);
    serve_table.AddRow({std::to_string(s.threads), std::to_string(s.requests),
                        Ms(s.wall_ms), rps});
  }
  std::cout << "== Serve mode throughput ==\n\n";
  serve_table.Print(std::cout);

  if (!json_path.empty()) {
    spade::bench::WriteJson(json_path, full, load, save_ms, snapshot_bytes,
                            speedup, serves);
  }
  std::remove(snap_path.c_str());
  const bool ok = full.insight_checksum == load.insight_checksum;
  if (!ok) std::cout << "\ninsight checksums DIFFER\n";
  return ok ? 0 : 1;
}
