// Regenerates Table 3 (Experiment 2, quality): the number of aggregates that
// PGCube* / PGCube_d compute incorrectly on each real graph, measured against
// the reference evaluator. Paper shape (R4): native RDF graphs with many
// multi-valued attributes (CEOs, NASA, Nobel) err on 9-21% of aggregates;
// Airline (single-valued relational data) errs on none; PGCube_d errs on
// fewer aggregates than PGCube*.

#include "bench/bench_common.h"
#include "src/core/pgcube.h"
#include "src/core/reference.h"

namespace spade {
namespace bench {
namespace {

bool Differs(const AggregateResult& ref, const AggregateResult& got) {
  if (ref.groups.size() != got.groups.size()) return true;
  for (size_t i = 0; i < ref.groups.size(); ++i) {
    if (ref.groups[i].dim_values != got.groups[i].dim_values) return true;
    double a = ref.groups[i].value, b = got.groups[i].value;
    if (std::fabs(a - b) > 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)})) {
      return true;
    }
  }
  return false;
}

void Main() {
  std::cout << "== Table 3: PGCube* and PGCube_d errors on real-graph "
               "aggregates ==\n\n";
  TablePrinter table({"Dataset", "#aggs", "#wrong PGCube*", "#wrong PGCube_d",
                      "wrong%*", "wrong%_d"});
  for (RealDataset ds : AllRealDatasets()) {
    Prepared prep = PrepareDataset(ds, BenchOptions());
    size_t total = 0, wrong_star = 0, wrong_d = 0;
    for (uint32_t cfs_id = 0; cfs_id < prep.fact_sets.size(); ++cfs_id) {
      CfsIndex index(prep.fact_sets[cfs_id].members);
      for (const auto& spec : prep.lattices[cfs_id]) {
        auto reference =
            EvaluateReference(prep.spade->store(), cfs_id, index, spec);
        auto star = EvaluateLatticePgCube(prep.spade->store(), cfs_id,
                                          index, spec, PgCubeVariant::kStar,
                                          nullptr, nullptr);
        auto dist = EvaluateLatticePgCube(prep.spade->store(), cfs_id,
                                          index, spec,
                                          PgCubeVariant::kDistinct, nullptr,
                                          nullptr);
        for (size_t i = 0; i < reference.size(); ++i) {
          ++total;
          wrong_star += Differs(reference[i], star[i]);
          wrong_d += Differs(reference[i], dist[i]);
        }
      }
    }
    table.AddRow({prep.name, std::to_string(total), std::to_string(wrong_star),
                  std::to_string(wrong_d),
                  total ? Pct(static_cast<double>(wrong_star) / total) : "-",
                  total ? Pct(static_cast<double>(wrong_d) / total) : "-"});
  }
  table.Print(std::cout);
  std::cout << "\nR4: Airline must be error-free; multi-valued graphs must\n"
            << "show substantial error rates, with PGCube_d < PGCube*.\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main() {
  spade::bench::Main();
  return 0;
}
