// Regenerates Figure 9 (Experiment 2, run time): Aggregate Evaluation time of
// MVDCube vs PGCube* vs PGCube_d on the six real graphs, derivations on,
// early-stop off. Paper shape (R2/R3): MVDCube gains 20-80% over PGCube* and
// 30-83% over PGCube_d whenever more than ~15 aggregates are evaluated.

#include "bench/bench_common.h"
#include "src/core/mvdcube.h"
#include "src/core/pgcube.h"

namespace spade {
namespace bench {
namespace {

struct Times {
  double mvd_ms = 0, pg_star_ms = 0, pg_d_ms = 0;
  size_t num_mdas = 0;
};

Times Run(const Prepared& prep) {
  Times t;
  // MVDCube: shared measure cache + ARM dedup per CFS.
  {
    Timer timer;
    Arm arm(4);
    for (uint32_t cfs_id = 0; cfs_id < prep.fact_sets.size(); ++cfs_id) {
      CfsIndex index(prep.fact_sets[cfs_id].members);
      MeasureCache cache;
      for (const auto& spec : prep.lattices[cfs_id]) {
        MvdCubeStats stats =
            EvaluateLatticeMvd(prep.spade->store(), cfs_id, index, spec,
                               MvdCubeOptions(), &arm, &cache);
        t.num_mdas += stats.num_mdas_evaluated;
      }
    }
    t.mvd_ms = timer.ElapsedMillis();
  }
  // PGCube variants: per-lattice queries, no sharing.
  for (PgCubeVariant variant : {PgCubeVariant::kStar, PgCubeVariant::kDistinct}) {
    Timer timer;
    for (uint32_t cfs_id = 0; cfs_id < prep.fact_sets.size(); ++cfs_id) {
      CfsIndex index(prep.fact_sets[cfs_id].members);
      for (const auto& spec : prep.lattices[cfs_id]) {
        PgCubeStats stats;
        EvaluateLatticePgCube(prep.spade->store(), cfs_id, index, spec,
                              variant, nullptr, &stats);
      }
    }
    (variant == PgCubeVariant::kStar ? t.pg_star_ms : t.pg_d_ms) =
        timer.ElapsedMillis();
  }
  return t;
}

void Main() {
  std::cout << "== Figure 9: Aggregate Evaluation run time (ms) ==\n"
            << "(MVDCube vs PGCube* vs PGCube_d; derivations on, ES off)\n\n";
  TablePrinter table({"Dataset", "#MDAs", "MVDCube", "PGCube*", "PGCube_d",
                      "gain vs PG*", "gain vs PG_d"});
  for (RealDataset ds : AllRealDatasets()) {
    Prepared prep = PrepareDataset(ds, BenchOptions());
    Times t = Run(prep);
    auto gain = [&](double pg) {
      return pg <= 0 ? std::string("-") : Pct(1.0 - t.mvd_ms / pg);
    };
    table.AddRow({prep.name, std::to_string(t.num_mdas), Ms(t.mvd_ms),
                  Ms(t.pg_star_ms), Ms(t.pg_d_ms), gain(t.pg_star_ms),
                  gain(t.pg_d_ms)});
  }
  table.Print(std::cout);
  std::cout << "\nR2/R3: positive gains expected wherever #MDAs > 15.\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main() {
  spade::bench::Main();
  return 0;
}
