// Delta bench: incremental refresh vs full rebuild on a mutating graph.
//
// The steady-state serving scenario: a pipeline has finished its offline
// build and is answering explores when a mutation batch arrives. Two ways to
// fold it in:
//
//   rebuild      re-intern the whole mutated triple set into a fresh graph,
//                RunOffline + RunOnline from scratch
//   incremental  ApplyDelta (merge touched attribute tables, re-derive,
//                revalidate the per-CFS cache) + RunOnline reusing every
//                clean CFS's cached shard
//
// Mutation batches are value churn (retract a measure triple, add a
// replacement) drawn from a contiguous hot range of facts — updates cluster
// in practice, and that locality is exactly what dirty-CFS tracking converts
// into reuse. Rates 0.1% / 1% / 10% of the triple set; at 10% the churn
// spills across most fact sets and the speedup honestly degrades.
//
// Both paths use integral-valued measures, so their insight streams must be
// bit-identical; each row carries an order-independent checksum of the full
// group stream and the JSON reports identical=true/false.
//
// Usage: bench_delta [--facts=N] [--types=K] [--threads=N] [--json[=FILE]]
//
// --json writes machine-readable records (default file: BENCH_delta.json;
// schema in bench/README.md).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/ingest/chunk_source.h"
#include "src/store/delta.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace spade {
namespace bench {
namespace {

// A value-level triple model mirrors the graph so the rebuild side can
// re-intern the mutated set from scratch (ids diverge between a long-lived
// dictionary and a fresh one; the model is the common ground).
struct LTriple {
  std::string s, p;
  bool num_obj = false;
  std::string str_obj;
  int64_t num = 0;

  friend bool operator<(const LTriple& a, const LTriple& b) {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    if (a.num_obj != b.num_obj) return a.num_obj < b.num_obj;
    if (a.str_obj != b.str_obj) return a.str_obj < b.str_obj;
    return a.num < b.num;
  }
};

using LSet = std::set<LTriple>;

Triple Encode(Graph* g, const LTriple& t) {
  Triple out;
  out.s = g->dict().InternIri(t.s);
  out.p = g->dict().InternIri(t.p);
  out.o = t.num_obj ? g->dict().InternDouble(static_cast<double>(t.num))
                    : g->dict().InternString(t.str_obj);
  if (t.p == vocab::kRdfType) out.o = g->dict().InternIri(t.str_obj);
  return out;
}

std::unique_ptr<Graph> BuildGraph(const LSet& triples) {
  auto g = std::make_unique<Graph>();
  for (const LTriple& t : triples) {
    Triple enc = Encode(g.get(), t);
    g->Add(enc.s, enc.p, enc.o);
  }
  g->Freeze();
  return g;
}

/// Facts partitioned by type, each type with a private dimension and a
/// private measure property (updates to one type's facts leave the other
/// types' attribute tables — and so their fact sets — untouched).
LSet MakeUniverse(size_t facts, size_t types, uint64_t seed) {
  Rng rng(seed);
  LSet out;
  for (size_t i = 0; i < facts; ++i) {
    const size_t t = i % types;
    const std::string f =
        "http://bench/f" + std::to_string(t) + "_" + std::to_string(i / types);
    out.insert({f, vocab::kRdfType, false,
                "http://bench/T" + std::to_string(t), 0});
    out.insert({f, "http://bench/d" + std::to_string(t), false,
                "v" + std::to_string(rng.Uniform(6)), 0});
    out.insert({f, "http://bench/e" + std::to_string(t), false,
                "w" + std::to_string(rng.Uniform(9)), 0});
    out.insert({f, "http://bench/m" + std::to_string(t), true, "",
                static_cast<int64_t>(rng.Uniform(1000))});
    out.insert({f, "http://bench/n" + std::to_string(t), true, "",
                static_cast<int64_t>(rng.Uniform(400))});
  }
  return out;
}

/// One mutation batch: replace the numeric value of `count` measure triples,
/// walking facts in order from a hot start offset so the churn is contiguous
/// (few types touched at low rates, most at high rates).
struct Batch {
  std::vector<LTriple> retracts;
  std::vector<LTriple> adds;
};

Batch MakeBatch(const LSet& cur, size_t count, uint64_t seed) {
  Rng rng(seed);
  Batch b;
  std::vector<const LTriple*> measures;
  for (const LTriple& t : cur) {
    if (t.num_obj) measures.push_back(&t);
  }
  // Measure triples sort by subject IRI, which groups them by type — taking
  // a contiguous run is the hot-partition pattern.
  const size_t start = measures.empty() ? 0 : rng.Uniform(measures.size());
  for (size_t i = 0; i < count && i < measures.size(); ++i) {
    const LTriple& old = *measures[(start + i) % measures.size()];
    b.retracts.push_back(old);
    LTriple repl = old;
    repl.num = static_cast<int64_t>(rng.Uniform(1000));
    if (repl.num == old.num) repl.num = (repl.num + 1) % 1000;
    b.adds.push_back(repl);
  }
  return b;
}

void ApplyToModel(LSet* cur, const Batch& b) {
  for (const LTriple& t : b.retracts) cur->erase(t);
  for (const LTriple& t : b.adds) cur->insert(t);
}

SpadeOptions DeltaOptions(size_t threads) {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.cfs.max_sets = 64;
  options.cfs.summary_based = false;  // value-level names on both paths
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 16;
  options.enumeration.max_measures_per_lattice = 8;
  options.top_k = 10;
  options.num_threads = threads;
  return options;
}

/// Order-independent fingerprint of the full evaluated stream: every MDA
/// rendered canonically with its sorted groups, lines sorted, then hashed.
/// Equal outcomes => equal checksums regardless of representation.
uint64_t ArmChecksum(const Spade& spade, const Graph& graph) {
  std::vector<std::string> lines;
  const Arm& arm = spade.arm();
  const AttributeStore& db = spade.store();
  for (Arm::Handle h = 0; h < arm.num_aggregates(); ++h) {
    const AggregateKey& key = arm.key(h);
    std::string line = spade.fact_sets()[key.cfs_id].name + "|";
    for (AttrId d : key.dims) line += db.attribute(d).name + ",";
    line += "|f" + std::to_string(static_cast<int>(key.measure.func)) + "(";
    line +=
        key.measure.is_count_star() ? "*" : db.attribute(key.measure.attr).name;
    line += ")";
    std::vector<std::string> groups;
    for (const GroupResult& gr : arm.stored_groups(h)) {
      std::string g;
      for (TermId v : gr.dim_values) {
        CanonTerm t = RenderTerm(graph.dict(), v);
        g += t.lexical + "/" + t.datatype + ";";
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", gr.value);
      groups.push_back(g + "=" + buf);
    }
    std::sort(groups.begin(), groups.end());
    for (const std::string& g : groups) line += " " + g;
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  uint64_t sum = 1469598103934665603ull;
  for (const std::string& line : lines) {
    for (char c : line) sum = (sum ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  return sum;
}

struct DeltaRow {
  double mutation_rate = 0;
  size_t batch_triples = 0;
  double apply_ms = 0;    ///< ApplyDelta alone
  double online_ms = 0;   ///< the RunOnline refresh after it
  double refresh_ms = 0;  ///< apply + online: the incremental path
  double rebuild_ms = 0;  ///< fresh intern + offline + online
  double speedup = 0;
  size_t cfs_total = 0;
  size_t cfs_reused = 0;
  bool identical = false;
};

DeltaRow RunRate(const LSet& base, double rate, size_t threads,
                 uint64_t seed) {
  DeltaRow row;
  row.mutation_rate = rate;

  // The long-lived incremental pipeline: base build is setup, not measured.
  std::unique_ptr<Graph> graph = BuildGraph(base);
  SpadeOptions options = DeltaOptions(threads);
  options.enable_incremental = true;
  Spade spade(graph.get(), options);
  if (!spade.RunOffline().ok() || !spade.RunOnline().ok()) {
    std::cerr << "bench_delta: base build failed\n";
    std::exit(1);
  }

  LSet mutated = base;
  const size_t count = static_cast<size_t>(rate * base.size());
  Batch batch = MakeBatch(base, count == 0 ? 1 : count, seed);
  row.batch_triples = batch.adds.size() + batch.retracts.size();
  ApplyToModel(&mutated, batch);

  std::vector<Triple> adds, rets;
  for (const LTriple& t : batch.adds) adds.push_back(Encode(graph.get(), t));
  for (const LTriple& t : batch.retracts) {
    rets.push_back(Encode(graph.get(), t));
  }
  {
    VectorChunkSource add_src({std::move(adds)});
    VectorChunkSource ret_src({std::move(rets)});
    DeltaReport delta;
    Timer t;
    Status st = spade.ApplyDelta(&add_src, &ret_src, &delta);
    row.apply_ms = t.ElapsedMillis();
    if (!st.ok()) {
      std::cerr << "bench_delta: apply failed: " << st.ToString() << "\n";
      std::exit(1);
    }
    row.cfs_total = delta.num_cfs;
    row.cfs_reused = delta.num_cfs_reused;
  }
  {
    Timer t;
    if (!spade.RunOnline().ok()) std::exit(1);
    row.online_ms = t.ElapsedMillis();
  }
  row.refresh_ms = row.apply_ms + row.online_ms;

  // The contender: full rebuild of the mutated set.
  uint64_t rebuild_sum = 0;
  {
    Timer t;
    std::unique_ptr<Graph> fresh_graph = BuildGraph(mutated);
    Spade fresh(fresh_graph.get(), DeltaOptions(threads));
    if (!fresh.RunOffline().ok() || !fresh.RunOnline().ok()) std::exit(1);
    row.rebuild_ms = t.ElapsedMillis();
    rebuild_sum = ArmChecksum(fresh, *fresh_graph);
  }
  row.speedup = row.refresh_ms > 0 ? row.rebuild_ms / row.refresh_ms : 0;
  row.identical = ArmChecksum(spade, *graph) == rebuild_sum;
  return row;
}

void WriteJson(const std::string& path, size_t facts, size_t types,
               size_t triples, size_t threads, uint64_t seed,
               const std::vector<DeltaRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_delta: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "[\n";
  out << "  {\"kind\": \"config\", \"facts\": " << facts
      << ", \"types\": " << types << ", \"num_triples\": " << triples
      << ", \"threads\": " << threads << ", \"seed\": " << seed << "},\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const DeltaRow& r = rows[i];
    out << "  {\"kind\": \"delta\", \"mutation_rate\": " << r.mutation_rate
        << ", \"batch_triples\": " << r.batch_triples
        << ", \"apply_ms\": " << r.apply_ms
        << ", \"online_ms\": " << r.online_ms
        << ", \"refresh_ms\": " << r.refresh_ms
        << ", \"rebuild_ms\": " << r.rebuild_ms
        << ", \"speedup\": " << r.speedup
        << ", \"cfs_total\": " << r.cfs_total
        << ", \"cfs_reused\": " << r.cfs_reused
        << ", \"identical_insights\": " << (r.identical ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  using namespace spade;
  using namespace spade::bench;
  size_t facts = 24000;
  size_t types = 12;
  size_t threads = 1;
  uint64_t seed = 42;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--facts=", 8) == 0) {
      facts = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--types=", 8) == 0) {
      types = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_delta.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::cerr << "bench_delta: unknown argument " << argv[i] << "\n"
                << "usage: bench_delta [--facts=N] [--types=K] [--threads=N]"
                   " [--seed=S] [--json[=FILE]]\n";
      return 1;
    }
  }

  const LSet base = MakeUniverse(facts, types, seed);
  std::printf("bench_delta: %zu facts, %zu types, %zu triples, %zu thread%s\n",
              facts, types, base.size(), threads, threads == 1 ? "" : "s");

  const std::vector<double> rates = {0.001, 0.01, 0.10};
  std::vector<DeltaRow> rows;
  TablePrinter table(
      {"rate", "batch", "apply ms", "online ms", "refresh ms", "rebuild ms",
       "speedup", "cfs reused", "identical"});
  for (double rate : rates) {
    DeltaRow row = RunRate(base, rate, threads, seed + 1);
    char sp[32];
    std::snprintf(sp, sizeof(sp), "%.1fx", row.speedup);
    table.AddRow({Pct(rate), std::to_string(row.batch_triples),
                  Ms(row.apply_ms), Ms(row.online_ms), Ms(row.refresh_ms),
                  Ms(row.rebuild_ms), sp,
                  std::to_string(row.cfs_reused) + "/" +
                      std::to_string(row.cfs_total),
                  row.identical ? "yes" : "NO"});
    rows.push_back(row);
  }
  table.Print(std::cout);
  for (const DeltaRow& r : rows) {
    if (!r.identical) {
      std::cerr << "bench_delta: insight streams diverged at rate "
                << r.mutation_rate << "\n";
      return 1;
    }
  }
  if (!json_path.empty()) {
    WriteJson(json_path, facts, types, base.size(), threads, seed, rows);
  }
  return 0;
}
