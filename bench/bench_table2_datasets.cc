// Regenerates Table 2: the profile of the six real graphs — #triples, #CFSs,
// #P (direct properties), #DP by derivation kind, and the number of candidate
// aggregates without (#A_woD) and with (#A_wD) derivations.
//
// Paper reference values (Table 2) for shape comparison:
//   Airline: 1 CFS, 0 derivations, #A_woD == #A_wD;
//   native-RDF graphs: many CFSs, kw/lang/count/path derivations, and a
//   large multiplicative jump from #A_woD to #A_wD.

#include "bench/bench_common.h"

namespace spade {
namespace bench {
namespace {

struct Profile {
  size_t triples = 0, cfs = 0, props = 0;
  DerivationReport dp;
  size_t aggs = 0;
};

Profile Run(RealDataset ds, bool derivations) {
  SpadeOptions options = BenchOptions();
  options.enable_derivations = derivations;
  Prepared prep = PrepareDataset(ds, options);
  Profile p;
  p.triples = prep.spade->report().num_triples;
  p.cfs = prep.fact_sets.size();
  p.props = prep.spade->report().num_direct_properties;
  p.dp = prep.spade->report().derivations;
  for (uint32_t cfs_id = 0; cfs_id < prep.lattices.size(); ++cfs_id) {
    p.aggs += CountCandidateAggregates(cfs_id, prep.lattices[cfs_id]);
  }
  return p;
}

void Main() {
  std::cout << "== Table 2: real datasets used for testing ==\n"
            << "(simulated graphs; DBLP/Airline scaled — see EXPERIMENTS.md)\n\n";
  TablePrinter table({"Dataset", "#triples", "#CFSs", "#P", "#A_woD", "#DP kw",
                      "#DP lang", "#DP count", "#DP path", "#A_wD"});
  for (RealDataset ds : AllRealDatasets()) {
    Profile wo = Run(ds, /*derivations=*/false);
    Profile w = Run(ds, /*derivations=*/true);
    table.AddRow({RealDatasetName(ds), std::to_string(w.triples),
                  std::to_string(w.cfs), std::to_string(wo.props),
                  std::to_string(wo.aggs), std::to_string(w.dp.num_keyword_attrs),
                  std::to_string(w.dp.num_language_attrs),
                  std::to_string(w.dp.num_count_attrs),
                  std::to_string(w.dp.num_path_attrs), std::to_string(w.aggs)});
  }
  table.Print(std::cout);
  std::cout << "\nShape checks vs the paper:\n"
            << "  - Airline derives nothing (flat relational tuples);\n"
            << "  - every native RDF graph derives counts/keywords/paths and\n"
            << "    #A_wD >= #A_woD (R1: derivations enrich the space).\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main() {
  spade::bench::Main();
  return 0;
}
