// Regenerates Figure 10 (Experiment 3): the distribution of PGCube_d error
// ratios p/m (computed value over true value) for count and sum aggregates,
// per group, on the datasets where errors occur. Paper shape (R5): the bulk
// of ratios is small (1-2x) but the tail exceeds an order of magnitude; when
// an aggregate is shared by lattices we record the maximum ratio.

#include <algorithm>
#include <map>

#include "bench/bench_common.h"
#include "src/core/pgcube.h"
#include "src/core/reference.h"

namespace spade {
namespace bench {
namespace {

void Main() {
  std::cout << "== Figure 10: distribution of PGCube_d error ratios ==\n"
            << "(per-group ratio p/m >= 1 for count/sum aggregates; worst\n"
            << " ratio kept for aggregates shared between lattices)\n\n";
  TablePrinter table({"Dataset", "#ratios", "=1 (exact)", "(1,2]", "(2,10]",
                      "(10,30]", ">30", "max ratio"});
  for (RealDataset ds : AllRealDatasets()) {
    Prepared prep = PrepareDataset(ds, BenchOptions());
    // Worst ratio per (aggregate key, group).
    std::map<std::pair<AggregateKey, std::vector<TermId>>, double> ratios;
    for (uint32_t cfs_id = 0; cfs_id < prep.fact_sets.size(); ++cfs_id) {
      CfsIndex index(prep.fact_sets[cfs_id].members);
      for (const auto& spec : prep.lattices[cfs_id]) {
        auto reference =
            EvaluateReference(prep.spade->store(), cfs_id, index, spec);
        auto dist = EvaluateLatticePgCube(prep.spade->store(), cfs_id,
                                          index, spec,
                                          PgCubeVariant::kDistinct, nullptr,
                                          nullptr);
        for (size_t i = 0; i < reference.size(); ++i) {
          const auto& key = reference[i].key;
          bool count_or_sum =
              key.measure.is_count_star() ||
              key.measure.func == sparql::AggFunc::kCount ||
              key.measure.func == sparql::AggFunc::kSum;
          if (!count_or_sum) continue;
          if (reference[i].groups.size() != dist[i].groups.size()) continue;
          for (size_t gi = 0; gi < reference[i].groups.size(); ++gi) {
            double m = reference[i].groups[gi].value;
            double p = dist[i].groups[gi].value;
            if (m <= 0) continue;
            double ratio = p / m;
            auto group_key =
                std::make_pair(key, reference[i].groups[gi].dim_values);
            auto [it, inserted] = ratios.try_emplace(group_key, ratio);
            if (!inserted) it->second = std::max(it->second, ratio);
          }
        }
      }
    }
    size_t exact = 0, b2 = 0, b10 = 0, b30 = 0, big = 0;
    double max_ratio = 1;
    for (const auto& [key, r] : ratios) {
      max_ratio = std::max(max_ratio, r);
      if (r <= 1.0 + 1e-12) {
        ++exact;
      } else if (r <= 2) {
        ++b2;
      } else if (r <= 10) {
        ++b10;
      } else if (r <= 30) {
        ++b30;
      } else {
        ++big;
      }
    }
    char maxbuf[32];
    std::snprintf(maxbuf, sizeof(maxbuf), "%.1f", max_ratio);
    table.AddRow({prep.name, std::to_string(ratios.size()),
                  std::to_string(exact), std::to_string(b2),
                  std::to_string(b10), std::to_string(b30),
                  std::to_string(big), maxbuf});
  }
  table.Print(std::cout);
  std::cout << "\nR5: multi-valued graphs produce ratios far above 1; the\n"
            << "tail grows with the number of multi-valued dimensions in a\n"
            << "lattice.\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main() {
  spade::bench::Main();
  return 0;
}
