// TCP front-end bench: sustained throughput and per-request latency of the
// hardened network serve loop (src/net/tcp_server.h) under concurrent
// connections.
//
// One in-process TcpServer is started on an ephemeral loopback port over a
// synthetic corpus; for each connection count C (default 1, 4, 16) the bench
// spawns C client threads, each owning one net::LineClient, and replays a
// mixed explore/stats request stream. Every request is timed individually,
// so besides requests/sec the bench reports the p50 and p99 request latency
// — the tail is what admission control and the per-connection flush
// discipline are supposed to protect.
//
// The server runs with a generous global inflight cap so the bench measures
// evaluation and event-loop throughput, not deliberate shedding (shedding
// behaviour is covered by net_test); any `busy` replies that do occur are
// retried by the client and counted in the report.
//
// Usage: bench_serve [--facts=N] [--requests=N] [--connections=1,4,16]
//                    [--json[=FILE]]
//
// --json writes the numbers as a machine-readable JSON array (default file:
// BENCH_serve.json; schema in bench/README.md).

#include "src/net/net_util.h"

#if !defined(SPADE_NET_POSIX)

#include <cstdio>

int main() {
  std::printf("bench_serve: TCP networking is unavailable on this platform; "
              "nothing to measure\n");
  return 0;
}

#else  // SPADE_NET_POSIX

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/spade.h"
#include "src/datagen/synthetic.h"
#include "src/exec/thread_pool.h"
#include "src/net/line_client.h"
#include "src/net/tcp_server.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace spade {
namespace bench {
namespace {

struct ConnRun {
  size_t connections = 0;
  uint64_t requests = 0;
  uint64_t busy_retries = 0;  ///< `busy` replies absorbed by client backoff
  double wall_ms = 0;
  double requests_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// The request mix one client thread replays: mostly explores of varying
/// top-k over rotating fact sets, with a stats probe mixed in — the shape of
/// an interactive exploration session.
std::vector<std::string> RequestStream(const Spade& spade, size_t count,
                                       size_t thread_index) {
  std::vector<std::string> reqs;
  reqs.reserve(count);
  const auto& sets = spade.fact_sets();
  for (size_t i = 0; i < count; ++i) {
    if (i % 16 == 15) {
      reqs.push_back("stats");
      continue;
    }
    std::ostringstream r;
    r << "explore top=" << (2 + (i + thread_index) % 4);
    if (!sets.empty() && i % 3 != 0) {
      r << " cfs=" << sets[(i + thread_index) % sets.size()].name;
    }
    reqs.push_back(r.str());
  }
  return reqs;
}

ConnRun RunWithConnections(const net::HostPort& server, const Spade& spade,
                           size_t connections, size_t total_requests) {
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  std::vector<uint64_t> busy(connections, 0);
  bool failed = false;
  std::mutex fail_mu;

  Timer wall;
  for (size_t t = 0; t < connections; ++t) {
    const size_t count = total_requests / connections +
                         (t < total_requests % connections ? 1 : 0);
    threads.emplace_back([&, t, count] {
      net::LineClientOptions copts;
      copts.server = server;
      copts.seed = 1000 + t;
      net::LineClient client(copts);
      auto reqs = RequestStream(spade, count, t);
      latencies[t].reserve(count);
      for (const std::string& req : reqs) {
        Timer one;
        auto reply = client.Request(req);
        if (!reply.ok() || reply->rfind("error:", 0) == 0) {
          std::lock_guard<std::mutex> lock(fail_mu);
          std::cerr << "bench_serve: request '" << req << "' failed: "
                    << (reply.ok() ? *reply : reply.status().ToString())
                    << "\n";
          failed = true;
          return;
        }
        latencies[t].push_back(one.ElapsedMillis());
      }
      busy[t] = client.stats().num_busy;
    });
  }
  for (auto& th : threads) th.join();
  const double wall_ms = wall.ElapsedMillis();
  if (failed) std::exit(1);

  std::vector<double> all;
  all.reserve(total_requests);
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  ConnRun r;
  r.connections = connections;
  r.requests = all.size();
  for (uint64_t b : busy) r.busy_retries += b;
  r.wall_ms = wall_ms;
  r.requests_per_sec = wall_ms > 0 ? 1000.0 * all.size() / wall_ms : 0;
  r.p50_ms = Percentile(all, 0.50);
  r.p99_ms = Percentile(all, 0.99);
  return r;
}

void WriteJson(const std::string& path, const std::vector<ConnRun>& runs,
               const net::TcpServeStats& stats) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_serve: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "[\n";
  for (const ConnRun& r : runs) {
    out << "  {\"kind\": \"serve_tcp\", \"connections\": " << r.connections
        << ", \"requests\": " << r.requests
        << ", \"busy_retries\": " << r.busy_retries
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"requests_per_sec\": " << r.requests_per_sec
        << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
        << "},\n";
  }
  out << "  {\"kind\": \"server\", \"num_connections\": "
      << stats.num_connections
      << ", \"num_connections_shed\": " << stats.num_connections_shed
      << ", \"num_requests_shed\": " << stats.num_requests_shed
      << ", \"num_io_errors\": " << stats.num_io_errors
      << ", \"requests_evaluated\": " << stats.serve.num_requests
      << ", \"drained_clean\": " << (stats.drained_clean ? "true" : "false")
      << "}\n";
  out << "]\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  size_t facts = 60000;
  size_t requests = 192;
  std::vector<size_t> connection_counts = {1, 4, 16};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--facts=", 8) == 0) {
      facts = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      connection_counts.clear();
      std::stringstream list(argv[i] + 14);
      std::string item;
      while (std::getline(list, item, ',')) {
        if (!item.empty()) {
          connection_counts.push_back(
              static_cast<size_t>(std::atoll(item.c_str())));
        }
      }
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_serve.json";
    }
  }

  using spade::bench::ConnRun;

  spade::SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality.assign(3, 40);
  sopts.num_measures = 4;
  sopts.num_fact_types = 4;
  auto graph = spade::GenerateSynthetic(sopts);

  spade::SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 8;
  options.enumeration.max_measures_per_lattice = 3;
  options.top_k = 8;
  spade::Spade spade(graph.get(), options);
  if (!spade.RunOffline().ok() || !spade.PrepareFactSets().ok()) {
    std::cerr << "bench_serve: offline phase failed\n";
    return 1;
  }

  spade::net::TcpServerOptions topt;
  topt.listen.host = "127.0.0.1";
  topt.listen.port = 0;
  topt.install_signal_handlers = false;
  // Generous caps: measure throughput, not deliberate shedding. A cap of 64
  // still exercises admission accounting on every request.
  topt.max_inflight = 64;
  topt.max_inflight_per_connection = 8;
  topt.serve.num_threads = spade::ThreadPool::HardwareConcurrency();
  spade::net::TcpServer server(&spade, topt);
  spade::Status st = server.Start();
  if (!st.ok()) {
    std::cerr << "bench_serve: " << st.ToString() << "\n";
    return 1;
  }
  spade::net::HostPort hp;
  hp.host = "127.0.0.1";
  hp.port = server.port();
  spade::net::TcpServeStats stats;
  std::thread server_thread([&] { stats = server.Run(); });

  std::cout << "== TCP serve throughput and latency (" << facts
            << " facts, " << requests << " requests per point, "
            << topt.serve.num_threads << " eval threads) ==\n\n";

  // Warmup: populate whatever lazily materializes before the timed runs.
  (void)spade::bench::RunWithConnections(hp, spade, 1, 8);

  std::vector<ConnRun> runs;
  for (size_t c : connection_counts) {
    if (c == 0) continue;
    runs.push_back(spade::bench::RunWithConnections(hp, spade, c, requests));
  }

  server.RequestShutdown();
  server_thread.join();

  spade::TablePrinter table(
      {"connections", "requests", "req/s", "p50 ms", "p99 ms", "busy"});
  for (const ConnRun& r : runs) {
    char rps[32], p50[32], p99[32];
    std::snprintf(rps, sizeof(rps), "%.1f", r.requests_per_sec);
    std::snprintf(p50, sizeof(p50), "%.2f", r.p50_ms);
    std::snprintf(p99, sizeof(p99), "%.2f", r.p99_ms);
    table.AddRow({std::to_string(r.connections), std::to_string(r.requests),
                  rps, p50, p99, std::to_string(r.busy_retries)});
  }
  table.Print(std::cout);
  std::cout << "\nserver: " << stats.num_connections << " connections, "
            << stats.serve.num_requests << " requests evaluated, "
            << stats.num_requests_shed << " shed, drain "
            << (stats.drained_clean ? "clean" : "HARD-STOPPED") << "\n";

  if (!json_path.empty()) spade::bench::WriteJson(json_path, runs, stats);
  return stats.drained_clean ? 0 : 1;
}

#endif  // SPADE_NET_POSIX
