#ifndef SPADE_BENCH_BENCH_COMMON_H_
#define SPADE_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cfs.h"
#include "src/core/enumeration.h"
#include "src/core/spade.h"
#include "src/datagen/realworld.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace spade {
namespace bench {

/// Generation scale per dataset. CEOs / NASA / Nobel / Foodista are generated
/// at their natural size; the two large graphs (DBLP 33M, Airline 56M
/// triples in the paper) are scaled down to laptop size — documented in
/// EXPERIMENTS.md, and each bench prints the measured triple counts.
inline double DatasetScale(RealDataset ds) {
  switch (ds) {
    case RealDataset::kDblp:
      return 0.6;
    case RealDataset::kAirline:
      return 0.6;
    default:
      return 1.0;
  }
}

/// Pipeline options shared by the real-graph benches.
inline SpadeOptions BenchOptions() {
  SpadeOptions options;
  options.cfs.min_size = 25;
  options.cfs.max_sets = 24;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 8;
  options.enumeration.max_measures_per_lattice = 4;
  options.top_k = 10;
  return options;
}

/// A dataset prepared through the offline phase + steps 1-3 of the online
/// phase, so benches can drive Aggregate Evaluation directly.
struct Prepared {
  std::string name;
  std::unique_ptr<Graph> graph;
  std::unique_ptr<Spade> spade;  ///< offline phase done
  std::vector<CandidateFactSet> fact_sets;
  /// lattices[i] belongs to fact_sets[i] (cfs_id == i).
  std::vector<std::vector<LatticeSpec>> lattices;
};

inline Prepared PrepareDataset(RealDataset ds, const SpadeOptions& options,
                               uint64_t seed = 42) {
  Prepared out;
  out.name = RealDatasetName(ds);
  out.graph = GenerateRealDataset(ds, seed, DatasetScale(ds));
  out.spade = std::make_unique<Spade>(out.graph.get(), options);
  Status st = out.spade->RunOffline();
  if (!st.ok()) {
    std::cerr << "offline phase failed: " << st.ToString() << "\n";
    std::exit(1);
  }
  out.fact_sets = SelectCandidateFactSets(
      *out.graph, &out.spade->summary(), options.cfs);
  for (const auto& cfs : out.fact_sets) {
    CfsIndex index(cfs.members);
    CfsAnalysis analysis =
        AnalyzeAttributes(out.spade->store(), index,
                          out.spade->offline_stats(), options.enumeration);
    out.lattices.push_back(EnumerateLattices(out.spade->store(), index,
                                             analysis,
                                             out.spade->offline_stats(),
                                             options.enumeration));
  }
  return out;
}

inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
  return buf;
}

inline std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace bench
}  // namespace spade

#endif  // SPADE_BENCH_BENCH_COMMON_H_
