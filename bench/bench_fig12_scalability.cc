// Regenerates Figure 12 (Experiment 6): scalability of the online pipeline in
// the number of facts (12a), measures (12b) and dimensions (12c), comparing
// PGCube* / MVDCube / MVDCube+ES as the Aggregate Evaluation module. Facts
// are scaled 10x down from the paper's server-scale runs (500k base instead
// of 5M). Paper shape (R9): MVDCube scales linearly in |CFS| and M, grows
// faster in N, is consistently faster than PGCube* (up to 2.9x), and ES is
// the fastest.
//
// Usage: bench_fig12_scalability [--vary=facts|measures|dims] (default: all)

#include <cstring>

#include "bench/bench_common.h"
#include "src/datagen/synthetic.h"

namespace spade {
namespace bench {
namespace {

double RunOnce(size_t facts, size_t measures, size_t dims, EvalAlgorithm algo,
               bool earlystop) {
  SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality.assign(dims, 100);
  sopts.num_measures = measures;
  sopts.sparsity = 0.1;
  auto graph = GenerateSynthetic(sopts);

  SpadeOptions options = BenchOptions();
  options.algorithm = algo;
  options.enable_earlystop = earlystop;
  options.enumeration.max_dims = dims;
  options.enumeration.max_measures_per_lattice = measures;
  options.cfs.min_size = 100;
  Spade spade(graph.get(), options);
  if (!spade.RunOffline().ok()) std::exit(1);
  Timer timer;
  if (!spade.RunOnline().ok()) std::exit(1);
  return timer.ElapsedMillis();
}

void VaryFacts() {
  std::cout << "-- Figure 12a: varying |CFS| in {50k..400k} (N=3, M=15, uniform, s=0.1) --\n";
  TablePrinter table({"|CFS|", "PGCube* ms", "MVDCube ms", "MVD+ES ms",
                      "speedup vs PG*"});
  for (size_t facts : {50000u, 100000u, 200000u, 400000u}) {
    double pg = RunOnce(facts, 15, 3, EvalAlgorithm::kPgCubeStar, false);
    double mvd = RunOnce(facts, 15, 3, EvalAlgorithm::kMvdCube, false);
    double es = RunOnce(facts, 15, 3, EvalAlgorithm::kMvdCube, true);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", pg / std::max(1.0, mvd));
    table.AddRow({std::to_string(facts), Ms(pg), Ms(mvd), Ms(es), speedup});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void VaryMeasures() {
  std::cout << "-- Figure 12b: varying M (|CFS|=150k, N=3) --\n";
  TablePrinter table({"M", "PGCube* ms", "MVDCube ms", "MVD+ES ms",
                      "speedup vs PG*"});
  for (size_t m : {5u, 10u, 15u, 20u, 25u, 30u}) {
    double pg = RunOnce(150000, m, 3, EvalAlgorithm::kPgCubeStar, false);
    double mvd = RunOnce(150000, m, 3, EvalAlgorithm::kMvdCube, false);
    double es = RunOnce(150000, m, 3, EvalAlgorithm::kMvdCube, true);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", pg / std::max(1.0, mvd));
    table.AddRow({std::to_string(m), Ms(pg), Ms(mvd), Ms(es), speedup});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void VaryDims() {
  std::cout << "-- Figure 12c: varying N (|CFS|=150k, M=15) --\n";
  TablePrinter table({"N", "PGCube* ms", "MVDCube ms", "MVD+ES ms",
                      "speedup vs PG*"});
  for (size_t n : {1u, 2u, 3u, 4u}) {
    double pg = RunOnce(150000, 15, n, EvalAlgorithm::kPgCubeStar, false);
    double mvd = RunOnce(150000, 15, n, EvalAlgorithm::kMvdCube, false);
    double es = RunOnce(150000, 15, n, EvalAlgorithm::kMvdCube, true);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", pg / std::max(1.0, mvd));
    table.AddRow({std::to_string(n), Ms(pg), Ms(mvd), Ms(es), speedup});
  }
  table.Print(std::cout);
  std::cout << "\nR9: MVDCube < PGCube* everywhere; ES fastest; growth is\n"
            << "linear in |CFS| and M, superlinear in N (lattice count).\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  std::cout << "== Figure 12: scalability in facts / measures / dimensions "
               "==\n(scaled 10x down from the paper's hardware; see "
               "EXPERIMENTS.md)\n\n";
  const char* vary = argc > 1 ? argv[1] : "";
  bool all = std::strlen(vary) == 0;
  if (all || std::strstr(vary, "facts")) spade::bench::VaryFacts();
  if (all || std::strstr(vary, "measures")) spade::bench::VaryMeasures();
  if (all || std::strstr(vary, "dims")) spade::bench::VaryDims();
  return 0;
}
