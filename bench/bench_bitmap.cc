// Microbenchmarks of the bitmap engine on the three MVDCube access patterns
// (Section 4.3): ordered build (AppendOrdered vs Add), union folds in the
// shapes the lattice produces (slice-merge of disjoint ranges, downward
// propagation of many small cells, overlapping dense cells), and ordered
// decode (per-value ForEach callback vs batched DecodeInto / ForEachBlock).
//
// Self-contained (no google-benchmark): best-of-reps wall time via Timer,
// checksums printed so the compared variants are provably computing the
// same thing.
//
// Usage: bench_bitmap [--n=N] [--reps=R] [--json[=FILE]]
//
// --json writes every measurement as a machine-readable JSON array (default
// file: BENCH_bitmap.json) so CI can track the bitmap engine across commits.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/bitmap/roaring.h"
#include "src/util/rng.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace spade {
namespace bench {
namespace {

struct Measurement {
  std::string bench;
  std::string config;
  double ms = 0;         ///< best-of-reps wall time
  double per_op_ns = 0;  ///< ms scaled to the op count of the bench
  uint64_t checksum = 0;
};

std::vector<Measurement> g_results;

std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

std::string Ns(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ns);
  return buf;
}

/// Run `fn` (which returns a checksum) `reps` times, keep the best time.
template <typename Fn>
Measurement Measure(const std::string& bench, const std::string& config,
                    size_t ops, size_t reps, Fn&& fn) {
  Measurement m;
  m.bench = bench;
  m.config = config;
  m.ms = 1e100;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    m.checksum = fn();
    m.ms = std::min(m.ms, t.ElapsedMillis());
  }
  m.per_op_ns = ops > 0 ? m.ms * 1e6 / static_cast<double>(ops) : 0;
  g_results.push_back(m);
  return m;
}

/// The id streams a lattice cell sees, ascending (the load path invariant).
std::vector<uint32_t> MakeIds(const std::string& shape, size_t n,
                              uint64_t seed) {
  std::vector<uint32_t> ids;
  ids.reserve(n);
  if (shape == "dense") {  // contiguous fact range: run containers
    for (uint32_t v = 0; v < n; ++v) ids.push_back(v);
  } else if (shape == "stride4") {  // no runs: array -> bitset conversions
    for (uint32_t v = 0; v < n; ++v) ids.push_back(4 * v);
  } else {  // "sparse": random ascending gaps, many array containers
    Rng rng(seed);
    uint32_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v += 1 + static_cast<uint32_t>(rng.Uniform(50));
      ids.push_back(v);
    }
  }
  return ids;
}

// --- A) ordered build: AppendOrdered vs Add -------------------------------

void BenchAppend(size_t n, size_t reps) {
  std::cout << "-- build: AppendOrdered vs Add, " << n
            << " ascending ids --\n";
  TablePrinter table({"shape", "append ms", "add ms", "add/append"});
  for (const char* shape : {"dense", "stride4", "sparse"}) {
    std::vector<uint32_t> ids = MakeIds(shape, n, 42);
    Measurement append =
        Measure("build_append", shape, n, reps, [&ids]() -> uint64_t {
          RoaringBitmap bm;
          for (uint32_t v : ids) bm.AppendOrdered(v);
          return bm.Cardinality() + bm.MemoryBytes();
        });
    Measurement add =
        Measure("build_add", shape, n, reps, [&ids]() -> uint64_t {
          RoaringBitmap bm;
          for (uint32_t v : ids) bm.Add(v);
          return bm.Cardinality() + bm.MemoryBytes();
        });
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  add.ms / std::max(1e-9, append.ms));
    table.AddRow({shape, Ms(append.ms), Ms(add.ms), ratio});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

// --- B) union folds in lattice shapes -------------------------------------

void BenchUnion(size_t n, size_t reps) {
  std::cout << "-- union folds (lattice shapes) --\n";
  TablePrinter table({"fold shape", "ms", "result card"});

  // Slice merge: K disjoint contiguous fact ranges folded in order — the
  // ParallelLatticeRun partial merge of one group spanning every slice.
  {
    constexpr size_t kSlices = 8;
    std::vector<RoaringBitmap> slices(kSlices);
    for (size_t s = 0; s < kSlices; ++s) {
      for (uint32_t v = 0; v < n / kSlices; ++v) {
        slices[s].AppendOrdered(static_cast<uint32_t>(s * (n / kSlices) + v));
      }
    }
    Measurement m = Measure("union_slices", "8 disjoint ranges", n, reps,
                            [&slices]() -> uint64_t {
                              RoaringBitmap dst;
                              for (const RoaringBitmap& s : slices) {
                                dst.UnionWith(s);
                              }
                              return dst.Cardinality();
                            });
    table.AddRow({"8 disjoint contiguous slices", Ms(m.ms),
                  std::to_string(m.checksum)});
  }

  // Downward propagation: many tiny cells (multi-valued fan-out) folded
  // into one child cell — dominated by small-set handling.
  {
    constexpr size_t kCells = 4096;
    Rng rng(7);
    std::vector<RoaringBitmap> cells(kCells);
    for (auto& c : cells) {
      uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
      for (size_t i = 0; i < 12; ++i) {
        v += 1 + static_cast<uint32_t>(rng.Uniform(64));
        c.AppendOrdered(v);
      }
    }
    Measurement m = Measure("union_small_cells", "4096 cells x 12 facts",
                            kCells * 12, reps, [&cells]() -> uint64_t {
                              RoaringBitmap dst;
                              for (const RoaringBitmap& c : cells) {
                                dst.UnionWith(c);
                              }
                              return dst.Cardinality();
                            });
    table.AddRow({"4096 tiny cells (12 facts each)", Ms(m.ms),
                  std::to_string(m.checksum)});
  }

  // Overlapping dense: sibling cells sharing most of their facts — the
  // bitset OR / run merge paths.
  {
    constexpr size_t kCells = 8;
    std::vector<RoaringBitmap> cells(kCells);
    Rng rng(11);
    for (auto& c : cells) {
      for (size_t i = 0; i < n / 2; ++i) {
        c.Add(static_cast<uint32_t>(rng.Uniform(n)));
      }
    }
    Measurement m = Measure("union_dense_overlap", "8 cells, n/2 random each",
                            kCells * (n / 2), reps, [&cells]() -> uint64_t {
                              RoaringBitmap dst;
                              for (const RoaringBitmap& c : cells) {
                                dst.UnionWith(c);
                              }
                              return dst.Cardinality();
                            });
    table.AddRow({"8 dense overlapping cells", Ms(m.ms),
                  std::to_string(m.checksum)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

// --- C) ordered decode: ForEach vs DecodeInto / ForEachBlock --------------

void BenchDecode(size_t n, size_t reps) {
  std::cout << "-- decode: per-value callback vs batched --\n";
  TablePrinter table(
      {"shape", "foreach ms", "decode ms", "blocks ms", "foreach/blocks"});
  for (const char* shape : {"dense", "stride4", "sparse"}) {
    std::vector<uint32_t> ids = MakeIds(shape, n, 99);
    RoaringBitmap bm;
    for (uint32_t v : ids) bm.AppendOrdered(v);
    Measurement fe =
        Measure("decode_foreach", shape, n, reps, [&bm]() -> uint64_t {
          uint64_t sum = 0;
          bm.ForEach([&sum](uint32_t v) { sum += v; });
          return sum;
        });
    std::vector<uint32_t> buf;
    Measurement di =
        Measure("decode_into", shape, n, reps, [&bm, &buf]() -> uint64_t {
          bm.DecodeInto(&buf);
          uint64_t sum = 0;
          for (uint32_t v : buf) sum += v;
          return sum;
        });
    std::vector<uint32_t> scratch;
    Measurement fb = Measure(
        "decode_blocks", shape, n, reps, [&bm, &scratch]() -> uint64_t {
          uint64_t sum = 0;
          bm.ForEachBlock(&scratch, [&sum](const uint32_t* data, size_t m) {
            for (size_t i = 0; i < m; ++i) sum += data[i];
          });
          return sum;
        });
    if (fe.checksum != di.checksum || fe.checksum != fb.checksum) {
      std::cout << "  CHECKSUM MISMATCH on " << shape << "\n";
      std::exit(1);
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  fe.ms / std::max(1e-9, fb.ms));
    table.AddRow({shape, Ms(fe.ms), Ms(di.ms), Ms(fb.ms), ratio});
  }
  table.Print(std::cout);
  std::cout << "  (per-op costs: see --json; e.g. append "
            << Ns(g_results.front().per_op_ns) << " ns/id)\n\n";
}

/// Minimal JSON emission — flat array of per-measurement records.
void WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_bitmap: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "[\n";
  for (size_t i = 0; i < g_results.size(); ++i) {
    const Measurement& m = g_results[i];
    out << "  {\"bench\": \"" << m.bench << "\", \"config\": \"" << m.config
        << "\", \"ms\": " << m.ms << ", \"per_op_ns\": " << m.per_op_ns
        << ", \"checksum\": " << m.checksum << "}"
        << (i + 1 < g_results.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << g_results.size() << " records to " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  size_t n = 1000000;
  size_t reps = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = static_cast<size_t>(std::atoll(argv[i] + 4));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_bitmap.json";
    }
  }
  std::cout << "== Bitmap engine microbenchmarks (n = " << n << ", best of "
            << reps << ") ==\n\n";
  spade::bench::BenchAppend(n, reps);
  spade::bench::BenchUnion(n, reps);
  spade::bench::BenchDecode(n, reps);
  if (!json_path.empty()) spade::bench::WriteJson(json_path);
  return 0;
}
