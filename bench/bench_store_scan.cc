// Micro-benchmark of the storage refactor: the old row-pair layout
// (vector<pair<subject, object>>, binary-searched, allocating per lookup)
// against the columnar CSR layout (subject column + offsets + object
// column, span accessors) on a synthetic attribute table.
//
// Three access patterns, the ones the pipeline actually runs:
//   full scan        — offline statistics, derivations (every row once)
//   merge join       — encoding / measure loading / online stats against a
//                      sorted CFS member list (50% selectivity here)
//   point lookups    — path derivation's ValuesOf(mid) probes
//
// Usage: bench_store_scan [--subjects=N] [--values-per-subject=K] [--reps=R]

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/store/attribute_store.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace spade {
namespace bench {
namespace {

/// The pre-refactor layout, kept here as the baseline under test.
struct RowPairTable {
  std::vector<std::pair<TermId, TermId>> rows;  // sorted by (subject, object)

  std::vector<TermId> ValuesOf(TermId subject) const {
    std::vector<TermId> out;
    auto lo = std::lower_bound(rows.begin(), rows.end(),
                               std::make_pair(subject, TermId(0)));
    for (auto it = lo; it != rows.end() && it->first == subject; ++it) {
      out.push_back(it->second);
    }
    return out;
  }
};

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  using namespace spade;
  size_t num_subjects = 200000;
  size_t values_per_subject = 4;
  size_t reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--subjects=", 11) == 0) {
      num_subjects = static_cast<size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--values-per-subject=", 21) == 0) {
      values_per_subject = static_cast<size_t>(std::atoll(argv[i] + 21));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<size_t>(std::atoll(argv[i] + 7));
    }
  }

  // Synthetic table: subjects 2, 4, 6, ... (gaps model non-CFS nodes),
  // `values_per_subject` objects each.
  std::mt19937_64 rng(42);
  bench::RowPairTable rows;
  AttributeTable csr;
  csr.name = "bench";
  for (size_t i = 0; i < num_subjects; ++i) {
    TermId s = static_cast<TermId>(2 * i + 2);
    for (size_t v = 0; v < values_per_subject; ++v) {
      TermId o = static_cast<TermId>(rng() % 100000);
      rows.rows.emplace_back(s, o);
      csr.AddRow(s, o);
    }
  }
  std::sort(rows.rows.begin(), rows.rows.end());
  rows.rows.erase(std::unique(rows.rows.begin(), rows.rows.end()),
                  rows.rows.end());
  csr.Seal();

  // A sorted "CFS" of every other subject (50% selectivity) for merge joins,
  // and random probe subjects (half present, half absent) for point lookups.
  std::vector<TermId> members;
  for (size_t i = 0; i < num_subjects; i += 2) {
    members.push_back(static_cast<TermId>(2 * i + 2));
  }
  std::vector<TermId> probes;
  for (size_t i = 0; i < 100000; ++i) {
    probes.push_back(static_cast<TermId>(rng() % (2 * num_subjects + 2)));
  }

  std::cout << "== Store scan micro-benchmark: row-pair vs columnar CSR ==\n"
            << csr.num_rows() << " rows, " << csr.num_subjects()
            << " subjects, " << values_per_subject << " values/subject, best of "
            << reps << " reps\n\n";

  uint64_t sink = 0;
  auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (size_t r = 0; r < reps; ++r) {
      Timer t;
      fn();
      best = std::min(best, t.ElapsedMillis());
    }
    return best;
  };

  // --- Full scan: every (subject, object) pair once.
  double scan_rows = best_of([&] {
    for (const auto& [s, o] : rows.rows) sink += s ^ o;
  });
  double scan_csr = best_of([&] {
    csr.ForEachRow([&](TermId s, TermId o) { sink += s ^ o; });
  });
  // The tighter columnar idiom: object column only (offline value stats).
  double scan_csr_col = best_of([&] {
    for (TermId o : csr.objects()) sink += o;
  });

  // --- Merge join against the sorted member list.
  double join_rows = best_of([&] {
    size_t mi = 0;
    for (const auto& [s, o] : rows.rows) {
      while (mi < members.size() && members[mi] < s) ++mi;
      if (mi == members.size()) break;
      if (members[mi] != s) continue;
      sink += o;
    }
  });
  double join_csr = best_of([&] {
    // The production idiom itself, not a copy of it.
    ForEachCfsMatch(csr, members, [&](size_t /*mi*/, size_t si) {
      for (TermId o : csr.values(si)) sink += o;
    });
  });

  // --- Point lookups: allocating vector vs zero-allocation span.
  double probe_rows = best_of([&] {
    for (TermId p : probes) {
      for (TermId o : rows.ValuesOf(p)) sink += o;
    }
  });
  double probe_csr = best_of([&] {
    for (TermId p : probes) {
      for (TermId o : csr.ValuesOf(p)) sink += o;
    }
  });

  TablePrinter table({"access pattern", "row-pair ms", "columnar ms", "speedup"});
  auto row = [&](const char* label, double old_ms, double new_ms) {
    table.AddRow({label, bench::Fmt(old_ms), bench::Fmt(new_ms),
                  bench::Fmt(old_ms / std::max(1e-9, new_ms)) + "x"});
  };
  row("full scan (pairs)", scan_rows, scan_csr);
  row("full scan (object column)", scan_rows, scan_csr_col);
  row("merge join vs CFS", join_rows, join_csr);
  row("100k point lookups", probe_rows, probe_csr);
  table.Print(std::cout);
  std::cout << "\n(checksum " << sink << ")\n";
  return 0;
}
