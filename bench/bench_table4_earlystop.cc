// Regenerates Table 4 (Experiment 4): early-stop effectiveness per dataset —
// evaluation time without/with ES, the time gain, the fraction of aggregates
// pruned, and the top-k accuracy, for k in {3, 5, 10}; sample size 60, two
// batches (the paper's configuration).
//
// Paper shape (R6/R7): gains of 10-43% with aggressive pruning and
// mostly-100% accuracy, with occasional misses on graphs whose score
// distribution is flat near the threshold (Nobel in the paper).
//
// Substrate note (see EXPERIMENTS.md): the paper evaluates aggregates via
// PostgreSQL, so skipping an aggregate saves milliseconds; our in-memory
// MVDCube evaluates so fast that sampling overhead only amortizes once
// groups are much larger than the sample (the planner applies exactly that
// rule). Datasets are therefore scaled up (x4) relative to the other
// benches; graphs whose groups stay smaller than the sample (CEOs-like
// shapes) legitimately show negative gains here, as Foodista does in the
// paper's own Table 4.

#include <set>

#include "bench/bench_common.h"

namespace spade {
namespace bench {
namespace {

constexpr double kScaleBoost = 4.0;

struct EsRun {
  double eval_ms = 0;
  size_t total = 0, pruned = 0;
  std::vector<AggregateKey> topk;
};

EsRun Run(RealDataset ds, bool earlystop, size_t k) {
  SpadeOptions options = BenchOptions();
  options.enable_earlystop = earlystop;
  options.earlystop.sample_size = 60;
  options.earlystop.num_batches = 2;
  options.earlystop.top_k = k;
  options.top_k = k;
  // Airline gets an extra boost: it is the paper's strongest ES case (6M
  // facts there), and its group sizes grow linearly with scale while the
  // sampling cost stays fixed.
  double scale = DatasetScale(ds) * kScaleBoost *
                 (ds == RealDataset::kAirline ? 3.0 : 1.0);
  auto graph = GenerateRealDataset(ds, 42, scale);
  Spade spade(graph.get(), options);
  if (!spade.RunOffline().ok()) std::exit(1);
  auto insights = spade.RunOnline();
  if (!insights.ok()) std::exit(1);
  EsRun out;
  out.eval_ms = spade.report().timings.evaluation_ms +
                spade.report().timings.earlystop_ms;
  out.total = spade.report().num_evaluated_aggregates +
              spade.report().num_pruned_aggregates;
  out.pruned = spade.report().num_pruned_aggregates;
  for (const auto& insight : *insights) out.topk.push_back(insight.ranked.key);
  return out;
}

void Main() {
  std::cout << "== Table 4: early-stop effectiveness (sample 60, 2 batches) "
               "==\n\n";
  TablePrinter table({"Dataset", "k", "MVD ms", "MVD+ES ms", "gain%",
                      "pruned%", "acc%"});
  for (RealDataset ds : AllRealDatasets()) {
    // The exhaustive baseline does not depend on k (its ranking is a prefix
    // of the k=10 ranking); run it once.
    EsRun base = Run(ds, false, 10);
    for (size_t k : {3u, 5u, 10u}) {
      EsRun es = Run(ds, true, k);
      double gain = base.eval_ms > 0 ? 1.0 - es.eval_ms / base.eval_ms : 0;
      double pruned_frac =
          es.total > 0 ? static_cast<double>(es.pruned) / es.total : 0;
      size_t take = std::min<size_t>(k, base.topk.size());
      std::set<AggregateKey> truth(base.topk.begin(),
                                   base.topk.begin() + static_cast<long>(take));
      size_t hits = 0;
      for (const auto& key : es.topk) hits += truth.count(key);
      double acc = truth.empty()
                       ? 1.0
                       : static_cast<double>(hits) / static_cast<double>(truth.size());
      table.AddRow({RealDatasetName(ds), std::to_string(k), Ms(base.eval_ms),
                    Ms(es.eval_ms), Pct(gain), Pct(pruned_frac), Pct(acc)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nR6/R7: pruning is aggressive where groups outsize the\n"
            << "sample (Airline); graphs with tiny groups show the sampling\n"
            << "overhead instead (the paper's Foodista phenomenon).\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main() {
  spade::bench::Main();
  return 0;
}
