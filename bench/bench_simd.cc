// Measure-fold kernel benchmark: ns/fact of the scalar lane-strided kernel
// vs the runtime-dispatched vector kernel (AVX2 on x86, NEON on aarch64),
// over the span shapes the MVDCube emit path actually produces — dense
// contiguous runs (run/bitset containers, the loadu fast path) and sparse
// gather spans (array containers) — at block-boundary sizes; plus a
// Figure-12-shaped end-to-end online run comparing --simd=scalar against
// the dispatched path (bit-identical results, wall-clock only).
//
// Usage: bench_simd [--json[=FILE]]
//
// --json writes BENCH_simd.json: per-kernel records {kind:"kernel", pattern,
// size, kernel, ns_per_fact, speedup_vs_scalar} and end-to-end records
// {kind:"online", simd, kernel, online_wall_ms}. The acceptance line for
// this repo: on AVX2 hosts the vector kernel is >= 1.5x scalar on dense
// spans of >= 4096 facts.

#include <cinttypes>
#include <cstring>
#include <fstream>

#include "bench/bench_common.h"
#include "src/datagen/synthetic.h"
#include "src/simd/measure_fold.h"
#include "src/store/preagg.h"
#include "src/util/rng.h"

namespace spade {
namespace bench {
namespace {

struct KernelRecord {
  std::string pattern;
  size_t size = 0;
  std::string kernel;
  double ns_per_fact = 0;
  double speedup_vs_scalar = 1.0;
};

struct OnlineRecord {
  std::string simd;
  std::string kernel;
  double online_wall_ms = 0;
};

std::vector<KernelRecord> g_kernel_records;
std::vector<OnlineRecord> g_online_records;

MeasureVector MakeMeasures(size_t universe, uint64_t seed) {
  MeasureVector mv;
  mv.Init(universe);
  Rng rng(seed);
  for (size_t f = 0; f < universe; ++f) {
    if (rng.Uniform(8) == 0) continue;  // ~1/8 missing
    uint32_t c = static_cast<uint32_t>(1 + rng.Uniform(3));
    mv.count[f] = c;
    mv.sum[f] = rng.NextDouble() * 1e6;
    mv.min[f] = mv.sum[f] / c - rng.NextDouble();
    mv.max[f] = mv.sum[f] / c + rng.NextDouble();
  }
  return mv;
}

/// Dense: one contiguous run (the shape decoded from run/bitset containers
/// of packed cells). Sparse: stride-5 + jitter, defeating the contiguity
/// fast path (the array-container shape).
std::vector<uint32_t> MakeSpan(const char* pattern, size_t size,
                               size_t universe) {
  std::vector<uint32_t> span;
  span.reserve(size);
  if (std::strcmp(pattern, "dense") == 0) {
    for (size_t i = 0; i < size; ++i) span.push_back(static_cast<uint32_t>(i));
    return span;
  }
  Rng rng(size * 2654435761u);
  uint32_t v = 0;
  const uint32_t max_step =
      static_cast<uint32_t>((universe - size * 5) / size + 5);
  for (size_t i = 0; i < size; ++i) {
    v += 1 + static_cast<uint32_t>(rng.Uniform(max_step));
    span.push_back(v);
  }
  return span;
}

double TimeKernelNsPerFact(simd::MeasureFoldFn fn,
                           const std::vector<uint32_t>& span,
                           const MeasureVector& mv) {
  simd::FoldAcc acc;
  // Repeat until ~20ms measured; report best-of-3 to shed scheduler noise.
  const size_t reps = std::max<size_t>(1, (1u << 22) / std::max<size_t>(span.size(), 1));
  double best = 1e300;
  double sink = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    Timer timer;
    for (size_t r = 0; r < reps; ++r) {
      acc.Reset();
      fn(span.data(), span.size(), mv.count.data(), mv.sum.data(),
         mv.min.data(), mv.max.data(), &acc);
      sink += acc.sum[0];
    }
    best = std::min(best, timer.ElapsedMillis());
  }
  if (sink == 12345.6789) std::cout << "";  // keep the fold observable
  return best * 1e6 / (static_cast<double>(reps) * span.size());
}

void KernelSweep() {
  const size_t universe = 1u << 21;
  MeasureVector mv = MakeMeasures(universe, 0xBE7C);
  const simd::FoldKernel vec = simd::ResolveFoldKernel(simd::SimdMode::kAuto);
  std::cout << "-- fold kernels: scalar vs dispatched ("
            << simd::FoldKernelKindName(vec.kind) << ") --\n";
  TablePrinter table(
      {"pattern", "facts", "scalar ns/fact", "vector ns/fact", "speedup"});
  for (const char* pattern : {"dense", "sparse"}) {
    for (size_t size : {size_t{1024}, size_t{4096}, size_t{65536},
                        size_t{1u << 20}}) {
      std::vector<uint32_t> span = MakeSpan(pattern, size, universe);
      const double scalar_ns =
          TimeKernelNsPerFact(&simd::FoldMeasureScalar, span, mv);
      const double vec_ns = TimeKernelNsPerFact(vec.fn, span, mv);
      const double speedup = scalar_ns / std::max(1e-9, vec_ns);
      char buf[3][32];
      std::snprintf(buf[0], sizeof(buf[0]), "%.2f", scalar_ns);
      std::snprintf(buf[1], sizeof(buf[1]), "%.2f", vec_ns);
      std::snprintf(buf[2], sizeof(buf[2]), "%.2fx", speedup);
      table.AddRow({pattern, std::to_string(size), buf[0], buf[1], buf[2]});
      g_kernel_records.push_back(
          {pattern, size, "scalar", scalar_ns, 1.0});
      g_kernel_records.push_back({pattern, size,
                                  simd::FoldKernelKindName(vec.kind), vec_ns,
                                  speedup});
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void OnlineWall(size_t facts) {
  // Figure-12 shape (single CFS, N=3, many measures) — the configuration
  // whose online phase is fold-dominated. Results are bit-identical across
  // the simd axis (tests pin this); only wall-clock differs.
  std::cout << "-- end-to-end online wall, fig12 shape (" << facts
            << " facts) --\n";
  TablePrinter table({"simd", "kernel", "online ms"});
  for (simd::SimdMode mode : {simd::SimdMode::kScalar, simd::SimdMode::kAuto}) {
    SyntheticOptions sopts;
    sopts.num_facts = facts;
    sopts.dim_cardinality.assign(3, 100);
    sopts.num_measures = 15;
    sopts.sparsity = 0.1;
    auto graph = GenerateSynthetic(sopts);
    SpadeOptions options = BenchOptions();
    options.cfs.min_size = 100;
    options.enumeration.max_dims = 3;
    options.num_threads = 1;  // isolate the fold, not the parallelism
    options.mvd.simd = mode;
    Spade spade(graph.get(), options);
    if (!spade.RunOffline().ok()) std::exit(1);
    if (!spade.RunOnline().ok()) std::exit(1);
    OnlineRecord rec;
    rec.simd = simd::SimdModeName(mode);
    rec.kernel = spade.report().simd_kernel;
    rec.online_wall_ms = spade.report().timings.online_wall_ms;
    table.AddRow({rec.simd, rec.kernel, Ms(rec.online_wall_ms)});
    g_online_records.push_back(std::move(rec));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_simd: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "[\n";
  bool first = true;
  for (const KernelRecord& r : g_kernel_records) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"kind\": \"kernel\", \"pattern\": \"" << r.pattern
        << "\", \"size\": " << r.size << ", \"kernel\": \"" << r.kernel
        << "\", \"ns_per_fact\": " << r.ns_per_fact
        << ", \"speedup_vs_scalar\": " << r.speedup_vs_scalar << "}";
  }
  for (const OnlineRecord& r : g_online_records) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"kind\": \"online\", \"simd\": \"" << r.simd
        << "\", \"kernel\": \"" << r.kernel
        << "\", \"online_wall_ms\": " << r.online_wall_ms << "}";
  }
  out << "\n]\n";
  std::cout << "wrote "
            << g_kernel_records.size() + g_online_records.size()
            << " records to " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  std::string json_path;
  size_t facts = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_simd.json";
    } else if (std::strncmp(argv[i], "--facts=", 8) == 0) {
      facts = static_cast<size_t>(std::atoll(argv[i] + 8));
    }
  }
  std::cout << "== Measure-fold kernels (dispatched: "
            << spade::simd::FoldKernelKindName(
                   spade::simd::ResolveFoldKernel(spade::simd::SimdMode::kAuto)
                       .kind)
            << ") ==\n\n";
  spade::bench::KernelSweep();
  spade::bench::OnlineWall(facts);
  if (!json_path.empty()) spade::bench::WriteJson(json_path);
  return 0;
}
