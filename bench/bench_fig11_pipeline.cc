// Regenerates Figure 11 (Experiment 5): per-step time of Spade's online
// pipeline on twelve synthetic configurations — value distribution "u"
// (uniform 100:100:100) or "d" (decreasing 100:5:2), sparsity 0.1 / 0.5, and
// 3 / 5 / 10 measures; |CFS| scaled to 100k facts (paper: 1M on a 40-core
// server). Paper shape (R8): Aggregate Evaluation dominates, Online Attribute
// Analysis is second and grows with the number of measures; CFS selection is
// negligible.

#include "bench/bench_common.h"
#include "src/datagen/synthetic.h"

namespace spade {
namespace bench {
namespace {

void Main() {
  std::cout << "== Figure 11: run times of the steps in Spade's online "
               "pipeline ==\n"
            << "(synthetic |CFS| = 100k, N = 3; columns are milliseconds)\n\n";
  TablePrinter table({"config", "CFS sel", "attr analysis", "enum",
                      "evaluation", "top-k", "online total"});
  for (const char* dist : {"u", "d"}) {
    for (double sparsity : {0.1, 0.5}) {
      for (size_t measures : {3u, 5u, 10u}) {
        SyntheticOptions sopts;
        sopts.num_facts = 100000;
        sopts.dim_cardinality =
            (dist[0] == 'u') ? std::vector<int>{100, 100, 100}
                             : std::vector<int>{100, 5, 2};
        sopts.num_measures = measures;
        sopts.sparsity = sparsity;
        auto graph = GenerateSynthetic(sopts);

        SpadeOptions options = BenchOptions();
        options.enumeration.max_measures_per_lattice = measures;
        options.cfs.min_size = 100;
        Spade spade(graph.get(), options);
        if (!spade.RunOffline().ok()) std::exit(1);
        if (!spade.RunOnline().ok()) std::exit(1);
        const SpadeTimings& t = spade.report().timings;
        char config[32];
        std::snprintf(config, sizeof(config), "%s|%.1f|%zu", dist, sparsity,
                      measures);
        table.AddRow({config, Ms(t.cfs_selection_ms),
                      Ms(t.attribute_analysis_ms), Ms(t.enumeration_ms),
                      Ms(t.evaluation_ms), Ms(t.topk_ms),
                      Ms(t.OnlineTotal())});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nR8: evaluation dominates and grows with #measures and\n"
            << "#distinct groups; attribute analysis is second.\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main() {
  spade::bench::Main();
  return 0;
}
