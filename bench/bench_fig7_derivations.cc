// Regenerates Figure 7 (Experiment 1): the interestingness (variance) of the
// MDAs found with and without derived properties, per dataset. The paper's
// remark R1: derivations increase both the number of enumerated MDAs and the
// interestingness of the best aggregates.

#include <algorithm>

#include "bench/bench_common.h"

namespace spade {
namespace bench {
namespace {

struct Outcome {
  size_t num_mdas = 0;
  std::vector<double> top_scores;  // descending
};

Outcome Run(RealDataset ds, bool derivations) {
  SpadeOptions options = BenchOptions();
  options.enable_derivations = derivations;
  options.top_k = 10;
  // Wider caps than the timing benches: R1 compares *search spaces*, so the
  // wD run must be allowed to keep the woD aggregates alongside the derived
  // ones instead of displacing them at the cap.
  options.enumeration.max_lattices_per_cfs = 16;
  options.enumeration.max_measures_per_lattice = 8;
  auto graph = GenerateRealDataset(ds, 42, DatasetScale(ds));
  Spade spade(graph.get(), options);
  if (!spade.RunOffline().ok()) std::exit(1);
  auto insights = spade.RunOnline();
  if (!insights.ok()) std::exit(1);
  Outcome out;
  out.num_mdas = spade.report().num_candidate_aggregates;
  for (const auto& insight : *insights) {
    out.top_scores.push_back(insight.ranked.score);
  }
  return out;
}

std::string Sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

void Main() {
  std::cout << "== Figure 7: interestingness of MDAs, woD vs wD ==\n"
            << "(per dataset: #MDAs enumerated and the top-3 variance scores;\n"
            << " the paper plots one tick per MDA — we print the head of that\n"
            << " distribution)\n\n";
  TablePrinter table({"Dataset", "#MDA woD", "top scores woD", "#MDA wD",
                      "top scores wD", "R1 holds"});
  for (RealDataset ds : AllRealDatasets()) {
    Outcome wo = Run(ds, false);
    Outcome w = Run(ds, true);
    auto fmt = [](const std::vector<double>& scores) {
      std::string out;
      for (size_t i = 0; i < std::min<size_t>(3, scores.size()); ++i) {
        if (i > 0) out += " ";
        out += Sci(scores[i]);
      }
      return out.empty() ? "-" : out;
    };
    double best_wo = wo.top_scores.empty() ? 0 : wo.top_scores[0];
    double best_w = w.top_scores.empty() ? 0 : w.top_scores[0];
    bool r1 = w.num_mdas >= wo.num_mdas && best_w >= best_wo;
    table.AddRow({RealDatasetName(ds), std::to_string(wo.num_mdas),
                  fmt(wo.top_scores), std::to_string(w.num_mdas),
                  fmt(w.top_scores), r1 ? "yes" : "no"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main() {
  spade::bench::Main();
  return 0;
}
