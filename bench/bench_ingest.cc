// Streaming-ingest bench: sequential vs overlapped offline phase on an
// N-Triples corpus serialized from the synthetic generator (the shape of
// the paper's Table 2 dataset loads). For each configuration the whole
// offline phase runs — parse, attribute tables, offline statistics,
// structural summary, derivations — and the numbers reported are:
//
//   offline_wall_ms   end-to-end offline wall-clock (the speedup metric)
//   parse_ms          producer loop: parse + dictionary interning
//   overlap_ms        worker time executed while the parser was producing
//   scatter/build/stats work   per-stage work summed across workers
//
// Results are identical in every configuration (byte-identical store, same
// statistics — tests/ingest_test.cc asserts it); a store checksum is
// printed per run as a cross-check. On a 1-core container >= 2-thread
// wall-clock shows oversubscription, not speedup; overlap_ms still reports
// how much work the pipeline moved into the parse window.
//
// Usage: bench_ingest [--facts=N] [--types=K] [--chunk=N] [--json[=FILE]]
//
// --json writes every configuration's numbers as a machine-readable JSON
// array (default file: BENCH_ingest.json; schema in bench/README.md) so CI
// can track the offline-phase trajectory across commits.

#include <cstring>
#include <fstream>
#include <sstream>

#include "bench/bench_common.h"
#include "src/datagen/synthetic.h"
#include "src/ingest/chunk_source.h"
#include "src/rdf/ntriples.h"

namespace spade {
namespace bench {
namespace {

struct RunResult {
  std::string mode;  ///< "sequential" | "streaming"
  size_t threads = 1;
  size_t chunk_triples = 0;  ///< 0 for the sequential mode
  double offline_wall_ms = 0;
  double parse_ms = 0;
  double overlap_ms = 0;
  double scatter_work_ms = 0;
  double build_work_ms = 0;
  double stats_work_ms = 0;
  size_t num_chunks = 0;
  size_t peak_chunk_triples = 0;
  size_t num_triples = 0;
  uint64_t store_checksum = 0;  ///< equal across modes or the run is wrong
};

std::vector<RunResult> g_results;

/// Order-insensitive content fingerprint of the sealed store: attribute
/// count, row counts and column sums. Equal sealed stores => equal sums.
uint64_t StoreChecksum(const AttributeStore& store) {
  uint64_t sum = store.num_attributes();
  for (AttrId a = 0; a < store.num_attributes(); ++a) {
    const AttributeTable& t = store.attribute(a);
    sum = sum * 1000003 + t.num_rows();
    for (TermId s : t.subjects()) sum += s;
    for (TermId o : t.objects()) sum += 31 * static_cast<uint64_t>(o);
  }
  return sum;
}

RunResult RunOnce(const std::string& nt, bool streaming, size_t chunk,
                  size_t threads) {
  Graph graph;
  SpadeOptions options;
  options.num_threads = threads;
  options.ingest.enabled = streaming;
  options.ingest.chunk_triples = chunk;
  Spade spade(&graph, options);
  std::istringstream in(nt);
  NTriplesChunkSource source(in, &graph);
  if (!spade.RunOffline(&source).ok()) {
    std::cerr << "bench_ingest: offline phase failed\n";
    std::exit(1);
  }
  RunResult r;
  r.mode = streaming ? "streaming" : "sequential";
  r.threads = threads;
  r.chunk_triples = streaming ? chunk : 0;
  r.offline_wall_ms = spade.report().timings.offline_wall_ms;
  r.parse_ms = spade.report().ingest.parse_ms;
  r.overlap_ms = spade.report().ingest.overlap_ms;
  r.scatter_work_ms = spade.report().ingest.scatter_work_ms;
  r.build_work_ms = spade.report().ingest.build_work_ms;
  r.stats_work_ms = spade.report().ingest.stats_work_ms;
  r.num_chunks = spade.report().ingest.num_chunks;
  r.peak_chunk_triples = spade.report().ingest.peak_chunk_triples;
  r.num_triples = spade.report().num_triples;
  r.store_checksum = StoreChecksum(spade.store());
  return r;
}

/// Minimal JSON emission — flat array of per-config records.
void WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_ingest: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "[\n";
  for (size_t i = 0; i < g_results.size(); ++i) {
    const RunResult& r = g_results[i];
    out << "  {\"mode\": \"" << r.mode << "\", \"threads\": " << r.threads
        << ", \"chunk_triples\": " << r.chunk_triples
        << ", \"offline_wall_ms\": " << r.offline_wall_ms
        << ", \"parse_ms\": " << r.parse_ms
        << ", \"overlap_ms\": " << r.overlap_ms
        << ", \"scatter_work_ms\": " << r.scatter_work_ms
        << ", \"build_work_ms\": " << r.build_work_ms
        << ", \"stats_work_ms\": " << r.stats_work_ms
        << ", \"num_chunks\": " << r.num_chunks
        << ", \"peak_chunk_triples\": " << r.peak_chunk_triples
        << ", \"num_triples\": " << r.num_triples
        << ", \"store_checksum\": " << r.store_checksum << "}"
        << (i + 1 < g_results.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << g_results.size() << " records to " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  size_t facts = 120000;
  size_t types = 8;
  size_t chunk = 65536;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--facts=", 8) == 0) {
      facts = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--types=", 8) == 0) {
      types = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--chunk=", 8) == 0) {
      chunk = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_ingest.json";
    }
  }

  using spade::bench::Ms;
  using spade::bench::RunOnce;

  // The ingest corpus: a multi-type synthetic graph serialized as
  // N-Triples, so the bench measures the real parse + intern + build path.
  spade::SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality.assign(3, 100);
  sopts.num_measures = 6;
  sopts.num_fact_types = types;
  auto graph = spade::GenerateSynthetic(sopts);
  std::ostringstream nt_stream;
  spade::NTriplesWriter::Write(*graph, nt_stream);
  const std::string nt = nt_stream.str();
  graph.reset();

  std::cout << "== Streaming ingest: sequential vs overlapped offline phase ("
            << spade::ThreadPool::HardwareConcurrency()
            << " hardware threads, corpus " << nt.size() / (1024 * 1024)
            << " MiB) ==\n\n";

  spade::TablePrinter table({"mode", "threads", "chunk", "offline ms",
                             "parse ms", "overlap ms", "chunks", "checksum"});
  auto add = [&](const spade::bench::RunResult& r) {
    table.AddRow({r.mode, std::to_string(r.threads),
                  std::to_string(r.chunk_triples), Ms(r.offline_wall_ms),
                  Ms(r.parse_ms), Ms(r.overlap_ms), std::to_string(r.num_chunks),
                  std::to_string(r.store_checksum % 100000)});
    spade::bench::g_results.push_back(r);
  };

  add(RunOnce(nt, /*streaming=*/false, chunk, 1));
  for (size_t threads : {1u, 2u, 4u}) {
    add(RunOnce(nt, /*streaming=*/true, chunk, threads));
  }
  // Chunk-size sensitivity at a fixed thread count.
  for (size_t c : {chunk / 8, chunk * 4}) {
    if (c == 0) continue;
    add(RunOnce(nt, /*streaming=*/true, c, 2));
  }
  table.Print(std::cout);

  bool checksums_equal = true;
  for (const auto& r : spade::bench::g_results) {
    checksums_equal &=
        r.store_checksum == spade::bench::g_results.front().store_checksum;
  }
  std::cout << "\nstore checksums "
            << (checksums_equal ? "identical across all modes"
                                : "DIFFER — streamed build is wrong")
            << "\n";
  if (!json_path.empty()) spade::bench::WriteJson(json_path);
  return checksums_equal ? 0 : 1;
}
