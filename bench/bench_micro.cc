// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// Roaring bitmap operations, MVDCube lattice evaluation, the MMST builder,
// the reference evaluator (as the non-shared baseline), and the early-stop
// estimator. Run with --benchmark_filter=... to focus.

#include <benchmark/benchmark.h>

#include "src/bitmap/roaring.h"
#include "src/core/earlystop.h"
#include "src/core/mvdcube.h"
#include "src/core/reference.h"
#include "src/datagen/synthetic.h"
#include "src/util/rng.h"

namespace spade {
namespace {

void BM_RoaringAddSparse(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint32_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Uniform(1u << 28)));
  }
  for (auto _ : state) {
    RoaringBitmap bm;
    for (uint32_t v : values) bm.Add(v);
    benchmark::DoNotOptimize(bm.Cardinality());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_RoaringAddSparse);

void BM_RoaringAddDense(benchmark::State& state) {
  for (auto _ : state) {
    RoaringBitmap bm;
    for (uint32_t v = 0; v < 20000; ++v) bm.Add(v);
    benchmark::DoNotOptimize(bm.Cardinality());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_RoaringAddDense);

void BM_RoaringUnion(benchmark::State& state) {
  Rng rng(2);
  RoaringBitmap a, b;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    a.Add(static_cast<uint32_t>(rng.Uniform(1u << 20)));
    b.Add(static_cast<uint32_t>(rng.Uniform(1u << 20)));
  }
  for (auto _ : state) {
    RoaringBitmap c = a;
    c.UnionWith(b);
    benchmark::DoNotOptimize(c.Cardinality());
  }
}
BENCHMARK(BM_RoaringUnion)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RoaringIterate(benchmark::State& state) {
  Rng rng(3);
  RoaringBitmap a;
  for (int i = 0; i < 50000; ++i) {
    a.Add(static_cast<uint32_t>(rng.Uniform(1u << 22)));
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    a.ForEach([&](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RoaringIterate);

/// Shared fixture data for the cube kernels.
struct CubeData {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<AttributeStore> db;
  std::unique_ptr<CfsIndex> cfs;
  LatticeSpec spec;
};

CubeData MakeCubeData(size_t facts, size_t dims, size_t measures) {
  CubeData out;
  SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality.assign(dims, 20);
  sopts.num_measures = measures;
  out.graph = GenerateSynthetic(sopts);
  out.db = std::make_unique<AttributeStore>(out.graph.get());
  out.db->BuildDirectAttributes();
  TermId type = out.graph->dict().InternIri(synth::kFactType);
  out.cfs = std::make_unique<CfsIndex>(out.graph->NodesOfType(type));
  for (size_t d = 0; d < dims; ++d) {
    out.spec.dims.push_back(*out.db->FindAttribute("dim" + std::to_string(d)));
  }
  std::sort(out.spec.dims.begin(), out.spec.dims.end());
  out.spec.measures.push_back(MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount});
  for (size_t m = 0; m < measures; ++m) {
    AttrId a = *out.db->FindAttribute("measure" + std::to_string(m));
    out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kSum});
    out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kAvg});
  }
  return out;
}

void BM_MvdCubeLattice(benchmark::State& state) {
  CubeData data = MakeCubeData(static_cast<size_t>(state.range(0)), 3, 3);
  for (auto _ : state) {
    Arm arm(4);
    MeasureCache cache;
    EvaluateLatticeMvd(*data.db, 0, *data.cfs, data.spec, MvdCubeOptions(),
                       &arm, &cache);
    benchmark::DoNotOptimize(arm.num_aggregates());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MvdCubeLattice)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_ReferenceLattice(benchmark::State& state) {
  CubeData data = MakeCubeData(static_cast<size_t>(state.range(0)), 3, 3);
  for (auto _ : state) {
    auto results = EvaluateReference(*data.db, 0, *data.cfs, data.spec);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReferenceLattice)->Arg(10000)->Arg(50000);

void BM_MmstBuild(benchmark::State& state) {
  std::vector<int> extents(static_cast<size_t>(state.range(0)), 101);
  for (auto _ : state) {
    Mmst mmst = Mmst::Build(extents, 16);
    benchmark::DoNotOptimize(mmst.total_memory_cells());
  }
}
BENCHMARK(BM_MmstBuild)->Arg(2)->Arg(3)->Arg(4);

void BM_EstimateScore(benchmark::State& state) {
  Rng rng(5);
  size_t groups = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> values(groups);
  std::vector<double> scales(groups, 1.0);
  for (auto& v : values) {
    for (int i = 0; i < 60; ++i) v.push_back(rng.NextGaussian());
  }
  for (auto _ : state) {
    ScoreEstimate est =
        EstimateScore(InterestingnessKind::kVariance, values, scales, 0.05);
    benchmark::DoNotOptimize(est.upper);
  }
  state.SetItemsProcessed(state.iterations() * groups);
}
BENCHMARK(BM_EstimateScore)->Arg(10)->Arg(100)->Arg(1000);

void BM_OnlineMoments(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(rng.NextDouble());
  for (auto _ : state) {
    OnlineMoments om;
    for (double v : values) om.Add(v);
    benchmark::DoNotOptimize(om.kurtosis());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_OnlineMoments);

}  // namespace
}  // namespace spade

BENCHMARK_MAIN();
