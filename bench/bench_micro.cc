// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// Roaring bitmap operations, MVDCube lattice evaluation, the MMST builder,
// the reference evaluator (as the non-shared baseline), and the early-stop
// estimator. Run with --benchmark_filter=... to focus.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>

#include "src/bitmap/roaring.h"
#include "src/core/earlystop.h"
#include "src/core/mvdcube.h"
#include "src/core/reference.h"
#include "src/datagen/synthetic.h"
#include "src/util/rng.h"

namespace spade {
namespace {

void BM_RoaringAddSparse(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint32_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Uniform(1u << 28)));
  }
  for (auto _ : state) {
    RoaringBitmap bm;
    for (uint32_t v : values) bm.Add(v);
    benchmark::DoNotOptimize(bm.Cardinality());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_RoaringAddSparse);

void BM_RoaringAddDense(benchmark::State& state) {
  for (auto _ : state) {
    RoaringBitmap bm;
    for (uint32_t v = 0; v < 20000; ++v) bm.Add(v);
    benchmark::DoNotOptimize(bm.Cardinality());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_RoaringAddDense);

void BM_RoaringUnion(benchmark::State& state) {
  Rng rng(2);
  RoaringBitmap a, b;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    a.Add(static_cast<uint32_t>(rng.Uniform(1u << 20)));
    b.Add(static_cast<uint32_t>(rng.Uniform(1u << 20)));
  }
  for (auto _ : state) {
    RoaringBitmap c = a;
    c.UnionWith(b);
    benchmark::DoNotOptimize(c.Cardinality());
  }
}
BENCHMARK(BM_RoaringUnion)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RoaringIterate(benchmark::State& state) {
  Rng rng(3);
  RoaringBitmap a;
  for (int i = 0; i < 50000; ++i) {
    a.Add(static_cast<uint32_t>(rng.Uniform(1u << 22)));
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    a.ForEach([&](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RoaringIterate);

/// Shared fixture data for the cube kernels.
struct CubeData {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<AttributeStore> db;
  std::unique_ptr<CfsIndex> cfs;
  LatticeSpec spec;
};

CubeData MakeCubeData(size_t facts, size_t dims, size_t measures) {
  CubeData out;
  SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality.assign(dims, 20);
  sopts.num_measures = measures;
  out.graph = GenerateSynthetic(sopts);
  out.db = std::make_unique<AttributeStore>(out.graph.get());
  out.db->BuildDirectAttributes();
  TermId type = out.graph->dict().InternIri(synth::kFactType);
  out.cfs = std::make_unique<CfsIndex>(out.graph->NodesOfType(type));
  for (size_t d = 0; d < dims; ++d) {
    out.spec.dims.push_back(*out.db->FindAttribute("dim" + std::to_string(d)));
  }
  std::sort(out.spec.dims.begin(), out.spec.dims.end());
  out.spec.measures.push_back(MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount});
  for (size_t m = 0; m < measures; ++m) {
    AttrId a = *out.db->FindAttribute("measure" + std::to_string(m));
    out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kSum});
    out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kAvg});
  }
  return out;
}

void BM_MvdCubeLattice(benchmark::State& state) {
  CubeData data = MakeCubeData(static_cast<size_t>(state.range(0)), 3, 3);
  for (auto _ : state) {
    Arm arm(4);
    MeasureCache cache;
    EvaluateLatticeMvd(*data.db, 0, *data.cfs, data.spec, MvdCubeOptions(),
                       &arm, &cache);
    benchmark::DoNotOptimize(arm.num_aggregates());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MvdCubeLattice)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_ReferenceLattice(benchmark::State& state) {
  CubeData data = MakeCubeData(static_cast<size_t>(state.range(0)), 3, 3);
  for (auto _ : state) {
    auto results = EvaluateReference(*data.db, 0, *data.cfs, data.spec);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReferenceLattice)->Arg(10000)->Arg(50000);

void BM_MmstBuild(benchmark::State& state) {
  std::vector<int> extents(static_cast<size_t>(state.range(0)), 101);
  for (auto _ : state) {
    Mmst mmst = Mmst::Build(extents, 16);
    benchmark::DoNotOptimize(mmst.total_memory_cells());
  }
}
BENCHMARK(BM_MmstBuild)->Arg(2)->Arg(3)->Arg(4);

void BM_EstimateScore(benchmark::State& state) {
  Rng rng(5);
  size_t groups = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> values(groups);
  std::vector<double> scales(groups, 1.0);
  for (auto& v : values) {
    for (int i = 0; i < 60; ++i) v.push_back(rng.NextGaussian());
  }
  for (auto _ : state) {
    ScoreEstimate est =
        EstimateScore(InterestingnessKind::kVariance, values, scales, 0.05);
    benchmark::DoNotOptimize(est.upper);
  }
  state.SetItemsProcessed(state.iterations() * groups);
}
BENCHMARK(BM_EstimateScore)->Arg(10)->Arg(100)->Arg(1000);

// --- Scaffold emit path: templated functors vs std::function ---------------
//
// PR 3 templatized CubeScaffold on the load/merge/emit callable types and
// made the flush path allocation-free (flat per-node coordinate scratch
// instead of a vector<vector<int32_t>> per flush, DecodePartitionInto
// instead of a fresh vector per partition). Passing std::function-wrapped
// callables instantiates the same template with indirect dispatch per
// fact/cell — the old cost model — so the pair documents the scalar win.

struct MicroCountCell {
  uint64_t n = 0;
  bool Empty() const { return n == 0; }
};

struct ScaffoldData {
  std::vector<DimensionEncoding> encs;
  Mmst mmst;
  Translation tr;
};

ScaffoldData MakeScaffoldData(size_t num_facts, int chunk) {
  Rng rng(11);
  ScaffoldData out;
  std::vector<size_t> domains = {24, 16, 8};
  out.encs.resize(domains.size());
  for (size_t d = 0; d < domains.size(); ++d) {
    out.encs[d].attr = static_cast<AttrId>(d);
    out.encs[d].fact_codes.resize(num_facts);
    for (size_t f = 0; f < num_facts; ++f) {
      if (rng.Bernoulli(0.15)) continue;
      size_t k = 1 + rng.Uniform(2);
      auto& codes = out.encs[d].fact_codes[f];
      for (size_t i = 0; i < k; ++i) {
        codes.push_back(static_cast<int32_t>(rng.Uniform(domains[d])));
      }
      std::sort(codes.begin(), codes.end());
      codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    }
    for (size_t v = 0; v < domains[d]; ++v) {
      out.encs[d].values.push_back(static_cast<TermId>(v + 1));
    }
  }
  out.mmst = Mmst::Build({out.encs[0].domain_size(), out.encs[1].domain_size(),
                          out.encs[2].domain_size()},
                         chunk);
  out.tr = TranslateData(out.encs, out.mmst.layout(), TranslationOptions());
  return out;
}

void BM_ScaffoldTemplatedFunctors(benchmark::State& state) {
  ScaffoldData data = MakeScaffoldData(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    uint64_t checksum = 0;
    CubeScaffold<MicroCountCell> scaffold(&data.mmst);
    scaffold.Run(
        data.tr, [](MicroCountCell* c, FactId) { c->n += 1; },
        [](MicroCountCell* dst, const MicroCountCell& src) { dst->n += src.n; },
        [&](uint32_t, Span<int32_t>, const MicroCountCell& cell) {
          checksum += cell.n;
        });
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScaffoldTemplatedFunctors)->Arg(20000)->Arg(100000);

void BM_ScaffoldStdFunction(benchmark::State& state) {
  ScaffoldData data = MakeScaffoldData(static_cast<size_t>(state.range(0)), 4);
  uint64_t checksum = 0;
  std::function<void(MicroCountCell*, FactId)> load =
      [](MicroCountCell* c, FactId) { c->n += 1; };
  std::function<void(MicroCountCell*, const MicroCountCell&)> merge =
      [](MicroCountCell* dst, const MicroCountCell& src) { dst->n += src.n; };
  std::function<void(uint32_t, Span<int32_t>, const MicroCountCell&)> emit =
      [&](uint32_t, Span<int32_t>, const MicroCountCell& cell) {
        checksum += cell.n;
      };
  for (auto _ : state) {
    checksum = 0;
    CubeScaffold<MicroCountCell> scaffold(&data.mmst);
    scaffold.Run(data.tr, load, merge, emit);
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScaffoldStdFunction)->Arg(20000)->Arg(100000);

// The collect-and-canonical-emit protocol at one worker measures the
// overhead the parallel path pays over direct streaming emit (the price of
// worker-count-independent results even at 1 thread).
void BM_ParallelLatticeRunOneWorker(benchmark::State& state) {
  ScaffoldData data = MakeScaffoldData(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    uint64_t checksum = 0;
    ParallelLatticeRun<MicroCountCell>(
        data.mmst, data.tr, /*wanted=*/nullptr, /*num_workers=*/1,
        /*scheduler=*/nullptr, [](MicroCountCell* c, FactId) { c->n += 1; },
        [](MicroCountCell* dst, const MicroCountCell& src) { dst->n += src.n; },
        [](uint32_t, Span<int32_t>) { return true; },
        [&](uint32_t, Span<int32_t>, MicroCountCell& cell) {
          checksum += cell.n;
        });
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelLatticeRunOneWorker)->Arg(20000)->Arg(100000);

void BM_OnlineMoments(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(rng.NextDouble());
  for (auto _ : state) {
    OnlineMoments om;
    for (double v : values) om.Add(v);
    benchmark::DoNotOptimize(om.kurtosis());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_OnlineMoments);

}  // namespace
}  // namespace spade

BENCHMARK_MAIN();
