// Parallel-scaling trend line for the execution layer: online-phase
// wall-clock at 1/2/4/8 worker threads on the Figure 12 scalability
// dataset (largest setting: 400k facts, N=3, M=15, s=0.1) — unsharded and
// with within-CFS fact-id-range sharding — plus a multi-CFS variant (same
// volume spread over 16 fact types) that models a multi-tenant workload,
// the shape CFS-level parallelism is built for. The lattice computation is
// partition-parallel in every configuration (workers follow the thread
// count), so its wall/work times are reported per run.
//
// Results are bit-identical at every thread count (see tests/exec_test.cc);
// this bench reports only wall-clock and speedup. Speedup is bounded by the
// machine: on an M-core box the ideal line is min(threads, M)x.
//
// A final section measures the scheduler itself: raw tasks/sec under
// fine-grained slicing (parents fanning out tiny children) at 1/2/4/8
// threads — the path the per-worker Chase-Lev deques exist for. External
// submits go through the injection queue; the children ride each worker's
// own deque, so the hot loop is PushBottom/PopBottom/Steal.
//
// Usage: bench_parallel_scaling [--facts=N] [--types=K] [--json[=FILE]]
//
// --json writes every configuration's numbers as a machine-readable JSON
// array (default file: BENCH_parallel.json) so CI can track the perf
// trajectory across commits. Scaling records carry online/lattice wall
// times; deque records ({"config": "deque_fine_grained", ...}) carry
// tasks/sec.

#include <atomic>
#include <cstring>
#include <fstream>
#include <thread>

#include "bench/bench_common.h"
#include "src/datagen/synthetic.h"
#include "src/exec/thread_pool.h"

namespace spade {
namespace bench {
namespace {

struct RunResult {
  std::string label;
  size_t threads = 1;
  size_t shards = 0;
  double online_wall_ms = 0;
  double lattice_wall_ms = 0;
  double lattice_work_ms = 0;
  size_t lattice_workers = 0;
  double speedup = 1.0;  ///< vs the 1-thread run of the same config block
  size_t num_cfs = 0;
  size_t num_evaluated = 0;
};

std::vector<RunResult> g_results;  // every RunOnce, for --json

struct DequeRecord {
  size_t threads = 1;
  size_t tasks = 0;
  double wall_ms = 0;
  double tasks_per_sec = 0;
};

std::vector<DequeRecord> g_deque_records;

RunResult RunOnce(const char* label, size_t facts, size_t types,
                  size_t threads, size_t shards) {
  SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality.assign(3, 100);
  sopts.num_measures = 15;
  sopts.sparsity = 0.1;
  sopts.num_fact_types = types;
  auto graph = GenerateSynthetic(sopts);

  SpadeOptions options = BenchOptions();
  options.cfs.min_size = 100;
  options.enumeration.max_dims = 3;
  options.num_threads = threads;
  options.num_shards = shards;
  Spade spade(graph.get(), options);
  if (!spade.RunOffline().ok()) std::exit(1);
  if (!spade.RunOnline().ok()) std::exit(1);
  RunResult r;
  r.label = label;
  r.threads = threads;
  r.shards = shards;
  r.online_wall_ms = spade.report().timings.online_wall_ms;
  r.lattice_wall_ms = spade.report().lattice_wall_ms;
  r.lattice_work_ms = spade.report().lattice_work_ms;
  r.lattice_workers = spade.report().lattice_workers_used;
  r.num_cfs = spade.report().num_cfs;
  r.num_evaluated = spade.report().num_evaluated_aggregates;
  return r;
}

/// `shards`: within-CFS fact-range shards (0 = auto, one per thread;
/// 1 = unsharded). Results are bit-identical either way; only wall-clock
/// moves. The lattice computation always slices one partition range per
/// worker thread.
void Scale(const char* label, size_t facts, size_t types, size_t shards) {
  std::cout << "-- " << label << ": " << facts << " facts, " << types
            << " fact type(s), "
            << (shards == 0 ? std::string("shards=threads")
                            : std::to_string(shards) + " shard(s)")
            << " --\n";
  TablePrinter table({"threads", "online ms", "speedup", "lattice ms",
                      "lat work ms", "#CFS", "#A eval"});
  double base = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    RunResult r = RunOnce(label, facts, types, threads, shards);
    if (threads == 1) base = r.online_wall_ms;
    r.speedup = base / std::max(1e-6, r.online_wall_ms);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", r.speedup);
    table.AddRow({std::to_string(threads), Ms(r.online_wall_ms), speedup,
                  Ms(r.lattice_wall_ms), Ms(r.lattice_work_ms),
                  std::to_string(r.num_cfs), std::to_string(r.num_evaluated)});
    g_results.push_back(std::move(r));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

/// Scheduler throughput under fine-grained slicing: parents arrive through
/// the injection queue, each fans out 7 near-empty children onto its
/// worker's own deque. Tasks/sec here is the number the Chase-Lev swap
/// moves — the old single-mutex pool serialized every push and pop.
void DequeThroughput() {
  constexpr size_t kParents = 20000;
  constexpr size_t kChildrenPerParent = 7;
  constexpr size_t kTotal = kParents * (1 + kChildrenPerParent);
  std::cout << "-- scheduler: fine-grained tasks/sec (" << kTotal
            << " tasks, 7 children per parent) --\n";
  TablePrinter table({"threads", "wall ms", "tasks/sec"});
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::atomic<size_t> ran{0};
    ThreadPool pool(threads);
    Timer timer;
    for (size_t p = 0; p < kParents; ++p) {
      pool.Submit([&ran, &pool] {
        ran.fetch_add(1, std::memory_order_relaxed);
        for (size_t c = 0; c < kChildrenPerParent; ++c) {
          pool.Submit(
              [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    while (ran.load(std::memory_order_acquire) < kTotal) {
      std::this_thread::yield();
    }
    DequeRecord r;
    r.threads = threads;
    r.tasks = kTotal;
    r.wall_ms = timer.ElapsedMillis();
    r.tasks_per_sec = kTotal / (r.wall_ms / 1e3);
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.0f", r.tasks_per_sec);
    table.AddRow({std::to_string(threads), Ms(r.wall_ms), rate});
    g_deque_records.push_back(r);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

/// Minimal JSON emission — flat array of per-config records.
void WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_parallel_scaling: cannot write " << path << "\n";
    std::exit(1);
  }
  out << "[\n";
  for (size_t i = 0; i < g_results.size(); ++i) {
    const RunResult& r = g_results[i];
    out << "  {\"config\": \"" << r.label << "\", \"threads\": " << r.threads
        << ", \"shards\": " << r.shards
        << ", \"online_wall_ms\": " << r.online_wall_ms
        << ", \"lattice_wall_ms\": " << r.lattice_wall_ms
        << ", \"lattice_work_ms\": " << r.lattice_work_ms
        << ", \"lattice_workers\": " << r.lattice_workers
        << ", \"speedup\": " << r.speedup << ", \"num_cfs\": " << r.num_cfs
        << ", \"num_evaluated\": " << r.num_evaluated << "}"
        << (i + 1 < g_results.size() || !g_deque_records.empty() ? "," : "")
        << "\n";
  }
  for (size_t i = 0; i < g_deque_records.size(); ++i) {
    const DequeRecord& r = g_deque_records[i];
    out << "  {\"config\": \"deque_fine_grained\", \"threads\": " << r.threads
        << ", \"tasks\": " << r.tasks << ", \"wall_ms\": " << r.wall_ms
        << ", \"tasks_per_sec\": " << r.tasks_per_sec << "}"
        << (i + 1 < g_deque_records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << g_results.size() + g_deque_records.size()
            << " records to " << path << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  size_t facts = 400000;
  size_t types = 16;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--facts=", 8) == 0) {
      facts = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--types=", 8) == 0) {
      types = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_parallel.json";
    }
  }
  std::cout << "== Parallel scaling of the online phase ("
            << spade::ThreadPool::HardwareConcurrency()
            << " hardware threads on this machine) ==\n\n";
  // Figure 12's largest single-CFS setting, unsharded: the per-fact
  // pre-builds stay serial per lattice, but the lattice computation itself
  // fans out across partition slices.
  spade::bench::Scale("fig12_single_cfs_unsharded", facts, 1, 1);
  // The same single CFS with fact-id-range sharding: encoding, translation
  // and measure loading fan out across one shard per worker and merge back
  // exactly — plus the partition-parallel lattice computation.
  spade::bench::Scale("fig12_single_cfs_sharded", facts, 1, 0);
  // Multi-tenant shape: one ARM shard per CFS, embarrassingly parallel.
  spade::bench::Scale("multi_cfs", facts, types, 1);
  // Scheduler-only: raw task throughput on the work-stealing deques.
  spade::bench::DequeThroughput();
  if (!json_path.empty()) spade::bench::WriteJson(json_path);
  return 0;
}
