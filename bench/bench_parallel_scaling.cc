// Parallel-scaling trend line for the execution layer: online-phase
// wall-clock at 1/2/4/8 worker threads on the Figure 12 scalability
// dataset (largest setting: 400k facts, N=3, M=15, s=0.1) — unsharded and
// with within-CFS fact-id-range sharding — plus a multi-CFS variant (same
// volume spread over 16 fact types) that models a multi-tenant workload,
// the shape CFS-level parallelism is built for.
//
// Results are bit-identical at every thread count (see tests/exec_test.cc);
// this bench reports only wall-clock and speedup. Speedup is bounded by the
// machine: on an M-core box the ideal line is min(threads, M)x.
//
// Usage: bench_parallel_scaling [--facts=N] [--types=K]

#include <cstring>

#include "bench/bench_common.h"
#include "src/datagen/synthetic.h"
#include "src/exec/thread_pool.h"

namespace spade {
namespace bench {
namespace {

struct RunResult {
  double online_wall_ms = 0;
  size_t num_cfs = 0;
  size_t num_evaluated = 0;
};

RunResult RunOnce(size_t facts, size_t types, size_t threads, size_t shards) {
  SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality.assign(3, 100);
  sopts.num_measures = 15;
  sopts.sparsity = 0.1;
  sopts.num_fact_types = types;
  auto graph = GenerateSynthetic(sopts);

  SpadeOptions options = BenchOptions();
  options.cfs.min_size = 100;
  options.enumeration.max_dims = 3;
  options.num_threads = threads;
  options.num_shards = shards;
  Spade spade(graph.get(), options);
  if (!spade.RunOffline().ok()) std::exit(1);
  if (!spade.RunOnline().ok()) std::exit(1);
  RunResult r;
  r.online_wall_ms = spade.report().timings.online_wall_ms;
  r.num_cfs = spade.report().num_cfs;
  r.num_evaluated = spade.report().num_evaluated_aggregates;
  return r;
}

/// `shards`: within-CFS fact-range shards (0 = auto, one per thread;
/// 1 = unsharded). Results are bit-identical either way; only wall-clock
/// moves.
void Scale(const char* label, size_t facts, size_t types, size_t shards) {
  std::cout << "-- " << label << ": " << facts << " facts, " << types
            << " fact type(s), "
            << (shards == 0 ? std::string("shards=threads")
                            : std::to_string(shards) + " shard(s)")
            << " --\n";
  TablePrinter table({"threads", "online ms", "speedup", "#CFS", "#A eval"});
  double base = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    RunResult r = RunOnce(facts, types, threads, shards);
    if (threads == 1) base = r.online_wall_ms;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  base / std::max(1e-6, r.online_wall_ms));
    table.AddRow({std::to_string(threads), Ms(r.online_wall_ms), speedup,
                  std::to_string(r.num_cfs), std::to_string(r.num_evaluated)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main(int argc, char** argv) {
  size_t facts = 400000;
  size_t types = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--facts=", 8) == 0) {
      facts = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--types=", 8) == 0) {
      types = static_cast<size_t>(std::atoll(argv[i] + 8));
    }
  }
  std::cout << "== Parallel scaling of the online phase ("
            << spade::ThreadPool::HardwareConcurrency()
            << " hardware threads on this machine) ==\n\n";
  // Figure 12's largest single-CFS setting, unsharded: within-CFS
  // parallelism is limited to the per-lattice pre-builds, so this is the
  // pessimistic line.
  spade::bench::Scale("Fig. 12 largest (single CFS, unsharded)", facts, 1, 1);
  // The same single CFS with fact-id-range sharding: encoding, translation
  // and measure loading fan out across one shard per worker and merge back
  // exactly — the within-CFS line sharded stores were built for.
  spade::bench::Scale("Fig. 12 largest (single CFS, sharded)", facts, 1, 0);
  // Multi-tenant shape: one ARM shard per CFS, embarrassingly parallel.
  spade::bench::Scale("multi-CFS", facts, types, 1);
  return 0;
}
