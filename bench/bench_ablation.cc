// Ablation benches for the design choices called out in DESIGN.md §5:
//   A) cell encoding: Roaring bitmap vs std::set vs sorted vector — the
//      union-heavy propagation is where Roaring earns its keep;
//   B) measure sharing across lattices (MeasureCache) on/off — one of
//      MVDCube's two structural advantages over PGCube;
//   C) partition chunk size — the ArrayCube memory/time trade-off
//      (small chunks: less memory, more flush overhead).

#include <set>

#include "bench/bench_common.h"
#include "src/bitmap/roaring.h"
#include "src/core/mvdcube.h"
#include "src/datagen/synthetic.h"

namespace spade {
namespace bench {
namespace {

struct Fixture {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<AttributeStore> db;
  std::unique_ptr<CfsIndex> cfs;
  std::vector<DimensionEncoding> encodings;
  Mmst mmst;
  Translation translation;
};

Fixture MakeFixture(size_t facts, int chunk) {
  Fixture fx;
  SyntheticOptions sopts;
  sopts.num_facts = facts;
  sopts.dim_cardinality = {60, 40, 20};
  sopts.num_measures = 2;
  sopts.multi_valued_dims = {0, 1};
  sopts.multi_value_prob = 0.3;
  fx.graph = GenerateSynthetic(sopts);
  fx.db = std::make_unique<AttributeStore>(fx.graph.get());
  fx.db->BuildDirectAttributes();
  TermId type = fx.graph->dict().InternIri(synth::kFactType);
  fx.cfs = std::make_unique<CfsIndex>(fx.graph->NodesOfType(type));
  LatticeSpec spec;
  for (int d = 0; d < 3; ++d) {
    spec.dims.push_back(*fx.db->FindAttribute("dim" + std::to_string(d)));
  }
  std::sort(spec.dims.begin(), spec.dims.end());
  fx.mmst = BuildMmstForSpec(*fx.db, *fx.cfs, spec, &fx.encodings, chunk);
  fx.translation =
      TranslateData(fx.encodings, fx.mmst.layout(), TranslationOptions());
  return fx;
}

// --- A) cell encodings ---

struct RoaringCell {
  RoaringBitmap facts;
  bool Empty() const { return facts.Empty(); }
};
struct SetCell {
  std::set<uint32_t> facts;
  bool Empty() const { return facts.empty(); }
};
struct VecCell {
  std::vector<uint32_t> facts;  // sorted-unique on demand
  bool Empty() const { return facts.empty(); }
};

/// One ablation run: wall time, cardinality checksum (equal across cell
/// types, or the encodings disagree), and the summed per-emitted-cell memory
/// footprint — the Section 4.3 memory model measured on live cells.
struct CellRun {
  double ms = 0;
  uint64_t checksum = 0;
  uint64_t bytes = 0;
};

template <typename Cell, typename Load, typename Merge, typename Card,
          typename Mem>
CellRun RunCells(const Fixture& fx, Load load, Merge merge, Card card,
                 Mem mem) {
  Timer timer;
  CellRun r;
  CubeScaffold<Cell> scaffold(&fx.mmst);
  scaffold.Run(fx.translation, load, merge,
               [&](uint32_t, Span<int32_t>, const Cell& cell) {
                 r.checksum += card(cell);
                 r.bytes += mem(cell);
               });
  r.ms = timer.ElapsedMillis();
  return r;
}

void CellEncodingAblation() {
  std::cout << "-- Ablation A: cell encoding (200k facts, 3 dims, "
               "multi-valued) --\n";
  size_t num_facts = 200000;
  Fixture fx = MakeFixture(num_facts, 16);
  uint64_t paper_bound = 0;  // Section 4.3: M_RB summed over emitted cells
  CellRun roaring = RunCells<RoaringCell>(
      fx, [](RoaringCell* c, FactId f) { c->facts.AppendOrdered(f); },
      [](RoaringCell* d, const RoaringCell& s) { d->facts.UnionWith(s.facts); },
      [](const RoaringCell& c) { return c.facts.Cardinality(); },
      [&](const RoaringCell& c) {
        paper_bound += RoaringBitmap::MemoryUpperBound(c.facts.Cardinality(),
                                                       num_facts);
        return c.facts.MemoryBytes();
      });
  CellRun set = RunCells<SetCell>(
      fx, [](SetCell* c, FactId f) { c->facts.insert(f); },
      [](SetCell* d, const SetCell& s) {
        d->facts.insert(s.facts.begin(), s.facts.end());
      },
      [](const SetCell& c) { return static_cast<uint64_t>(c.facts.size()); },
      [](const SetCell& c) {
        // Every rb-tree node: 3 pointers + color + the value, allocated.
        return sizeof(std::set<uint32_t>) + c.facts.size() * 48u;
      });
  CellRun vec = RunCells<VecCell>(
      fx, [](VecCell* c, FactId f) { c->facts.push_back(f); },
      [](VecCell* d, const VecCell& s) {
        std::vector<uint32_t> merged;
        merged.reserve(d->facts.size() + s.facts.size());
        std::set_union(d->facts.begin(), d->facts.end(), s.facts.begin(),
                       s.facts.end(), std::back_inserter(merged));
        d->facts = std::move(merged);
      },
      [](const VecCell& c) { return static_cast<uint64_t>(c.facts.size()); },
      [](const VecCell& c) {
        return sizeof(std::vector<uint32_t>) +
               c.facts.capacity() * sizeof(uint32_t);
      });
  if (roaring.checksum != set.checksum || roaring.checksum != vec.checksum) {
    std::cout << "  CHECKSUM MISMATCH: " << roaring.checksum << " "
              << set.checksum << " " << vec.checksum << "\n";
  }
  TablePrinter table({"cell type", "lattice eval ms", "cell bytes (sum)"});
  table.AddRow({"RoaringBitmap", Ms(roaring.ms), std::to_string(roaring.bytes)});
  table.AddRow({"std::set<uint32>", Ms(set.ms), std::to_string(set.bytes)});
  table.AddRow({"sorted vector", Ms(vec.ms), std::to_string(vec.bytes)});
  table.Print(std::cout);
  // The paper's 2Z + 9(u/65535 + 1) + 8 model bounds the container
  // *payload* (2 B/value arrays, bitsets). Run containers and the inline
  // small-set representation only ever undercut the payload term; the
  // measured number additionally counts the object and per-container
  // bookkeeping the model's 8 B header abstracts away, which dominates for
  // tiny cells — so the ratio, not the absolute, is the comparable figure.
  std::cout << "  Section 4.3 M_RB payload bound over the same cells: "
            << paper_bound << " B; measured (incl. object overhead) "
            << roaring.bytes << " B ("
            << Pct(static_cast<double>(roaring.bytes) /
                   static_cast<double>(paper_bound))
            << ")\n\n";
}

// --- B) measure sharing ---

void MeasureSharingAblation() {
  std::cout << "-- Ablation B: measure loading shared vs per-lattice --\n";
  SyntheticOptions sopts;
  sopts.num_facts = 300000;
  sopts.dim_cardinality = {40, 30, 20, 10};
  sopts.num_measures = 10;
  auto graph = GenerateSynthetic(sopts);
  AttributeStore db(graph.get());
  db.BuildDirectAttributes();
  TermId type = graph->dict().InternIri(synth::kFactType);
  CfsIndex cfs(graph->NodesOfType(type));
  // Four 2-dim lattices sharing the same 10 measures.
  std::vector<LatticeSpec> lattices;
  for (int i = 0; i < 4; ++i) {
    LatticeSpec spec;
    spec.dims = {*db.FindAttribute("dim" + std::to_string(i % 4)),
                 *db.FindAttribute("dim" + std::to_string((i + 1) % 4))};
    std::sort(spec.dims.begin(), spec.dims.end());
    for (size_t m = 0; m < sopts.num_measures; ++m) {
      AttrId a = *db.FindAttribute("measure" + std::to_string(m));
      spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kSum});
      spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kAvg});
    }
    lattices.push_back(std::move(spec));
  }
  Timer shared_timer;
  {
    Arm arm(4);
    MeasureCache shared;
    for (const auto& spec : lattices) {
      EvaluateLatticeMvd(db, 0, cfs, spec, MvdCubeOptions(), &arm, &shared);
    }
  }
  double shared_ms = shared_timer.ElapsedMillis();
  Timer unshared_timer;
  {
    Arm arm(4);
    for (const auto& spec : lattices) {
      MeasureCache fresh;  // PGCube-style re-join per lattice
      EvaluateLatticeMvd(db, 0, cfs, spec, MvdCubeOptions(), &arm, &fresh);
    }
  }
  double unshared_ms = unshared_timer.ElapsedMillis();
  TablePrinter table({"measure loading", "4 lattices ms"});
  table.AddRow({"shared cache", Ms(shared_ms)});
  table.AddRow({"per-lattice", Ms(unshared_ms)});
  table.Print(std::cout);
  std::cout << "\n";
}

// --- C) chunk size ---

void ChunkSizeAblation() {
  std::cout << "-- Ablation C: partition chunk size (MMST memory vs time) "
               "--\n";
  TablePrinter table({"chunk", "partitions", "MMST cells", "eval ms"});
  for (int chunk : {2, 4, 8, 16, 64, 256}) {
    Fixture fx = MakeFixture(200000, chunk);
    CellRun r = RunCells<RoaringCell>(
        fx, [](RoaringCell* c, FactId f) { c->facts.AppendOrdered(f); },
        [](RoaringCell* d, const RoaringCell& s) {
          d->facts.UnionWith(s.facts);
        },
        [](const RoaringCell& c) { return c.facts.Cardinality(); },
        [](const RoaringCell& c) { return c.facts.MemoryBytes(); });
    table.AddRow({std::to_string(chunk),
                  std::to_string(fx.mmst.layout().num_partitions),
                  std::to_string(fx.mmst.total_memory_cells()), Ms(r.ms)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace spade

int main() {
  std::cout << "== Ablations (DESIGN.md §5) ==\n\n";
  spade::bench::CellEncodingAblation();
  spade::bench::MeasureSharingAblation();
  spade::bench::ChunkSizeAblation();
  return 0;
}
