// Fault-injection matrix over the registered failpoints: each site, fired,
// must surface as a graceful Status (or an isolated per-request error in the
// serve loop) — never a crash, a partial attach, or a torn snapshot. In
// builds with SPADE_FAILPOINTS compiled out, every test here skips and the
// configuration API reports the feature as unavailable.

#include "src/util/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/spade.h"
#include "src/datagen/synthetic.h"
#include "src/ingest/chunk_source.h"
#include "src/persist/serve.h"
#include "src/persist/snapshot.h"
#include "src/rdf/ntriples.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace spade {
namespace {

SyntheticOptions SmallCorpus() {
  SyntheticOptions sopts;
  sopts.num_facts = 2000;
  sopts.dim_cardinality.assign(3, 15);
  sopts.num_measures = 2;
  sopts.num_fact_types = 2;
  return sopts;
}

SpadeOptions BaseOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 2;
  options.enumeration.max_lattices_per_cfs = 4;
  options.enumeration.max_measures_per_lattice = 2;
  options.top_k = 5;
  return options;
}

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every test starts and ends with a clean failpoint registry.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::Reset(); }
  void TearDown() override { fail::Reset(); }
};

TEST_F(FailpointTest, ConfigureGrammarAndReset) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  EXPECT_TRUE(fail::Configure("").ok());
  EXPECT_TRUE(fail::Configure("some.site=error").ok());
  EXPECT_TRUE(fail::Configure("a=error:3,b=throw,c=oom:0.5,d=off").ok());
  EXPECT_FALSE(fail::Configure("no-equals-sign").ok());
  EXPECT_FALSE(fail::Configure("x=explode").ok());
  EXPECT_FALSE(fail::Configure("x=error:not-a-number").ok());
  EXPECT_FALSE(fail::Configure("x=error:1.5").ok());  // probability > 1
  fail::Reset();
}

TEST_F(FailpointTest, CompiledOutConfigureReportsUnavailable) {
  if (fail::Enabled()) GTEST_SKIP() << "failpoints compiled in";
  Status st = fail::Configure("some.site=error");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(fail::KnownNames().empty());
}

TEST_F(FailpointTest, FullPipelineRegistersTheExpectedSites) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  // Drive every subsystem once (unarmed failpoints register on first hit),
  // then check the registry knows every planted site.
  auto graph = GenerateSynthetic(SmallCorpus());
  std::string nt;
  {
    std::ostringstream out;
    NTriplesWriter::Write(*graph, out);
    nt = out.str();
  }
  const std::string snap = TmpPath("failpoint_register.snap");
  {
    Graph streamed;
    SpadeOptions options = BaseOptions();
    options.ingest.enabled = true;
    options.num_threads = 2;
    options.save_store = snap;
    Spade spade(&streamed, options);
    std::istringstream in(nt);
    NTriplesChunkSource source(in, &streamed);
    ASSERT_TRUE(spade.RunOffline(&source).ok());
    ASSERT_TRUE(spade.RunOnline().ok());
  }
  {
    Graph loaded;
    SpadeOptions options = BaseOptions();
    options.load_store = snap;
    Spade spade(&loaded, options);
    ASSERT_TRUE(spade.RunOffline().ok());
    ASSERT_TRUE(spade.PrepareFactSets().ok());
    persist::InsightServer server(&spade, persist::ServeOptions{});
    std::istringstream req("explore top=3\n");
    std::ostringstream resp;
    server.Serve(req, resp);
  }
  const std::vector<std::string> names = fail::KnownNames();
  for (const char* expected :
       {"core.lattice.slice", "core.measure.load", "core.translate",
        "exec.parallel_for", "exec.taskgroup.task", "ingest.chunk",
        "ingest.scatter", "ingest.seal", "persist.load.attach",
        "persist.load.open", "persist.save.finish", "persist.save.open",
        "persist.save.rename", "persist.save.segment", "serve.request"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << "failpoint never registered: " << expected;
  }
  std::remove(snap.c_str());
}

TEST_F(FailpointTest, AllSiteNamesCoversEveryRegisteredSite) {
  // AllSiteNames() is the static catalog behind `spade_cli
  // --list-failpoints`; it exists in every build, is sorted and duplicate
  // free, and must be a superset of whatever actually registered at
  // runtime. (FullPipelineRegistersTheExpectedSites above exercises most
  // code paths first when the suite runs in order; this holds regardless.)
  const std::vector<std::string> all = fail::AllSiteNames();
  ASSERT_FALSE(all.empty());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  for (const char* site :
       {"serve.accept", "serve.read", "serve.write", "serve.request"}) {
    EXPECT_TRUE(std::find(all.begin(), all.end(), site) != all.end())
        << "network failpoint missing from the catalog: " << site;
  }
  for (const std::string& name : fail::KnownNames()) {
    EXPECT_TRUE(std::find(all.begin(), all.end(), name) != all.end())
        << "site registered at runtime but missing from AllSiteNames(): "
        << name << " — add it to the catalog in failpoint.cc";
  }
}

TEST_F(FailpointTest, OnlineFailpointsReturnErrorStatus) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  for (const char* name : {"exec.parallel_for", "core.lattice.slice",
                           "core.translate", "core.measure.load"}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      fail::Reset();
      auto graph = GenerateSynthetic(SmallCorpus());
      SpadeOptions options = BaseOptions();
      options.num_threads = threads;
      Spade spade(graph.get(), options);
      ASSERT_TRUE(spade.RunOffline().ok());
      ASSERT_TRUE(fail::Configure(std::string(name) + "=error").ok());
      auto insights = spade.RunOnline();
      EXPECT_FALSE(insights.ok())
          << name << " armed at " << threads << " threads";
    }
  }
}

TEST_F(FailpointTest, OomActionSurfacesAsErrorStatus) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade spade(graph.get(), BaseOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  ASSERT_TRUE(fail::Configure("core.translate=oom").ok());
  auto insights = spade.RunOnline();
  EXPECT_FALSE(insights.ok());
}

TEST_F(FailpointTest, IngestFailpointsReturnErrorStatus) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto graph = GenerateSynthetic(SmallCorpus());
  std::string nt;
  {
    std::ostringstream out;
    NTriplesWriter::Write(*graph, out);
    nt = out.str();
  }
  for (const char* name : {"ingest.chunk", "ingest.scatter", "ingest.seal",
                           "exec.taskgroup.task"}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      fail::Reset();
      ASSERT_TRUE(fail::Configure(std::string(name) + "=error").ok());
      Graph streamed;
      SpadeOptions options = BaseOptions();
      options.ingest.enabled = true;
      options.ingest.chunk_triples = 512;
      options.num_threads = threads;
      Spade spade(&streamed, options);
      std::istringstream in(nt);
      NTriplesChunkSource source(in, &streamed);
      Status st = spade.RunOffline(&source);
      EXPECT_FALSE(st.ok()) << name << " armed at " << threads << " threads";
    }
  }
}

TEST_F(FailpointTest, OneShotFiresOnExactlyTheNthHit) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  // persist.save.segment is hit once per segment; error:3 must let the
  // first two through and abort on the third — the save still fails
  // gracefully, and with the counter past 3 a retry succeeds untouched.
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade spade(graph.get(), BaseOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  const std::string path = TmpPath("failpoint_oneshot.snap");
  ASSERT_TRUE(fail::Configure("persist.save.segment=error:3").ok());
  EXPECT_FALSE(spade.SaveStore(path).ok());
  EXPECT_TRUE(spade.SaveStore(path).ok());  // hits 4.. never match one-shot 3
  std::remove(path.c_str());
}

TEST_F(FailpointTest, FailedSaveLeavesPriorSnapshotByteIdentical) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade spade(graph.get(), BaseOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  const std::string path = TmpPath("failpoint_atomic.snap");
  ASSERT_TRUE(spade.SaveStore(path).ok());
  const std::string before = ReadAll(path);
  ASSERT_FALSE(before.empty());

  for (const char* name : {"persist.save.open", "persist.save.segment",
                           "persist.save.finish", "persist.save.rename"}) {
    fail::Reset();
    ASSERT_TRUE(fail::Configure(std::string(name) + "=error").ok());
    EXPECT_FALSE(spade.SaveStore(path).ok()) << name;
    EXPECT_EQ(before, ReadAll(path)) << name << " touched the destination";
#if defined(__unix__) || defined(__APPLE__)
    // No temp-file debris: the guard removed the partial build.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    EXPECT_FALSE(std::ifstream(tmp).good()) << name << " left " << tmp;
#endif
  }
  fail::Reset();

  // The surviving file still loads, and an un-failed save still works.
  Graph loaded;
  SpadeOptions lopt = BaseOptions();
  lopt.load_store = path;
  Spade reloaded(&loaded, lopt);
  EXPECT_TRUE(reloaded.RunOffline().ok());
  EXPECT_TRUE(spade.SaveStore(path).ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, LoadFailpointsNeverHalfAttach) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade builder(graph.get(), BaseOptions());
  ASSERT_TRUE(builder.RunOffline().ok());
  const std::string path = TmpPath("failpoint_load.snap");
  ASSERT_TRUE(builder.SaveStore(path).ok());

  for (const char* name : {"persist.load.open", "persist.load.attach"}) {
    fail::Reset();
    ASSERT_TRUE(fail::Configure(std::string(name) + "=error").ok());
    Graph target;
    SpadeOptions lopt = BaseOptions();
    lopt.load_store = path;
    Spade spade(&target, lopt);
    EXPECT_FALSE(spade.RunOffline().ok()) << name;
    // Nothing was attached: the graph still reports an empty triple store.
    EXPECT_EQ(target.NumTriples(), 0u) << name;
  }
  fail::Reset();
  Graph target;
  SpadeOptions lopt = BaseOptions();
  lopt.load_store = path;
  Spade spade(&target, lopt);
  EXPECT_TRUE(spade.RunOffline().ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, ServeIsolatesFaultedRequests) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade spade(graph.get(), BaseOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  ASSERT_TRUE(spade.PrepareFactSets().ok());

  // Hit 1 throws from inside request handling; hit 2 runs clean. One bad
  // request must not take the session (or the following request) down.
  ASSERT_TRUE(fail::Configure("serve.request=throw:1").ok());
  persist::InsightServer server(&spade, persist::ServeOptions{});
  std::istringstream in("explore top=3\nexplore top=3\n");
  std::ostringstream out;
  persist::ServeStats stats = server.Serve(in, out);
  EXPECT_EQ(stats.num_requests, 2u);
  EXPECT_EQ(stats.num_errors, 1u);
  const std::string text = out.str();
  EXPECT_NE(text.find("#1 error: internal error"), std::string::npos) << text;
  EXPECT_NE(text.find("#2 ok "), std::string::npos) << text;

  // Same isolation for allocation failure.
  fail::Reset();
  ASSERT_TRUE(fail::Configure("serve.request=oom:1").ok());
  std::istringstream in2("explore top=3\nexplore top=3\n");
  std::ostringstream out2;
  stats = server.Serve(in2, out2);
  EXPECT_EQ(stats.num_requests, 2u);
  EXPECT_EQ(stats.num_errors, 1u);
  EXPECT_NE(out2.str().find("#1 error: out of memory"), std::string::npos)
      << out2.str();
  EXPECT_NE(out2.str().find("#2 ok "), std::string::npos) << out2.str();
}

}  // namespace
}  // namespace spade
