#include "src/core/mvdcube.h"

#include <gtest/gtest.h>

#include "src/core/reference.h"
#include "tests/test_helpers.h"

namespace spade {
namespace {

using testing_helpers::ArmResult;
using testing_helpers::DimSpec;
using testing_helpers::MakeRandomAnalysis;
using testing_helpers::MeasureShape;
using testing_helpers::RandomAnalysis;
using testing_helpers::SameResult;

void ExpectMatchesReference(const RandomAnalysis& ra, int chunk) {
  Arm arm(1 << 20);
  MeasureCache cache;
  MvdCubeOptions options;
  options.partition_chunk = chunk;
  MvdCubeStats stats =
      EvaluateLatticeMvd(*ra.db, 0, *ra.cfs, ra.spec, options, &arm, &cache);
  EXPECT_EQ(stats.num_nodes, size_t{1} << ra.spec.dims.size());

  std::vector<AggregateResult> expected =
      EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec);
  for (const auto& ref : expected) {
    AggregateResult got = ArmResult(arm, ref.key);
    EXPECT_TRUE(SameResult(ref, got))
        << "dims=" << ref.key.dims.size()
        << " measure=" << ref.key.measure.attr << " func="
        << static_cast<int>(ref.key.measure.func);
  }
}

TEST(MvdCubeTest, Figure1Example) {
  // The paper's running example: counts by nationality/gender/area must be
  // the *correct* ones (2 Manufacturer CEOs, 1 female CEO).
  Graph g;
  Dictionary& d = g.dict();
  auto add = [&](const std::string& s, const std::string& p,
                 const std::string& o) {
    g.Add(d.InternIri(s), d.InternIri("http://x/" + p), d.InternString(o));
  };
  add("n1", "nationality", "Angola");
  add("n1", "gender", "Female");
  add("n1", "companyArea", "Diamond");
  add("n1", "companyArea", "Manufacturer");
  add("n1", "companyArea", "NaturalGas");
  add("n2", "nationality", "Brazil");
  add("n2", "nationality", "France");
  add("n2", "nationality", "Lebanon");
  add("n2", "nationality", "Nigeria");
  add("n2", "companyArea", "Automotive");
  add("n2", "companyArea", "Manufacturer");
  g.Freeze();
  AttributeStore db(&g);
  db.BuildDirectAttributes();
  CfsIndex cfs({d.InternIri("n1"), d.InternIri("n2")});

  LatticeSpec spec;
  spec.dims = {*db.FindAttribute("nationality"), *db.FindAttribute("gender"),
               *db.FindAttribute("companyArea")};
  std::sort(spec.dims.begin(), spec.dims.end());
  spec.measures.push_back(MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount});

  Arm arm;
  MeasureCache cache;
  EvaluateLatticeMvd(db, 0, cfs, spec, MvdCubeOptions{.partition_chunk = 2},
                     &arm, &cache);

  // count of CEOs by companyArea: Manufacturer -> 2 (not 5, the A4 bug).
  AggregateKey by_area;
  by_area.cfs_id = 0;
  by_area.dims = {*db.FindAttribute("companyArea")};
  by_area.measure = MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount};
  AggregateResult area_result = ArmResult(arm, by_area);
  ASSERT_EQ(area_result.groups.size(), 4u);
  for (const auto& grp : area_result.groups) {
    const std::string& area = d.Get(grp.dim_values[0]).lexical;
    EXPECT_DOUBLE_EQ(grp.value, area == "Manufacturer" ? 2.0 : 1.0) << area;
  }

  // count of CEOs by gender: Female -> 1 (not 3, the A3 bug).
  AggregateKey by_gender;
  by_gender.cfs_id = 0;
  by_gender.dims = {*db.FindAttribute("gender")};
  by_gender.measure = MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount};
  AggregateResult gender_result = ArmResult(arm, by_gender);
  ASSERT_EQ(gender_result.groups.size(), 1u);  // null gender not reported
  EXPECT_DOUBLE_EQ(gender_result.groups[0].value, 1.0);
}

TEST(MvdCubeTest, Variation1SumNetWorth) {
  // Variation 1: sum(netWorth) by area must count each CEO once.
  Graph g;
  Dictionary& d = g.dict();
  auto node = [&](const std::string& s) { return d.InternIri(s); };
  TermId nat = d.InternIri("nat"), area = d.InternIri("area"),
         nw = d.InternIri("netWorth");
  g.Add(node("n1"), nat, d.InternString("Angola"));
  g.Add(node("n1"), area, d.InternString("Manufacturer"));
  g.Add(node("n1"), nw, d.InternDouble(2.8e9));
  for (const char* n : {"Brazil", "France", "Lebanon", "Nigeria"}) {
    g.Add(node("n2"), nat, d.InternString(n));
  }
  g.Add(node("n2"), area, d.InternString("Automotive"));
  g.Add(node("n2"), area, d.InternString("Manufacturer"));
  g.Add(node("n2"), nw, d.InternDouble(1.2e8));
  g.Freeze();
  AttributeStore db(&g);
  db.BuildDirectAttributes();
  CfsIndex cfs({node("n1"), node("n2")});
  LatticeSpec spec;
  spec.dims = {*db.FindAttribute("nat"), *db.FindAttribute("area")};
  std::sort(spec.dims.begin(), spec.dims.end());
  spec.measures.push_back(
      MeasureSpec{*db.FindAttribute("netWorth"), sparql::AggFunc::kSum});
  spec.measures.push_back(
      MeasureSpec{*db.FindAttribute("netWorth"), sparql::AggFunc::kAvg});

  Arm arm;
  MeasureCache cache;
  EvaluateLatticeMvd(db, 0, cfs, spec, MvdCubeOptions{.partition_chunk = 2},
                     &arm, &cache);
  AggregateKey key;
  key.cfs_id = 0;
  key.dims = {*db.FindAttribute("area")};
  key.measure = MeasureSpec{*db.FindAttribute("netWorth"), sparql::AggFunc::kSum};
  AggregateResult result = ArmResult(arm, key);
  for (const auto& grp : result.groups) {
    const std::string& a = d.Get(grp.dim_values[0]).lexical;
    if (a == "Manufacturer") {
      EXPECT_DOUBLE_EQ(grp.value, 2.8e9 + 1.2e8);  // not 2.8e9 + 4 * 1.2e8
    }
  }
}

struct MvdCase {
  uint64_t seed;
  size_t facts;
  std::vector<DimSpec> dims;
  std::vector<MeasureShape> measures;
  int chunk;
};

class MvdCubeReferenceTest : public ::testing::TestWithParam<MvdCase> {};

TEST_P(MvdCubeReferenceTest, MatchesReferenceExactly) {
  const MvdCase& c = GetParam();
  RandomAnalysis ra = MakeRandomAnalysis(c.seed, c.facts, c.dims, c.measures);
  ExpectMatchesReference(ra, c.chunk);
}

INSTANTIATE_TEST_SUITE_P(
    Heterogeneity, MvdCubeReferenceTest,
    ::testing::Values(
        // Single-valued, complete data (relational-like).
        MvdCase{1, 300, {{4, 0, 0}, {3, 0, 0}}, {{0, 0}}, 2},
        // Multi-valued dimensions.
        MvdCase{2, 300, {{4, 0.5, 0}, {3, 0.4, 0}}, {{0, 0}}, 2},
        // Missing dimension values.
        MvdCase{3, 300, {{4, 0, 0.3}, {3, 0, 0.4}}, {{0, 0}}, 2},
        // Multi-valued + missing dims, multi-valued + missing measures.
        MvdCase{4, 400, {{5, 0.4, 0.2}, {4, 0.3, 0.3}}, {{0.5, 0.3}}, 3},
        // Three dimensions, mixed shapes.
        MvdCase{5, 350, {{4, 0.3, 0.2}, {3, 0, 0.5}, {5, 0.6, 0}}, {{0.2, 0.2}}, 2},
        // Four dimensions (max N), stress the MMST.
        MvdCase{6, 250, {{3, 0.3, 0.2}, {3, 0.2, 0.2}, {2, 0, 0.3}, {4, 0.5, 0.1}},
                {{0.3, 0.4}}, 2},
        // Large single dimension with small chunks (many partitions).
        MvdCase{7, 500, {{40, 0.4, 0.1}}, {{0.3, 0.2}}, 4},
        // Chunk size 1 (maximum partitioning).
        MvdCase{8, 200, {{6, 0.5, 0.2}, {5, 0.4, 0.3}}, {{0.4, 0.3}}, 1},
        // Chunk larger than every domain (single partition).
        MvdCase{9, 200, {{6, 0.5, 0.2}, {5, 0.4, 0.3}}, {{0.4, 0.3}}, 64},
        // Two measures.
        MvdCase{10, 300, {{5, 0.4, 0.2}, {4, 0.2, 0.2}}, {{0.3, 0.2}, {0, 0.5}}, 3}));

TEST(MvdCubeTest, SharedNodesEvaluatedOnce) {
  RandomAnalysis ra =
      MakeRandomAnalysis(42, 200, {{4, 0.3, 0.1}, {3, 0.2, 0.2}}, {{0, 0}});
  Arm arm;
  MeasureCache cache;
  MvdCubeOptions options;
  MvdCubeStats first =
      EvaluateLatticeMvd(*ra.db, 0, *ra.cfs, ra.spec, options, &arm, &cache);
  EXPECT_GT(first.num_mdas_evaluated, 0u);
  EXPECT_EQ(first.num_mdas_reused, 0u);

  // A second lattice sharing dimension 0: its shared nodes must be reused.
  LatticeSpec sub;
  sub.dims = {ra.spec.dims[0]};
  sub.measures = ra.spec.measures;
  MvdCubeStats second =
      EvaluateLatticeMvd(*ra.db, 0, *ra.cfs, sub, options, &arm, &cache);
  EXPECT_EQ(second.num_mdas_evaluated, 0u);  // {dim0} and {} already done
  EXPECT_EQ(second.num_mdas_reused, sub.measures.size() * 2);
}

TEST(MvdCubeTest, MeasureCacheSharedAcrossLattices) {
  RandomAnalysis ra =
      MakeRandomAnalysis(7, 100, {{3, 0, 0}, {3, 0, 0}}, {{0, 0}});
  Arm arm;
  MeasureCache cache;
  EvaluateLatticeMvd(*ra.db, 0, *ra.cfs, ra.spec, MvdCubeOptions(), &arm,
                     &cache);
  size_t loads_after_first = cache.num_loads();
  LatticeSpec sub;
  sub.dims = {ra.spec.dims[1]};
  sub.measures = ra.spec.measures;
  EvaluateLatticeMvd(*ra.db, 0, *ra.cfs, sub, MvdCubeOptions(), &arm, &cache);
  EXPECT_EQ(cache.num_loads(), loads_after_first);  // no reload
}

TEST(MvdCubeTest, PrunedKeysAreSkipped) {
  RandomAnalysis ra = MakeRandomAnalysis(13, 150, {{3, 0.2, 0.1}}, {{0, 0}});
  std::set<AggregateKey> pruned;
  AggregateKey key;
  key.cfs_id = 0;
  key.dims = ra.spec.dims;
  key.measure = ra.spec.measures[0];
  pruned.insert(key);

  Arm arm;
  MeasureCache cache;
  MvdCubeStats stats = EvaluateLatticeMvd(*ra.db, 0, *ra.cfs, ra.spec,
                                          MvdCubeOptions(), &arm, &cache,
                                          &pruned);
  EXPECT_EQ(stats.num_mdas_pruned, 1u);
  EXPECT_FALSE(arm.IsEvaluated(key));
}

TEST(MvdCubeTest, EmptyCfs) {
  RandomAnalysis ra = MakeRandomAnalysis(3, 50, {{3, 0, 0}}, {});
  CfsIndex empty(std::vector<TermId>{});
  Arm arm;
  MeasureCache cache;
  MvdCubeStats stats = EvaluateLatticeMvd(*ra.db, 0, empty, ra.spec,
                                          MvdCubeOptions(), &arm, &cache);
  EXPECT_EQ(stats.num_groups_emitted, 0u);
}

TEST(MvdCubeTest, FactsWithNoDimensionValuesExcluded) {
  // A fact carrying only measures joins no cell (Section 4.3 translation).
  Graph g;
  Dictionary& d = g.dict();
  TermId dim = d.InternIri("dim"), m = d.InternIri("m");
  g.Add(d.InternIri("a"), dim, d.InternString("x"));
  g.Add(d.InternIri("a"), m, d.InternDouble(1));
  g.Add(d.InternIri("b"), m, d.InternDouble(100));  // no dim value
  g.Freeze();
  AttributeStore db(&g);
  db.BuildDirectAttributes();
  CfsIndex cfs({d.InternIri("a"), d.InternIri("b")});
  LatticeSpec spec;
  spec.dims = {*db.FindAttribute("dim")};
  spec.measures = {MeasureSpec{*db.FindAttribute("m"), sparql::AggFunc::kSum}};
  Arm arm;
  MeasureCache cache;
  EvaluateLatticeMvd(db, 0, cfs, spec, MvdCubeOptions(), &arm, &cache);
  AggregateKey key;
  key.cfs_id = 0;
  key.dims = spec.dims;
  key.measure = spec.measures[0];
  AggregateResult result = ArmResult(arm, key);
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(result.groups[0].value, 1.0);  // b's 100 not included
}

}  // namespace
}  // namespace spade

namespace spade {
namespace {

TEST(MvdCubeTest, ReferenceNodeMatchesFullReference) {
  // EvaluateReferenceNode (single node) and EvaluateReference (whole
  // lattice) must agree — they share semantics but not code paths.
  RandomAnalysis ra =
      MakeRandomAnalysis(77, 200, {{4, 0.4, 0.2}, {3, 0.3, 0.3}}, {{0.3, 0.2}});
  auto all = EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec);
  for (const auto& ref : all) {
    AggregateResult single = EvaluateReferenceNode(
        *ra.db, 0, *ra.cfs, ra.spec, ref.key.dims, ref.key.measure);
    EXPECT_TRUE(SameResult(ref, single));
  }
}

TEST(MvdCubeTest, SingleDimensionLattice) {
  RandomAnalysis ra = MakeRandomAnalysis(78, 250, {{6, 0.5, 0.3}}, {{0.4, 0.3}});
  ExpectMatchesReference(ra, 2);
  ExpectMatchesReference(ra, 7);
}

TEST(MvdCubeTest, DimensionWithSingleDistinctValue) {
  // Degenerate: one distinct value + nulls still forms a valid lattice.
  Graph g;
  Dictionary& d = g.dict();
  TermId dim = d.InternIri("dim"), m = d.InternIri("m");
  std::vector<TermId> members;
  for (int i = 0; i < 40; ++i) {
    TermId f = d.InternIri("f" + std::to_string(i));
    members.push_back(f);
    if (i % 3 != 0) g.Add(f, dim, d.InternString("only"));
    g.Add(f, m, d.InternDouble(i));
  }
  g.Freeze();
  AttributeStore db(&g);
  db.BuildDirectAttributes();
  CfsIndex cfs(members);
  LatticeSpec spec;
  spec.dims = {*db.FindAttribute("dim")};
  spec.measures = {MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount},
                   MeasureSpec{*db.FindAttribute("m"), sparql::AggFunc::kSum}};
  Arm arm;
  MeasureCache cache;
  EvaluateLatticeMvd(db, 0, cfs, spec, MvdCubeOptions(), &arm, &cache);
  for (const auto& ref : EvaluateReference(db, 0, cfs, spec)) {
    EXPECT_TRUE(SameResult(ref, ArmResult(arm, ref.key)));
  }
}

}  // namespace
}  // namespace spade
