// The differential mutation-testing harness for incremental maintenance
// (Spade::ApplyDelta / Spade::Compact, see ARCHITECTURE.md "Incremental
// maintenance").
//
// The harness keeps a term-level mirror of the triple set beside the live
// pipeline and, after every randomized mutation batch, checks the
// incrementally maintained pipeline against a *fresh sequential build* of the
// mutated triple set — full canonical ARM stream (every MDA, every group,
// exact values), representation-independent report counters, and the
// DeltaReport's batch accounting against the mirror's own set arithmetic.
// Eight configurations (threads {1,4} x shards {1,4} x simd {auto,scalar})
// run the same mutation sequence and must stay bit-identical to each other.
//
// The comparison is canonical (term-level) because a long-lived dictionary
// and a fresh one assign different TermIds to the same logical graph; the
// CanonTerm rendering from src/store/delta.h erases ids on both sides.
//
// Seed: SPADE_DELTA_SEED in the environment overrides the default (42); the
// chosen seed is echoed so a CI failure is reproducible.

#include "src/core/spade.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/ingest/chunk_source.h"
#include "src/persist/serve.h"
#include "src/persist/snapshot.h"
#include "src/store/delta.h"
#include "src/util/failpoint.h"
#include "src/util/rng.h"

namespace spade {
namespace {

// --- Term-level triple universe. -------------------------------------------
//
// Logical terms compare by value, independent of any dictionary. Numbers are
// integral doubles so every aggregate (sum, avg, min, max, count) is exact —
// the differential comparison can then demand bitwise-equal group values.

struct LTerm {
  enum class K : uint8_t { kIri, kStr, kNum } k = K::kIri;
  std::string text;
  int64_t num = 0;

  friend bool operator<(const LTerm& a, const LTerm& b) {
    if (a.k != b.k) return a.k < b.k;
    if (a.text != b.text) return a.text < b.text;
    return a.num < b.num;
  }
  friend bool operator==(const LTerm& a, const LTerm& b) {
    return a.k == b.k && a.text == b.text && a.num == b.num;
  }
};

LTerm Iri(std::string text) {
  LTerm t;
  t.k = LTerm::K::kIri;
  t.text = std::move(text);
  return t;
}
LTerm Str(std::string text) {
  LTerm t;
  t.k = LTerm::K::kStr;
  t.text = std::move(text);
  return t;
}
LTerm Num(int64_t value) {
  LTerm t;
  t.k = LTerm::K::kNum;
  t.num = value;
  return t;
}

struct LTriple {
  LTerm s, p, o;

  friend bool operator<(const LTriple& a, const LTriple& b) {
    if (!(a.s == b.s)) return a.s < b.s;
    if (!(a.p == b.p)) return a.p < b.p;
    return a.o < b.o;
  }
  friend bool operator==(const LTriple& a, const LTriple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

using LSet = std::set<LTriple>;

TermId Intern(Graph* g, const LTerm& t) {
  switch (t.k) {
    case LTerm::K::kIri:
      return g->dict().InternIri(t.text);
    case LTerm::K::kStr:
      return g->dict().InternString(t.text);
    case LTerm::K::kNum:
      return g->dict().InternDouble(static_cast<double>(t.num));
  }
  return kInvalidTerm;
}

Triple Encode(Graph* g, const LTriple& t) {
  Triple out;
  out.s = Intern(g, t.s);
  out.p = Intern(g, t.p);
  out.o = Intern(g, t.o);
  return out;
}

/// Fresh graph over the logical set, triples added in sorted (value) order so
/// two calls with equal input produce identical graphs.
std::unique_ptr<Graph> BuildGraph(const LSet& triples) {
  auto g = std::make_unique<Graph>();
  for (const LTriple& t : triples) {
    Triple enc = Encode(g.get(), t);
    g->Add(enc.s, enc.p, enc.o);
  }
  g->Freeze();
  return g;
}

// --- Universe + mutation generation. ---------------------------------------

uint64_t HarnessSeed() {
  const char* env = std::getenv("SPADE_DELTA_SEED");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

/// One fact: a type triple, a multi-valuable dimension, an optional second
/// dimension, one always-present and one sometimes-missing numeric measure.
void AddFact(LSet* out, int type, int id, Rng* rng) {
  LTerm f = Iri("http://d/f" + std::to_string(type) + "_" + std::to_string(id));
  out->insert({f, Iri(vocab::kRdfType), Iri("http://d/T" + std::to_string(type))});
  out->insert({f, Iri("http://d/color"),
               Str("c" + std::to_string(rng->Uniform(6)))});
  if (rng->Bernoulli(0.3)) {
    out->insert({f, Iri("http://d/color"),
                 Str("c" + std::to_string(rng->Uniform(6)))});
  }
  if (!rng->Bernoulli(0.15)) {
    out->insert({f, Iri("http://d/size"),
                 Str("s" + std::to_string(rng->Uniform(4)))});
  }
  out->insert({f, Iri("http://d/score"),
               Num(static_cast<int64_t>(rng->Uniform(100)))});
  if (!rng->Bernoulli(0.2)) {
    out->insert({f, Iri("http://d/weight"),
                 Num(static_cast<int64_t>(rng->Uniform(50)))});
  }
}

LSet InitialUniverse(Rng* rng) {
  LSet out;
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 40; ++i) AddFact(&out, t, i, rng);
  }
  return out;
}

/// One mutation batch: raw add/retract lists, deliberately messy (duplicates,
/// no-ops, retract-then-re-add overlaps) — StageDelta has to net them out.
struct Batch {
  std::vector<LTriple> adds;
  std::vector<LTriple> retracts;
};

Batch MakeBatch(const LSet& cur, int batch_idx, Rng* rng) {
  Batch b;
  std::vector<LTriple> pool(cur.begin(), cur.end());
  auto pick = [&]() -> const LTriple& {
    return pool[rng->Uniform(pool.size())];
  };

  // Brand-new facts.
  for (int i = 0; i < 3; ++i) {
    LSet bundle;
    AddFact(&bundle, static_cast<int>(rng->Uniform(3)),
            1000 + batch_idx * 10 + i, rng);
    b.adds.insert(b.adds.end(), bundle.begin(), bundle.end());
  }
  // Value churn: retract a triple, add a replacement object for the same
  // (subject, property) — skipping rdf:type so CFS membership churn comes
  // only from whole-fact removal below.
  for (int i = 0; i < 8; ++i) {
    const LTriple& t = pick();
    if (t.p.text == vocab::kRdfType) continue;
    b.retracts.push_back(t);
    LTriple repl = t;
    if (repl.o.k == LTerm::K::kNum) {
      repl.o = Num(static_cast<int64_t>(rng->Uniform(100)));
    } else if (repl.o.k == LTerm::K::kStr) {
      repl.o = Str("c" + std::to_string(rng->Uniform(6)));
    }
    b.adds.push_back(repl);
  }
  // Whole-fact removal (type triple included: the CFS shrinks).
  {
    const LTerm subject = pick().s;
    for (const LTriple& t : pool) {
      if (t.s == subject) b.retracts.push_back(t);
    }
  }
  // No-op adds (already present) and a duplicate inside the batch.
  b.adds.push_back(pick());
  b.adds.push_back(b.adds.back());
  // No-op retracts (never present).
  b.retracts.push_back(
      {Iri("http://d/ghost"), Iri("http://d/color"), Str("nope")});
  // Retract-then-re-add in one batch: adds win, the triple must survive.
  {
    const LTriple& t = pick();
    b.retracts.push_back(t);
    b.adds.push_back(t);
  }
  return b;
}

/// The mirror's own batch arithmetic — final = (cur \ retracts) ∪ adds —
/// returning the net counts ApplyDelta must report.
struct ExpectedCounts {
  size_t added = 0, removed = 0, noop_adds = 0, noop_retracts = 0;
};

ExpectedCounts ApplyToMirror(LSet* cur, const Batch& b) {
  std::set<LTriple> adds(b.adds.begin(), b.adds.end());
  std::set<LTriple> rets(b.retracts.begin(), b.retracts.end());
  ExpectedCounts e;
  for (const LTriple& t : rets) {
    if (adds.count(t) == 0 && cur->erase(t) > 0) ++e.removed;
  }
  for (const LTriple& t : adds) {
    if (cur->insert(t).second) ++e.added;
  }
  e.noop_adds = adds.size() - e.added;
  e.noop_retracts = rets.size() - e.removed;
  return e;
}

// --- Pipeline plumbing. -----------------------------------------------------

SpadeOptions HarnessOptions() {
  SpadeOptions o;
  o.cfs.min_size = 10;
  // Summary-based CFS names/partitions depend on the dictionary's class-id
  // assignment — not comparable across representations. Type-based sets
  // carry value-level names.
  o.cfs.summary_based = false;
  o.enumeration.max_dims = 2;
  // Caps set far above what the universe can produce, so no cap ever binds
  // and the full MDA stream is comparable.
  o.enumeration.max_lattices_per_cfs = 256;
  o.enumeration.max_measures_per_lattice = 64;
  o.enumeration.max_distinct_values = 100000;
  o.enumeration.max_distinct_ratio = 1.0;
  o.enumeration.min_support_ratio = 0.05;
  o.top_k = 8;
  o.max_stored_groups = 1u << 20;  // store every group: full-stream compare
  return o;
}

struct Pipeline {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<Spade> spade;
};

Pipeline MakePipeline(const LSet& triples, SpadeOptions options) {
  Pipeline p;
  p.graph = BuildGraph(triples);
  p.spade = std::make_unique<Spade>(p.graph.get(), std::move(options));
  return p;
}

Status ApplyBatch(Pipeline* p, const Batch& b, DeltaReport* report) {
  std::vector<Triple> adds, rets;
  for (const LTriple& t : b.adds) adds.push_back(Encode(p->graph.get(), t));
  for (const LTriple& t : b.retracts) {
    rets.push_back(Encode(p->graph.get(), t));
  }
  VectorChunkSource add_src({std::move(adds)});
  VectorChunkSource ret_src({std::move(rets)});
  return p->spade->ApplyDelta(&add_src, &ret_src, report);
}

// --- Canonical comparison. --------------------------------------------------

std::string CanonTermKey(const Dictionary& dict, TermId id) {
  CanonTerm t = RenderTerm(dict, id);
  return std::to_string(static_cast<int>(t.kind)) + "|" + t.lexical + "|" +
         t.datatype + "|" + t.language;
}

/// Sorted (dim value renderings, measure value) tuples of one MDA.
using CanonGroups = std::vector<std::pair<std::vector<std::string>, double>>;
/// Every evaluated MDA keyed representation-independently: CFS name, dim
/// attribute names, measure function + attribute name.
using CanonArm = std::map<std::string, CanonGroups>;

CanonArm DumpArm(const Spade& spade, const Graph& graph) {
  CanonArm out;
  const Arm& arm = spade.arm();
  const AttributeStore& db = spade.store();
  for (Arm::Handle h = 0; h < arm.num_aggregates(); ++h) {
    const AggregateKey& key = arm.key(h);
    std::string k = spade.fact_sets()[key.cfs_id].name + " by";
    for (AttrId d : key.dims) k += " " + db.attribute(d).name;
    k += " / f" + std::to_string(static_cast<int>(key.measure.func)) + "(";
    k += key.measure.is_count_star() ? "*" : db.attribute(key.measure.attr).name;
    k += ")";
    // max_stored_groups is sized so nothing is dropped; the stored groups
    // ARE the full stream.
    EXPECT_EQ(arm.num_groups(h), arm.stored_groups(h).size()) << k;
    CanonGroups groups;
    for (const GroupResult& gr : arm.stored_groups(h)) {
      std::vector<std::string> vals;
      for (TermId v : gr.dim_values) {
        vals.push_back(CanonTermKey(graph.dict(), v));
      }
      groups.emplace_back(std::move(vals), gr.value);
    }
    std::sort(groups.begin(), groups.end());
    EXPECT_TRUE(out.emplace(std::move(k), std::move(groups)).second)
        << "duplicate canonical MDA key";
  }
  return out;
}

::testing::AssertionResult SameCanonArm(const CanonArm& a, const CanonArm& b) {
  for (const auto& [key, groups] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "MDA only on left: " << key;
    }
    if (groups.size() != it->second.size()) {
      return ::testing::AssertionFailure()
             << "group count differs for " << key << ": " << groups.size()
             << " vs " << it->second.size();
    }
    for (size_t i = 0; i < groups.size(); ++i) {
      if (!(groups[i] == it->second[i])) {
        return ::testing::AssertionFailure()
               << "group " << i << " differs for " << key << " (value "
               << groups[i].second << " vs " << it->second[i].second << ")";
      }
    }
  }
  for (const auto& [key, groups] : b) {
    (void)groups;
    if (a.find(key) == a.end()) {
      return ::testing::AssertionFailure() << "MDA only on right: " << key;
    }
  }
  return ::testing::AssertionSuccess();
}

/// The representation-independent slice of a SpadeReport: everything that
/// must coincide between an incrementally maintained pipeline and a fresh
/// build (configuration echoes, timings and per-shard accounting excluded).
std::vector<size_t> ReportFacts(const SpadeReport& r) {
  return {r.num_triples,
          r.num_cfs,
          r.num_direct_properties,
          r.derivations.total(),
          r.num_lattices,
          r.num_candidate_aggregates,
          r.num_evaluated_aggregates,
          r.num_reused_aggregates,
          r.num_pruned_aggregates,
          r.num_groups_emitted,
          static_cast<size_t>(r.truncated),
          r.num_cfs_completed,
          r.num_groups_skipped};
}

// --- The differential harness. ---------------------------------------------

struct Config {
  size_t threads;
  size_t shards;
  simd::SimdMode simd;
};

std::string ConfigName(const Config& c) {
  return "threads=" + std::to_string(c.threads) +
         " shards=" + std::to_string(c.shards) + " simd=" +
         (c.simd == simd::SimdMode::kAuto ? "auto" : "scalar");
}

TEST(DeltaDifferentialTest, MutationBatchesMatchFreshRebuildAcrossConfigs) {
  const uint64_t seed = HarnessSeed();
  std::cerr << "[delta harness] seed = " << seed
            << " (override with SPADE_DELTA_SEED)\n";
  SCOPED_TRACE("seed = " + std::to_string(seed));
  Rng rng(seed);
  LSet cur = InitialUniverse(&rng);

  const std::vector<Config> configs = {
      {1, 1, simd::SimdMode::kAuto},   {1, 4, simd::SimdMode::kAuto},
      {4, 1, simd::SimdMode::kAuto},   {4, 4, simd::SimdMode::kAuto},
      {1, 1, simd::SimdMode::kScalar}, {1, 4, simd::SimdMode::kScalar},
      {4, 1, simd::SimdMode::kScalar}, {4, 4, simd::SimdMode::kScalar},
  };
  std::vector<Pipeline> pipelines;
  for (const Config& c : configs) {
    SpadeOptions o = HarnessOptions();
    o.num_threads = c.threads;
    o.num_shards = c.shards;
    o.mvd.simd = c.simd;
    o.enable_incremental = true;
    pipelines.push_back(MakePipeline(cur, std::move(o)));
    ASSERT_TRUE(pipelines.back().spade->RunOffline().ok());
    ASSERT_TRUE(pipelines.back().spade->RunOnline().ok());
  }

  // A fresh sequential (serial, non-incremental) build of the same set is
  // the oracle at every step, batch 0 = the unmutated universe.
  auto check_against_fresh = [&](int batch) {
    Pipeline fresh = MakePipeline(cur, HarnessOptions());
    ASSERT_TRUE(fresh.spade->RunOffline().ok());
    ASSERT_TRUE(fresh.spade->RunOnline().ok());
    const Spade& incr = *pipelines[0].spade;
    SCOPED_TRACE("after batch " + std::to_string(batch));
    EXPECT_EQ(ReportFacts(incr.report()), ReportFacts(fresh.spade->report()));
    EXPECT_TRUE(SameCanonArm(DumpArm(incr, *pipelines[0].graph),
                             DumpArm(*fresh.spade, *fresh.graph)));
    EXPECT_EQ(incr.report().num_triples, cur.size());
  };
  check_against_fresh(-1);

  constexpr int kBatches = 5;
  for (int bi = 0; bi < kBatches; ++bi) {
    SCOPED_TRACE("batch " + std::to_string(bi));
    Batch batch = MakeBatch(cur, bi, &rng);
    const ExpectedCounts want = ApplyToMirror(&cur, batch);

    std::vector<std::vector<Insight>> insights(pipelines.size());
    for (size_t i = 0; i < pipelines.size(); ++i) {
      SCOPED_TRACE(ConfigName(configs[i]));
      DeltaReport rep;
      ASSERT_TRUE(ApplyBatch(&pipelines[i], batch, &rep).ok());
      EXPECT_EQ(rep.num_added, want.added);
      EXPECT_EQ(rep.num_removed, want.removed);
      EXPECT_EQ(rep.noop_adds, want.noop_adds);
      EXPECT_EQ(rep.noop_retracts, want.noop_retracts);
      EXPECT_EQ(pipelines[i].graph->NumTriples(), cur.size());
      auto got = pipelines[i].spade->RunOnline();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      insights[i] = std::move(*got);
    }

    // Cross-config: the eight pipelines share one intern history, so their
    // results must be bit-identical — ids, scores and all.
    const CanonArm arm0 = DumpArm(*pipelines[0].spade, *pipelines[0].graph);
    for (size_t i = 1; i < pipelines.size(); ++i) {
      SCOPED_TRACE(ConfigName(configs[i]) + " vs " + ConfigName(configs[0]));
      ASSERT_EQ(insights[i].size(), insights[0].size());
      for (size_t r = 0; r < insights[i].size(); ++r) {
        EXPECT_TRUE(insights[i][r].ranked.key == insights[0][r].ranked.key);
        EXPECT_EQ(insights[i][r].ranked.score, insights[0][r].ranked.score);
        EXPECT_EQ(insights[i][r].ranked.num_groups,
                  insights[0][r].ranked.num_groups);
        EXPECT_EQ(insights[i][r].cfs_name, insights[0][r].cfs_name);
        EXPECT_EQ(insights[i][r].description, insights[0][r].description);
        EXPECT_EQ(insights[i][r].sparql, insights[0][r].sparql);
      }
      EXPECT_EQ(ReportFacts(pipelines[i].spade->report()),
                ReportFacts(pipelines[0].spade->report()));
      EXPECT_EQ(pipelines[i].spade->report().num_cfs_reused,
                pipelines[0].spade->report().num_cfs_reused);
      EXPECT_TRUE(
          SameCanonArm(DumpArm(*pipelines[i].spade, *pipelines[i].graph), arm0));
    }

    // Differential: the maintained pipeline equals a fresh build of the
    // mirror (term-level, so the comparison survives diverged dictionaries).
    check_against_fresh(bi);
  }
}

// --- Edge cases. ------------------------------------------------------------

TEST(DeltaEdgeTest, RetractThenReAddWithinOneBatchKeepsTheTriple) {
  Rng rng(7);
  LSet cur = InitialUniverse(&rng);
  Pipeline p = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());

  Batch b;
  const LTriple t = *cur.begin();
  b.retracts.push_back(t);
  b.adds.push_back(t);
  DeltaReport rep;
  ASSERT_TRUE(ApplyBatch(&p, b, &rep).ok());
  EXPECT_EQ(rep.num_added, 0u);
  EXPECT_EQ(rep.num_removed, 0u);
  EXPECT_EQ(rep.noop_adds, 1u);      // present, so the add is a no-op
  EXPECT_EQ(rep.noop_retracts, 1u);  // overridden by the add
  EXPECT_EQ(p.graph->NumTriples(), cur.size());
  EXPECT_EQ(p.spade->num_deltas_applied(), 1u);
}

TEST(DeltaEdgeTest, RetractionCanEmptyAnAttributeAndACfs) {
  // T9 is a small type with a private property; removing its facts must drop
  // both the CFS and the attribute, exactly as a fresh build of the residue.
  Rng rng(11);
  LSet cur = InitialUniverse(&rng);
  for (int i = 0; i < 12; ++i) {
    LTerm f = Iri("http://d/g" + std::to_string(i));
    cur.insert({f, Iri(vocab::kRdfType), Iri("http://d/T9")});
    cur.insert({f, Iri("http://d/onlyT9"),
                Str("v" + std::to_string(i % 3))});
    cur.insert({f, Iri("http://d/score"), Num(i)});
  }
  Pipeline p = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  ASSERT_TRUE(p.spade->store().FindAttribute("onlyT9").has_value());

  Batch b;
  for (const LTriple& t : cur) {
    if (t.s.text.rfind("http://d/g", 0) == 0) b.retracts.push_back(t);
  }
  ApplyToMirror(&cur, b);
  DeltaReport rep;
  ASSERT_TRUE(ApplyBatch(&p, b, &rep).ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());

  EXPECT_FALSE(p.spade->store().FindAttribute("onlyT9").has_value());
  for (const CandidateFactSet& cfs : p.spade->fact_sets()) {
    EXPECT_EQ(cfs.name.find("T9"), std::string::npos) << cfs.name;
  }
  Pipeline fresh = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(fresh.spade->RunOffline().ok());
  ASSERT_TRUE(fresh.spade->RunOnline().ok());
  EXPECT_EQ(ReportFacts(p.spade->report()), ReportFacts(fresh.spade->report()));
  EXPECT_TRUE(SameCanonArm(DumpArm(*p.spade, *p.graph),
                           DumpArm(*fresh.spade, *fresh.graph)));
}

TEST(DeltaEdgeTest, DeltaToADerivedAttributeSourcePropagates) {
  // "color" is multi-valued, so derivations materialize attributes over it;
  // mutating color rows must recompute those (changed-attr detection works
  // on derived tables too — they compare by columns, not provenance).
  Rng rng(13);
  LSet cur = InitialUniverse(&rng);
  Pipeline p = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  ASSERT_GT(p.spade->report().derivations.total(), 0u);

  Batch b;
  for (const LTriple& t : cur) {
    if (t.p.text == "http://d/color" && t.s.text.find("f0_") != std::string::npos) {
      b.adds.push_back({t.s, t.p, Str("brand-new-shade")});
      break;
    }
  }
  ASSERT_EQ(b.adds.size(), 1u);
  ApplyToMirror(&cur, b);
  DeltaReport rep;
  ASSERT_TRUE(ApplyBatch(&p, b, &rep).ok());
  // At least the color table and one derived table over it changed.
  EXPECT_GE(rep.num_attrs_changed, 2u);
  ASSERT_TRUE(p.spade->RunOnline().ok());

  Pipeline fresh = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(fresh.spade->RunOffline().ok());
  ASSERT_TRUE(fresh.spade->RunOnline().ok());
  EXPECT_EQ(ReportFacts(p.spade->report()), ReportFacts(fresh.spade->report()));
  EXPECT_TRUE(SameCanonArm(DumpArm(*p.spade, *p.graph),
                           DumpArm(*fresh.spade, *fresh.graph)));
}

/// A universe whose measures are private to each type: mutating one type's
/// measure leaves the other types' CFSs provably clean.
LSet PartitionedUniverse() {
  LSet out;
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 30; ++i) {
      LTerm f =
          Iri("http://d/p" + std::to_string(t) + "_" + std::to_string(i));
      out.insert(
          {f, Iri(vocab::kRdfType), Iri("http://d/P" + std::to_string(t))});
      out.insert({f, Iri("http://d/color"),
                  Str("c" + std::to_string((i * 7 + t) % 5))});
      out.insert({f, Iri("http://d/m" + std::to_string(t)),
                  Num((i * 13 + t * 5) % 90)});
    }
  }
  return out;
}

TEST(DeltaEdgeTest, UntouchedCfsIsReusedWithIdenticalResults) {
  LSet cur = PartitionedUniverse();
  SpadeOptions o = HarnessOptions();
  o.enable_incremental = true;
  o.num_threads = 4;
  Pipeline p = MakePipeline(cur, std::move(o));
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  EXPECT_EQ(p.spade->num_cached_cfs(), p.spade->fact_sets().size());

  // Change one P0 measure value: only the m0 table changes, and only P0
  // members appear in it.
  Batch b;
  for (const LTriple& t : cur) {
    if (t.p.text == "http://d/m0") {
      b.retracts.push_back(t);
      b.adds.push_back({t.s, t.p, Num(t.o.num + 500)});
      break;
    }
  }
  ASSERT_EQ(b.adds.size(), 1u);
  ApplyToMirror(&cur, b);
  DeltaReport rep;
  ASSERT_TRUE(ApplyBatch(&p, b, &rep).ok());
  EXPECT_EQ(rep.num_attrs_changed, 1u);
  EXPECT_EQ(rep.num_cfs, 3u);
  EXPECT_EQ(rep.num_cfs_reused, 2u);  // P1 and P2 stay clean
  ASSERT_TRUE(p.spade->RunOnline().ok());
  EXPECT_EQ(p.spade->report().num_cfs_reused, 2u);

  Pipeline fresh = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(fresh.spade->RunOffline().ok());
  ASSERT_TRUE(fresh.spade->RunOnline().ok());
  EXPECT_EQ(ReportFacts(p.spade->report()), ReportFacts(fresh.spade->report()));
  EXPECT_TRUE(SameCanonArm(DumpArm(*p.spade, *p.graph),
                           DumpArm(*fresh.spade, *fresh.graph)));
}

TEST(DeltaEdgeTest, NoopBatchReusesEveryCfs) {
  LSet cur = PartitionedUniverse();
  SpadeOptions o = HarnessOptions();
  o.enable_incremental = true;
  Pipeline p = MakePipeline(cur, std::move(o));
  ASSERT_TRUE(p.spade->RunOffline().ok());
  auto before = p.spade->RunOnline();
  ASSERT_TRUE(before.ok());

  Batch b;
  b.adds.push_back(*cur.begin());  // already present
  b.retracts.push_back(
      {Iri("http://d/ghost"), Iri("http://d/color"), Str("gone")});
  DeltaReport rep;
  ASSERT_TRUE(ApplyBatch(&p, b, &rep).ok());
  EXPECT_EQ(rep.num_added, 0u);
  EXPECT_EQ(rep.num_removed, 0u);
  EXPECT_EQ(rep.noop_adds, 1u);
  EXPECT_EQ(rep.noop_retracts, 1u);
  EXPECT_EQ(rep.num_attrs_changed, 0u);
  EXPECT_EQ(rep.num_cfs_reused, rep.num_cfs);

  auto after = p.spade->RunOnline();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(p.spade->report().num_cfs_reused, rep.num_cfs);
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_TRUE((*after)[i].ranked.key == (*before)[i].ranked.key);
    EXPECT_EQ((*after)[i].ranked.score, (*before)[i].ranked.score);
  }
}

TEST(DeltaEdgeTest, ApplyRequiresOfflineAndRejectsSaturation) {
  Rng rng(3);
  LSet cur = InitialUniverse(&rng);
  {
    Pipeline p = MakePipeline(cur, HarnessOptions());
    Batch b;
    b.adds.push_back(*cur.begin());
    DeltaReport rep;
    EXPECT_FALSE(ApplyBatch(&p, b, &rep).ok());  // RunOffline not called
  }
  {
    SpadeOptions o = HarnessOptions();
    o.saturate = true;
    Pipeline p = MakePipeline(cur, std::move(o));
    ASSERT_TRUE(p.spade->RunOffline().ok());
    Batch b;
    b.adds.push_back(*cur.begin());
    DeltaReport rep;
    Status st = ApplyBatch(&p, b, &rep);
    EXPECT_FALSE(st.ok());
    EXPECT_FALSE(p.spade->Compact().ok());
  }
}

// --- Compaction oracle. -----------------------------------------------------

TEST(DeltaCompactionTest, CompactIsByteIdenticalToCanonicalFreshBuild) {
  Rng rng(HarnessSeed() ^ 0x9E3779B9u);
  LSet cur = InitialUniverse(&rng);
  Pipeline p = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  for (int bi = 0; bi < 2; ++bi) {
    Batch b = MakeBatch(cur, bi, &rng);
    ApplyToMirror(&cur, b);
    DeltaReport rep;
    ASSERT_TRUE(ApplyBatch(&p, b, &rep).ok());
  }
  ASSERT_TRUE(p.spade->Compact().ok());
  const std::string compacted = ::testing::TempDir() + "delta_compacted.snap";
  ASSERT_TRUE(p.spade->SaveStore(compacted).ok());

  // The oracle: canonicalize a fresh graph of the final triple set with the
  // SAME helpers Compact uses, run the sequential offline build, save. Both
  // sides re-intern the identical canonical triple sequence, so the files
  // must match byte for byte.
  std::unique_ptr<Graph> fresh_src = BuildGraph(cur);
  auto canon = std::make_unique<Graph>();
  BuildCanonicalGraph(ExtractCanonicalTriples(*fresh_src), canon.get());
  Spade fresh(canon.get(), HarnessOptions());
  ASSERT_TRUE(fresh.RunOffline().ok());
  ASSERT_TRUE(fresh.PrepareFactSets().ok());
  const std::string rebuilt = ::testing::TempDir() + "delta_fresh.snap";
  ASSERT_TRUE(fresh.SaveStore(rebuilt).ok());

  // Segment-for-segment: same TOC shape, same per-segment checksums.
  persist::SnapshotReader ra, rb;
  ASSERT_TRUE(ra.Open(compacted).ok());
  ASSERT_TRUE(rb.Open(rebuilt).ok());
  ASSERT_EQ(ra.toc().size(), rb.toc().size());
  for (size_t i = 0; i < ra.toc().size(); ++i) {
    const persist::SegmentEntry& ea = ra.toc()[i];
    const persist::SegmentEntry& eb = rb.toc()[i];
    EXPECT_EQ(ea.kind, eb.kind) << "segment " << i;
    EXPECT_EQ(ea.aux, eb.aux) << "segment " << i;
    EXPECT_EQ(ea.length, eb.length) << "segment " << i;
    EXPECT_EQ(ea.checksum, eb.checksum) << "segment " << i;
  }

  // And byte-for-byte over the whole file.
  std::ifstream fa(compacted, std::ios::binary);
  std::ifstream fb(rebuilt, std::ios::binary);
  ASSERT_TRUE(fa && fb);
  std::string ba((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string bb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  ASSERT_EQ(ba.size(), bb.size());
  EXPECT_TRUE(ba == bb) << "snapshot bytes differ";

  std::remove(compacted.c_str());
  std::remove(rebuilt.c_str());
}

TEST(DeltaCompactionTest, SnapshotsBeforeAndAfterCompactionLoadToSameInsights) {
  Rng rng(HarnessSeed() ^ 0x5bd1e995u);
  LSet cur = InitialUniverse(&rng);
  Pipeline p = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  Batch b = MakeBatch(cur, 0, &rng);
  ApplyToMirror(&cur, b);
  DeltaReport rep;
  ASSERT_TRUE(ApplyBatch(&p, b, &rep).ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());

  const std::string pre = ::testing::TempDir() + "delta_pre_compact.snap";
  const std::string post = ::testing::TempDir() + "delta_post_compact.snap";
  ASSERT_TRUE(p.spade->SaveStore(pre).ok());
  ASSERT_TRUE(p.spade->Compact().ok());
  ASSERT_TRUE(p.spade->SaveStore(post).ok());

  // Pre-compaction snapshots carry the retired terms of the delta history,
  // post-compaction ones don't — but both must load to the same insights.
  auto load_and_dump = [](const std::string& path, CanonArm* out) {
    Graph g;
    SpadeOptions o = HarnessOptions();
    o.load_store = path;
    Spade spade(&g, std::move(o));
    ASSERT_TRUE(spade.RunOffline().ok());
    ASSERT_TRUE(spade.RunOnline().ok());
    *out = DumpArm(spade, g);
  };
  CanonArm arm_pre, arm_post;
  load_and_dump(pre, &arm_pre);
  load_and_dump(post, &arm_post);
  EXPECT_TRUE(SameCanonArm(arm_pre, arm_post));

  std::remove(pre.c_str());
  std::remove(post.c_str());
}

// --- Failpoints: a failed mutation must leave the store readable. -----------

TEST(DeltaFailpointTest, ApplyFailureLeavesPipelineUntouchedAndReadable) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  fail::Reset();
  Rng rng(17);
  LSet cur = InitialUniverse(&rng);
  SpadeOptions o = HarnessOptions();
  o.enable_incremental = true;
  Pipeline p = MakePipeline(cur, std::move(o));
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  const CanonArm before = DumpArm(*p.spade, *p.graph);
  const size_t triples_before = p.graph->NumTriples();

  ASSERT_TRUE(fail::Configure("delta.apply=error").ok());
  Batch b = MakeBatch(cur, 0, &rng);
  DeltaReport rep;
  EXPECT_FALSE(ApplyBatch(&p, b, &rep).ok());
  fail::Reset();

  // Nothing committed: same triple count, same results, cache intact.
  EXPECT_EQ(p.spade->num_deltas_applied(), 0u);
  EXPECT_EQ(p.graph->NumTriples(), triples_before);
  EXPECT_TRUE(SameCanonArm(DumpArm(*p.spade, *p.graph), before));
  EXPECT_EQ(p.spade->num_cached_cfs(), p.spade->fact_sets().size());

  // The same batch applies cleanly once the failpoint is gone, and the
  // result matches a fresh build of the mutated set.
  ApplyToMirror(&cur, b);
  ASSERT_TRUE(ApplyBatch(&p, b, &rep).ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  Pipeline fresh = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(fresh.spade->RunOffline().ok());
  ASSERT_TRUE(fresh.spade->RunOnline().ok());
  EXPECT_TRUE(SameCanonArm(DumpArm(*p.spade, *p.graph),
                           DumpArm(*fresh.spade, *fresh.graph)));
}

TEST(DeltaFailpointTest, CompactFailureLeavesPipelineUntouchedAndReadable) {
  if (!fail::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  fail::Reset();
  Rng rng(19);
  LSet cur = InitialUniverse(&rng);
  Pipeline p = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  const CanonArm before = DumpArm(*p.spade, *p.graph);

  ASSERT_TRUE(fail::Configure("delta.compact=error").ok());
  EXPECT_FALSE(p.spade->Compact().ok());
  fail::Reset();

  EXPECT_EQ(p.graph->NumTriples(), cur.size());
  EXPECT_TRUE(SameCanonArm(DumpArm(*p.spade, *p.graph), before));

  // And compaction succeeds afterwards.
  ASSERT_TRUE(p.spade->Compact().ok());
  ASSERT_TRUE(p.spade->RunOnline().ok());
  EXPECT_TRUE(SameCanonArm(DumpArm(*p.spade, *p.graph), before));
}

// --- Serve-mode mutation under concurrent explores. -------------------------

/// Render a logical triple as one N-Triples line (IRI / plain-string objects
/// only — the serve tests keep numbers out of mutation files so term identity
/// never depends on numeric lexical forms).
std::string ToNTriples(const std::vector<LTriple>& triples) {
  std::ostringstream out;
  for (const LTriple& t : triples) {
    out << "<" << t.s.text << "> <" << t.p.text << "> ";
    if (t.o.k == LTerm::K::kIri) {
      out << "<" << t.o.text << ">";
    } else {
      out << "\"" << t.o.text << "\"";
    }
    out << " .\n";
  }
  return out.str();
}

TEST(DeltaServeTest, ApplyAndCompactInterleavedWithConcurrentExplores) {
  Rng rng(23);
  LSet cur = InitialUniverse(&rng);
  SpadeOptions o = HarnessOptions();
  o.enable_incremental = true;
  Pipeline p = MakePipeline(cur, std::move(o));
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->PrepareFactSets().ok());

  // Mutation files: string-valued churn on existing facts plus one new fact.
  std::vector<LTriple> adds, rets;
  int i = 0;
  for (const LTriple& t : cur) {
    if (t.p.text != "http://d/color") continue;
    if (++i > 4) break;
    rets.push_back(t);
    adds.push_back({t.s, t.p, Str("served-" + std::to_string(i))});
  }
  LTerm nf = Iri("http://d/served_fact");
  adds.push_back({nf, Iri(vocab::kRdfType), Iri("http://d/T0")});
  adds.push_back({nf, Iri("http://d/color"), Str("served-0")});
  const std::string add_path = ::testing::TempDir() + "delta_serve_add.nt";
  const std::string ret_path = ::testing::TempDir() + "delta_serve_ret.nt";
  {
    std::ofstream(add_path) << ToNTriples(adds);
    std::ofstream(ret_path) << ToNTriples(rets);
  }

  // Many concurrent explores interleaved with mutations; the writer lock
  // serializes apply/compact against the reads, so every request succeeds
  // and the response stream is deterministic in shape (run under TSan in CI
  // to prove the locking).
  std::ostringstream script;
  for (int r = 0; r < 4; ++r) script << "explore top=3\n";
  script << "apply add=" << add_path << " retract=" << ret_path << "\n";
  for (int r = 0; r < 4; ++r) script << "explore top=3\n";
  script << "stats\n";
  script << "compact\n";
  for (int r = 0; r < 4; ++r) script << "explore top=3\n";
  script << "quit\n";

  persist::ServeOptions sopt;
  sopt.num_threads = 4;
  sopt.max_inflight = 8;
  persist::InsightServer server(p.spade.get(), sopt);
  std::istringstream in(script.str());
  std::ostringstream out;
  persist::ServeStats stats = server.Serve(in, out);
  const std::string text = out.str();
  EXPECT_EQ(stats.num_errors, 0u) << text;
  EXPECT_EQ(stats.num_requests, 15u);
  // 4 replacement color triples + 2 triples of the new fact.
  EXPECT_NE(text.find("ok added=6 removed=4"), std::string::npos) << text;
  EXPECT_NE(text.find("cfs_reused="), std::string::npos) << text;
  EXPECT_NE(text.find("ok triples="), std::string::npos) << text;  // compact
  EXPECT_EQ(text.find("error:"), std::string::npos) << text;
  EXPECT_EQ(p.spade->num_deltas_applied(), 1u);

  std::remove(add_path.c_str());
  std::remove(ret_path.c_str());
}

TEST(DeltaServeTest, ReadOnlyServersRefuseMutation) {
  Rng rng(29);
  LSet cur = InitialUniverse(&rng);
  Pipeline p = MakePipeline(cur, HarnessOptions());
  ASSERT_TRUE(p.spade->RunOffline().ok());
  ASSERT_TRUE(p.spade->PrepareFactSets().ok());

  auto run = [&](persist::InsightServer& server, const std::string& line) {
    std::istringstream in(line + "\nquit\n");
    std::ostringstream out;
    server.Serve(in, out);
    return out.str();
  };

  {
    // Const pipeline: implicitly read-only.
    const Spade* const_spade = p.spade.get();
    persist::InsightServer server(const_spade, persist::ServeOptions());
    EXPECT_NE(run(server, "compact").find("error: server is read-only"),
              std::string::npos);
  }
  {
    // Mutable pipeline, but --read-only.
    persist::ServeOptions sopt;
    sopt.read_only = true;
    persist::InsightServer server(p.spade.get(), sopt);
    EXPECT_NE(run(server, "apply add=/nope.nt").find("error: server is read-only"),
              std::string::npos);
  }
  {
    // Mutable server: bad arguments are per-request errors, not crashes.
    persist::InsightServer server(p.spade.get(), persist::ServeOptions());
    EXPECT_NE(run(server, "apply").find("error: apply needs"),
              std::string::npos);
    EXPECT_NE(run(server, "apply frob=1").find("error: unknown key"),
              std::string::npos);
    EXPECT_NE(run(server, "apply add=/no/such/file.nt").find("error: cannot open"),
              std::string::npos);
    EXPECT_NE(run(server, "compact now").find("error: compact takes no"),
              std::string::npos);
  }
  EXPECT_EQ(p.spade->num_deltas_applied(), 0u);
}

}  // namespace
}  // namespace spade
