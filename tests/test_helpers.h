#ifndef SPADE_TESTS_TEST_HELPERS_H_
#define SPADE_TESTS_TEST_HELPERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/aggregate.h"
#include "src/core/arm.h"
#include "src/core/reference.h"
#include "src/rdf/graph.h"
#include "src/store/attribute_store.h"
#include "src/util/rng.h"

namespace spade {
namespace testing_helpers {

/// Shape of one randomly generated dimension.
struct DimSpec {
  int cardinality = 5;
  double multi_prob = 0.0;    ///< chance a fact carries a 2nd/3rd value
  double missing_prob = 0.0;  ///< chance a fact misses the dimension
};

/// Shape of one randomly generated numeric measure.
struct MeasureShape {
  double multi_prob = 0.0;
  double missing_prob = 0.0;
};

/// A self-contained random-analysis fixture: graph, database, CFS and a
/// lattice spec covering all generated dimensions and measures.
struct RandomAnalysis {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<AttributeStore> db;
  std::unique_ptr<CfsIndex> cfs;
  LatticeSpec spec;
};

inline RandomAnalysis MakeRandomAnalysis(uint64_t seed, size_t num_facts,
                                         const std::vector<DimSpec>& dims,
                                         const std::vector<MeasureShape>& measures,
                                         bool with_min_max = true) {
  RandomAnalysis out;
  out.graph = std::make_unique<Graph>();
  Graph& g = *out.graph;
  Dictionary& d = g.dict();
  Rng rng(seed);

  TermId type = d.InternIri("http://t/Fact");
  std::vector<TermId> dim_props, measure_props;
  for (size_t i = 0; i < dims.size(); ++i) {
    dim_props.push_back(d.InternIri("http://t/dim" + std::to_string(i)));
  }
  for (size_t i = 0; i < measures.size(); ++i) {
    measure_props.push_back(d.InternIri("http://t/m" + std::to_string(i)));
  }

  std::vector<TermId> members;
  for (size_t f = 0; f < num_facts; ++f) {
    TermId fact = d.InternIri("http://t/f" + std::to_string(f));
    members.push_back(fact);
    g.Add(fact, g.rdf_type(), type);
    for (size_t i = 0; i < dims.size(); ++i) {
      if (rng.Bernoulli(dims[i].missing_prob)) continue;
      size_t k = 1;
      while (k < 3 && rng.Bernoulli(dims[i].multi_prob)) ++k;
      for (size_t j = 0; j < k; ++j) {
        g.Add(fact, dim_props[i],
              d.InternString("v" + std::to_string(rng.Uniform(
                                       static_cast<uint64_t>(dims[i].cardinality)))));
      }
    }
    for (size_t i = 0; i < measures.size(); ++i) {
      if (rng.Bernoulli(measures[i].missing_prob)) continue;
      size_t k = 1;
      while (k < 3 && rng.Bernoulli(measures[i].multi_prob)) ++k;
      for (size_t j = 0; j < k; ++j) {
        g.Add(fact, measure_props[i],
              d.InternDouble(static_cast<double>(rng.Uniform(1000)) / 4.0));
      }
    }
  }
  g.Freeze();

  out.db = std::make_unique<AttributeStore>(out.graph.get());
  out.db->BuildDirectAttributes();
  out.cfs = std::make_unique<CfsIndex>(members);

  for (size_t i = 0; i < dims.size(); ++i) {
    out.spec.dims.push_back(
        *out.db->FindAttribute("dim" + std::to_string(i)));
  }
  std::sort(out.spec.dims.begin(), out.spec.dims.end());
  out.spec.measures.push_back(MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount});
  for (size_t i = 0; i < measures.size(); ++i) {
    AttrId a = *out.db->FindAttribute("m" + std::to_string(i));
    out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kCount});
    out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kSum});
    out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kAvg});
    if (with_min_max) {
      out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kMin});
      out.spec.measures.push_back(MeasureSpec{a, sparql::AggFunc::kMax});
    }
  }
  return out;
}

/// Extract one MDA's result from the ARM in the reference layout.
inline AggregateResult ArmResult(const Arm& arm, const AggregateKey& key) {
  AggregateResult result;
  result.key = key;
  Arm::Handle h = arm.Find(key);
  if (h != Arm::kInvalidHandle) {
    result.groups = arm.stored_groups(h);
  }
  SortGroups(&result);
  return result;
}

/// Structural + numeric comparison of two results (groups sorted).
inline ::testing::AssertionResult SameResult(const AggregateResult& a,
                                             const AggregateResult& b,
                                             double tol = 1e-9) {
  if (a.groups.size() != b.groups.size()) {
    return ::testing::AssertionFailure()
           << "group counts differ: " << a.groups.size() << " vs "
           << b.groups.size();
  }
  for (size_t i = 0; i < a.groups.size(); ++i) {
    if (a.groups[i].dim_values != b.groups[i].dim_values) {
      return ::testing::AssertionFailure() << "group key " << i << " differs";
    }
    double da = a.groups[i].value, db = b.groups[i].value;
    double scale = std::max({1.0, std::fabs(da), std::fabs(db)});
    if (std::fabs(da - db) > tol * scale) {
      return ::testing::AssertionFailure()
             << "group " << i << " value differs: " << da << " vs " << db;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing_helpers
}  // namespace spade

#endif  // SPADE_TESTS_TEST_HELPERS_H_
