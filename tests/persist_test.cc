// Tests of the persistence layer: snapshot save/load round-trips, the
// corrupted/foreign-file error paths, and the load-time contract the serve
// mode stands on — a loaded store is semantically identical to a freshly
// ingested one at every thread/shard/simd configuration.

#include "src/persist/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/spade.h"
#include "src/datagen/synthetic.h"
#include "src/exec/cube_evaluator.h"
#include "src/persist/serve.h"
#include "src/simd/measure_fold.h"

namespace spade {
namespace {

SyntheticOptions SmallCorpus() {
  SyntheticOptions sopts;
  sopts.num_facts = 3000;
  sopts.dim_cardinality.assign(3, 20);
  sopts.num_measures = 3;
  sopts.num_fact_types = 3;
  return sopts;
}

SpadeOptions BaseOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 8;
  options.enumeration.max_measures_per_lattice = 3;
  options.top_k = 8;
  return options;
}

std::string SnapPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Order-insensitive content fingerprint of a sealed store (same shape as
/// the one bench_ingest prints): equal sealed stores => equal sums.
uint64_t StoreChecksum(const AttributeStore& store) {
  uint64_t sum = store.num_attributes();
  for (AttrId a = 0; a < store.num_attributes(); ++a) {
    const AttributeTable& t = store.attribute(a);
    sum = sum * 1000003 + t.num_rows();
    for (TermId s : t.subjects()) sum += s;
    for (TermId o : t.objects()) sum += 31 * static_cast<uint64_t>(o);
  }
  return sum;
}

/// Build the full offline state from a synthetic graph and save it.
/// `with_fact_sets` controls whether step 1 runs before the save.
void BuildAndSave(const std::string& path, bool with_fact_sets,
                  SpadeOptions options = BaseOptions()) {
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade spade(graph.get(), options);
  ASSERT_TRUE(spade.RunOffline().ok());
  if (with_fact_sets) {
    ASSERT_TRUE(spade.PrepareFactSets().ok());
  }
  ASSERT_TRUE(spade.SaveStore(path).ok()) << path;
}

struct RunOutcome {
  std::vector<Insight> insights;
  SpadeReport report;
  uint64_t store_checksum = 0;
};

/// Full pipeline on a freshly generated graph (the ingested baseline).
RunOutcome RunIngested(SpadeOptions options) {
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade spade(graph.get(), options);
  EXPECT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  EXPECT_TRUE(insights.ok()) << insights.status().ToString();
  return RunOutcome{std::move(*insights), spade.report(),
                    StoreChecksum(spade.store())};
}

/// Full pipeline with the offline state attached from a snapshot.
RunOutcome RunLoaded(const std::string& path, SpadeOptions options) {
  options.load_store = path;
  Graph graph;
  Spade spade(&graph, options);
  EXPECT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  EXPECT_TRUE(insights.ok()) << insights.status().ToString();
  return RunOutcome{std::move(*insights), spade.report(),
                    StoreChecksum(spade.store())};
}

/// Bit-identical comparison: same keys, exact scores, same groups, same
/// pipeline counters. Mirrors the exec_test determinism contract.
void ExpectIdentical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.store_checksum, b.store_checksum);
  EXPECT_EQ(a.report.num_cfs, b.report.num_cfs);
  EXPECT_EQ(a.report.num_lattices, b.report.num_lattices);
  EXPECT_EQ(a.report.num_candidate_aggregates,
            b.report.num_candidate_aggregates);
  ASSERT_EQ(a.insights.size(), b.insights.size());
  for (size_t i = 0; i < a.insights.size(); ++i) {
    const Arm::Ranked& x = a.insights[i].ranked;
    const Arm::Ranked& y = b.insights[i].ranked;
    EXPECT_TRUE(x.key == y.key) << "insight " << i;
    EXPECT_EQ(x.score, y.score) << "insight " << i;  // exact, not approximate
    EXPECT_EQ(x.num_groups, y.num_groups) << "insight " << i;
    EXPECT_EQ(a.insights[i].cfs_name, b.insights[i].cfs_name);
    EXPECT_EQ(a.insights[i].description, b.insights[i].description);
    EXPECT_EQ(a.insights[i].sparql, b.insights[i].sparql);
  }
}

// --- Round-trip identity ---------------------------------------------------

TEST(SnapshotTest, RoundTripRestoresTheOfflineState) {
  const std::string path = SnapPath("roundtrip.snap");
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade built(graph.get(), BaseOptions());
  ASSERT_TRUE(built.RunOffline().ok());
  ASSERT_TRUE(built.PrepareFactSets().ok());
  ASSERT_TRUE(built.SaveStore(path).ok());

  SpadeOptions options = BaseOptions();
  options.load_store = path;
  Graph loaded_graph;
  Spade loaded(&loaded_graph, options);
  ASSERT_TRUE(loaded.RunOffline().ok());

  // Store columns, triples and dictionary match exactly.
  EXPECT_EQ(StoreChecksum(built.store()), StoreChecksum(loaded.store()));
  EXPECT_EQ(graph->NumTriples(), loaded_graph.NumTriples());
  const Dictionary& d0 = graph->dict();
  const Dictionary& d1 = loaded_graph.dict();
  ASSERT_EQ(d0.size(), d1.size());
  for (TermId id = 1; id < d0.size(); id += 97) {  // sampled sweep
    EXPECT_EQ(d0.KindOf(id), d1.KindOf(id)) << id;
    EXPECT_EQ(d0.LexicalOf(id), d1.LexicalOf(id)) << id;
  }

  // Summary: same classes, members and property sets.
  const StructuralSummary& s0 = built.summary();
  const StructuralSummary& s1 = loaded.summary();
  ASSERT_EQ(s0.num_classes(), s1.num_classes());
  for (size_t c = 0; c < s0.num_classes(); ++c) {
    EXPECT_EQ(s0.ClassMembers(c).ToVector(), s1.ClassMembers(c).ToVector());
    EXPECT_EQ(s0.ClassPropertySpan(c).ToVector(),
              s1.ClassPropertySpan(c).ToVector());
  }

  // Offline statistics round-trip exactly (doubles are copied, not
  // recomputed).
  const auto& st0 = built.offline_stats();
  const auto& st1 = loaded.offline_stats();
  ASSERT_EQ(st0.size(), st1.size());
  for (size_t i = 0; i < st0.size(); ++i) {
    EXPECT_EQ(st0[i].kind, st1[i].kind);
    EXPECT_EQ(st0[i].num_subjects, st1[i].num_subjects);
    EXPECT_EQ(st0[i].num_values, st1[i].num_values);
    EXPECT_EQ(st0[i].num_distinct_values, st1[i].num_distinct_values);
    EXPECT_EQ(st0[i].min_value, st1[i].min_value);
    EXPECT_EQ(st0[i].max_value, st1[i].max_value);
  }

  // Persisted fact sets were reused (same CfsOptions).
  ASSERT_EQ(built.fact_sets().size(), loaded.fact_sets().size());
  for (size_t i = 0; i < built.fact_sets().size(); ++i) {
    EXPECT_EQ(built.fact_sets()[i].name, loaded.fact_sets()[i].name);
    EXPECT_EQ(built.fact_sets()[i].members, loaded.fact_sets()[i].members);
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, ResaveOfALoadedStoreIsByteIdentical) {
  // SaveSnapshot reads through the view accessors, so saving a borrowed
  // (just-loaded) state must reproduce the file bit for bit.
  const std::string path1 = SnapPath("gen1.snap");
  const std::string path2 = SnapPath("gen2.snap");
  BuildAndSave(path1, /*with_fact_sets=*/true);

  SpadeOptions options = BaseOptions();
  options.load_store = path1;
  Graph graph;
  Spade spade(&graph, options);
  ASSERT_TRUE(spade.RunOffline().ok());
  ASSERT_TRUE(spade.SaveStore(path2).ok());

  std::ifstream f1(path1, std::ios::binary), f2(path2, std::ios::binary);
  std::stringstream b1, b2;
  b1 << f1.rdbuf();
  b2 << f2.rdbuf();
  ASSERT_FALSE(b1.str().empty());
  EXPECT_EQ(b1.str(), b2.str());
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(SnapshotTest, LoadWithoutPersistedFactSetsRecomputesThem) {
  const std::string path = SnapPath("nofcs.snap");
  BuildAndSave(path, /*with_fact_sets=*/false);
  RunOutcome ingested = RunIngested(BaseOptions());
  RunOutcome loaded = RunLoaded(path, BaseOptions());
  ExpectIdentical(ingested, loaded);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MismatchedCfsOptionsForceRecomputation) {
  // Saved under min_size=20; loaded under min_size=40. The persisted fact
  // sets must not be reused — the loaded run matches a fresh min_size=40
  // run, not the saved selection.
  const std::string path = SnapPath("cfsmismatch.snap");
  BuildAndSave(path, /*with_fact_sets=*/true);
  SpadeOptions narrow = BaseOptions();
  narrow.cfs.min_size = 40;
  RunOutcome ingested = RunIngested(narrow);
  RunOutcome loaded = RunLoaded(path, narrow);
  ExpectIdentical(ingested, loaded);
  std::remove(path.c_str());
}

// --- Loaded == ingested across the execution matrix ------------------------

TEST(SnapshotTest, LoadedInsightsIdenticalAcrossThreadsShardsSimd) {
  const std::string path = SnapPath("matrix.snap");
  BuildAndSave(path, /*with_fact_sets=*/true);

  SpadeOptions base = BaseOptions();
  base.num_threads = 1;
  base.num_shards = 1;
  base.mvd.simd = simd::SimdMode::kScalar;
  RunOutcome reference = RunIngested(base);
  ASSERT_FALSE(reference.insights.empty());

  for (simd::SimdMode mode : {simd::SimdMode::kAuto, simd::SimdMode::kScalar}) {
    for (size_t threads : {1u, 4u}) {
      for (size_t shards : {1u, 4u}) {
        SCOPED_TRACE(std::string("simd = ") + simd::SimdModeName(mode) +
                     ", threads = " + std::to_string(threads) +
                     ", shards = " + std::to_string(shards));
        SpadeOptions options = BaseOptions();
        options.num_threads = threads;
        options.num_shards = shards;
        options.mvd.simd = mode;
        RunOutcome loaded = RunLoaded(path, options);
        ExpectIdentical(reference, loaded);
      }
    }
  }
  std::remove(path.c_str());
}

// --- Borrowed-dictionary behavior -----------------------------------------

TEST(SnapshotTest, BorrowedDictionaryLooksUpAndInternsPastTheArena) {
  const std::string path = SnapPath("dict.snap");
  BuildAndSave(path, /*with_fact_sets=*/false);

  SpadeOptions options = BaseOptions();
  options.load_store = path;
  Graph graph;
  Spade spade(&graph, options);
  ASSERT_TRUE(spade.RunOffline().ok());
  Dictionary& dict = graph.dict();
  const size_t arena_terms = dict.size();

  // Lookup of an arena term resolves to its persisted id; re-interning it
  // must not mint a duplicate.
  const TermId probe = 1;
  Term term;
  term.kind = dict.KindOf(probe);
  term.lexical = std::string(dict.LexicalOf(probe));
  term.language = std::string(dict.LanguageOf(probe));
  term.datatype = dict.DatatypeOf(probe);
  auto found = dict.Lookup(term);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, probe);
  EXPECT_EQ(dict.Intern(term), probe);
  EXPECT_EQ(dict.size(), arena_terms);

  // A genuinely new term lands in the overflow region past the arena and
  // reads back through the same accessors.
  const TermId fresh = dict.InternIri("http://example.org/past-the-arena");
  EXPECT_GE(fresh, arena_terms);
  EXPECT_EQ(dict.LexicalOf(fresh), "http://example.org/past-the-arena");
  EXPECT_EQ(dict.Intern(Term::Iri("http://example.org/past-the-arena")), fresh);
  std::remove(path.c_str());
}

// --- Error paths -----------------------------------------------------------

class SnapshotErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = SnapPath("error.snap");
    BuildAndSave(path_, /*with_fact_sets=*/true);
    std::ifstream in(path_, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    bytes_ = buf.str();
    ASSERT_GT(bytes_.size(), sizeof(persist::SnapshotHeader));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Write a mutated copy of the snapshot and return its path.
  std::string WriteMutated(size_t offset, char xor_mask) {
    std::string bytes = bytes_;
    bytes[offset] ^= xor_mask;
    return WriteBytes(bytes);
  }

  std::string WriteBytes(const std::string& bytes) {
    const std::string path = SnapPath("mutated.snap");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotErrorTest, RejectsBadMagic) {
  const std::string p = WriteMutated(0, 0x40);
  persist::SnapshotReader reader;
  Status st = reader.Open(p);
  EXPECT_FALSE(st.ok()) << st.ToString();
  EXPECT_FALSE(reader.is_open());
  std::remove(p.c_str());
}

TEST_F(SnapshotErrorTest, RejectsUnknownVersion) {
  // version is the u32 at offset 8.
  const std::string p = WriteMutated(8, 0x7f);
  persist::SnapshotReader reader;
  Status st = reader.Open(p);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("version"), std::string::npos) << st.ToString();
  std::remove(p.c_str());
}

TEST_F(SnapshotErrorTest, RejectsForeignEndianness) {
  // endian probe is the u32 at offset 12.
  const std::string p = WriteMutated(12, 0x55);
  persist::SnapshotReader reader;
  EXPECT_FALSE(reader.Open(p).ok());
  std::remove(p.c_str());
}

TEST_F(SnapshotErrorTest, DetectsACorruptedSegment) {
  // Flip one payload byte in the middle of the file: checksum verification
  // must catch it; with verification disabled the structural checks alone
  // accept the (trusted) file.
  const std::string p = WriteMutated(bytes_.size() / 2, 0x01);
  {
    persist::SnapshotReader reader;
    Status st = reader.Open(p);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("checksum"), std::string::npos)
        << st.ToString();
  }
  {
    persist::SnapshotReader reader;
    persist::SnapshotReader::Options options;
    options.verify_checksums = false;
    EXPECT_TRUE(reader.Open(p, options).ok());
  }
  std::remove(p.c_str());
}

TEST_F(SnapshotErrorTest, RejectsTruncatedFiles) {
  // Every truncation point must fail gracefully — never crash or attach.
  for (size_t keep : {size_t{0}, size_t{17}, sizeof(persist::SnapshotHeader),
                      bytes_.size() / 2, bytes_.size() - 1}) {
    SCOPED_TRACE("keep = " + std::to_string(keep));
    const std::string p = WriteBytes(bytes_.substr(0, keep));
    persist::SnapshotReader reader;
    EXPECT_FALSE(reader.Open(p).ok());
    EXPECT_FALSE(reader.is_open());
    std::remove(p.c_str());
  }
}

TEST_F(SnapshotErrorTest, MissingFileIsAStatusNotACrash) {
  persist::SnapshotReader reader;
  Status st = reader.Open(SnapPath("does-not-exist.snap"));
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(reader.is_open());
}

TEST_F(SnapshotErrorTest, FailedLoadLeavesNoHalfAttachedState) {
  const std::string p = WriteMutated(bytes_.size() / 2, 0x01);
  SpadeOptions options = BaseOptions();
  options.load_store = p;
  Graph graph;
  Spade spade(&graph, options);
  EXPECT_FALSE(spade.RunOffline().ok());
  std::remove(p.c_str());
}

// --- Explore / serve -------------------------------------------------------

TEST(ServeTest, ExploreRejectsUnknownFactSets) {
  auto graph = GenerateSynthetic(SmallCorpus());
  Spade spade(graph.get(), BaseOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  ASSERT_TRUE(spade.PrepareFactSets().ok());
  ExploreRequest req;
  req.cfs_names.push_back("no-such-fact-set");
  auto result = spade.Explore(req, /*scheduler=*/nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(ServeTest, OutputIsByteIdenticalAcrossThreadCounts) {
  const std::string path = SnapPath("serve.snap");
  BuildAndSave(path, /*with_fact_sets=*/true);

  const std::string requests =
      "stats\n"
      "list\n"
      "explore top=3\n"
      "explore top=2 interestingness=skewness\n"
      "explore cfs=bogus\n"
      "not-a-command\n"
      "explore top=1 algorithm=arraycube earlystop=off\n"
      "# a comment, skipped\n"
      "\n"
      "explore top=2 max-dims=2 min-support=0.2\n"
      "quit\n"
      "explore top=1\n";  // after quit: never evaluated

  auto serve = [&](size_t threads) {
    SpadeOptions options = BaseOptions();
    options.load_store = path;
    Graph graph;
    Spade spade(&graph, options);
    EXPECT_TRUE(spade.RunOffline().ok());
    EXPECT_TRUE(spade.PrepareFactSets().ok());
    persist::ServeOptions sopts;
    sopts.num_threads = threads;
    persist::InsightServer server(&spade, sopts);
    std::istringstream in(requests);
    std::ostringstream out;
    persist::ServeStats stats = server.Serve(in, out);
    EXPECT_EQ(stats.num_requests, 8u);
    EXPECT_EQ(stats.num_errors, 2u);
    return out.str();
  };

  const std::string serial = serve(1);
  EXPECT_NE(serial.find("#1 ok"), std::string::npos);
  EXPECT_NE(serial.find("#5 error: "), std::string::npos);
  EXPECT_NE(serial.find("#6 error: "), std::string::npos);
  EXPECT_EQ(serial.find("#9 "), std::string::npos);  // quit stops the loop
  for (size_t threads : {2u, 4u}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    EXPECT_EQ(serial, serve(threads));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spade
