// Differential tests of the measure-fold kernels (src/simd): the dispatched
// kernel (AVX2 / NEON / scalar, whatever this CPU resolves) must be
// BIT-identical to the portable scalar kernel — no tolerance anywhere — on
// spans drawn from every bitmap representation (inline small set, array,
// run, bitset containers), at block-boundary sizes, and with facts whose
// measure is missing (count == 0). Plus value-level checks against a naive
// reference, and the fixed reduction-order contract.

#include "src/simd/measure_fold.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/bitmap/roaring.h"
#include "src/store/preagg.h"
#include "src/util/rng.h"

namespace spade {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Bitwise equality — EXPECT_EQ on doubles would accept -0.0 == +0.0.
void ExpectBitEqual(const simd::FoldResult& a, const simd::FoldResult& b) {
  EXPECT_EQ(Bits(a.count), Bits(b.count));
  EXPECT_EQ(Bits(a.sum), Bits(b.sum));
  EXPECT_EQ(Bits(a.min), Bits(b.min));
  EXPECT_EQ(Bits(a.max), Bits(b.max));
}

// Measure columns over `universe` facts: ~1/4 of facts missing (count 0),
// the rest carrying small multi-value aggregates with awkward doubles.
MeasureVector MakeMeasures(size_t universe, uint64_t seed) {
  MeasureVector mv;
  mv.Init(universe);
  Rng rng(seed);
  for (size_t f = 0; f < universe; ++f) {
    if (rng.Uniform(4) == 0) continue;  // missing: count stays 0
    uint32_t c = static_cast<uint32_t>(1 + rng.Uniform(3));
    mv.count[f] = c;
    double base = rng.NextDouble() * 2e6 - 1e6;
    mv.sum[f] = base * c + rng.NextDouble();
    mv.min[f] = base - rng.NextDouble();
    mv.max[f] = base + rng.NextDouble();
  }
  return mv;
}

simd::FoldResult RunKernel(simd::MeasureFoldFn fn,
                           const std::vector<uint32_t>& span,
                           const MeasureVector& mv) {
  simd::FoldAcc acc;
  acc.Reset();
  fn(span.data(), span.size(), mv.count.data(), mv.sum.data(), mv.min.data(),
     mv.max.data(), &acc);
  return simd::Reduce(acc);
}

// Naive sequential reference (the pre-kernel fold): value-level ground
// truth the lane-strided result must match within reordering error.
simd::FoldResult NaiveFold(const std::vector<uint32_t>& span,
                           const MeasureVector& mv) {
  simd::FoldResult r;
  r.min = kInf;
  r.max = -kInf;
  for (uint32_t f : span) {
    if (mv.count[f] == 0) continue;
    r.count += mv.count[f];
    r.sum += mv.sum[f];
    r.min = std::min(r.min, mv.min[f]);
    r.max = std::max(r.max, mv.max[f]);
  }
  return r;
}

void CheckSpan(const std::vector<uint32_t>& span, const MeasureVector& mv) {
  const simd::FoldKernel dispatched =
      simd::ResolveFoldKernel(simd::SimdMode::kAuto);
  const simd::FoldResult scalar =
      RunKernel(&simd::FoldMeasureScalar, span, mv);
  const simd::FoldResult vec = RunKernel(dispatched.fn, span, mv);
  ExpectBitEqual(scalar, vec);

  const simd::FoldResult naive = NaiveFold(span, mv);
  EXPECT_DOUBLE_EQ(scalar.count, naive.count);  // integer sums: exact
  EXPECT_EQ(Bits(scalar.min), Bits(naive.min));
  EXPECT_EQ(Bits(scalar.max), Bits(naive.max));
  // Sum is the one field the lane reorder may shift by ULPs.
  const double tol = 1e-9 * (std::abs(naive.sum) + 1.0);
  EXPECT_NEAR(scalar.sum, naive.sum, tol);
}

// The block-boundary sizes of the issue: below/at/above one SIMD block,
// at the array->bitset container threshold, and a full 2^16 chunk.
const size_t kSizes[] = {1, 7, 8, 4095, 4096, 65536};

// --- spans drawn through every bitmap representation ----------------------

TEST(SimdFoldTest, InlineSmallSets) {
  // <= kInlineCapacity values: the bitmap never spills to containers.
  MeasureVector mv = MakeMeasures(1 << 16, 0xA11CE);
  for (size_t size : {size_t{1}, size_t{7}, size_t{8}}) {
    SCOPED_TRACE("size = " + std::to_string(size));
    RoaringBitmap bm;
    for (size_t i = 0; i < size; ++i) {
      bm.AppendOrdered(static_cast<uint32_t>(i * 797 + 13));
    }
    std::vector<uint32_t> span;
    bm.DecodeInto(&span);
    ASSERT_EQ(span.size(), size);
    CheckSpan(span, mv);
  }
}

TEST(SimdFoldTest, ArrayContainers) {
  // Stride-3 values stay under 4096 per chunk: array containers.
  MeasureVector mv = MakeMeasures(1 << 18, 0xB0B);
  for (size_t size : kSizes) {
    SCOPED_TRACE("size = " + std::to_string(size));
    RoaringBitmap bm;
    for (size_t i = 0; i < size; ++i) {
      bm.AppendOrdered(static_cast<uint32_t>(i * 3));
    }
    std::vector<uint32_t> span;
    bm.DecodeInto(&span);
    ASSERT_EQ(span.size(), size);
    CheckSpan(span, mv);
  }
}

TEST(SimdFoldTest, RunContainers) {
  // Contiguous ranges: run containers, and the kernels' dense fast path.
  MeasureVector mv = MakeMeasures(1 << 18, 0xC0FFEE);
  for (size_t size : kSizes) {
    SCOPED_TRACE("size = " + std::to_string(size));
    RoaringBitmap bm;
    for (size_t i = 0; i < size; ++i) {
      bm.AppendOrdered(static_cast<uint32_t>(i + 100));
    }
    std::vector<uint32_t> span;
    bm.DecodeInto(&span);
    ASSERT_EQ(span.size(), size);
    CheckSpan(span, mv);
  }
}

TEST(SimdFoldTest, BitsetContainers) {
  // > 4096 scattered odd values per chunk: bitset containers. The decoded
  // span alternates short runs and gaps, exercising both kernel paths.
  MeasureVector mv = MakeMeasures(1 << 18, 0xDEAD);
  for (size_t size : {size_t{4097}, size_t{9000}, size_t{32768}}) {
    SCOPED_TRACE("size = " + std::to_string(size));
    RoaringBitmap bm;
    Rng rng(size);
    uint32_t v = 1;
    for (size_t i = 0; i < size; ++i) {
      bm.AppendOrdered(v);
      v += 1 + static_cast<uint32_t>(rng.Uniform(3));  // gaps of 0..2
    }
    std::vector<uint32_t> span;
    bm.DecodeInto(&span);
    ASSERT_EQ(span.size(), size);
    CheckSpan(span, mv);
  }
}

TEST(SimdFoldTest, AllFactsMissingMeasure) {
  MeasureVector mv;
  mv.Init(1 << 12);  // every count == 0
  std::vector<uint32_t> span;
  for (uint32_t f = 0; f < 1000; ++f) span.push_back(f);
  const simd::FoldKernel dispatched =
      simd::ResolveFoldKernel(simd::SimdMode::kAuto);
  const simd::FoldResult scalar =
      RunKernel(&simd::FoldMeasureScalar, span, mv);
  const simd::FoldResult vec = RunKernel(dispatched.fn, span, mv);
  ExpectBitEqual(scalar, vec);
  // The fold identity, exactly: +0.0 count/sum, +/-inf min/max.
  EXPECT_EQ(Bits(scalar.count), Bits(+0.0));
  EXPECT_EQ(Bits(scalar.sum), Bits(+0.0));
  EXPECT_EQ(scalar.min, kInf);
  EXPECT_EQ(scalar.max, -kInf);
}

TEST(SimdFoldTest, SingleFact) {
  MeasureVector mv = MakeMeasures(64, 0x5EED);
  for (uint32_t f = 0; f < 64; ++f) {
    std::vector<uint32_t> span{f};
    CheckSpan(span, mv);
  }
}

// --- contracts of the fixed accumulation order ----------------------------

TEST(SimdFoldTest, ReduceOrderIsSequentialOverLanes) {
  simd::FoldAcc acc;
  acc.Reset();
  // Doubles chosen so the sum depends on association order.
  const double v[4] = {1e16, 1.0, -1e16, 1.0};
  for (size_t l = 0; l < simd::kFoldLanes; ++l) {
    acc.count[l] = static_cast<double>(l);
    acc.sum[l] = v[l];
    acc.min[l] = static_cast<double>(l);
    acc.max[l] = static_cast<double>(l);
  }
  const simd::FoldResult r = simd::Reduce(acc);
  EXPECT_EQ(Bits(r.sum), Bits(((v[0] + v[1]) + v[2]) + v[3]));
  EXPECT_EQ(r.count, 0.0 + 1.0 + 2.0 + 3.0);
  EXPECT_EQ(r.min, 0.0);
  EXPECT_EQ(r.max, 3.0);
}

TEST(SimdFoldTest, LaneStridingIsGlobalRankMod4) {
  // Fold a 6-element span by hand in lane-strided order and compare bits:
  // element i lands in lane i % 4, reduction is lane 0..3 sequential.
  MeasureVector mv = MakeMeasures(64, 0xFEED);
  for (uint32_t f = 0; f < 64; ++f) mv.count[f] = 1;  // all present
  std::vector<uint32_t> span{2, 3, 11, 17, 23, 42};
  double lane_sum[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < span.size(); ++i) {
    lane_sum[i % 4] += mv.sum[span[i]];
  }
  const double expect = ((lane_sum[0] + lane_sum[1]) + lane_sum[2]) + lane_sum[3];
  const simd::FoldResult r = RunKernel(&simd::FoldMeasureScalar, span, mv);
  EXPECT_EQ(Bits(r.sum), Bits(expect));
}

TEST(SimdFoldTest, ResultIndependentOfBitmapRepresentation) {
  // The same value set decoded from an inline set and from a spilled
  // container must fold to the same bits (the reason the fold runs on the
  // full-cell DecodeInto span, not per internal block).
  MeasureVector mv = MakeMeasures(1 << 17, 0x1DEA);
  RoaringBitmap inline_bm;
  RoaringBitmap spilled;
  std::vector<uint32_t> values = {5, 70000, 70001, 90000, 90001, 90002};
  for (uint32_t v : values) inline_bm.AppendOrdered(v);  // stays inline
  for (uint32_t v : values) spilled.Add(v);
  for (uint32_t v = 200000; v < 200100; ++v) spilled.Add(v);  // force spill
  // (spilled now has extra values; intersect back to the original set)
  spilled.IntersectWith(inline_bm);
  std::vector<uint32_t> a, b;
  inline_bm.DecodeInto(&a);
  spilled.DecodeInto(&b);
  ASSERT_EQ(a, b);
  ExpectBitEqual(RunKernel(&simd::FoldMeasureScalar, a, mv),
                 RunKernel(&simd::FoldMeasureScalar, b, mv));
}

// --- dispatch plumbing ----------------------------------------------------

TEST(SimdDispatchTest, ScalarModeAlwaysResolvesScalar) {
  const simd::FoldKernel k = simd::ResolveFoldKernel(simd::SimdMode::kScalar);
  EXPECT_EQ(k.kind, simd::FoldKernelKind::kScalar);
  EXPECT_EQ(k.fn, &simd::FoldMeasureScalar);
}

TEST(SimdDispatchTest, AutoResolvesSomethingRunnable) {
  const simd::FoldKernel k = simd::ResolveFoldKernel(simd::SimdMode::kAuto);
  ASSERT_NE(k.fn, nullptr);
  // Whatever it picked must run (this covers the AVX2 kernel on x86 CI).
  MeasureVector mv = MakeMeasures(1024, 0x7E57);
  std::vector<uint32_t> span;
  for (uint32_t f = 0; f < 1024; f += 2) span.push_back(f);
  RunKernel(k.fn, span, mv);
  EXPECT_STRNE(simd::FoldKernelKindName(k.kind), "unknown");
}

TEST(SimdDispatchTest, ParseSimdMode) {
  simd::SimdMode m;
  EXPECT_TRUE(simd::ParseSimdMode("auto", &m));
  EXPECT_EQ(m, simd::SimdMode::kAuto);
  EXPECT_TRUE(simd::ParseSimdMode("scalar", &m));
  EXPECT_EQ(m, simd::SimdMode::kScalar);
  EXPECT_FALSE(simd::ParseSimdMode("avx2", &m));  // kinds are not modes
  EXPECT_FALSE(simd::ParseSimdMode("", &m));
}

}  // namespace
}  // namespace spade
