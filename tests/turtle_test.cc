#include "src/rdf/turtle.h"

#include <gtest/gtest.h>

namespace spade {
namespace {

TermId Iri(Graph& g, const std::string& iri) {
  auto id = g.dict().Lookup(Term::Iri(iri));
  return id.value_or(kInvalidTerm);
}

TEST(TurtleTest, BasicTriplesWithPrefixes) {
  Graph g;
  std::string doc = R"(
@prefix ex: <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
ex:alice foaf:knows ex:bob .
ex:alice foaf:name "Alice" .
)";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  EXPECT_EQ(g.NumTriples(), 2u);
  TermId alice = Iri(g, "http://example.org/alice");
  TermId knows = Iri(g, "http://xmlns.com/foaf/0.1/knows");
  TermId bob = Iri(g, "http://example.org/bob");
  EXPECT_TRUE(g.Contains(alice, knows, bob));
}

TEST(TurtleTest, SparqlStyleDirectives) {
  Graph g;
  std::string doc =
      "PREFIX ex: <http://x/>\n"
      "ex:a ex:p ex:b .\n";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(TurtleTest, BaseResolution) {
  Graph g;
  std::string doc =
      "@base <http://data.org/> .\n"
      "<alice> <knows> <bob> .\n";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  EXPECT_NE(Iri(g, "http://data.org/alice"), kInvalidTerm);
  EXPECT_NE(Iri(g, "http://data.org/knows"), kInvalidTerm);
}

TEST(TurtleTest, PredicateAndObjectLists) {
  Graph g;
  std::string doc = R"(
@prefix ex: <http://x/> .
ex:ghosn ex:nationality ex:brazil, ex:france, ex:lebanon ;
         ex:age 66 ;
         a ex:CEO .
)";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  EXPECT_EQ(g.NumTriples(), 5u);
  TermId ghosn = Iri(g, "http://x/ghosn");
  EXPECT_EQ(g.Objects(ghosn, Iri(g, "http://x/nationality")).size(), 3u);
  EXPECT_EQ(g.Objects(ghosn, g.rdf_type()).size(), 1u);
}

TEST(TurtleTest, TypedAndTaggedLiterals) {
  Graph g;
  std::string doc = R"(
@prefix ex: <http://x/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:int "5"^^xsd:integer .
ex:a ex:tagged "bonjour"@fr .
ex:a ex:bare 42 .
ex:a ex:dec 3.5 .
ex:a ex:flag true .
)";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  EXPECT_EQ(g.NumTriples(), 5u);
  // Bare 42 carries the xsd:integer datatype.
  TermId a = Iri(g, "http://x/a");
  std::vector<TermId> bare = g.Objects(a, Iri(g, "http://x/bare"));
  ASSERT_EQ(bare.size(), 1u);
  const Term& t = g.dict().Get(bare[0]);
  EXPECT_EQ(t.lexical, "42");
  EXPECT_EQ(g.dict().Get(t.datatype).lexical, spade::vocab::kXsdInteger);
}

TEST(TurtleTest, LongStringLiterals) {
  Graph g;
  std::string doc =
      "@prefix ex: <http://x/> .\n"
      "ex:a ex:desc \"\"\"line one\nline \"two\"\"\"\" .\n";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  bool found = false;
  g.Match(kInvalidTerm, kInvalidTerm, kInvalidTerm, [&](const Triple& t) {
    const Term& o = g.dict().Get(t.o);
    if (o.kind == TermKind::kLiteral &&
        o.lexical == "line one\nline \"two\"") {
      found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST(TurtleTest, EscapesAndUnicode) {
  Graph g;
  std::string doc =
      "@prefix ex: <http://x/> .\n"
      "ex:a ex:v \"tab\\there \\u00e9\" .\n";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  bool found = false;
  g.Match(kInvalidTerm, kInvalidTerm, kInvalidTerm, [&](const Triple& t) {
    if (g.dict().Get(t.o).lexical == "tab\there \xc3\xa9") found = true;
  });
  EXPECT_TRUE(found);
}

TEST(TurtleTest, BlankNodes) {
  Graph g;
  std::string doc = R"(
@prefix ex: <http://x/> .
_:b1 ex:p ex:o .
ex:s ex:q _:b1 .
)";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  // The same label resolves to the same node.
  TermId s = Iri(g, "http://x/s");
  std::vector<TermId> q = g.Objects(s, Iri(g, "http://x/q"));
  ASSERT_EQ(q.size(), 1u);
  EXPECT_FALSE(g.Objects(q[0], Iri(g, "http://x/p")).empty());
}

TEST(TurtleTest, AnonymousBlankNodePropertyList) {
  Graph g;
  std::string doc = R"(
@prefix ex: <http://x/> .
ex:ceo ex:company [ ex:area "Diamond" ; ex:name "Sodian" ] .
)";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  EXPECT_EQ(g.NumTriples(), 3u);
  TermId ceo = Iri(g, "http://x/ceo");
  std::vector<TermId> companies = g.Objects(ceo, Iri(g, "http://x/company"));
  ASSERT_EQ(companies.size(), 1u);
  EXPECT_EQ(g.Objects(companies[0], Iri(g, "http://x/area")).size(), 1u);
}

TEST(TurtleTest, Collections) {
  Graph g;
  std::string doc = R"(
@prefix ex: <http://x/> .
ex:s ex:list ( ex:a ex:b ex:c ) .
ex:t ex:empty ( ) .
)";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  Dictionary& d = g.dict();
  TermId first = *d.Lookup(Term::Iri(vocab::kRdfFirst));
  TermId rest = *d.Lookup(Term::Iri(vocab::kRdfRest));
  TermId nil = *d.Lookup(Term::Iri(vocab::kRdfNil));
  // Walk the chain s -> (a b c).
  TermId s = Iri(g, "http://x/s");
  std::vector<TermId> heads = g.Objects(s, Iri(g, "http://x/list"));
  ASSERT_EQ(heads.size(), 1u);
  TermId cell = heads[0];
  std::vector<std::string> items;
  while (cell != nil) {
    std::vector<TermId> firsts = g.Objects(cell, first);
    ASSERT_EQ(firsts.size(), 1u);
    items.push_back(d.Get(firsts[0]).lexical);
    std::vector<TermId> rests = g.Objects(cell, rest);
    ASSERT_EQ(rests.size(), 1u);
    cell = rests[0];
  }
  EXPECT_EQ(items, (std::vector<std::string>{"http://x/a", "http://x/b",
                                             "http://x/c"}));
  // Empty collection maps straight to rdf:nil.
  TermId t = Iri(g, "http://x/t");
  EXPECT_EQ(g.Objects(t, Iri(g, "http://x/empty")),
            (std::vector<TermId>{nil}));
}

TEST(TurtleTest, CommentsEverywhere) {
  Graph g;
  std::string doc =
      "# leading comment\n"
      "@prefix ex: <http://x/> . # trailing\n"
      "ex:a # comment mid-statement\n"
      "  ex:p ex:b . # done\n";
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(TurtleTest, ErrorsNameTheLine) {
  Graph g;
  Status st = TurtleReader::ParseString(
      "@prefix ex: <http://x/> .\nex:a ex:p\n", &g);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kParseError);
}

TEST(TurtleTest, RejectsBadDocuments) {
  auto bad = [](const std::string& doc) {
    Graph g;
    EXPECT_FALSE(TurtleReader::ParseString(doc, &g).ok()) << doc;
  };
  bad("@prefix ex <http://x/> .\n");            // missing ':'
  bad("ex:a ex:p ex:b .\n");                    // unknown prefix
  bad("@prefix ex: <http://x/> .\nex:a ex:p \"unterminated .\n");
  bad("@prefix ex: <http://x/> .\nex:a ex:p ex:b\n");  // missing '.'
  bad("@prefix ex: <http://x/> .\n\"lit\" ex:p ex:b .\n");
  bad("@prefix ex: <http://x/> .\nex:a ex:p [ ex:q ex:r .\n");  // unclosed [
}

TEST(TurtleTest, EquivalentToManuallyBuiltGraph) {
  // The same data written in Turtle and built through the API agree.
  Graph g1, g2;
  ASSERT_TRUE(TurtleReader::ParseString(
                  "@prefix ex: <http://x/> .\n"
                  "ex:a ex:p ex:b ; ex:q \"v\" .\n",
                  &g1)
                  .ok());
  Dictionary& d = g2.dict();
  g2.Add(d.InternIri("http://x/a"), d.InternIri("http://x/p"),
         d.InternIri("http://x/b"));
  g2.Add(d.InternIri("http://x/a"), d.InternIri("http://x/q"),
         d.InternString("v"));
  g2.Freeze();
  EXPECT_EQ(g1.NumTriples(), g2.NumTriples());
  EXPECT_TRUE(g1.Contains(*g1.dict().Lookup(Term::Iri("http://x/a")),
                          *g1.dict().Lookup(Term::Iri("http://x/q")),
                          *g1.dict().Lookup(Term::Literal("v"))));
}

}  // namespace
}  // namespace spade
