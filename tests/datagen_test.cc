#include "src/datagen/realworld.h"

#include <gtest/gtest.h>

#include "src/datagen/synthetic.h"
#include "src/stats/attr_stats.h"
#include "src/store/attribute_store.h"

namespace spade {
namespace {

TEST(SyntheticTest, Deterministic) {
  SyntheticOptions opts;
  opts.num_facts = 500;
  auto g1 = GenerateSynthetic(opts);
  auto g2 = GenerateSynthetic(opts);
  EXPECT_EQ(g1->NumTriples(), g2->NumTriples());
  opts.seed = 43;
  auto g3 = GenerateSynthetic(opts);
  EXPECT_NE(g1->NumTriples(), 0u);
  // Different seed: almost surely different triple multiset size or content.
  // (sizes can coincide; compare a value distribution instead)
  EXPECT_GT(g3->NumTriples(), 0u);
}

TEST(SyntheticTest, ShapeMatchesOptions) {
  SyntheticOptions opts;
  opts.num_facts = 400;
  opts.dim_cardinality = {10, 5};
  opts.num_measures = 2;
  opts.sparsity = 0.0;
  auto g = GenerateSynthetic(opts);
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  EXPECT_EQ(db.num_attributes(), 4u);  // 2 dims + 2 measures
  // One fact type with all facts.
  TermId type = g->dict().InternIri(synth::kFactType);
  EXPECT_EQ(g->NodesOfType(type).size(), 400u);
  // Dimension 0 takes at most 10 distinct values.
  AttrStats st = ComputeAttrStats(db, *db.FindAttribute("dim0"));
  EXPECT_LE(st.num_distinct_values, 10u);
  EXPECT_EQ(st.num_multi_subjects, 0u);  // single-valued by default
}

TEST(SyntheticTest, SparsityShrinksValueDomain) {
  SyntheticOptions dense;
  dense.num_facts = 2000;
  dense.dim_cardinality = {100};
  dense.sparsity = 0.0;
  SyntheticOptions sparse = dense;
  sparse.sparsity = 0.9;
  auto gd = GenerateSynthetic(dense);
  auto gs = GenerateSynthetic(sparse);
  AttributeStore dbd(gd.get()), dbs(gs.get());
  dbd.BuildDirectAttributes();
  dbs.BuildDirectAttributes();
  AttrStats std_ = ComputeAttrStats(dbd, *dbd.FindAttribute("dim0"));
  AttrStats sts = ComputeAttrStats(dbs, *dbs.FindAttribute("dim0"));
  EXPECT_GT(std_.num_distinct_values, 2 * sts.num_distinct_values);
}

TEST(SyntheticTest, MultiValuedDimsWhenRequested) {
  SyntheticOptions opts;
  opts.num_facts = 500;
  opts.dim_cardinality = {10, 10};
  opts.multi_valued_dims = {0};
  opts.multi_value_prob = 0.5;
  auto g = GenerateSynthetic(opts);
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  EXPECT_GT(ComputeAttrStats(db, *db.FindAttribute("dim0")).num_multi_subjects,
            50u);
  EXPECT_EQ(ComputeAttrStats(db, *db.FindAttribute("dim1")).num_multi_subjects,
            0u);
}

TEST(SyntheticTest, MissingProbDropsValues) {
  SyntheticOptions opts;
  opts.num_facts = 1000;
  opts.dim_cardinality = {10};
  opts.missing_prob = 0.5;
  auto g = GenerateSynthetic(opts);
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  AttrStats st = ComputeAttrStats(db, *db.FindAttribute("dim0"));
  EXPECT_NEAR(static_cast<double>(st.num_subjects), 500.0, 60.0);
}

TEST(RealWorldTest, AllDatasetsGenerateDeterministically) {
  for (RealDataset ds : AllRealDatasets()) {
    auto g1 = GenerateRealDataset(ds, 42, 0.1);
    auto g2 = GenerateRealDataset(ds, 42, 0.1);
    ASSERT_NE(g1, nullptr);
    EXPECT_EQ(g1->NumTriples(), g2->NumTriples()) << RealDatasetName(ds);
    EXPECT_GT(g1->NumTriples(), 100u) << RealDatasetName(ds);
  }
}

TEST(RealWorldTest, AirlineIsFlatSingleType) {
  auto g = GenerateAirline(42, 0.25);
  // One type, no multi-valued attributes, no IRI-to-IRI links => Table 2's
  // "no derivations apply" row.
  EXPECT_EQ(g->AllTypes().size(), 1u);
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  for (AttrId a = 0; a < db.num_attributes(); ++a) {
    AttrStats st = ComputeAttrStats(db, a);
    EXPECT_EQ(st.num_multi_subjects, 0u) << db.attribute(a).name;
    EXPECT_NE(st.kind, ValueKind::kReference) << db.attribute(a).name;
  }
}

TEST(RealWorldTest, CeosHasMultiValuedAndLinks) {
  auto g = GenerateCeos(42, 0.25);
  EXPECT_GE(g->AllTypes().size(), 5u);  // heterogeneous
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  AttrStats nat = ComputeAttrStats(db, *db.FindAttribute("nationality"));
  EXPECT_GT(nat.num_multi_subjects, 0u);
  EXPECT_EQ(nat.kind, ValueKind::kReference);
  AttrStats nw = ComputeAttrStats(db, *db.FindAttribute("netWorth"));
  EXPECT_TRUE(nw.numeric());
  // company -> area continues: path derivation material.
  AttrStats company = ComputeAttrStats(db, *db.FindAttribute("company"));
  EXPECT_EQ(company.kind, ValueKind::kReference);
}

TEST(RealWorldTest, DblpSingleFactTypeWithText) {
  auto g = GenerateDblp(42, 0.2);
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  AttrStats title = ComputeAttrStats(db, *db.FindAttribute("title"));
  EXPECT_EQ(title.kind, ValueKind::kText);
  EXPECT_GT(title.avg_text_length, 20.0);
  AttrStats author = ComputeAttrStats(db, *db.FindAttribute("author"));
  EXPECT_GT(author.num_multi_subjects, 0u);
}

TEST(RealWorldTest, FoodistaMultilingual) {
  auto g = GenerateFoodista(42, 0.3);
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  AttrStats desc = ComputeAttrStats(db, *db.FindAttribute("description"));
  EXPECT_EQ(desc.kind, ValueKind::kText);
  AttrStats ing = ComputeAttrStats(db, *db.FindAttribute("ingredient"));
  EXPECT_GT(ing.num_multi_subjects, 100u);
}

TEST(RealWorldTest, NasaLaunchSiteSkew) {
  auto g = GenerateNasa(42, 0.5);
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  // Launches link spacecraft; spacecraft link agencies: 2-hop structure.
  EXPECT_TRUE(db.FindAttribute("spacecraft").has_value());
  EXPECT_TRUE(db.FindAttribute("agency").has_value());
  AttrStats mass = ComputeAttrStats(db, *db.FindAttribute("mass"));
  EXPECT_TRUE(mass.numeric());
  EXPECT_GT(mass.max_value, mass.min_value);
}

TEST(RealWorldTest, NobelSkewedAgeByCategory) {
  auto g = GenerateNobel(42, 0.3);
  AttributeStore db(g.get());
  db.BuildDirectAttributes();
  AttrStats aff = ComputeAttrStats(db, *db.FindAttribute("affiliation"));
  EXPECT_GT(aff.num_multi_subjects, 0u);
  AttrStats age = ComputeAttrStats(db, *db.FindAttribute("ageAtAward"));
  EXPECT_TRUE(age.numeric());
}

TEST(RealWorldTest, ScaleParameterScalesSize) {
  auto small = GenerateCeos(42, 0.1);
  auto large = GenerateCeos(42, 0.4);
  EXPECT_GT(large->NumTriples(), 2 * small->NumTriples());
}

}  // namespace
}  // namespace spade
