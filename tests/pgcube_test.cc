#include "src/core/pgcube.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/reference.h"
#include "tests/test_helpers.h"

namespace spade {
namespace {

using testing_helpers::DimSpec;
using testing_helpers::MakeRandomAnalysis;
using testing_helpers::MeasureShape;
using testing_helpers::RandomAnalysis;
using testing_helpers::SameResult;

std::map<AggregateKey, AggregateResult> ByKey(
    std::vector<AggregateResult> results) {
  std::map<AggregateKey, AggregateResult> out;
  for (auto& r : results) out.emplace(r.key, std::move(r));
  return out;
}

TEST(PgCubeTest, BothVariantsCorrectOnSingleValuedData) {
  // The Experiment 5/6 setting: every fact has one value per dimension, so
  // PGCube is correct and usable as a scalability baseline.
  RandomAnalysis ra =
      MakeRandomAnalysis(31, 300, {{4, 0, 0}, {3, 0, 0}}, {{0, 0}});
  for (PgCubeVariant variant :
       {PgCubeVariant::kStar, PgCubeVariant::kDistinct}) {
    auto got = ByKey(EvaluateLatticePgCube(*ra.db, 0, *ra.cfs, ra.spec,
                                           variant, nullptr, nullptr));
    for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
      EXPECT_TRUE(SameResult(ref, got.at(ref.key)))
          << "variant " << static_cast<int>(variant);
    }
  }
}

TEST(PgCubeTest, StarCountsJoinedRows) {
  // Example 3 via PGCube*: grouping by gender counts Ghosn's joined rows.
  RandomAnalysis ra = MakeRandomAnalysis(32, 200, {{4, 0.7, 0}}, {});
  auto star = ByKey(EvaluateLatticePgCube(*ra.db, 0, *ra.cfs, ra.spec,
                                          PgCubeVariant::kStar, nullptr,
                                          nullptr));
  auto reference = EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec);
  // The `all` node (empty dims) groups everything: count(*) over joined rows
  // exceeds the number of facts exactly when some fact is multi-valued.
  for (const auto& ref : reference) {
    if (!ref.key.dims.empty() || !ref.key.measure.is_count_star()) continue;
    const AggregateResult& pg = star.at(ref.key);
    ASSERT_EQ(pg.groups.size(), 1u);
    EXPECT_GT(pg.groups[0].value, ref.groups[0].value);
  }
}

TEST(PgCubeTest, DistinctFixesFactCountsButNotSums) {
  RandomAnalysis ra =
      MakeRandomAnalysis(33, 300, {{4, 0.6, 0.1}, {3, 0.5, 0.1}}, {{0, 0.2}});
  auto got = ByKey(EvaluateLatticePgCube(*ra.db, 0, *ra.cfs, ra.spec,
                                         PgCubeVariant::kDistinct, nullptr,
                                         nullptr));
  size_t wrong_sums = 0;
  for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
    const AggregateResult& pg = got.at(ref.key);
    if (ref.key.measure.is_count_star()) {
      // count(distinct fact) — always correct.
      EXPECT_TRUE(SameResult(ref, pg));
    } else if (ref.key.measure.func == sparql::AggFunc::kSum) {
      if (!SameResult(ref, pg)) ++wrong_sums;
    }
  }
  EXPECT_GT(wrong_sums, 0u)
      << "sum(M) must still suffer join multiplication (Variation 1)";
}

TEST(PgCubeTest, MinMaxAlwaysCorrect) {
  RandomAnalysis ra =
      MakeRandomAnalysis(34, 250, {{4, 0.6, 0.1}, {3, 0.4, 0.2}}, {{0.3, 0.2}});
  for (PgCubeVariant variant :
       {PgCubeVariant::kStar, PgCubeVariant::kDistinct}) {
    auto got = ByKey(EvaluateLatticePgCube(*ra.db, 0, *ra.cfs, ra.spec,
                                           variant, nullptr, nullptr));
    for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
      if (ref.key.measure.func != sparql::AggFunc::kMin &&
          ref.key.measure.func != sparql::AggFunc::kMax) {
        continue;
      }
      EXPECT_TRUE(SameResult(ref, got.at(ref.key)));
    }
  }
}

TEST(PgCubeTest, ErrorsAreOverestimates) {
  // The Experiment 3 premise: p_j >= m_j for count and sum.
  RandomAnalysis ra =
      MakeRandomAnalysis(35, 300, {{4, 0.7, 0}, {3, 0.5, 0}}, {{0.2, 0.1}});
  auto got = ByKey(EvaluateLatticePgCube(*ra.db, 0, *ra.cfs, ra.spec,
                                         PgCubeVariant::kDistinct, nullptr,
                                         nullptr));
  for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
    if (ref.key.measure.is_count_star()) continue;
    if (ref.key.measure.func != sparql::AggFunc::kCount &&
        ref.key.measure.func != sparql::AggFunc::kSum) {
      continue;
    }
    const AggregateResult& pg = got.at(ref.key);
    ASSERT_EQ(pg.groups.size(), ref.groups.size());
    for (size_t i = 0; i < ref.groups.size(); ++i) {
      EXPECT_GE(pg.groups[i].value, ref.groups[i].value - 1e-9);
    }
  }
}

TEST(PgCubeTest, RootNodeAlwaysCorrect) {
  // Grouping by all dimensions: each fact contributes once per combination
  // in both PGCube and the reference.
  RandomAnalysis ra =
      MakeRandomAnalysis(36, 300, {{4, 0.6, 0.2}, {3, 0.5, 0.1}}, {{0.4, 0.2}});
  auto got = ByKey(EvaluateLatticePgCube(*ra.db, 0, *ra.cfs, ra.spec,
                                         PgCubeVariant::kStar, nullptr,
                                         nullptr));
  for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
    if (ref.key.dims.size() != ra.spec.dims.size()) continue;
    EXPECT_TRUE(SameResult(ref, got.at(ref.key)));
  }
}

TEST(PgCubeTest, StatsAndArmIntegration) {
  RandomAnalysis ra = MakeRandomAnalysis(37, 100, {{3, 0.3, 0}}, {{0, 0}});
  Arm arm;
  PgCubeStats stats;
  EvaluateLatticePgCube(*ra.db, 0, *ra.cfs, ra.spec, PgCubeVariant::kStar,
                        &arm, &stats);
  EXPECT_GT(stats.num_joined_rows, 100u);  // multi-valued facts expand
  EXPECT_EQ(stats.num_mdas_evaluated, 2 * ra.spec.measures.size());
  EXPECT_EQ(arm.num_aggregates(), 2 * ra.spec.measures.size());
  EXPECT_GT(stats.num_groups_emitted, 0u);
}

TEST(PgCubeTest, FactsWithoutAnyDimensionExcluded) {
  Graph g;
  Dictionary& d = g.dict();
  TermId dim = d.InternIri("dim"), m = d.InternIri("m");
  g.Add(d.InternIri("a"), dim, d.InternString("x"));
  g.Add(d.InternIri("a"), m, d.InternDouble(2));
  g.Add(d.InternIri("b"), m, d.InternDouble(50));
  g.Freeze();
  AttributeStore db(&g);
  db.BuildDirectAttributes();
  CfsIndex cfs({d.InternIri("a"), d.InternIri("b")});
  LatticeSpec spec;
  spec.dims = {*db.FindAttribute("dim")};
  spec.measures = {MeasureSpec{*db.FindAttribute("m"), sparql::AggFunc::kSum}};
  auto got = ByKey(EvaluateLatticePgCube(db, 0, cfs, spec,
                                         PgCubeVariant::kStar, nullptr,
                                         nullptr));
  AggregateKey key;
  key.cfs_id = 0;
  key.dims = spec.dims;
  key.measure = spec.measures[0];
  ASSERT_EQ(got.at(key).groups.size(), 1u);
  EXPECT_DOUBLE_EQ(got.at(key).groups[0].value, 2.0);
}

}  // namespace
}  // namespace spade
