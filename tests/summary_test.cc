#include "src/summary/summary.h"

#include <gtest/gtest.h>

#include "src/rdf/ntriples.h"

namespace spade {
namespace {

TEST(SummaryTest, GroupsNodesSharingOutgoingProperties) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p_name = d.InternIri("name");
  TermId p_age = d.InternIri("age");
  TermId a = d.InternIri("a"), b = d.InternIri("b"), c = d.InternIri("c");
  g.Add(a, p_name, d.InternString("A"));
  g.Add(b, p_name, d.InternString("B"));
  g.Add(b, p_age, d.InternInteger(4));
  g.Add(c, p_age, d.InternInteger(5));

  StructuralSummary::Options opts;
  opts.use_incoming = false;
  StructuralSummary s = StructuralSummary::Build(g, opts);
  // name and age co-occur on b => one source clique => one class {a, b, c}.
  ASSERT_EQ(s.num_classes(), 1u);
  EXPECT_EQ(s.classes()[0].size(), 3u);
  EXPECT_EQ(s.ClassOf(a), s.ClassOf(c));
}

TEST(SummaryTest, SeparatesDisjointPropertyCliques) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p1 = d.InternIri("p1");
  TermId p2 = d.InternIri("p2");
  TermId a = d.InternIri("a"), b = d.InternIri("b");
  g.Add(a, p1, d.InternString("x"));
  g.Add(b, p2, d.InternString("y"));

  StructuralSummary::Options opts;
  opts.use_incoming = false;
  StructuralSummary s = StructuralSummary::Build(g, opts);
  ASSERT_EQ(s.num_classes(), 2u);
  EXPECT_NE(s.ClassOf(a), s.ClassOf(b));
}

TEST(SummaryTest, IncomingPropertiesMergeTargets) {
  Graph g;
  Dictionary& d = g.dict();
  TermId knows = d.InternIri("knows");
  TermId a = d.InternIri("a"), b = d.InternIri("b");
  TermId x = d.InternIri("x"), y = d.InternIri("y");
  g.Add(a, knows, x);
  g.Add(b, knows, y);
  StructuralSummary s = StructuralSummary::Build(g);
  // a,b share the outgoing `knows` clique; x,y share the incoming one; and
  // because a knows x, all four collapse under full weak equivalence? No:
  // sources unite via out-anchor, targets via in-anchor; the two anchors are
  // distinct, so {a,b} and {x,y} stay separate.
  EXPECT_EQ(s.ClassOf(a), s.ClassOf(b));
  EXPECT_EQ(s.ClassOf(x), s.ClassOf(y));
  EXPECT_NE(s.ClassOf(a), s.ClassOf(x));
}

TEST(SummaryTest, TypeTriplesDoNotDefineStructure) {
  Graph g;
  Dictionary& d = g.dict();
  TermId t = d.InternIri("T");
  TermId p1 = d.InternIri("p1"), p2 = d.InternIri("p2");
  TermId a = d.InternIri("a"), b = d.InternIri("b");
  g.Add(a, g.rdf_type(), t);
  g.Add(b, g.rdf_type(), t);
  g.Add(a, p1, d.InternString("x"));
  g.Add(b, p2, d.InternString("y"));
  StructuralSummary::Options opts;
  opts.use_incoming = false;
  StructuralSummary s = StructuralSummary::Build(g, opts);
  // Sharing only rdf:type must not merge a and b.
  EXPECT_NE(s.ClassOf(a), s.ClassOf(b));
}

TEST(SummaryTest, ClassesSortedBySizeAndCarryProperties) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p1 = d.InternIri("p1"), p2 = d.InternIri("p2");
  for (int i = 0; i < 5; ++i) {
    g.Add(d.InternIri("big" + std::to_string(i)), p1, d.InternString("v"));
  }
  g.Add(d.InternIri("small"), p2, d.InternString("w"));
  StructuralSummary::Options opts;
  opts.use_incoming = false;
  StructuralSummary s = StructuralSummary::Build(g, opts);
  ASSERT_EQ(s.num_classes(), 2u);
  EXPECT_GE(s.classes()[0].size(), s.classes()[1].size());
  EXPECT_EQ(s.ClassProperties(0), (std::vector<TermId>{p1}));
}

TEST(SummaryTest, UnknownNodeHasNoClass) {
  Graph g;
  Dictionary& d = g.dict();
  g.Add(d.InternIri("a"), d.InternIri("p"), d.InternString("x"));
  StructuralSummary s = StructuralSummary::Build(g);
  EXPECT_EQ(s.ClassOf(d.InternIri("nowhere")), -1);
}

TEST(SummaryTest, CeosFigureOneShape) {
  // In the Figure 1 graph, the two CEOs end up weakly equivalent (they share
  // many outgoing properties), and companies form their own class.
  Graph g;
  Dictionary& d = g.dict();
  TermId n1 = d.InternIri("n1"), n2 = d.InternIri("n2");
  TermId sodian = d.InternIri("sodian"), renault = d.InternIri("renault");
  TermId p_nat = d.InternIri("nationality");
  TermId p_company = d.InternIri("company");
  TermId p_area = d.InternIri("area");
  TermId angola = d.InternIri("Angola"), brazil = d.InternIri("Brazil");
  g.Add(n1, p_nat, angola);
  g.Add(n2, p_nat, brazil);
  g.Add(n1, p_company, sodian);
  g.Add(n2, p_company, renault);
  g.Add(sodian, p_area, d.InternString("Diamond"));
  g.Add(renault, p_area, d.InternString("Automotive"));
  StructuralSummary s = StructuralSummary::Build(g);
  EXPECT_EQ(s.ClassOf(n1), s.ClassOf(n2));
  EXPECT_EQ(s.ClassOf(sodian), s.ClassOf(renault));
  EXPECT_NE(s.ClassOf(n1), s.ClassOf(sodian));
}

}  // namespace
}  // namespace spade
