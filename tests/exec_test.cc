// Tests of the execution layer: ThreadPool / TaskScheduler semantics, the
// CubeEvaluator factory, and — the contract the parallel pipeline stands on —
// bit-identical results at every thread count.

#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/core/spade.h"
#include "src/datagen/realworld.h"
#include "src/datagen/synthetic.h"
#include "src/exec/cube_evaluator.h"

namespace spade {
namespace {

// --- ThreadPool / TaskScheduler ------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queues before joining.
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(TaskSchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  TaskScheduler scheduler(&pool);
  std::vector<std::atomic<int>> hits(500);
  scheduler.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskSchedulerTest, NullPoolRunsInlineInOrder) {
  TaskScheduler scheduler(nullptr);
  EXPECT_FALSE(scheduler.parallel());
  std::vector<size_t> order;
  scheduler.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(TaskSchedulerTest, NestedParallelForMakesProgress) {
  // Outer loop over "CFSs", inner loop over "lattices" on the same
  // scheduler — the shape Spade::RunOnline produces. A pool smaller than
  // the outer fan-out must not deadlock (callers participate).
  ThreadPool pool(2);
  TaskScheduler scheduler(&pool);
  std::atomic<int> total{0};
  scheduler.ParallelFor(8, [&](size_t) {
    scheduler.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(TaskSchedulerTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  TaskScheduler scheduler(&pool);
  EXPECT_THROW(scheduler.ParallelFor(100,
                                     [&](size_t i) {
                                       if (i == 37) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
               std::runtime_error);
}

// --- CubeEvaluator factory ------------------------------------------------

TEST(CubeEvaluatorTest, FactoryCoversEveryAlgorithm) {
  for (EvalAlgorithm algo :
       {EvalAlgorithm::kMvdCube, EvalAlgorithm::kPgCubeStar,
        EvalAlgorithm::kPgCubeDistinct, EvalAlgorithm::kArrayCube}) {
    CubeEvalOptions options;
    options.algorithm = algo;
    auto evaluator = MakeCubeEvaluator(options);
    ASSERT_NE(evaluator, nullptr);
    EXPECT_STREQ(evaluator->name(), EvalAlgorithmName(algo));
  }
}

// --- Pipeline determinism across thread counts ----------------------------

SpadeOptions BaseOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 8;
  options.enumeration.max_measures_per_lattice = 3;
  options.top_k = 8;
  return options;
}

struct RunOutcome {
  std::vector<Insight> insights;
  SpadeReport report;
};

RunOutcome RunPipeline(Graph* graph, SpadeOptions options, size_t threads) {
  options.num_threads = threads;
  Spade spade(graph, options);
  EXPECT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  EXPECT_TRUE(insights.ok()) << insights.status().ToString();
  return RunOutcome{std::move(*insights), spade.report()};
}

/// Bit-identical comparison of a parallel run against the serial baseline:
/// same top-k keys, scores (exact doubles), group counts, stored groups,
/// and the same evaluated / reused / pruned aggregate counts.
void ExpectIdentical(const RunOutcome& serial, const RunOutcome& parallel,
                     size_t threads) {
  SCOPED_TRACE("num_threads = " + std::to_string(threads));
  EXPECT_EQ(serial.report.num_cfs, parallel.report.num_cfs);
  EXPECT_EQ(serial.report.num_lattices, parallel.report.num_lattices);
  EXPECT_EQ(serial.report.num_candidate_aggregates,
            parallel.report.num_candidate_aggregates);
  EXPECT_EQ(serial.report.num_evaluated_aggregates,
            parallel.report.num_evaluated_aggregates);
  EXPECT_EQ(serial.report.num_reused_aggregates,
            parallel.report.num_reused_aggregates);
  EXPECT_EQ(serial.report.num_pruned_aggregates,
            parallel.report.num_pruned_aggregates);

  ASSERT_EQ(serial.insights.size(), parallel.insights.size());
  for (size_t i = 0; i < serial.insights.size(); ++i) {
    const Arm::Ranked& a = serial.insights[i].ranked;
    const Arm::Ranked& b = parallel.insights[i].ranked;
    EXPECT_TRUE(a.key == b.key) << "insight " << i;
    EXPECT_EQ(a.score, b.score) << "insight " << i;  // exact, not approximate
    EXPECT_EQ(a.num_groups, b.num_groups) << "insight " << i;
    ASSERT_EQ(a.groups.size(), b.groups.size()) << "insight " << i;
    for (size_t g = 0; g < a.groups.size(); ++g) {
      EXPECT_EQ(a.groups[g].dim_values, b.groups[g].dim_values);
      EXPECT_EQ(a.groups[g].value, b.groups[g].value);
    }
    EXPECT_EQ(serial.insights[i].cfs_name, parallel.insights[i].cfs_name);
    EXPECT_EQ(serial.insights[i].description, parallel.insights[i].description);
    EXPECT_EQ(serial.insights[i].sparql, parallel.insights[i].sparql);
  }
}

void CheckDeterminism(const std::function<std::unique_ptr<Graph>()>& make_graph,
                      SpadeOptions options) {
  auto baseline_graph = make_graph();
  RunOutcome serial = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(serial.insights.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    auto graph = make_graph();
    RunOutcome parallel = RunPipeline(graph.get(), options, threads);
    ExpectIdentical(serial, parallel, threads);
  }
}

TEST(ParallelPipelineTest, CeosDeterministicAcrossThreadCounts) {
  CheckDeterminism([] { return GenerateCeos(42, 0.25); }, BaseOptions());
}

TEST(ParallelPipelineTest, SyntheticDeterministicAcrossThreadCounts) {
  SyntheticOptions sopts;
  sopts.num_facts = 4000;
  sopts.dim_cardinality = {40, 25, 12};
  sopts.num_measures = 3;
  sopts.sparsity = 0.15;
  CheckDeterminism([&] { return GenerateSynthetic(sopts); }, BaseOptions());
}

TEST(ParallelPipelineTest, EarlyStopDeterministicAcrossThreadCounts) {
  SpadeOptions options = BaseOptions();
  options.enable_earlystop = true;
  options.earlystop.sample_size = 60;
  options.earlystop.num_batches = 2;
  CheckDeterminism([] { return GenerateCeos(7, 0.25); }, options);
}

TEST(ParallelPipelineTest, PgCubeDeterministicAcrossThreadCounts) {
  SpadeOptions options = BaseOptions();
  options.algorithm = EvalAlgorithm::kPgCubeStar;
  CheckDeterminism([] { return GenerateCeos(42, 0.2); }, options);
}

TEST(ParallelPipelineTest, ArrayCubeRunsEndToEnd) {
  SpadeOptions options = BaseOptions();
  options.algorithm = EvalAlgorithm::kArrayCube;
  CheckDeterminism([] { return GenerateCeos(42, 0.2); }, options);
}

TEST(ParallelPipelineTest, ZeroMeansHardwareConcurrency) {
  auto graph = GenerateCeos(42, 0.15);
  RunOutcome out = RunPipeline(graph.get(), BaseOptions(), 0);
  EXPECT_EQ(out.report.num_threads_used, ThreadPool::HardwareConcurrency());
  EXPECT_FALSE(out.insights.empty());
}

// --- Within-CFS sharding --------------------------------------------------

TEST(ShardedEvaluatorTest, FactoryDispatchesOnShardsAlgorithmAndEarlyStop) {
  CubeEvalOptions options;
  options.num_shards = 4;
  EXPECT_STREQ(MakeCubeEvaluator(options)->name(), "MVDCube/sharded");
  // Early-stop falls back: its reservoir RNG stream is sequential.
  options.enable_earlystop = true;
  EXPECT_STREQ(MakeCubeEvaluator(options)->name(), "MVDCube");
  options.enable_earlystop = false;
  options.num_shards = 1;
  EXPECT_STREQ(MakeCubeEvaluator(options)->name(), "MVDCube");
  options.num_shards = 4;
  options.algorithm = EvalAlgorithm::kPgCubeStar;
  EXPECT_STREQ(MakeCubeEvaluator(options)->name(), "PGCube*");
}

// The exactness core of the sharded path: translating ascending disjoint
// fact ranges and merging in shard order reproduces the unsharded
// translation bit for bit — partition vectors, root-group counts, counters.
TEST(ShardedEvaluatorTest, MergedShardTranslationsEqualUnsharded) {
  // Two dimensions over 7 facts: multi-valued, missing, and single values.
  std::vector<DimensionEncoding> dims(2);
  dims[0].values = {100, 101, 102};  // domain 3 (+null)
  dims[0].fact_codes = {{0}, {1, 2}, {}, {0, 1}, {2}, {1}, {0}};
  dims[1].values = {200, 201, 202, 203};  // domain 4 (+null)
  dims[1].fact_codes = {{3}, {0}, {1, 2}, {}, {0, 3}, {2}, {}};
  for (auto& d : dims) {
    for (const auto& codes : d.fact_codes) {
      if (codes.size() >= 2) ++d.num_multi_facts;
    }
  }
  Mmst mmst = Mmst::Build({4, 5}, 2);

  TranslationOptions topt;
  Translation full = TranslateData(dims, mmst.layout(), topt);

  for (size_t k : {1u, 2u, 3u, 4u, 8u}) {
    SCOPED_TRACE("num_shards = " + std::to_string(k));
    std::vector<Translation> partials;
    for (const FactRange& r : MakeFactShards(7, k)) {
      TranslationOptions shard_opt;
      shard_opt.fact_begin = r.begin;
      shard_opt.fact_end = r.end;
      partials.push_back(TranslateData(dims, mmst.layout(), shard_opt));
    }
    Translation merged = MergeShardTranslations(std::move(partials));
    ASSERT_EQ(merged.partitions.size(), full.partitions.size());
    for (size_t p = 0; p < full.partitions.size(); ++p) {
      EXPECT_EQ(merged.partitions[p], full.partitions[p]) << "partition " << p;
    }
    EXPECT_EQ(merged.root_group_count.size(), full.root_group_count.size());
    for (const auto& [cell, count] : full.root_group_count) {
      auto it = merged.root_group_count.find(cell);
      ASSERT_NE(it, merged.root_group_count.end());
      EXPECT_EQ(it->second, count);
    }
    EXPECT_EQ(merged.num_facts_translated, full.num_facts_translated);
    EXPECT_EQ(merged.num_dropped_combos, full.num_dropped_combos);
  }
}

// The acceptance contract of within-CFS sharding: bit-identical top-k
// insights for sharded vs unsharded evaluation at every (shards, threads)
// combination — same keys, exact double scores, same group tuples.
TEST(ShardedPipelineTest, BitIdenticalToUnshardedAcrossShardAndThreadCounts) {
  auto make_graph = [] { return GenerateCeos(42, 0.25); };
  SpadeOptions options = BaseOptions();
  options.num_shards = 1;  // the unsharded baseline, serial
  auto baseline_graph = make_graph();
  RunOutcome unsharded = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(unsharded.insights.empty());
  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("num_shards = " + std::to_string(shards));
      options.num_shards = shards;
      auto graph = make_graph();
      RunOutcome sharded = RunPipeline(graph.get(), options, threads);
      EXPECT_EQ(sharded.report.num_shards_used, shards);
      ExpectIdentical(unsharded, sharded, threads);
    }
  }
}

// Same contract on a synthetic workload dense in multi-valued dimensions
// (the case where per-fact combination explosion and the per-fact cap must
// shard without drift).
TEST(ShardedPipelineTest, SyntheticBitIdenticalToUnsharded) {
  SyntheticOptions sopts;
  sopts.num_facts = 3000;
  sopts.dim_cardinality = {30, 20, 10};
  sopts.num_measures = 2;
  sopts.sparsity = 0.2;
  auto make_graph = [&] { return GenerateSynthetic(sopts); };
  SpadeOptions options = BaseOptions();
  options.num_shards = 1;
  auto baseline_graph = make_graph();
  RunOutcome unsharded = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(unsharded.insights.empty());
  for (size_t shards : {2u, 4u}) {
    SCOPED_TRACE("num_shards = " + std::to_string(shards));
    options.num_shards = shards;
    auto graph = make_graph();
    RunOutcome sharded = RunPipeline(graph.get(), options, 4);
    ExpectIdentical(unsharded, sharded, 4);
  }
}

TEST(ShardedPipelineTest, AutoShardsFollowResolvedThreads) {
  auto graph = GenerateCeos(42, 0.15);
  SpadeOptions options = BaseOptions();
  options.num_shards = 0;  // auto: one shard per worker thread
  RunOutcome out = RunPipeline(graph.get(), options, 4);
  EXPECT_EQ(out.report.num_shards_used, 4u);
  // Per-CFS shard fact counts were recorded and sum to the total facts the
  // sharded evaluations covered.
  EXPECT_EQ(out.report.shard_fact_counts.size(), 4u);
  EXPECT_FALSE(out.insights.empty());
}

// --- Partition-parallel lattice computation -------------------------------

// The acceptance contract of the parallel lattice: bit-identical top-k
// insights across every (threads, shards) combination — the lattice worker
// count follows the resolved thread count, so this matrix exercises lattice
// workers {1, 2, 4, 8} x shards {1, 2, 4}. partition_chunk = 2 forces many
// partitions per lattice, so multi-slice runs really happen (the default
// chunk of 16 often leaves small lattices with a single partition).
TEST(LatticeParallelPipelineTest, ManyPartitionsBitIdenticalAcrossWorkersAndShards) {
  SyntheticOptions sopts;
  sopts.num_facts = 3000;
  sopts.dim_cardinality = {40, 25, 12};
  sopts.num_measures = 2;
  sopts.sparsity = 0.15;
  auto make_graph = [&] { return GenerateSynthetic(sopts); };
  SpadeOptions options = BaseOptions();
  options.mvd.partition_chunk = 2;
  options.num_shards = 1;
  auto baseline_graph = make_graph();
  RunOutcome serial = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(serial.insights.empty());
  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("num_shards = " + std::to_string(shards));
      options.num_shards = shards;
      auto graph = make_graph();
      RunOutcome parallel = RunPipeline(graph.get(), options, threads);
      ExpectIdentical(serial, parallel, threads);
      EXPECT_GE(parallel.report.lattice_workers_used, 1u);
      EXPECT_LE(parallel.report.lattice_workers_used, threads);
    }
  }
}

// Early-stop shares the parallel lattice path (pruning only shrinks the
// wanted-node set); its determinism contract must survive at many
// partitions too.
TEST(LatticeParallelPipelineTest, EarlyStopManyPartitionsDeterministic) {
  SpadeOptions options = BaseOptions();
  options.mvd.partition_chunk = 2;
  options.enable_earlystop = true;
  options.earlystop.sample_size = 60;
  options.earlystop.num_batches = 2;
  CheckDeterminism([] { return GenerateCeos(7, 0.25); }, options);
}

TEST(LatticeParallelPipelineTest, LatticeStatsReported) {
  auto graph = GenerateCeos(42, 0.25);
  SpadeOptions options = BaseOptions();
  options.mvd.partition_chunk = 2;
  RunOutcome out = RunPipeline(graph.get(), options, 4);
  ASSERT_FALSE(out.insights.empty());
  // MVDCube ran: the parallel lattice protocol reports its slice count and
  // the partial-cell high-water mark (>= one cell per emitted group of the
  // largest lattice).
  EXPECT_GE(out.report.lattice_workers_used, 1u);
  EXPECT_LE(out.report.lattice_workers_used, 4u);
  EXPECT_GT(out.report.lattice_peak_partial_cells, 0u);
  EXPECT_GE(out.report.lattice_wall_ms, 0.0);
  EXPECT_GE(out.report.lattice_work_ms, 0.0);
}

// --- Arm::Absorb ----------------------------------------------------------

TEST(ArmAbsorbTest, MovesEntriesAndKeepsFirstWriter) {
  Arm target(8);
  Arm shard(8);
  AggregateKey k1{0, {1}, MeasureSpec{}};
  AggregateKey k2{1, {2}, MeasureSpec{}};
  Arm::Handle h1 = target.Register(k1);
  target.AddGroup(h1, {10}, 1.0);
  Arm::Handle h2 = shard.Register(k2);
  shard.AddGroup(h2, {20}, 2.0);
  // Duplicate of k1 in the shard: the target's entry must win.
  Arm::Handle dup = shard.Register(k1);
  shard.AddGroup(dup, {30}, 99.0);

  target.Absorb(std::move(shard));
  EXPECT_EQ(target.num_aggregates(), 2u);
  Arm::Handle f1 = target.Find(k1);
  ASSERT_NE(f1, Arm::kInvalidHandle);
  ASSERT_EQ(target.stored_groups(f1).size(), 1u);
  EXPECT_EQ(target.stored_groups(f1)[0].value, 1.0);
  EXPECT_NE(target.Find(k2), Arm::kInvalidHandle);
}

}  // namespace
}  // namespace spade
