// Tests of the execution layer: ThreadPool / TaskScheduler semantics, the
// CubeEvaluator factory, and — the contract the parallel pipeline stands on —
// bit-identical results at every thread count.

#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/core/spade.h"
#include "src/datagen/realworld.h"
#include "src/datagen/synthetic.h"
#include "src/exec/cube_evaluator.h"

namespace spade {
namespace {

// --- ThreadPool / TaskScheduler ------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queues before joining.
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(TaskSchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  TaskScheduler scheduler(&pool);
  std::vector<std::atomic<int>> hits(500);
  scheduler.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskSchedulerTest, NullPoolRunsInlineInOrder) {
  TaskScheduler scheduler(nullptr);
  EXPECT_FALSE(scheduler.parallel());
  std::vector<size_t> order;
  scheduler.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(TaskSchedulerTest, NestedParallelForMakesProgress) {
  // Outer loop over "CFSs", inner loop over "lattices" on the same
  // scheduler — the shape Spade::RunOnline produces. A pool smaller than
  // the outer fan-out must not deadlock (callers participate).
  ThreadPool pool(2);
  TaskScheduler scheduler(&pool);
  std::atomic<int> total{0};
  scheduler.ParallelFor(8, [&](size_t) {
    scheduler.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(TaskSchedulerTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  TaskScheduler scheduler(&pool);
  EXPECT_THROW(scheduler.ParallelFor(100,
                                     [&](size_t i) {
                                       if (i == 37) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
               std::runtime_error);
}

// --- CubeEvaluator factory ------------------------------------------------

TEST(CubeEvaluatorTest, FactoryCoversEveryAlgorithm) {
  for (EvalAlgorithm algo :
       {EvalAlgorithm::kMvdCube, EvalAlgorithm::kPgCubeStar,
        EvalAlgorithm::kPgCubeDistinct, EvalAlgorithm::kArrayCube}) {
    CubeEvalOptions options;
    options.algorithm = algo;
    auto evaluator = MakeCubeEvaluator(options);
    ASSERT_NE(evaluator, nullptr);
    EXPECT_STREQ(evaluator->name(), EvalAlgorithmName(algo));
  }
}

// --- Pipeline determinism across thread counts ----------------------------

SpadeOptions BaseOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 8;
  options.enumeration.max_measures_per_lattice = 3;
  options.top_k = 8;
  return options;
}

struct RunOutcome {
  std::vector<Insight> insights;
  SpadeReport report;
};

RunOutcome RunPipeline(Graph* graph, SpadeOptions options, size_t threads) {
  options.num_threads = threads;
  Spade spade(graph, options);
  EXPECT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  EXPECT_TRUE(insights.ok()) << insights.status().ToString();
  return RunOutcome{std::move(*insights), spade.report()};
}

/// Bit-identical comparison of a parallel run against the serial baseline:
/// same top-k keys, scores (exact doubles), group counts, stored groups,
/// and the same evaluated / reused / pruned aggregate counts.
void ExpectIdentical(const RunOutcome& serial, const RunOutcome& parallel,
                     size_t threads) {
  SCOPED_TRACE("num_threads = " + std::to_string(threads));
  EXPECT_EQ(serial.report.num_cfs, parallel.report.num_cfs);
  EXPECT_EQ(serial.report.num_lattices, parallel.report.num_lattices);
  EXPECT_EQ(serial.report.num_candidate_aggregates,
            parallel.report.num_candidate_aggregates);
  EXPECT_EQ(serial.report.num_evaluated_aggregates,
            parallel.report.num_evaluated_aggregates);
  EXPECT_EQ(serial.report.num_reused_aggregates,
            parallel.report.num_reused_aggregates);
  EXPECT_EQ(serial.report.num_pruned_aggregates,
            parallel.report.num_pruned_aggregates);

  ASSERT_EQ(serial.insights.size(), parallel.insights.size());
  for (size_t i = 0; i < serial.insights.size(); ++i) {
    const Arm::Ranked& a = serial.insights[i].ranked;
    const Arm::Ranked& b = parallel.insights[i].ranked;
    EXPECT_TRUE(a.key == b.key) << "insight " << i;
    EXPECT_EQ(a.score, b.score) << "insight " << i;  // exact, not approximate
    EXPECT_EQ(a.num_groups, b.num_groups) << "insight " << i;
    ASSERT_EQ(a.groups.size(), b.groups.size()) << "insight " << i;
    for (size_t g = 0; g < a.groups.size(); ++g) {
      EXPECT_EQ(a.groups[g].dim_values, b.groups[g].dim_values);
      EXPECT_EQ(a.groups[g].value, b.groups[g].value);
    }
    EXPECT_EQ(serial.insights[i].cfs_name, parallel.insights[i].cfs_name);
    EXPECT_EQ(serial.insights[i].description, parallel.insights[i].description);
    EXPECT_EQ(serial.insights[i].sparql, parallel.insights[i].sparql);
  }
}

void CheckDeterminism(const std::function<std::unique_ptr<Graph>()>& make_graph,
                      SpadeOptions options) {
  auto baseline_graph = make_graph();
  RunOutcome serial = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(serial.insights.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    auto graph = make_graph();
    RunOutcome parallel = RunPipeline(graph.get(), options, threads);
    ExpectIdentical(serial, parallel, threads);
  }
}

TEST(ParallelPipelineTest, CeosDeterministicAcrossThreadCounts) {
  CheckDeterminism([] { return GenerateCeos(42, 0.25); }, BaseOptions());
}

TEST(ParallelPipelineTest, SyntheticDeterministicAcrossThreadCounts) {
  SyntheticOptions sopts;
  sopts.num_facts = 4000;
  sopts.dim_cardinality = {40, 25, 12};
  sopts.num_measures = 3;
  sopts.sparsity = 0.15;
  CheckDeterminism([&] { return GenerateSynthetic(sopts); }, BaseOptions());
}

TEST(ParallelPipelineTest, EarlyStopDeterministicAcrossThreadCounts) {
  SpadeOptions options = BaseOptions();
  options.enable_earlystop = true;
  options.earlystop.sample_size = 60;
  options.earlystop.num_batches = 2;
  CheckDeterminism([] { return GenerateCeos(7, 0.25); }, options);
}

TEST(ParallelPipelineTest, PgCubeDeterministicAcrossThreadCounts) {
  SpadeOptions options = BaseOptions();
  options.algorithm = EvalAlgorithm::kPgCubeStar;
  CheckDeterminism([] { return GenerateCeos(42, 0.2); }, options);
}

TEST(ParallelPipelineTest, ArrayCubeRunsEndToEnd) {
  SpadeOptions options = BaseOptions();
  options.algorithm = EvalAlgorithm::kArrayCube;
  CheckDeterminism([] { return GenerateCeos(42, 0.2); }, options);
}

TEST(ParallelPipelineTest, ZeroMeansHardwareConcurrency) {
  auto graph = GenerateCeos(42, 0.15);
  RunOutcome out = RunPipeline(graph.get(), BaseOptions(), 0);
  EXPECT_EQ(out.report.num_threads_used, ThreadPool::HardwareConcurrency());
  EXPECT_FALSE(out.insights.empty());
}

// --- Arm::Absorb ----------------------------------------------------------

TEST(ArmAbsorbTest, MovesEntriesAndKeepsFirstWriter) {
  Arm target(8);
  Arm shard(8);
  AggregateKey k1{0, {1}, MeasureSpec{}};
  AggregateKey k2{1, {2}, MeasureSpec{}};
  Arm::Handle h1 = target.Register(k1);
  target.AddGroup(h1, {10}, 1.0);
  Arm::Handle h2 = shard.Register(k2);
  shard.AddGroup(h2, {20}, 2.0);
  // Duplicate of k1 in the shard: the target's entry must win.
  Arm::Handle dup = shard.Register(k1);
  shard.AddGroup(dup, {30}, 99.0);

  target.Absorb(std::move(shard));
  EXPECT_EQ(target.num_aggregates(), 2u);
  Arm::Handle f1 = target.Find(k1);
  ASSERT_NE(f1, Arm::kInvalidHandle);
  ASSERT_EQ(target.stored_groups(f1).size(), 1u);
  EXPECT_EQ(target.stored_groups(f1)[0].value, 1.0);
  EXPECT_NE(target.Find(k2), Arm::kInvalidHandle);
}

}  // namespace
}  // namespace spade
