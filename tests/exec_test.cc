// Tests of the execution layer: ThreadPool / TaskScheduler semantics, the
// CubeEvaluator factory, and — the contract the parallel pipeline stands on —
// bit-identical results at every thread count.

#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/core/mvdcube.h"
#include "src/core/spade.h"
#include "src/datagen/realworld.h"
#include "src/datagen/synthetic.h"
#include "src/exec/cube_evaluator.h"

namespace spade {
namespace {

// --- ThreadPool / TaskScheduler ------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queues before joining.
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, TasksSubmittedByTasksAreDrainedBeforeDestruction) {
  // Nested submissions land on the submitting worker's own deque; the
  // destructor's drain contract has to cover the whole spawn chain.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter, &pool] {
        counter.fetch_add(1);
        pool.Submit([&counter] { counter.fetch_add(1); });
      });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

// --- WorkStealingDeque (Chase-Lev) ----------------------------------------

TEST(WorkDequeTest, OwnerPopsLifoThievesStealFifo) {
  WorkStealingDeque dq;
  auto* a = new WorkStealingDeque::Task([] {});
  auto* b = new WorkStealingDeque::Task([] {});
  auto* c = new WorkStealingDeque::Task([] {});
  dq.PushBottom(a);
  dq.PushBottom(b);
  dq.PushBottom(c);
  EXPECT_FALSE(dq.EmptyHint());
  EXPECT_EQ(dq.Steal(), a);      // oldest first
  EXPECT_EQ(dq.PopBottom(), c);  // newest first
  EXPECT_EQ(dq.PopBottom(), b);
  EXPECT_EQ(dq.PopBottom(), nullptr);
  EXPECT_EQ(dq.Steal(), nullptr);
  EXPECT_TRUE(dq.EmptyHint());
  delete a;
  delete b;
  delete c;
}

TEST(WorkDequeTest, GrowsPastInitialCapacityPreservingOrder) {
  WorkStealingDeque dq(/*initial_capacity=*/2);
  std::vector<WorkStealingDeque::Task*> tasks;
  for (int i = 0; i < 300; ++i) {
    tasks.push_back(new WorkStealingDeque::Task([] {}));
    dq.PushBottom(tasks.back());
  }
  for (int i = 0; i < 150; ++i) {  // FIFO from the top
    EXPECT_EQ(dq.Steal(), tasks[i]) << i;
  }
  for (int i = 299; i >= 150; --i) {  // LIFO from the bottom
    EXPECT_EQ(dq.PopBottom(), tasks[i]) << i;
  }
  EXPECT_EQ(dq.PopBottom(), nullptr);
  for (auto* t : tasks) delete t;
}

TEST(WorkDequeTest, ConcurrentStealsLoseNothingDuplicateNothing) {
  // One owner pushes and pops; several thieves hammer Steal. Every task
  // must be claimed exactly once across all parties. (Run under TSan in CI,
  // this is also the memory-model check on the fence-free mapping.)
  constexpr int kTasks = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque dq(/*initial_capacity=*/4);
  std::vector<std::atomic<int>> claimed(kTasks);
  for (auto& c : claimed) c.store(0);
  std::atomic<int> remaining{kTasks};
  std::atomic<bool> done{false};
  auto claim = [&](WorkStealingDeque::Task* t) {
    if (t == nullptr) return;
    (*t)();
    delete t;
    remaining.fetch_sub(1);
  };
  std::vector<std::thread> thieves;
  for (int th = 0; th < kThieves; ++th) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) claim(dq.Steal());
    });
  }
  // Owner: pushes in bursts, popping some of its own work in between.
  for (int i = 0; i < kTasks; ++i) {
    dq.PushBottom(new WorkStealingDeque::Task(
        [&claimed, i] { claimed[i].fetch_add(1); }));
    if (i % 3 == 0) claim(dq.PopBottom());
  }
  while (remaining.load() > 0) {
    WorkStealingDeque::Task* t = dq.PopBottom();
    if (t == nullptr && dq.EmptyHint()) {
      std::this_thread::yield();  // thieves still finishing their claims
    }
    claim(t);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(claimed[i].load(), 1) << "task " << i;
  }
  EXPECT_TRUE(dq.EmptyHint());
}

TEST(ThreadPoolStressTest, StealHeavyFineGrainedTasksAllRunExactlyOnce) {
  // Steal-heavy by construction: every task is submitted from the external
  // thread through the injection queue, and each one immediately spawns
  // tiny children onto its worker's own deque — idle workers must live off
  // stealing. Microsecond-scale bodies keep the deques churning. (The TSan
  // CI job runs this; it is the data-race check on the lock-free pool.)
  constexpr int kRounds = 200;
  constexpr int kChildren = 16;
  std::vector<std::atomic<int>> hits(kRounds * kChildren);
  for (auto& h : hits) h.store(0);
  {
    ThreadPool pool(8);
    for (int r = 0; r < kRounds; ++r) {
      pool.Submit([&hits, &pool, r] {
        for (int c = 0; c < kChildren; ++c) {
          pool.Submit([&hits, r, c] {
            hits[r * kChildren + c].fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
  }
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolStressTest, ParallelForUnderContention) {
  // Many short ParallelFor rounds on a pool bigger than the work: workers
  // spend most of their time in the sleep/steal protocol, the regression
  // surface for lost-wakeup bugs (a hang here is the failure mode).
  ThreadPool pool(8);
  TaskScheduler scheduler(&pool);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 300; ++round) {
    scheduler.ParallelFor(5, [&](size_t i) {
      total.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 300 * (0 + 1 + 2 + 3 + 4));
}

TEST(TaskSchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  TaskScheduler scheduler(&pool);
  std::vector<std::atomic<int>> hits(500);
  scheduler.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskSchedulerTest, NullPoolRunsInlineInOrder) {
  TaskScheduler scheduler(nullptr);
  EXPECT_FALSE(scheduler.parallel());
  std::vector<size_t> order;
  scheduler.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(TaskSchedulerTest, NestedParallelForMakesProgress) {
  // Outer loop over "CFSs", inner loop over "lattices" on the same
  // scheduler — the shape Spade::RunOnline produces. A pool smaller than
  // the outer fan-out must not deadlock (callers participate).
  ThreadPool pool(2);
  TaskScheduler scheduler(&pool);
  std::atomic<int> total{0};
  scheduler.ParallelFor(8, [&](size_t) {
    scheduler.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(TaskSchedulerTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  TaskScheduler scheduler(&pool);
  EXPECT_THROW(scheduler.ParallelFor(100,
                                     [&](size_t i) {
                                       if (i == 37) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
               std::runtime_error);
}

// --- CubeEvaluator factory ------------------------------------------------

TEST(CubeEvaluatorTest, FactoryCoversEveryAlgorithm) {
  for (EvalAlgorithm algo :
       {EvalAlgorithm::kMvdCube, EvalAlgorithm::kPgCubeStar,
        EvalAlgorithm::kPgCubeDistinct, EvalAlgorithm::kArrayCube}) {
    CubeEvalOptions options;
    options.algorithm = algo;
    auto evaluator = MakeCubeEvaluator(options);
    ASSERT_NE(evaluator, nullptr);
    EXPECT_STREQ(evaluator->name(), EvalAlgorithmName(algo));
  }
}

// --- Pipeline determinism across thread counts ----------------------------

SpadeOptions BaseOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 8;
  options.enumeration.max_measures_per_lattice = 3;
  options.top_k = 8;
  return options;
}

struct RunOutcome {
  std::vector<Insight> insights;
  SpadeReport report;
};

RunOutcome RunPipeline(Graph* graph, SpadeOptions options, size_t threads) {
  options.num_threads = threads;
  Spade spade(graph, options);
  EXPECT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  EXPECT_TRUE(insights.ok()) << insights.status().ToString();
  return RunOutcome{std::move(*insights), spade.report()};
}

/// Bit-identical comparison of a parallel run against the serial baseline:
/// same top-k keys, scores (exact doubles), group counts, stored groups,
/// and the same evaluated / reused / pruned aggregate counts.
void ExpectIdentical(const RunOutcome& serial, const RunOutcome& parallel,
                     size_t threads) {
  SCOPED_TRACE("num_threads = " + std::to_string(threads));
  EXPECT_EQ(serial.report.num_cfs, parallel.report.num_cfs);
  EXPECT_EQ(serial.report.num_lattices, parallel.report.num_lattices);
  EXPECT_EQ(serial.report.num_candidate_aggregates,
            parallel.report.num_candidate_aggregates);
  EXPECT_EQ(serial.report.num_evaluated_aggregates,
            parallel.report.num_evaluated_aggregates);
  EXPECT_EQ(serial.report.num_reused_aggregates,
            parallel.report.num_reused_aggregates);
  EXPECT_EQ(serial.report.num_pruned_aggregates,
            parallel.report.num_pruned_aggregates);

  ASSERT_EQ(serial.insights.size(), parallel.insights.size());
  for (size_t i = 0; i < serial.insights.size(); ++i) {
    const Arm::Ranked& a = serial.insights[i].ranked;
    const Arm::Ranked& b = parallel.insights[i].ranked;
    EXPECT_TRUE(a.key == b.key) << "insight " << i;
    EXPECT_EQ(a.score, b.score) << "insight " << i;  // exact, not approximate
    EXPECT_EQ(a.num_groups, b.num_groups) << "insight " << i;
    ASSERT_EQ(a.groups.size(), b.groups.size()) << "insight " << i;
    for (size_t g = 0; g < a.groups.size(); ++g) {
      EXPECT_EQ(a.groups[g].dim_values, b.groups[g].dim_values);
      EXPECT_EQ(a.groups[g].value, b.groups[g].value);
    }
    EXPECT_EQ(serial.insights[i].cfs_name, parallel.insights[i].cfs_name);
    EXPECT_EQ(serial.insights[i].description, parallel.insights[i].description);
    EXPECT_EQ(serial.insights[i].sparql, parallel.insights[i].sparql);
  }
}

void CheckDeterminism(const std::function<std::unique_ptr<Graph>()>& make_graph,
                      SpadeOptions options) {
  auto baseline_graph = make_graph();
  RunOutcome serial = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(serial.insights.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    auto graph = make_graph();
    RunOutcome parallel = RunPipeline(graph.get(), options, threads);
    ExpectIdentical(serial, parallel, threads);
  }
}

TEST(ParallelPipelineTest, CeosDeterministicAcrossThreadCounts) {
  CheckDeterminism([] { return GenerateCeos(42, 0.25); }, BaseOptions());
}

TEST(ParallelPipelineTest, SyntheticDeterministicAcrossThreadCounts) {
  SyntheticOptions sopts;
  sopts.num_facts = 4000;
  sopts.dim_cardinality = {40, 25, 12};
  sopts.num_measures = 3;
  sopts.sparsity = 0.15;
  CheckDeterminism([&] { return GenerateSynthetic(sopts); }, BaseOptions());
}

TEST(ParallelPipelineTest, EarlyStopDeterministicAcrossThreadCounts) {
  SpadeOptions options = BaseOptions();
  options.enable_earlystop = true;
  options.earlystop.sample_size = 60;
  options.earlystop.num_batches = 2;
  CheckDeterminism([] { return GenerateCeos(7, 0.25); }, options);
}

TEST(ParallelPipelineTest, PgCubeDeterministicAcrossThreadCounts) {
  SpadeOptions options = BaseOptions();
  options.algorithm = EvalAlgorithm::kPgCubeStar;
  CheckDeterminism([] { return GenerateCeos(42, 0.2); }, options);
}

TEST(ParallelPipelineTest, ArrayCubeRunsEndToEnd) {
  SpadeOptions options = BaseOptions();
  options.algorithm = EvalAlgorithm::kArrayCube;
  CheckDeterminism([] { return GenerateCeos(42, 0.2); }, options);
}

TEST(ParallelPipelineTest, ZeroMeansHardwareConcurrency) {
  auto graph = GenerateCeos(42, 0.15);
  RunOutcome out = RunPipeline(graph.get(), BaseOptions(), 0);
  EXPECT_EQ(out.report.num_threads_used, ThreadPool::HardwareConcurrency());
  EXPECT_FALSE(out.insights.empty());
}

// --- Within-CFS sharding --------------------------------------------------

TEST(ShardedEvaluatorTest, FactoryDispatchesOnShardsAlgorithmAndEarlyStop) {
  CubeEvalOptions options;
  options.num_shards = 4;
  EXPECT_STREQ(MakeCubeEvaluator(options)->name(), "MVDCube/sharded");
  // Early-stop falls back: its reservoir RNG stream is sequential.
  options.enable_earlystop = true;
  EXPECT_STREQ(MakeCubeEvaluator(options)->name(), "MVDCube");
  options.enable_earlystop = false;
  options.num_shards = 1;
  EXPECT_STREQ(MakeCubeEvaluator(options)->name(), "MVDCube");
  options.num_shards = 4;
  options.algorithm = EvalAlgorithm::kPgCubeStar;
  EXPECT_STREQ(MakeCubeEvaluator(options)->name(), "PGCube*");
}

// The exactness core of the sharded path: translating ascending disjoint
// fact ranges and merging in shard order reproduces the unsharded
// translation bit for bit — partition vectors, root-group counts, counters.
TEST(ShardedEvaluatorTest, MergedShardTranslationsEqualUnsharded) {
  // Two dimensions over 7 facts: multi-valued, missing, and single values.
  std::vector<DimensionEncoding> dims(2);
  dims[0].values = {100, 101, 102};  // domain 3 (+null)
  dims[0].fact_codes = {{0}, {1, 2}, {}, {0, 1}, {2}, {1}, {0}};
  dims[1].values = {200, 201, 202, 203};  // domain 4 (+null)
  dims[1].fact_codes = {{3}, {0}, {1, 2}, {}, {0, 3}, {2}, {}};
  for (auto& d : dims) {
    for (const auto& codes : d.fact_codes) {
      if (codes.size() >= 2) ++d.num_multi_facts;
    }
  }
  Mmst mmst = Mmst::Build({4, 5}, 2);

  TranslationOptions topt;
  Translation full = TranslateData(dims, mmst.layout(), topt);

  for (size_t k : {1u, 2u, 3u, 4u, 8u}) {
    SCOPED_TRACE("num_shards = " + std::to_string(k));
    std::vector<Translation> partials;
    for (const FactRange& r : MakeFactShards(7, k)) {
      TranslationOptions shard_opt;
      shard_opt.fact_begin = r.begin;
      shard_opt.fact_end = r.end;
      partials.push_back(TranslateData(dims, mmst.layout(), shard_opt));
    }
    Translation merged = MergeShardTranslations(std::move(partials));
    ASSERT_EQ(merged.partitions.size(), full.partitions.size());
    for (size_t p = 0; p < full.partitions.size(); ++p) {
      EXPECT_EQ(merged.partitions[p], full.partitions[p]) << "partition " << p;
    }
    EXPECT_EQ(merged.root_group_count.size(), full.root_group_count.size());
    for (const auto& [cell, count] : full.root_group_count) {
      auto it = merged.root_group_count.find(cell);
      ASSERT_NE(it, merged.root_group_count.end());
      EXPECT_EQ(it->second, count);
    }
    EXPECT_EQ(merged.num_facts_translated, full.num_facts_translated);
    EXPECT_EQ(merged.num_dropped_combos, full.num_dropped_combos);
  }
}

// The acceptance contract of within-CFS sharding: bit-identical top-k
// insights for sharded vs unsharded evaluation at every (shards, threads)
// combination — same keys, exact double scores, same group tuples.
TEST(ShardedPipelineTest, BitIdenticalToUnshardedAcrossShardAndThreadCounts) {
  auto make_graph = [] { return GenerateCeos(42, 0.25); };
  SpadeOptions options = BaseOptions();
  options.num_shards = 1;  // the unsharded baseline, serial
  auto baseline_graph = make_graph();
  RunOutcome unsharded = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(unsharded.insights.empty());
  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("num_shards = " + std::to_string(shards));
      options.num_shards = shards;
      auto graph = make_graph();
      RunOutcome sharded = RunPipeline(graph.get(), options, threads);
      EXPECT_EQ(sharded.report.num_shards_used, shards);
      ExpectIdentical(unsharded, sharded, threads);
    }
  }
}

// Same contract on a synthetic workload dense in multi-valued dimensions
// (the case where per-fact combination explosion and the per-fact cap must
// shard without drift).
TEST(ShardedPipelineTest, SyntheticBitIdenticalToUnsharded) {
  SyntheticOptions sopts;
  sopts.num_facts = 3000;
  sopts.dim_cardinality = {30, 20, 10};
  sopts.num_measures = 2;
  sopts.sparsity = 0.2;
  auto make_graph = [&] { return GenerateSynthetic(sopts); };
  SpadeOptions options = BaseOptions();
  options.num_shards = 1;
  auto baseline_graph = make_graph();
  RunOutcome unsharded = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(unsharded.insights.empty());
  for (size_t shards : {2u, 4u}) {
    SCOPED_TRACE("num_shards = " + std::to_string(shards));
    options.num_shards = shards;
    auto graph = make_graph();
    RunOutcome sharded = RunPipeline(graph.get(), options, 4);
    ExpectIdentical(unsharded, sharded, 4);
  }
}

TEST(ShardedPipelineTest, AutoShardsFollowResolvedThreads) {
  auto graph = GenerateCeos(42, 0.15);
  SpadeOptions options = BaseOptions();
  options.num_shards = 0;  // auto: one shard per worker thread
  RunOutcome out = RunPipeline(graph.get(), options, 4);
  EXPECT_EQ(out.report.num_shards_used, 4u);
  // Per-CFS shard fact counts were recorded and sum to the total facts the
  // sharded evaluations covered.
  EXPECT_EQ(out.report.shard_fact_counts.size(), 4u);
  EXPECT_FALSE(out.insights.empty());
}

// --- Partition-parallel lattice computation -------------------------------

// The acceptance contract of the parallel lattice: bit-identical top-k
// insights across every (threads, shards, simd) combination — the lattice
// worker count follows the resolved thread count, so this matrix exercises
// lattice workers {1, 2, 4, 8} x shards {1, 2, 4} x fold kernel
// {dispatched, forced-scalar}. partition_chunk = 2 forces many partitions
// per lattice, so multi-slice runs really happen (the default chunk of 16
// often leaves small lattices with a single partition). The serial baseline
// runs with the scalar kernel, so on AVX2/NEON hosts every 'auto' run is a
// genuine scalar-vs-vector bit comparison.
TEST(LatticeParallelPipelineTest, ManyPartitionsBitIdenticalAcrossWorkersShardsAndSimd) {
  SyntheticOptions sopts;
  sopts.num_facts = 3000;
  sopts.dim_cardinality = {40, 25, 12};
  sopts.num_measures = 2;
  sopts.sparsity = 0.15;
  auto make_graph = [&] { return GenerateSynthetic(sopts); };
  SpadeOptions options = BaseOptions();
  options.mvd.partition_chunk = 2;
  options.num_shards = 1;
  options.mvd.simd = simd::SimdMode::kScalar;
  auto baseline_graph = make_graph();
  RunOutcome serial = RunPipeline(baseline_graph.get(), options, 1);
  EXPECT_FALSE(serial.insights.empty());
  for (simd::SimdMode mode : {simd::SimdMode::kAuto, simd::SimdMode::kScalar}) {
    for (size_t shards : {1u, 2u, 4u}) {
      for (size_t threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(std::string("simd = ") + simd::SimdModeName(mode) +
                     ", num_shards = " + std::to_string(shards));
        options.mvd.simd = mode;
        options.num_shards = shards;
        auto graph = make_graph();
        RunOutcome parallel = RunPipeline(graph.get(), options, threads);
        ExpectIdentical(serial, parallel, threads);
        EXPECT_GE(parallel.report.lattice_workers_used, 1u);
        EXPECT_LE(parallel.report.lattice_workers_used, threads);
      }
    }
  }
}

// Early-stop shares the parallel lattice path (pruning only shrinks the
// wanted-node set); its determinism contract must survive at many
// partitions too.
TEST(LatticeParallelPipelineTest, EarlyStopManyPartitionsDeterministic) {
  SpadeOptions options = BaseOptions();
  options.mvd.partition_chunk = 2;
  options.enable_earlystop = true;
  options.earlystop.sample_size = 60;
  options.earlystop.num_batches = 2;
  CheckDeterminism([] { return GenerateCeos(7, 0.25); }, options);
}

TEST(LatticeParallelPipelineTest, LatticeStatsReported) {
  auto graph = GenerateCeos(42, 0.25);
  SpadeOptions options = BaseOptions();
  options.mvd.partition_chunk = 2;
  RunOutcome out = RunPipeline(graph.get(), options, 4);
  ASSERT_FALSE(out.insights.empty());
  // MVDCube ran: the parallel lattice protocol reports its slice count and
  // the partial-cell high-water mark (>= one cell per emitted group of the
  // largest lattice).
  EXPECT_GE(out.report.lattice_workers_used, 1u);
  EXPECT_LE(out.report.lattice_workers_used, 4u);
  EXPECT_GT(out.report.lattice_peak_partial_cells, 0u);
  EXPECT_GE(out.report.lattice_wall_ms, 0.0);
  EXPECT_GE(out.report.lattice_work_ms, 0.0);
}

// --- ARM stream vs bitmap-free reference -----------------------------------

// The bitmap engine must be invisible in the results: the exact sequence of
// (key, group, value) tuples MVDCube streams into the ARM has to match an
// implementation that never touches RoaringBitmap — std::set cells run
// through the same canonical ParallelLatticeRun protocol and the same
// measure fold. This pins the ARM stream across bitmap-layer rewrites
// (ordered append, run containers, inline sets, batched decode), at every
// lattice worker count.

struct SetRefCell {
  std::set<uint32_t> facts;
  bool Empty() const { return facts.empty(); }
};

void EvaluateLatticeWithSetCells(const AttributeStore& db, uint32_t cfs_id,
                                 const CfsIndex& cfs, const LatticeSpec& spec,
                                 int partition_chunk, Arm* arm) {
  std::vector<DimensionEncoding> encodings;
  Mmst mmst = BuildMmstForSpec(db, cfs, spec, &encodings, partition_chunk);
  Translation tr =
      TranslateData(encodings, mmst.layout(), TranslationOptions());
  size_t n = spec.dims.size();
  std::vector<MeasureVector> loaded(spec.measures.size());
  for (size_t m = 0; m < spec.measures.size(); ++m) {
    if (!spec.measures[m].is_count_star()) {
      loaded[m] = BuildMeasureVector(db, cfs, spec.measures[m].attr);
    }
  }
  size_t num_nodes = size_t{1} << n;
  std::vector<std::vector<std::pair<size_t, Arm::Handle>>> node_mdas(num_nodes);
  for (uint32_t mask = 0; mask < num_nodes; ++mask) {
    std::vector<AttrId> dims;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) dims.push_back(spec.dims[i]);
    }
    for (size_t m = 0; m < spec.measures.size(); ++m) {
      AggregateKey key;
      key.cfs_id = cfs_id;
      key.dims = dims;
      key.measure = spec.measures[m];
      node_mdas[mask].push_back({m, arm->Register(key)});
    }
  }
  auto load = [](SetRefCell* cell, FactId fact) { cell->facts.insert(fact); };
  auto merge = [](SetRefCell* dst, const SetRefCell& src) {
    dst->facts.insert(src.facts.begin(), src.facts.end());
  };
  auto keep = [&](uint32_t mask, Span<int32_t> coords) {
    for (size_t d = 0; d < n; ++d) {
      if ((mask & (1u << d)) && coords[d] >= encodings[d].null_code()) {
        return false;
      }
    }
    return true;
  };
  using Acc = simd::FoldResult;
  std::vector<TermId> dim_values;
  auto emit = [&](uint32_t mask, Span<int32_t> coords, SetRefCell& cell) {
    dim_values.clear();
    for (size_t d = 0; d < n; ++d) {
      if (!(mask & (1u << d))) continue;
      dim_values.push_back(encodings[d].values[coords[d]]);
    }
    // std::set iterates ascending — the same span the bitmap decodes. The
    // fold goes through the (portable) scalar kernel: the engine's fixed
    // lane-strided fold order IS the spec now, and the engine must hit it
    // bit-exactly from set cells at every worker/shard/simd configuration.
    std::vector<uint32_t> span(cell.facts.begin(), cell.facts.end());
    std::vector<Acc> accs(spec.measures.size());
    simd::FoldAcc lanes;
    for (size_t m = 0; m < spec.measures.size(); ++m) {
      if (spec.measures[m].is_count_star()) continue;
      const MeasureVector& mv = loaded[m];
      lanes.Reset();
      simd::FoldMeasureScalar(span.data(), span.size(), mv.count.data(),
                              mv.sum.data(), mv.min.data(), mv.max.data(),
                              &lanes);
      accs[m] = simd::Reduce(lanes);
    }
    for (const auto& [m, handle] : node_mdas[mask]) {
      const MeasureSpec& ms = spec.measures[m];
      double value = 0;
      if (ms.is_count_star()) {
        value = static_cast<double>(cell.facts.size());
      } else {
        const Acc& acc = accs[m];
        if (acc.count == 0) continue;
        switch (ms.func) {
          case sparql::AggFunc::kCount:
            value = acc.count;
            break;
          case sparql::AggFunc::kSum:
            value = acc.sum;
            break;
          case sparql::AggFunc::kAvg:
            value = acc.sum / acc.count;
            break;
          case sparql::AggFunc::kMin:
            value = acc.min;
            break;
          case sparql::AggFunc::kMax:
            value = acc.max;
            break;
        }
      }
      arm->AddGroup(handle, dim_values, value);
    }
  };
  std::vector<bool> wanted(num_nodes, true);
  ParallelLatticeRun<SetRefCell>(mmst, tr, &wanted, /*num_workers=*/1,
                                 /*scheduler=*/nullptr, load, merge, keep,
                                 emit, nullptr);
}

void ExpectSameArmStream(const Arm& expected, const Arm& got) {
  ASSERT_EQ(expected.num_aggregates(), got.num_aggregates());
  for (Arm::Handle h = 0; h < expected.num_aggregates(); ++h) {
    SCOPED_TRACE("handle " + std::to_string(h));
    EXPECT_TRUE(expected.key(h) == got.key(h));
    ASSERT_EQ(expected.num_groups(h), got.num_groups(h));
    EXPECT_EQ(expected.Score(h, InterestingnessKind::kVariance),
              got.Score(h, InterestingnessKind::kVariance));  // exact doubles
    const std::vector<GroupResult>& ge = expected.stored_groups(h);
    const std::vector<GroupResult>& gg = got.stored_groups(h);
    ASSERT_EQ(ge.size(), gg.size());
    for (size_t g = 0; g < ge.size(); ++g) {
      EXPECT_EQ(ge[g].dim_values, gg[g].dim_values);
      EXPECT_EQ(ge[g].value, gg[g].value);  // exact, not approximate
    }
  }
}

TEST(ArmStreamTest, BitmapEngineMatchesSetCellReferenceAtEveryWorkerCount) {
  SyntheticOptions sopts;
  sopts.num_facts = 3000;
  sopts.dim_cardinality = {25, 12, 8};
  sopts.num_measures = 2;
  sopts.multi_valued_dims = {0, 1};
  sopts.multi_value_prob = 0.3;
  sopts.sparsity = 0.15;
  auto graph = GenerateSynthetic(sopts);
  AttributeStore db(graph.get());
  db.BuildDirectAttributes();
  TermId type = graph->dict().InternIri(synth::kFactType);
  CfsIndex cfs(graph->NodesOfType(type));

  LatticeSpec spec;
  for (int d = 0; d < 3; ++d) {
    spec.dims.push_back(*db.FindAttribute("dim" + std::to_string(d)));
  }
  std::sort(spec.dims.begin(), spec.dims.end());
  spec.measures.push_back(MeasureSpec{});  // count(*)
  AttrId m0 = *db.FindAttribute("measure0");
  AttrId m1 = *db.FindAttribute("measure1");
  spec.measures.push_back(MeasureSpec{m0, sparql::AggFunc::kSum});
  spec.measures.push_back(MeasureSpec{m0, sparql::AggFunc::kAvg});
  spec.measures.push_back(MeasureSpec{m1, sparql::AggFunc::kMin});
  spec.measures.push_back(MeasureSpec{m1, sparql::AggFunc::kMax});

  constexpr size_t kStoreAll = 1u << 20;
  constexpr int kChunk = 2;  // many partitions: real multi-slice runs
  Arm reference(kStoreAll);
  EvaluateLatticeWithSetCells(db, 0, cfs, spec, kChunk, &reference);
  ASSERT_GT(reference.num_aggregates(), 0u);

  MvdCubeOptions options;
  options.partition_chunk = kChunk;
  // simd axis: the reference folded through the scalar kernel, so the kAuto
  // leg pins the dispatched vector kernel (AVX2 here, NEON on ARM) to the
  // exact same bits — the no-tolerance scalar-vs-SIMD contract, end to end.
  for (simd::SimdMode mode : {simd::SimdMode::kScalar, simd::SimdMode::kAuto}) {
    for (size_t workers : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(std::string("simd = ") + simd::SimdModeName(mode) +
                   ", workers = " + std::to_string(workers));
      options.simd = mode;
      ThreadPool pool(workers);
      TaskScheduler scheduler(&pool);
      Arm arm(kStoreAll);
      MeasureCache measures;
      EvaluateLatticeMvd(db, 0, cfs, spec, options, &arm, &measures,
                         /*pruned=*/nullptr, /*pre_translated=*/nullptr,
                         /*pre_built=*/nullptr, /*pre_encodings=*/nullptr,
                         &scheduler, workers);
      ExpectSameArmStream(reference, arm);
    }
  }
}

// --- Arm::Absorb ----------------------------------------------------------

TEST(ArmAbsorbTest, MovesEntriesAndKeepsFirstWriter) {
  Arm target(8);
  Arm shard(8);
  AggregateKey k1{0, {1}, MeasureSpec{}};
  AggregateKey k2{1, {2}, MeasureSpec{}};
  Arm::Handle h1 = target.Register(k1);
  target.AddGroup(h1, {10}, 1.0);
  Arm::Handle h2 = shard.Register(k2);
  shard.AddGroup(h2, {20}, 2.0);
  // Duplicate of k1 in the shard: the target's entry must win.
  Arm::Handle dup = shard.Register(k1);
  shard.AddGroup(dup, {30}, 99.0);

  target.Absorb(std::move(shard));
  EXPECT_EQ(target.num_aggregates(), 2u);
  Arm::Handle f1 = target.Find(k1);
  ASSERT_NE(f1, Arm::kInvalidHandle);
  ASSERT_EQ(target.stored_groups(f1).size(), 1u);
  EXPECT_EQ(target.stored_groups(f1)[0].value, 1.0);
  EXPECT_NE(target.Find(k2), Arm::kInvalidHandle);
}

}  // namespace
}  // namespace spade
