#include "src/stats/attr_stats.h"

#include <gtest/gtest.h>

namespace spade {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  AttrId AddAttr(const std::string& name,
                 std::vector<std::pair<std::string, Term>> rows) {
    AttributeTable t;
    t.name = name;
    for (auto& [s, o] : rows) {
      t.AddRow(g.dict().InternIri(s), g.dict().Intern(o));
    }
    return db().AddAttribute(std::move(t));
  }
  AttributeStore& db() {
    if (!db_) db_ = std::make_unique<AttributeStore>(&g);
    return *db_;
  }
  Graph g;
  std::unique_ptr<AttributeStore> db_;
};

TEST_F(StatsTest, IntegerKindAndBounds) {
  AttrId a = AddAttr("age", {{"s1", Term::Literal("30")},
                             {"s2", Term::Literal("45")},
                             {"s3", Term::Literal("28")}});
  AttrStats st = ComputeAttrStats(db(), a);
  EXPECT_EQ(st.kind, ValueKind::kInteger);
  EXPECT_TRUE(st.numeric());
  EXPECT_EQ(st.num_subjects, 3u);
  EXPECT_EQ(st.num_values, 3u);
  EXPECT_EQ(st.num_distinct_values, 3u);
  EXPECT_EQ(st.num_multi_subjects, 0u);
  EXPECT_DOUBLE_EQ(st.min_value, 28);
  EXPECT_DOUBLE_EQ(st.max_value, 45);
}

TEST_F(StatsTest, DecimalKind) {
  AttrId a = AddAttr("price", {{"s1", Term::Literal("1.5")},
                               {"s2", Term::Literal("2")}});
  AttrStats st = ComputeAttrStats(db(), a);
  EXPECT_EQ(st.kind, ValueKind::kDecimal);
  EXPECT_TRUE(st.numeric());
}

TEST_F(StatsTest, DateKind) {
  AttrId a = AddAttr("birth", {{"s1", Term::Literal("1990-01-15")},
                               {"s2", Term::Literal("1985-12-31")}});
  AttrStats st = ComputeAttrStats(db(), a);
  EXPECT_EQ(st.kind, ValueKind::kDate);
  EXPECT_FALSE(st.numeric());
}

TEST_F(StatsTest, TextKindAndAvgLength) {
  AttrId a = AddAttr("desc", {{"s1", Term::Literal("hello world")},
                              {"s2", Term::Literal("another text value")}});
  AttrStats st = ComputeAttrStats(db(), a);
  EXPECT_EQ(st.kind, ValueKind::kText);
  EXPECT_NEAR(st.avg_text_length, (11 + 18) / 2.0, 0.01);
}

TEST_F(StatsTest, ReferenceKind) {
  AttrId a = AddAttr("knows", {{"s1", Term::Iri("o1")},
                               {"s2", Term::Iri("o2")}});
  AttrStats st = ComputeAttrStats(db(), a);
  EXPECT_EQ(st.kind, ValueKind::kReference);
}

TEST_F(StatsTest, MixedKind) {
  AttrId a = AddAttr("odd", {{"s1", Term::Literal("12")},
                             {"s2", Term::Iri("o")},
                             {"s3", Term::Literal("word-salad")}});
  AttrStats st = ComputeAttrStats(db(), a);
  EXPECT_EQ(st.kind, ValueKind::kMixed);
}

TEST_F(StatsTest, ToleratesFewStrays) {
  // 19 numbers and 1 string still count as integer (95% rule).
  std::vector<std::pair<std::string, Term>> rows;
  for (int i = 0; i < 19; ++i) {
    rows.push_back({"s" + std::to_string(i), Term::Literal(std::to_string(i))});
  }
  rows.push_back({"sX", Term::Literal("oops")});
  AttrId a = AddAttr("mostly", std::move(rows));
  EXPECT_EQ(ComputeAttrStats(db(), a).kind, ValueKind::kInteger);
}

TEST_F(StatsTest, MultiValuedDetection) {
  AttrId a = AddAttr("nat", {{"s1", Term::Iri("A")},
                             {"s1", Term::Iri("B")},
                             {"s2", Term::Iri("A")}});
  AttrStats st = ComputeAttrStats(db(), a);
  EXPECT_EQ(st.num_subjects, 2u);
  EXPECT_EQ(st.num_multi_subjects, 1u);
  EXPECT_TRUE(st.multi_valued());
  EXPECT_EQ(st.num_distinct_values, 2u);
}

TEST_F(StatsTest, EmptyAttr) {
  AttrId a = AddAttr("nothing", {});
  AttrStats st = ComputeAttrStats(db(), a);
  EXPECT_EQ(st.kind, ValueKind::kEmpty);
  EXPECT_EQ(st.num_subjects, 0u);
}

TEST_F(StatsTest, OnlineStatsRestrictToCfs) {
  AttrId a = AddAttr("nat", {{"s1", Term::Iri("A")},
                             {"s1", Term::Iri("B")},
                             {"s2", Term::Iri("A")},
                             {"s3", Term::Iri("C")}});
  Dictionary& d = g.dict();
  CfsIndex cfs({d.InternIri("s1"), d.InternIri("s2")});
  OnlineAttrStats st = ComputeOnlineStats(db(), cfs, a);
  EXPECT_EQ(st.support, 2u);
  EXPECT_EQ(st.num_values, 3u);
  EXPECT_EQ(st.num_distinct_values, 2u);  // C not visible from this CFS
  EXPECT_EQ(st.num_multi_facts, 1u);
  EXPECT_DOUBLE_EQ(st.SupportRatio(2), 1.0);
  EXPECT_DOUBLE_EQ(st.DistinctRatio(2), 1.0);
}

TEST_F(StatsTest, OnlineStatsZeroSupport) {
  AttrId a = AddAttr("p", {{"s1", Term::Literal("v")}});
  CfsIndex cfs({g.dict().InternIri("elsewhere")});
  OnlineAttrStats st = ComputeOnlineStats(db(), cfs, a);
  EXPECT_EQ(st.support, 0u);
  EXPECT_DOUBLE_EQ(st.SupportRatio(0), 0.0);
}

TEST(LooksLikeDateTest, Various) {
  EXPECT_TRUE(LooksLikeDate("2021-03-31"));
  EXPECT_FALSE(LooksLikeDate("2021-3-31"));
  EXPECT_FALSE(LooksLikeDate("20210331"));
  EXPECT_FALSE(LooksLikeDate("2021-03-31T00:00"));
  EXPECT_FALSE(LooksLikeDate("abcd-ef-gh"));
}

TEST(ValueKindTest, Names) {
  EXPECT_STREQ(ValueKindName(ValueKind::kInteger), "integer");
  EXPECT_STREQ(ValueKindName(ValueKind::kReference), "reference");
  EXPECT_STREQ(ValueKindName(ValueKind::kMixed), "mixed");
}

}  // namespace
}  // namespace spade
