// Tests of the TCP front end (src/net): protocol identity with pipe mode,
// admission control and load shedding, the connection failure domain
// (resets, injected I/O faults, SIGPIPE), backpressure against slow
// readers, idle defense, and the graceful-drain contract. This is the
// in-process half of the chaos suite; scripts/serve_chaos.py drives the
// same faults against the real spade_cli binary from outside.

#include "src/net/tcp_server.h"

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "src/core/spade.h"
#include "src/datagen/synthetic.h"
#include "src/net/line_client.h"
#include "src/net/net_util.h"
#include "src/util/failpoint.h"

#if defined(SPADE_NET_POSIX)
#include <sys/socket.h>
#endif

namespace spade {
namespace {

#if !defined(SPADE_NET_POSIX)

TEST(NetTest, UnsupportedPlatformDegradesGracefully) {
  EXPECT_FALSE(net::Supported());
}

#else  // SPADE_NET_POSIX

SyntheticOptions SmallCorpus() {
  SyntheticOptions sopts;
  sopts.num_facts = 3000;
  sopts.dim_cardinality.assign(3, 20);
  sopts.num_measures = 3;
  sopts.num_fact_types = 3;
  return sopts;
}

SpadeOptions BaseOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 8;
  options.enumeration.max_measures_per_lattice = 3;
  options.top_k = 8;
  return options;
}

/// One prepared pipeline shared by every test in the suite (building it is
/// the expensive part; the server only reads it).
class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = GenerateSynthetic(SmallCorpus()).release();
    spade_ = new Spade(graph_, BaseOptions());
    ASSERT_TRUE(spade_->RunOffline().ok());
    ASSERT_TRUE(spade_->PrepareFactSets().ok());
  }

  static void TearDownTestSuite() {
    delete spade_;
    spade_ = nullptr;
    delete graph_;
    graph_ = nullptr;
  }

  static net::TcpServerOptions Options() {
    net::TcpServerOptions opt;
    opt.listen.host = "127.0.0.1";
    opt.listen.port = 0;
    opt.serve.num_threads = 3;
    opt.install_signal_handlers = false;
    return opt;
  }

  static Graph* graph_;
  static Spade* spade_;
};

Graph* NetTest::graph_ = nullptr;
Spade* NetTest::spade_ = nullptr;

/// Runs a TcpServer on a background thread; Stop() drains and joins.
class TestServer {
 public:
  explicit TestServer(const Spade* spade, net::TcpServerOptions options)
      : server_(spade, std::move(options)) {}
  ~TestServer() { Stop(); }

  Status Start() {
    Status st = server_.Start();
    if (st.ok()) {
      thread_ = std::thread([this] { stats_ = server_.Run(); });
    }
    return st;
  }

  uint16_t port() const { return server_.port(); }
  void RequestShutdown() { server_.RequestShutdown(); }

  net::TcpServeStats Stop() {
    server_.RequestShutdown();
    if (thread_.joinable()) thread_.join();
    return stats_;
  }

 private:
  net::TcpServer server_;
  std::thread thread_;
  net::TcpServeStats stats_;
};

/// A raw (deliberately ill-behaved when asked) test client.
struct RawClient {
  int fd = -1;

  ~RawClient() { Close(); }

  void Connect(uint16_t port) {
    net::HostPort addr;
    addr.port = port;
    Result<int> r = net::ConnectTcp(addr, 2000);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    fd = *r;
  }

  bool Send(const std::string& bytes) {
    return net::SendAll(fd, bytes.data(), bytes.size(), 2000).ok();
  }

  /// Read until EOF (or per-read timeout), returning everything received.
  std::string ReadAll(double timeout_ms = 10000) {
    std::string all;
    char buf[4096];
    for (;;) {
      Result<size_t> n = net::RecvSome(fd, buf, sizeof(buf), timeout_ms);
      if (!n.ok() || *n == 0) return all;
      all.append(buf, *n);
    }
  }

  /// Read until `marker` has appeared `count` times (or timeout/EOF).
  std::string ReadUntil(const std::string& marker, size_t count,
                        double timeout_ms = 10000) {
    std::string all;
    char buf[4096];
    while (CountOf(all, marker) < count) {
      Result<size_t> n = net::RecvSome(fd, buf, sizeof(buf), timeout_ms);
      if (!n.ok() || *n == 0) break;
      all.append(buf, *n);
    }
    return all;
  }

  static size_t CountOf(const std::string& haystack,
                        const std::string& needle) {
    size_t count = 0;
    for (size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
      ++count;
    }
    return count;
  }

  void Close() {
    net::CloseFd(fd);
    fd = -1;
  }

  /// Close with an RST instead of FIN: what a crashing client looks like.
  void Reset() {
    if (fd < 0) return;
    struct linger lg;
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    Close();
  }
};

// --- Protocol identity ------------------------------------------------------

TEST_F(NetTest, TcpByteStreamIdenticalToPipeMode) {
  const std::string oversized(200, 'x');
  std::string requests;
  requests += "stats\r\n";  // CRLF client
  requests += "list\n";
  requests += "explore top=3\n";
  requests += "explore top=2 interestingness=skewness\n";
  requests += "explore cfs=bogus\n";
  requests += "not-a-command\n";
  requests += oversized + "\n";
  requests += "# a comment, skipped\n";
  requests += "\n";
  requests += "explore top=1 timeout=0\n";  // already-expired: truncated
  requests += "explore top=2 max-dims=2 min-support=0.2\n";
  requests += "quit\n";
  requests += "explore top=1\n";  // after quit: never evaluated

  persist::ServeOptions sopts;
  sopts.num_threads = 3;
  sopts.max_line_bytes = 64;

  // The reference bytes, from the pipe front end.
  persist::InsightServer pipe_server(spade_, sopts);
  std::istringstream in(requests);
  std::ostringstream out;
  persist::ServeStats pipe_stats = pipe_server.Serve(in, out);
  const std::string expected = out.str();
  ASSERT_NE(expected.find("#7 error: request line too long (200 bytes"),
            std::string::npos)
      << expected;
  ASSERT_NE(expected.find("truncated=deadline"), std::string::npos);

  // The same bytes over TCP, through the same HandleLine core. Caps are
  // raised so the whole pipelined burst is admitted — shedding behavior
  // (deliberately different from pipe mode's blocking backpressure) is
  // covered by the busy tests below.
  net::TcpServerOptions topt = Options();
  topt.serve.max_line_bytes = 64;
  topt.max_inflight = 64;
  topt.max_inflight_per_connection = 64;
  TestServer server(spade_, topt);
  ASSERT_TRUE(server.Start().ok());
  RawClient client;
  ASSERT_NO_FATAL_FAILURE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(requests));
  const std::string got = client.ReadAll();  // quit closes the connection
  EXPECT_EQ(expected, got);

  net::TcpServeStats stats = server.Stop();
  EXPECT_EQ(stats.serve.num_requests, pipe_stats.num_requests);
  EXPECT_EQ(stats.serve.num_errors, pipe_stats.num_errors);
  EXPECT_EQ(stats.serve.num_truncated, pipe_stats.num_truncated);
  EXPECT_EQ(stats.num_connections, 1u);
  EXPECT_EQ(stats.num_requests_shed, 0u);
  EXPECT_TRUE(stats.drained_clean);
}

TEST_F(NetTest, EofWithoutQuitAnswersEverythingAdmitted) {
  TestServer server(spade_, Options());
  ASSERT_TRUE(server.Start().ok());
  RawClient client;
  ASSERT_NO_FATAL_FAILURE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("stats\nlist\n"));
  ::shutdown(client.fd, SHUT_WR);  // half-close: EOF, requests stay answered
  const std::string got = client.ReadAll();
  EXPECT_EQ(RawClient::CountOf(got, "end\n"), 2u) << got;
  net::TcpServeStats stats = server.Stop();
  EXPECT_EQ(stats.serve.num_requests, 2u);
}

// --- Admission control and shedding ----------------------------------------

TEST_F(NetTest, PipelinedBurstBeyondInflightCapShedsWithBusy) {
  net::TcpServerOptions topt = Options();
  topt.max_inflight_per_connection = 1;  // admit one, shed the burst
  TestServer server(spade_, topt);
  ASSERT_TRUE(server.Start().ok());

  // Eight requests in one segment: the loop parses them in one sweep while
  // the first is still on a worker, so the cap must shed (no queueing).
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += "explore top=8\n";
  RawClient client;
  ASSERT_NO_FATAL_FAILURE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(burst));

  // Every request id answers exactly once: `ok ...end` or `busy`.
  std::string got;
  auto all_answered = [&got] {
    for (int id = 1; id <= 8; ++id) {
      const std::string prefix = "#" + std::to_string(id) + " ";
      if (got.find(prefix + "busy\n") == std::string::npos &&
          got.find(prefix + "end\n") == std::string::npos) {
        return false;
      }
    }
    return true;
  };
  char buf[4096];
  while (!all_answered()) {
    Result<size_t> n = net::RecvSome(client.fd, buf, sizeof(buf), 10000);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_GT(*n, 0u) << "server closed early:\n" << got;
    got.append(buf, *n);
  }
  client.Send("quit\n");
  net::TcpServeStats stats = server.Stop();
  EXPECT_GE(stats.num_requests_shed, 1u);
  EXPECT_EQ(stats.num_requests_shed + stats.serve.num_requests, 8u);
  EXPECT_TRUE(stats.drained_clean);
}

TEST_F(NetTest, ConnectionsBeyondCapAreShedAtAccept) {
  net::TcpServerOptions topt = Options();
  topt.max_connections = 1;
  TestServer server(spade_, topt);
  ASSERT_TRUE(server.Start().ok());

  RawClient first;
  ASSERT_NO_FATAL_FAILURE(first.Connect(server.port()));
  ASSERT_TRUE(first.Send("stats\n"));
  ASSERT_EQ(RawClient::CountOf(first.ReadUntil("end\n", 1), "end\n"), 1u);

  RawClient second;  // over the cap: one `busy` line, then close
  ASSERT_NO_FATAL_FAILURE(second.Connect(server.port()));
  EXPECT_EQ(second.ReadAll(), "busy\n");

  // The admitted connection is unaffected.
  ASSERT_TRUE(first.Send("list\n"));
  EXPECT_EQ(RawClient::CountOf(first.ReadUntil("end\n", 1), "end\n"), 1u);

  net::TcpServeStats stats = server.Stop();
  EXPECT_EQ(stats.num_connections, 1u);
  EXPECT_EQ(stats.num_connections_shed, 1u);
}

TEST_F(NetTest, LineClientRetriesBusyUntilAdmitted) {
  net::TcpServerOptions topt = Options();
  topt.max_connections = 1;
  TestServer server(spade_, topt);
  ASSERT_TRUE(server.Start().ok());

  // Hold the only admitted slot, then let a LineClient fight its way in.
  RawClient hog;
  ASSERT_NO_FATAL_FAILURE(hog.Connect(server.port()));
  ASSERT_TRUE(hog.Send("stats\n"));
  ASSERT_EQ(RawClient::CountOf(hog.ReadUntil("end\n", 1), "end\n"), 1u);

  net::LineClientOptions copt;
  copt.server.port = server.port();
  copt.backoff_base_ms = 10;
  copt.max_attempts = 50;
  net::LineClient client(copt);

  std::thread release([&hog] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    hog.Send("quit\n");
    hog.ReadAll(2000);  // drain until the server closes the connection
  });
  Result<std::string> reply = client.Request("stats");
  release.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->rfind("ok\n", 0), 0u) << *reply;
  EXPECT_GE(client.stats().num_busy, 1u);
  EXPECT_GE(client.stats().num_retries, 1u);
}

// --- Failure domain: one connection ----------------------------------------

TEST_F(NetTest, ClientResetMidResponseClosesOnlyThatConnection) {
  TestServer server(spade_, Options());
  ASSERT_TRUE(server.Start().ok());

  RawClient victim;
  ASSERT_NO_FATAL_FAILURE(victim.Connect(server.port()));
  ASSERT_TRUE(victim.Send("explore top=8\nexplore top=8\n"));
  victim.Reset();  // RST with replies (about to be) in flight

  // The server must shrug it off and keep serving everyone else.
  RawClient witness;
  ASSERT_NO_FATAL_FAILURE(witness.Connect(server.port()));
  ASSERT_TRUE(witness.Send("stats\nquit\n"));
  const std::string got = witness.ReadAll();
  EXPECT_EQ(RawClient::CountOf(got, "end\n"), 1u) << got;

  net::TcpServeStats stats = server.Stop();
  EXPECT_EQ(stats.num_connections, 2u);
  EXPECT_TRUE(stats.drained_clean);
}

TEST_F(NetTest, SigpipeIsSuppressedOnDeadSocketWrites) {
  // A raw write to a peer-closed socket raises SIGPIPE and kills the
  // process by default; the net layer must turn it into a Status instead
  // (MSG_NOSIGNAL plus the scoped process-wide suppression for platforms
  // without it). If suppression regressed, this test dies rather than
  // failing an expectation.
  net::ScopedIgnoreSigpipe guard;
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::CloseFd(sv[1]);
  const char byte = 'x';
  // First send may land in the dead peer's buffer; the second gets EPIPE.
  (void)net::SendSome(sv[0], &byte, 1);
  Result<size_t> second = net::SendSome(sv[0], &byte, 1);
  EXPECT_FALSE(second.ok());
  net::CloseFd(sv[0]);
}

TEST_F(NetTest, SlowReaderIsBackpressuredNotDropped) {
  net::TcpServerOptions topt = Options();
  topt.max_connection_output_bytes = 256;  // force the pause path
  TestServer server(spade_, topt);
  ASSERT_TRUE(server.Start().ok());

  RawClient client;
  ASSERT_NO_FATAL_FAILURE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("explore top=8\nlist\nexplore top=8\nstats\n"));
  // Don't read yet: let responses pile into the (tiny) output budget.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Now drain: every block must arrive complete and in request order.
  const std::string got = client.ReadUntil("end\n", 4);
  EXPECT_EQ(RawClient::CountOf(got, "end\n"), 4u) << got;
  const size_t first = got.find("#1 ");
  const size_t last = got.rfind("#4 ");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  EXPECT_LT(first, last);
  client.Send("quit\n");
  net::TcpServeStats stats = server.Stop();
  EXPECT_EQ(stats.serve.num_requests, 4u);
  EXPECT_EQ(stats.num_io_errors, 0u);
}

TEST_F(NetTest, IdleConnectionsAreClosed) {
  net::TcpServerOptions topt = Options();
  topt.idle_timeout_ms = 100;
  TestServer server(spade_, topt);
  ASSERT_TRUE(server.Start().ok());

  RawClient slowloris;
  ASSERT_NO_FATAL_FAILURE(slowloris.Connect(server.port()));
  // Never send a newline; the server must not hold the socket forever.
  ASSERT_TRUE(slowloris.Send("explo"));
  EXPECT_EQ(slowloris.ReadAll(5000), "");  // closed without a reply

  net::TcpServeStats stats = server.Stop();
  EXPECT_EQ(stats.num_idle_closed, 1u);
  EXPECT_EQ(stats.serve.num_requests, 0u);
}

// --- Graceful drain ---------------------------------------------------------

TEST_F(NetTest, ShutdownDrainsInFlightRepliesBeforeClosing) {
  TestServer server(spade_, Options());
  ASSERT_TRUE(server.Start().ok());

  RawClient client;
  ASSERT_NO_FATAL_FAILURE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("explore top=8\nexplore top=4\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.RequestShutdown();

  // Both admitted requests answer in full, then the server closes.
  const std::string got = client.ReadAll();
  EXPECT_EQ(RawClient::CountOf(got, "end\n"), 2u) << got;
  net::TcpServeStats stats = server.Stop();
  EXPECT_EQ(stats.serve.num_requests, 2u);
  EXPECT_TRUE(stats.drained_clean);
}

TEST_F(NetTest, SigtermTriggersGracefulDrain) {
  net::TcpServerOptions topt = Options();
  topt.install_signal_handlers = true;
  TestServer server(spade_, topt);
  ASSERT_TRUE(server.Start().ok());

  RawClient client;
  ASSERT_NO_FATAL_FAILURE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("stats\n"));
  ASSERT_EQ(RawClient::CountOf(client.ReadUntil("end\n", 1), "end\n"), 1u);

  std::raise(SIGTERM);  // the installed handler must drain, not kill, us
  EXPECT_EQ(client.ReadAll(), "");  // server closed the connection
  net::TcpServeStats stats = server.Stop();
  EXPECT_TRUE(stats.drained_clean);
  EXPECT_EQ(stats.serve.num_requests, 1u);
}

// --- Injected I/O faults (the failpoint chaos tier) -------------------------

#if defined(SPADE_FAILPOINTS)

class NetFailpointTest : public NetTest {
 protected:
  void TearDown() override { fail::Reset(); }
};

TEST_F(NetFailpointTest, InjectedReadFaultCostsOneConnection) {
  TestServer server(spade_, Options());
  ASSERT_TRUE(server.Start().ok());
  // Warm the read path so the site is registered, then arm it.
  RawClient warm;
  ASSERT_NO_FATAL_FAILURE(warm.Connect(server.port()));
  ASSERT_TRUE(warm.Send("stats\nquit\n"));
  warm.ReadAll();

  ASSERT_TRUE(fail::Configure("serve.read=error").ok());
  RawClient victim;
  ASSERT_NO_FATAL_FAILURE(victim.Connect(server.port()));
  victim.Send("stats\n");
  EXPECT_EQ(victim.ReadAll(5000), "");  // closed without a reply

  ASSERT_TRUE(fail::Configure("serve.read=off").ok());
  RawClient witness;
  ASSERT_NO_FATAL_FAILURE(witness.Connect(server.port()));
  ASSERT_TRUE(witness.Send("stats\nquit\n"));
  EXPECT_EQ(RawClient::CountOf(witness.ReadAll(), "end\n"), 1u);

  net::TcpServeStats stats = server.Stop();
  EXPECT_GE(stats.num_io_errors, 1u);
  EXPECT_TRUE(stats.drained_clean);
}

TEST_F(NetFailpointTest, InjectedWriteFaultCostsOneConnection) {
  TestServer server(spade_, Options());
  ASSERT_TRUE(server.Start().ok());
  RawClient warm;
  ASSERT_NO_FATAL_FAILURE(warm.Connect(server.port()));
  ASSERT_TRUE(warm.Send("stats\nquit\n"));
  warm.ReadAll();

  ASSERT_TRUE(fail::Configure("serve.write=error").ok());
  RawClient victim;
  ASSERT_NO_FATAL_FAILURE(victim.Connect(server.port()));
  victim.Send("stats\n");
  EXPECT_EQ(victim.ReadAll(5000), "");  // reply write failed; closed

  ASSERT_TRUE(fail::Configure("serve.write=off").ok());
  RawClient witness;
  ASSERT_NO_FATAL_FAILURE(witness.Connect(server.port()));
  ASSERT_TRUE(witness.Send("list\nquit\n"));
  EXPECT_EQ(RawClient::CountOf(witness.ReadAll(), "end\n"), 1u);

  net::TcpServeStats stats = server.Stop();
  EXPECT_GE(stats.num_io_errors, 1u);
  EXPECT_TRUE(stats.drained_clean);
}

TEST_F(NetFailpointTest, InjectedAcceptFaultKeepsTheServerAlive) {
  TestServer server(spade_, Options());
  ASSERT_TRUE(server.Start().ok());
  RawClient warm;
  ASSERT_NO_FATAL_FAILURE(warm.Connect(server.port()));
  ASSERT_TRUE(warm.Send("stats\nquit\n"));
  warm.ReadAll();

  ASSERT_TRUE(fail::Configure("serve.accept=error:1").ok());
  // The first accept sweep for this connection fails; the connection stays
  // queued and the next sweep picks it up — the fault costs a retry, never
  // the listener.
  RawClient unlucky;
  ASSERT_NO_FATAL_FAILURE(unlucky.Connect(server.port()));
  ASSERT_TRUE(unlucky.Send("stats\nquit\n"));
  EXPECT_EQ(RawClient::CountOf(unlucky.ReadAll(), "end\n"), 1u);

  ASSERT_TRUE(fail::Configure("serve.accept=off").ok());
  RawClient witness;
  ASSERT_NO_FATAL_FAILURE(witness.Connect(server.port()));
  ASSERT_TRUE(witness.Send("stats\nquit\n"));
  EXPECT_EQ(RawClient::CountOf(witness.ReadAll(), "end\n"), 1u);

  net::TcpServeStats stats = server.Stop();
  EXPECT_GE(stats.num_io_errors, 1u);
  EXPECT_TRUE(stats.drained_clean);
}

TEST_F(NetFailpointTest, RequestEvaluationFaultAnswersErrorBlock) {
  // A fault inside evaluation is a REQUEST failure, not a connection one:
  // the client gets an `error:` block and the session keeps going.
  TestServer server(spade_, Options());
  ASSERT_TRUE(server.Start().ok());
  RawClient client;
  ASSERT_NO_FATAL_FAILURE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("stats\n"));  // registers serve.request
  ASSERT_EQ(RawClient::CountOf(client.ReadUntil("end\n", 1), "end\n"), 1u);

  // Arm and fire sequentially (concurrent requests would race for the
  // one-shot hit): the faulted request errors, the next one succeeds.
  ASSERT_TRUE(fail::Configure("serve.request=throw:1").ok());
  ASSERT_TRUE(client.Send("explore top=1\n"));
  const std::string faulted = client.ReadUntil("fired\n", 1);
  EXPECT_NE(faulted.find("#2 error: internal error: failpoint"),
            std::string::npos)
      << faulted;
  ASSERT_TRUE(client.Send("stats\nquit\n"));
  const std::string got = client.ReadAll();
  EXPECT_NE(got.find("#3 ok"), std::string::npos) << got;

  net::TcpServeStats stats = server.Stop();
  EXPECT_EQ(stats.num_io_errors, 0u);
  EXPECT_EQ(stats.serve.num_errors, 1u);
}

#endif  // SPADE_FAILPOINTS

#endif  // SPADE_NET_POSIX

}  // namespace
}  // namespace spade
