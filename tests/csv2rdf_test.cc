#include "src/rdf/csv2rdf.h"

#include <gtest/gtest.h>

#include "src/core/spade.h"
#include "src/stats/attr_stats.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace spade {
namespace {

TEST(SplitCsvRecordTest, PlainFields) {
  auto r = SplitCsvRecord("a,b,c", ',');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitCsvRecordTest, EmptyFieldsKept) {
  auto r = SplitCsvRecord(",x,,", ',');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"", "x", "", ""}));
}

TEST(SplitCsvRecordTest, QuotedFieldsWithSeparatorsAndQuotes) {
  auto r = SplitCsvRecord(R"("a,b","say ""hi""",plain)", ',');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a,b", "say \"hi\"", "plain"}));
}

TEST(SplitCsvRecordTest, CrlfTolerated) {
  auto r = SplitCsvRecord("a,b\r", ',');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b"}));
}

TEST(SplitCsvRecordTest, AlternativeSeparator) {
  auto r = SplitCsvRecord("a;b;c", ';');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(SplitCsvRecordTest, Malformed) {
  EXPECT_FALSE(SplitCsvRecord("\"unterminated", ',').ok());
  EXPECT_FALSE(SplitCsvRecord("ab\"cd", ',').ok());
}

TEST(CsvToRdfTest, RowsBecomeTypedFacts) {
  Graph g;
  Csv2RdfOptions opts;
  auto rows = CsvToRdfString(
      "carrier,delay,origin\n"
      "AA,12,ATL\n"
      "DL,3.5,LAX\n",
      opts, &g);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(*rows, 2u);
  // 2 type triples + 6 property triples.
  EXPECT_EQ(g.NumTriples(), 8u);
  TermId type = *g.dict().Lookup(Term::Iri("http://csv.spade/Row"));
  EXPECT_EQ(g.NodesOfType(type).size(), 2u);
}

TEST(CsvToRdfTest, NumericTyping) {
  Graph g;
  auto rows = CsvToRdfString("n,d,s\n42,2.5,hello\n", Csv2RdfOptions(), &g);
  ASSERT_TRUE(rows.ok());
  TermId row = *g.dict().Lookup(Term::Iri("http://csv.spade/row/0"));
  auto check = [&](const char* prop, const char* lex, const char* datatype) {
    std::vector<TermId> vals =
        g.Objects(row, *g.dict().Lookup(Term::Iri(std::string("http://csv.spade/") + prop)));
    ASSERT_EQ(vals.size(), 1u) << prop;
    const Term& t = g.dict().Get(vals[0]);
    EXPECT_EQ(t.lexical, lex) << prop;
    if (datatype == nullptr) {
      EXPECT_EQ(t.datatype, kInvalidTerm);
    } else {
      EXPECT_EQ(g.dict().Get(t.datatype).lexical, datatype) << prop;
    }
  };
  check("n", "42", vocab::kXsdInteger);
  check("d", "2.5", vocab::kXsdDouble);
  check("s", "hello", nullptr);
}

TEST(CsvToRdfTest, EmptyFieldsProduceNoTriples) {
  // RDF heterogeneity: absence, not NULL — exactly what the pipeline's
  // missing-dimension handling expects.
  Graph g;
  auto rows = CsvToRdfString("a,b\n1,\n,2\n", Csv2RdfOptions(), &g);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 2u);
  EXPECT_EQ(g.NumTriples(), 4u);  // 2 types + one `a` + one `b`
}

TEST(CsvToRdfTest, HeaderSanitization) {
  Graph g;
  auto rows = CsvToRdfString("dep delay (min),ok\n5,x\n", Csv2RdfOptions(), &g);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(
      g.dict().Lookup(Term::Iri("http://csv.spade/dep_delay_min")).has_value());
}

TEST(CsvToRdfTest, NoHeaderMode) {
  Graph g;
  Csv2RdfOptions opts;
  opts.header = false;
  auto rows = CsvToRdfString("1,2\n3,4\n", opts, &g);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 2u);
  EXPECT_TRUE(g.dict().Lookup(Term::Iri("http://csv.spade/col0")).has_value());
}

TEST(CsvToRdfTest, FieldCountMismatchFails) {
  Graph g;
  auto rows = CsvToRdfString("a,b\n1,2,3\n", Csv2RdfOptions(), &g);
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos);
}

TEST(CsvToRdfTest, EndToEndThroughSpade) {
  // The Airline story: a relational table converted to RDF and analyzed.
  std::string csv = "carrier,month,delay\n";
  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const char* carriers[] = {"AA", "DL", "UA", "WN"};
    double delay = 10 + 5 * rng.NextGaussian() +
                   (rng.Bernoulli(0.05) ? 120 : 0);
    csv += std::string(carriers[rng.Uniform(4)]) + "," +
           std::to_string(1 + rng.Uniform(12)) + "," +
           FormatDouble(delay < 0 ? 0 : delay, 1) + "\n";
  }
  Graph g;
  auto rows = CsvToRdfString(csv, Csv2RdfOptions(), &g);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(*rows, 400u);

  SpadeOptions options;
  options.cfs.min_size = 50;
  options.top_k = 3;
  Spade spade(&g, options);
  ASSERT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  ASSERT_TRUE(insights.ok());
  EXPECT_FALSE(insights->empty());
  // The flat table derives nothing, like the paper's Airline row.
  EXPECT_EQ(spade.report().derivations.total(), 0u);
}

}  // namespace
}  // namespace spade
