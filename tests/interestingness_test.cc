#include "src/core/interestingness.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace spade {
namespace {

TEST(VarianceTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(Variance({1, 2, 3, 4}), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(Variance({5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({7}), 0.0);
}

TEST(SkewnessTest, SymmetricIsZero) {
  EXPECT_NEAR(Skewness({1, 2, 3, 4, 5}), 0.0, 1e-12);
  EXPECT_NEAR(Skewness({-3, 0, 3}), 0.0, 1e-12);
}

TEST(SkewnessTest, RightTailPositive) {
  EXPECT_GT(Skewness({1, 1, 1, 1, 100}), 1.0);
  EXPECT_LT(Skewness({-100, 1, 1, 1, 1}), -1.0);
}

TEST(SkewnessTest, ScaleAndShiftInvariant) {
  std::vector<double> base = {1, 4, 9, 16, 25};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(3.0 * v + 17.0);
  EXPECT_NEAR(Skewness(base), Skewness(scaled), 1e-12);
}

TEST(KurtosisTest, UniformIsPlatykurtic) {
  // Excess kurtosis of a discrete uniform sample is negative.
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_LT(Kurtosis(v), 0.0);
}

TEST(KurtosisTest, HeavyTailPositive) {
  std::vector<double> v(100, 0.0);
  v[0] = 50;
  v[99] = -50;
  EXPECT_GT(Kurtosis(v), 3.0);
}

TEST(KurtosisTest, NormalSampleNearZero) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.NextGaussian());
  EXPECT_NEAR(Kurtosis(v), 0.0, 0.15);
}

TEST(InterestingnessTest, DispatchAndAbsoluteValue) {
  std::vector<double> left_skewed = {-100, 1, 1, 1, 1};
  EXPECT_GT(Interestingness(InterestingnessKind::kSkewness, left_skewed), 0.0);
  EXPECT_DOUBLE_EQ(Interestingness(InterestingnessKind::kVariance, {1, 3}),
                   Variance({1, 3}));
}

TEST(InterestingnessTest, Names) {
  EXPECT_STREQ(InterestingnessName(InterestingnessKind::kVariance), "variance");
  EXPECT_STREQ(InterestingnessName(InterestingnessKind::kSkewness), "skewness");
  EXPECT_STREQ(InterestingnessName(InterestingnessKind::kKurtosis), "kurtosis");
}

// Gradients checked against central finite differences.
class GradientTest
    : public ::testing::TestWithParam<InterestingnessKind> {};

TEST_P(GradientTest, MatchesFiniteDifferences) {
  InterestingnessKind kind = GetParam();
  std::vector<double> y = {2.0, 5.0, 3.5, 9.0, 4.0, 7.5};
  std::vector<double> grad = InterestingnessGradient(kind, y);
  auto h_at = [&](const std::vector<double>& v) {
    switch (kind) {
      case InterestingnessKind::kVariance:
        return Variance(v);
      case InterestingnessKind::kSkewness:
        return Skewness(v);
      case InterestingnessKind::kKurtosis:
        return Kurtosis(v);
    }
    return 0.0;
  };
  const double eps = 1e-6;
  for (size_t s = 0; s < y.size(); ++s) {
    std::vector<double> up = y, down = y;
    up[s] += eps;
    down[s] -= eps;
    double numeric = (h_at(up) - h_at(down)) / (2 * eps);
    EXPECT_NEAR(grad[s], numeric, 1e-4) << "component " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GradientTest,
                         ::testing::Values(InterestingnessKind::kVariance,
                                           InterestingnessKind::kSkewness,
                                           InterestingnessKind::kKurtosis));

TEST(GradientTest, DegenerateInputsReturnZeros) {
  EXPECT_EQ(InterestingnessGradient(InterestingnessKind::kVariance, {1.0}),
            (std::vector<double>{0.0}));
  EXPECT_EQ(
      InterestingnessGradient(InterestingnessKind::kSkewness, {2.0, 2.0}),
      (std::vector<double>{0.0, 0.0}));  // zero variance
}

TEST(OnlineMomentsTest, MatchesBatchFunctions) {
  Rng rng(11);
  std::vector<double> values;
  OnlineMoments om;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.NextGaussian() * 3 + (rng.Bernoulli(0.1) ? 20 : 0);
    values.push_back(v);
    om.Add(v);
  }
  EXPECT_EQ(om.count(), values.size());
  EXPECT_NEAR(om.variance(), Variance(values), 1e-8 * Variance(values));
  EXPECT_NEAR(om.skewness(), Skewness(values), 1e-8);
  EXPECT_NEAR(om.kurtosis(), Kurtosis(values), 1e-8);
}

TEST(OnlineMomentsTest, TracksMinMax) {
  OnlineMoments om;
  for (double v : {3.0, -1.0, 7.0, 2.0}) om.Add(v);
  EXPECT_DOUBLE_EQ(om.min(), -1.0);
  EXPECT_DOUBLE_EQ(om.max(), 7.0);
  EXPECT_DOUBLE_EQ(om.mean(), 2.75);
}

TEST(OnlineMomentsTest, ScoreDispatch) {
  OnlineMoments om;
  for (double v : {1.0, 2.0, 3.0, 40.0}) om.Add(v);
  EXPECT_DOUBLE_EQ(om.Score(InterestingnessKind::kVariance), om.variance());
  EXPECT_DOUBLE_EQ(om.Score(InterestingnessKind::kSkewness),
                   std::fabs(om.skewness()));
  EXPECT_DOUBLE_EQ(om.Score(InterestingnessKind::kKurtosis),
                   std::fabs(om.kurtosis()));
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.841344746), 1.0, 1e-6);
}

TEST(NormalQuantileTest, Monotone) {
  double prev = NormalQuantile(0.001);
  for (double p = 0.01; p < 1.0; p += 0.01) {
    double q = NormalQuantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

}  // namespace
}  // namespace spade
