// Streaming-ingest coverage: the pull/chunk parser APIs (chunk boundaries,
// empty chunks, mid-stream errors with absolute line numbers), the chunked
// store build (byte-identical to the sequential build at every chunk size
// and thread count), and the end-to-end acceptance matrix — streamed
// offline phase vs the sequential oracle at chunk sizes {1, 4096} x
// threads {1, 4}, identical SpadeReport counts and insight stream.

#include "src/ingest/ingest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/spade.h"
#include "src/datagen/synthetic.h"
#include "src/ingest/chunk_source.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/turtle.h"
#include "src/stats/attr_stats.h"
#include "src/store/attribute_store.h"

namespace spade {
namespace {

// --- Shared helpers -------------------------------------------------------

/// Serialize a graph as N-Triples text (the bench/test ingest corpus).
std::string ToNTriples(const Graph& graph) {
  std::ostringstream out;
  NTriplesWriter::Write(graph, out);
  return out.str();
}

std::string SmallSyntheticNt(size_t facts = 200, size_t types = 2) {
  SyntheticOptions opts;
  opts.num_facts = facts;
  opts.dim_cardinality = {8, 5};
  opts.num_measures = 2;
  opts.num_fact_types = types;
  auto graph = GenerateSynthetic(opts);
  return ToNTriples(*graph);
}

/// The sequential oracle: parse + BuildDirectAttributes + per-attribute
/// statistics, exactly the RunOffline() sequence for these stages.
struct SequentialBuild {
  std::unique_ptr<Graph> graph = std::make_unique<Graph>();
  std::unique_ptr<AttributeStore> store;
  std::vector<AttrStats> stats;
};

SequentialBuild BuildSequential(const std::string& nt) {
  SequentialBuild out;
  EXPECT_TRUE(NTriplesReader::ParseString(nt, out.graph.get()).ok());
  out.store = std::make_unique<AttributeStore>(out.graph.get());
  out.store->BuildDirectAttributes();
  for (AttrId a = 0; a < out.store->num_attributes(); ++a) {
    out.stats.push_back(ComputeAttrStats(*out.store, a));
  }
  return out;
}

/// The streamed build of the same document.
struct StreamingBuild {
  std::unique_ptr<Graph> graph = std::make_unique<Graph>();
  std::unique_ptr<AttributeStore> store;
  std::vector<AttrStats> stats;
  IngestStats ingest;
};

StreamingBuild BuildStreaming(const std::string& nt, size_t chunk,
                              size_t threads) {
  StreamingBuild out;
  out.store = std::make_unique<AttributeStore>(out.graph.get());
  std::istringstream in(nt);
  NTriplesChunkSource source(in, out.graph.get());
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
  TaskScheduler scheduler(pool.get());
  IngestOptions options;
  options.enabled = true;
  options.chunk_triples = chunk;
  EXPECT_TRUE(RunStreamingIngest(&source, out.graph.get(), out.store.get(),
                                 &out.stats, &scheduler, options, {},
                                 &out.ingest)
                  .ok());
  return out;
}

void ExpectTablesByteIdentical(const AttributeTable& a,
                               const AttributeTable& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.property, b.property);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_subjects(), b.num_subjects());
  EXPECT_TRUE(std::equal(a.subjects().begin(), a.subjects().end(),
                         b.subjects().begin()));
  EXPECT_TRUE(std::equal(a.objects().begin(), a.objects().end(),
                         b.objects().begin()));
  for (size_t i = 0; i < a.num_subjects(); ++i) {
    ASSERT_EQ(a.values(i).size(), b.values(i).size()) << "subject " << i;
  }
}

void ExpectStoresByteIdentical(const AttributeStore& a,
                               const AttributeStore& b) {
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (AttrId id = 0; id < a.num_attributes(); ++id) {
    SCOPED_TRACE("attribute " + std::to_string(id));
    ExpectTablesByteIdentical(a.attribute(id), b.attribute(id));
  }
}

void ExpectStatsIdentical(const std::vector<AttrStats>& a,
                          const std::vector<AttrStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("attribute " + std::to_string(i));
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].num_subjects, b[i].num_subjects);
    EXPECT_EQ(a[i].num_values, b[i].num_values);
    EXPECT_EQ(a[i].num_distinct_values, b[i].num_distinct_values);
    EXPECT_EQ(a[i].num_multi_subjects, b[i].num_multi_subjects);
    EXPECT_EQ(a[i].min_value, b[i].min_value);    // exact doubles
    EXPECT_EQ(a[i].max_value, b[i].max_value);
    EXPECT_EQ(a[i].avg_text_length, b[i].avg_text_length);
  }
}

// --- N-Triples chunk reader -----------------------------------------------

TEST(NTriplesChunkReaderTest, ChunksRespectBudgetAndCoverTheDocument) {
  const std::string nt =
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "# comment\n"
      "<http://x/b> <http://x/p> \"v\" .\n"
      "\n"
      "<http://x/c> <http://x/q> \"3\" .\n"
      "<http://x/d> <http://x/q> \"4\" .\n"
      "<http://x/e> <http://x/q> \"5\" .\n";

  Graph streamed;
  std::istringstream in(nt);
  NTriplesChunkReader reader(in, &streamed);
  std::vector<Triple> chunk;
  std::vector<size_t> sizes;
  bool done = false;
  while (!done) {
    ASSERT_TRUE(reader.NextChunk(2, &chunk, &done).ok());
    if (!chunk.empty()) sizes.push_back(chunk.size());
    for (const Triple& t : chunk) streamed.Add(t);
  }
  streamed.Freeze();
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 2, 1}));

  Graph sequential;
  ASSERT_TRUE(NTriplesReader::ParseString(nt, &sequential).ok());
  ASSERT_EQ(sequential.NumTriples(), streamed.NumTriples());
  // Same interning order => the triple lists match id for id.
  for (size_t i = 0; i < sequential.triples().size(); ++i) {
    EXPECT_TRUE(sequential.triples()[i] == streamed.triples()[i]);
  }
  EXPECT_EQ(sequential.dict().size(), streamed.dict().size());
}

TEST(NTriplesChunkReaderTest, EmptyAndCommentOnlyInput) {
  Graph graph;
  std::istringstream in("# nothing here\n\n# end\n");
  NTriplesChunkReader reader(in, &graph);
  std::vector<Triple> chunk;
  bool done = false;
  ASSERT_TRUE(reader.NextChunk(8, &chunk, &done).ok());
  EXPECT_TRUE(chunk.empty());
  EXPECT_TRUE(done);
}

TEST(NTriplesChunkReaderTest, MidStreamErrorCarriesAbsoluteLineNumber) {
  const std::string nt =
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "<http://x/b> <http://x/p> <http://x/c> .\n"
      "# fine so far\n"
      "<http://x/c> <http://x/p> oops .\n";
  Graph graph;
  std::istringstream in(nt);
  NTriplesChunkReader reader(in, &graph);
  std::vector<Triple> chunk;
  bool done = false;
  ASSERT_TRUE(reader.NextChunk(1, &chunk, &done).ok());  // line 1
  ASSERT_EQ(chunk.size(), 1u);
  ASSERT_FALSE(done);
  ASSERT_TRUE(reader.NextChunk(1, &chunk, &done).ok());  // line 2
  Status st = reader.NextChunk(1, &chunk, &done);        // hits line 4
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 4"), std::string::npos) << st.ToString();
  EXPECT_TRUE(done);
  // The error latches: the stream stays failed.
  EXPECT_FALSE(reader.NextChunk(1, &chunk, &done).ok());
}

// --- Turtle chunk reader --------------------------------------------------

TEST(TurtleChunkReaderTest, DirectivesAndStatementsSpanChunkBoundaries) {
  const std::string ttl =
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b .\n"
      "ex:a ex:q \"x\", \"y\" ;\n"
      "     ex:r 3 .\n"
      "# comment between statements\n"
      "@prefix f: <http://f.org/> .\n"
      "f:c a ex:T .\n";

  Graph sequential;
  ASSERT_TRUE(TurtleReader::ParseString(ttl, &sequential).ok());

  // Budget 1: every chunk is exactly one statement's triples; the @prefix
  // from chunk 0 must still resolve names in the last chunk.
  Graph streamed;
  TurtleChunkReader reader(ttl, &streamed);
  std::vector<Triple> chunk;
  std::vector<size_t> sizes;
  bool done = false;
  while (!done) {
    ASSERT_TRUE(reader.NextChunk(1, &chunk, &done).ok());
    if (!chunk.empty()) sizes.push_back(chunk.size());
    for (const Triple& t : chunk) streamed.Add(t);
  }
  streamed.Freeze();
  // Statement 2 expands to three triples (object list + predicate list) and
  // must not be torn across chunks.
  EXPECT_EQ(sizes, (std::vector<size_t>{1, 3, 1}));
  ASSERT_EQ(sequential.NumTriples(), streamed.NumTriples());
  for (size_t i = 0; i < sequential.triples().size(); ++i) {
    EXPECT_TRUE(sequential.triples()[i] == streamed.triples()[i]);
  }
}

TEST(TurtleChunkReaderTest, MidStreamErrorCarriesLineNumber) {
  const std::string ttl =
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b .\n"
      "ex:a ex:p\n"
      "     unknownprefix:x .\n";
  Graph graph;
  TurtleChunkReader reader(ttl, &graph);
  std::vector<Triple> chunk;
  bool done = false;
  ASSERT_TRUE(reader.NextChunk(1, &chunk, &done).ok());
  ASSERT_EQ(chunk.size(), 1u);
  Status st = reader.NextChunk(1, &chunk, &done);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 4"), std::string::npos) << st.ToString();
  // Latches.
  EXPECT_FALSE(reader.NextChunk(1, &chunk, &done).ok());
}

// --- Chunked store build vs the sequential oracle -------------------------

TEST(StreamingIngestTest, StoreAndStatsIdenticalAtEveryChunkSize) {
  const std::string nt = SmallSyntheticNt();
  SequentialBuild sequential = BuildSequential(nt);
  ASSERT_GT(sequential.store->num_attributes(), 0u);

  for (size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("chunk = " + std::to_string(chunk) +
                   ", threads = " + std::to_string(threads));
      StreamingBuild streamed = BuildStreaming(nt, chunk, threads);
      EXPECT_EQ(streamed.graph->NumTriples(), sequential.graph->NumTriples());
      ExpectStoresByteIdentical(*sequential.store, *streamed.store);
      ExpectStatsIdentical(sequential.stats, streamed.stats);
      EXPECT_GT(streamed.ingest.num_chunks, 0u);
      EXPECT_LE(streamed.ingest.peak_chunk_triples,
                std::max(chunk, size_t{1}));
    }
  }
}

TEST(StreamingIngestTest, EmptyChunksAreNotEndOfStream) {
  // A source that interleaves empty chunks (a comment-only stretch of
  // input) must not terminate or disturb the build.
  Graph reference;
  Graph streamed;
  std::vector<Triple> triples;
  for (Graph* g : {&reference, &streamed}) {
    Dictionary& d = g->dict();
    TermId p = d.InternIri("http://x/p");
    TermId q = d.InternIri("http://x/q");
    std::vector<Triple> local;
    for (int i = 0; i < 10; ++i) {
      TermId s = d.InternIri("http://x/s" + std::to_string(i));
      local.push_back(Triple{s, p, d.InternInteger(i)});
      if (i % 2 == 0) local.push_back(Triple{s, q, d.InternString("v")});
    }
    triples = local;  // identical intern order => identical ids
  }
  for (const Triple& t : triples) reference.Add(t);
  reference.Freeze();
  AttributeStore ref_store(&reference);
  ref_store.BuildDirectAttributes();

  VectorChunkSource source({{triples.begin(), triples.begin() + 3},
                            {},
                            {triples.begin() + 3, triples.begin() + 4},
                            {},
                            {},
                            {triples.begin() + 4, triples.end()}});
  AttributeStore store(&streamed);
  std::vector<AttrStats> stats;
  IngestStats istats;
  TaskScheduler serial(nullptr);
  IngestOptions options;
  options.chunk_triples = 4;
  ASSERT_TRUE(RunStreamingIngest(&source, &streamed, &store, &stats, &serial,
                                 options, {}, &istats)
                  .ok());
  EXPECT_EQ(istats.num_chunks, 3u);  // empty chunks are skipped, not counted
  EXPECT_EQ(streamed.NumTriples(), reference.NumTriples());
  ExpectStoresByteIdentical(ref_store, store);
}

TEST(StreamingIngestTest, ParseErrorPropagatesWithLineNumber) {
  const std::string nt =
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "not a triple\n";
  Graph graph;
  AttributeStore store(&graph);
  std::vector<AttrStats> stats;
  IngestStats istats;
  std::istringstream in(nt);
  NTriplesChunkSource source(in, &graph);
  TaskScheduler serial(nullptr);
  Status st = RunStreamingIngest(&source, &graph, &store, &stats, &serial,
                                 IngestOptions{}, {}, &istats);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
  EXPECT_EQ(store.num_attributes(), 0u);  // store left unbuilt
}

// --- End-to-end pipeline: acceptance matrix -------------------------------

struct PipelineOutcome {
  std::vector<Insight> insights;
  SpadeReport report;
  std::unique_ptr<Graph> graph;
  std::unique_ptr<Spade> spade;
};

PipelineOutcome RunPipeline(const std::string& nt, bool streaming,
                            size_t chunk, size_t threads,
                            bool saturate = false) {
  PipelineOutcome out;
  out.graph = std::make_unique<Graph>();
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 2;
  options.top_k = 8;
  options.num_threads = threads;
  options.saturate = saturate;
  options.ingest.enabled = streaming;
  options.ingest.chunk_triples = chunk;
  out.spade = std::make_unique<Spade>(out.graph.get(), options);
  std::istringstream in(nt);
  NTriplesChunkSource source(in, out.graph.get());
  EXPECT_TRUE(out.spade->RunOffline(&source).ok());
  auto insights = out.spade->RunOnline();
  EXPECT_TRUE(insights.ok()) << insights.status().ToString();
  out.insights = std::move(*insights);
  out.report = out.spade->report();
  return out;
}

/// Identical results: top-k stream (keys, exact scores, groups, rendered
/// descriptions/SPARQL), report counts, and the sealed store byte for byte.
void ExpectPipelinesIdentical(const PipelineOutcome& a,
                              const PipelineOutcome& b) {
  EXPECT_EQ(a.report.num_triples, b.report.num_triples);
  EXPECT_EQ(a.report.num_cfs, b.report.num_cfs);
  EXPECT_EQ(a.report.num_direct_properties, b.report.num_direct_properties);
  EXPECT_EQ(a.report.num_lattices, b.report.num_lattices);
  EXPECT_EQ(a.report.num_candidate_aggregates,
            b.report.num_candidate_aggregates);
  EXPECT_EQ(a.report.num_evaluated_aggregates,
            b.report.num_evaluated_aggregates);
  EXPECT_EQ(a.report.num_reused_aggregates, b.report.num_reused_aggregates);
  EXPECT_EQ(a.report.num_pruned_aggregates, b.report.num_pruned_aggregates);
  EXPECT_EQ(a.report.num_groups_emitted, b.report.num_groups_emitted);
  ASSERT_EQ(a.insights.size(), b.insights.size());
  for (size_t i = 0; i < a.insights.size(); ++i) {
    SCOPED_TRACE("insight " + std::to_string(i));
    EXPECT_TRUE(a.insights[i].ranked.key == b.insights[i].ranked.key);
    EXPECT_EQ(a.insights[i].ranked.score, b.insights[i].ranked.score);
    EXPECT_EQ(a.insights[i].ranked.num_groups, b.insights[i].ranked.num_groups);
    EXPECT_EQ(a.insights[i].cfs_name, b.insights[i].cfs_name);
    EXPECT_EQ(a.insights[i].description, b.insights[i].description);
    EXPECT_EQ(a.insights[i].sparql, b.insights[i].sparql);
  }
  ExpectStoresByteIdentical(a.spade->store(), b.spade->store());
}

TEST(StreamingPipelineTest, IdenticalToSequentialAcrossChunkAndThreadMatrix) {
  const std::string nt = SmallSyntheticNt(250, 2);
  PipelineOutcome sequential =
      RunPipeline(nt, /*streaming=*/false, 4096, /*threads=*/1);
  EXPECT_FALSE(sequential.insights.empty());
  EXPECT_EQ(sequential.report.ingest.num_chunks, 0u);

  for (size_t chunk : {size_t{1}, size_t{4096}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("chunk = " + std::to_string(chunk) +
                   ", threads = " + std::to_string(threads));
      PipelineOutcome streamed =
          RunPipeline(nt, /*streaming=*/true, chunk, threads);
      EXPECT_GT(streamed.report.ingest.num_chunks, 0u);
      EXPECT_GT(streamed.report.ingest.wall_ms, 0.0);
      ExpectPipelinesIdentical(sequential, streamed);
    }
  }
}

TEST(StreamingPipelineTest, SaturateFallsBackToTheSequentialPath) {
  // Saturation rewrites the graph before tables exist, so streaming cannot
  // apply; the source is drained and the sequential offline phase runs.
  const std::string nt = SmallSyntheticNt(60, 1);
  PipelineOutcome sequential =
      RunPipeline(nt, /*streaming=*/false, 4096, 1, /*saturate=*/true);
  PipelineOutcome streamed =
      RunPipeline(nt, /*streaming=*/true, 64, 1, /*saturate=*/true);
  EXPECT_EQ(streamed.report.ingest.num_chunks, 0u);  // fallback: no chunks
  ExpectPipelinesIdentical(sequential, streamed);
}

TEST(ComputeAttrStatsRangeTest, MatchesSerialLoopAtEveryThreadCount) {
  const std::string nt = SmallSyntheticNt(120, 1);
  SequentialBuild sequential = BuildSequential(nt);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
    TaskScheduler scheduler(pool.get());
    std::vector<AttrStats> stats;
    ComputeAttrStatsRange(*sequential.store, 0, &scheduler, &stats);
    ExpectStatsIdentical(sequential.stats, stats);
  }
}

}  // namespace
}  // namespace spade
