#include "src/core/earlystop.h"

#include <gtest/gtest.h>

#include "src/core/reference.h"
#include "tests/test_helpers.h"

namespace spade {
namespace {

using testing_helpers::DimSpec;
using testing_helpers::MakeRandomAnalysis;
using testing_helpers::MeasureShape;
using testing_helpers::RandomAnalysis;

TEST(EstimateScoreTest, DegenerateGroups) {
  ScoreEstimate est = EstimateScore(InterestingnessKind::kVariance, {}, {}, 0.05);
  EXPECT_EQ(est.score, 0.0);
  EXPECT_EQ(est.num_groups, 0u);
  est = EstimateScore(InterestingnessKind::kVariance, {{1.0, 2.0}}, {1.0}, 0.05);
  EXPECT_EQ(est.score, 0.0);  // one group: no spread to measure
}

TEST(EstimateScoreTest, ZeroVarianceSamplesGiveTightInterval) {
  // Each group's sample is constant: the estimator has no sampling noise.
  std::vector<std::vector<double>> values = {{5, 5, 5}, {9, 9, 9}};
  ScoreEstimate est =
      EstimateScore(InterestingnessKind::kVariance, values, {1, 1}, 0.05);
  EXPECT_DOUBLE_EQ(est.score, Variance({5, 9}));
  EXPECT_DOUBLE_EQ(est.lower, est.score);
  EXPECT_DOUBLE_EQ(est.upper, est.score);
}

TEST(EstimateScoreTest, WiderSamplesWidenInterval) {
  std::vector<std::vector<double>> tight = {{5, 5.1, 4.9}, {9, 9.1, 8.9}};
  std::vector<std::vector<double>> loose = {{1, 9, 5}, {3, 15, 9}};
  ScoreEstimate t =
      EstimateScore(InterestingnessKind::kVariance, tight, {1, 1}, 0.05);
  ScoreEstimate l =
      EstimateScore(InterestingnessKind::kVariance, loose, {1, 1}, 0.05);
  EXPECT_LT(t.upper - t.lower, l.upper - l.lower);
}

TEST(EstimateScoreTest, ScaleAppliesToGroupEstimates) {
  // Sum estimation (Appendix B): group means scaled by the group size.
  std::vector<std::vector<double>> values = {{2, 2}, {3, 3}};
  ScoreEstimate est =
      EstimateScore(InterestingnessKind::kVariance, values, {10, 100}, 0.05);
  EXPECT_DOUBLE_EQ(est.score, Variance({20, 300}));
}

TEST(EstimateScoreTest, CoverageOfTrueScore) {
  // Statistical test of Theorem 2: the 95% CI on the variance-of-averages
  // must contain the true interestingness in roughly 95% of resamples.
  Rng rng(17);
  const size_t kGroups = 8, kPopulation = 2000, kSample = 60, kTrials = 300;
  // A fixed population per group.
  std::vector<std::vector<double>> population(kGroups);
  std::vector<double> true_means(kGroups);
  for (size_t g = 0; g < kGroups; ++g) {
    double center = 10.0 * static_cast<double>(g);
    double sum = 0;
    for (size_t i = 0; i < kPopulation; ++i) {
      double v = center + 5.0 * rng.NextGaussian();
      population[g].push_back(v);
      sum += v;
    }
    true_means[g] = sum / kPopulation;
  }
  double true_score = Variance(true_means);

  size_t covered = 0;
  for (size_t trial = 0; trial < kTrials; ++trial) {
    std::vector<std::vector<double>> samples(kGroups);
    for (size_t g = 0; g < kGroups; ++g) {
      for (size_t i = 0; i < kSample; ++i) {
        samples[g].push_back(population[g][rng.Uniform(kPopulation)]);
      }
    }
    ScoreEstimate est =
        EstimateScore(InterestingnessKind::kVariance, samples,
                      std::vector<double>(kGroups, 1.0), 0.05);
    if (true_score >= est.lower && true_score <= est.upper) ++covered;
  }
  double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_GE(coverage, 0.88) << "large-sample CI badly undercovers";
}

class EstimateScoreKindTest
    : public ::testing::TestWithParam<InterestingnessKind> {};

TEST_P(EstimateScoreKindTest, EstimateNearTruthForLargeSamples) {
  InterestingnessKind kind = GetParam();
  Rng rng(29);
  const size_t kGroups = 10, kSample = 500;
  std::vector<double> true_means;
  std::vector<std::vector<double>> samples(kGroups);
  for (size_t g = 0; g < kGroups; ++g) {
    double center = (g == 0) ? 50.0 : static_cast<double>(g);  // skewed means
    true_means.push_back(center);
    for (size_t i = 0; i < kSample; ++i) {
      samples[g].push_back(center + 0.5 * rng.NextGaussian());
    }
  }
  ScoreEstimate est = EstimateScore(kind, samples,
                                    std::vector<double>(kGroups, 1.0), 0.05);
  double truth = Interestingness(kind, true_means);
  EXPECT_NEAR(est.score, truth, 0.05 * std::max(1.0, truth));
  EXPECT_LE(est.lower, est.score);
  EXPECT_GE(est.upper, est.score);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EstimateScoreKindTest,
                         ::testing::Values(InterestingnessKind::kVariance,
                                           InterestingnessKind::kSkewness,
                                           InterestingnessKind::kKurtosis));

class PlannerFixture {
 public:
  /// Graph with two dimensions: dimA induces a wildly varying count per
  /// group (interesting), dimB is perfectly uniform (boring).
  explicit PlannerFixture(uint64_t seed) : rng_(seed) {
    Dictionary& d = g.dict();
    TermId dim_a = d.InternIri("dimA");
    TermId dim_b = d.InternIri("dimB");
    TermId measure = d.InternIri("m");
    size_t next = 0;
    auto fact = [&]() { return d.InternIri("f" + std::to_string(next++)); };
    // dimA: group g has ~10*(g+1)^2 members => high count variance.
    for (int ga = 0; ga < 5; ++ga) {
      size_t count = 10 * static_cast<size_t>((ga + 1) * (ga + 1));
      for (size_t i = 0; i < count; ++i) {
        TermId f = fact();
        members.push_back(f);
        g.Add(f, dim_a, d.InternString("a" + std::to_string(ga)));
        // dimB: uniform assignment, uniform measure.
        g.Add(f, dim_b, d.InternString("b" + std::to_string(next % 5)));
        g.Add(f, measure, d.InternDouble(100.0 + 0.001 * (next % 7)));
      }
    }
    g.Freeze();
    db = std::make_unique<AttributeStore>(&g);
    db->BuildDirectAttributes();
    cfs = std::make_unique<CfsIndex>(members);
    for (AttrId a = 0; a < db->num_attributes(); ++a) {
      offline.push_back(ComputeAttrStats(*db, a));
    }
    spec.dims = {*db->FindAttribute("dimA"), *db->FindAttribute("dimB")};
    std::sort(spec.dims.begin(), spec.dims.end());
    spec.measures = {MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount},
                     MeasureSpec{*db->FindAttribute("m"), sparql::AggFunc::kAvg}};
  }

  EarlyStopResult Run(const EarlyStopOptions& options) {
    MeasureCache cache;
    std::vector<DimensionEncoding> encodings;
    Mmst mmst = BuildMmstForSpec(*db, *cfs, spec, &encodings, 16);
    TranslationOptions topt;
    topt.sample_capacity = options.sample_size;
    topt.rng = &rng_;
    Translation tr = TranslateData(encodings, mmst.layout(), topt);
    EarlyStopPlanner planner(db.get(), 0, cfs.get(), &offline, options);
    planner.AddLattice(spec, encodings, mmst.layout(), tr, &cache);
    Arm arm;
    return planner.Plan(arm);
  }

  Graph g;
  std::unique_ptr<AttributeStore> db;
  std::unique_ptr<CfsIndex> cfs;
  std::vector<TermId> members;
  std::vector<AttrStats> offline;
  LatticeSpec spec;
  Rng rng_;
};

TEST(EarlyStopPlannerTest, PrunesBoringKeepsInteresting) {
  PlannerFixture fx(5);
  EarlyStopOptions options;
  options.top_k = 1;
  options.sample_size = 60;
  options.num_batches = 2;
  EarlyStopResult result = fx.Run(options);
  EXPECT_GT(result.num_candidates, 0u);
  EXPECT_FALSE(result.pruned.empty());

  // The most interesting candidate — count(*) by dimA — must survive.
  AggregateKey star_by_a;
  star_by_a.cfs_id = 0;
  star_by_a.dims = {*fx.db->FindAttribute("dimA")};
  star_by_a.measure = MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount};
  EXPECT_EQ(result.pruned.count(star_by_a), 0u);

  // The uniform avg(m) by dimB is a prime pruning target.
  AggregateKey avg_by_b;
  avg_by_b.cfs_id = 0;
  avg_by_b.dims = {*fx.db->FindAttribute("dimB")};
  avg_by_b.measure =
      MeasureSpec{*fx.db->FindAttribute("m"), sparql::AggFunc::kAvg};
  EXPECT_EQ(result.pruned.count(avg_by_b), 1u);
}

TEST(EarlyStopPlannerTest, LargeKPrunesNothing) {
  PlannerFixture fx(6);
  EarlyStopOptions options;
  options.top_k = 10000;  // everything is within the top k
  EarlyStopResult result = fx.Run(options);
  EXPECT_TRUE(result.pruned.empty());
}

TEST(EarlyStopPlannerTest, EndToEndAccuracyAgainstExhaustive) {
  // Table 4's accuracy metric: prune with ES, evaluate the survivors, and
  // compare the top-k with the exhaustive top-k.
  PlannerFixture fx(7);
  EarlyStopOptions options;
  options.top_k = 3;
  EarlyStopResult es = fx.Run(options);

  Arm exhaustive;
  MeasureCache cache1;
  EvaluateLatticeMvd(*fx.db, 0, *fx.cfs, fx.spec, MvdCubeOptions(), &exhaustive,
                     &cache1);
  Arm pruned_arm;
  MeasureCache cache2;
  EvaluateLatticeMvd(*fx.db, 0, *fx.cfs, fx.spec, MvdCubeOptions(), &pruned_arm,
                     &cache2, &es.pruned);

  auto top_full = exhaustive.TopK(3, InterestingnessKind::kVariance);
  auto top_es = pruned_arm.TopK(3, InterestingnessKind::kVariance);
  ASSERT_EQ(top_full.size(), top_es.size());
  for (size_t i = 0; i < top_full.size(); ++i) {
    EXPECT_TRUE(top_full[i].key == top_es[i].key) << "rank " << i;
    EXPECT_DOUBLE_EQ(top_full[i].score, top_es[i].score);
  }
}

TEST(EarlyStopPlannerTest, CountStarEstimatesAreRootExact) {
  // For count(*) the planner uses the exact per-group sizes from the
  // translation: the root-node count aggregate's CI collapses to the truth.
  PlannerFixture fx(8);
  EarlyStopOptions options;
  options.top_k = 1;
  options.num_batches = 1;
  EarlyStopResult result = fx.Run(options);
  // The root count(*) by {dimA, dimB} is computable exactly; combined with
  // count-by-dimA being extreme, at least one count aggregate must survive.
  size_t count_star_pruned = 0;
  for (const auto& key : result.pruned) {
    count_star_pruned += key.measure.is_count_star();
  }
  EXPECT_LT(count_star_pruned, 4u);  // not all four count MDAs pruned
}

}  // namespace
}  // namespace spade

namespace spade {
namespace {

TEST(EstimateScoreTest, IntervalWidthMonotoneInConfidence) {
  Rng rng(41);
  std::vector<std::vector<double>> samples(6);
  for (auto& s : samples) {
    for (int i = 0; i < 40; ++i) s.push_back(rng.NextGaussian() * 3);
  }
  std::vector<double> scales(6, 1.0);
  double prev_width = 0;
  for (double alpha : {0.5, 0.2, 0.1, 0.05, 0.01}) {
    ScoreEstimate est =
        EstimateScore(InterestingnessKind::kVariance, samples, scales, alpha);
    double width = est.upper - est.lower;
    EXPECT_GE(width, prev_width);  // higher confidence -> wider interval
    prev_width = width;
  }
}

TEST(EstimateScoreTest, RLimitPrefixMatchesExplicitPrefix) {
  Rng rng(43);
  std::vector<std::vector<double>> full(4), prefix(4);
  for (size_t gidx = 0; gidx < 4; ++gidx) {
    for (int i = 0; i < 50; ++i) full[gidx].push_back(rng.NextDouble() * 10);
    prefix[gidx] =
        std::vector<double>(full[gidx].begin(), full[gidx].begin() + 20);
  }
  std::vector<double> scales(4, 1.0);
  ScoreEstimate a = EstimateScore(InterestingnessKind::kVariance, full, scales,
                                  0.05, /*r_limit=*/20);
  ScoreEstimate b =
      EstimateScore(InterestingnessKind::kVariance, prefix, scales, 0.05);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

}  // namespace
}  // namespace spade
