#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/rdf/ntriples.h"
#include "src/sparql/eval.h"
#include "src/util/rng.h"
#include "src/sparql/parser.h"

namespace spade {
namespace sparql {
namespace {

/// The Figure 1 CEOs graph: dos Santos (n1) and Ghosn (n2).
std::unique_ptr<Graph> Fig1Graph() {
  auto g = std::make_unique<Graph>();
  std::string data = R"(
<n1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <CEO> .
<n1> <name> "Isabel dos Santos" .
<n1> <gender> "Female" .
<n1> <netWorth> "2800000000" .
<n1> <nationality> <Angola> .
<n1> <countryOfOrigin> <Angola> .
<n1> <company> <sodian> .
<n1> <company> <sonangol> .
<n1> <politicalConnection> <dossantosp> .
<sodian> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Company> .
<sodian> <name> "Sodian" .
<sodian> <area> "Diamond" .
<sonangol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Company> .
<sonangol> <name> "Sonangol" .
<sonangol> <area> "NaturalGas" .
<sonangol> <area> "Manufacturer" .
<sonangol> <headquarters> <Luanda> .
<dossantosp> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Politician> .
<dossantosp> <role> "President" .
<n2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <CEO> .
<n2> <name> "Carlos Ghosn" .
<n2> <age> "66" .
<n2> <netWorth> "120000000" .
<n2> <nationality> <Brazil> .
<n2> <nationality> <France> .
<n2> <nationality> <Lebanon> .
<n2> <nationality> <Nigeria> .
<n2> <company> <renault> .
<n2> <politicalConnection> <aoun> .
<renault> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Company> .
<renault> <name> "Renault-Nissan" .
<renault> <area> "Automotive" .
<renault> <area> "Manufacturer" .
<renault> <headquarters> <Amsterdam> .
<aoun> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Politician> .
<aoun> <role> "President" .
<aoun> <name> "Michel Aoun" .
)";
  EXPECT_TRUE(NTriplesReader::ParseString(data, g.get()).ok());
  return g;
}

TEST(SparqlParserTest, ParsesSimpleSelect) {
  Dictionary dict;
  auto q = ParseQuery("SELECT ?s WHERE { ?s <p> ?o . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->where.size(), 1u);
  EXPECT_FALSE(q->HasAggregates());
}

TEST(SparqlParserTest, ParsesPrefixes) {
  Dictionary dict;
  auto q = ParseQuery(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s ex:knows ?o . }",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const TriplePattern& tp = q->where[0];
  ASSERT_FALSE(tp.p.is_var);
  EXPECT_EQ(dict.Get(tp.p.term).lexical, "http://example.org/knows");
}

TEST(SparqlParserTest, ParsesTypeShorthand) {
  Dictionary dict;
  auto q = ParseQuery("SELECT ?s WHERE { ?s a <CEO> . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(dict.Get(q->where[0].p.term).lexical, vocab::kRdfType);
}

TEST(SparqlParserTest, RewritesPropertyPaths) {
  Dictionary dict;
  auto q = ParseQuery("SELECT ?a WHERE { ?s <p1>/<p2>/<p3> ?a . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where.size(), 3u);  // chained over fresh variables
  // The chain is connected: object of hop k is subject of hop k+1.
  EXPECT_TRUE(q->where[0].o.is_var);
  EXPECT_TRUE(q->where[1].s.is_var);
  EXPECT_EQ(q->where[0].o.var, q->where[1].s.var);
  EXPECT_EQ(q->where[1].o.var, q->where[2].s.var);
}

TEST(SparqlParserTest, ParsesAggregatesAndGroupBy) {
  Dictionary dict;
  auto q = ParseQuery(
      "SELECT ?n (AVG(?age) AS ?avgAge) (COUNT(*) AS ?c) "
      "WHERE { ?s <nationality> ?n . ?s <age> ?age . } GROUP BY ?n",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->select.size(), 3u);
  EXPECT_FALSE(q->select[0].is_aggregate);
  EXPECT_TRUE(q->select[1].is_aggregate);
  EXPECT_EQ(q->select[1].func, AggFunc::kAvg);
  EXPECT_TRUE(q->select[2].count_star);
  EXPECT_EQ(q->group_by.size(), 1u);
}

TEST(SparqlParserTest, ParsesDistinctAggregate) {
  Dictionary dict;
  auto q = ParseQuery(
      "SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s <p> ?o . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->select[0].distinct);
}

TEST(SparqlParserTest, ParsesFiltersAndLimit) {
  Dictionary dict;
  auto q = ParseQuery(
      "SELECT ?s WHERE { ?s <age> ?a . FILTER(?a >= 40) FILTER(?a < 60) } "
      "LIMIT 5",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filters.size(), 2u);
  EXPECT_EQ(q->filters[0].op, Filter::Op::kGe);
  EXPECT_TRUE(q->filters[0].numeric);
  EXPECT_EQ(q->limit, 5);
}

TEST(SparqlParserTest, SelectStar) {
  Dictionary dict;
  auto q = ParseQuery("SELECT * WHERE { ?s <p> ?o . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 2u);
}

TEST(SparqlParserTest, RejectsBadQueries) {
  Dictionary dict;
  EXPECT_FALSE(ParseQuery("FOO ?s WHERE { ?s <p> ?o . }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?s <p> ?o . }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s <p> ?o }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s { ?s <p> ?o . }", &dict).ok());
  // Non-grouped variable with aggregate.
  EXPECT_FALSE(ParseQuery("SELECT ?s (COUNT(*) AS ?c) WHERE { ?s <p> ?o . }",
                          &dict)
                   .ok());
  // SUM(*) is invalid.
  EXPECT_FALSE(
      ParseQuery("SELECT (SUM(*) AS ?x) WHERE { ?s <p> ?o . }", &dict).ok());
  // Unknown prefix.
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ex:p ?o . }", &dict).ok());
}

TEST(SparqlEvalTest, BasicBgpJoin) {
  auto g = Fig1Graph();
  auto q = ParseQuery(
      "SELECT ?name WHERE { ?ceo a <CEO> . ?ceo <name> ?name . }",
      &g->dict());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);
}

TEST(SparqlEvalTest, Example1SumNetWorthByCountry) {
  // Example 1: only n1 has countryOfOrigin; result {(Angola, 2.8B)}.
  auto g = Fig1Graph();
  auto q = ParseQuery(
      "SELECT ?c (SUM(?nw) AS ?total) WHERE { "
      "?ceo a <CEO> . ?ceo <politicalConnection> ?p . "
      "?ceo <countryOfOrigin> ?c . ?ceo <netWorth> ?nw . } GROUP BY ?c",
      &g->dict());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(g->dict().Get(rs->rows[0][0].term).lexical, "Angola");
  EXPECT_DOUBLE_EQ(rs->rows[0][1].num, 2.8e9);
}

TEST(SparqlEvalTest, Example2MultiValuedNationality) {
  // Example 2 shape: avg age by nationality; n2 contributes to 4 groups with
  // age 66 each; n1 (no age) contributes nowhere.
  auto g = Fig1Graph();
  auto q = ParseQuery(
      "SELECT ?n (AVG(?age) AS ?a) WHERE { "
      "?ceo a <CEO> . ?ceo <nationality> ?n . ?ceo <age> ?age . } GROUP BY ?n",
      &g->dict());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 4u);
  for (const auto& row : rs->rows) EXPECT_DOUBLE_EQ(row[1].num, 66.0);
}

TEST(SparqlEvalTest, PropertyPathExample3) {
  // company/area for n1: Diamond, NaturalGas, Manufacturer; for n2:
  // Automotive, Manufacturer.
  auto g = Fig1Graph();
  auto q = ParseQuery(
      "SELECT ?area (COUNT(DISTINCT ?ceo) AS ?c) WHERE { "
      "?ceo a <CEO> . ?ceo <company>/<area> ?area . } GROUP BY ?area",
      &g->dict());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 4u);
  // Manufacturer reaches both CEOs (the correct count is 2, not 5).
  bool checked = false;
  for (const auto& row : rs->rows) {
    if (g->dict().Get(row[0].term).lexical == "Manufacturer") {
      EXPECT_DOUBLE_EQ(row[1].num, 2.0);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(SparqlEvalTest, CountStarVsCountDistinct) {
  auto g = Fig1Graph();
  // Joined rows multiply: count(*) counts bindings, count(distinct ?ceo)
  // counts CEOs — the crux of Section 4.2.
  auto q1 = ParseQuery(
      "SELECT (COUNT(*) AS ?c) WHERE { ?ceo a <CEO> . "
      "?ceo <nationality> ?n . }",
      &g->dict());
  ASSERT_TRUE(q1.ok());
  auto rs1 = Evaluate(*q1, *g);
  ASSERT_TRUE(rs1.ok());
  EXPECT_DOUBLE_EQ(rs1->rows[0][0].num, 5.0);  // 1 + 4 nationalities

  auto q2 = ParseQuery(
      "SELECT (COUNT(DISTINCT ?ceo) AS ?c) WHERE { ?ceo a <CEO> . "
      "?ceo <nationality> ?n . }",
      &g->dict());
  ASSERT_TRUE(q2.ok());
  auto rs2 = Evaluate(*q2, *g);
  ASSERT_TRUE(rs2.ok());
  EXPECT_DOUBLE_EQ(rs2->rows[0][0].num, 2.0);
}

TEST(SparqlEvalTest, MinMaxAggregates) {
  auto g = Fig1Graph();
  auto q = ParseQuery(
      "SELECT (MIN(?nw) AS ?lo) (MAX(?nw) AS ?hi) WHERE { "
      "?ceo a <CEO> . ?ceo <netWorth> ?nw . }",
      &g->dict());
  ASSERT_TRUE(q.ok());
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].num, 1.2e8);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].num, 2.8e9);
}

TEST(SparqlEvalTest, FilterNumericAndTermEquality) {
  auto g = Fig1Graph();
  auto q = ParseQuery(
      "SELECT ?ceo WHERE { ?ceo <netWorth> ?nw . FILTER(?nw > 1000000000) }",
      &g->dict());
  ASSERT_TRUE(q.ok());
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);

  auto q2 = ParseQuery(
      "SELECT ?ceo WHERE { ?ceo <gender> ?x . FILTER(?x = \"Female\") }",
      &g->dict());
  ASSERT_TRUE(q2.ok());
  auto rs2 = Evaluate(*q2, *g);
  ASSERT_TRUE(rs2.ok());
  EXPECT_EQ(rs2->rows.size(), 1u);
}

TEST(SparqlEvalTest, SelectDistinct) {
  auto g = Fig1Graph();
  auto q = ParseQuery(
      "SELECT DISTINCT ?area WHERE { ?c <area> ?area . }", &g->dict());
  ASSERT_TRUE(q.ok());
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 4u);  // Diamond, NaturalGas, Manufacturer, Automotive
}

TEST(SparqlEvalTest, LimitCutsRows) {
  auto g = Fig1Graph();
  auto q = ParseQuery("SELECT ?s ?o WHERE { ?s <name> ?o . } LIMIT 3",
                      &g->dict());
  ASSERT_TRUE(q.ok());
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);
}

TEST(SparqlEvalTest, RepeatedVariableJoinsConsistently) {
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.InternIri("p");
  TermId a = d.InternIri("a"), b = d.InternIri("b");
  g.Add(a, p, a);  // self loop
  g.Add(a, p, b);
  auto q = ParseQuery("SELECT ?x WHERE { ?x <p> ?x . }", &d);
  ASSERT_TRUE(q.ok());
  auto rs = Evaluate(*q, g);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].term, a);
}

TEST(SparqlEvalTest, EmptyResultOnNoMatch) {
  auto g = Fig1Graph();
  auto q = ParseQuery("SELECT ?s WHERE { ?s <nosuch> ?o . }", &g->dict());
  ASSERT_TRUE(q.ok());
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

TEST(SparqlEvalTest, AggregateOverEmptyGroupSet) {
  auto g = Fig1Graph();
  auto q = ParseQuery(
      "SELECT ?x (SUM(?v) AS ?s) WHERE { ?c <nosuch> ?x . ?c <age> ?v . } "
      "GROUP BY ?x",
      &g->dict());
  ASSERT_TRUE(q.ok());
  auto rs = Evaluate(*q, *g);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

}  // namespace
}  // namespace sparql
}  // namespace spade

namespace spade {
namespace sparql {
namespace {

using spade::Rng;

// Property test: the evaluator's BGP join must agree with a brute-force
// enumeration of all triple-pattern assignments on random graphs.
struct BgpCase {
  uint64_t seed;
  size_t triples;
  size_t entities;
};

class BgpOracleTest : public ::testing::TestWithParam<BgpCase> {};

TEST_P(BgpOracleTest, TwoPatternJoinMatchesBruteForce) {
  const BgpCase& c = GetParam();
  Rng rng(c.seed);
  Graph g;
  Dictionary& d = g.dict();
  TermId p1 = d.InternIri("p1"), p2 = d.InternIri("p2");
  std::vector<TermId> nodes;
  for (size_t i = 0; i < c.entities; ++i) {
    nodes.push_back(d.InternIri("e" + std::to_string(i)));
  }
  for (size_t i = 0; i < c.triples; ++i) {
    g.Add(nodes[rng.Uniform(nodes.size())],
          rng.Bernoulli(0.5) ? p1 : p2,
          nodes[rng.Uniform(nodes.size())]);
  }
  g.Freeze();

  // ?x p1 ?y . ?y p2 ?z
  auto q = ParseQuery("SELECT ?x ?y ?z WHERE { ?x <p1> ?y . ?y <p2> ?z . }",
                      &d);
  ASSERT_TRUE(q.ok());
  auto rs = Evaluate(*q, g);
  ASSERT_TRUE(rs.ok());

  // Brute force over the triple list.
  std::set<std::vector<TermId>> expected;
  for (const Triple& t1 : g.triples()) {
    if (t1.p != p1) continue;
    for (const Triple& t2 : g.triples()) {
      if (t2.p != p2 || t2.s != t1.o) continue;
      expected.insert({t1.s, t1.o, t2.o});
    }
  }
  std::set<std::vector<TermId>> got;
  for (const auto& row : rs->rows) {
    got.insert({row[0].term, row[1].term, row[2].term});
  }
  EXPECT_EQ(got, expected);
  // The evaluator returns a solution multiset; for this BGP each mapping is
  // unique, so sizes must match too.
  EXPECT_EQ(rs->rows.size(), expected.size());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BgpOracleTest,
                         ::testing::Values(BgpCase{1, 60, 10},
                                           BgpCase{2, 200, 15},
                                           BgpCase{3, 400, 8},
                                           BgpCase{4, 100, 40},
                                           BgpCase{5, 30, 4}));

}  // namespace
}  // namespace sparql
}  // namespace spade
