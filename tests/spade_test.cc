#include "src/core/spade.h"

#include <gtest/gtest.h>

#include "src/datagen/realworld.h"
#include "src/datagen/synthetic.h"
#include "src/sparql/eval.h"
#include "src/sparql/parser.h"

namespace spade {
namespace {

SpadeOptions SmallOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 8;
  options.enumeration.max_measures_per_lattice = 3;
  options.top_k = 5;
  return options;
}

TEST(SpadeTest, EndToEndOnCeos) {
  auto graph = GenerateCeos(42, 0.25);
  Spade spade(graph.get(), SmallOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  ASSERT_TRUE(insights.ok()) << insights.status().ToString();
  EXPECT_FALSE(insights->empty());
  EXPECT_LE(insights->size(), 5u);
  // Scores descending.
  for (size_t i = 1; i < insights->size(); ++i) {
    EXPECT_GE((*insights)[i - 1].ranked.score, (*insights)[i].ranked.score);
  }
  // Every insight names its CFS, description, and SPARQL.
  for (const auto& insight : *insights) {
    EXPECT_FALSE(insight.cfs_name.empty());
    EXPECT_FALSE(insight.description.empty());
    EXPECT_NE(insight.sparql.find("SELECT"), std::string::npos);
    EXPECT_GE(insight.ranked.num_groups, 2u);
  }
  const SpadeReport& report = spade.report();
  EXPECT_GT(report.num_triples, 5000u);
  EXPECT_GT(report.num_cfs, 1u);
  EXPECT_GT(report.num_direct_properties, 10u);
  EXPECT_GT(report.derivations.total(), 0u);
  EXPECT_GT(report.num_candidate_aggregates, 0u);
  EXPECT_GT(report.num_evaluated_aggregates, 0u);
}

TEST(SpadeTest, OnlineRequiresOffline) {
  auto graph = GenerateCeos(42, 0.1);
  Spade spade(graph.get(), SmallOptions());
  auto insights = spade.RunOnline();
  EXPECT_FALSE(insights.ok());
}

TEST(SpadeTest, DerivationsWidenTheSearchSpace) {
  // Experiment 1 in miniature: wD must enumerate at least as many MDAs and
  // its best score must be >= the woD best score.
  auto graph_wo = GenerateNasa(42, 0.3);
  SpadeOptions wo = SmallOptions();
  wo.enable_derivations = false;
  Spade spade_wo(graph_wo.get(), wo);
  ASSERT_TRUE(spade_wo.RunOffline().ok());
  ASSERT_TRUE(spade_wo.RunOnline().ok());

  auto graph_w = GenerateNasa(42, 0.3);
  SpadeOptions w = SmallOptions();
  w.enable_derivations = true;
  Spade spade_w(graph_w.get(), w);
  ASSERT_TRUE(spade_w.RunOffline().ok());
  ASSERT_TRUE(spade_w.RunOnline().ok());

  EXPECT_GE(spade_w.report().num_candidate_aggregates,
            spade_wo.report().num_candidate_aggregates);
  EXPECT_GT(spade_w.report().derivations.total(), 0u);
  EXPECT_EQ(spade_wo.report().derivations.total(), 0u);
}

TEST(SpadeTest, AlgorithmsAgreeOnSingleValuedData) {
  // On relational-shaped data, MVDCube and both PGCube variants must produce
  // identical top-k lists (PGCube is correct there — Section 6.5 setting).
  SyntheticOptions sopts;
  sopts.num_facts = 3000;
  sopts.dim_cardinality = {20, 10};
  sopts.num_measures = 2;
  auto run = [&](EvalAlgorithm algo) {
    auto graph = GenerateSynthetic(sopts);
    SpadeOptions options = SmallOptions();
    options.algorithm = algo;
    Spade spade(graph.get(), options);
    EXPECT_TRUE(spade.RunOffline().ok());
    auto insights = spade.RunOnline();
    EXPECT_TRUE(insights.ok());
    return *insights;
  };
  auto mvd = run(EvalAlgorithm::kMvdCube);
  auto pg_star = run(EvalAlgorithm::kPgCubeStar);
  auto pg_d = run(EvalAlgorithm::kPgCubeDistinct);
  ASSERT_EQ(mvd.size(), pg_star.size());
  ASSERT_EQ(mvd.size(), pg_d.size());
  for (size_t i = 0; i < mvd.size(); ++i) {
    EXPECT_TRUE(mvd[i].ranked.key == pg_star[i].ranked.key) << i;
    EXPECT_NEAR(mvd[i].ranked.score, pg_star[i].ranked.score,
                1e-6 * std::max(1.0, mvd[i].ranked.score));
    EXPECT_TRUE(mvd[i].ranked.key == pg_d[i].ranked.key) << i;
  }
}

TEST(SpadeTest, EarlyStopKeepsTopKAccurate) {
  auto graph = GenerateNasa(7, 0.3);
  SpadeOptions base = SmallOptions();
  Spade full(graph.get(), base);
  ASSERT_TRUE(full.RunOffline().ok());
  auto full_insights = full.RunOnline();
  ASSERT_TRUE(full_insights.ok());

  auto graph2 = GenerateNasa(7, 0.3);
  SpadeOptions es = SmallOptions();
  es.enable_earlystop = true;
  es.earlystop.sample_size = 60;
  es.earlystop.num_batches = 2;
  Spade pruned(graph2.get(), es);
  ASSERT_TRUE(pruned.RunOffline().ok());
  auto es_insights = pruned.RunOnline();
  ASSERT_TRUE(es_insights.ok());

  // Accuracy as in Table 4: |top_full ∩ top_es| / |top_full|, on keys.
  size_t hits = 0;
  for (const auto& a : *full_insights) {
    for (const auto& b : *es_insights) {
      if (a.ranked.key == b.ranked.key) {
        ++hits;
        break;
      }
    }
  }
  double accuracy =
      full_insights->empty()
          ? 1.0
          : static_cast<double>(hits) / static_cast<double>(full_insights->size());
  EXPECT_GE(accuracy, 0.6);
  EXPECT_GT(pruned.report().num_pruned_aggregates, 0u);
}

TEST(SpadeTest, SparqlEmissionRunsOnTheGraph) {
  // Cross-validation: for an insight whose dimensions are direct or path
  // attributes, the emitted SPARQL must parse and evaluate on the original
  // graph, with the same number of groups as the ARM recorded (when all
  // groups were stored).
  auto graph = GenerateNobel(11, 0.3);
  SpadeOptions options = SmallOptions();
  options.max_stored_groups = 100000;
  Spade spade(graph.get(), options);
  ASSERT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  ASSERT_TRUE(insights.ok());

  size_t validated = 0;
  for (const auto& insight : *insights) {
    if (insight.sparql.find("spade:derived") != std::string::npos) continue;
    if (insight.ranked.key.measure.is_count_star()) continue;  // join semantics differ
    // Only validate single-dimension direct attributes: for those the SPARQL
    // group-by semantics coincides with the MDA semantics exactly.
    if (insight.ranked.key.dims.size() != 1) continue;
    const auto& table = spade.store().attribute(insight.ranked.key.dims[0]);
    if (table.origin != AttrOrigin::kDirect) continue;
    auto query = sparql::ParseQuery(insight.sparql, &graph->dict());
    ASSERT_TRUE(query.ok()) << insight.sparql << "\n"
                            << query.status().ToString();
    auto rs = sparql::Evaluate(*query, *graph);
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs->rows.size(), insight.ranked.num_groups) << insight.sparql;
    ++validated;
  }
  // At least the parse side ran for every insight.
  EXPECT_FALSE(insights->empty());
  (void)validated;
}

TEST(SpadeTest, TimingsAreAccounted) {
  auto graph = GenerateFoodista(42, 0.2);
  Spade spade(graph.get(), SmallOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  ASSERT_TRUE(spade.RunOnline().ok());
  const SpadeTimings& t = spade.report().timings;
  EXPECT_GT(t.OfflineTotal(), 0.0);
  EXPECT_GT(t.OnlineTotal(), 0.0);
  EXPECT_GE(t.evaluation_ms, 0.0);
}

TEST(SpadeTest, SaturationExpandsTypes) {
  auto graph = std::make_unique<Graph>();
  Dictionary& d = graph->dict();
  TermId ceo = d.InternIri("CEO");
  TermId person = d.InternIri("Person");
  graph->Add(ceo, d.InternIri(vocab::kRdfsSubClassOf), person);
  for (int i = 0; i < 30; ++i) {
    TermId f = d.InternIri("x" + std::to_string(i));
    graph->Add(f, graph->rdf_type(), ceo);
    graph->Add(f, d.InternIri("age"), d.InternInteger(30 + i % 20));
    graph->Add(f, d.InternIri("city"), d.InternString("C" + std::to_string(i % 3)));
  }
  graph->Freeze();
  SpadeOptions options = SmallOptions();
  options.saturate = true;
  Spade spade(graph.get(), options);
  ASSERT_TRUE(spade.RunOffline().ok());
  ASSERT_TRUE(spade.RunOnline().ok());
  // Saturation materialized (x, rdf:type, Person) for every CEO.
  EXPECT_TRUE(graph->Contains(d.InternIri("x0"), graph->rdf_type(), person));
  // The Person and CEO fact sets have identical members, so CFS selection
  // dedups them into a single set of all 30 facts.
  bool ceo_cfs = false;
  for (const auto& cfs : spade.fact_sets()) {
    if (cfs.members.size() == 30) ceo_cfs = true;
  }
  EXPECT_TRUE(ceo_cfs);
}

}  // namespace
}  // namespace spade

namespace spade {
namespace {

TEST(SpadeCfsTest, PropertyBasedSelection) {
  auto graph = GenerateCeos(42, 0.25);
  SpadeOptions options = SmallOptions();
  // Property-based CFS: all nodes with both netWorth and age.
  TermId nw = graph->dict().InternIri("http://data.spade/ceos/netWorth");
  TermId age = graph->dict().InternIri("http://data.spade/ceos/age");
  options.cfs.property_sets = {{nw, age}};
  options.cfs.type_based = false;
  options.cfs.summary_based = false;
  Spade spade(graph.get(), options);
  ASSERT_TRUE(spade.RunOffline().ok());
  ASSERT_TRUE(spade.RunOnline().ok());
  ASSERT_EQ(spade.fact_sets().size(), 1u);
  EXPECT_EQ(spade.fact_sets()[0].origin, CandidateFactSet::Origin::kProperty);
  // Every member has both properties.
  for (TermId m : spade.fact_sets()[0].members) {
    EXPECT_FALSE(graph->Objects(m, nw).empty());
    EXPECT_FALSE(graph->Objects(m, age).empty());
  }
}

TEST(SpadeCfsTest, EmptyGraphYieldsNoInsights) {
  Graph g;
  g.dict().InternIri("lonely");
  g.Freeze();
  Spade spade(&g, SmallOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  ASSERT_TRUE(insights.ok());
  EXPECT_TRUE(insights->empty());
  EXPECT_EQ(spade.report().num_cfs, 0u);
}

TEST(SpadeCfsTest, LiteralOnlyGraphYieldsNoInsights) {
  Graph g;
  Dictionary& d = g.dict();
  // A handful of facts below every support threshold.
  for (int i = 0; i < 5; ++i) {
    g.Add(d.InternIri("s" + std::to_string(i)), d.InternIri("p"),
          d.InternString("v"));
  }
  g.Freeze();
  Spade spade(&g, SmallOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  ASSERT_TRUE(insights.ok());
  EXPECT_TRUE(insights->empty());
}

TEST(SpadeCfsTest, PgCubeAlgorithmNamesExposed) {
  EXPECT_STREQ(EvalAlgorithmName(EvalAlgorithm::kMvdCube), "MVDCube");
  EXPECT_STREQ(EvalAlgorithmName(EvalAlgorithm::kPgCubeStar), "PGCube*");
  EXPECT_STREQ(EvalAlgorithmName(EvalAlgorithm::kPgCubeDistinct), "PGCube_d");
}

}  // namespace
}  // namespace spade
