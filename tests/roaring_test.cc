#include "src/bitmap/roaring.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/util/rng.h"

namespace spade {
namespace {

TEST(RoaringTest, EmptyBitmap) {
  RoaringBitmap bm;
  EXPECT_TRUE(bm.Empty());
  EXPECT_EQ(bm.Cardinality(), 0u);
  EXPECT_FALSE(bm.Contains(0));
  EXPECT_TRUE(bm.ToVector().empty());
}

TEST(RoaringTest, AddAndContains) {
  RoaringBitmap bm;
  bm.Add(5);
  bm.Add(100000);
  bm.Add(5);  // idempotent
  EXPECT_EQ(bm.Cardinality(), 2u);
  EXPECT_TRUE(bm.Contains(5));
  EXPECT_TRUE(bm.Contains(100000));
  EXPECT_FALSE(bm.Contains(6));
  EXPECT_FALSE(bm.Contains(99999));
}

TEST(RoaringTest, OrderedIteration) {
  RoaringBitmap bm;
  std::vector<uint32_t> values = {70000, 3, 65536, 65535, 1, 0, 1u << 30};
  for (uint32_t v : values) bm.Add(v);
  std::vector<uint32_t> expected = {0, 1, 3, 65535, 65536, 70000, 1u << 30};
  EXPECT_EQ(bm.ToVector(), expected);
}

TEST(RoaringTest, ArrayToBitsetConversion) {
  RoaringBitmap bm;
  // Push one chunk past the 4096 array threshold.
  for (uint32_t v = 0; v < 5000; ++v) bm.Add(v * 2);
  EXPECT_EQ(bm.Cardinality(), 5000u);
  for (uint32_t v = 0; v < 5000; ++v) {
    ASSERT_TRUE(bm.Contains(v * 2));
    ASSERT_FALSE(bm.Contains(v * 2 + 1));
  }
  // Ordered iteration across the container switch.
  std::vector<uint32_t> out = bm.ToVector();
  ASSERT_EQ(out.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(RoaringTest, UnionBasic) {
  RoaringBitmap a, b;
  a.Add(1);
  a.Add(100000);
  b.Add(2);
  b.Add(100000);
  a.UnionWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{1, 2, 100000}));
  // b unchanged.
  EXPECT_EQ(b.Cardinality(), 2u);
}

TEST(RoaringTest, UnionWithEmpty) {
  RoaringBitmap a, b;
  a.Add(42);
  a.UnionWith(b);
  EXPECT_EQ(a.Cardinality(), 1u);
  b.UnionWith(a);
  EXPECT_EQ(b.Cardinality(), 1u);
  EXPECT_TRUE(b.Contains(42));
}

TEST(RoaringTest, IntersectBasic) {
  RoaringBitmap a, b;
  for (uint32_t v : {1u, 2u, 3u, 70000u}) a.Add(v);
  for (uint32_t v : {2u, 3u, 4u, 70001u}) b.Add(v);
  a.IntersectWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{2, 3}));
}

TEST(RoaringTest, IntersectDropsEmptyContainers) {
  RoaringBitmap a, b;
  a.Add(1);
  a.Add(100000);
  b.Add(100000);
  a.IntersectWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{100000}));
}

TEST(RoaringTest, Clear) {
  RoaringBitmap a;
  for (uint32_t v = 0; v < 10000; ++v) a.Add(v);
  a.Clear();
  EXPECT_TRUE(a.Empty());
  a.Add(3);
  EXPECT_EQ(a.Cardinality(), 1u);
}

TEST(RoaringTest, EqualityOperator) {
  RoaringBitmap a, b;
  for (uint32_t v : {5u, 100u, 70000u}) {
    a.Add(v);
    b.Add(v);
  }
  EXPECT_TRUE(a == b);
  b.Add(6);
  EXPECT_FALSE(a == b);
}

TEST(RoaringTest, MemoryUpperBoundFormula) {
  // The Section 4.3 bound: 2Z + 9(u/65535 + 1) + 8.
  EXPECT_EQ(RoaringBitmap::MemoryUpperBound(0, 0), 17u);
  EXPECT_EQ(RoaringBitmap::MemoryUpperBound(100, 65535), 2 * 100 + 9 * 2 + 8);
}

TEST(RoaringTest, MemoryBytesGrowsSublinearlyForDense) {
  RoaringBitmap dense;
  for (uint32_t v = 0; v < 60000; ++v) dense.Add(v);
  // A dense chunk converts to an 8 KiB bitset: far below 2 bytes/value * 60k.
  EXPECT_LT(dense.MemoryBytes(), 2u * 60000u);
}

// ---- Property tests: RoaringBitmap vs std::set oracle ----

struct RandomCase {
  uint64_t seed;
  uint32_t universe;
  size_t inserts;
};

class RoaringPropertyTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RoaringPropertyTest, MatchesSetSemantics) {
  const RandomCase& param = GetParam();
  Rng rng(param.seed);
  RoaringBitmap bm;
  std::set<uint32_t> oracle;
  for (size_t i = 0; i < param.inserts; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(param.universe));
    bm.Add(v);
    oracle.insert(v);
  }
  ASSERT_EQ(bm.Cardinality(), oracle.size());
  EXPECT_EQ(bm.ToVector(),
            std::vector<uint32_t>(oracle.begin(), oracle.end()));
  for (size_t i = 0; i < 200; ++i) {
    uint32_t probe = static_cast<uint32_t>(rng.Uniform(param.universe));
    EXPECT_EQ(bm.Contains(probe), oracle.count(probe) > 0);
  }
}

TEST_P(RoaringPropertyTest, UnionMatchesSetUnion) {
  const RandomCase& param = GetParam();
  Rng rng(param.seed ^ 0xabcdef);
  RoaringBitmap a, b;
  std::set<uint32_t> sa, sb;
  for (size_t i = 0; i < param.inserts; ++i) {
    uint32_t va = static_cast<uint32_t>(rng.Uniform(param.universe));
    uint32_t vb = static_cast<uint32_t>(rng.Uniform(param.universe));
    a.Add(va);
    sa.insert(va);
    b.Add(vb);
    sb.insert(vb);
  }
  a.UnionWith(b);
  sa.insert(sb.begin(), sb.end());
  EXPECT_EQ(a.ToVector(), std::vector<uint32_t>(sa.begin(), sa.end()));
}

TEST_P(RoaringPropertyTest, IntersectMatchesSetIntersection) {
  const RandomCase& param = GetParam();
  Rng rng(param.seed ^ 0x123456);
  RoaringBitmap a, b;
  std::set<uint32_t> sa, sb;
  for (size_t i = 0; i < param.inserts; ++i) {
    uint32_t va = static_cast<uint32_t>(rng.Uniform(param.universe));
    uint32_t vb = static_cast<uint32_t>(rng.Uniform(param.universe));
    a.Add(va);
    sa.insert(va);
    b.Add(vb);
    sb.insert(vb);
  }
  a.IntersectWith(b);
  std::vector<uint32_t> expected;
  for (uint32_t v : sa) {
    if (sb.count(v)) expected.push_back(v);
  }
  EXPECT_EQ(a.ToVector(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RoaringPropertyTest,
    ::testing::Values(
        RandomCase{1, 100, 50},            // tiny, dense
        RandomCase{2, 1u << 10, 2000},     // small universe, saturated
        RandomCase{3, 1u << 20, 2000},     // sparse arrays
        RandomCase{4, 1u << 14, 20000},    // forces bitset conversion
        RandomCase{5, 1u << 28, 5000},     // many containers
        RandomCase{6, 70000, 69000}));     // nearly-full two containers

}  // namespace
}  // namespace spade

namespace spade {
namespace {

TEST(RoaringEdgeTest, MaxUint32) {
  RoaringBitmap bm;
  bm.Add(0xffffffffu);
  bm.Add(0);
  EXPECT_TRUE(bm.Contains(0xffffffffu));
  EXPECT_TRUE(bm.Contains(0));
  EXPECT_EQ(bm.ToVector(), (std::vector<uint32_t>{0, 0xffffffffu}));
}

TEST(RoaringEdgeTest, ExactConversionThreshold) {
  // 4096 values stay an array; the 4097th converts the container. Behaviour
  // must be identical on both sides of the boundary.
  RoaringBitmap bm;
  for (uint32_t v = 0; v < 4096; ++v) bm.Add(v);
  EXPECT_EQ(bm.Cardinality(), 4096u);
  bm.Add(4096);
  EXPECT_EQ(bm.Cardinality(), 4097u);
  for (uint32_t v = 0; v <= 4096; ++v) ASSERT_TRUE(bm.Contains(v));
  EXPECT_FALSE(bm.Contains(4097));
}

TEST(RoaringEdgeTest, UnionAcrossContainerKinds) {
  RoaringBitmap dense, sparse;
  for (uint32_t v = 0; v < 6000; ++v) dense.Add(v);  // bitset container
  for (uint32_t v = 0; v < 10; ++v) sparse.Add(v * 7000);
  RoaringBitmap a = dense;
  a.UnionWith(sparse);
  RoaringBitmap b = sparse;
  b.UnionWith(dense);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Cardinality(), 6000u + 9u);  // value 0 shared
}

TEST(RoaringEdgeTest, ChunkBoundaryValues) {
  RoaringBitmap bm;
  for (uint32_t v : {65535u, 65536u, 131071u, 131072u}) bm.Add(v);
  EXPECT_EQ(bm.Cardinality(), 4u);
  EXPECT_TRUE(bm.Contains(65535));
  EXPECT_TRUE(bm.Contains(65536));
  EXPECT_FALSE(bm.Contains(65537));
}

}  // namespace
}  // namespace spade
