#include "src/bitmap/roaring.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/util/rng.h"

namespace spade {
namespace {

TEST(RoaringTest, EmptyBitmap) {
  RoaringBitmap bm;
  EXPECT_TRUE(bm.Empty());
  EXPECT_EQ(bm.Cardinality(), 0u);
  EXPECT_FALSE(bm.Contains(0));
  EXPECT_TRUE(bm.ToVector().empty());
}

TEST(RoaringTest, AddAndContains) {
  RoaringBitmap bm;
  bm.Add(5);
  bm.Add(100000);
  bm.Add(5);  // idempotent
  EXPECT_EQ(bm.Cardinality(), 2u);
  EXPECT_TRUE(bm.Contains(5));
  EXPECT_TRUE(bm.Contains(100000));
  EXPECT_FALSE(bm.Contains(6));
  EXPECT_FALSE(bm.Contains(99999));
}

TEST(RoaringTest, OrderedIteration) {
  RoaringBitmap bm;
  std::vector<uint32_t> values = {70000, 3, 65536, 65535, 1, 0, 1u << 30};
  for (uint32_t v : values) bm.Add(v);
  std::vector<uint32_t> expected = {0, 1, 3, 65535, 65536, 70000, 1u << 30};
  EXPECT_EQ(bm.ToVector(), expected);
}

TEST(RoaringTest, ArrayToBitsetConversion) {
  RoaringBitmap bm;
  // Push one chunk past the 4096 array threshold.
  for (uint32_t v = 0; v < 5000; ++v) bm.Add(v * 2);
  EXPECT_EQ(bm.Cardinality(), 5000u);
  for (uint32_t v = 0; v < 5000; ++v) {
    ASSERT_TRUE(bm.Contains(v * 2));
    ASSERT_FALSE(bm.Contains(v * 2 + 1));
  }
  // Ordered iteration across the container switch.
  std::vector<uint32_t> out = bm.ToVector();
  ASSERT_EQ(out.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(RoaringTest, UnionBasic) {
  RoaringBitmap a, b;
  a.Add(1);
  a.Add(100000);
  b.Add(2);
  b.Add(100000);
  a.UnionWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{1, 2, 100000}));
  // b unchanged.
  EXPECT_EQ(b.Cardinality(), 2u);
}

TEST(RoaringTest, UnionWithEmpty) {
  RoaringBitmap a, b;
  a.Add(42);
  a.UnionWith(b);
  EXPECT_EQ(a.Cardinality(), 1u);
  b.UnionWith(a);
  EXPECT_EQ(b.Cardinality(), 1u);
  EXPECT_TRUE(b.Contains(42));
}

TEST(RoaringTest, IntersectBasic) {
  RoaringBitmap a, b;
  for (uint32_t v : {1u, 2u, 3u, 70000u}) a.Add(v);
  for (uint32_t v : {2u, 3u, 4u, 70001u}) b.Add(v);
  a.IntersectWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{2, 3}));
}

TEST(RoaringTest, IntersectDropsEmptyContainers) {
  RoaringBitmap a, b;
  a.Add(1);
  a.Add(100000);
  b.Add(100000);
  a.IntersectWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{100000}));
}

TEST(RoaringTest, Clear) {
  RoaringBitmap a;
  for (uint32_t v = 0; v < 10000; ++v) a.Add(v);
  a.Clear();
  EXPECT_TRUE(a.Empty());
  a.Add(3);
  EXPECT_EQ(a.Cardinality(), 1u);
}

TEST(RoaringTest, EqualityOperator) {
  RoaringBitmap a, b;
  for (uint32_t v : {5u, 100u, 70000u}) {
    a.Add(v);
    b.Add(v);
  }
  EXPECT_TRUE(a == b);
  b.Add(6);
  EXPECT_FALSE(a == b);
}

TEST(RoaringTest, MemoryUpperBoundFormula) {
  // The Section 4.3 bound: 2Z + 9(u/65535 + 1) + 8.
  EXPECT_EQ(RoaringBitmap::MemoryUpperBound(0, 0), 17u);
  EXPECT_EQ(RoaringBitmap::MemoryUpperBound(100, 65535), 2 * 100 + 9 * 2 + 8);
}

TEST(RoaringTest, MemoryBytesGrowsSublinearlyForDense) {
  RoaringBitmap dense;
  for (uint32_t v = 0; v < 60000; ++v) dense.Add(v);
  // A dense chunk converts to an 8 KiB bitset: far below 2 bytes/value * 60k.
  EXPECT_LT(dense.MemoryBytes(), 2u * 60000u);
}

// ---- Property tests: RoaringBitmap vs std::set oracle ----

struct RandomCase {
  uint64_t seed;
  uint32_t universe;
  size_t inserts;
};

class RoaringPropertyTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RoaringPropertyTest, MatchesSetSemantics) {
  const RandomCase& param = GetParam();
  Rng rng(param.seed);
  RoaringBitmap bm;
  std::set<uint32_t> oracle;
  for (size_t i = 0; i < param.inserts; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(param.universe));
    bm.Add(v);
    oracle.insert(v);
  }
  ASSERT_EQ(bm.Cardinality(), oracle.size());
  EXPECT_EQ(bm.ToVector(),
            std::vector<uint32_t>(oracle.begin(), oracle.end()));
  for (size_t i = 0; i < 200; ++i) {
    uint32_t probe = static_cast<uint32_t>(rng.Uniform(param.universe));
    EXPECT_EQ(bm.Contains(probe), oracle.count(probe) > 0);
  }
}

TEST_P(RoaringPropertyTest, UnionMatchesSetUnion) {
  const RandomCase& param = GetParam();
  Rng rng(param.seed ^ 0xabcdef);
  RoaringBitmap a, b;
  std::set<uint32_t> sa, sb;
  for (size_t i = 0; i < param.inserts; ++i) {
    uint32_t va = static_cast<uint32_t>(rng.Uniform(param.universe));
    uint32_t vb = static_cast<uint32_t>(rng.Uniform(param.universe));
    a.Add(va);
    sa.insert(va);
    b.Add(vb);
    sb.insert(vb);
  }
  a.UnionWith(b);
  sa.insert(sb.begin(), sb.end());
  EXPECT_EQ(a.ToVector(), std::vector<uint32_t>(sa.begin(), sa.end()));
}

TEST_P(RoaringPropertyTest, IntersectMatchesSetIntersection) {
  const RandomCase& param = GetParam();
  Rng rng(param.seed ^ 0x123456);
  RoaringBitmap a, b;
  std::set<uint32_t> sa, sb;
  for (size_t i = 0; i < param.inserts; ++i) {
    uint32_t va = static_cast<uint32_t>(rng.Uniform(param.universe));
    uint32_t vb = static_cast<uint32_t>(rng.Uniform(param.universe));
    a.Add(va);
    sa.insert(va);
    b.Add(vb);
    sb.insert(vb);
  }
  a.IntersectWith(b);
  std::vector<uint32_t> expected;
  for (uint32_t v : sa) {
    if (sb.count(v)) expected.push_back(v);
  }
  EXPECT_EQ(a.ToVector(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RoaringPropertyTest,
    ::testing::Values(
        RandomCase{1, 100, 50},            // tiny, dense
        RandomCase{2, 1u << 10, 2000},     // small universe, saturated
        RandomCase{3, 1u << 20, 2000},     // sparse arrays
        RandomCase{4, 1u << 14, 20000},    // forces bitset conversion
        RandomCase{5, 1u << 28, 5000},     // many containers
        RandomCase{6, 70000, 69000}));     // nearly-full two containers

}  // namespace
}  // namespace spade

namespace spade {
namespace {

TEST(RoaringEdgeTest, MaxUint32) {
  RoaringBitmap bm;
  bm.Add(0xffffffffu);
  bm.Add(0);
  EXPECT_TRUE(bm.Contains(0xffffffffu));
  EXPECT_TRUE(bm.Contains(0));
  EXPECT_EQ(bm.ToVector(), (std::vector<uint32_t>{0, 0xffffffffu}));
}

TEST(RoaringEdgeTest, ExactConversionThreshold) {
  // 4096 values stay an array; the 4097th converts the container. Behaviour
  // must be identical on both sides of the boundary.
  RoaringBitmap bm;
  for (uint32_t v = 0; v < 4096; ++v) bm.Add(v);
  EXPECT_EQ(bm.Cardinality(), 4096u);
  bm.Add(4096);
  EXPECT_EQ(bm.Cardinality(), 4097u);
  for (uint32_t v = 0; v <= 4096; ++v) ASSERT_TRUE(bm.Contains(v));
  EXPECT_FALSE(bm.Contains(4097));
}

TEST(RoaringEdgeTest, UnionAcrossContainerKinds) {
  RoaringBitmap dense, sparse;
  for (uint32_t v = 0; v < 6000; ++v) dense.Add(v);  // bitset container
  for (uint32_t v = 0; v < 10; ++v) sparse.Add(v * 7000);
  RoaringBitmap a = dense;
  a.UnionWith(sparse);
  RoaringBitmap b = sparse;
  b.UnionWith(dense);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Cardinality(), 6000u + 9u);  // value 0 shared
}

TEST(RoaringEdgeTest, ChunkBoundaryValues) {
  RoaringBitmap bm;
  for (uint32_t v : {65535u, 65536u, 131071u, 131072u}) bm.Add(v);
  EXPECT_EQ(bm.Cardinality(), 4u);
  EXPECT_TRUE(bm.Contains(65535));
  EXPECT_TRUE(bm.Contains(65536));
  EXPECT_FALSE(bm.Contains(65537));
}

// ---- Inline small-set representation ----

TEST(RoaringInlineTest, InlineHoldsNoHeapUntilSpill) {
  RoaringBitmap bm;
  EXPECT_EQ(bm.MemoryBytes(), sizeof(RoaringBitmap));
  for (uint32_t v = 0; v < RoaringBitmap::kInlineCapacity; ++v) {
    bm.Add(v * 70001);  // spread across chunks: inline ignores chunking
  }
  EXPECT_EQ(bm.Cardinality(), RoaringBitmap::kInlineCapacity);
  EXPECT_EQ(bm.MemoryBytes(), sizeof(RoaringBitmap));  // still zero heap
  bm.Add(42);  // the spill
  EXPECT_EQ(bm.Cardinality(), RoaringBitmap::kInlineCapacity + 1);
  EXPECT_GT(bm.MemoryBytes(), sizeof(RoaringBitmap));
  EXPECT_TRUE(bm.Contains(42));
  for (uint32_t v = 0; v < RoaringBitmap::kInlineCapacity; ++v) {
    EXPECT_TRUE(bm.Contains(v * 70001));
  }
}

TEST(RoaringInlineTest, SpillPreservesOrderAndEquality) {
  // Same values, one bitmap kept inline, one genuinely spilled (built past
  // capacity, then intersected back down by a spilled filter — both
  // operands heap-backed, so the result stays heap-backed). Equal sets must
  // compare equal across the representation difference.
  std::vector<uint32_t> vals = {3, 99, 65535, 65536, 131072};
  RoaringBitmap inline_bm;
  for (uint32_t v : vals) inline_bm.Add(v);

  RoaringBitmap spilled_bm;
  for (uint32_t v : vals) spilled_bm.Add(v);
  for (uint32_t v = 0; v < RoaringBitmap::kInlineCapacity; ++v) {
    spilled_bm.Add(7777770 + v);  // force the spill
  }
  RoaringBitmap filter;  // spilled filter: vals plus enough padding
  for (uint32_t v : vals) filter.Add(v);
  for (uint32_t v = 0; v < 2 * RoaringBitmap::kInlineCapacity; ++v) {
    filter.Add(9999990 + v);
  }
  spilled_bm.IntersectWith(filter);
  EXPECT_EQ(spilled_bm.ToVector(), vals);
  EXPECT_GT(spilled_bm.MemoryBytes(), sizeof(RoaringBitmap));  // heap-backed
  EXPECT_TRUE(inline_bm == spilled_bm);
  EXPECT_TRUE(spilled_bm == inline_bm);
  EXPECT_EQ(inline_bm.ToVector(), vals);
}

TEST(RoaringInlineTest, InlineUnionAndIntersect) {
  RoaringBitmap a, b;
  a.Add(1);
  a.Add(100000);
  b.Add(100000);
  b.Add(7);
  a.UnionWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{1, 7, 100000}));
  EXPECT_EQ(a.MemoryBytes(), sizeof(RoaringBitmap));  // still inline
  a.IntersectWith(b);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{7, 100000}));
}

TEST(RoaringInlineTest, SpilledIntersectInlineGoesInline) {
  RoaringBitmap big, small;
  for (uint32_t v = 0; v < 10000; ++v) big.Add(v * 3);
  small.Add(3);
  small.Add(9);
  small.Add(10);  // not in big
  big.IntersectWith(small);
  EXPECT_EQ(big.ToVector(), (std::vector<uint32_t>{3, 9}));
  EXPECT_EQ(big.MemoryBytes(), sizeof(RoaringBitmap));  // back to inline
}

// ---- Ordered-append fast path ----

/// Build the same value set via Add (shuffled) and AppendOrdered (sorted);
/// the two must agree value-for-value with a std::set oracle.
void CheckAppendEqualsAdd(std::vector<uint32_t> values, uint64_t shuffle_seed) {
  std::set<uint32_t> oracle(values.begin(), values.end());
  std::vector<uint32_t> sorted(oracle.begin(), oracle.end());
  RoaringBitmap appended;
  for (uint32_t v : sorted) appended.AppendOrdered(v);
  Rng rng(shuffle_seed);
  std::vector<uint32_t> shuffled = values;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  RoaringBitmap added;
  for (uint32_t v : shuffled) added.Add(v);
  ASSERT_EQ(appended.Cardinality(), oracle.size());
  ASSERT_EQ(added.Cardinality(), oracle.size());
  EXPECT_EQ(appended.ToVector(), sorted);
  EXPECT_EQ(added.ToVector(), sorted);
  EXPECT_TRUE(appended == added);
  EXPECT_TRUE(added == appended);
}

TEST(RoaringAppendTest, MatchesAddAcrossShapes) {
  // Dense contiguous: exercises array -> run at the 4096 threshold.
  {
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 9000; ++i) v.push_back(i);
    CheckAppendEqualsAdd(v, 1);
  }
  // Stride-2: no runs, exercises array -> bitset.
  {
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 9000; ++i) v.push_back(2 * i);
    CheckAppendEqualsAdd(v, 2);
  }
  // Random sparse across many chunks.
  {
    Rng rng(3);
    std::vector<uint32_t> v;
    for (size_t i = 0; i < 5000; ++i) {
      v.push_back(static_cast<uint32_t>(rng.Uniform(1u << 26)));
    }
    CheckAppendEqualsAdd(v, 3);
  }
  // Chunk-boundary straddling: values packed around multiples of 65536.
  {
    std::vector<uint32_t> v;
    for (uint32_t c = 0; c < 5; ++c) {
      for (uint32_t d = 0; d < 6; ++d) {
        v.push_back(c * 65536 + 65533 + d);  // 65533..65538 per boundary
      }
    }
    CheckAppendEqualsAdd(v, 4);
  }
  // Both sides of the 4096 array threshold exactly.
  {
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < 4096; ++i) v.push_back(3 * i);
    CheckAppendEqualsAdd(v, 5);
    v.push_back(3 * 4096);
    CheckAppendEqualsAdd(v, 6);
  }
}

TEST(RoaringAppendTest, DuplicateAppendsAreIdempotent) {
  RoaringBitmap bm;
  for (uint32_t v : {5u, 5u, 9u, 9u, 9u, 70000u, 70000u}) bm.AppendOrdered(v);
  EXPECT_EQ(bm.ToVector(), (std::vector<uint32_t>{5, 9, 70000}));
  EXPECT_EQ(bm.Cardinality(), 3u);
}

TEST(RoaringAppendTest, ContiguousAppendUsesRunsNotBitsets) {
  // 60000 contiguous ids: one run per chunk, a few bytes each — far below
  // both the 2 B/value array model and the 8 KiB bitset.
  RoaringBitmap bm;
  for (uint32_t v = 0; v < 60000; ++v) bm.AppendOrdered(v);
  EXPECT_EQ(bm.Cardinality(), 60000u);
  EXPECT_LT(bm.MemoryBytes(), 2048u);
  EXPECT_LT(bm.MemoryBytes(), RoaringBitmap::MemoryUpperBound(60000, 60000));
  for (uint32_t v : {0u, 29999u, 59999u}) EXPECT_TRUE(bm.Contains(v));
  EXPECT_FALSE(bm.Contains(60000));
  std::vector<uint32_t> out = bm.ToVector();
  ASSERT_EQ(out.size(), 60000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.front(), 0u);
  EXPECT_EQ(out.back(), 59999u);
}

// ---- Run containers: conversion in both directions ----

TEST(RoaringRunTest, ArrayConvertsToRunAtThresholdWhenContiguous) {
  RoaringBitmap bm;
  for (uint32_t v = 0; v <= 4095; ++v) bm.Add(v);  // array, exactly full
  uint64_t array_bytes = bm.MemoryBytes();
  EXPECT_GE(array_bytes, 4096u * 2);  // 2 B/value while an array
  bm.Add(4096);  // crosses the threshold; one run compresses better
  EXPECT_EQ(bm.Cardinality(), 4097u);
  EXPECT_LT(bm.MemoryBytes(), 512u);  // a single run, not an 8 KiB bitset
  for (uint32_t v = 0; v <= 4096; ++v) ASSERT_TRUE(bm.Contains(v));
  EXPECT_FALSE(bm.Contains(4097));
}

TEST(RoaringRunTest, RunDegradesToBitsetWhenFragmented) {
  // Start from one run, then punch in isolated values until the run list
  // passes the 2048-run threshold and converts to a bitset — tracked
  // against a std::set oracle throughout.
  RoaringBitmap bm;
  std::set<uint32_t> oracle;
  for (uint32_t v = 0; v <= 4096; ++v) {
    bm.Add(v);
    oracle.insert(v);
  }
  for (uint32_t k = 0; k < 2500; ++k) {
    uint32_t v = 4098 + 2 * k;  // gaps keep every insert a singleton run
    bm.Add(v);
    oracle.insert(v);
  }
  EXPECT_EQ(bm.Cardinality(), oracle.size());
  EXPECT_EQ(bm.ToVector(),
            std::vector<uint32_t>(oracle.begin(), oracle.end()));
  // Now a bitset: memory is the flat 8 KiB + bookkeeping, below the run
  // encoding this fragmentation would need (> 2048 runs * 4 B... growing).
  EXPECT_GE(bm.MemoryBytes(), 8192u);
  for (uint32_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(bm.Contains(4098 + 2 * k));
    EXPECT_FALSE(bm.Contains(4099 + 2 * k));
  }
}

TEST(RoaringRunTest, UnionOfOverlappingRunsMergesExactly) {
  RoaringBitmap a, b;
  for (uint32_t v = 0; v <= 5000; ++v) a.AppendOrdered(v);
  for (uint32_t v = 4000; v <= 9000; ++v) b.AppendOrdered(v);
  a.UnionWith(b);
  EXPECT_EQ(a.Cardinality(), 9001u);
  EXPECT_LT(a.MemoryBytes(), 512u);  // one merged run
  EXPECT_TRUE(a.Contains(0));
  EXPECT_TRUE(a.Contains(9000));
  EXPECT_FALSE(a.Contains(9001));
}

TEST(RoaringRunTest, RunIntersectionsMatchSetSemantics) {
  RoaringBitmap run_a, run_b, arr, bits;
  std::set<uint32_t> sa, sb, sarr, sbits;
  for (uint32_t v = 100; v <= 8000; ++v) {
    run_a.AppendOrdered(v);
    sa.insert(v);
  }
  for (uint32_t v = 5000; v <= 12000; ++v) {
    run_b.AppendOrdered(v);
    sb.insert(v);
  }
  for (uint32_t v = 0; v < 3000; ++v) {
    arr.Add(v * 4);
    sarr.insert(v * 4);
  }
  for (uint32_t v = 0; v < 9000; ++v) {
    bits.Add(v * 2);  // stride 2: bitset container
    sbits.insert(v * 2);
  }
  auto expect_intersection = [](RoaringBitmap lhs, const RoaringBitmap& rhs,
                                const std::set<uint32_t>& sl,
                                const std::set<uint32_t>& sr) {
    lhs.IntersectWith(rhs);
    std::vector<uint32_t> expected;
    for (uint32_t v : sl) {
      if (sr.count(v)) expected.push_back(v);
    }
    EXPECT_EQ(lhs.ToVector(), expected);
    EXPECT_EQ(lhs.Cardinality(), expected.size());
  };
  expect_intersection(run_a, run_b, sa, sb);
  expect_intersection(run_b, run_a, sb, sa);
  expect_intersection(run_a, arr, sa, sarr);
  expect_intersection(arr, run_a, sarr, sa);
  expect_intersection(run_a, bits, sa, sbits);
  expect_intersection(bits, run_a, sbits, sa);
}

TEST(RoaringRunTest, EqualityAcrossContainerKinds) {
  // The same contiguous set built three ways: ordered append (run), shuffled
  // Add (run after threshold conversion), and via union with a bitset-heavy
  // detour. operator== must hold across representations.
  std::vector<uint32_t> vals;
  for (uint32_t v = 0; v < 5000; ++v) vals.push_back(v);
  RoaringBitmap appended;
  for (uint32_t v : vals) appended.AppendOrdered(v);
  RoaringBitmap added;
  Rng rng(11);
  std::vector<uint32_t> shuffled = vals;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  for (uint32_t v : shuffled) added.Add(v);
  // Bitset detour: evens then odds (each alone is stride-2 => bitset).
  RoaringBitmap evens, odds;
  for (uint32_t v = 0; v < 5000; v += 2) evens.Add(v);
  for (uint32_t v = 1; v < 5000; v += 2) odds.Add(v);
  evens.UnionWith(odds);
  EXPECT_TRUE(appended == added);
  EXPECT_TRUE(appended == evens);
  EXPECT_TRUE(evens == added);
  EXPECT_FALSE(appended != added);
  RoaringBitmap different = appended;
  different.Add(123456);
  EXPECT_TRUE(appended != different);
}

// ---- Batched decode ----

TEST(RoaringDecodeTest, DecodeIntoAndBlocksMatchForEach) {
  Rng rng(17);
  RoaringBitmap bm;
  for (size_t i = 0; i < 30000; ++i) {
    bm.Add(static_cast<uint32_t>(rng.Uniform(1u << 18)));
  }
  for (uint32_t v = 200000; v < 206000; ++v) bm.AppendOrdered(v);  // a run
  std::vector<uint32_t> via_foreach;
  bm.ForEach([&](uint32_t v) { via_foreach.push_back(v); });
  std::vector<uint32_t> via_decode;
  bm.DecodeInto(&via_decode);
  EXPECT_EQ(via_decode, via_foreach);
  std::vector<uint32_t> via_blocks, scratch;
  bm.ForEachBlock(&scratch, [&](const uint32_t* data, size_t n) {
    via_blocks.insert(via_blocks.end(), data, data + n);
  });
  EXPECT_EQ(via_blocks, via_foreach);
  EXPECT_EQ(via_decode.size(), bm.Cardinality());
}

TEST(RoaringDecodeTest, DecodeEmptyAndInline) {
  RoaringBitmap bm;
  std::vector<uint32_t> out{1, 2, 3};
  bm.DecodeInto(&out);
  EXPECT_TRUE(out.empty());
  bm.Add(77);
  bm.Add(5);
  bm.DecodeInto(&out);
  EXPECT_EQ(out, (std::vector<uint32_t>{5, 77}));
  size_t blocks = 0;
  std::vector<uint32_t> scratch;
  bm.ForEachBlock(&scratch, [&](const uint32_t* data, size_t n) {
    ++blocks;
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(data[0], 5u);
    EXPECT_EQ(data[1], 77u);
  });
  EXPECT_EQ(blocks, 1u);  // the inline set is one block
}

// ---- Cached cardinality ----

TEST(RoaringCardinalityTest, CacheTracksEveryMutator) {
  Rng rng(23);
  RoaringBitmap bm;
  std::set<uint32_t> oracle;
  auto check = [&] {
    ASSERT_EQ(bm.Cardinality(), oracle.size());
    ASSERT_EQ(bm.ToVector().size(), oracle.size());
  };
  for (size_t round = 0; round < 40; ++round) {
    switch (rng.Uniform(4)) {
      case 0:  // random adds
        for (size_t i = 0; i < 300; ++i) {
          uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 16));
          bm.Add(v);
          oracle.insert(v);
        }
        break;
      case 1: {  // ordered appends past the current max
        uint32_t base = oracle.empty() ? 0 : *oracle.rbegin();
        for (size_t i = 0; i < 300; ++i) {
          base += 1 + static_cast<uint32_t>(rng.Uniform(3));
          bm.AppendOrdered(base);
          oracle.insert(base);
        }
        break;
      }
      case 2: {  // union with a random bitmap
        RoaringBitmap other;
        for (size_t i = 0; i < 400; ++i) {
          uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 17));
          other.Add(v);
          oracle.insert(v);
        }
        bm.UnionWith(other);
        break;
      }
      case 3: {  // intersect with a generous superset-ish filter
        RoaringBitmap filter;
        std::set<uint32_t> kept;
        for (uint32_t v : oracle) {
          if (rng.Uniform(10) != 0) {
            filter.Add(v);
            kept.insert(v);
          }
        }
        bm.IntersectWith(filter);
        oracle = std::move(kept);
        break;
      }
    }
    check();
  }
  bm.Clear();
  oracle.clear();
  check();
}

// ---- Randomized mixed-operation differential test ----

struct MixedCase {
  uint64_t seed;
  uint32_t universe;
  size_t rounds;
};

class RoaringMixedOpTest : public ::testing::TestWithParam<MixedCase> {};

TEST_P(RoaringMixedOpTest, AgreesWithSetOracle) {
  const MixedCase& param = GetParam();
  Rng rng(param.seed);
  RoaringBitmap bm;
  std::set<uint32_t> oracle;
  uint32_t append_cursor = 0;
  for (size_t round = 0; round < param.rounds; ++round) {
    switch (rng.Uniform(3)) {
      case 0:
        for (size_t i = 0; i < 500; ++i) {
          uint32_t v = static_cast<uint32_t>(rng.Uniform(param.universe));
          bm.Add(v);
          oracle.insert(v);
        }
        break;
      case 1:
        // AppendOrdered is only legal from the current max upward.
        append_cursor = std::max(
            append_cursor, oracle.empty() ? 0 : *oracle.rbegin());
        for (size_t i = 0; i < 500; ++i) {
          append_cursor += 1 + static_cast<uint32_t>(rng.Uniform(4));
          bm.AppendOrdered(append_cursor);
          oracle.insert(append_cursor);
        }
        break;
      case 2: {
        RoaringBitmap other;
        std::set<uint32_t> so;
        size_t n = 1 + rng.Uniform(800);
        for (size_t i = 0; i < n; ++i) {
          uint32_t v = static_cast<uint32_t>(rng.Uniform(param.universe));
          other.Add(v);
          so.insert(v);
        }
        if (rng.Bernoulli(0.7)) {
          bm.UnionWith(other);
          oracle.insert(so.begin(), so.end());
        } else {
          // Intersect with (other ∪ half of the current values) so the
          // result neither collapses nor stays trivially unchanged.
          for (uint32_t v : oracle) {
            if (rng.Bernoulli(0.5)) {
              other.Add(v);
              so.insert(v);
            }
          }
          bm.IntersectWith(other);
          std::set<uint32_t> kept;
          for (uint32_t v : oracle) {
            if (so.count(v)) kept.insert(v);
          }
          oracle = std::move(kept);
        }
        break;
      }
    }
    ASSERT_EQ(bm.Cardinality(), oracle.size()) << "round " << round;
  }
  EXPECT_EQ(bm.ToVector(), std::vector<uint32_t>(oracle.begin(), oracle.end()));
  for (size_t i = 0; i < 500; ++i) {
    uint32_t probe = static_cast<uint32_t>(rng.Uniform(param.universe));
    ASSERT_EQ(bm.Contains(probe), oracle.count(probe) > 0) << probe;
  }
  RoaringBitmap rebuilt;
  for (uint32_t v : oracle) rebuilt.AppendOrdered(v);
  EXPECT_TRUE(bm == rebuilt);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoaringMixedOpTest,
    ::testing::Values(MixedCase{101, 1u << 12, 30},   // dense, forces bitsets
                      MixedCase{102, 1u << 16, 30},   // one-chunk boundary mix
                      MixedCase{103, 1u << 22, 30},   // sparse arrays
                      MixedCase{104, 1u << 28, 20},   // many chunks
                      MixedCase{105, 300000, 40}));   // overlapping mid-density

}  // namespace
}  // namespace spade
