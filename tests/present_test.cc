#include "src/core/present.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/export.h"

namespace spade {
namespace {

/// Minimal fixture with a real AttributeStore (labels resolve through it) and a
/// hand-built insight.
class PresentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dictionary& d = graph.dict();
    angola = d.InternString("Angola");
    brazil = d.InternString("Brazil");
    france = d.InternIri("http://x/country/France");
    female = d.InternString("Female");
    male = d.InternString("Male");
    // The database needs at least the attributes referenced by keys.
    AttributeTable nat;
    nat.name = "nationality";
    AttributeTable gender;
    gender.name = "gender";
    AttributeTable nw;
    nw.name = "netWorth";
    db = std::make_unique<AttributeStore>(&graph);
    a_nat = db->AddAttribute(std::move(nat));
    a_gender = db->AddAttribute(std::move(gender));
    a_nw = db->AddAttribute(std::move(nw));
  }

  Insight MakeInsight(std::vector<AttrId> dims,
                      std::vector<GroupResult> groups) {
    Insight insight;
    insight.ranked.key.cfs_id = 0;
    insight.ranked.key.dims = std::move(dims);
    insight.ranked.key.measure = MeasureSpec{a_nw, sparql::AggFunc::kSum};
    insight.ranked.score = 42.5;
    insight.ranked.num_groups = groups.size();
    insight.ranked.groups = std::move(groups);
    insight.cfs_name = "type:CEO";
    insight.description = "sum(netWorth) of type:CEO";
    insight.sparql = "SELECT ...";
    return insight;
  }

  Graph graph;
  std::unique_ptr<AttributeStore> db;
  TermId angola, brazil, france, female, male;
  AttrId a_nat, a_gender, a_nw;
};

TEST_F(PresentTest, RecommendationByDimensionality) {
  AggregateKey key;
  key.dims = {a_nat};
  EXPECT_EQ(RecommendVisualization(key), VisualizationKind::kHistogram);
  key.dims = {a_nat, a_gender};
  EXPECT_EQ(RecommendVisualization(key), VisualizationKind::kHeatMap);
  key.dims = {a_nat, a_gender, a_nw};
  EXPECT_EQ(RecommendVisualization(key), VisualizationKind::kTable);
  key.dims = {};
  EXPECT_EQ(RecommendVisualization(key), VisualizationKind::kTable);
}

TEST_F(PresentTest, ValueLabelShortensIris) {
  EXPECT_EQ(ValueLabel(*db, france), "France");
  EXPECT_EQ(ValueLabel(*db, angola), "Angola");
}

TEST_F(PresentTest, HistogramSortsAndScales) {
  Insight insight = MakeInsight(
      {a_nat}, {{{angola}, 100.0}, {{brazil}, 25.0}, {{france}, 50.0}});
  std::ostringstream os;
  RenderHistogram(*db, insight, RenderOptions(), os);
  std::string out = os.str();
  // Largest value first, full-width bar.
  size_t pos_angola = out.find("Angola");
  size_t pos_france = out.find("France");
  size_t pos_brazil = out.find("Brazil");
  ASSERT_NE(pos_angola, std::string::npos);
  EXPECT_LT(pos_angola, pos_france);
  EXPECT_LT(pos_france, pos_brazil);
  EXPECT_NE(out.find(std::string(40, '#')), std::string::npos);
}

TEST_F(PresentTest, HistogramCapsRowsAndSaysSo) {
  std::vector<GroupResult> groups;
  for (int i = 0; i < 30; ++i) {
    groups.push_back({{graph.dict().InternString("v" + std::to_string(i))},
                      static_cast<double>(i)});
  }
  Insight insight = MakeInsight({a_nat}, std::move(groups));
  RenderOptions opts;
  opts.max_rows = 5;
  std::ostringstream os;
  RenderHistogram(*db, insight, opts, os);
  EXPECT_NE(os.str().find("25 more groups"), std::string::npos);
}

TEST_F(PresentTest, HeatMapGridWithScale) {
  Insight insight = MakeInsight({a_nat, a_gender}, {{{angola, female}, 1.0},
                                                    {{angola, male}, 5.0},
                                                    {{brazil, male}, 9.0}});
  std::ostringstream os;
  RenderHeatMap(*db, insight, RenderOptions(), os);
  std::string out = os.str();
  EXPECT_NE(out.find("Angola"), std::string::npos);
  EXPECT_NE(out.find("scale:"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);  // the max cell
  EXPECT_NE(out.find("."), std::string::npos);  // the min cell
}

TEST_F(PresentTest, TableListsTuples) {
  Insight insight = MakeInsight(
      {a_nat, a_gender, a_nw},
      {{{angola, female, brazil}, 7.0}, {{brazil, male, angola}, 3.0}});
  std::ostringstream os;
  RenderTable(*db, insight, RenderOptions(), os);
  std::string out = os.str();
  EXPECT_NE(out.find("Angola / Female / Brazil = 7"), std::string::npos);
}

TEST_F(PresentTest, RenderInsightDispatches) {
  Insight one = MakeInsight({a_nat}, {{{angola}, 1.0}});
  std::ostringstream os1;
  RenderInsight(*db, one, RenderOptions(), os1);
  EXPECT_NE(os1.str().find("histogram"), std::string::npos);

  Insight two =
      MakeInsight({a_nat, a_gender}, {{{angola, female}, 1.0}});
  std::ostringstream os2;
  RenderInsight(*db, two, RenderOptions(), os2);
  EXPECT_NE(os2.str().find("heat-map"), std::string::npos);
}

TEST_F(PresentTest, EmptyGroupsHandled) {
  Insight insight = MakeInsight({a_nat}, {});
  std::ostringstream os;
  RenderHistogram(*db, insight, RenderOptions(), os);
  EXPECT_NE(os.str().find("(no groups)"), std::string::npos);
}

TEST_F(PresentTest, UniformHeatMapDoesNotDivideByZero) {
  Insight insight = MakeInsight({a_nat, a_gender}, {{{angola, female}, 5.0},
                                                    {{brazil, male}, 5.0}});
  std::ostringstream os;
  RenderHeatMap(*db, insight, RenderOptions(), os);
  EXPECT_FALSE(os.str().empty());
}

// ---- export ----

TEST_F(PresentTest, JsonEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("q\"u\\o\nt"), "q\\\"u\\\\o\\nt");
  EXPECT_EQ(JsonEscape(std::string(1, '\x02')), "\\u0002");
}

TEST_F(PresentTest, CsvEscaping) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST_F(PresentTest, JsonExportWellFormedShape) {
  Insight insight = MakeInsight({a_nat}, {{{angola}, 2.5}, {{brazil}, 7.5}});
  std::ostringstream os;
  ExportInsightsJson(*db, {insight}, InterestingnessKind::kVariance, os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"interestingness\": \"variance\""), std::string::npos);
  EXPECT_NE(out.find("\"rank\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"measure\": \"SUM(netWorth)\""), std::string::npos);
  EXPECT_NE(out.find("\"visualization\": \"histogram\""), std::string::npos);
  EXPECT_NE(out.find("\"key\": [\"Angola\"], \"value\": 2.5"),
            std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST_F(PresentTest, JsonExportEmptyList) {
  std::ostringstream os;
  ExportInsightsJson(*db, {}, InterestingnessKind::kSkewness, os);
  EXPECT_NE(os.str().find("\"insights\": []"), std::string::npos);
}

TEST_F(PresentTest, CsvExportFlattensGroups) {
  Insight insight = MakeInsight({a_nat}, {{{angola}, 1.0}, {{brazil}, 2.0}});
  std::ostringstream os;
  ExportInsightsCsv(*db, {insight}, os);
  std::string out = os.str();
  EXPECT_NE(out.find("rank,score,cfs,description,group,value"),
            std::string::npos);
  EXPECT_NE(out.find("1,42.5,type:CEO"), std::string::npos);
  EXPECT_NE(out.find("Angola,1"), std::string::npos);
  EXPECT_NE(out.find("Brazil,2"), std::string::npos);
}

}  // namespace
}  // namespace spade
