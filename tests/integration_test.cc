// Cross-module integration tests: format round-trips feeding the pipeline,
// cross-algorithm agreement at the pipeline level, and SPARQL as an
// independent oracle for MVDCube results.

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/export.h"
#include "src/core/present.h"
#include "src/core/reference.h"
#include "src/core/spade.h"
#include "src/datagen/realworld.h"
#include "src/rdf/csv2rdf.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/turtle.h"
#include "src/sparql/eval.h"
#include "src/sparql/parser.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace spade {
namespace {

TEST(IntegrationTest, TurtleAndNTriplesProduceIdenticalAnalyses) {
  // The same graph serialized two ways must yield identical top-k insights.
  std::string turtle = R"(
@prefix ex: <http://z/> .
)";
  std::string ntriples;
  Rng rng(31);
  for (int i = 0; i < 120; ++i) {
    std::string subj = "item" + std::to_string(i);
    std::string cat = "cat" + std::to_string(rng.Uniform(4));
    int64_t price = static_cast<int64_t>(10 + rng.Uniform(90) +
                                         (rng.Bernoulli(0.05) ? 500 : 0));
    turtle += "ex:" + subj + " a ex:Item ; ex:category ex:" + cat +
              " ; ex:price " + std::to_string(price) + " .\n";
    ntriples +=
        "<http://z/" + subj +
        "> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://z/Item> "
        ".\n<http://z/" +
        subj + "> <http://z/category> <http://z/" + cat + "> .\n<http://z/" +
        subj + "> <http://z/price> \"" + std::to_string(price) +
        "\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  }
  Graph g1, g2;
  ASSERT_TRUE(TurtleReader::ParseString(turtle, &g1).ok());
  ASSERT_TRUE(NTriplesReader::ParseString(ntriples, &g2).ok());
  ASSERT_EQ(g1.NumTriples(), g2.NumTriples());

  auto run = [](Graph* g) {
    SpadeOptions options;
    options.cfs.min_size = 20;
    options.top_k = 3;
    Spade spade(g, options);
    EXPECT_TRUE(spade.RunOffline().ok());
    auto insights = spade.RunOnline();
    EXPECT_TRUE(insights.ok());
    std::vector<std::pair<std::string, double>> out;
    for (const auto& insight : *insights) {
      out.emplace_back(insight.description, insight.ranked.score);
    }
    return out;
  };
  auto r1 = run(&g1);
  auto r2 = run(&g2);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].first, r2[i].first);
    EXPECT_NEAR(r1[i].second, r2[i].second, 1e-9 * std::max(1.0, r1[i].second));
  }
}

TEST(IntegrationTest, SparqlOracleValidatesMvdCubeOnMultiValuedData) {
  // For a single-dimension MDA, a COUNT(DISTINCT ?cf) SPARQL query is an
  // independent statement of the Section 2 semantics; MVDCube (through the
  // pipeline ARM) must agree group by group, even with multi-valued dims.
  Graph g;
  Dictionary& d = g.dict();
  Rng rng(17);
  TermId type = d.InternIri("http://q/T");
  TermId area = d.InternIri("http://q/area");
  for (int i = 0; i < 90; ++i) {
    TermId f = d.InternIri("http://q/f" + std::to_string(i));
    g.Add(f, g.rdf_type(), type);
    size_t k = 1 + rng.Uniform(3);  // multi-valued
    for (size_t j = 0; j < k; ++j) {
      g.Add(f, area, d.InternString("a" + std::to_string(rng.Uniform(5))));
    }
  }
  g.Freeze();

  AttributeStore db(&g);
  db.BuildDirectAttributes();
  CfsIndex cfs(g.NodesOfType(type));
  LatticeSpec spec;
  spec.dims = {*db.FindAttribute("area")};
  spec.measures = {MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount}};
  Arm arm(4096);
  MeasureCache cache;
  EvaluateLatticeMvd(db, 0, cfs, spec, MvdCubeOptions(), &arm, &cache);

  auto q = sparql::ParseQuery(
      "SELECT ?a (COUNT(DISTINCT ?cf) AS ?c) WHERE { "
      "?cf a <http://q/T> . ?cf <http://q/area> ?a . } GROUP BY ?a",
      &g.dict());
  ASSERT_TRUE(q.ok());
  auto rs = sparql::Evaluate(*q, g);
  ASSERT_TRUE(rs.ok());

  AggregateKey key;
  key.cfs_id = 0;
  key.dims = spec.dims;
  key.measure = spec.measures[0];
  Arm::Handle h = arm.Find(key);
  ASSERT_NE(h, Arm::kInvalidHandle);
  const auto& groups = arm.stored_groups(h);
  ASSERT_EQ(groups.size(), rs->rows.size());
  for (const auto& row : rs->rows) {
    bool matched = false;
    for (const auto& grp : groups) {
      if (grp.dim_values[0] == row[0].term) {
        EXPECT_DOUBLE_EQ(grp.value, row[1].num);
        matched = true;
      }
    }
    EXPECT_TRUE(matched);
  }
}

TEST(IntegrationTest, CsvPipelineMatchesHandBuiltGraphPipeline) {
  std::string csv = "cat,price\n";
  Graph manual;
  Dictionary& d = manual.dict();
  TermId type = d.InternIri("http://csv.spade/Row");
  TermId p_cat = d.InternIri("http://csv.spade/cat");
  TermId p_price = d.InternIri("http://csv.spade/price");
  Rng rng(5);
  for (int i = 0; i < 150; ++i) {
    std::string cat = "c" + std::to_string(rng.Uniform(3));
    int64_t price = static_cast<int64_t>(rng.Uniform(100));
    csv += cat + "," + std::to_string(price) + "\n";
    TermId row = d.InternIri("http://csv.spade/row/" + std::to_string(i));
    manual.Add(row, manual.rdf_type(), type);
    manual.Add(row, p_cat, d.InternString(cat));
    manual.Add(row, p_price, d.InternInteger(price));
  }
  manual.Freeze();

  Graph converted;
  auto rows = CsvToRdfString(csv, Csv2RdfOptions(), &converted);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(*rows, 150u);
  EXPECT_EQ(converted.NumTriples(), manual.NumTriples());

  auto run = [](Graph* g) {
    SpadeOptions options;
    options.cfs.min_size = 50;
    options.top_k = 2;
    Spade spade(g, options);
    EXPECT_TRUE(spade.RunOffline().ok());
    auto insights = spade.RunOnline();
    EXPECT_TRUE(insights.ok());
    std::vector<double> scores;
    for (const auto& i : *insights) scores.push_back(i.ranked.score);
    return scores;
  };
  auto s1 = run(&manual);
  auto s2 = run(&converted);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_NEAR(s1[i], s2[i], 1e-9 * std::max(1.0, s1[i]));
  }
}

TEST(IntegrationTest, ExportRoundTripsThroughRendering) {
  // The full output path — pipeline -> render + JSON + CSV — never throws
  // and produces consistent counts on a real-shaped graph.
  auto graph = GenerateNobel(3, 0.2);
  SpadeOptions options;
  options.top_k = 4;
  options.max_stored_groups = 64;
  Spade spade(graph.get(), options);
  ASSERT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  ASSERT_TRUE(insights.ok());
  ASSERT_FALSE(insights->empty());

  std::ostringstream rendered, json, csv;
  RenderOptions render;
  for (const auto& insight : *insights) {
    RenderInsight(spade.store(), insight, render, rendered);
  }
  ExportInsightsJson(spade.store(), *insights, options.interestingness, json);
  ExportInsightsCsv(spade.store(), *insights, csv);

  EXPECT_FALSE(rendered.str().empty());
  // Every insight appears once in the JSON.
  std::string json_str = json.str();
  size_t ranks = 0, pos = 0;
  while ((pos = json_str.find("\"rank\":", pos)) != std::string::npos) {
    ++ranks;
    pos += 7;
  }
  EXPECT_EQ(ranks, insights->size());
  // CSV rows = header + sum of stored groups.
  std::string csv_str = csv.str();
  size_t lines =
      static_cast<size_t>(std::count(csv_str.begin(), csv_str.end(), '\n'));
  size_t expected = 1;
  for (const auto& insight : *insights) {
    expected += insight.ranked.groups.size();
  }
  EXPECT_EQ(lines, expected);
}

TEST(IntegrationTest, InterestingnessKindsChangeTheRanking) {
  // variance favours magnitude outliers; skewness favours asymmetry — on a
  // graph with both, the top insight differs.
  auto graph = GenerateCeos(9, 0.3);
  auto top_desc = [&](InterestingnessKind kind) {
    auto g2 = GenerateCeos(9, 0.3);
    SpadeOptions options;
    options.top_k = 1;
    options.interestingness = kind;
    Spade spade(g2.get(), options);
    EXPECT_TRUE(spade.RunOffline().ok());
    auto insights = spade.RunOnline();
    EXPECT_TRUE(insights.ok());
    return insights->empty() ? std::string() : (*insights)[0].description;
  };
  std::string by_variance = top_desc(InterestingnessKind::kVariance);
  std::string by_kurtosis = top_desc(InterestingnessKind::kKurtosis);
  EXPECT_FALSE(by_variance.empty());
  EXPECT_FALSE(by_kurtosis.empty());
  // Not universally guaranteed, but holds on this fixed seed/dataset; a
  // change here signals the scoring paths collapsed into one.
  EXPECT_NE(by_variance, by_kurtosis);
}

TEST(IntegrationTest, SaturatedTurtleOntologyFlowsThroughPipeline) {
  std::string doc = R"(
@prefix ex: <http://o/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:CEO rdfs:subClassOf ex:Person .
)";
  Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    doc += "ex:p" + std::to_string(i) + " a ex:CEO ; ex:age " +
           std::to_string(30 + rng.Uniform(40)) + " ; ex:city ex:c" +
           std::to_string(rng.Uniform(4)) + " .\n";
  }
  Graph g;
  ASSERT_TRUE(TurtleReader::ParseString(doc, &g).ok());
  SpadeOptions options;
  options.saturate = true;
  options.cfs.min_size = 20;
  options.top_k = 3;
  Spade spade(&g, options);
  ASSERT_TRUE(spade.RunOffline().ok());
  auto insights = spade.RunOnline();
  ASSERT_TRUE(insights.ok());
  EXPECT_FALSE(insights->empty());
  // Saturation materialized ex:Person types.
  TermId person = *g.dict().Lookup(Term::Iri("http://o/Person"));
  EXPECT_EQ(g.NodesOfType(person).size(), 60u);
}

}  // namespace
}  // namespace spade
