// Cooperative cancellation, deadlines and resource budgets: a cancelled or
// budget-limited run must return a canonical-order prefix of the full result
// stream — bit-identical at every thread and shard count — and mark itself
// truncated with the right reason, while the pipeline object stays usable.

#include "src/util/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/spade.h"
#include "src/datagen/synthetic.h"
#include "src/exec/thread_pool.h"
#include "src/util/timer.h"

namespace spade {
namespace {

SyntheticOptions MediumCorpus() {
  SyntheticOptions sopts;
  sopts.num_facts = 4000;
  sopts.dim_cardinality.assign(3, 20);
  sopts.num_measures = 3;
  sopts.num_fact_types = 4;
  return sopts;
}

SpadeOptions BaseOptions() {
  SpadeOptions options;
  options.cfs.min_size = 20;
  options.enumeration.max_dims = 2;
  options.enumeration.max_lattices_per_cfs = 4;
  options.enumeration.max_measures_per_lattice = 2;
  options.top_k = 8;
  return options;
}

/// Flatten an insight list to a comparable fingerprint (keys + exact scores:
/// the determinism contract is bit-identical, not approximately equal).
std::vector<std::pair<AggregateKey, double>> Fingerprint(
    const std::vector<Insight>& insights) {
  std::vector<std::pair<AggregateKey, double>> out;
  out.reserve(insights.size());
  for (const Insight& i : insights) {
    out.emplace_back(i.ranked.key, i.ranked.score);
  }
  return out;
}

TEST(CancelTokenTest, FirstReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  token.Cancel(CancelReason::kDeadline);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  token.Cancel(CancelReason::kCancelled);  // loses: already cancelled
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, DeadlineExpiryAndLatch) {
  EXPECT_FALSE(Deadline::Never().expired());
  EXPECT_TRUE(Deadline::After(0).expired());
  EXPECT_TRUE(Deadline::After(-5).expired());
  EXPECT_FALSE(Deadline::After(60000).expired());

  // An expired deadline latches its reason into the token via AbortNow.
  CancelToken token;
  CancelCheck check(&token, Deadline::After(0));
  EXPECT_TRUE(check.AbortNow());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_TRUE(check.SkipNewWork());

  // Default-constructed check never fires (the no-cancellation fast path).
  CancelCheck none;
  EXPECT_FALSE(none.AbortNow());
  EXPECT_FALSE(none.SkipNewWork());

  // A budget-cancelled token skips new work but does not abort running work.
  CancelToken budget;
  budget.Cancel(CancelReason::kBudget);
  CancelCheck bcheck(&budget, Deadline::Never());
  EXPECT_FALSE(bcheck.AbortNow());
  EXPECT_TRUE(bcheck.SkipNewWork());
}

TEST(CancelTest, ZeroDeadlineReturnsImmediatelyAndIdenticallyEverywhere) {
  // deadline 0 = already expired: no CFS is admitted, the result is empty
  // and marked truncated(deadline), at every thread x shard combination.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t shards : {size_t{1}, size_t{4}}) {
      auto graph = GenerateSynthetic(MediumCorpus());
      SpadeOptions options = BaseOptions();
      options.num_threads = threads;
      options.num_shards = shards;
      options.deadline_ms = 0;  // 0 = none at the pipeline level...
      Spade spade(graph.get(), options);
      ASSERT_TRUE(spade.RunOffline().ok());
      ASSERT_TRUE(spade.PrepareFactSets().ok());

      // ...but an explicit request deadline of 0 means "already expired".
      ExploreRequest req;
      req.deadline_ms = 0;
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
      TaskScheduler scheduler(pool.get());
      auto outcome = spade.Explore(req, &scheduler);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_TRUE(outcome->truncated);
      EXPECT_EQ(outcome->cancel_reason, CancelReason::kDeadline);
      EXPECT_EQ(outcome->num_cfs_completed, 0u);
      EXPECT_TRUE(outcome->insights.empty());

      // The pipeline object survives and still answers in full.
      ExploreRequest full;
      auto complete = spade.Explore(full, &scheduler);
      ASSERT_TRUE(complete.ok());
      EXPECT_FALSE(complete->truncated);
      EXPECT_FALSE(complete->insights.empty());
    }
  }
}

TEST(CancelTest, PreCancelledTokenYieldsEmptyTruncatedResult) {
  auto graph = GenerateSynthetic(MediumCorpus());
  Spade spade(graph.get(), BaseOptions());
  ASSERT_TRUE(spade.RunOffline().ok());
  ASSERT_TRUE(spade.PrepareFactSets().ok());
  CancelToken token;
  token.Cancel(CancelReason::kCancelled);
  ExploreRequest req;
  req.cancel = &token;
  auto outcome = spade.Explore(req, /*scheduler=*/nullptr);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->truncated);
  EXPECT_EQ(outcome->cancel_reason, CancelReason::kCancelled);
  EXPECT_TRUE(outcome->insights.empty());
}

TEST(CancelTest, BudgetTruncationIsIdenticalAtEveryThreadAndShardCount) {
  // A per-CFS bitmap budget trips at a cut that is a pure function of the
  // canonical group stream, and the commit rule absorbs full CFSs in cfs_id
  // order up to the first truncated one — so the whole truncated result is
  // bit-identical across configurations.
  std::vector<std::pair<AggregateKey, double>> reference;
  size_t reference_completed = 0;
  size_t reference_skipped = 0;
  bool first = true;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t shards : {size_t{1}, size_t{4}}) {
      auto graph = GenerateSynthetic(MediumCorpus());
      SpadeOptions options = BaseOptions();
      options.num_threads = threads;
      options.num_shards = shards;
      options.max_bitmap_bytes = 16 * 1024;  // small enough to trip mid-run
      Spade spade(graph.get(), options);
      ASSERT_TRUE(spade.RunOffline().ok());
      auto insights = spade.RunOnline();
      ASSERT_TRUE(insights.ok()) << insights.status().ToString();
      const SpadeReport& report = spade.report();
      EXPECT_TRUE(report.truncated);
      EXPECT_EQ(report.cancel_reason, CancelReason::kBudget);
      EXPECT_GT(report.num_groups_skipped, 0u);
      if (first) {
        reference = Fingerprint(*insights);
        reference_completed = report.num_cfs_completed;
        reference_skipped = report.num_groups_skipped;
        first = false;
        continue;
      }
      EXPECT_EQ(Fingerprint(*insights), reference)
          << threads << " threads, " << shards << " shards";
      EXPECT_EQ(report.num_cfs_completed, reference_completed);
      EXPECT_EQ(report.num_groups_skipped, reference_skipped);
    }
  }
}

TEST(CancelTest, ExternalCancelCommitsACanonicalPrefix) {
  // Cancel from another thread mid-run: where the run stops is timing-
  // dependent, but what it commits must be a prefix — the first
  // num_cfs_completed CFSs, whose insights match a fresh full evaluation
  // of exactly those CFSs.
  auto graph = GenerateSynthetic(MediumCorpus());
  SpadeOptions options = BaseOptions();
  options.num_threads = 4;
  CancelToken token;
  options.cancel = &token;
  Spade spade(graph.get(), options);
  ASSERT_TRUE(spade.RunOffline().ok());
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel(CancelReason::kCancelled);
  });
  auto insights = spade.RunOnline();
  canceller.join();
  ASSERT_TRUE(insights.ok()) << insights.status().ToString();
  const SpadeReport& report = spade.report();
  if (!report.truncated) {
    GTEST_SKIP() << "run finished before the cancel landed";
  }
  EXPECT_EQ(report.cancel_reason, CancelReason::kCancelled);
  ASSERT_LE(report.num_cfs_completed, spade.fact_sets().size());

  // Reference: evaluate exactly the committed prefix, uncancelled.
  std::vector<std::string> prefix_names;
  for (size_t i = 0; i < report.num_cfs_completed; ++i) {
    prefix_names.push_back(spade.fact_sets()[i].name);
  }
  auto graph2 = GenerateSynthetic(MediumCorpus());
  SpadeOptions clean = BaseOptions();
  Spade reference(graph2.get(), clean);
  ASSERT_TRUE(reference.RunOffline().ok());
  ASSERT_TRUE(reference.PrepareFactSets().ok());
  ExploreRequest req;
  req.cfs_names = prefix_names;
  if (prefix_names.empty()) {
    EXPECT_TRUE(insights->empty());
    return;
  }
  auto outcome = reference.Explore(req, /*scheduler=*/nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(Fingerprint(*insights), Fingerprint(outcome->insights));
}

TEST(CancelTest, DeadlineTruncatesWithinABoundedOvershoot) {
  // Loose timing contract: with a deadline well under the uncancelled wall
  // clock, the run must come back truncated(deadline) without running to
  // completion anyway. Generous bounds keep this stable on slow CI machines.
  SyntheticOptions corpus = MediumCorpus();
  corpus.num_facts = 30000;  // heavy enough that the full run takes > 40 ms
  corpus.dim_cardinality.assign(4, 40);
  auto graph = GenerateSynthetic(corpus);
  SpadeOptions options = BaseOptions();
  options.enumeration.max_dims = 3;
  options.enumeration.max_lattices_per_cfs = 12;
  options.num_threads = 2;
  Spade timed(graph.get(), options);
  ASSERT_TRUE(timed.RunOffline().ok());
  Timer wall;
  auto full = timed.RunOnline();
  ASSERT_TRUE(full.ok());
  const double full_ms = wall.ElapsedMillis();
  if (full_ms < 40) {
    GTEST_SKIP() << "corpus evaluates too fast to cut reliably (" << full_ms
                 << " ms)";
  }
  auto graph2 = GenerateSynthetic(corpus);
  SpadeOptions dopt = options;
  dopt.deadline_ms = full_ms / 4;
  Spade spade(graph2.get(), dopt);
  ASSERT_TRUE(spade.RunOffline().ok());
  Timer timer;
  auto insights = spade.RunOnline();
  const double elapsed = timer.ElapsedMillis();
  ASSERT_TRUE(insights.ok()) << insights.status().ToString();
  EXPECT_TRUE(spade.report().truncated);
  EXPECT_EQ(spade.report().cancel_reason, CancelReason::kDeadline);
  // Cooperative, not preemptive: allow slack, but nowhere near a full run.
  EXPECT_LT(elapsed, full_ms * 0.9) << "deadline did not cut the run short";
}

}  // namespace
}  // namespace spade
