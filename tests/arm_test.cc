#include "src/core/arm.h"

#include <gtest/gtest.h>

namespace spade {
namespace {

AggregateKey MakeKey(uint32_t cfs, std::vector<AttrId> dims, AttrId measure,
                     sparql::AggFunc func) {
  AggregateKey key;
  key.cfs_id = cfs;
  key.dims = std::move(dims);
  key.measure = MeasureSpec{measure, func};
  return key;
}

TEST(ArmTest, RegisterAndDedup) {
  Arm arm;
  AggregateKey key = MakeKey(0, {1, 2}, 3, sparql::AggFunc::kSum);
  EXPECT_FALSE(arm.IsEvaluated(key));
  Arm::Handle h = arm.Register(key);
  ASSERT_NE(h, Arm::kInvalidHandle);
  EXPECT_TRUE(arm.IsEvaluated(key));
  EXPECT_EQ(arm.Register(key), Arm::kInvalidHandle);  // second registration
  EXPECT_EQ(arm.Find(key), h);
  EXPECT_EQ(arm.num_aggregates(), 1u);
}

TEST(ArmTest, KeysDifferByEveryComponent) {
  Arm arm;
  arm.Register(MakeKey(0, {1}, 2, sparql::AggFunc::kSum));
  EXPECT_FALSE(arm.IsEvaluated(MakeKey(1, {1}, 2, sparql::AggFunc::kSum)));
  EXPECT_FALSE(arm.IsEvaluated(MakeKey(0, {2}, 2, sparql::AggFunc::kSum)));
  EXPECT_FALSE(arm.IsEvaluated(MakeKey(0, {1}, 3, sparql::AggFunc::kSum)));
  EXPECT_FALSE(arm.IsEvaluated(MakeKey(0, {1}, 2, sparql::AggFunc::kAvg)));
}

TEST(ArmTest, AccumulatesMomentsAndGroups) {
  Arm arm(/*max_stored_groups=*/2);
  Arm::Handle h = arm.Register(MakeKey(0, {1}, 2, sparql::AggFunc::kAvg));
  arm.AddGroup(h, {10}, 1.0);
  arm.AddGroup(h, {11}, 3.0);
  arm.AddGroup(h, {12}, 5.0);
  EXPECT_EQ(arm.num_groups(h), 3u);
  EXPECT_DOUBLE_EQ(arm.moments(h).mean(), 3.0);
  EXPECT_DOUBLE_EQ(arm.Score(h, InterestingnessKind::kVariance), 4.0);
  // Storage capped, statistics not.
  EXPECT_EQ(arm.stored_groups(h).size(), 2u);
}

TEST(ArmTest, TopKOrdersByScore) {
  Arm arm;
  Arm::Handle flat = arm.Register(MakeKey(0, {1}, 2, sparql::AggFunc::kSum));
  arm.AddGroup(flat, {1}, 5.0);
  arm.AddGroup(flat, {2}, 5.0);
  arm.AddGroup(flat, {3}, 5.0);

  Arm::Handle spiky = arm.Register(MakeKey(0, {2}, 2, sparql::AggFunc::kSum));
  arm.AddGroup(spiky, {1}, 0.0);
  arm.AddGroup(spiky, {2}, 100.0);

  Arm::Handle mild = arm.Register(MakeKey(0, {3}, 2, sparql::AggFunc::kSum));
  arm.AddGroup(mild, {1}, 4.0);
  arm.AddGroup(mild, {2}, 6.0);

  auto top = arm.TopK(2, InterestingnessKind::kVariance);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key.dims, (std::vector<AttrId>{2}));
  EXPECT_EQ(top[1].key.dims, (std::vector<AttrId>{3}));
  EXPECT_GT(top[0].score, top[1].score);
}

TEST(ArmTest, TopKSkipsSingleGroupAggregates) {
  Arm arm;
  Arm::Handle single = arm.Register(MakeKey(0, {1}, 2, sparql::AggFunc::kSum));
  arm.AddGroup(single, {1}, 42.0);
  auto top = arm.TopK(5, InterestingnessKind::kVariance);
  EXPECT_TRUE(top.empty());
}

TEST(ArmTest, TopKDeterministicTieBreak) {
  Arm arm;
  for (AttrId d = 0; d < 4; ++d) {
    Arm::Handle h = arm.Register(MakeKey(0, {d}, 9, sparql::AggFunc::kSum));
    arm.AddGroup(h, {1}, 0.0);
    arm.AddGroup(h, {2}, 2.0);  // identical variance everywhere
  }
  auto top = arm.TopK(4, InterestingnessKind::kVariance);
  ASSERT_EQ(top.size(), 4u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LT(top[i - 1].key, top[i].key);
  }
}

TEST(ArmTest, TopKLargerThanPopulation) {
  Arm arm;
  Arm::Handle h = arm.Register(MakeKey(0, {1}, 2, sparql::AggFunc::kSum));
  arm.AddGroup(h, {1}, 1.0);
  arm.AddGroup(h, {2}, 9.0);
  auto top = arm.TopK(100, InterestingnessKind::kVariance);
  EXPECT_EQ(top.size(), 1u);
}

}  // namespace
}  // namespace spade
