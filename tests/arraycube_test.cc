#include "src/core/arraycube.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/reference.h"
#include "tests/test_helpers.h"

namespace spade {
namespace {

using testing_helpers::DimSpec;
using testing_helpers::MakeRandomAnalysis;
using testing_helpers::MeasureShape;
using testing_helpers::RandomAnalysis;
using testing_helpers::SameResult;

std::map<AggregateKey, AggregateResult> ByKey(
    std::vector<AggregateResult> results) {
  std::map<AggregateKey, AggregateResult> out;
  for (auto& r : results) out.emplace(r.key, std::move(r));
  return out;
}

TEST(ArrayCubeTest, CorrectOnSingleValuedData) {
  // The relational assumption holds: ArrayCube agrees with the reference.
  RandomAnalysis ra =
      MakeRandomAnalysis(21, 300, {{4, 0, 0}, {3, 0, 0}}, {{0, 0}});
  MeasureCache cache;
  auto got = ByKey(EvaluateLatticeArrayCube(*ra.db, 0, *ra.cfs, ra.spec,
                                            MvdCubeOptions(), &cache));
  for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
    ASSERT_TRUE(got.count(ref.key));
    EXPECT_TRUE(SameResult(ref, got.at(ref.key)));
  }
}

TEST(ArrayCubeTest, CorrectWithMissingButSingleValuedData) {
  // Missing values alone (the null coordinate) do not break ArrayCube —
  // only multi-valued dimensions do (Lemma 1's precondition).
  RandomAnalysis ra =
      MakeRandomAnalysis(22, 300, {{4, 0, 0.4}, {3, 0, 0.3}}, {{0, 0.3}});
  MeasureCache cache;
  auto got = ByKey(EvaluateLatticeArrayCube(*ra.db, 0, *ra.cfs, ra.spec,
                                            MvdCubeOptions(), &cache));
  for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
    EXPECT_TRUE(SameResult(ref, got.at(ref.key)));
  }
}

TEST(ArrayCubeTest, Figure4Bug) {
  // The exact error of Section 4.2: 5 Manufacturer CEOs instead of 2,
  // 3 female CEOs instead of 1.
  Graph g;
  Dictionary& d = g.dict();
  auto add = [&](const std::string& s, const std::string& p,
                 const std::string& o) {
    g.Add(d.InternIri(s), d.InternIri(p), d.InternString(o));
  };
  add("n1", "nationality", "Angola");
  add("n1", "gender", "Female");
  add("n1", "area", "Diamond");
  add("n1", "area", "Manufacturer");
  add("n1", "area", "NaturalGas");
  add("n2", "nationality", "Brazil");
  add("n2", "nationality", "France");
  add("n2", "nationality", "Lebanon");
  add("n2", "nationality", "Nigeria");
  add("n2", "area", "Automotive");
  add("n2", "area", "Manufacturer");
  g.Freeze();
  AttributeStore db(&g);
  db.BuildDirectAttributes();
  CfsIndex cfs({d.InternIri("n1"), d.InternIri("n2")});
  LatticeSpec spec;
  spec.dims = {*db.FindAttribute("nationality"), *db.FindAttribute("gender"),
               *db.FindAttribute("area")};
  std::sort(spec.dims.begin(), spec.dims.end());
  spec.measures = {MeasureSpec{kInvalidAttr, sparql::AggFunc::kCount}};

  MeasureCache cache;
  auto got = ByKey(EvaluateLatticeArrayCube(
      db, 0, cfs, spec, MvdCubeOptions{.partition_chunk = 2}, &cache));

  AggregateKey by_area;
  by_area.cfs_id = 0;
  by_area.dims = {*db.FindAttribute("area")};
  by_area.measure = spec.measures[0];
  bool found = false;
  for (const auto& grp : got.at(by_area).groups) {
    if (d.Get(grp.dim_values[0]).lexical == "Manufacturer") {
      EXPECT_DOUBLE_EQ(grp.value, 5.0);  // the A4 cardinality bug
      found = true;
    }
  }
  EXPECT_TRUE(found);

  AggregateKey by_gender;
  by_gender.cfs_id = 0;
  by_gender.dims = {*db.FindAttribute("gender")};
  by_gender.measure = spec.measures[0];
  ASSERT_EQ(got.at(by_gender).groups.size(), 1u);
  EXPECT_DOUBLE_EQ(got.at(by_gender).groups[0].value, 3.0);  // the A3 bug
}

// Lemma 1 / Theorem 1: with K multi-valued dimensions, exactly the nodes
// containing all K of them are guaranteed correct; on adversarial data the
// others err for count/sum/avg, while min/max stay correct everywhere.
TEST(ArrayCubeTest, TheoremOneCorrectNodeCount) {
  RandomAnalysis ra = MakeRandomAnalysis(
      23, 400, {{4, 0.8, 0.0}, {3, 0.0, 0.0}, {3, 0.7, 0.0}}, {{0, 0}});
  // Dims 0 and 2 multi-valued: K = 2, N = 3 -> 2^(3-2) = 2 correct nodes for
  // counting aggregates: {d0,d1,d2} and {d0,d2}.
  MeasureCache cache;
  auto got = ByKey(EvaluateLatticeArrayCube(*ra.db, 0, *ra.cfs, ra.spec,
                                            MvdCubeOptions(), &cache));
  auto reference = EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec);

  // Identify the multi-valued attrs.
  std::vector<AttrId> mvd;
  for (AttrId a : ra.spec.dims) {
    DimensionEncoding enc = BuildDimensionEncoding(*ra.db, *ra.cfs, a);
    if (enc.multi_valued()) mvd.push_back(a);
  }
  ASSERT_EQ(mvd.size(), 2u);

  size_t correct_nodes = 0, checked_nodes = 0;
  for (const auto& ref : reference) {
    if (!ref.key.measure.is_count_star()) continue;
    bool contains_all_mvd = true;
    for (AttrId m : mvd) {
      contains_all_mvd &= std::find(ref.key.dims.begin(), ref.key.dims.end(),
                                    m) != ref.key.dims.end();
    }
    ++checked_nodes;
    bool same = SameResult(ref, got.at(ref.key), 1e-9);
    if (contains_all_mvd) {
      EXPECT_TRUE(same) << "node containing all multi-valued dims must be correct";
      ++correct_nodes;
    } else {
      EXPECT_FALSE(same) << "node missing a multi-valued dim should err here";
    }
  }
  EXPECT_EQ(checked_nodes, 8u);
  EXPECT_EQ(correct_nodes, 2u);  // 2^(N-K)
}

TEST(ArrayCubeTest, MinMaxSurviveMultiValuedDims) {
  RandomAnalysis ra =
      MakeRandomAnalysis(24, 300, {{4, 0.7, 0.1}, {3, 0.5, 0.1}}, {{0, 0.2}});
  MeasureCache cache;
  auto got = ByKey(EvaluateLatticeArrayCube(*ra.db, 0, *ra.cfs, ra.spec,
                                            MvdCubeOptions(), &cache));
  for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
    if (ref.key.measure.func != sparql::AggFunc::kMin &&
        ref.key.measure.func != sparql::AggFunc::kMax) {
      continue;
    }
    EXPECT_TRUE(SameResult(ref, got.at(ref.key)))
        << "min/max are idempotent and must not be corrupted";
  }
}

TEST(ArrayCubeTest, ErrorsAreOverestimates) {
  // For count/sum of non-negative measures, the parent-aggregation bug can
  // only inflate values (the error-ratio premise of Experiment 3).
  RandomAnalysis ra =
      MakeRandomAnalysis(25, 300, {{4, 0.8, 0}, {3, 0.6, 0}}, {{0, 0}});
  MeasureCache cache;
  auto got = ByKey(EvaluateLatticeArrayCube(*ra.db, 0, *ra.cfs, ra.spec,
                                            MvdCubeOptions(), &cache));
  for (const auto& ref : EvaluateReference(*ra.db, 0, *ra.cfs, ra.spec)) {
    if (ref.key.measure.func != sparql::AggFunc::kCount &&
        ref.key.measure.func != sparql::AggFunc::kSum) {
      continue;
    }
    const AggregateResult& ac = got.at(ref.key);
    ASSERT_EQ(ac.groups.size(), ref.groups.size());
    for (size_t i = 0; i < ref.groups.size(); ++i) {
      EXPECT_GE(ac.groups[i].value, ref.groups[i].value - 1e-9);
    }
  }
}

}  // namespace
}  // namespace spade
