#include "src/store/database.h"

#include <gtest/gtest.h>

#include "src/store/preagg.h"

namespace spade {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dictionary& d = g.dict();
    a = d.InternIri("http://x/a");
    b = d.InternIri("http://x/b");
    c = d.InternIri("http://x/c");
    p_age = d.InternIri("http://x/age");
    p_tag = d.InternIri("http://x/tag");
    g.Add(a, p_age, d.InternInteger(30));
    g.Add(b, p_age, d.InternInteger(40));
    g.Add(b, p_age, d.InternInteger(42));  // multi-valued
    g.Add(a, p_tag, d.InternString("x"));
    g.Add(c, p_tag, d.InternString("y"));
    g.Add(a, g.rdf_type(), d.InternIri("http://x/T"));
    g.Freeze();
    db = std::make_unique<Database>(&g);
    db->BuildDirectAttributes();
  }
  Graph g;
  std::unique_ptr<Database> db;
  TermId a, b, c, p_age, p_tag;
};

TEST_F(StoreTest, BuildsOneTablePerPropertyExceptType) {
  EXPECT_EQ(db->num_attributes(), 2u);  // age, tag — not rdf:type
  EXPECT_TRUE(db->FindAttribute("age").has_value());
  EXPECT_TRUE(db->FindAttribute("tag").has_value());
  EXPECT_FALSE(db->FindAttribute("type").has_value());
}

TEST_F(StoreTest, TableRowsSortedAndQueryable) {
  AttrId age = *db->FindAttribute("age");
  const AttributeTable& t = db->attribute(age);
  EXPECT_EQ(t.rows.size(), 3u);
  EXPECT_TRUE(std::is_sorted(t.rows.begin(), t.rows.end()));
  EXPECT_EQ(t.ValuesOf(b).size(), 2u);
  EXPECT_EQ(t.ValuesOf(c).size(), 0u);
  EXPECT_EQ(t.Subjects(), (std::vector<TermId>{std::min(a, b), std::max(a, b)}));
}

TEST_F(StoreTest, LocalName) {
  EXPECT_EQ(Database::LocalName("http://x/age"), "age");
  EXPECT_EQ(Database::LocalName("http://x#frag"), "frag");
  EXPECT_EQ(Database::LocalName("noslash"), "noslash");
}

TEST_F(StoreTest, NameCollisionsDisambiguated) {
  AttributeTable t1;
  t1.name = "age";  // collides with the direct attribute
  t1.origin = AttrOrigin::kCount;
  AttrId id = db->AddAttribute(std::move(t1));
  EXPECT_EQ(db->attribute(id).name, "age#2");
}

TEST_F(StoreTest, CfsIndexDenseIds) {
  CfsIndex cfs({c, a, b});  // unsorted on purpose
  EXPECT_EQ(cfs.size(), 3u);
  for (FactId f = 0; f < 3; ++f) {
    EXPECT_EQ(cfs.FactOf(cfs.NodeOf(f)), f);
  }
  EXPECT_EQ(cfs.FactOf(g.dict().InternIri("http://x/absent")), kInvalidFact);
  EXPECT_TRUE(std::is_sorted(cfs.members().begin(), cfs.members().end()));
}

TEST_F(StoreTest, MeasureVectorNumeric) {
  CfsIndex cfs({a, b, c});
  MeasureVector mv = BuildMeasureVector(*db, cfs, *db->FindAttribute("age"));
  ASSERT_EQ(mv.size(), 3u);
  FactId fa = cfs.FactOf(a), fb = cfs.FactOf(b), fc = cfs.FactOf(c);
  EXPECT_EQ(mv.count[fa], 1u);
  EXPECT_EQ(mv.count[fb], 2u);
  EXPECT_EQ(mv.count[fc], 0u);
  EXPECT_DOUBLE_EQ(mv.sum[fa], 30);
  EXPECT_DOUBLE_EQ(mv.sum[fb], 82);
  EXPECT_DOUBLE_EQ(mv.min[fb], 40);
  EXPECT_DOUBLE_EQ(mv.max[fb], 42);
  EXPECT_TRUE(mv.numeric);
  EXPECT_FALSE(mv.single_valued);  // b has two ages
}

TEST_F(StoreTest, MeasureVectorNonNumeric) {
  CfsIndex cfs({a, b, c});
  MeasureVector mv = BuildMeasureVector(*db, cfs, *db->FindAttribute("tag"));
  EXPECT_FALSE(mv.numeric);
  EXPECT_EQ(mv.count[cfs.FactOf(a)], 1u);
  EXPECT_TRUE(mv.single_valued);
}

TEST_F(StoreTest, MeasureVectorRestrictedToCfs) {
  CfsIndex cfs({a});  // b excluded
  MeasureVector mv = BuildMeasureVector(*db, cfs, *db->FindAttribute("age"));
  ASSERT_EQ(mv.size(), 1u);
  EXPECT_DOUBLE_EQ(mv.sum[0], 30);
}

TEST_F(StoreTest, DirectAttributesListsOnlyDirect) {
  AttributeTable derived;
  derived.name = "count(age)";
  derived.origin = AttrOrigin::kCount;
  db->AddAttribute(std::move(derived));
  EXPECT_EQ(db->DirectAttributes().size(), 2u);
}

TEST(AttrOriginTest, Names) {
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kDirect), "direct");
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kCount), "count");
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kKeyword), "keyword");
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kLanguage), "language");
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kPath), "path");
}

}  // namespace
}  // namespace spade
