#include "src/store/attribute_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "src/store/preagg.h"

namespace spade {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dictionary& d = g.dict();
    a = d.InternIri("http://x/a");
    b = d.InternIri("http://x/b");
    c = d.InternIri("http://x/c");
    p_age = d.InternIri("http://x/age");
    p_tag = d.InternIri("http://x/tag");
    g.Add(a, p_age, d.InternInteger(30));
    g.Add(b, p_age, d.InternInteger(40));
    g.Add(b, p_age, d.InternInteger(42));  // multi-valued
    g.Add(a, p_tag, d.InternString("x"));
    g.Add(c, p_tag, d.InternString("y"));
    g.Add(a, g.rdf_type(), d.InternIri("http://x/T"));
    g.Freeze();
    db = std::make_unique<AttributeStore>(&g);
    db->BuildDirectAttributes();
  }
  Graph g;
  std::unique_ptr<AttributeStore> db;
  TermId a, b, c, p_age, p_tag;
};

TEST_F(StoreTest, BuildsOneTablePerPropertyExceptType) {
  EXPECT_EQ(db->num_attributes(), 2u);  // age, tag — not rdf:type
  EXPECT_TRUE(db->FindAttribute("age").has_value());
  EXPECT_TRUE(db->FindAttribute("tag").has_value());
  EXPECT_FALSE(db->FindAttribute("type").has_value());
}

TEST_F(StoreTest, ColumnarLayoutSortedAndQueryable) {
  AttrId age = *db->FindAttribute("age");
  const AttributeTable& t = db->attribute(age);
  ASSERT_TRUE(t.sealed());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_subjects(), 2u);
  EXPECT_TRUE(std::is_sorted(t.subjects().begin(), t.subjects().end()));
  for (size_t i = 0; i < t.num_subjects(); ++i) {
    Span<TermId> vals = t.values(i);
    EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
  }
  EXPECT_EQ(t.ValuesOf(b).size(), 2u);
  EXPECT_EQ(t.ValuesOf(c).size(), 0u);  // non-subject: empty span
  EXPECT_EQ(t.subjects().ToVector(),
            (std::vector<TermId>{std::min(a, b), std::max(a, b)}));
  EXPECT_EQ(t.SubjectIndexOf(c), AttributeTable::kNoSubject);
}

TEST_F(StoreTest, SealDeduplicatesAndOrdersStagedRows) {
  Dictionary& d = g.dict();
  AttributeTable t;
  t.name = "dup";
  TermId s1 = d.InternIri("http://x/s1");
  TermId v1 = d.InternInteger(1), v2 = d.InternInteger(2);
  t.AddRow(s1, v2);
  t.AddRow(s1, v1);
  t.AddRow(s1, v2);  // duplicate row
  EXPECT_EQ(t.num_staged(), 3u);
  t.Seal();
  EXPECT_EQ(t.num_rows(), 2u);
  Span<TermId> vals = t.ValuesOf(s1);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], std::min(v1, v2));
  EXPECT_EQ(vals[1], std::max(v1, v2));
}

TEST_F(StoreTest, EmptyTableIsQueryable) {
  AttributeTable t;
  t.name = "empty";
  t.Seal();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_subjects(), 0u);
  EXPECT_TRUE(t.subjects().empty());
  EXPECT_TRUE(t.ValuesOf(a).empty());
  size_t visited = 0;
  t.ForEachRow([&](TermId, TermId) { ++visited; });
  EXPECT_EQ(visited, 0u);
  // An empty table still registers, seals, and serves stats/measure scans.
  AttrId id = db->AddAttribute(std::move(t));
  CfsIndex cfs({a, b, c});
  MeasureVector mv = BuildMeasureVector(*db, cfs, id);
  for (FactId f = 0; f < 3; ++f) EXPECT_EQ(mv.count[f], 0u);
}

TEST_F(StoreTest, ForEachRowVisitsSortedPairs) {
  AttrId age = *db->FindAttribute("age");
  const AttributeTable& t = db->attribute(age);
  std::vector<std::pair<TermId, TermId>> rows;
  t.ForEachRow([&](TermId s, TermId o) { rows.emplace_back(s, o); });
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST_F(StoreTest, LocalName) {
  EXPECT_EQ(AttributeStore::LocalName("http://x/age"), "age");
  EXPECT_EQ(AttributeStore::LocalName("http://x#frag"), "frag");
  EXPECT_EQ(AttributeStore::LocalName("noslash"), "noslash");
}

TEST_F(StoreTest, NameCollisionsDisambiguated) {
  AttributeTable t1;
  t1.name = "age";  // collides with the direct attribute
  t1.origin = AttrOrigin::kCount;
  AttrId id = db->AddAttribute(std::move(t1));
  EXPECT_EQ(db->attribute(id).name, "age#2");
}

TEST_F(StoreTest, AttributeReferencesStableAcrossRegistryGrowth) {
  const AttributeTable& age = db->attribute(*db->FindAttribute("age"));
  const TermId* objects_before = age.objects().data();
  for (int i = 0; i < 64; ++i) {
    AttributeTable t;
    t.name = "filler" + std::to_string(i);
    db->AddAttribute(std::move(t));
  }
  // The deque registry must not have moved the earlier table.
  EXPECT_EQ(age.objects().data(), objects_before);
  EXPECT_EQ(age.num_rows(), 3u);
}

TEST_F(StoreTest, CfsIndexDenseIds) {
  CfsIndex cfs({c, a, b});  // unsorted on purpose
  EXPECT_EQ(cfs.size(), 3u);
  for (FactId f = 0; f < 3; ++f) {
    EXPECT_EQ(cfs.FactOf(cfs.NodeOf(f)), f);
  }
  EXPECT_EQ(cfs.FactOf(g.dict().InternIri("http://x/absent")), kInvalidFact);
  EXPECT_TRUE(std::is_sorted(cfs.members().begin(), cfs.members().end()));
}

TEST_F(StoreTest, CfsIndexNonMemberLookups) {
  Dictionary& d = g.dict();
  TermId lo = d.InternIri("http://x/m1");
  TermId hi = d.InternIri("http://x/m3");
  TermId mid = d.InternIri("http://x/m2");    // between lo and hi, not a member
  TermId below = d.InternIri("http://x/m0");  // sorts before every member
  TermId above = d.InternIri("http://x/m4");  // sorts after every member
  CfsIndex cfs({lo, hi});
  EXPECT_EQ(cfs.size(), 2u);
  EXPECT_NE(cfs.FactOf(lo), kInvalidFact);
  EXPECT_NE(cfs.FactOf(hi), kInvalidFact);
  EXPECT_EQ(cfs.FactOf(mid), kInvalidFact);
  EXPECT_EQ(cfs.FactOf(below), kInvalidFact);
  EXPECT_EQ(cfs.FactOf(above), kInvalidFact);
}

TEST_F(StoreTest, SingleFactCfs) {
  CfsIndex cfs({b});
  EXPECT_EQ(cfs.size(), 1u);
  EXPECT_EQ(cfs.FactOf(b), 0u);
  EXPECT_EQ(cfs.FactOf(a), kInvalidFact);
  MeasureVector mv = BuildMeasureVector(*db, cfs, *db->FindAttribute("age"));
  ASSERT_EQ(mv.size(), 1u);
  EXPECT_EQ(mv.count[0], 2u);
  EXPECT_DOUBLE_EQ(mv.sum[0], 82);
}

TEST_F(StoreTest, FactShardsPartitionTheCfsExactly) {
  for (size_t n : {0u, 1u, 5u, 7u, 64u}) {
    for (size_t k : {1u, 2u, 3u, 4u, 8u}) {
      std::vector<FactRange> shards = MakeFactShards(n, k);
      ASSERT_EQ(shards.size(), k);
      FactId expected = 0;
      size_t total = 0;
      for (const FactRange& r : shards) {
        EXPECT_EQ(r.begin, expected);  // contiguous, ascending, disjoint
        EXPECT_LE(r.begin, r.end);
        expected = r.end;
        total += r.size();
      }
      EXPECT_EQ(expected, n);
      EXPECT_EQ(total, n);
    }
  }
  // All facts in one shard: the single range is the whole CFS.
  std::vector<FactRange> one = MakeFactShards(5, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0u);
  EXPECT_EQ(one[0].end, 5u);
  // More shards than facts: exactly one shard holds the fact, the rest are
  // empty and never out of range.
  std::vector<FactRange> sparse = MakeFactShards(1, 4);
  size_t non_empty = 0, held = 0;
  for (const FactRange& r : sparse) {
    if (!r.empty()) ++non_empty;
    held += r.size();
  }
  EXPECT_EQ(non_empty, 1u);
  EXPECT_EQ(held, 1u);
}

TEST_F(StoreTest, MeasureVectorShardFillMatchesFullBuild) {
  CfsIndex cfs({a, b, c});
  AttrId age = *db->FindAttribute("age");
  MeasureVector full = BuildMeasureVector(*db, cfs, age);
  for (size_t k : {1u, 2u, 3u, 4u}) {
    MeasureVector mv;
    mv.Init(3);
    MeasureFillFlags flags;
    for (const FactRange& r : MakeFactShards(3, k)) {
      MeasureFillFlags f = FillMeasureVectorRange(*db, cfs, age, r, &mv);
      flags.numeric &= f.numeric;
      flags.single_valued &= f.single_valued;
    }
    EXPECT_EQ(mv.count, full.count);
    EXPECT_EQ(mv.sum, full.sum);
    EXPECT_EQ(mv.min, full.min);
    EXPECT_EQ(mv.max, full.max);
    EXPECT_EQ(flags.numeric, full.numeric);
    EXPECT_EQ(flags.single_valued, full.single_valued);
  }
}

TEST_F(StoreTest, MeasureVectorNumeric) {
  CfsIndex cfs({a, b, c});
  MeasureVector mv = BuildMeasureVector(*db, cfs, *db->FindAttribute("age"));
  ASSERT_EQ(mv.size(), 3u);
  FactId fa = cfs.FactOf(a), fb = cfs.FactOf(b), fc = cfs.FactOf(c);
  EXPECT_EQ(mv.count[fa], 1u);
  EXPECT_EQ(mv.count[fb], 2u);
  EXPECT_EQ(mv.count[fc], 0u);
  EXPECT_DOUBLE_EQ(mv.sum[fa], 30);
  EXPECT_DOUBLE_EQ(mv.sum[fb], 82);
  EXPECT_DOUBLE_EQ(mv.min[fb], 40);
  EXPECT_DOUBLE_EQ(mv.max[fb], 42);
  EXPECT_TRUE(mv.numeric);
  EXPECT_FALSE(mv.single_valued);  // b has two ages
}

TEST_F(StoreTest, MeasureVectorNonNumeric) {
  CfsIndex cfs({a, b, c});
  MeasureVector mv = BuildMeasureVector(*db, cfs, *db->FindAttribute("tag"));
  EXPECT_FALSE(mv.numeric);
  EXPECT_EQ(mv.count[cfs.FactOf(a)], 1u);
  EXPECT_TRUE(mv.single_valued);
}

TEST_F(StoreTest, MeasureVectorRestrictedToCfs) {
  CfsIndex cfs({a});  // b excluded
  MeasureVector mv = BuildMeasureVector(*db, cfs, *db->FindAttribute("age"));
  ASSERT_EQ(mv.size(), 1u);
  EXPECT_DOUBLE_EQ(mv.sum[0], 30);
}

TEST_F(StoreTest, DirectAttributesListsOnlyDirect) {
  AttributeTable derived;
  derived.name = "count(age)";
  derived.origin = AttrOrigin::kCount;
  db->AddAttribute(std::move(derived));
  EXPECT_EQ(db->DirectAttributes().size(), 2u);
}

TEST(AttrOriginTest, Names) {
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kDirect), "direct");
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kCount), "count");
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kKeyword), "keyword");
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kLanguage), "language");
  EXPECT_STREQ(AttrOriginName(AttrOrigin::kPath), "path");
}

// --- SealFromSortedRuns: the streaming ingest's chunked CSR build ---------

using Row = AttributeTable::Row;

/// Deterministic row soup with duplicates within and across future chunks,
/// multi-valued subjects, and non-monotone order (Seal must canonicalize).
std::vector<Row> MakeRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TermId s = static_cast<TermId>(1 + (i * 7919) % 97);   // scrambled subjects
    TermId o = static_cast<TermId>(1 + (i * 104729) % 13); // few distinct values
    rows.emplace_back(s, o);
    if (i % 11 == 0) rows.emplace_back(s, o);              // in-chunk duplicate
    if (i % 17 == 0 && !rows.empty()) rows.push_back(rows[i / 2]);  // cross-chunk
  }
  return rows;
}

void ExpectTablesByteIdentical(const AttributeTable& a, const AttributeTable& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_subjects(), b.num_subjects());
  EXPECT_TRUE(std::equal(a.subjects().begin(), a.subjects().end(),
                         b.subjects().begin()));
  EXPECT_TRUE(std::equal(a.objects().begin(), a.objects().end(),
                         b.objects().begin()));
  for (size_t i = 0; i < a.num_subjects(); ++i) {
    ASSERT_EQ(a.values(i).size(), b.values(i).size()) << "subject " << i;
  }
}

TEST(SealFromSortedRunsTest, ChunkMergedEqualsSingleShotAtEveryChunkSize) {
  std::vector<Row> rows = MakeRows(1000);

  AttributeTable single;
  for (const Row& r : rows) single.AddRow(r.first, r.second);
  single.Seal();

  for (size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
    SCOPED_TRACE("chunk = " + std::to_string(chunk));
    // Per-chunk partial builders: sorted + deduplicated runs in chunk order,
    // exactly what the ingest's scatter stage produces.
    std::vector<std::vector<Row>> runs;
    for (size_t begin = 0; begin < rows.size(); begin += chunk) {
      std::vector<Row> run(rows.begin() + begin,
                           rows.begin() + std::min(begin + chunk, rows.size()));
      std::sort(run.begin(), run.end());
      run.erase(std::unique(run.begin(), run.end()), run.end());
      runs.push_back(std::move(run));
    }
    std::vector<const std::vector<Row>*> run_ptrs;
    for (const auto& run : runs) run_ptrs.push_back(&run);

    AttributeTable merged;
    merged.SealFromSortedRuns(run_ptrs);
    ExpectTablesByteIdentical(single, merged);
  }
}

TEST(SealFromSortedRunsTest, EmptyAndNullRuns) {
  std::vector<Row> empty_run;
  std::vector<Row> run = {{1, 5}, {2, 3}};
  std::vector<const std::vector<Row>*> runs = {&empty_run, nullptr, &run,
                                               &empty_run};
  AttributeTable table;
  table.SealFromSortedRuns(runs);
  ASSERT_TRUE(table.sealed());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.ValuesOf(1).size(), 1u);
  EXPECT_EQ(table.ValuesOf(1)[0], 5u);
}

TEST(SealFromSortedRunsTest, NoRunsSealsAnEmptyTable) {
  AttributeTable table;
  table.SealFromSortedRuns({});
  ASSERT_TRUE(table.sealed());
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.num_subjects(), 0u);
  EXPECT_EQ(table.ValuesOf(1).size(), 0u);
}

TEST(StoreTest2, DirectAttributeShellMatchesSequentialNaming) {
  // Two IRIs with the same local name must get the same "#2" suffixing the
  // sequential build applies.
  Graph g;
  Dictionary& d = g.dict();
  TermId p1 = d.InternIri("http://x/name");
  TermId p2 = d.InternIri("http://y/name");
  AttributeStore store(&g);
  AttributeTable* t1 = store.AddDirectAttributeShell(p1);
  AttributeTable* t2 = store.AddDirectAttributeShell(p2);
  EXPECT_EQ(t1->name, "name");
  EXPECT_EQ(t2->name, "name#2");
  EXPECT_EQ(t1->origin, AttrOrigin::kDirect);
  EXPECT_EQ(t1->property, p1);
  EXPECT_FALSE(t1->sealed());
  // Shell pointers stay valid across later registrations (deque storage).
  for (int i = 0; i < 64; ++i) {
    store.AddDirectAttributeShell(
        d.InternIri("http://z/p" + std::to_string(i)));
  }
  EXPECT_EQ(t1->property, p1);
  EXPECT_EQ(store.FindAttribute("name#2").value(), 1u);
}

}  // namespace
}  // namespace spade
