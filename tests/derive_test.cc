#include "src/derive/derivations.h"

#include <gtest/gtest.h>

namespace spade {
namespace {

class DeriveTest : public ::testing::Test {
 protected:
  static void AddRows(AttributeTable* t,
                      std::initializer_list<std::pair<TermId, TermId>> rows) {
    for (const auto& [s, o] : rows) t->AddRow(s, o);
  }
  void Analyze() {
    stats.clear();
    for (AttrId a = 0; a < db().num_attributes(); ++a) {
      stats.push_back(ComputeAttrStats(db(), a));
    }
  }
  AttributeStore& db() {
    if (!db_) db_ = std::make_unique<AttributeStore>(&g);
    return *db_;
  }
  Graph g;
  std::unique_ptr<AttributeStore> db_;
  std::vector<AttrStats> stats;
};

TEST_F(DeriveTest, CountDerivation) {
  Dictionary& d = g.dict();
  AttributeTable t;
  t.name = "company";
  t.property = d.InternIri("company");
  AddRows(&t, {{d.InternIri("ceo1"), d.InternIri("c1")},
            {d.InternIri("ceo1"), d.InternIri("c2")},
            {d.InternIri("ceo2"), d.InternIri("c1")}});
  db().AddAttribute(std::move(t));
  Analyze();

  DerivationOptions opts;
  EXPECT_EQ(DeriveCounts(&db(), stats, opts), 1u);
  auto id = db().FindAttribute("count(company)");
  ASSERT_TRUE(id.has_value());
  const AttributeTable& ct = db().attribute(*id);
  EXPECT_EQ(ct.origin, AttrOrigin::kCount);
  EXPECT_EQ(ct.derived_from, 0u);
  ASSERT_EQ(ct.num_rows(), 2u);
  // ceo1 manages two companies, ceo2 one.
  EXPECT_EQ(g.dict().Get(ct.ValuesOf(d.InternIri("ceo1"))[0]).lexical, "2");
  EXPECT_EQ(g.dict().Get(ct.ValuesOf(d.InternIri("ceo2"))[0]).lexical, "1");
}

TEST_F(DeriveTest, CountSkipsSingleValued) {
  Dictionary& d = g.dict();
  AttributeTable t;
  t.name = "name";
  AddRows(&t, {{d.InternIri("a"), d.InternString("x")},
            {d.InternIri("b"), d.InternString("y")}});
  db().AddAttribute(std::move(t));
  Analyze();
  EXPECT_EQ(DeriveCounts(&db(), stats, DerivationOptions()), 0u);
}

TEST_F(DeriveTest, KeywordDerivation) {
  Dictionary& d = g.dict();
  AttributeTable t;
  t.name = "description";
  AddRows(&t, {{d.InternIri("c1"),
             d.InternString("Sonangol oversees petroleum production")},
            {d.InternIri("c2"),
             d.InternString("A diversified global manufacturing business")}});
  db().AddAttribute(std::move(t));
  Analyze();
  DerivationOptions opts;
  EXPECT_EQ(DeriveKeywords(&db(), stats, opts), 1u);
  auto id = db().FindAttribute("kwIn(description)");
  ASSERT_TRUE(id.has_value());
  const AttributeTable& kt = db().attribute(*id);
  Span<TermId> kws = kt.ValuesOf(d.InternIri("c1"));
  std::vector<std::string> words;
  for (TermId k : kws) words.push_back(g.dict().Get(k).lexical);
  // Capitalized keywords, length >= 4, no stop words.
  EXPECT_NE(std::find(words.begin(), words.end(), "Petroleum"), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), "Production"), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), "Oversees"),
            words.end());  // not a stop word and long enough -> kept
}

TEST_F(DeriveTest, KeywordsSkipShortLabels) {
  Dictionary& d = g.dict();
  AttributeTable t;
  t.name = "name";
  AddRows(&t, {{d.InternIri("a"), d.InternString("Bob")},
            {d.InternIri("b"), d.InternString("Eve")}});
  db().AddAttribute(std::move(t));
  Analyze();
  EXPECT_EQ(DeriveKeywords(&db(), stats, DerivationOptions()), 0u);
}

TEST_F(DeriveTest, ExtractKeywordsFiltersStopwordsAndShort) {
  auto kws = ExtractKeywords("The cat and the big elephant over there", 4);
  // "the"/"and"/"over" are stop words; "cat"/"big" too short.
  EXPECT_EQ(kws, (std::vector<std::string>{"Elephant", "There"}));
}

TEST_F(DeriveTest, LanguageDerivationFromText) {
  Dictionary& d = g.dict();
  AttributeTable t;
  t.name = "summary";
  AddRows(&t, {
      {d.InternIri("r1"),
       d.InternString("the production of the petroleum is in the region")},
      {d.InternIri("r2"),
       d.InternString("la production est dans le pays avec les usines")},
      {d.InternIri("r3"),
       d.InternString("la empresa es una de las grandes del mundo")}});
  db().AddAttribute(std::move(t));
  Analyze();
  DerivationOptions opts;
  EXPECT_EQ(DeriveLanguages(&db(), stats, opts), 1u);
  const AttributeTable& lt = db().attribute(*db().FindAttribute("langOf(summary)"));
  EXPECT_EQ(g.dict().Get(lt.ValuesOf(d.InternIri("r1"))[0]).lexical, "English");
  EXPECT_EQ(g.dict().Get(lt.ValuesOf(d.InternIri("r2"))[0]).lexical, "French");
  EXPECT_EQ(g.dict().Get(lt.ValuesOf(d.InternIri("r3"))[0]).lexical, "Spanish");
}

TEST_F(DeriveTest, LanguageTagBeatsDetection) {
  Dictionary& d = g.dict();
  AttributeTable t;
  t.name = "bio";
  AddRows(&t, {{d.InternIri("r1"),
             d.Intern(Term::Literal("completely ambiguous words here always",
                                    kInvalidTerm, "de"))}});
  db().AddAttribute(std::move(t));
  Analyze();
  DeriveLanguages(&db(), stats, DerivationOptions());
  const AttributeTable& lt = db().attribute(*db().FindAttribute("langOf(bio)"));
  EXPECT_EQ(g.dict().Get(lt.values(0)[0]).lexical, "German");
}

TEST_F(DeriveTest, DetectLanguageEdgeCases) {
  EXPECT_EQ(DetectLanguage(""), "");
  EXPECT_EQ(DetectLanguage("12345 67890"), "");
  EXPECT_EQ(DetectLanguage("the cat is on the mat"), "English");
}

TEST_F(DeriveTest, PathDerivation) {
  Dictionary& d = g.dict();
  AttributeTable company;
  company.name = "company";
  company.property = d.InternIri("company");
  AddRows(&company, {{d.InternIri("ceo1"), d.InternIri("c1")},
                  {d.InternIri("ceo2"), d.InternIri("c2")}});
  AttributeTable area;
  area.name = "area";
  area.property = d.InternIri("area");
  AddRows(&area, {{d.InternIri("c1"), d.InternString("Diamond")},
               {d.InternIri("c1"), d.InternString("Gas")},
               {d.InternIri("c2"), d.InternString("Auto")}});
  db().AddAttribute(std::move(company));
  db().AddAttribute(std::move(area));
  Analyze();

  DerivationOptions opts;
  size_t added = DerivePaths(&db(), stats, opts);
  EXPECT_GE(added, 1u);
  auto id = db().FindAttribute("company/area");
  ASSERT_TRUE(id.has_value());
  const AttributeTable& pt = db().attribute(*id);
  EXPECT_EQ(pt.origin, AttrOrigin::kPath);
  // ceo1 reaches Diamond and Gas through c1.
  EXPECT_EQ(pt.ValuesOf(d.InternIri("ceo1")).size(), 2u);
  EXPECT_EQ(pt.ValuesOf(d.InternIri("ceo2")).size(), 1u);
}

TEST_F(DeriveTest, PathRequiresContinuation) {
  Dictionary& d = g.dict();
  AttributeTable knows;
  knows.name = "knows";
  knows.property = d.InternIri("knows");
  AddRows(&knows, {{d.InternIri("a"), d.InternIri("b")}});
  AttributeTable unrelated;
  unrelated.name = "age";
  unrelated.property = d.InternIri("age");
  AddRows(&unrelated, {{d.InternIri("zzz"), d.InternString("4")}});
  db().AddAttribute(std::move(knows));
  db().AddAttribute(std::move(unrelated));
  Analyze();
  // b has no outgoing `age`, so knows/age must not be derived.
  EXPECT_EQ(DerivePaths(&db(), stats, DerivationOptions()), 0u);
}

TEST_F(DeriveTest, DeriveAllAggregatesReport) {
  Dictionary& d = g.dict();
  AttributeTable nat;
  nat.name = "nationality";
  nat.property = d.InternIri("nationality");
  AddRows(&nat, {{d.InternIri("x"), d.InternIri("A")},
              {d.InternIri("x"), d.InternIri("B")},
              {d.InternIri("y"), d.InternIri("A")}});
  AttributeTable label;
  label.name = "label";
  label.property = d.InternIri("label");
  AddRows(&label, {{d.InternIri("A"), d.InternString("Country of A")},
                {d.InternIri("B"), d.InternString("Country of B")}});
  db().AddAttribute(std::move(nat));
  db().AddAttribute(std::move(label));
  Analyze();
  DerivationReport report = DeriveAll(&db(), stats, DerivationOptions());
  EXPECT_EQ(report.num_count_attrs, 1u);   // count(nationality)
  EXPECT_GE(report.num_path_attrs, 1u);    // nationality/label
  EXPECT_EQ(report.total(), report.num_count_attrs + report.num_keyword_attrs +
                                report.num_language_attrs +
                                report.num_path_attrs);
}

}  // namespace
}  // namespace spade
