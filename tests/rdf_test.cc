#include <gtest/gtest.h>

#include <sstream>

#include "src/rdf/dictionary.h"
#include "src/rdf/graph.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/ontology.h"

namespace spade {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternIri("http://x/a");
  TermId b = dict.InternIri("http://x/a");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.Get(a).lexical, "http://x/a");
}

TEST(DictionaryTest, DistinguishesKinds) {
  Dictionary dict;
  TermId iri = dict.InternIri("x");
  TermId lit = dict.InternString("x");
  TermId blank = dict.InternBlank("x");
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_NE(iri, blank);
}

TEST(DictionaryTest, DistinguishesDatatypeAndLanguage) {
  Dictionary dict;
  TermId plain = dict.InternString("5");
  TermId typed = dict.InternInteger(5);
  TermId tagged = dict.Intern(Term::Literal("5", kInvalidTerm, "en"));
  EXPECT_NE(plain, typed);
  EXPECT_NE(plain, tagged);
  EXPECT_NE(typed, tagged);
}

TEST(DictionaryTest, LookupWithoutIntern) {
  Dictionary dict;
  dict.InternIri("present");
  EXPECT_TRUE(dict.Lookup(Term::Iri("present")).has_value());
  EXPECT_FALSE(dict.Lookup(Term::Iri("absent")).has_value());
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, NumericValue) {
  Dictionary dict;
  double v;
  EXPECT_TRUE(dict.NumericValue(dict.InternInteger(42), &v));
  EXPECT_DOUBLE_EQ(v, 42);
  EXPECT_TRUE(dict.NumericValue(dict.InternDouble(2.5), &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(dict.NumericValue(dict.InternString("17"), &v));  // plain numeric
  EXPECT_FALSE(dict.NumericValue(dict.InternString("abc"), &v));
  EXPECT_FALSE(dict.NumericValue(dict.InternIri("http://17"), &v));
  EXPECT_FALSE(dict.NumericValue(kInvalidTerm, &v));
}

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1 = g.dict().InternIri("s1");
    s2 = g.dict().InternIri("s2");
    p1 = g.dict().InternIri("p1");
    p2 = g.dict().InternIri("p2");
    o1 = g.dict().InternIri("o1");
    o2 = g.dict().InternIri("o2");
    t = g.dict().InternIri("T");
    g.Add(s1, p1, o1);
    g.Add(s1, p1, o2);
    g.Add(s1, p2, o1);
    g.Add(s2, p1, o1);
    g.Add(s1, g.rdf_type(), t);
    g.Freeze();
  }
  Graph g;
  TermId s1, s2, p1, p2, o1, o2, t;
};

TEST_F(GraphTest, CountsAndDedup) {
  EXPECT_EQ(g.NumTriples(), 5u);
  g.Add(s1, p1, o1);  // duplicate
  EXPECT_EQ(g.NumTriples(), 5u);
}

TEST_F(GraphTest, Contains) {
  EXPECT_TRUE(g.Contains(s1, p1, o1));
  EXPECT_FALSE(g.Contains(s2, p2, o1));
}

TEST_F(GraphTest, Objects) {
  EXPECT_EQ(g.Objects(s1, p1), (std::vector<TermId>{o1, o2}));
  EXPECT_EQ(g.Objects(s2, p2), (std::vector<TermId>{}));
}

TEST_F(GraphTest, Subjects) {
  EXPECT_EQ(g.Subjects(p1, o1), (std::vector<TermId>{s1, s2}));
}

TEST_F(GraphTest, PropertiesOf) {
  std::vector<TermId> props = g.PropertiesOf(s1);
  EXPECT_EQ(props.size(), 3u);  // p1, p2, rdf:type
}

TEST_F(GraphTest, MatchPatterns) {
  size_t count = 0;
  g.Match(kInvalidTerm, kInvalidTerm, kInvalidTerm,
          [&](const Triple&) { ++count; });
  EXPECT_EQ(count, 5u);

  count = 0;
  g.Match(s1, kInvalidTerm, kInvalidTerm, [&](const Triple& tr) {
    EXPECT_EQ(tr.s, s1);
    ++count;
  });
  EXPECT_EQ(count, 4u);

  count = 0;
  g.Match(kInvalidTerm, p1, kInvalidTerm, [&](const Triple& tr) {
    EXPECT_EQ(tr.p, p1);
    ++count;
  });
  EXPECT_EQ(count, 3u);

  count = 0;
  g.Match(kInvalidTerm, kInvalidTerm, o1, [&](const Triple& tr) {
    EXPECT_EQ(tr.o, o1);
    ++count;
  });
  EXPECT_EQ(count, 3u);

  count = 0;
  g.Match(s1, p1, o2, [&](const Triple&) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST_F(GraphTest, TypeHelpers) {
  EXPECT_EQ(g.AllTypes(), (std::vector<TermId>{t}));
  EXPECT_EQ(g.NodesOfType(t), (std::vector<TermId>{s1}));
}

TEST_F(GraphTest, AllSubjectsAndProperties) {
  EXPECT_EQ(g.AllSubjects(), (std::vector<TermId>{s1, s2}));
  EXPECT_EQ(g.AllProperties().size(), 3u);
}

TEST_F(GraphTest, InterleavedWriteAndRead) {
  g.Add(s2, p2, o2);
  EXPECT_TRUE(g.Contains(s2, p2, o2));  // auto-freeze
  EXPECT_EQ(g.NumTriples(), 6u);
}

TEST(NTriplesTest, ParsesBasicForms) {
  Graph g;
  std::string data =
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "# a comment line\n"
      "\n"
      "_:b1 <http://x/p> \"hello\" .\n"
      "<http://x/s> <http://x/q> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<http://x/s> <http://x/q> \"bonjour\"@fr .\n";
  ASSERT_TRUE(NTriplesReader::ParseString(data, &g).ok());
  EXPECT_EQ(g.NumTriples(), 4u);
}

TEST(NTriplesTest, DecodesEscapes) {
  Graph g;
  std::string data =
      "<s> <p> \"line1\\nline2\\t\\\"quoted\\\" back\\\\slash\" .\n"
      "<s> <p> \"unicode \\u00e9 and \\U0001F600\" .\n";
  ASSERT_TRUE(NTriplesReader::ParseString(data, &g).ok());
  bool found_newline = false, found_unicode = false;
  g.Match(kInvalidTerm, kInvalidTerm, kInvalidTerm, [&](const Triple& t) {
    const Term& o = g.dict().Get(t.o);
    if (o.lexical.find("line1\nline2\t\"quoted\" back\\slash") != std::string::npos) {
      found_newline = true;
    }
    if (o.lexical.find("\xc3\xa9") != std::string::npos &&
        o.lexical.find("\xf0\x9f\x98\x80") != std::string::npos) {
      found_unicode = true;
    }
  });
  EXPECT_TRUE(found_newline);
  EXPECT_TRUE(found_unicode);
}

TEST(NTriplesTest, RejectsMalformedLines) {
  auto expect_bad = [](const std::string& line) {
    Graph g;
    Status st = NTriplesReader::ParseString(line, &g);
    EXPECT_FALSE(st.ok()) << line;
    EXPECT_EQ(st.code(), Status::Code::kParseError) << line;
  };
  expect_bad("<s> <p> <o>\n");                 // missing dot
  expect_bad("<s> <p .\n");                    // unclosed IRI
  expect_bad("<s> \"lit\" <o> .\n");           // literal predicate
  expect_bad("\"lit\" <p> <o> .\n");           // literal subject
  expect_bad("<s> <p> \"unterminated .\n");    // unterminated literal
  expect_bad("<s> <p> \"bad\\u12XZ\" .\n");    // bad hex
}

TEST(NTriplesTest, ErrorNamesLineNumber) {
  Graph g;
  Status st = NTriplesReader::ParseString("<a> <b> <c> .\n<bad line\n", &g);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RoundTrip) {
  Graph g;
  std::string data =
      "<http://x/s> <http://x/p> \"a\\n\\\"b\\\"\" .\n"
      "<http://x/s> <http://x/p> \"v\"@en .\n"
      "<http://x/s> <http://x/p> \"7\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "_:n1 <http://x/p> <http://x/o> .\n";
  ASSERT_TRUE(NTriplesReader::ParseString(data, &g).ok());
  std::ostringstream out;
  NTriplesWriter::Write(g, out);
  Graph g2;
  ASSERT_TRUE(NTriplesReader::ParseString(out.str(), &g2).ok());
  EXPECT_EQ(g2.NumTriples(), g.NumTriples());
  // Second round trip is byte-identical (canonical form reached).
  std::ostringstream out2;
  NTriplesWriter::Write(g2, out2);
  // Graphs use independent dictionaries; compare the serialized multisets.
  std::ostringstream out1_again;
  NTriplesWriter::Write(g, out1_again);
  EXPECT_EQ(out1_again.str().size(), out2.str().size());
}

TEST(OntologyTest, SubClassTransitivityAndTyping) {
  Graph g;
  Dictionary& d = g.dict();
  TermId ceo = d.InternIri("CEO");
  TermId business = d.InternIri("BusinessPerson");
  TermId person = d.InternIri("Person");
  TermId sub_class = d.InternIri(vocab::kRdfsSubClassOf);
  TermId alice = d.InternIri("alice");
  g.Add(ceo, sub_class, business);
  g.Add(business, sub_class, person);
  g.Add(alice, g.rdf_type(), ceo);

  size_t added = Saturate(&g);
  EXPECT_GE(added, 3u);  // ceo<person, alice:business, alice:person
  EXPECT_TRUE(g.Contains(ceo, sub_class, person));
  EXPECT_TRUE(g.Contains(alice, g.rdf_type(), business));
  EXPECT_TRUE(g.Contains(alice, g.rdf_type(), person));
}

TEST(OntologyTest, SubPropertyPropagation) {
  Graph g;
  Dictionary& d = g.dict();
  TermId manages = d.InternIri("manages");
  TermId related = d.InternIri("relatedTo");
  TermId sub_prop = d.InternIri(vocab::kRdfsSubPropertyOf);
  TermId a = d.InternIri("a"), b = d.InternIri("b");
  g.Add(manages, sub_prop, related);
  g.Add(a, manages, b);
  Saturate(&g);
  EXPECT_TRUE(g.Contains(a, related, b));
}

TEST(OntologyTest, DomainAndRange) {
  Graph g;
  Dictionary& d = g.dict();
  TermId manages = d.InternIri("manages");
  TermId ceo = d.InternIri("CEO");
  TermId company = d.InternIri("Company");
  TermId domain = d.InternIri(vocab::kRdfsDomain);
  TermId range = d.InternIri(vocab::kRdfsRange);
  TermId a = d.InternIri("a"), b = d.InternIri("b");
  g.Add(manages, domain, ceo);
  g.Add(manages, range, company);
  g.Add(a, manages, b);
  Saturate(&g);
  EXPECT_TRUE(g.Contains(a, g.rdf_type(), ceo));
  EXPECT_TRUE(g.Contains(b, g.rdf_type(), company));
}

TEST(OntologyTest, RangeSkipsLiterals) {
  Graph g;
  Dictionary& d = g.dict();
  TermId age_of = d.InternIri("age");
  TermId number = d.InternIri("Number");
  g.Add(age_of, d.InternIri(vocab::kRdfsRange), number);
  TermId a = d.InternIri("a");
  TermId lit = d.InternInteger(42);
  g.Add(a, age_of, lit);
  Saturate(&g);
  EXPECT_FALSE(g.Contains(lit, g.rdf_type(), number));
}

TEST(OntologyTest, SubPropertyThenDomainFixpoint) {
  // rdfs7 then rdfs2 through the *super* property.
  Graph g;
  Dictionary& d = g.dict();
  TermId p = d.InternIri("p");
  TermId q = d.InternIri("q");
  TermId c = d.InternIri("C");
  g.Add(p, d.InternIri(vocab::kRdfsSubPropertyOf), q);
  g.Add(q, d.InternIri(vocab::kRdfsDomain), c);
  TermId a = d.InternIri("a"), b = d.InternIri("b");
  g.Add(a, p, b);
  Saturate(&g);
  EXPECT_TRUE(g.Contains(a, q, b));
  EXPECT_TRUE(g.Contains(a, g.rdf_type(), c));
}

TEST(OntologyTest, SaturationIsIdempotent) {
  Graph g;
  Dictionary& d = g.dict();
  TermId ceo = d.InternIri("CEO");
  TermId person = d.InternIri("Person");
  g.Add(ceo, d.InternIri(vocab::kRdfsSubClassOf), person);
  g.Add(d.InternIri("alice"), g.rdf_type(), ceo);
  Saturate(&g);
  size_t after_first = g.NumTriples();
  EXPECT_EQ(Saturate(&g), 0u);
  EXPECT_EQ(g.NumTriples(), after_first);
}

}  // namespace
}  // namespace spade
