#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/string_util.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace spade {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "PARSE_ERROR: bad token");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::InvalidArgument("x").ToString(), "INVALID_ARGUMENT: x");
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
}

Status FailsInside() {
  SPADE_RETURN_NOT_OK(Status::NotFound("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status st = FailsInside();
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  int buckets[10] = {0};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.Uniform(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], kDraws / 10, kDraws / 100);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(23);
  int first = 0, last = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Zipf(10, 1.2);
    EXPECT_LT(v, 10u);
    first += (v == 0);
    last += (v == 9);
  }
  EXPECT_GT(first, 5 * last);
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "xy"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", "file.nt"));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_TRUE(ParseInt64("  13 ", &v));
  EXPECT_EQ(v, 13);
}

TEST(StringUtilTest, ParseDouble) {
  double v;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000);
  EXPECT_FALSE(ParseDouble("12x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5, 3), "1.5");
  EXPECT_EQ(FormatDouble(2.0, 3), "2");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

TEST(StringUtilTest, JoinAndLower) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"x", "1"});
  tp.AddRow({"long-name", "23"});
  std::ostringstream os;
  tp.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 23    |"), std::string::npos);
}

TEST(TablePrinterTest, PadsMissingCells) {
  TablePrinter tp({"a", "b", "c"});
  tp.AddRow({"1"});
  std::ostringstream os;
  tp.Print(os);
  EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(static_cast<double>(i));
  EXPECT_GT(x, 0.0);  // keep the loop observable
  EXPECT_GE(t.ElapsedMillis(), 0.0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace spade
