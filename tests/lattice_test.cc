#include "src/core/lattice.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "src/bitmap/roaring.h"
#include "src/exec/thread_pool.h"

namespace spade {
namespace {

class LatticeTest : public ::testing::Test {
 protected:
  // Figure 1 dimensions: nationality (5 values), gender (2), area (4).
  void SetUp() override {
    Dictionary& d = g.dict();
    auto add = [&](const std::string& s, const std::string& p,
                   const std::string& o) {
      g.Add(d.InternIri(s), d.InternIri(p), d.InternString(o));
    };
    // n1 = dos Santos, n2 = Ghosn.
    add("n1", "nationality", "Angola");
    add("n1", "gender", "Female");
    add("n1", "area", "Diamond");
    add("n1", "area", "Manufacturer");
    add("n1", "area", "NaturalGas");
    add("n2", "nationality", "Brazil");
    add("n2", "nationality", "France");
    add("n2", "nationality", "Lebanon");
    add("n2", "nationality", "Nigeria");
    add("n2", "area", "Automotive");
    add("n2", "area", "Manufacturer");
    g.Freeze();
    db = std::make_unique<AttributeStore>(&g);
    db->BuildDirectAttributes();
    cfs = std::make_unique<CfsIndex>(
        std::vector<TermId>{d.InternIri("n1"), d.InternIri("n2")});
  }
  Graph g;
  std::unique_ptr<AttributeStore> db;
  std::unique_ptr<CfsIndex> cfs;
};

TEST_F(LatticeTest, DimensionEncodingValuesAndCodes) {
  DimensionEncoding enc =
      BuildDimensionEncoding(*db, *cfs, *db->FindAttribute("nationality"));
  EXPECT_EQ(enc.values.size(), 5u);
  EXPECT_EQ(enc.domain_size(), 6);  // + null
  EXPECT_EQ(enc.null_code(), 5);
  FactId f1 = cfs->FactOf(g.dict().InternIri("n1"));
  FactId f2 = cfs->FactOf(g.dict().InternIri("n2"));
  EXPECT_EQ(enc.fact_codes[f1].size(), 1u);
  EXPECT_EQ(enc.fact_codes[f2].size(), 4u);
  EXPECT_EQ(enc.num_multi_facts, 1u);
  EXPECT_TRUE(enc.multi_valued());
}

TEST_F(LatticeTest, DimensionEncodingMissingValues) {
  DimensionEncoding enc =
      BuildDimensionEncoding(*db, *cfs, *db->FindAttribute("gender"));
  FactId f2 = cfs->FactOf(g.dict().InternIri("n2"));
  EXPECT_TRUE(enc.fact_codes[f2].empty());  // Ghosn lacks gender
  EXPECT_FALSE(enc.multi_valued());
}

TEST(CubeLayoutTest, PartitionCodecRoundTrip) {
  Mmst mmst = Mmst::Build({6, 3, 5}, 2);
  const CubeLayout& layout = mmst.layout();
  EXPECT_EQ(layout.num_partitions,
            static_cast<uint64_t>(layout.num_chunks[0]) *
                layout.num_chunks[1] * layout.num_chunks[2]);
  for (uint64_t p = 0; p < layout.num_partitions; ++p) {
    std::vector<int> cc = layout.DecodePartition(p);
    EXPECT_EQ(layout.EncodePartition(cc), p);
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_GE(cc[d], 0);
      EXPECT_LT(cc[d], layout.num_chunks[d]);
    }
  }
}

TEST(CubeLayoutTest, PartitionOrderIsLexicographicInLayoutOrder) {
  Mmst mmst = Mmst::Build({4, 4}, 2);
  const CubeLayout& layout = mmst.layout();
  // Consecutive partitions advance the fastest (last-ordered) dimension.
  std::vector<int> prev = layout.DecodePartition(0);
  for (uint64_t p = 1; p < layout.num_partitions; ++p) {
    std::vector<int> cur = layout.DecodePartition(p);
    // Lexicographic order over (order[0], order[1]).
    int slow = layout.order[0], fast = layout.order[1];
    bool advanced = (cur[slow] > prev[slow]) ||
                    (cur[slow] == prev[slow] && cur[fast] > prev[fast]);
    EXPECT_TRUE(advanced);
    prev = cur;
  }
}

TEST(CubeLayoutTest, CellCodecRoundTrip) {
  Mmst mmst = Mmst::Build({5, 2, 4}, 2);
  const CubeLayout& layout = mmst.layout();
  for (int32_t a = 0; a < 5; ++a) {
    for (int32_t b = 0; b < 2; ++b) {
      for (int32_t c = 0; c < 4; ++c) {
        uint64_t cell = layout.PackCell({a, b, c});
        EXPECT_EQ(layout.UnpackCell(cell), (std::vector<int32_t>{a, b, c}));
      }
    }
  }
}

TEST(MmstTest, FigureThreeShape) {
  // nationality=5(+1 null), gender=2(+1), area=4(+1); chunk 2.
  Mmst mmst = Mmst::Build({6, 3, 5}, 2);
  EXPECT_EQ(mmst.nodes().size(), 8u);
  const MmstNode& root = mmst.node(7);
  EXPECT_EQ(root.parent, -1);
  EXPECT_EQ(root.full_mask, 0u);  // root: all dims at chunk granularity
  EXPECT_EQ(root.memory_cells, 8u);  // 2*2*2 = one partition
  // Every non-root node has a parent with exactly one more dim.
  for (uint32_t mask = 0; mask < 7; ++mask) {
    const MmstNode& node = mmst.node(mask);
    ASSERT_GE(node.parent, 0);
    EXPECT_EQ(__builtin_popcount(static_cast<uint32_t>(node.parent)),
              __builtin_popcount(mask) + 1);
    EXPECT_EQ(static_cast<uint32_t>(node.parent) & mask, mask);
  }
}

TEST(MmstTest, SpanningTreeCoversLattice) {
  Mmst mmst = Mmst::Build({10, 7, 4, 3}, 3);
  size_t edges = 0;
  for (const auto& node : mmst.nodes()) edges += node.children.size();
  EXPECT_EQ(edges, mmst.nodes().size() - 1);  // a tree
}

TEST(MmstTest, TopologicalOrderParentsFirst) {
  Mmst mmst = Mmst::Build({5, 5, 5}, 2);
  std::vector<int> order = mmst.TopologicalOrder();
  std::vector<int> position(order.size());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = static_cast<int>(i);
  for (const auto& node : mmst.nodes()) {
    if (node.parent >= 0) {
      EXPECT_LT(position[node.parent], position[node.mask]);
    }
  }
}

TEST(MmstTest, FullMaskRule) {
  // Order is chosen to minimize memory; verify the full/chunk rule against
  // the chosen order: dim i is full iff some missing dim with >1 chunk is
  // slower (smaller position).
  Mmst mmst = Mmst::Build({100, 10, 4}, 4);
  const CubeLayout& layout = mmst.layout();
  for (const auto& node : mmst.nodes()) {
    for (int d : node.dims) {
      bool expect_full = false;
      for (size_t j = 0; j < 3; ++j) {
        if (node.mask & (1u << j)) continue;
        if (layout.num_chunks[j] <= 1) continue;
        if (layout.pos[j] < layout.pos[d]) expect_full = true;
      }
      EXPECT_EQ((node.full_mask >> d) & 1u, expect_full ? 1u : 0u);
    }
  }
}

TEST(MmstTest, MemoryCellsMatchExtents) {
  Mmst mmst = Mmst::Build({20, 6}, 3);
  const CubeLayout& layout = mmst.layout();
  for (const auto& node : mmst.nodes()) {
    uint64_t expected = 1;
    for (size_t k = 0; k < node.dims.size(); ++k) {
      int d = node.dims[k];
      expected *= (node.full_mask & (1u << d)) ? layout.extent[d]
                                               : layout.chunk[d];
    }
    EXPECT_EQ(node.memory_cells, expected);
  }
  EXPECT_GT(mmst.total_memory_cells(), 0u);
}

TEST(MmstTest, SingleDimension) {
  Mmst mmst = Mmst::Build({9}, 4);
  EXPECT_EQ(mmst.nodes().size(), 2u);
  EXPECT_EQ(mmst.layout().num_partitions, 3u);
  EXPECT_EQ(mmst.node(0).parent, 1);
}

TEST_F(LatticeTest, TranslationPlacesFactsInAllCombos) {
  std::vector<DimensionEncoding> encs;
  for (const char* name : {"nationality", "gender", "area"}) {
    encs.push_back(BuildDimensionEncoding(*db, *cfs, *db->FindAttribute(name)));
  }
  Mmst mmst = Mmst::Build(
      {encs[0].domain_size(), encs[1].domain_size(), encs[2].domain_size()}, 2);
  Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());
  EXPECT_EQ(tr.num_facts_translated, 2u);
  EXPECT_EQ(tr.num_dropped_combos, 0u);
  size_t total_pairs = 0;
  for (const auto& p : tr.partitions) total_pairs += p.size();
  // n1: 1 nat x 1 gender x 3 areas = 3 cells; n2: 4 x 1(null) x 2 = 8 cells.
  EXPECT_EQ(total_pairs, 11u);
  EXPECT_EQ(tr.root_group_count.size(), 11u);  // all distinct cells
}

TEST_F(LatticeTest, TranslationComboCapCounts) {
  std::vector<DimensionEncoding> encs;
  for (const char* name : {"nationality", "area"}) {
    encs.push_back(BuildDimensionEncoding(*db, *cfs, *db->FindAttribute(name)));
  }
  Mmst mmst = Mmst::Build({encs[0].domain_size(), encs[1].domain_size()}, 2);
  TranslationOptions opts;
  opts.max_combos_per_fact = 4;  // n2 has 4 x 2 = 8 combos -> dropped
  Translation tr = TranslateData(encs, mmst.layout(), opts);
  EXPECT_EQ(tr.num_dropped_combos, 8u);
}

TEST_F(LatticeTest, TranslationReservoirsBounded) {
  std::vector<DimensionEncoding> encs;
  encs.push_back(
      BuildDimensionEncoding(*db, *cfs, *db->FindAttribute("nationality")));
  Mmst mmst = Mmst::Build({encs[0].domain_size()}, 2);
  Rng rng(7);
  TranslationOptions opts;
  opts.sample_capacity = 1;
  opts.rng = &rng;
  Translation tr = TranslateData(encs, mmst.layout(), opts);
  for (const auto& [cell, reservoir] : tr.reservoirs) {
    EXPECT_LE(reservoir.size(), 1u);
    EXPECT_LE(reservoir.size(), tr.root_group_count.at(cell));
  }
}

// The scaffold exercised directly with counting cells: sum of all root-cell
// loads must equal the count emitted for each single-dim node's groups.
struct CountCell {
  uint64_t n = 0;
  bool Empty() const { return n == 0; }
};

TEST_F(LatticeTest, ScaffoldEmitsEachGroupExactlyOnce) {
  std::vector<DimensionEncoding> encs;
  for (const char* name : {"nationality", "gender", "area"}) {
    encs.push_back(BuildDimensionEncoding(*db, *cfs, *db->FindAttribute(name)));
  }
  Mmst mmst = Mmst::Build(
      {encs[0].domain_size(), encs[1].domain_size(), encs[2].domain_size()}, 2);
  Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());

  std::map<std::pair<uint32_t, std::vector<int32_t>>, uint64_t> emitted;
  CubeScaffold<CountCell> scaffold(&mmst);
  scaffold.Run(
      tr, [](CountCell* c, FactId) { c->n += 1; },
      [](CountCell* dst, const CountCell& src) { dst->n += src.n; },
      [&](uint32_t mask, Span<int32_t> coords,
          const CountCell& cell) {
        std::vector<int32_t> kept;
        for (size_t d = 0; d < 3; ++d) {
          if (mask & (1u << d)) kept.push_back(coords[d]);
        }
        auto key = std::make_pair(mask, kept);
        EXPECT_EQ(emitted.count(key), 0u) << "group emitted twice";
        emitted[key] = cell.n;
      });
  // Root groups: 11 cells (from the translation test). Their counts are 1.
  uint64_t root_total = 0;
  size_t root_groups = 0;
  for (const auto& [key, n] : emitted) {
    if (key.first == 7u) {
      root_total += n;
      ++root_groups;
    }
  }
  EXPECT_EQ(root_groups, 11u);
  EXPECT_EQ(root_total, 11u);
  // The empty node aggregates everything exactly once per root pair.
  auto all_it = emitted.find({0u, {}});
  ASSERT_NE(all_it, emitted.end());
  EXPECT_EQ(all_it->second, 11u);
}

struct ChunkCase {
  int chunk;
};
class ScaffoldChunkTest : public ::testing::TestWithParam<ChunkCase> {};

TEST_P(ScaffoldChunkTest, GroupCountsIndependentOfChunking) {
  // Whatever the partitioning, the multiset of emitted (node, group, count)
  // must be identical.
  Rng rng(99);
  size_t num_facts = 200;
  std::vector<DimensionEncoding> encs(2);
  for (size_t d = 0; d < 2; ++d) {
    encs[d].attr = static_cast<AttrId>(d);
    encs[d].fact_codes.resize(num_facts);
    size_t domain = d == 0 ? 7 : 13;
    for (size_t f = 0; f < num_facts; ++f) {
      size_t k = 1 + rng.Uniform(2);  // multi-valued
      for (size_t i = 0; i < k; ++i) {
        encs[d].fact_codes[f].push_back(
            static_cast<int32_t>(rng.Uniform(domain)));
      }
      std::sort(encs[d].fact_codes[f].begin(), encs[d].fact_codes[f].end());
      encs[d].fact_codes[f].erase(
          std::unique(encs[d].fact_codes[f].begin(),
                      encs[d].fact_codes[f].end()),
          encs[d].fact_codes[f].end());
    }
    for (size_t v = 0; v < domain; ++v) {
      encs[d].values.push_back(static_cast<TermId>(v + 1));
    }
  }

  auto run = [&](int chunk) {
    Mmst mmst =
        Mmst::Build({encs[0].domain_size(), encs[1].domain_size()}, chunk);
    Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());
    std::map<std::pair<uint32_t, std::vector<int32_t>>, uint64_t> emitted;
    CubeScaffold<CountCell> scaffold(&mmst);
    scaffold.Run(
        tr, [](CountCell* c, FactId) { c->n += 1; },
        [](CountCell* dst, const CountCell& src) { dst->n += src.n; },
        [&](uint32_t mask, Span<int32_t> coords,
            const CountCell& cell) {
          std::vector<int32_t> kept;
          for (size_t d = 0; d < 2; ++d) {
            if (mask & (1u << d)) kept.push_back(coords[d]);
          }
          emitted[{mask, kept}] += cell.n;
        });
    return emitted;
  };
  auto baseline = run(1000);  // one partition: trivially correct
  auto chunked = run(GetParam().chunk);
  EXPECT_EQ(baseline, chunked);
}

INSTANTIATE_TEST_SUITE_P(Chunks, ScaffoldChunkTest,
                         ::testing::Values(ChunkCase{1}, ChunkCase{2},
                                           ChunkCase{3}, ChunkCase{5},
                                           ChunkCase{8}, ChunkCase{16}));

}  // namespace
}  // namespace spade

namespace spade {
namespace {

TEST_F(LatticeTest, SetWantedNodesSkipsDeadSubtrees) {
  std::vector<DimensionEncoding> encs;
  for (const char* name : {"nationality", "gender", "area"}) {
    encs.push_back(BuildDimensionEncoding(*db, *cfs, *db->FindAttribute(name)));
  }
  Mmst mmst = Mmst::Build(
      {encs[0].domain_size(), encs[1].domain_size(), encs[2].domain_size()}, 2);
  Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());

  // Only the root is wanted: no child node may emit.
  std::vector<bool> wanted(8, false);
  wanted[7] = true;
  CubeScaffold<CountCell> scaffold(&mmst);
  scaffold.SetWantedNodes(wanted);
  std::set<uint32_t> emitted_masks;
  scaffold.Run(
      tr, [](CountCell* c, FactId) { c->n += 1; },
      [](CountCell* dst, const CountCell& src) { dst->n += src.n; },
      [&](uint32_t mask, Span<int32_t>, const CountCell&) {
        emitted_masks.insert(mask);
      });
  EXPECT_EQ(emitted_masks, (std::set<uint32_t>{7u}));
}

TEST_F(LatticeTest, SetWantedNodesKeepsAncestorsOfWantedNodes) {
  std::vector<DimensionEncoding> encs;
  for (const char* name : {"nationality", "gender", "area"}) {
    encs.push_back(BuildDimensionEncoding(*db, *cfs, *db->FindAttribute(name)));
  }
  Mmst mmst = Mmst::Build(
      {encs[0].domain_size(), encs[1].domain_size(), encs[2].domain_size()}, 2);
  Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());

  // Want only the single-dim node {dim0}: everything on its MMST path must
  // still propagate, and its result must equal the unrestricted run.
  std::vector<bool> wanted(8, false);
  wanted[1] = true;
  auto run = [&](bool restricted) {
    std::map<std::vector<int32_t>, uint64_t> node1;
    CubeScaffold<CountCell> scaffold(&mmst);
    if (restricted) scaffold.SetWantedNodes(wanted);
    scaffold.Run(
        tr, [](CountCell* c, FactId) { c->n += 1; },
        [](CountCell* dst, const CountCell& src) { dst->n += src.n; },
        [&](uint32_t mask, Span<int32_t> coords,
            const CountCell& cell) {
          if (mask == 1u) node1[{coords[0]}] += cell.n;
        });
    return node1;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace spade

// --- Partition-parallel lattice computation (ParallelLatticeRun) ----------

namespace spade {
namespace {

/// The MVDCube cell shape: a set of fact ids (exact union semantics).
struct TestBitmapCell {
  RoaringBitmap facts;
  bool Empty() const { return facts.Empty(); }
};

/// An ArrayCube-style FP accumulator cell.
struct TestSumCell {
  double sum = 0;
  bool Empty() const { return sum == 0; }
};

/// Random multi-valued encodings with missing values — the shapes that
/// stress region handling across slice boundaries.
std::vector<DimensionEncoding> MakeRandomEncodings(uint64_t seed,
                                                   size_t num_facts,
                                                   const std::vector<size_t>& domains,
                                                   double missing_prob) {
  Rng rng(seed);
  std::vector<DimensionEncoding> encs(domains.size());
  for (size_t d = 0; d < domains.size(); ++d) {
    encs[d].attr = static_cast<AttrId>(d);
    encs[d].fact_codes.resize(num_facts);
    for (size_t f = 0; f < num_facts; ++f) {
      if (rng.Bernoulli(missing_prob)) continue;  // missing dimension
      size_t k = 1 + rng.Uniform(2);              // often multi-valued
      for (size_t i = 0; i < k; ++i) {
        encs[d].fact_codes[f].push_back(
            static_cast<int32_t>(rng.Uniform(domains[d])));
      }
      std::sort(encs[d].fact_codes[f].begin(), encs[d].fact_codes[f].end());
      encs[d].fact_codes[f].erase(
          std::unique(encs[d].fact_codes[f].begin(), encs[d].fact_codes[f].end()),
          encs[d].fact_codes[f].end());
      if (encs[d].fact_codes[f].size() >= 2) ++encs[d].num_multi_facts;
    }
    for (size_t v = 0; v < domains[d]; ++v) {
      encs[d].values.push_back(static_cast<TermId>(v + 1));
    }
  }
  return encs;
}

using GroupSets = std::map<std::pair<uint32_t, uint64_t>, std::vector<uint32_t>>;

/// Sequential baseline: one scaffold over the full partition sequence,
/// groups keyed by the same canonical cell id the parallel run uses.
GroupSets SequentialBitmapGroups(const Mmst& mmst, const Translation& tr) {
  GroupSets out;
  CubeScaffold<TestBitmapCell> scaffold(&mmst);
  scaffold.Run(
      tr, [](TestBitmapCell* c, FactId f) { c->facts.Add(f); },
      [](TestBitmapCell* dst, const TestBitmapCell& src) {
        dst->facts.UnionWith(src.facts);
      },
      [&](uint32_t mask, Span<int32_t> coords, const TestBitmapCell& cell) {
        uint64_t id = PackCellMasked(mmst.layout(), mask, coords);
        auto [it, inserted] = out.try_emplace({mask, id}, cell.facts.ToVector());
        (void)it;
        EXPECT_TRUE(inserted) << "group emitted twice by sequential scaffold";
      });
  return out;
}

TEST(ParallelLatticeTest, BitmapGroupsMatchSequentialScaffoldAtEveryWorkerCount) {
  std::vector<DimensionEncoding> encs =
      MakeRandomEncodings(7, 500, {13, 9, 5}, 0.2);
  Mmst mmst = Mmst::Build(
      {encs[0].domain_size(), encs[1].domain_size(), encs[2].domain_size()}, 2);
  ASSERT_GT(mmst.layout().num_partitions, 8u);  // real slicing, not one slice
  Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());
  GroupSets expected = SequentialBitmapGroups(mmst, tr);
  ASSERT_FALSE(expected.empty());

  for (size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("workers = " + std::to_string(workers));
    ThreadPool pool(workers > 1 ? workers - 1 : 1);
    TaskScheduler scheduler(&pool);
    GroupSets got;
    std::vector<std::pair<uint32_t, uint64_t>> emit_order;
    ParallelLatticeStats stats;
    ParallelLatticeRun<TestBitmapCell>(
        mmst, tr, /*wanted=*/nullptr, workers, &scheduler,
        [](TestBitmapCell* c, FactId f) { c->facts.Add(f); },
        [](TestBitmapCell* dst, const TestBitmapCell& src) {
          dst->facts.UnionWith(src.facts);
        },
        [](uint32_t, Span<int32_t>) { return true; },
        [&](uint32_t mask, Span<int32_t> coords, TestBitmapCell& cell) {
          uint64_t id = PackCellMasked(mmst.layout(), mask, coords);
          emit_order.push_back({mask, id});
          got[{mask, id}] = cell.facts.ToVector();
        },
        &stats);
    // The fact sets of every group equal the sequential scaffold's exactly —
    // bitmap-union merge is exact set semantics, independent of slicing.
    EXPECT_EQ(got, expected);
    // Canonical emit order: node mask ascending, packed cell id ascending.
    EXPECT_TRUE(std::is_sorted(emit_order.begin(), emit_order.end()));
    EXPECT_EQ(emit_order.size(), got.size());  // each group exactly once
    EXPECT_GE(stats.num_slices, 1u);
    EXPECT_LE(stats.num_slices, workers);
    EXPECT_GE(stats.peak_partial_cells, got.size());
  }
}

TEST(ParallelLatticeTest, AccumulatorCellsMatchSequentialScaffold) {
  // Integer-valued sums: FP addition over them is exact, so even the
  // accumulator fold is value-identical to the sequential scaffold at any
  // worker count (the bit-identity guarantee proper is for set cells).
  std::vector<DimensionEncoding> encs = MakeRandomEncodings(21, 300, {11, 7}, 0.3);
  Mmst mmst = Mmst::Build({encs[0].domain_size(), encs[1].domain_size()}, 3);
  Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());

  auto load = [](TestSumCell* c, FactId f) { c->sum += 1.0 + (f % 5); };
  auto merge = [](TestSumCell* dst, const TestSumCell& src) {
    dst->sum += src.sum;
  };
  std::map<std::pair<uint32_t, uint64_t>, double> expected;
  CubeScaffold<TestSumCell> scaffold(&mmst);
  scaffold.Run(tr, load, merge,
               [&](uint32_t mask, Span<int32_t> coords, const TestSumCell& cell) {
                 expected[{mask, PackCellMasked(mmst.layout(), mask, coords)}] =
                     cell.sum;
               });
  ASSERT_FALSE(expected.empty());

  for (size_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers = " + std::to_string(workers));
    ThreadPool pool(2);
    TaskScheduler scheduler(&pool);
    std::map<std::pair<uint32_t, uint64_t>, double> got;
    ParallelLatticeRun<TestSumCell>(
        mmst, tr, nullptr, workers, &scheduler, load, merge,
        [](uint32_t, Span<int32_t>) { return true; },
        [&](uint32_t mask, Span<int32_t> coords, TestSumCell& cell) {
          got[{mask, PackCellMasked(mmst.layout(), mask, coords)}] = cell.sum;
        },
        nullptr);
    EXPECT_EQ(got, expected);
  }
}

TEST(ParallelLatticeTest, KeepFilterAndWantedNodesRestrictCollection) {
  std::vector<DimensionEncoding> encs = MakeRandomEncodings(3, 200, {9, 6}, 0.2);
  Mmst mmst = Mmst::Build({encs[0].domain_size(), encs[1].domain_size()}, 2);
  Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());

  // Want only node {dim0}; additionally drop its null-coordinate groups —
  // the MVDCube usage pattern.
  std::vector<bool> wanted(4, false);
  wanted[1] = true;
  std::map<uint64_t, uint64_t> counts;  // code of dim0 -> count
  ThreadPool pool(2);
  TaskScheduler scheduler(&pool);
  ParallelLatticeRun<TestSumCell>(
      mmst, tr, &wanted, 4, &scheduler,
      [](TestSumCell* c, FactId) { c->sum += 1; },
      [](TestSumCell* dst, const TestSumCell& src) { dst->sum += src.sum; },
      [&](uint32_t mask, Span<int32_t> coords) {
        return mask == 1u && coords[0] < encs[0].null_code();
      },
      [&](uint32_t mask, Span<int32_t> coords, TestSumCell& cell) {
        ASSERT_EQ(mask, 1u);
        ASSERT_LT(coords[0], encs[0].null_code());
        counts[static_cast<uint64_t>(coords[0])] =
            static_cast<uint64_t>(cell.sum);
      },
      nullptr);

  // Against a direct count over the translation: per dim0 code, the number
  // of (cell, fact) pairs carrying it (the scaffold's per-cell count load).
  std::map<uint64_t, uint64_t> direct;
  for (const auto& part : tr.partitions) {
    for (const auto& [cell, fact] : part) {
      (void)fact;
      std::vector<int32_t> coords = mmst.layout().UnpackCell(cell);
      if (coords[0] < encs[0].null_code()) {
        direct[static_cast<uint64_t>(coords[0])] += 1;
      }
    }
  }
  EXPECT_EQ(counts, direct);
}

TEST(PartitionSliceTest, SlicesPartitionTheSequence) {
  std::vector<DimensionEncoding> encs = MakeRandomEncodings(5, 400, {17, 11}, 0.1);
  Mmst mmst = Mmst::Build({encs[0].domain_size(), encs[1].domain_size()}, 2);
  Translation tr = TranslateData(encs, mmst.layout(), TranslationOptions());
  uint64_t P = mmst.layout().num_partitions;
  for (size_t k : {1u, 2u, 3u, 4u, 7u, 64u, 1000u}) {
    SCOPED_TRACE("num_slices = " + std::to_string(k));
    std::vector<PartitionSlice> slices = MakePartitionSlices(tr, P, k);
    ASSERT_FALSE(slices.empty());
    EXPECT_LE(slices.size(), std::min<uint64_t>(k, P));
    EXPECT_EQ(slices.front().begin, 0u);
    EXPECT_EQ(slices.back().end, P);
    for (size_t s = 0; s < slices.size(); ++s) {
      EXPECT_LT(slices[s].begin, slices[s].end);  // non-empty
      if (s > 0) {
        EXPECT_EQ(slices[s].begin, slices[s - 1].end);  // contiguous
      }
    }
  }
}

TEST(PartitionSliceTest, EmptyTranslationGetsOneSliceSpanningEverything) {
  Translation empty;
  std::vector<PartitionSlice> slices = MakePartitionSlices(empty, 12, 4);
  // No pairs to balance: the greedy cut may still split, but coverage and
  // contiguity must hold.
  ASSERT_FALSE(slices.empty());
  EXPECT_EQ(slices.front().begin, 0u);
  EXPECT_EQ(slices.back().end, 12u);
}

TEST(CubeLayoutTest, PackCellMaskedRoundTripsAndOrdersByPresentDims) {
  Mmst mmst = Mmst::Build({5, 4, 3}, 2);
  const CubeLayout& layout = mmst.layout();
  for (uint32_t mask = 0; mask < 8; ++mask) {
    uint64_t prev_id = 0;
    bool first = true;
    // Enumerate present-dim coordinates lexicographically.
    std::vector<int32_t> coords(3, -1);
    std::function<void(size_t)> rec = [&](size_t d) {
      if (d == 3) {
        uint64_t id = PackCellMasked(layout, mask, Span<int32_t>(coords.data(), 3));
        std::vector<int32_t> back(3);
        UnpackCellMaskedInto(layout, mask, id, back.data());
        EXPECT_EQ(back, coords);
        if (!first) {
          EXPECT_GT(id, prev_id);  // strictly ascending
        }
        prev_id = id;
        first = false;
        return;
      }
      if (!(mask & (1u << d))) {
        coords[d] = -1;
        rec(d + 1);
        return;
      }
      for (int32_t v = 0; v < layout.extent[d]; ++v) {
        coords[d] = v;
        rec(d + 1);
      }
    };
    rec(0);
  }
}

}  // namespace
}  // namespace spade
