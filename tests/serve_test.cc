// Edge-case tests of the serve request loop (src/persist/serve.h): line
// length boundaries, echo-mode framing, and ServeStats counter correctness
// across error / truncated / oversized requests. The cross-front-end
// byte-identity contract lives in net_test.cc; the thread-count identity
// contract in persist_test.cc.

#include "src/persist/serve.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "src/core/spade.h"
#include "src/datagen/synthetic.h"

namespace spade {
namespace {

class ServeEdgeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticOptions sopts;
    sopts.num_facts = 2000;
    sopts.dim_cardinality.assign(3, 15);
    sopts.num_measures = 2;
    sopts.num_fact_types = 2;
    graph_ = GenerateSynthetic(sopts).release();
    SpadeOptions options;
    options.cfs.min_size = 20;
    options.enumeration.max_dims = 2;
    options.top_k = 5;
    spade_ = new Spade(graph_, options);
    ASSERT_TRUE(spade_->RunOffline().ok());
    ASSERT_TRUE(spade_->PrepareFactSets().ok());
  }

  static void TearDownTestSuite() {
    delete spade_;
    spade_ = nullptr;
    delete graph_;
    graph_ = nullptr;
  }

  static std::string Run(const std::string& requests,
                         persist::ServeOptions sopts,
                         persist::ServeStats* stats = nullptr) {
    persist::InsightServer server(spade_, sopts);
    std::istringstream in(requests);
    std::ostringstream out;
    persist::ServeStats s = server.Serve(in, out);
    if (stats != nullptr) *stats = s;
    return out.str();
  }

  static Graph* graph_;
  static Spade* spade_;
};

Graph* ServeEdgeTest::graph_ = nullptr;
Spade* ServeEdgeTest::spade_ = nullptr;

TEST_F(ServeEdgeTest, LineOfExactlyMaxLineBytesIsServed) {
  // The limit is inclusive: a (trimmed) line of exactly max_line_bytes
  // parses normally; one byte more is answered unparsed.
  const std::string request = "explore top=3";
  persist::ServeOptions sopts;
  sopts.max_line_bytes = request.size();

  persist::ServeStats stats;
  std::string out = Run(request + "\n", sopts, &stats);
  EXPECT_NE(out.find("#1 ok"), std::string::npos) << out;
  EXPECT_EQ(stats.num_requests, 1u);
  EXPECT_EQ(stats.num_errors, 0u);

  // Surrounding whitespace doesn't count: the line is measured trimmed.
  out = Run("   " + request + "   \n", sopts, &stats);
  EXPECT_NE(out.find("#1 ok"), std::string::npos) << out;
  EXPECT_EQ(stats.num_errors, 0u);

  // One byte over: an error block naming both sizes, without parsing.
  out = Run(request + "3\n", sopts, &stats);
  EXPECT_NE(out.find("#1 error: request line too long (" +
                     std::to_string(request.size() + 1) + " bytes, limit " +
                     std::to_string(request.size()) + ")"),
            std::string::npos)
      << out;
  EXPECT_EQ(stats.num_requests, 1u);
  EXPECT_EQ(stats.num_errors, 1u);
}

TEST_F(ServeEdgeTest, EchoModeFramesEveryRequestIntoItsBlock) {
  persist::ServeOptions sopts;
  sopts.echo = true;
  const std::string out = Run("stats\nbogus\nexplore top=1\n", sopts);

  // Each block leads with its own echoed request, prefixed like every other
  // line of the block (so output remains parseable per-id).
  EXPECT_NE(out.find("#1 > stats\n#1 ok\n"), std::string::npos) << out;
  EXPECT_NE(out.find("#2 > bogus\n#2 error: "), std::string::npos) << out;
  EXPECT_NE(out.find("#3 > explore top=1\n#3 ok 1\n"), std::string::npos)
      << out;

  // Echo off: no "> " line anywhere.
  sopts.echo = false;
  EXPECT_EQ(Run("stats\n", sopts).find("> "), std::string::npos);
}

TEST_F(ServeEdgeTest, OversizedLinesAreNotEchoedEvenInEchoMode) {
  // Echoing an oversized line would defeat the memory bound that refused
  // it; the error block stands alone.
  persist::ServeOptions sopts;
  sopts.echo = true;
  sopts.max_line_bytes = 8;
  const std::string out = Run("0123456789abcdef\nstats\n", sopts);
  EXPECT_NE(out.find("#1 error: request line too long"), std::string::npos)
      << out;
  EXPECT_EQ(out.find("#1 > "), std::string::npos) << out;
  EXPECT_NE(out.find("#2 > stats"), std::string::npos) << out;
}

TEST_F(ServeEdgeTest, StatsCountErrorsTruncationsAndOversizedRequests) {
  persist::ServeOptions sopts;
  sopts.num_threads = 2;
  sopts.max_line_bytes = 64;

  persist::ServeStats stats;
  const std::string out = Run(
      "stats\n"
      "definitely-not-a-command\n"      // error
      "explore top=1 timeout=0\n"       // truncated (already-expired)
      + std::string(80, 'z') + "\n"     // oversized: error, never parsed
      "# comment\n"                      // skipped: not a request
      "\n"                               // skipped: not a request
      "explore top=2\n",
      sopts, &stats);

  EXPECT_EQ(stats.num_requests, 5u);
  EXPECT_EQ(stats.num_errors, 2u);
  EXPECT_EQ(stats.num_truncated, 1u);
  EXPECT_GT(stats.wall_ms, 0);

  // The truncated reply advertises the reason in its header line.
  EXPECT_NE(out.find("#3 ok 0 truncated=deadline"), std::string::npos) << out;
  // Skipped lines consume no ids: the last request is #5.
  EXPECT_NE(out.find("#5 ok"), std::string::npos) << out;
  EXPECT_EQ(out.find("#6 "), std::string::npos) << out;
}

TEST_F(ServeEdgeTest, ServerDeadlineCapsAndDefaultsRequestTimeouts) {
  persist::ServeOptions sopts;
  sopts.request_deadline_ms = 0.0001;  // effectively: everything truncates

  // Applied as the default when the request asks for nothing...
  std::string out = Run("explore top=1\n", sopts);
  EXPECT_NE(out.find("truncated=deadline"), std::string::npos) << out;

  // ...and as a cap when the request asks for more.
  out = Run("explore top=1 timeout=60000\n", sopts);
  EXPECT_NE(out.find("truncated=deadline"), std::string::npos) << out;

  // An explicit timeout below the cap is honored (0 = already expired is
  // the extreme case and must stay the client's own choice).
  sopts.request_deadline_ms = 60000;
  out = Run("explore top=1 timeout=0\n", sopts);
  EXPECT_NE(out.find("ok 0 truncated=deadline"), std::string::npos) << out;
}

}  // namespace
}  // namespace spade
