#include "src/core/mfs.h"

#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"

namespace spade {
namespace {

TEST(MfsTest, EmptyTransactions) {
  EXPECT_TRUE(MineMaximalFrequentSets({}, 1, 4).empty());
  EXPECT_TRUE(MineMaximalFrequentSets({{}, {}}, 1, 4).empty());
}

TEST(MfsTest, SingleItemset) {
  std::vector<std::vector<int>> tx = {{1, 2}, {1, 2}, {1, 2}};
  auto mfs = MineMaximalFrequentSets(tx, 3, 4);
  ASSERT_EQ(mfs.size(), 1u);
  EXPECT_EQ(mfs[0], (std::vector<int>{1, 2}));
}

TEST(MfsTest, MaximalityAbsorbsSubsets) {
  // {1,2,3} frequent => {1}, {2}, {1,2}, ... must not be reported.
  std::vector<std::vector<int>> tx = {{1, 2, 3}, {1, 2, 3}, {1, 2}};
  auto mfs = MineMaximalFrequentSets(tx, 2, 4);
  ASSERT_EQ(mfs.size(), 1u);
  EXPECT_EQ(mfs[0], (std::vector<int>{1, 2, 3}));
}

TEST(MfsTest, SplitsOnSupport) {
  // {1,2} and {1,3} each appear twice, {1,2,3} only once.
  std::vector<std::vector<int>> tx = {{1, 2}, {1, 2}, {1, 3}, {1, 3}, {1, 2, 3}};
  auto mfs = MineMaximalFrequentSets(tx, 3, 4);
  // support({1,2}) = 3, support({1,3}) = 3, support({1,2,3}) = 1.
  std::set<std::vector<int>> got(mfs.begin(), mfs.end());
  EXPECT_TRUE(got.count({1, 2}));
  EXPECT_TRUE(got.count({1, 3}));
  EXPECT_EQ(got.size(), 2u);
}

TEST(MfsTest, RespectsMaxItems) {
  std::vector<std::vector<int>> tx = {{1, 2, 3, 4}, {1, 2, 3, 4}};
  auto mfs = MineMaximalFrequentSets(tx, 2, 2);
  for (const auto& s : mfs) EXPECT_LE(s.size(), 2u);
  // All pairs of {1,2,3,4} are frequent and size-capped-maximal.
  EXPECT_EQ(mfs.size(), 6u);
}

TEST(MfsTest, MinSupportOfOne) {
  std::vector<std::vector<int>> tx = {{5}, {7, 9}};
  auto mfs = MineMaximalFrequentSets(tx, 1, 4);
  std::set<std::vector<int>> got(mfs.begin(), mfs.end());
  EXPECT_TRUE(got.count({5}));
  EXPECT_TRUE(got.count({7, 9}));
}

TEST(MfsTest, ResultIsAntichain) {
  std::vector<std::vector<int>> tx = {
      {1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {2, 3, 4}, {4}};
  auto mfs = MineMaximalFrequentSets(tx, 2, 4);
  for (const auto& a : mfs) {
    for (const auto& b : mfs) {
      if (&a == &b) continue;
      EXPECT_FALSE(std::includes(b.begin(), b.end(), a.begin(), a.end()))
          << "subset pair in result";
    }
  }
}

struct MfsRandomCase {
  uint64_t seed;
  size_t num_transactions;
  int num_items;
  double density;
  size_t min_support;
  size_t max_items;
};

class MfsPropertyTest : public ::testing::TestWithParam<MfsRandomCase> {};

TEST_P(MfsPropertyTest, MatchesBruteForce) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  std::vector<std::vector<int>> tx(p.num_transactions);
  for (auto& t : tx) {
    for (int item = 0; item < p.num_items; ++item) {
      if (rng.Bernoulli(p.density)) t.push_back(item);
    }
  }
  auto fast = MineMaximalFrequentSets(tx, p.min_support, p.max_items);
  auto brute = MaximalFrequentSetsBruteForce(tx, p.min_support, p.max_items);
  EXPECT_EQ(fast, brute);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, MfsPropertyTest,
    ::testing::Values(MfsRandomCase{1, 30, 8, 0.4, 5, 8},
                      MfsRandomCase{2, 50, 10, 0.3, 8, 10},
                      MfsRandomCase{3, 20, 6, 0.7, 4, 6},
                      MfsRandomCase{4, 40, 12, 0.2, 4, 12},
                      MfsRandomCase{5, 25, 9, 0.5, 2, 3},   // size-capped
                      MfsRandomCase{6, 60, 7, 0.6, 30, 7},  // high support
                      MfsRandomCase{7, 10, 10, 0.9, 9, 4},
                      MfsRandomCase{8, 35, 11, 0.35, 6, 2}));

}  // namespace
}  // namespace spade
