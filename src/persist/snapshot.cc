#include "src/persist/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "src/util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define SPADE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace spade {
namespace persist {

namespace {

constexpr size_t kAlign = 64;

// --- Little blob helpers (kind-specific metadata payloads). ----------------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked sequential decoder over a blob segment. Any over-read
/// flips ok() and zeroes the result, so decoding loops can bail once at the
/// end instead of checking every field.
class BlobCursor {
 public:
  BlobCursor(const char* data, size_t size) : data_(data), end_(size) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == end_; }

  uint8_t U8() {
    uint8_t v = 0;
    Copy(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Copy(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Copy(&v, sizeof(v));
    return v;
  }
  std::string Str(size_t len) {
    if (!ok_ || end_ - pos_ < len) {
      ok_ = false;
      return std::string();
    }
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  void Copy(void* out, size_t n) {
    if (!ok_ || end_ - pos_ < n) {
      ok_ = false;
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const char* data_;
  size_t pos_ = 0;
  size_t end_;
  bool ok_ = true;
};

// --- Segment writer. -------------------------------------------------------

/// Streams segments into an ofstream: zeroed header placeholder first,
/// 64-byte-aligned payloads, TOC, then the real header over the placeholder.
class Writer {
 public:
  explicit Writer(std::ofstream* out) : out_(out) {
    static const char zeros[sizeof(SnapshotHeader)] = {};
    out_->write(zeros, sizeof(zeros));
    offset_ = sizeof(SnapshotHeader);
  }

  void AddSegment(uint32_t kind, uint32_t aux, const void* data, size_t len) {
    SPADE_FAILPOINT("persist.save.segment");
    PadToAlign();
    SegmentEntry e;
    e.kind = kind;
    e.aux = aux;
    e.offset = offset_;
    e.length = len;
    e.checksum = HashBytes(data, len);
    entries_.push_back(e);
    if (len > 0) {
      out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
      offset_ += len;
    }
  }

  template <typename T>
  void AddSegment(uint32_t kind, uint32_t aux, Span<T> span) {
    AddSegment(kind, aux, span.data(), span.size() * sizeof(T));
  }

  /// Write the TOC and the final header; returns stream health.
  bool Finish(uint32_t rdf_type, uint64_t num_terms, uint64_t num_triples) {
    PadToAlign();
    const uint64_t toc_offset = offset_;
    const size_t toc_bytes = entries_.size() * sizeof(SegmentEntry);
    if (toc_bytes > 0) {
      out_->write(reinterpret_cast<const char*>(entries_.data()),
                  static_cast<std::streamsize>(toc_bytes));
    }
    SnapshotHeader h{};
    std::memcpy(h.magic, kSnapshotMagic, sizeof(h.magic));
    h.version = kSnapshotVersion;
    h.endian = kEndianProbe;
    h.toc_offset = toc_offset;
    h.num_segments = static_cast<uint32_t>(entries_.size());
    h.rdf_type = rdf_type;
    h.num_terms = num_terms;
    h.num_triples = num_triples;
    h.toc_checksum = HashBytes(entries_.data(), toc_bytes);
    out_->seekp(0);
    out_->write(reinterpret_cast<const char*>(&h), sizeof(h));
    out_->flush();
    return out_->good();
  }

 private:
  void PadToAlign() {
    static const char zeros[kAlign] = {};
    const size_t rem = offset_ % kAlign;
    if (rem == 0) return;
    out_->write(zeros, static_cast<std::streamsize>(kAlign - rem));
    offset_ += kAlign - rem;
  }

  std::ofstream* out_;
  uint64_t offset_ = 0;
  std::vector<SegmentEntry> entries_;
};

uint64_t TocKey(uint32_t kind, uint32_t aux) {
  return (static_cast<uint64_t>(kind) << 32) | aux;
}

// --- Crash-safe write plumbing. --------------------------------------------

/// Same-directory temp name the snapshot is built under before the atomic
/// rename. The pid suffix keeps concurrent savers (different processes) off
/// each other's temp files; within one process SaveSnapshot is not
/// re-entrant per path anyway.
std::string TempSavePath(const std::string& path) {
#if SPADE_HAVE_MMAP
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  return path + ".tmp";
#endif
}

/// fsync the finished temp file: after this returns OK, the bytes survive a
/// crash. No-op on platforms without the POSIX API.
Status SyncFile(const std::string& path) {
#if SPADE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::Internal("cannot reopen snapshot for fsync: " + path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync failed on snapshot: " + path);
#endif
  return Status::OK();
}

/// fsync the directory containing `path`, making the rename itself durable.
Status SyncParentDir(const std::string& path) {
#if SPADE_HAVE_MMAP
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("cannot open snapshot directory for fsync: " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync failed on snapshot directory: " + dir);
  }
#endif
  return Status::OK();
}

}  // namespace

uint64_t HashBytes(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  uint64_t h = 14695981039346656037ULL ^ static_cast<uint64_t>(len);
  const size_t words = len / 8;
  for (size_t i = 0; i < words; ++i) {
    uint64_t w;
    std::memcpy(&w, p + i * 8, 8);
    h ^= w;
    h *= 1099511628211ULL;
  }
  const size_t tail = len % 8;
  if (tail > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p + words * 8, tail);
    h ^= w;
    h *= 1099511628211ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

bool SameCfsOptions(const CfsOptions& a, const CfsOptions& b) {
  return a.min_size == b.min_size && a.max_sets == b.max_sets &&
         a.type_based == b.type_based && a.summary_based == b.summary_based &&
         a.property_sets == b.property_sets;
}

// --- Save. -----------------------------------------------------------------

Status SaveSnapshot(const AttributeStore& store,
                    const StructuralSummary& summary,
                    const std::vector<AttrStats>& stats,
                    const std::vector<CandidateFactSet>* fact_sets,
                    const SaveMeta& meta, const std::string& path) {
  const Graph& graph = store.graph();
  const Dictionary& dict = graph.dict();

  // Dictionary: flatten to a record array + string arena through the view
  // accessors, so owned and borrowed dictionaries save identically.
  const uint64_t num_terms = dict.size();
  std::vector<Dictionary::ArenaRecord> records(1);  // slot 0 = invalid
  records.reserve(num_terms + 1);
  std::string arena;
  for (TermId id = 1; id <= num_terms; ++id) {
    const std::string_view lex = dict.LexicalOf(id);
    const std::string_view lang = dict.LanguageOf(id);
    if (lex.size() > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("term lexical form too large to persist");
    }
    if (lang.size() > std::numeric_limits<uint16_t>::max()) {
      return Status::InvalidArgument("language tag too large to persist");
    }
    Dictionary::ArenaRecord r;
    r.lex_offset = arena.size();
    r.lex_len = static_cast<uint32_t>(lex.size());
    r.datatype = dict.DatatypeOf(id);
    r.lang_len = static_cast<uint16_t>(lang.size());
    r.kind = static_cast<uint8_t>(dict.KindOf(id));
    records.push_back(r);
    arena.append(lex);
    arena.append(lang);
  }

  // Triple permutations (freezes a dirty graph).
  const Span<Triple> spo = graph.triples();
  const Span<Triple> pos = graph.triples_pos();
  const Span<Triple> osp = graph.triples_osp();

  // Structural summary, flattened to CSR through the mode-agnostic span
  // accessors.
  std::vector<uint32_t> class_offsets{0}, prop_offsets{0};
  std::vector<TermId> members, props;
  std::vector<StructuralSummary::NodeClass> node_classes;
  for (size_t c = 0; c < summary.num_classes(); ++c) {
    const Span<TermId> m = summary.ClassMembers(c);
    members.insert(members.end(), m.begin(), m.end());
    for (TermId node : m) {
      node_classes.push_back({node, static_cast<uint32_t>(c)});
    }
    class_offsets.push_back(static_cast<uint32_t>(members.size()));
    const Span<TermId> p = summary.ClassPropertySpan(c);
    props.insert(props.end(), p.begin(), p.end());
    prop_offsets.push_back(static_cast<uint32_t>(props.size()));
  }
  if (members.size() > std::numeric_limits<uint32_t>::max() ||
      props.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("summary too large for 32-bit CSR offsets");
  }
  std::sort(node_classes.begin(), node_classes.end(),
            [](const StructuralSummary::NodeClass& a,
               const StructuralSummary::NodeClass& b) { return a.node < b.node; });

  // Attribute tables: metadata blob + three columns each.
  std::string attr_meta;
  AppendU32(&attr_meta, static_cast<uint32_t>(store.num_attributes()));
  for (AttrId id = 0; id < store.num_attributes(); ++id) {
    const AttributeTable& t = store.attribute(id);
    if (!t.sealed()) {
      return Status::InvalidArgument("cannot save an unsealed attribute table: " +
                                     t.name);
    }
    AppendU8(&attr_meta, static_cast<uint8_t>(t.origin));
    AppendU32(&attr_meta, t.property);
    AppendU32(&attr_meta, t.derived_from);
    AppendU32(&attr_meta, static_cast<uint32_t>(t.name.size()));
    attr_meta.append(t.name);
  }

  // Offline statistics.
  std::vector<PersistedAttrStats> pstats;
  pstats.reserve(stats.size());
  for (const AttrStats& s : stats) {
    PersistedAttrStats p;
    p.kind = static_cast<uint64_t>(s.kind);
    p.num_subjects = s.num_subjects;
    p.num_values = s.num_values;
    p.num_distinct_values = s.num_distinct_values;
    p.num_multi_subjects = s.num_multi_subjects;
    p.min_value = s.min_value;
    p.max_value = s.max_value;
    p.avg_text_length = s.avg_text_length;
    pstats.push_back(p);
  }

  // Pipeline metadata: report facts + the CfsOptions fingerprint.
  std::string pipeline_meta;
  AppendU64(&pipeline_meta, meta.num_direct_properties);
  AppendU64(&pipeline_meta, meta.derivations.num_count_attrs);
  AppendU64(&pipeline_meta, meta.derivations.num_keyword_attrs);
  AppendU64(&pipeline_meta, meta.derivations.num_language_attrs);
  AppendU64(&pipeline_meta, meta.derivations.num_path_attrs);
  AppendU64(&pipeline_meta, meta.cfs_options.min_size);
  AppendU64(&pipeline_meta, meta.cfs_options.max_sets);
  AppendU8(&pipeline_meta, meta.cfs_options.type_based ? 1 : 0);
  AppendU8(&pipeline_meta, meta.cfs_options.summary_based ? 1 : 0);
  AppendU32(&pipeline_meta,
            static_cast<uint32_t>(meta.cfs_options.property_sets.size()));
  for (const auto& set : meta.cfs_options.property_sets) {
    AppendU32(&pipeline_meta, static_cast<uint32_t>(set.size()));
    for (TermId p : set) AppendU32(&pipeline_meta, p);
  }

  // Candidate fact sets (optional).
  std::string cfs_meta;
  if (fact_sets != nullptr) {
    AppendU32(&cfs_meta, static_cast<uint32_t>(fact_sets->size()));
    for (const CandidateFactSet& cfs : *fact_sets) {
      AppendU8(&cfs_meta, static_cast<uint8_t>(cfs.origin));
      AppendU32(&cfs_meta, cfs.type);
      AppendU32(&cfs_meta, static_cast<uint32_t>(cfs.name.size()));
      cfs_meta.append(cfs.name);
      AppendU64(&cfs_meta, cfs.members.size());
      for (TermId m : cfs.members) AppendU32(&cfs_meta, m);
    }
  }

  // Crash safety: build the snapshot in a same-directory temp file, fsync
  // it, then atomically rename over the destination and fsync the parent
  // directory. A crash — SIGKILL included — at any point leaves `path`
  // either untouched (the old snapshot, byte for byte) or the complete new
  // snapshot, never a torn file. Error paths remove the temp file.
  SPADE_FAILPOINT_STATUS("persist.save.open");
  const std::string tmp_path = TempSavePath(path);
  struct TmpGuard {
    const std::string& tmp;
    bool armed = true;
    ~TmpGuard() {
      if (armed) std::remove(tmp.c_str());
    }
  } guard{tmp_path};
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::InvalidArgument("cannot open snapshot file for writing: " +
                                     tmp_path);
    }
    Writer w(&out);
    try {
      w.AddSegment(kDictRecords, 0, records.data(),
                   records.size() * sizeof(Dictionary::ArenaRecord));
      w.AddSegment(kDictArena, 0, arena.data(), arena.size());
      w.AddSegment(kTriplesSpo, 0, spo);
      w.AddSegment(kTriplesPos, 0, pos);
      w.AddSegment(kTriplesOsp, 0, osp);
      w.AddSegment(kSummaryClassOffsets, 0, class_offsets.data(),
                   class_offsets.size() * sizeof(uint32_t));
      w.AddSegment(kSummaryMembers, 0, members.data(),
                   members.size() * sizeof(TermId));
      w.AddSegment(kSummaryPropOffsets, 0, prop_offsets.data(),
                   prop_offsets.size() * sizeof(uint32_t));
      w.AddSegment(kSummaryProps, 0, props.data(),
                   props.size() * sizeof(TermId));
      w.AddSegment(kSummaryNodeClasses, 0, node_classes.data(),
                   node_classes.size() * sizeof(StructuralSummary::NodeClass));
      w.AddSegment(kAttrStats, 0, pstats.data(),
                   pstats.size() * sizeof(PersistedAttrStats));
      w.AddSegment(kAttrMeta, 0, attr_meta.data(), attr_meta.size());
      for (AttrId id = 0; id < store.num_attributes(); ++id) {
        const AttributeTable& t = store.attribute(id);
        w.AddSegment(kAttrSubjects, id, t.subjects());
        w.AddSegment(kAttrOffsets, id, t.offsets());
        w.AddSegment(kAttrObjects, id, t.objects());
      }
      w.AddSegment(kPipelineMeta, 0, pipeline_meta.data(),
                   pipeline_meta.size());
      if (fact_sets != nullptr) {
        w.AddSegment(kCfsMeta, 0, cfs_meta.data(), cfs_meta.size());
      }
      if (!w.Finish(graph.rdf_type(), num_terms, graph.NumTriples())) {
        return Status::Internal("short write while saving snapshot: " +
                                tmp_path);
      }
    } catch (const std::exception& e) {
      // Injected faults (and allocation failure) surface as a clean error
      // with the destination untouched.
      return Status::Internal(std::string("snapshot save aborted: ") +
                              e.what());
    }
  }
  SPADE_FAILPOINT_STATUS("persist.save.finish");
  SPADE_RETURN_NOT_OK(SyncFile(tmp_path));
  SPADE_FAILPOINT_STATUS("persist.save.rename");
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename snapshot into place: " + tmp_path +
                            " -> " + path);
  }
  guard.armed = false;
  return SyncParentDir(path);
}

// --- Reader. ---------------------------------------------------------------

SnapshotReader::~SnapshotReader() { Unmap(); }

void SnapshotReader::Unmap() {
#if SPADE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

Status SnapshotReader::MapFile(const std::string& path) {
#if SPADE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed on snapshot: " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < sizeof(SnapshotHeader)) {
    ::close(fd);
    return Status::ParseError("snapshot too small: " + path);
  }
  void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    return Status::Internal("mmap failed on snapshot: " + path);
  }
  data_ = static_cast<const char*>(base);
  size_ = size;
  mapped_ = true;
  return Status::OK();
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  const std::streamoff size = in.tellg();
  if (size < static_cast<std::streamoff>(sizeof(SnapshotHeader))) {
    return Status::ParseError("snapshot too small: " + path);
  }
  fallback_.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(fallback_.data(), size);
  if (!in.good()) {
    return Status::Internal("short read on snapshot: " + path);
  }
  data_ = fallback_.data();
  size_ = static_cast<uint64_t>(size);
  mapped_ = false;
  return Status::OK();
#endif
}

Status SnapshotReader::Open(const std::string& path, const Options& options) {
  SPADE_FAILPOINT_STATUS("persist.load.open");
  Unmap();
  toc_.clear();
  toc_index_.clear();
  SPADE_RETURN_NOT_OK(MapFile(path));

  std::memcpy(&header_, data_, sizeof(header_));
  if (std::memcmp(header_.magic, kSnapshotMagic, sizeof(header_.magic)) != 0) {
    Unmap();
    return Status::ParseError("not a Spade snapshot (bad magic): " + path);
  }
  if (header_.version != kSnapshotVersion) {
    const uint32_t version = header_.version;
    Unmap();
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kSnapshotVersion) + "): " + path);
  }
  if (header_.endian != kEndianProbe) {
    Unmap();
    return Status::ParseError(
        "snapshot was written on a platform with different endianness: " +
        path);
  }
  const uint64_t toc_bytes =
      static_cast<uint64_t>(header_.num_segments) * sizeof(SegmentEntry);
  if (header_.toc_offset < sizeof(SnapshotHeader) ||
      header_.toc_offset % kAlign != 0 || header_.toc_offset > size_ ||
      toc_bytes > size_ - header_.toc_offset) {
    Unmap();
    return Status::ParseError("snapshot TOC out of bounds: " + path);
  }
  toc_.resize(header_.num_segments);
  if (toc_bytes > 0) {
    std::memcpy(toc_.data(), data_ + header_.toc_offset, toc_bytes);
  }
  if (HashBytes(toc_.data(), toc_bytes) != header_.toc_checksum) {
    Unmap();
    toc_.clear();
    return Status::ParseError("snapshot TOC checksum mismatch: " + path);
  }
  for (size_t i = 0; i < toc_.size(); ++i) {
    const SegmentEntry& e = toc_[i];
    if (e.kind == 0 || e.offset < sizeof(SnapshotHeader) ||
        e.offset % kAlign != 0 || e.offset > header_.toc_offset ||
        e.length > header_.toc_offset - e.offset) {
      Unmap();
      toc_.clear();
      return Status::ParseError("snapshot segment out of bounds: " + path);
    }
    if (!toc_index_.emplace(TocKey(e.kind, e.aux), i).second) {
      Unmap();
      toc_.clear();
      toc_index_.clear();
      return Status::ParseError("duplicate snapshot segment: " + path);
    }
    if (options.verify_checksums &&
        HashBytes(data_ + e.offset, e.length) != e.checksum) {
      Unmap();
      toc_.clear();
      toc_index_.clear();
      return Status::ParseError(
          "snapshot segment checksum mismatch (kind " +
          std::to_string(e.kind) + ", aux " + std::to_string(e.aux) +
          "): " + path);
    }
  }
  return Status::OK();
}

const SegmentEntry* SnapshotReader::Find(uint32_t kind, uint32_t aux) const {
  auto it = toc_index_.find(TocKey(kind, aux));
  if (it == toc_index_.end()) return nullptr;
  return &toc_[it->second];
}

namespace {

/// Locate (kind, aux) and reinterpret it as a T array; element-size and
/// presence failures turn into ParseError.
template <typename T>
Status RequireSpan(const SnapshotReader& reader, uint32_t kind, uint32_t aux,
                   Span<T>* out) {
  const SegmentEntry* e = reader.Find(kind, aux);
  if (e == nullptr) {
    return Status::ParseError("snapshot is missing segment kind " +
                              std::to_string(kind) + " aux " +
                              std::to_string(aux));
  }
  if (e->length % sizeof(T) != 0) {
    return Status::ParseError("snapshot segment kind " + std::to_string(kind) +
                              " has a truncated payload");
  }
  *out = reader.GetSpan<T>(*e);
  return Status::OK();
}

}  // namespace

Status SnapshotReader::Load(Graph* graph,
                            std::unique_ptr<AttributeStore>* store,
                            StructuralSummary* summary,
                            std::vector<AttrStats>* stats,
                            std::vector<CandidateFactSet>* fact_sets,
                            LoadedMeta* meta) {
  if (!is_open()) {
    return Status::InvalidArgument("SnapshotReader::Load before Open");
  }

  // Dictionary.
  Span<Dictionary::ArenaRecord> records;
  Span<char> arena;
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kDictRecords, 0, &records));
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kDictArena, 0, &arena));
  if (records.size() != header_.num_terms + 1) {
    return Status::ParseError("snapshot dictionary record count mismatch");
  }
  for (const Dictionary::ArenaRecord& r : records) {
    const uint64_t end = r.lex_offset + r.lex_len + r.lang_len;
    if (end < r.lex_offset || end > arena.size()) {
      return Status::ParseError("snapshot dictionary record out of arena bounds");
    }
  }

  // Triple permutations.
  Span<Triple> spo, pos, osp;
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kTriplesSpo, 0, &spo));
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kTriplesPos, 0, &pos));
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kTriplesOsp, 0, &osp));
  if (spo.size() != header_.num_triples || pos.size() != header_.num_triples ||
      osp.size() != header_.num_triples) {
    return Status::ParseError("snapshot triple count mismatch");
  }
  if (header_.rdf_type == kInvalidTerm ||
      header_.rdf_type >= records.size()) {
    return Status::ParseError("snapshot rdf:type id out of range");
  }

  // Structural summary CSR.
  Span<uint32_t> class_offsets, prop_offsets;
  Span<TermId> members, props;
  Span<StructuralSummary::NodeClass> node_classes;
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kSummaryClassOffsets, 0, &class_offsets));
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kSummaryMembers, 0, &members));
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kSummaryPropOffsets, 0, &prop_offsets));
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kSummaryProps, 0, &props));
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kSummaryNodeClasses, 0, &node_classes));
  if (class_offsets.empty() || prop_offsets.size() != class_offsets.size() ||
      class_offsets[0] != 0 || prop_offsets[0] != 0 ||
      class_offsets.back() != members.size() ||
      prop_offsets.back() != props.size() ||
      node_classes.size() != members.size()) {
    return Status::ParseError("snapshot summary CSR is inconsistent");
  }
  for (size_t c = 1; c < class_offsets.size(); ++c) {
    if (class_offsets[c] < class_offsets[c - 1] ||
        prop_offsets[c] < prop_offsets[c - 1]) {
      return Status::ParseError("snapshot summary offsets not monotonic");
    }
  }

  // Attribute metadata + statistics.
  const SegmentEntry* attr_meta_entry = Find(kAttrMeta);
  Span<PersistedAttrStats> pstats;
  SPADE_RETURN_NOT_OK(RequireSpan(*this, kAttrStats, 0, &pstats));
  if (attr_meta_entry == nullptr) {
    return Status::ParseError("snapshot is missing attribute metadata");
  }
  BlobCursor attr_cursor(data_ + attr_meta_entry->offset,
                         attr_meta_entry->length);
  const uint32_t num_attrs = attr_cursor.U32();
  struct AttrHeader {
    AttrOrigin origin;
    TermId property;
    AttrId derived_from;
    std::string name;
    Span<TermId> subjects, objects;
    Span<uint32_t> offsets;
  };
  std::vector<AttrHeader> attrs(num_attrs);
  for (uint32_t id = 0; id < num_attrs; ++id) {
    AttrHeader& a = attrs[id];
    a.origin = static_cast<AttrOrigin>(attr_cursor.U8());
    a.property = attr_cursor.U32();
    a.derived_from = attr_cursor.U32();
    a.name = attr_cursor.Str(attr_cursor.U32());
    if (!attr_cursor.ok()) {
      return Status::ParseError("snapshot attribute metadata truncated");
    }
    SPADE_RETURN_NOT_OK(RequireSpan(*this, kAttrSubjects, id, &a.subjects));
    SPADE_RETURN_NOT_OK(RequireSpan(*this, kAttrOffsets, id, &a.offsets));
    SPADE_RETURN_NOT_OK(RequireSpan(*this, kAttrObjects, id, &a.objects));
    if (a.offsets.size() != a.subjects.size() + 1 ||
        a.offsets.back() != a.objects.size()) {
      return Status::ParseError("snapshot attribute table CSR is inconsistent: " +
                                a.name);
    }
  }

  // Pipeline metadata.
  const SegmentEntry* pipe_entry = Find(kPipelineMeta);
  if (pipe_entry == nullptr) {
    return Status::ParseError("snapshot is missing pipeline metadata");
  }
  LoadedMeta loaded;
  loaded.num_terms = header_.num_terms;
  loaded.num_triples = header_.num_triples;
  BlobCursor pipe(data_ + pipe_entry->offset, pipe_entry->length);
  loaded.num_direct_properties = pipe.U64();
  loaded.derivations.num_count_attrs = pipe.U64();
  loaded.derivations.num_keyword_attrs = pipe.U64();
  loaded.derivations.num_language_attrs = pipe.U64();
  loaded.derivations.num_path_attrs = pipe.U64();
  loaded.cfs_options.min_size = pipe.U64();
  loaded.cfs_options.max_sets = pipe.U64();
  loaded.cfs_options.type_based = pipe.U8() != 0;
  loaded.cfs_options.summary_based = pipe.U8() != 0;
  const uint32_t num_property_sets = pipe.U32();
  loaded.cfs_options.property_sets.resize(num_property_sets);
  for (uint32_t i = 0; i < num_property_sets && pipe.ok(); ++i) {
    const uint32_t n = pipe.U32();
    auto& set = loaded.cfs_options.property_sets[i];
    set.reserve(n);
    for (uint32_t k = 0; k < n && pipe.ok(); ++k) set.push_back(pipe.U32());
  }
  if (!pipe.ok()) {
    return Status::ParseError("snapshot pipeline metadata truncated");
  }

  // Candidate fact sets (optional segment; members are copied out — they
  // are tiny next to the columns and CfsIndex needs an owned vector anyway).
  std::vector<CandidateFactSet> loaded_sets;
  const SegmentEntry* cfs_entry = Find(kCfsMeta);
  if (cfs_entry != nullptr) {
    BlobCursor cur(data_ + cfs_entry->offset, cfs_entry->length);
    const uint32_t count = cur.U32();
    loaded_sets.resize(count);
    for (uint32_t i = 0; i < count && cur.ok(); ++i) {
      CandidateFactSet& cfs = loaded_sets[i];
      cfs.origin = static_cast<CandidateFactSet::Origin>(cur.U8());
      cfs.type = cur.U32();
      cfs.name = cur.Str(cur.U32());
      const uint64_t n = cur.U64();
      cfs.members.reserve(static_cast<size_t>(n));
      for (uint64_t k = 0; k < n && cur.ok(); ++k) {
        cfs.members.push_back(cur.U32());
      }
    }
    if (!cur.ok()) {
      return Status::ParseError("snapshot fact-set metadata truncated");
    }
    loaded.has_fact_sets = true;
  }

  // Everything validated: attach. Nothing below can fail, so a failed Load
  // never leaves the caller's structures half-attached.
  SPADE_FAILPOINT_STATUS("persist.load.attach");
  graph->dict().AttachArena(records, arena);
  graph->AttachTriples(spo, pos, osp, header_.rdf_type);
  summary->Attach(class_offsets, members, prop_offsets, props, node_classes);
  *store = std::make_unique<AttributeStore>(graph);
  for (AttrHeader& a : attrs) {
    AttributeTable t;
    t.name = std::move(a.name);
    t.origin = a.origin;
    t.property = a.property;
    t.derived_from = a.derived_from;
    t.BorrowColumns(a.subjects, a.offsets, a.objects);
    (*store)->AddAttribute(std::move(t));
  }
  stats->clear();
  stats->reserve(pstats.size());
  for (const PersistedAttrStats& p : pstats) {
    AttrStats s;
    s.kind = static_cast<ValueKind>(p.kind);
    s.num_subjects = static_cast<size_t>(p.num_subjects);
    s.num_values = static_cast<size_t>(p.num_values);
    s.num_distinct_values = static_cast<size_t>(p.num_distinct_values);
    s.num_multi_subjects = static_cast<size_t>(p.num_multi_subjects);
    s.min_value = p.min_value;
    s.max_value = p.max_value;
    s.avg_text_length = p.avg_text_length;
    stats->push_back(s);
  }
  if (fact_sets != nullptr && loaded.has_fact_sets) {
    *fact_sets = std::move(loaded_sets);
  }
  if (meta != nullptr) *meta = loaded;
  return Status::OK();
}

}  // namespace persist
}  // namespace spade
