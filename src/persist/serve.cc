#include "src/persist/serve.h"

#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <new>
#include <ostream>
#include <shared_mutex>
#include <sstream>
#include <vector>

#include "src/ingest/chunk_source.h"
#include "src/util/failpoint.h"
#include "src/util/string_util.h"
#include "src/util/timer.h"

namespace spade {
namespace persist {

namespace {

/// Whitespace-split, dropping empty tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

bool ParseSize(std::string_view s, size_t* out) {
  int64_t v = 0;
  if (!ParseInt64(s, &v) || v < 0) return false;
  *out = static_cast<size_t>(v);
  return true;
}

/// Parse one `key=value` token into `req`; empty return = success.
std::string ApplyToken(const std::string& token, ExploreRequest* req) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return "expected key=value, got '" + token + "'";
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "cfs") {
    for (const std::string& name : Split(value, ',')) {
      if (!name.empty()) req->cfs_names.push_back(name);
    }
    return "";
  }
  if (key == "top") {
    size_t k = 0;
    if (!ParseSize(value, &k) || k == 0) return "bad top '" + value + "'";
    req->top_k = k;
    return "";
  }
  if (key == "interestingness") {
    if (value == "variance") {
      req->interestingness = InterestingnessKind::kVariance;
    } else if (value == "skewness") {
      req->interestingness = InterestingnessKind::kSkewness;
    } else if (value == "kurtosis") {
      req->interestingness = InterestingnessKind::kKurtosis;
    } else {
      return "unknown interestingness '" + value + "'";
    }
    return "";
  }
  if (key == "algorithm") {
    if (value == "mvdcube") {
      req->algorithm = EvalAlgorithm::kMvdCube;
    } else if (value == "pgcube") {
      req->algorithm = EvalAlgorithm::kPgCubeStar;
    } else if (value == "pgcube-distinct") {
      req->algorithm = EvalAlgorithm::kPgCubeDistinct;
    } else if (value == "arraycube") {
      req->algorithm = EvalAlgorithm::kArrayCube;
    } else {
      return "unknown algorithm '" + value + "'";
    }
    return "";
  }
  if (key == "earlystop") {
    if (value == "on") {
      req->earlystop = true;
    } else if (value == "off") {
      req->earlystop = false;
    } else {
      return "earlystop must be on|off, got '" + value + "'";
    }
    return "";
  }
  if (key == "max-dims") {
    size_t n = 0;
    if (!ParseSize(value, &n) || n == 0) return "bad max-dims '" + value + "'";
    req->max_dims = n;
    return "";
  }
  if (key == "min-support") {
    double r = 0;
    if (!ParseDouble(value, &r) || r < 0 || r > 1) {
      return "bad min-support '" + value + "' (want a ratio in [0, 1])";
    }
    req->min_support_ratio = r;
    return "";
  }
  if (key == "timeout") {
    double ms = 0;
    if (!ParseDouble(value, &ms) || ms < 0) {
      return "bad timeout '" + value + "' (want milliseconds >= 0)";
    }
    req->deadline_ms = ms;  // 0 = already expired: an empty truncated reply
    return "";
  }
  return "unknown key '" + key + "'";
}

/// Prefix every line of `body` with "#<id> ".
std::string PrefixBlock(uint64_t id, const std::string& body) {
  const std::string prefix = "#" + std::to_string(id) + " ";
  std::string out;
  out.reserve(body.size() + prefix.size() * 8);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) nl = body.size() - 1;
    out += prefix;
    out.append(body, pos, nl - pos + 1);
    pos = nl + 1;
  }
  return out;
}

}  // namespace

std::string FormatResponseBlock(uint64_t id, const std::string& request,
                                const std::string& body, bool echo) {
  std::string block;
  if (echo) block = PrefixBlock(id, "> " + request + "\n");
  block += PrefixBlock(id, body);
  return block;
}

std::string OversizedLineBody(size_t line_bytes, size_t limit) {
  return "error: request line too long (" + std::to_string(line_bytes) +
         " bytes, limit " + std::to_string(limit) + ")\n";
}

InsightServer::InsightServer(const Spade* spade, ServeOptions options)
    : spade_(spade), options_(options) {}

InsightServer::InsightServer(Spade* spade, ServeOptions options)
    : spade_(spade), mutable_spade_(spade), options_(options) {}

std::string InsightServer::HandleLine(const std::string& line,
                                      TaskScheduler* scheduler,
                                      CancelToken* cancel, bool* is_error,
                                      bool* truncated) const {
  *is_error = false;
  *truncated = false;
  auto error = [&](const std::string& msg) {
    *is_error = true;
    return "error: " + msg + "\n";
  };
  // Failure domain: one request. Whatever evaluation throws — injected
  // faults, bad_alloc from an oversized cube — becomes this request's error
  // block; the session and its in-flight siblings keep going.
  try {
  SPADE_FAILPOINT("serve.request");
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return error("empty request");
  const std::string& cmd = tokens[0];

  if (cmd == "apply" || cmd == "compact") {
    if (mutable_spade_ == nullptr || options_.read_only) {
      return error("server is read-only ('" + cmd + "' needs a mutable server"
                   " started without --read-only)");
    }
    // Writer lock: in-flight read requests finish first, later ones see the
    // post-mutation pipeline. Deterministic, timing-free responses.
    std::unique_lock<std::shared_mutex> write_lock(state_mu_);
    if (cmd == "compact") {
      if (tokens.size() > 1) return error("compact takes no arguments");
      Status st = mutable_spade_->Compact();
      if (!st.ok()) return error(st.message());
      std::ostringstream out;
      out << "ok triples=" << mutable_spade_->report().num_triples
          << " attrs=" << mutable_spade_->store().num_attributes()
          << " cfs=" << mutable_spade_->fact_sets().size() << "\n";
      out << "end\n";
      return out.str();
    }
    std::string add_path;
    std::string retract_path;
    for (size_t i = 1; i < tokens.size(); ++i) {
      const size_t eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        return error("expected key=value, got '" + tokens[i] + "'");
      }
      const std::string key = tokens[i].substr(0, eq);
      const std::string value = tokens[i].substr(eq + 1);
      if (key == "add") {
        add_path = value;
      } else if (key == "retract") {
        retract_path = value;
      } else {
        return error("unknown key '" + key +
                     "' (apply [add=FILE] [retract=FILE])");
      }
    }
    if (add_path.empty() && retract_path.empty()) {
      return error(
          "apply needs add=FILE and/or retract=FILE (server-local N-Triples)");
    }
    // Server-local paths, like --save-store and the request scripts: the
    // serve mode is an operator tool, the operator stages the delta files.
    std::ifstream add_in;
    std::ifstream retract_in;
    std::unique_ptr<NTriplesChunkSource> add_src;
    std::unique_ptr<NTriplesChunkSource> retract_src;
    Graph* graph = mutable_spade_->mutable_graph();
    if (!add_path.empty()) {
      add_in.open(add_path);
      if (!add_in) return error("cannot open add file '" + add_path + "'");
      add_src = std::make_unique<NTriplesChunkSource>(add_in, graph);
    }
    if (!retract_path.empty()) {
      retract_in.open(retract_path);
      if (!retract_in) {
        return error("cannot open retract file '" + retract_path + "'");
      }
      retract_src = std::make_unique<NTriplesChunkSource>(retract_in, graph);
    }
    DeltaReport delta;
    Status st =
        mutable_spade_->ApplyDelta(add_src.get(), retract_src.get(), &delta);
    if (!st.ok()) return error(st.message());
    std::ostringstream out;
    out << "ok added=" << delta.num_added << " removed=" << delta.num_removed
        << " noop_adds=" << delta.noop_adds
        << " noop_retracts=" << delta.noop_retracts
        << " attrs_changed=" << delta.num_attrs_changed
        << " cfs=" << delta.num_cfs << " cfs_reused=" << delta.num_cfs_reused
        << "\n";
    out << "end\n";
    return out.str();
  }

  // Read requests share the pipeline under a reader lock; only taken here at
  // request granularity (nested evaluation tasks never touch it).
  std::shared_lock<std::shared_mutex> read_lock(state_mu_);

  if (cmd == "list") {
    const auto& sets = spade_->fact_sets();
    std::ostringstream out;
    out << "ok " << sets.size() << "\n";
    for (const CandidateFactSet& s : sets) {
      out << s.name << " " << s.members.size() << "\n";
    }
    out << "end\n";
    return out.str();
  }

  if (cmd == "stats") {
    const SpadeReport& r = spade_->report();
    std::ostringstream out;
    out << "ok\n";
    out << "triples " << r.num_triples << "\n";
    out << "terms " << spade_->store().graph().dict().size() << "\n";
    out << "attributes " << spade_->store().num_attributes() << "\n";
    out << "direct_properties " << r.num_direct_properties << "\n";
    out << "fact_sets " << spade_->fact_sets().size() << "\n";
    out << "end\n";
    return out.str();
  }

  if (cmd != "explore") {
    return error("unknown command '" + cmd +
                 "' (try explore, list, stats, apply, compact, quit)");
  }
  ExploreRequest req;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string msg = ApplyToken(tokens[i], &req);
    if (!msg.empty()) return error(msg);
  }
  // The server-imposed deadline is a default AND a cap: an explicit
  // timeout= below it (including 0, "already expired") is honored as-is.
  if (options_.request_deadline_ms > 0 &&
      (!req.deadline_ms.has_value() ||
       *req.deadline_ms > options_.request_deadline_ms)) {
    req.deadline_ms = options_.request_deadline_ms;
  }
  req.cancel = cancel;
  Result<ExploreOutcome> result = spade_->Explore(req, scheduler);
  if (!result.ok()) return error(result.status().message());

  // No timings anywhere in the response: the byte stream must be identical
  // at every thread count.
  std::ostringstream out;
  out << "ok " << result->insights.size();
  if (result->truncated) {
    *truncated = true;
    out << " truncated=" << CancelReasonName(result->cancel_reason);
  }
  out << "\n";
  for (size_t i = 0; i < result->insights.size(); ++i) {
    const Insight& insight = result->insights[i];
    out << (i + 1) << " " << FormatDouble(insight.ranked.score, 6) << " "
        << insight.cfs_name << " " << insight.description << "\n";
  }
  out << "end\n";
  return out.str();
  } catch (const std::bad_alloc&) {
    return error("out of memory while evaluating request");
  } catch (const std::exception& e) {
    return error(std::string("internal error: ") + e.what());
  } catch (...) {
    return error("internal error");
  }
}

ServeStats InsightServer::Serve(std::istream& in, std::ostream& out) {
  Timer timer;
  const size_t num_threads = options_.num_threads == 0
                                 ? ThreadPool::HardwareConcurrency()
                                 : options_.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads - 1);
  TaskScheduler scheduler(pool.get());
  TaskGroup group(&scheduler);
  const size_t max_inflight = options_.max_inflight == 0
                                  ? 2 * scheduler.num_threads()
                                  : options_.max_inflight;

  // Responses flush strictly in request order: each request owns a slot,
  // finished blocks park there until every earlier block has been written.
  ServeStats stats;
  std::mutex mu;
  std::vector<std::unique_ptr<std::string>> slots;
  size_t flushed = 0;
  auto flush_ready = [&out, &slots, &flushed] {  // callers hold mu
    while (flushed < slots.size() && slots[flushed] != nullptr) {
      out << *slots[flushed];
      slots[flushed].reset();
      ++flushed;
    }
    out.flush();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mu);
      slots.emplace_back(nullptr);
      id = slots.size();  // ids count from 1
    }
    // Oversized lines are answered without being parsed (or echoed): the
    // guard bounds per-request memory against malformed or hostile input.
    if (options_.max_line_bytes > 0 && trimmed.size() > options_.max_line_bytes) {
      std::lock_guard<std::mutex> lock(mu);
      slots[id - 1] = std::make_unique<std::string>(FormatResponseBlock(
          id, /*request=*/"",
          OversizedLineBody(trimmed.size(), options_.max_line_bytes),
          /*echo=*/false));
      ++stats.num_requests;
      ++stats.num_errors;
      flush_ready();
      continue;
    }
    const std::string request(trimmed);
    group.Run([this, id, request, &scheduler, &mu, &slots, &stats,
               &flush_ready] {
      bool is_error = false;
      bool truncated = false;
      std::string body = HandleLine(request, &scheduler, /*cancel=*/nullptr,
                                    &is_error, &truncated);
      std::string block =
          FormatResponseBlock(id, request, body, options_.echo);
      std::lock_guard<std::mutex> lock(mu);
      slots[id - 1] = std::make_unique<std::string>(std::move(block));
      ++stats.num_requests;
      if (is_error) ++stats.num_errors;
      if (truncated) ++stats.num_truncated;
      flush_ready();
    });
    // Backpressure: don't read unboundedly ahead of evaluation.
    group.WaitPendingBelow(max_inflight);
  }
  group.Wait();
  {
    std::lock_guard<std::mutex> lock(mu);
    flush_ready();
  }
  stats.wall_ms = timer.ElapsedMillis();
  return stats;
}

}  // namespace persist
}  // namespace spade
