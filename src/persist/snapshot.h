#ifndef SPADE_PERSIST_SNAPSHOT_H_
#define SPADE_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cfs.h"
#include "src/derive/derivations.h"
#include "src/stats/attr_stats.h"
#include "src/store/attribute_store.h"
#include "src/summary/summary.h"
#include "src/util/span.h"
#include "src/util/status.h"

namespace spade {
namespace persist {

/// \brief Segmented snapshot of a fully built offline state: dictionary,
/// triple permutations, attribute tables, structural summary, offline
/// statistics and (optionally) the selected candidate fact sets.
///
/// Layout: a fixed 64-byte header, then the segment payloads (each padded to
/// a 64-byte file offset), then a table of contents (one 32-byte entry per
/// segment). All integers are native-endian; the header records an
/// endianness probe so a foreign-endian file is rejected instead of
/// misread. Every segment carries an FNV-1a checksum, verified on open (can
/// be disabled for trusted files).
///
///     +--------------------+ 0
///     | SnapshotHeader     |   magic, version, endian, counts, toc_offset
///     +--------------------+ 64
///     | segment 0 payload  |   e.g. dictionary records
///     | (pad to 64)        |
///     | segment 1 payload  |   e.g. string arena
///     | ...                |
///     +--------------------+ toc_offset (64-aligned)
///     | SegmentEntry[n]    |   {kind, aux, offset, length, checksum}
///     +--------------------+ EOF
///
/// Because payloads start at 64-byte-aligned offsets and the mmap base is
/// page-aligned, a segment can be reinterpreted in place as an array of its
/// element type — loading is attaching spans, not parsing.

/// Discriminates segment payloads. Values are persisted; never renumber.
enum SegmentKind : uint32_t {
  kDictRecords = 1,          ///< Dictionary::ArenaRecord[] (slot 0 invalid)
  kDictArena = 2,            ///< char[]: lexical + language bytes
  kTriplesSpo = 3,           ///< Triple[] sorted (s, p, o)
  kTriplesPos = 4,           ///< Triple[] sorted (p, o, s)
  kTriplesOsp = 5,           ///< Triple[] sorted (o, s, p)
  kSummaryClassOffsets = 6,  ///< uint32_t[num_classes + 1]
  kSummaryMembers = 7,       ///< TermId[]: members CSR'd by class
  kSummaryPropOffsets = 8,   ///< uint32_t[num_classes + 1]
  kSummaryProps = 9,         ///< TermId[]: class properties CSR'd by class
  kSummaryNodeClasses = 10,  ///< StructuralSummary::NodeClass[], node-sorted
  kAttrStats = 11,           ///< PersistedAttrStats[num_attributes]
  kAttrMeta = 12,            ///< blob: per-attribute name/origin/property
  kAttrSubjects = 13,        ///< TermId[]; aux = AttrId
  kAttrOffsets = 14,         ///< uint32_t[]; aux = AttrId
  kAttrObjects = 15,         ///< TermId[]; aux = AttrId
  kPipelineMeta = 16,        ///< blob: derivation counts + CfsOptions
  kCfsMeta = 17,             ///< blob: candidate fact sets (optional)
};

/// Fixed-size file header.
struct SnapshotHeader {
  char magic[8];          ///< "SPADESNP"
  uint32_t version;       ///< kSnapshotVersion
  uint32_t endian;        ///< kEndianProbe as written by the producer
  uint64_t toc_offset;    ///< file offset of the SegmentEntry array
  uint32_t num_segments;
  uint32_t rdf_type;      ///< dictionary id of rdf:type
  uint64_t num_terms;     ///< interned terms (excluding the invalid slot)
  uint64_t num_triples;
  uint64_t toc_checksum;  ///< HashBytes over the SegmentEntry array
  uint8_t reserved[8];
};
static_assert(sizeof(SnapshotHeader) == 64, "persisted layout");

/// One table-of-contents entry.
struct SegmentEntry {
  uint32_t kind = 0;      ///< SegmentKind
  uint32_t aux = 0;       ///< kind-specific (AttrId for attribute columns)
  uint64_t offset = 0;    ///< 64-byte-aligned file offset
  uint64_t length = 0;    ///< payload bytes (excluding padding)
  uint64_t checksum = 0;  ///< HashBytes over the payload
};
static_assert(sizeof(SegmentEntry) == 32, "persisted layout");

/// Fixed-size persisted form of AttrStats (size_t is not portable).
struct PersistedAttrStats {
  uint64_t kind = 0;  ///< ValueKind
  uint64_t num_subjects = 0;
  uint64_t num_values = 0;
  uint64_t num_distinct_values = 0;
  uint64_t num_multi_subjects = 0;
  double min_value = 0;
  double max_value = 0;
  double avg_text_length = 0;
};
static_assert(sizeof(PersistedAttrStats) == 64, "persisted layout");

inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kEndianProbe = 0x01020304;
inline constexpr char kSnapshotMagic[8] = {'S', 'P', 'A', 'D',
                                           'E', 'S', 'N', 'P'};

/// Word-wise FNV-1a with an avalanche finalizer; the segment checksum.
uint64_t HashBytes(const void* data, size_t len);

/// Pipeline facts that cannot be recomputed cheaply from the segments alone
/// and must round-trip through the snapshot.
struct SaveMeta {
  uint64_t num_direct_properties = 0;
  DerivationReport derivations;
  /// The CfsOptions the saved fact sets (if any) were selected under; a
  /// loader only reuses persisted fact sets when its own options match.
  CfsOptions cfs_options;
};

/// What a snapshot restores beyond the data segments.
struct LoadedMeta {
  uint64_t num_terms = 0;
  uint64_t num_triples = 0;
  uint64_t num_direct_properties = 0;
  DerivationReport derivations;
  CfsOptions cfs_options;
  bool has_fact_sets = false;
};

/// True if two CfsOptions select identical candidate fact sets.
bool SameCfsOptions(const CfsOptions& a, const CfsOptions& b);

/// Write the complete offline state of `store` (plus `summary`, offline
/// `stats`, and optionally the selected `fact_sets`) to `path`. The store
/// must be fully built (all tables sealed); works on owned and borrowed
/// (previously loaded) states alike, producing an identical file.
Status SaveSnapshot(const AttributeStore& store,
                    const StructuralSummary& summary,
                    const std::vector<AttrStats>& stats,
                    const std::vector<CandidateFactSet>* fact_sets,
                    const SaveMeta& meta, const std::string& path);

/// \brief Memory-maps a snapshot and attaches the in-memory structures to it
/// with zero copies: the dictionary borrows the record array + string arena,
/// the graph borrows the three triple permutations, each attribute table
/// borrows its three CSR columns, the summary borrows its CSR arrays. Load
/// cost is proportional to the number of segments, not the number of
/// triples (plus one sequential checksum sweep unless disabled).
///
/// The reader owns the mapping: it must outlive every structure attached by
/// Load(). On platforms without mmap the file is read into a private buffer
/// (same interface, one copy).
class SnapshotReader {
 public:
  struct Options {
    /// Verify every segment checksum on open. One sequential sweep of the
    /// file; disable only for trusted snapshots on a hot path.
    bool verify_checksums = true;
  };

  SnapshotReader() = default;
  ~SnapshotReader();
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// Map `path` and validate header, TOC and (optionally) all checksums.
  Status Open(const std::string& path, const Options& options);
  Status Open(const std::string& path) { return Open(path, Options()); }

  /// Attach everything to the mapping: the graph's dictionary + triples,
  /// a fresh AttributeStore over `graph` with borrowed tables, the summary,
  /// the offline statistics, and — when the snapshot carries them and
  /// `fact_sets` is non-null — the candidate fact sets. `graph` must be
  /// empty/fresh; any prior contents are discarded.
  Status Load(Graph* graph, std::unique_ptr<AttributeStore>* store,
              StructuralSummary* summary, std::vector<AttrStats>* stats,
              std::vector<CandidateFactSet>* fact_sets, LoadedMeta* meta);

  bool is_open() const { return data_ != nullptr; }
  uint64_t file_size() const { return size_; }
  const SnapshotHeader& header() const { return header_; }
  const std::vector<SegmentEntry>& toc() const { return toc_; }

  /// The TOC entry of (kind, aux), or null if absent.
  const SegmentEntry* Find(uint32_t kind, uint32_t aux = 0) const;

  /// Reinterpret a segment payload as an array of T (offsets are 64-byte
  /// aligned, so any reasonable T is correctly aligned).
  template <typename T>
  Span<T> GetSpan(const SegmentEntry& e) const {
    return Span<T>(reinterpret_cast<const T*>(data_ + e.offset),
                   static_cast<size_t>(e.length / sizeof(T)));
  }

 private:
  Status MapFile(const std::string& path);
  void Unmap();

  const char* data_ = nullptr;
  uint64_t size_ = 0;
  bool mapped_ = false;             ///< true: munmap; false: fallback buffer
  std::vector<char> fallback_;      ///< no-mmap platforms only
  SnapshotHeader header_{};
  std::vector<SegmentEntry> toc_;
  std::unordered_map<uint64_t, size_t> toc_index_;  ///< (kind<<32|aux) -> toc_
};

}  // namespace persist
}  // namespace spade

#endif  // SPADE_PERSIST_SNAPSHOT_H_
