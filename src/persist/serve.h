#ifndef SPADE_PERSIST_SERVE_H_
#define SPADE_PERSIST_SERVE_H_

#include <cstdint>
#include <iosfwd>
#include <shared_mutex>
#include <string>

#include "src/core/spade.h"
#include "src/exec/thread_pool.h"
#include "src/util/cancel.h"
#include "src/util/status.h"

namespace spade {
namespace persist {

/// Serve-loop knobs, shared by the pipe front end (Serve below) and the TCP
/// front end (net::TcpServer), which answer the same request grammar through
/// the same HandleLine core.
struct ServeOptions {
  /// Worker threads shared by all in-flight requests: 0 = hardware
  /// concurrency, 1 = serial.
  size_t num_threads = 1;
  /// Requests evaluated concurrently before the reader blocks; 0 = twice the
  /// resolved thread count.
  size_t max_inflight = 0;
  /// Echo each request line into the output as a comment (request logs).
  bool echo = false;
  /// Longest request line accepted; longer lines get an `error:` response
  /// without being parsed (a malformed or hostile client cannot make the
  /// server buffer unboundedly per request). 0 = unlimited.
  size_t max_line_bytes = 64 * 1024;
  /// Server-imposed per-request deadline in ms: when > 0, an explore request
  /// without an explicit timeout= gets this deadline, and a request asking
  /// for more is clamped down to it (one runaway request cannot hold a
  /// worker forever). 0 = requests run untimed unless they ask otherwise.
  double request_deadline_ms = 0;
  /// Refuse `apply` / `compact` even when the server was constructed with a
  /// mutable pipeline (--read-only). Servers built over a const pipeline
  /// are implicitly read-only regardless.
  bool read_only = false;
};

/// What a serve session processed.
struct ServeStats {
  uint64_t num_requests = 0;
  uint64_t num_errors = 0;
  uint64_t num_truncated = 0;  ///< deadline/budget-truncated explore replies
  double wall_ms = 0;
};

/// \brief The long-lived explore loop over a prepared pipeline: build (or
/// load) once, answer many exploration requests.
///
/// Protocol: one request per input line, one response block per request,
/// blocks emitted in request order. Every response line is prefixed with
/// `#<id> ` (ids count from 1). Lines that are empty or start with '#' are
/// skipped; "quit" / "exit" ends the session.
///
///   explore [cfs=NAME[,NAME...]] [top=K] [interestingness=variance|skewness|
///           kurtosis] [algorithm=mvdcube|pgcube|pgcube-distinct|arraycube]
///           [earlystop=on|off] [max-dims=N] [min-support=R]
///       -> `ok <n>` then one line per insight:
///          `<rank> <score> <cfs_name> <description>` then `end`
///   list    -> `ok <n>` then `<name> <size>` per fact set, then `end`
///   stats   -> `ok` then dataset counters, then `end`
///   apply [add=FILE] [retract=FILE]
///       -> mutate the graph from server-local N-Triples files (mutable
///          servers only): `ok added=... removed=... noop_adds=...
///          noop_retracts=... attrs_changed=... cfs=... cfs_reused=...`
///          then `end`. Runs exclusively: in-flight explores finish first,
///          later ones see the post-delta state.
///   compact -> reseal the store (Spade::Compact); `ok triples=... attrs=...
///          cfs=...` then `end`. Mutable servers only.
///
/// Requests are evaluated concurrently on one scheduler (Spade::Explore is
/// const and request-local), but responses are buffered and flushed strictly
/// in request order, and contain no timings — so the byte stream is
/// identical at every thread count.
class InsightServer {
 public:
  /// `spade` must have completed RunOffline() and PrepareFactSets() and must
  /// outlive the server. A server built this way is read-only: `apply` and
  /// `compact` answer with an error.
  InsightServer(const Spade* spade, ServeOptions options);

  /// Mutable pipeline: `apply` / `compact` requests are accepted (unless
  /// ServeOptions::read_only). Mutations run under a writer lock excluding
  /// every read request, so concurrent explores always see a consistent
  /// pipeline — never a half-applied delta.
  InsightServer(Spade* spade, ServeOptions options);

  /// Read requests from `in` until EOF or "quit", writing response blocks to
  /// `out`. Returns the session stats (a request that produces an `error:`
  /// response still counts as processed).
  ServeStats Serve(std::istream& in, std::ostream& out);

  /// The shared request core: evaluate one request line into a response
  /// block (no trailing newline handling beyond line granularity; no `#<id>`
  /// prefixes yet). Both front ends — the pipe loop above and the TCP server
  /// in src/net — call exactly this, so for the same request sequence the
  /// two modes produce identical response bytes by construction. Never
  /// throws: evaluation failures — injected faults and allocation failure
  /// included — come back as an `error:` block so one bad request cannot
  /// take the session down. `cancel` (nullable, borrowed) joins any
  /// per-request timeout=: the TCP front end passes its drain token so a
  /// shutting-down server can cut in-flight requests over to truncated
  /// replies once the drain deadline passes.
  std::string HandleLine(const std::string& line, TaskScheduler* scheduler,
                         CancelToken* cancel, bool* is_error,
                         bool* truncated) const;

  const ServeOptions& options() const { return options_; }

 private:
  const Spade* spade_;
  /// Non-null iff constructed with a mutable pipeline.
  Spade* mutable_spade_ = nullptr;
  ServeOptions options_;
  /// Readers (explore/list/stats) vs writers (apply/compact). Only taken at
  /// HandleLine granularity — nested evaluation tasks never touch it, so a
  /// blocked writer cannot deadlock an explore's fan-out (the exploring
  /// thread participates in its own ParallelFor).
  mutable std::shared_mutex state_mu_;
};

/// Render one finished response: every line of `body` prefixed with
/// "#<id> ", preceded (when `echo`) by the echoed request line in the same
/// framing. The single block-formatting path for both front ends.
std::string FormatResponseBlock(uint64_t id, const std::string& request,
                                const std::string& body, bool echo);

/// The `error:` body answering a request line that exceeded
/// ServeOptions::max_line_bytes (answered without being parsed or echoed).
std::string OversizedLineBody(size_t line_bytes, size_t limit);

}  // namespace persist
}  // namespace spade

#endif  // SPADE_PERSIST_SERVE_H_
