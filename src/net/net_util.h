#ifndef SPADE_NET_NET_UTIL_H_
#define SPADE_NET_NET_UTIL_H_

/// \file net_util.h
/// \brief Small POSIX socket helpers shared by the TCP front end
/// (net::TcpServer), the retrying client (net::LineClient) and the tools.
///
/// Everything here returns Status instead of throwing and is a thin,
/// EINTR-safe wrapper over the raw syscalls; on non-POSIX platforms the
/// functions compile to graceful "unsupported" errors so the library still
/// links (the same discipline snapshot.cc uses for mmap).

#include <cstdint>
#include <string>

#include "src/util/status.h"

#if defined(__unix__) || defined(__APPLE__)
#define SPADE_NET_POSIX 1
#endif

namespace spade {
namespace net {

/// True when this build can open sockets at all (POSIX platforms).
bool Supported();

/// A parsed "HOST:PORT" endpoint. Bare "PORT" means loopback.
struct HostPort {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  std::string ToString() const;
};

/// Parses "HOST:PORT" or "PORT" (loopback). Port 0 is allowed (the listener
/// binds an ephemeral port and reports it).
Status ParseHostPort(const std::string& spec, HostPort* out);

/// Opens a non-blocking, close-on-exec listening socket bound to `addr`
/// (SO_REUSEADDR set, numeric host only — the server never does DNS).
/// On success returns the fd and rewrites addr->port with the actually
/// bound port when 0 was requested.
Result<int> ListenTcp(HostPort* addr, int backlog);

/// Blocking connect with a wall-clock timeout; the returned fd is in
/// blocking mode (callers use Poll-guarded I/O for timeouts).
Result<int> ConnectTcp(const HostPort& addr, double timeout_ms);

Status SetNonBlocking(int fd);

/// send() that never raises SIGPIPE (MSG_NOSIGNAL where available; the
/// scoped process-wide suppression below is the portable backstop).
/// Returns bytes written, 0 on EAGAIN, or a Status for a hard error.
Result<size_t> SendSome(int fd, const char* data, size_t size);

/// Blocking send of the whole buffer, with a poll-based per-call timeout.
Status SendAll(int fd, const char* data, size_t size, double timeout_ms);

/// Blocking read of up to `size` bytes with a poll-based timeout. Returns
/// the byte count (0 = orderly peer shutdown). A timeout is a
/// DeadlineExceeded status, a reset peer an Internal one.
Result<size_t> RecvSome(int fd, char* data, size_t size, double timeout_ms);

void CloseFd(int fd);

/// Ignores SIGPIPE process-wide for its lifetime, restoring the previous
/// disposition on destruction. A client closing its socket mid-write must
/// surface as EPIPE on that one connection — never kill the process. Both
/// front-end entry points (TcpServer::Run, spade_client) hold one of these
/// in addition to using MSG_NOSIGNAL, which macOS lacks.
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe();
  ~ScopedIgnoreSigpipe();

  ScopedIgnoreSigpipe(const ScopedIgnoreSigpipe&) = delete;
  ScopedIgnoreSigpipe& operator=(const ScopedIgnoreSigpipe&) = delete;

 private:
  bool installed_ = false;
#if defined(SPADE_NET_POSIX)
  // Opaque storage for the saved struct sigaction (kept out of the header
  // to avoid leaking <csignal> everywhere).
  alignas(16) unsigned char saved_[160];
#endif
};

}  // namespace net
}  // namespace spade

#endif  // SPADE_NET_NET_UTIL_H_
