#ifndef SPADE_NET_LINE_CLIENT_H_
#define SPADE_NET_LINE_CLIENT_H_

/// \file line_client.h
/// \brief A well-behaved client for the TCP insight server: one request at a
/// time, per-call timeouts, and jittered exponential backoff on `busy` and
/// transient transport faults.
///
/// The server sheds load instead of queueing (see tcp_server.h); this client
/// is the other half of that contract. A `busy` reply, a refused/timed-out
/// connect, or a connection dying mid-response all mean "retry later": the
/// client reconnects and resends after waiting
///     min(backoff_max_ms, backoff_base_ms * 2^attempt) * (0.5 + 0.5 * u)
/// (full jitter, so a thundering herd of clients decorrelates). A server-side
/// `error:` reply is NOT retried — the request itself is bad, and resending
/// it cannot help.

#include <cstdint>
#include <string>

#include "src/net/net_util.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace spade {
namespace net {

struct LineClientOptions {
  HostPort server;
  double connect_timeout_ms = 5000;
  /// Per poll-step receive/send timeout while reading one response block.
  double io_timeout_ms = 30000;
  /// Total tries per request (first attempt included). 1 = never retry.
  size_t max_attempts = 8;
  double backoff_base_ms = 25;
  double backoff_max_ms = 2000;
  /// Jitter seed; clients in one process should use distinct seeds.
  uint64_t seed = 1;
};

/// What one Request() call went through (for tests and the CLI summary).
struct LineClientStats {
  uint64_t num_requests = 0;
  uint64_t num_retries = 0;      ///< resends after busy/transport faults
  uint64_t num_busy = 0;         ///< `busy` shed replies observed
  uint64_t num_reconnects = 0;   ///< sockets (re)established
};

class LineClient {
 public:
  explicit LineClient(LineClientOptions options);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Send one request line and collect its full response block, retrying
  /// busy/transport faults with backoff. Returns the response body with the
  /// `#<id> ` prefixes stripped (echo lines are skipped), exactly as pipe
  /// mode would have produced it: `ok ...` through `end`, or a single
  /// `error: ...` line. Exhausted retries surface the last transport status.
  Result<std::string> Request(const std::string& line);

  /// Drop the connection (the next Request reconnects).
  void Close();

  const LineClientStats& stats() const { return stats_; }

 private:
  Status EnsureConnected();
  /// One attempt: send + read one block. `retry` = transient, resend.
  Result<std::string> Attempt(const std::string& line, bool* retry);
  /// Read the next '\n'-terminated line (without the newline) from the
  /// socket, buffering.
  Result<std::string> ReadLine();
  void BackOff(size_t attempt);

  LineClientOptions options_;
  int fd_ = -1;
  std::string inbuf_;
  Rng rng_;
  LineClientStats stats_;
};

}  // namespace net
}  // namespace spade

#endif  // SPADE_NET_LINE_CLIENT_H_
