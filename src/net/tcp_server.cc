#include "src/net/tcp_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/failpoint.h"
#include "src/util/string_util.h"
#include "src/util/timer.h"

#if defined(SPADE_NET_POSIX)
#include <atomic>
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace spade {
namespace net {

#if defined(SPADE_NET_POSIX)

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// One TCP session. All fields are owned by the event-loop thread;
/// evaluation tasks never see a Connection (they address completions by
/// serial, and the loop drops blocks whose connection has died).
struct Connection {
  int fd = -1;
  uint64_t serial = 0;

  // Input side: the current (incomplete) request line. Bytes beyond the
  // buffer cap are counted, not stored, so a newline-free firehose costs
  // O(max_line_bytes) memory; leading blanks are dropped eagerly (Trim
  // would remove them anyway) so a whitespace prefix can't eat the cap.
  std::string curline;
  size_t line_discarded = 0;

  // Output side: finished blocks park by request id until every earlier
  // block has been appended; `outbuf`/`out_pos` is the flush cursor.
  std::map<uint64_t, std::string> parked;
  std::string outbuf;
  size_t out_pos = 0;
  uint64_t next_id = 1;     // request ids count from 1, per connection
  uint64_t next_flush = 1;  // id whose block may be appended next

  size_t inflight = 0;      // requests of this connection being evaluated
  bool stop_reading = false;  // quit/EOF seen or server draining
  bool close_when_flushed = false;
  bool paused = false;        // input paused by output backpressure
  bool dead = false;          // I/O fault: close regardless of pending state
  Clock::time_point last_activity;

  size_t out_pending() const { return outbuf.size() - out_pos; }
};

/// What a worker hands back to the loop when a request finishes.
struct Completion {
  uint64_t serial = 0;
  uint64_t id = 0;
  std::string block;
  bool is_error = false;
  bool truncated = false;
};

// SIGTERM/SIGINT -> graceful drain, via the self-pipe of the active server.
// One server installs handlers at a time (the CLI runs exactly one); the
// handler only touches lock-free atomics and write(2).
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_shutdown{false};

extern "C" void SpadeNetOnSignal(int) {
  g_signal_shutdown.store(true, std::memory_order_relaxed);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

class ScopedSignalHandlers {
 public:
  ScopedSignalHandlers(bool install, int wake_fd) : installed_(install) {
    if (!installed_) return;
    g_signal_shutdown.store(false, std::memory_order_relaxed);
    g_signal_wake_fd.store(wake_fd, std::memory_order_relaxed);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SpadeNetOnSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, &saved_term_);
    ::sigaction(SIGINT, &sa, &saved_int_);
  }
  ~ScopedSignalHandlers() {
    if (!installed_) return;
    ::sigaction(SIGTERM, &saved_term_, nullptr);
    ::sigaction(SIGINT, &saved_int_, nullptr);
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
  }

 private:
  bool installed_;
  struct sigaction saved_term_ {};
  struct sigaction saved_int_ {};
};

}  // namespace

struct TcpServer::Impl {
  // Loop-owned state.
  int listen_fd = -1;
  int wake_r = -1;
  int wake_w = -1;
  std::map<uint64_t, Connection> conns;
  uint64_t next_serial = 1;
  size_t global_inflight = 0;
  size_t max_inflight = 0;  // resolved in Run()
  TcpServeStats stats;
  bool draining = false;
  bool drain_failed = false;  // hard stop fired with work still pending
  Clock::time_point cancel_at;
  Clock::time_point hard_stop;
  TaskScheduler* scheduler = nullptr;  // valid during Run() only
  TaskGroup* group = nullptr;          // valid during Run() only

  // Shared with evaluation workers.
  std::mutex mu;
  std::vector<Completion> completions;
  // One CancelToken per in-flight request, guarded by mu. Tokens must not
  // be shared across requests: CancelCheck latches a deadline expiry into
  // the token it observes, so a single shared token would let one request's
  // timeout=0 truncate every request after it. The drain deadline cancels
  // every registered token instead.
  std::vector<std::shared_ptr<CancelToken>> inflight_tokens;
  std::atomic<bool> shutdown_requested{false};

  ~Impl() {
    CloseFd(listen_fd);
    CloseFd(wake_r);
    CloseFd(wake_w);
  }

  void Wake() {
    const int fd = wake_w;
    if (fd >= 0) {
      const char byte = 'w';
      [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
    }
  }
};

TcpServer::TcpServer(const Spade* spade, TcpServerOptions options)
    : spade_(spade),
      options_(std::move(options)),
      core_(spade, options_.serve),
      impl_(std::make_unique<Impl>()) {}

TcpServer::TcpServer(Spade* spade, TcpServerOptions options)
    : spade_(spade),
      options_(std::move(options)),
      core_(spade, options_.serve),
      impl_(std::make_unique<Impl>()) {}

TcpServer::~TcpServer() = default;

Status TcpServer::Start() {
  if (impl_->listen_fd >= 0) return Status::OK();
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  impl_->wake_r = pipefd[0];
  impl_->wake_w = pipefd[1];
  SPADE_RETURN_NOT_OK(SetNonBlocking(impl_->wake_r));
  SPADE_RETURN_NOT_OK(SetNonBlocking(impl_->wake_w));
  Result<int> fd = ListenTcp(&options_.listen, /*backlog=*/128);
  SPADE_RETURN_NOT_OK(fd.status());
  impl_->listen_fd = *fd;
  return Status::OK();
}

void TcpServer::RequestShutdown() {
  impl_->shutdown_requested.store(true, std::memory_order_relaxed);
  impl_->Wake();
}

namespace {

/// accept(2) one pending connection; the failpoint models a transient
/// accept-path fault (fd exhaustion, aborted handshake) that must cost at
/// most the one incoming connection.
Result<int> AcceptOne(int listen_fd) {
  SPADE_FAILPOINT_STATUS("serve.accept");
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;  // drained
    return Status::Internal(std::string("accept: ") + std::strerror(errno));
  }
}

/// Read once into `buf`; 0 bytes with eof=false means EAGAIN. The failpoint
/// models a connection-scoped read fault (ECONNRESET and friends).
Result<size_t> ReadSome(int fd, char* buf, size_t size, bool* eof) {
  *eof = false;
  SPADE_FAILPOINT_STATUS("serve.read");
  for (;;) {
    const ssize_t n = ::recv(fd, buf, size, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) {
      *eof = true;
      return size_t{0};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
}

/// Write as much pending output as the socket accepts right now. The
/// failpoint models EPIPE/reset surfacing on the write path.
Status WritePending(Connection* c) {
  if (c->out_pending() == 0) return Status::OK();
  SPADE_FAILPOINT_STATUS("serve.write");
  while (c->out_pending() > 0) {
    Result<size_t> n =
        SendSome(c->fd, c->outbuf.data() + c->out_pos, c->out_pending());
    SPADE_RETURN_NOT_OK(n.status());
    if (*n == 0) return Status::OK();  // EAGAIN: poll will re-arm POLLOUT
    c->out_pos += *n;
    c->last_activity = Clock::now();
  }
  c->outbuf.clear();
  c->out_pos = 0;
  return Status::OK();
}

}  // namespace

TcpServeStats TcpServer::Run() {
  Impl& im = *impl_;
  Timer timer;
  if (im.listen_fd < 0) {
    Status st = Start();
    if (!st.ok()) {
      im.stats.serve.wall_ms = timer.ElapsedMillis();
      return im.stats;
    }
  }

  // One scheduler for all in-flight requests, exactly like pipe mode.
  const size_t num_threads = options_.serve.num_threads == 0
                                 ? ThreadPool::HardwareConcurrency()
                                 : options_.serve.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads - 1);
  TaskScheduler scheduler(pool.get());
  TaskGroup group(&scheduler);
  im.scheduler = &scheduler;
  im.group = &group;
  im.max_inflight = options_.max_inflight == 0 ? 2 * scheduler.num_threads()
                                               : options_.max_inflight;

  ScopedIgnoreSigpipe ignore_sigpipe;
  ScopedSignalHandlers handlers(options_.install_signal_handlers, im.wake_w);

  const size_t line_cap = options_.serve.max_line_bytes == 0
                              ? std::string::npos
                              : options_.serve.max_line_bytes + 4096;

  // --- Per-request completion plumbing -----------------------------------
  auto submit = [this, &im](Connection& c, uint64_t id, std::string request) {
    ++im.global_inflight;
    ++c.inflight;
    const uint64_t serial = c.serial;
    auto token = std::make_shared<CancelToken>();
    {
      std::lock_guard<std::mutex> lock(im.mu);
      im.inflight_tokens.push_back(token);
    }
    im.group->Run([this, &im, serial, id, token,
                   request = std::move(request)] {
      bool is_error = false;
      bool truncated = false;
      std::string body = core_.HandleLine(request, im.scheduler, token.get(),
                                          &is_error, &truncated);
      Completion done;
      done.serial = serial;
      done.id = id;
      done.block =
          persist::FormatResponseBlock(id, request, body, options_.serve.echo);
      done.is_error = is_error;
      done.truncated = truncated;
      {
        std::lock_guard<std::mutex> lock(im.mu);
        im.completions.push_back(std::move(done));
        auto& tokens = im.inflight_tokens;
        tokens.erase(std::remove(tokens.begin(), tokens.end(), token),
                     tokens.end());
      }
      im.Wake();
    });
  };

  // Cut every in-flight request over to a truncated reply. Latched per
  // token; safe to call repeatedly. New submissions stop before drain, so
  // no token can slip in after this runs during shutdown.
  auto cancel_inflight = [&im] {
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& token : im.inflight_tokens) {
      token->Cancel(CancelReason::kCancelled);
    }
  };

  // A block that skipped evaluation (oversized, busy): park it directly.
  auto park = [](Connection& c, uint64_t id, std::string block) {
    c.parked.emplace(id, std::move(block));
  };

  auto flush_parked = [](Connection& c) {
    for (auto it = c.parked.begin();
         it != c.parked.end() && it->first == c.next_flush;
         it = c.parked.erase(it), ++c.next_flush) {
      c.outbuf += it->second;
    }
  };

  // --- The line state machine (mirrors the pipe loop byte for byte) ------
  auto complete_line = [this, &im, &submit, &park](Connection& c) {
    std::string line = std::move(c.curline);
    c.curline.clear();
    const size_t discarded = c.line_discarded;
    c.line_discarded = 0;
    if (discarded == 0 && !line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::string_view trimmed = Trim(line);
    if (discarded == 0) {
      if (trimmed.empty() || trimmed[0] == '#') return;
      if (trimmed == "quit" || trimmed == "exit") {
        // Ends this connection only: flush what's pending, then close.
        c.stop_reading = true;
        c.close_when_flushed = true;
        return;
      }
    }
    const uint64_t id = c.next_id++;
    const size_t max_line = options_.serve.max_line_bytes;
    if (discarded > 0 || (max_line > 0 && trimmed.size() > max_line)) {
      park(c, id,
           persist::FormatResponseBlock(
               id, /*request=*/"",
               persist::OversizedLineBody(trimmed.size() + discarded,
                                          max_line),
               /*echo=*/false));
      ++im.stats.serve.num_requests;
      ++im.stats.serve.num_errors;
      return;
    }
    // Admission control: shed, never queue. The client sees `#<id> busy`
    // immediately and owns the retry (LineClient backs off with jitter).
    if (im.global_inflight >= im.max_inflight ||
        c.inflight >= options_.max_inflight_per_connection) {
      park(c, id, persist::FormatResponseBlock(id, std::string(trimmed),
                                               "busy\n", /*echo=*/false));
      ++im.stats.num_requests_shed;
      return;
    }
    submit(c, id, std::string(trimmed));
  };

  auto consume_input = [&](Connection& c, const char* data, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      const char b = data[i];
      if (b == '\n') {
        complete_line(c);
        if (c.stop_reading) return;  // quit: drop the rest of the buffer
        continue;
      }
      if (c.curline.empty() && c.line_discarded == 0 &&
          (b == ' ' || b == '\t')) {
        continue;  // leading blanks never count toward the line cap
      }
      if (c.curline.size() < line_cap) {
        c.curline.push_back(b);
      } else {
        ++c.line_discarded;
      }
    }
  };

  auto drain_completions = [&] {
    std::vector<Completion> done;
    {
      std::lock_guard<std::mutex> lock(im.mu);
      done.swap(im.completions);
    }
    for (Completion& fin : done) {
      --im.global_inflight;
      ++im.stats.serve.num_requests;
      if (fin.is_error) ++im.stats.serve.num_errors;
      if (fin.truncated) ++im.stats.serve.num_truncated;
      auto it = im.conns.find(fin.serial);
      if (it == im.conns.end()) continue;  // connection died mid-evaluation
      Connection& c = it->second;
      --c.inflight;
      c.parked.emplace(fin.id, std::move(fin.block));
      c.last_activity = Clock::now();  // progress: a reply was produced
    }
  };

  auto close_conn = [&im](std::map<uint64_t, Connection>::iterator it) {
    CloseFd(it->second.fd);
    return im.conns.erase(it);
  };

  auto begin_drain = [&] {
    if (im.draining) return;
    im.draining = true;
    const Clock::time_point now = Clock::now();
    im.cancel_at =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      options_.drain_deadline_ms));
    im.hard_stop =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      2 * options_.drain_deadline_ms));
    // Stop accepting and stop reading; in-flight work drains.
    if (im.listen_fd >= 0) {
      CloseFd(im.listen_fd);
      im.listen_fd = -1;
    }
    for (auto& [serial, c] : im.conns) {
      (void)serial;
      c.stop_reading = true;
      c.close_when_flushed = true;
    }
  };

  // --- The event loop ----------------------------------------------------
  std::vector<struct pollfd> pfds;
  std::vector<uint64_t> pfd_serial;  // conn serial per pollfd (0 = not a conn)
  std::vector<char> iobuf(64 * 1024);

  for (;;) {
    if (im.shutdown_requested.load(std::memory_order_relaxed) ||
        (options_.install_signal_handlers &&
         g_signal_shutdown.load(std::memory_order_relaxed))) {
      begin_drain();
    }

    // Exit: draining, nothing evaluating, nothing parked, nothing buffered.
    if (im.draining) {
      const Clock::time_point now = Clock::now();
      if (now >= im.cancel_at) {
        // Past the drain deadline: cut in-flight requests over to truncated
        // replies. Latched; repeated calls are no-ops.
        cancel_inflight();
      }
      bool flushed = true;
      for (auto it = im.conns.begin(); it != im.conns.end();) {
        Connection& c = it->second;
        if (c.inflight == 0 && c.parked.empty() && c.out_pending() == 0) {
          it = close_conn(it);
        } else {
          flushed = false;
          ++it;
        }
      }
      if (im.global_inflight == 0 && flushed && im.conns.empty()) break;
      if (now >= im.hard_stop) {
        im.drain_failed = true;
        break;
      }
    }

    // Assemble the poll set.
    pfds.clear();
    pfd_serial.clear();
    pfds.push_back({im.wake_r, POLLIN, 0});
    pfd_serial.push_back(0);
    if (im.listen_fd >= 0 && !im.draining) {
      pfds.push_back({im.listen_fd, POLLIN, 0});
      pfd_serial.push_back(0);
    }
    for (auto& [serial, c] : im.conns) {
      short events = 0;
      if (!c.stop_reading && !c.paused) events |= POLLIN;
      if (c.out_pending() > 0) events |= POLLOUT;
      pfds.push_back({c.fd, events, 0});
      pfd_serial.push_back(serial);
    }

    // Poll timeout: the nearest timer (idle sweep / drain barriers), else
    // block until a socket or the wake pipe fires.
    int timeout_ms = -1;
    {
      const Clock::time_point now = Clock::now();
      Clock::time_point next = Clock::time_point::max();
      if (options_.idle_timeout_ms > 0) {
        for (const auto& [serial, c] : im.conns) {
          (void)serial;
          const Clock::time_point base =
              c.inflight > 0 ? now : c.last_activity;
          const Clock::time_point dl =
              base + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             options_.idle_timeout_ms));
          next = std::min(next, dl);
        }
      }
      if (im.draining) {
        next = std::min(next, im.cancel_at);
        next = std::min(next, im.hard_stop);
      }
      if (next != Clock::time_point::max()) {
        const double ms = MsSince(now, next);
        timeout_ms = ms <= 0 ? 0 : static_cast<int>(ms) + 1;
        timeout_ms = std::min(timeout_ms, 60000);
      }
    }

    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable loop fault

    // Drain the wake pipe (its only job is to interrupt poll).
    if (rc > 0 && (pfds[0].revents & POLLIN)) {
      while (true) {
        char sink[256];
        const ssize_t n = ::read(im.wake_r, sink, sizeof(sink));
        if (n <= 0) break;
      }
    }

    drain_completions();

    // Accept, shedding beyond max_connections with a bare `busy` line: the
    // one response a client can receive before ever sending a request.
    if (!im.draining && im.listen_fd >= 0) {
      for (;;) {
        Result<int> accepted = AcceptOne(im.listen_fd);
        if (!accepted.ok()) {
          ++im.stats.num_io_errors;  // transient accept fault; keep serving
          break;
        }
        const int fd = *accepted;
        if (fd < 0) break;  // accept queue drained
        if (im.conns.size() >= options_.max_connections) {
          static const char kBusy[] = "busy\n";
          (void)SendSome(fd, kBusy, sizeof(kBusy) - 1);
          CloseFd(fd);
          ++im.stats.num_connections_shed;
          continue;
        }
        if (!SetNonBlocking(fd).ok()) {
          CloseFd(fd);
          ++im.stats.num_io_errors;
          continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Connection c;
        c.fd = fd;
        c.serial = im.next_serial++;
        c.last_activity = Clock::now();
        ++im.stats.num_connections;
        im.conns.emplace(c.serial, std::move(c));
      }
    }

    // Per-connection I/O.
    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfd_serial[i] == 0) continue;
      auto it = im.conns.find(pfd_serial[i]);
      if (it == im.conns.end()) continue;
      Connection& c = it->second;
      if (pfds[i].revents & (POLLERR | POLLNVAL)) {
        c.dead = true;
        ++im.stats.num_io_errors;
        continue;
      }
      if ((pfds[i].revents & (POLLIN | POLLHUP)) && !c.stop_reading &&
          !c.paused) {
        bool eof = false;
        Result<size_t> n = ReadSome(c.fd, iobuf.data(), iobuf.size(), &eof);
        if (!n.ok()) {
          c.dead = true;
          ++im.stats.num_io_errors;
          continue;
        }
        if (*n > 0) {
          c.last_activity = Clock::now();
          consume_input(c, iobuf.data(), *n);
        }
        if (eof) {
          // Orderly half-close: the peer is done sending; answer what was
          // admitted, then close (mirrors pipe-mode EOF).
          c.stop_reading = true;
          c.close_when_flushed = true;
        }
      }
    }

    // Pick up replies finished by inline (serial-scheduler) evaluation.
    drain_completions();

    // Order, write, backpressure, close.
    for (auto it = im.conns.begin(); it != im.conns.end();) {
      Connection& c = it->second;
      if (c.dead) {
        it = close_conn(it);
        continue;
      }
      flush_parked(c);
      if (!WritePending(&c).ok()) {
        // EPIPE/reset (or injected serve.write fault): the failure domain
        // is this one connection.
        ++im.stats.num_io_errors;
        it = close_conn(it);
        continue;
      }
      c.paused = c.out_pending() > options_.max_connection_output_bytes;
      if (c.close_when_flushed && c.inflight == 0 && c.parked.empty() &&
          c.out_pending() == 0) {
        it = close_conn(it);
        continue;
      }
      ++it;
    }

    // Idle sweep (slowloris defense): no progress, nothing evaluating.
    if (options_.idle_timeout_ms > 0) {
      const Clock::time_point now = Clock::now();
      for (auto it = im.conns.begin(); it != im.conns.end();) {
        Connection& c = it->second;
        if (c.inflight == 0 &&
            MsSince(c.last_activity, now) > options_.idle_timeout_ms) {
          ++im.stats.num_idle_closed;
          it = close_conn(it);
        } else {
          ++it;
        }
      }
    }
  }

  // Epilogue: nothing may still reference loop-stack state. Cancel whatever
  // the hard stop abandoned, join the workers, account their completions.
  cancel_inflight();
  group.Wait();
  drain_completions();
  for (auto it = im.conns.begin(); it != im.conns.end();) {
    it = close_conn(it);
  }
  if (im.listen_fd >= 0) {
    CloseFd(im.listen_fd);
    im.listen_fd = -1;
  }
  im.scheduler = nullptr;
  im.group = nullptr;
  im.stats.drained_clean = !im.drain_failed;
  im.stats.serve.wall_ms = timer.ElapsedMillis();
  return im.stats;
}

#else  // !SPADE_NET_POSIX

struct TcpServer::Impl {
  std::atomic<bool> shutdown_requested{false};
};

TcpServer::TcpServer(const Spade* spade, TcpServerOptions options)
    : spade_(spade),
      options_(std::move(options)),
      core_(spade, options_.serve),
      impl_(std::make_unique<Impl>()) {}

TcpServer::TcpServer(Spade* spade, TcpServerOptions options)
    : spade_(spade),
      options_(std::move(options)),
      core_(spade, options_.serve),
      impl_(std::make_unique<Impl>()) {}

TcpServer::~TcpServer() = default;

Status TcpServer::Start() {
  return Status::Internal("TCP serve mode requires a POSIX platform");
}

TcpServeStats TcpServer::Run() { return TcpServeStats{}; }

void TcpServer::RequestShutdown() {}

#endif  // SPADE_NET_POSIX

}  // namespace net
}  // namespace spade
