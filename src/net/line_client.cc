#include "src/net/line_client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace spade {
namespace net {

namespace {

/// Strip the `#<id> ` response prefix. Returns false for unprefixed lines
/// (only the accept-shed `busy` is legal unprefixed).
bool StripPrefix(const std::string& line, std::string* body) {
  if (line.empty() || line[0] != '#') return false;
  size_t i = 1;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') ++i;
  if (i == 1 || i >= line.size() || line[i] != ' ') return false;
  *body = line.substr(i + 1);
  return true;
}

}  // namespace

LineClient::LineClient(LineClientOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

LineClient::~LineClient() { Close(); }

void LineClient::Close() {
  CloseFd(fd_);
  fd_ = -1;
  inbuf_.clear();
}

Status LineClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  Result<int> fd = ConnectTcp(options_.server, options_.connect_timeout_ms);
  SPADE_RETURN_NOT_OK(fd.status());
  fd_ = *fd;
  inbuf_.clear();
  ++stats_.num_reconnects;
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  for (;;) {
    const size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[4096];
    Result<size_t> n = RecvSome(fd_, buf, sizeof(buf), options_.io_timeout_ms);
    SPADE_RETURN_NOT_OK(n.status());
    if (*n == 0) {
      return Status::Internal("connection closed by server mid-response");
    }
    inbuf_.append(buf, *n);
  }
}

Result<std::string> LineClient::Attempt(const std::string& line, bool* retry) {
  *retry = false;
  Status st = EnsureConnected();
  if (!st.ok()) {
    *retry = true;
    return st;
  }
  const std::string wire = line + "\n";
  st = SendAll(fd_, wire.data(), wire.size(), options_.io_timeout_ms);
  if (!st.ok()) {
    *retry = true;
    Close();
    return st;
  }

  std::string body;
  bool saw_first = false;
  for (;;) {
    Result<std::string> raw = ReadLine();
    if (!raw.ok()) {
      // EOF, reset, or timeout mid-block: transient — reconnect and resend.
      *retry = true;
      Close();
      return raw.status();
    }
    std::string stripped;
    if (!StripPrefix(*raw, &stripped)) {
      if (!saw_first && *raw == "busy") {
        // Shed at accept: the server already closed this connection.
        ++stats_.num_busy;
        *retry = true;
        Close();
        return Status::Internal("server busy (connection shed)");
      }
      Close();
      return Status::Internal("malformed response line '" + *raw + "'");
    }
    if (stripped.size() >= 2 && stripped[0] == '>' && stripped[1] == ' ') {
      continue;  // echo of our own request (serve --echo)
    }
    if (!saw_first) {
      saw_first = true;
      if (stripped == "busy") {
        // Shed at admission: the connection is fine, only this request was
        // refused. Back off and resend on the same socket.
        ++stats_.num_busy;
        *retry = true;
        return Status::Internal("server busy (request shed)");
      }
      if (stripped.rfind("error:", 0) == 0) {
        return stripped + "\n";  // terminal single-line block; never retried
      }
    }
    body += stripped;
    body += '\n';
    if (stripped == "end") return body;
  }
}

void LineClient::BackOff(size_t attempt) {
  double ms = options_.backoff_base_ms;
  for (size_t i = 0; i < attempt && ms < options_.backoff_max_ms; ++i) ms *= 2;
  ms = std::min(ms, options_.backoff_max_ms);
  ms *= 0.5 + 0.5 * rng_.NextDouble();  // full jitter
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

Result<std::string> LineClient::Request(const std::string& line) {
  ++stats_.num_requests;
  Status last = Status::Internal("no attempts made");
  const size_t attempts = std::max<size_t>(1, options_.max_attempts);
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.num_retries;
      BackOff(attempt - 1);
    }
    bool retry = false;
    Result<std::string> reply = Attempt(line, &retry);
    if (reply.ok()) return reply;
    if (!retry) return reply.status();
    last = reply.status();
  }
  return Status::Internal("request failed after " + std::to_string(attempts) +
                          " attempts: " + last.message());
}

}  // namespace net
}  // namespace spade
