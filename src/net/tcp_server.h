#ifndef SPADE_NET_TCP_SERVER_H_
#define SPADE_NET_TCP_SERVER_H_

/// \file tcp_server.h
/// \brief The hardened TCP front end for the insight server.
///
/// A poll-driven, single-event-loop, multi-client TCP server speaking the
/// exact line protocol of the pipe-mode serve loop: requests evaluate
/// concurrently on one shared TaskScheduler through the same
/// InsightServer::HandleLine core, and each connection's response blocks
/// flush strictly in that connection's request order — so for the same
/// request sequence a connection reads byte-for-byte what pipe mode would
/// have written.
///
/// Robustness model (the reason this class exists):
///
///  - Admission control, not queues. A connection beyond max_connections is
///    answered with a single `busy` line and closed; a request beyond the
///    global or per-connection inflight cap is answered with a `#<id> busy`
///    block immediately. Nothing is ever queued unboundedly; clients retry
///    with backoff (net::LineClient does).
///  - Failure domain = one connection. Peer resets, EPIPE, partial writes,
///    oversized or torn request lines, and injected `serve.accept` /
///    `serve.read` / `serve.write` faults close (at most) the one affected
///    connection. SIGPIPE is suppressed for the duration of Run().
///  - Slow or dead clients cannot wedge the loop: all sockets are
///    non-blocking, responses buffer per connection with a byte cap that
///    pauses reading from that connection (backpressure) until the peer
///    drains, and connections with no progress for idle_timeout_ms are
///    closed. The evaluation threads never touch a socket.
///  - Graceful drain. SIGTERM/SIGINT (or RequestShutdown()) stops accepting
///    and stops reading; in-flight requests keep evaluating until
///    drain_deadline_ms, then their per-request CancelTokens cut them over
///    to truncated replies; everything flushed is flushed before Run
///    returns. (Tokens are per request, never shared: a deadline expiry
///    latches into the token it is checked against, and one request's
///    timeout must not truncate its neighbours.)

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/net/net_util.h"
#include "src/persist/serve.h"

namespace spade {
namespace net {

struct TcpServerOptions {
  /// Bind address; port 0 = ephemeral (read the bound port via port()).
  HostPort listen;
  /// Request-core knobs shared with pipe mode (threads, echo,
  /// max_line_bytes, request_deadline_ms). ServeOptions::max_inflight is
  /// pipe-mode backpressure; the TCP caps below replace it here.
  persist::ServeOptions serve;
  /// Connections beyond this are answered `busy` and closed at accept.
  size_t max_connections = 64;
  /// Global cap on concurrently evaluating requests; 0 = twice the resolved
  /// worker-thread count. Beyond it, requests shed with `#<id> busy`.
  size_t max_inflight = 0;
  /// Per-connection cap on concurrently evaluating requests (bounds how far
  /// one client can pipeline); beyond it, `#<id> busy`.
  size_t max_inflight_per_connection = 8;
  /// Close a connection with no read/write progress and nothing in flight
  /// for this long (slowloris defense). 0 = never.
  double idle_timeout_ms = 300000;
  /// After a shutdown request: how long in-flight requests may keep
  /// evaluating before the drain token cancels them. The loop exits as soon
  /// as everything in flight has answered and flushed, and no later than
  /// twice this deadline.
  double drain_deadline_ms = 2000;
  /// Pause reading from a connection whose pending response bytes exceed
  /// this (a slow reader pipelining requests cannot balloon memory).
  size_t max_connection_output_bytes = 4 << 20;
  /// Install SIGTERM/SIGINT handlers for the duration of Run() that trigger
  /// the graceful drain (the CLI wants this; in-process tests may prefer
  /// RequestShutdown()).
  bool install_signal_handlers = true;
};

/// What one Run() processed, over all connections.
struct TcpServeStats {
  persist::ServeStats serve;  ///< requests evaluated (incl. error replies)
  uint64_t num_connections = 0;       ///< accepted and served
  uint64_t num_connections_shed = 0;  ///< `busy`-and-closed at accept
  uint64_t num_requests_shed = 0;     ///< `#<id> busy` replies (not evaluated)
  uint64_t num_io_errors = 0;   ///< connections closed on a read/write fault
  uint64_t num_idle_closed = 0;
  /// True when shutdown answered and flushed every in-flight request before
  /// the hard stop (the drain contract held).
  bool drained_clean = false;
};

class TcpServer {
 public:
  /// `spade` must have completed RunOffline() and PrepareFactSets() and must
  /// outlive the server. A server built over a const pipeline is read-only:
  /// `apply` / `compact` requests answer with an error.
  TcpServer(const Spade* spade, TcpServerOptions options);

  /// Mutable pipeline: `apply` / `compact` requests are accepted (unless
  /// ServeOptions::read_only). See persist::InsightServer for the locking
  /// contract.
  TcpServer(Spade* spade, TcpServerOptions options);

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen. Separate from Run() so callers can learn the ephemeral
  /// port (and report "listening on ...") before blocking in the loop.
  Status Start();

  /// The bound port; valid after a successful Start().
  uint16_t port() const { return options_.listen.port; }

  /// The event loop: serves until a shutdown is requested, then drains.
  /// Returns session stats. Calls Start() itself if not yet started.
  TcpServeStats Run();

  /// Thread-safe (and wired to SIGTERM/SIGINT inside Run): begin the
  /// graceful drain. Safe to call before Run(), which then drains
  /// immediately after flushing nothing.
  void RequestShutdown();

 private:
  struct Impl;

  const Spade* spade_;
  TcpServerOptions options_;
  persist::InsightServer core_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace spade

#endif  // SPADE_NET_TCP_SERVER_H_
