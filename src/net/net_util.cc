#include "src/net/net_util.h"

#include <cstring>

#include "src/util/string_util.h"

#if defined(SPADE_NET_POSIX)
#include <arpa/inet.h>
#include <csignal>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace spade {
namespace net {

std::string HostPort::ToString() const {
  return host + ":" + std::to_string(port);
}

Status ParseHostPort(const std::string& spec, HostPort* out) {
  *out = HostPort();
  std::string port_part = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    out->host = spec.substr(0, colon);
    if (out->host.empty()) out->host = "127.0.0.1";
    port_part = spec.substr(colon + 1);
  }
  int64_t port = -1;
  if (!ParseInt64(port_part, &port) || port < 0 || port > 65535) {
    return Status::InvalidArgument("bad HOST:PORT '" + spec +
                                   "' (port must be in [0, 65535])");
  }
  out->port = static_cast<uint16_t>(port);
  return Status::OK();
}

#if defined(SPADE_NET_POSIX)

bool Supported() { return true; }

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status FillAddr(const HostPort& addr, sockaddr_in* sa) {
  std::memset(sa, 0, sizeof(*sa));
  sa->sin_family = AF_INET;
  sa->sin_port = htons(addr.port);
  if (inet_pton(AF_INET, addr.host.c_str(), &sa->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host '" + addr.host +
                                   "' (numeric addresses only)");
  }
  return Status::OK();
}

/// poll() one fd for `events`, EINTR-safe. Returns false on timeout.
Result<bool> PollOne(int fd, short events, double timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int ms = timeout_ms < 0 ? -1
                   : timeout_ms > 1e9
                       ? 1000000000
                       : static_cast<int>(timeout_ms < 1 ? 1 : timeout_ms);
    const int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

Result<int> ListenTcp(HostPort* addr, int backlog) {
  sockaddr_in sa;
  SPADE_RETURN_NOT_OK(FillAddr(*addr, &sa));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  Status st = SetNonBlocking(fd);
  if (st.ok() && ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    st = Errno("bind " + addr->ToString());
  }
  if (st.ok() && ::listen(fd, backlog) < 0) st = Errno("listen");
  if (st.ok() && addr->port == 0) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      st = Errno("getsockname");
    } else {
      addr->port = ntohs(bound.sin_port);
    }
  }
  if (!st.ok()) {
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<int> ConnectTcp(const HostPort& addr, double timeout_ms) {
  sockaddr_in sa;
  SPADE_RETURN_NOT_OK(FillAddr(addr, &sa));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking: callers do their own poll-guarded reads/writes.
  Status st = SetNonBlocking(fd);
  if (st.ok() &&
      ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    if (errno == EINPROGRESS) {
      Result<bool> ready = PollOne(fd, POLLOUT, timeout_ms);
      if (!ready.ok()) {
        st = ready.status();
      } else if (!*ready) {
        st = Status::DeadlineExceeded("connect " + addr.ToString() +
                                      " timed out");
      } else {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          st = Status::Internal("connect " + addr.ToString() + ": " +
                                std::strerror(err));
        }
      }
    } else {
      st = Errno("connect " + addr.ToString());
    }
  }
  if (st.ok()) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (!st.ok()) {
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<size_t> SendSome(int fd, const char* data, size_t size) {
#if defined(MSG_NOSIGNAL)
  constexpr int kFlags = MSG_NOSIGNAL;
#else
  constexpr int kFlags = 0;  // ScopedIgnoreSigpipe is the backstop
#endif
  for (;;) {
    const ssize_t n = ::send(fd, data, size, kFlags);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("send");
  }
}

Status SendAll(int fd, const char* data, size_t size, double timeout_ms) {
  size_t sent = 0;
  while (sent < size) {
    Result<bool> ready = PollOne(fd, POLLOUT, timeout_ms);
    SPADE_RETURN_NOT_OK(ready.status());
    if (!*ready) return Status::DeadlineExceeded("send timed out");
    Result<size_t> n = SendSome(fd, data + sent, size - sent);
    SPADE_RETURN_NOT_OK(n.status());
    sent += *n;
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, char* data, size_t size, double timeout_ms) {
  Result<bool> ready = PollOne(fd, POLLIN, timeout_ms);
  SPADE_RETURN_NOT_OK(ready.status());
  if (!*ready) return Status::DeadlineExceeded("recv timed out");
  for (;;) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

ScopedIgnoreSigpipe::ScopedIgnoreSigpipe() {
  static_assert(sizeof(saved_) >= sizeof(struct sigaction),
                "saved_ too small for struct sigaction");
  struct sigaction ignore;
  std::memset(&ignore, 0, sizeof(ignore));
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  installed_ =
      ::sigaction(SIGPIPE, &ignore,
                  reinterpret_cast<struct sigaction*>(saved_)) == 0;
}

ScopedIgnoreSigpipe::~ScopedIgnoreSigpipe() {
  if (installed_) {
    ::sigaction(SIGPIPE, reinterpret_cast<struct sigaction*>(saved_), nullptr);
  }
}

#else  // !SPADE_NET_POSIX

bool Supported() { return false; }

namespace {
Status Unsupported() {
  return Status::Internal("TCP networking requires a POSIX platform");
}
}  // namespace

Status SetNonBlocking(int) { return Unsupported(); }
void CloseFd(int) {}
Result<int> ListenTcp(HostPort*, int) { return Unsupported(); }
Result<int> ConnectTcp(const HostPort&, double) { return Unsupported(); }
Result<size_t> SendSome(int, const char*, size_t) { return Unsupported(); }
Status SendAll(int, const char*, size_t, double) { return Unsupported(); }
Result<size_t> RecvSome(int, char*, size_t, double) { return Unsupported(); }
ScopedIgnoreSigpipe::ScopedIgnoreSigpipe() {}
ScopedIgnoreSigpipe::~ScopedIgnoreSigpipe() {}

#endif  // SPADE_NET_POSIX

}  // namespace net
}  // namespace spade
