#ifndef SPADE_EXEC_THREAD_POOL_H_
#define SPADE_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/exec/work_deque.h"
#include "src/util/cancel.h"

namespace spade {

/// \brief Fixed-size worker pool over per-worker Chase–Lev lock-free deques.
///
/// Every worker owns one WorkStealingDeque. A task submitted FROM a pool
/// worker (nested ParallelFor helpers, TaskGroup fan-out from inside a
/// task) is pushed lock-free onto that worker's own deque — the
/// overwhelmingly common case once lattice slices, ingest chunks, and fold
/// tasks nest. External threads (the caller driving the pipeline) submit
/// through a small mutex-guarded injection queue. An idle worker pops its
/// own deque LIFO, then takes from the injection queue, then steals FIFO
/// from the other workers' deques — no global lock anywhere on the
/// task-transfer path (the old pool serialized every push, pop, and steal
/// on one mutex).
///
/// Sleep/wake uses the enqueue-then-lock-then-notify protocol: a submitter
/// enqueues, then acquires the sleep mutex (empty critical section) and
/// notifies. A worker only blocks after re-checking, under that mutex, that
/// every queue looks empty — so either the worker's check sees the enqueue
/// (mutex ordering) or the submitter's notify reaches the worker's wait.
///
/// The destructor drains every queued task before joining (a task submitted
/// is a task run, including tasks submitted by running tasks), so
/// fire-and-forget submissions never leak work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Tasks must not throw (use TaskScheduler::ParallelFor
  /// for exception propagation).
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency(), never less than 1.
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop(size_t index);
  /// Own deque -> injection queue -> steal sweep. Null when nothing found.
  WorkStealingDeque::Task* TryAcquire(size_t index);
  /// Accurate for every task enqueued before the call (used under
  /// sleep_mutex_ to decide blocking).
  bool HasQueuedWork();

  std::vector<std::unique_ptr<WorkStealingDeque>> deques_;
  std::mutex inject_mutex_;
  std::deque<WorkStealingDeque::Task*> injection_;  // guarded by inject_mutex_

  /// Tasks enqueued but not yet finished running. Workers may only exit
  /// when stop_ is set AND this is zero — tasks spawned by running tasks
  /// keep the pool alive until the whole chain drains.
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
};

/// \brief Cooperative fork-join scheduling on top of a ThreadPool.
///
/// A null or single-threaded pool degrades to inline serial execution, so
/// callers write one code path. ParallelFor is safe to nest (a task body may
/// itself call ParallelFor on the same scheduler): the calling thread always
/// participates in the loop, so progress never depends on a pool worker
/// being free.
class TaskScheduler {
 public:
  /// `pool` may be null: every operation then runs inline on the caller.
  explicit TaskScheduler(ThreadPool* pool) : pool_(pool) {}

  /// The calling thread always participates in ParallelFor, so a pool of K
  /// workers gives K + 1 compute threads. Spade sizes the pool at
  /// num_threads - 1 for this reason.
  bool parallel() const { return pool_ != nullptr && pool_->num_threads() > 0; }
  /// Total compute threads a ParallelFor can use, caller included.
  size_t num_threads() const { return parallel() ? pool_->num_threads() + 1 : 1; }

  /// Run fn(0) .. fn(n-1), potentially concurrently, and block until all
  /// completed. Indexes are claimed atomically, so the distribution over
  /// threads is dynamic. The first exception thrown by any fn is rethrown
  /// on the calling thread after the loop drains.
  ///
  /// When `cancel` is non-null and cancel->AbortNow() becomes true,
  /// participants stop executing bodies for newly claimed indexes (already
  /// running bodies finish normally) and the loop drains early. The caller
  /// decides what a partially executed loop means; bodies that must not be
  /// skipped mid-range should check the token themselves.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const CancelCheck* cancel = nullptr);

  /// The underlying pool (null when serial). TaskGroup submits through this;
  /// algorithm code should prefer ParallelFor / TaskGroup.
  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_;
};

/// \brief A join handle over independently submitted tasks — the async
/// counterpart of ParallelFor, built for producer/consumer pipelines where
/// tasks are discovered one at a time (the streaming ingest submits one
/// scatter task per parsed chunk while the parser keeps running).
///
/// Run() enqueues a task on the scheduler's pool; on a serial scheduler it
/// executes inline, so pipeline code has exactly one code path. Wait()
/// blocks until every submitted task finished and rethrows the first
/// exception any task threw. WaitPendingBelow() is the bounded-queue
/// backpressure primitive: a producer calls it before submitting to cap the
/// number of in-flight tasks (and therefore buffered chunks).
///
/// Tasks must not themselves Wait() on this group, and the group must
/// outlive its tasks (the destructor waits). One thread drives Run/Wait;
/// the tasks themselves may run on any pool worker.
class TaskGroup {
 public:
  explicit TaskGroup(TaskScheduler* scheduler) : scheduler_(scheduler) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task (inline on a serial scheduler). Exceptions are captured
  /// and rethrown by Wait(), never propagated to the pool.
  void Run(std::function<void()> task);

  /// Block until every task submitted so far has finished; rethrows the
  /// first captured exception.
  void Wait();

  /// Block until fewer than `cap` submitted tasks remain unfinished
  /// (cap >= 1; no-op on a serial scheduler, where nothing is ever pending).
  void WaitPendingBelow(size_t cap);

 private:
  TaskScheduler* scheduler_;
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t pending_ = 0;               // guarded by mutex_
  std::exception_ptr error_;         // guarded by mutex_
};

}  // namespace spade

#endif  // SPADE_EXEC_THREAD_POOL_H_
