#ifndef SPADE_EXEC_CUBE_EVALUATOR_H_
#define SPADE_EXEC_CUBE_EVALUATOR_H_

#include <memory>
#include <set>
#include <vector>

#include "src/core/arm.h"
#include "src/core/earlystop.h"
#include "src/core/mvdcube.h"
#include "src/exec/thread_pool.h"
#include "src/stats/attr_stats.h"

namespace spade {

/// Which Aggregate Evaluation module the online pipeline uses (Section 6
/// compares them; MVDCube is the system default, ArrayCube is the classical
/// relational baseline of Section 4.2).
enum class EvalAlgorithm : uint8_t {
  kMvdCube = 0,
  kPgCubeStar,      ///< PostgreSQL-style cube, count(*)
  kPgCubeDistinct,  ///< PostgreSQL-style cube, count(distinct)
  kArrayCube,       ///< Zhao et al. one-pass baseline (incorrect on
                    ///< multi-valued dims, Lemma 1)
};

const char* EvalAlgorithmName(EvalAlgorithm algo);

/// Evaluation knobs shared by every cube algorithm; Spade builds this from
/// SpadeOptions so the exec layer never depends on the pipeline header.
struct CubeEvalOptions {
  EvalAlgorithm algorithm = EvalAlgorithm::kMvdCube;
  MvdCubeOptions mvd;
  EarlyStopOptions earlystop;
  bool enable_earlystop = false;
  InterestingnessKind interestingness = InterestingnessKind::kVariance;
  size_t top_k = 10;
  uint64_t seed = 42;
  /// Fact-id-range shards evaluating one CFS concurrently (resolved count,
  /// >= 1; callers translate "auto" before building this struct). Only the
  /// MVDCube path shards; with early-stop enabled the factory falls back to
  /// the unsharded evaluator (the stratified reservoirs draw from one
  /// sequential RNG stream). Results are bit-identical at every shard count.
  size_t num_shards = 1;
};

/// Everything a cube algorithm needs to evaluate one CFS: the store, the
/// dense fact index, the enumerated lattices and the offline statistics
/// (early-stop min/max CIs). All pointers are borrowed and must outlive the
/// evaluator.
struct CubeEvalInputs {
  const AttributeStore* db = nullptr;
  uint32_t cfs_id = 0;
  const CfsIndex* cfs = nullptr;
  const std::vector<LatticeSpec>* lattices = nullptr;
  const std::vector<AttrStats>* offline_stats = nullptr;
  /// Cooperative cancellation for this CFS's evaluation; null = never
  /// cancelled. Deadline/external cancel aborts between (and inside)
  /// lattices; a bitmap-budget trip only stops admitting new groups (see
  /// CancelCheck's two-predicate contract).
  const CancelCheck* cancel = nullptr;
};

/// Aggregate-evaluation outcome of one CFS, merged into SpadeReport.
struct EvalStats {
  size_t num_mdas_evaluated = 0;  ///< MDA keys newly evaluated
  size_t num_mdas_reused = 0;     ///< keys already in the ARM (shared nodes)
  size_t num_mdas_pruned = 0;     ///< unique keys skipped by early-stop
  size_t num_groups_emitted = 0;
  double earlystop_ms = 0;  ///< CI planning time, inside evaluation wall-clock
  /// Within-CFS sharding (empty / zero when evaluation was unsharded):
  /// facts owned by each fact-id-range shard, and the time spent merging
  /// per-shard partial translations back together, summed over lattices.
  std::vector<size_t> shard_fact_counts;
  double shard_merge_ms = 0;
  /// Partition-parallel lattice computation (MVDCube path; zero elsewhere):
  /// partition slices actually used (max over lattices — small lattices may
  /// have fewer partitions than workers), wall-clock and summed per-worker
  /// work time of the parallel runs, and the peak count of partial
  /// (node, group) cells held before the canonical merge.
  size_t lattice_workers_used = 0;
  double lattice_wall_ms = 0;
  double lattice_work_ms = 0;
  uint64_t lattice_peak_partial_cells = 0;
  /// Fact-bitmap bytes of the largest single lattice evaluation's emitted
  /// group cells (MVDCube path; zero elsewhere) — the Section 4.3 memory
  /// model measured on live cells rather than bounded by formula. A lower
  /// bound on the true resident peak (see MvdCubeStats::bitmap_bytes_peak).
  uint64_t peak_bitmap_bytes = 0;
  /// The bitmap budget (MvdCubeOptions::max_bitmap_bytes) tripped while
  /// evaluating this CFS: the emitted groups are a canonical-order prefix
  /// and num_groups_skipped counts the refused remainder.
  bool budget_truncated = false;
  size_t num_groups_skipped = 0;
  /// A deadline / external cancel aborted this CFS mid-evaluation. Unlike a
  /// budget trip, the partial output is timing-dependent, so callers must
  /// discard the CFS's results wholesale (Spade's commit rule does).
  bool aborted = false;

  /// Fold one lattice's parallel-run counters into this CFS's stats.
  void MergeLattice(const ParallelLatticeStats& ls) {
    lattice_workers_used = std::max(lattice_workers_used, ls.num_slices);
    lattice_wall_ms += ls.wall_ms;
    lattice_work_ms += ls.work_ms;
    lattice_peak_partial_cells =
        std::max(lattice_peak_partial_cells, ls.peak_partial_cells);
  }
};

/// \brief Uniform operator interface over the cube algorithms (MVDCube,
/// PGCube*, PGCube_d, ArrayCube) — the runtime layer's unit of scheduling.
///
/// Lifecycle: one evaluator instance per CFS. Prepare() builds per-CFS
/// shared state (dimension encodings, MMSTs, translations, the early-stop
/// prune set); independent per-lattice work inside it may be fanned out on
/// `scheduler`. EvaluateLattice() then streams lattice `li`'s results into
/// `arm` and must be called in ascending `li` order on a single thread —
/// the ARM's register/reuse discipline (an MDA shared by two lattices is
/// evaluated by the first and reused by the second) is what makes results
/// deterministic, and it is inherently order-dependent.
///
/// `arm` is a per-CFS scope: AggregateKey embeds the cfs_id, so distinct
/// CFSs never share keys and each CFS's shard can be evaluated on its own
/// thread and merged into the global ARM afterwards (Arm::Absorb).
class CubeEvaluator {
 public:
  virtual ~CubeEvaluator() = default;

  virtual const char* name() const = 0;

  /// Build per-CFS shared state. `arm` provides exact scores of
  /// already-evaluated aggregates of this CFS (empty on the standard
  /// pipeline path); `scheduler` may be null (serial).
  virtual void Prepare(const CubeEvalInputs& in, const Arm& arm,
                       TaskScheduler* scheduler, EvalStats* stats);

  /// Evaluate lattice `li` of `in.lattices` into `arm`. See class comment
  /// for the ordering contract — calls stay in ascending `li` order on one
  /// thread; `scheduler` (may be null) lets the implementation parallelize
  /// *inside* the lattice (MVDCube's partition-parallel computation), which
  /// never changes results, only wall-clock.
  virtual void EvaluateLattice(const CubeEvalInputs& in, size_t li, Arm* arm,
                               TaskScheduler* scheduler, EvalStats* stats) = 0;

  /// Convenience driver: Prepare + every lattice in order.
  EvalStats EvaluateCfs(const CubeEvalInputs& in, Arm* arm,
                        TaskScheduler* scheduler);
};

/// Resolve the lattice-computation worker count: one partition slice per
/// compute thread of the scheduler (1 when serial). The single definition
/// both MVDCube evaluators (plain and sharded) dispatch on. Results are
/// worker-count-independent by construction (ParallelLatticeRun's canonical
/// merge-and-emit), so this is purely a wall-clock knob.
size_t ResolveLatticeWorkers(const TaskScheduler* scheduler);

/// Resolve the within-CFS shard count: 0 = auto (one per worker thread);
/// configurations the factory cannot shard — non-MVDCube algorithms and
/// early-stop (sequential reservoir RNG stream) — resolve to 1. The single
/// definition of sharding eligibility, shared by the factory's dispatch and
/// the pipeline's reporting so the two can never drift.
size_t ResolveShardCount(EvalAlgorithm algorithm, bool enable_earlystop,
                         size_t requested_shards, size_t num_threads);

/// The factory replacing Spade::EvaluateCfs's algorithm switch.
std::unique_ptr<CubeEvaluator> MakeCubeEvaluator(const CubeEvalOptions& options);

}  // namespace spade

#endif  // SPADE_EXEC_CUBE_EVALUATOR_H_
