#include "src/exec/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "src/util/failpoint.h"

namespace spade {

namespace {
// Worker identity: set once per pool thread, read by Submit to route nested
// submissions onto the submitting worker's own deque (owner-side lock-free
// push). Null on every non-pool thread.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  deques_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    deques_.push_back(std::make_unique<WorkStealingDeque>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  // Workers exit only at stop && pending == 0, so every queued task — and
  // every task those tasks spawn — has run by the time the joins return.
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  auto* t = new WorkStealingDeque::Task(std::move(task));
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (tls_pool == this) {
    deques_[tls_worker]->PushBottom(t);
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    injection_.push_back(t);
  }
  // Empty critical section: orders this enqueue against any worker that is
  // deciding to sleep (it re-checks queues under the same mutex), so the
  // notify below can never be the one that got away.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  cv_.notify_one();
}

size_t ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

WorkStealingDeque::Task* ThreadPool::TryAcquire(size_t index) {
  // Own work first (LIFO keeps the task's working set hot) ...
  if (WorkStealingDeque::Task* t = deques_[index]->PopBottom()) return t;
  // ... then externally injected work ...
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (!injection_.empty()) {
      WorkStealingDeque::Task* t = injection_.front();
      injection_.pop_front();
      return t;
    }
  }
  // ... then steal, sweeping the other workers from our right neighbor
  // (FIFO on the victim: thieves take the oldest, coarsest task).
  for (size_t k = 1; k < deques_.size(); ++k) {
    size_t victim = (index + k) % deques_.size();
    if (WorkStealingDeque::Task* t = deques_[victim]->Steal()) return t;
  }
  return nullptr;
}

bool ThreadPool::HasQueuedWork() {
  for (const auto& d : deques_) {
    if (!d->EmptyHint()) return true;
  }
  std::lock_guard<std::mutex> lock(inject_mutex_);
  return !injection_.empty();
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker = index;
  for (;;) {
    if (WorkStealingDeque::Task* t = TryAcquire(index)) {
      (*t)();
      delete t;
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          stop_.load(std::memory_order_acquire)) {
        // Last task of the drain: wake siblings blocked on the exit check.
        { std::lock_guard<std::mutex> lock(sleep_mutex_); }
        cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // Re-check under the mutex: any enqueue ordered before our lock is
    // visible here; any enqueue after it will send a notify into our wait.
    // A steal we lost by a race surfaces as pending_ > 0 with running
    // owners — their completion or their spawns will notify.
    if (HasQueuedWork()) continue;
    cv_.wait(lock);
  }
}

void TaskScheduler::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                                const CancelCheck* cancel) {
  if (n == 0) return;
  if (!parallel() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->AbortNow()) return;
      SPADE_FAILPOINT("exec.parallel_for");
      fn(i);
    }
    return;
  }

  struct State {
    std::function<void(size_t)> fn;
    size_t n = 0;
    const CancelCheck* cancel = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // guarded by mutex
  };
  auto state = std::make_shared<State>();
  state->fn = fn;
  state->n = n;
  state->cancel = cancel;

  // Each participant claims indexes until none remain. Late-running helpers
  // (queued behind other work) find the loop drained and return immediately;
  // the shared_ptr keeps the state alive for them past our return. A
  // cancelled loop still claims and counts every index — it just stops
  // executing bodies — so the join condition below stays a simple counter.
  auto drain = [state] {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      if (state->cancel == nullptr || !state->cancel->AbortNow()) {
        try {
          SPADE_FAILPOINT("exec.parallel_for");
          state->fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mutex);
          if (!state->error) state->error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(n - 1, pool_->num_threads());
  for (size_t h = 0; h < helpers; ++h) pool_->Submit(drain);
  drain();  // the caller participates: progress even when the pool is busy

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock,
                 [&] { return state->done.load(std::memory_order_acquire) >= n; });
  // Move the error out under the mutex so the exception object is released on
  // this thread, not by whichever late helper drops the last State reference.
  std::exception_ptr error = std::move(state->error);
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

TaskGroup::~TaskGroup() {
  // A destroyed group must not leave tasks referencing it; swallow errors —
  // callers that care about exceptions call Wait() themselves.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return pending_ == 0; });
}

void TaskGroup::Run(std::function<void()> task) {
  if (!scheduler_->parallel()) {
    // Serial degradation: execute inline, but keep the parallel error
    // contract (captured, rethrown at Wait) so callers see one behavior.
    try {
      SPADE_FAILPOINT("exec.taskgroup.task");
      task();
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  scheduler_->pool()->Submit([this, task = std::move(task)] {
    try {
      SPADE_FAILPOINT("exec.taskgroup.task");
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    --pending_;
    cv_.notify_all();  // Wait and WaitPendingBelow both watch every decrement
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TaskGroup::WaitPendingBelow(size_t cap) {
  if (cap == 0) cap = 1;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return pending_ < cap; });
}

}  // namespace spade
