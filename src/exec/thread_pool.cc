#include "src/exec/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace spade {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.resize(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  cv_.notify_one();
}

size_t ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop(size_t index) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::function<void()> task;
    if (!queues_[index].empty()) {
      task = std::move(queues_[index].front());
      queues_[index].pop_front();
    } else {
      // Steal from the back of the fullest deque.
      size_t victim = queues_.size();
      size_t best = 0;
      for (size_t q = 0; q < queues_.size(); ++q) {
        if (queues_[q].size() > best) {
          best = queues_[q].size();
          victim = q;
        }
      }
      if (victim < queues_.size()) {
        task = std::move(queues_[victim].back());
        queues_[victim].pop_back();
      }
    }
    if (task) {
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (stop_) return;  // all queues drained
    cv_.wait(lock);
  }
}

void TaskScheduler::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (!parallel() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct State {
    std::function<void(size_t)> fn;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // guarded by mutex
  };
  auto state = std::make_shared<State>();
  state->fn = fn;
  state->n = n;

  // Each participant claims indexes until none remain. Late-running helpers
  // (queued behind other work) find the loop drained and return immediately;
  // the shared_ptr keeps the state alive for them past our return.
  auto drain = [state] {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      try {
        state->fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(n - 1, pool_->num_threads());
  for (size_t h = 0; h < helpers; ++h) pool_->Submit(drain);
  drain();  // the caller participates: progress even when the pool is busy

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock,
                 [&] { return state->done.load(std::memory_order_acquire) >= n; });
  if (state->error) std::rethrow_exception(state->error);
}

TaskGroup::~TaskGroup() {
  // A destroyed group must not leave tasks referencing it; swallow errors —
  // callers that care about exceptions call Wait() themselves.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return pending_ == 0; });
}

void TaskGroup::Run(std::function<void()> task) {
  if (!scheduler_->parallel()) {
    // Serial degradation: execute inline, but keep the parallel error
    // contract (captured, rethrown at Wait) so callers see one behavior.
    try {
      task();
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  scheduler_->pool()->Submit([this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    --pending_;
    cv_.notify_all();  // Wait and WaitPendingBelow both watch every decrement
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TaskGroup::WaitPendingBelow(size_t cap) {
  if (cap == 0) cap = 1;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return pending_ < cap; });
}

}  // namespace spade
