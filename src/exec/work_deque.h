#ifndef SPADE_EXEC_WORK_DEQUE_H_
#define SPADE_EXEC_WORK_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace spade {

/// \brief Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA'05,
/// with the C11 memory-order mapping of Lê et al., PPoPP'13).
///
/// One OWNER thread pushes and pops at the bottom (LIFO — freshly spawned
/// tasks stay hot); any number of THIEF threads steal from the top (FIFO —
/// thieves take the oldest, largest-granularity work). No mutex anywhere:
/// the only synchronization is a compare-and-swap on `top_`, taken once per
/// steal and once per pop-of-last-element race.
///
/// Deviations from the cited mapping, both deliberate:
///   - Where the original uses `atomic_thread_fence`, this code strengthens
///     the adjacent atomic operations to seq_cst instead. ThreadSanitizer
///     does not model C++ fences (every fence-based algorithm reports false
///     races), and the pool's CI runs under TSan; the fence-free variant is
///     TSan-clean by construction. On x86 the cost difference is one
///     locked instruction either way.
///   - Buffer slots are `std::atomic<Task*>` accessed with release stores /
///     acquire loads. The classic algorithm tolerates a benign data race on
///     slots (a stale read is discarded when the top CAS fails); making the
///     slots atomic removes the race itself — again for TSan — and the
///     slot-level release/acquire pair is also what publishes the pointed-to
///     std::function's bytes to the stealing thread.
///
/// Growth: the circular buffer doubles when full. Retired buffers are kept
/// alive until the deque is destroyed — a thief may still be reading
/// through an old buffer pointer — which bounds total waste at 2x the peak
/// buffer size (geometric series) and removes the need for any reclamation
/// scheme. Tasks are owned by the caller as heap pointers; the deque never
/// deletes a task.
class WorkStealingDeque {
 public:
  using Task = std::function<void()>;

  explicit WorkStealingDeque(size_t initial_capacity = 64) {
    buffers_.push_back(std::make_unique<Buffer>(initial_capacity));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Push one task at the bottom.
  void PushBottom(Task* task) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(buf->capacity)) {
      buf = Grow(buf, t, b);
    }
    buf->slots[b & buf->mask].store(task, std::memory_order_release);
    // seq_cst (not merely release): the store must be ordered against the
    // owner's subsequent top_ load in PopBottom and against thieves'
    // bottom_ loads — this is the first fence site of the original.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only. Pop the most recently pushed task, or nullptr when empty
  /// (or when a thief won the race for the last task).
  Task* PopBottom() {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // Reserve the bottom slot before looking at top_ — the second fence
    // site: thieves must observe the decremented bottom before the owner
    // trusts its top_ read.
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task = buf->slots[b & buf->mask].load(std::memory_order_relaxed);
    if (t == b) {
      // Last task: race thieves through the same CAS they use.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread. Steal the oldest task, or nullptr when empty or when the
  /// race was lost (callers treat both as "try elsewhere").
  Task* Steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    Task* task = buf->slots[t & buf->mask].load(std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // owner or another thief beat us; task may be stale
    }
    return task;
  }

  /// Approximate emptiness, for sleep decisions. A false "empty" is only
  /// possible for pushes not yet ordered with the caller; the pool's
  /// enqueue-then-lock-then-notify protocol covers exactly that window.
  bool EmptyHint() const {
    return bottom_.load(std::memory_order_acquire) <=
           top_.load(std::memory_order_acquire);
  }

 private:
  struct Buffer {
    explicit Buffer(size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {}
    const size_t capacity;  // power of two
    const size_t mask;
    std::vector<std::atomic<Task*>> slots;
  };

  /// Owner only: double the buffer, copying the live range [t, b).
  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    buffers_.push_back(std::make_unique<Buffer>(old->capacity * 2));
    Buffer* fresh = buffers_.back().get();
    for (int64_t i = t; i < b; ++i) {
      fresh->slots[i & fresh->mask].store(
          old->slots[i & old->mask].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    // Publishes the copied slots along with the pointer (release pairs with
    // the acquire load in Steal). Thieves still holding `old` read slots
    // the owner no longer writes — old buffers are immutable from here on
    // and stay allocated until the deque dies.
    buffer_.store(fresh, std::memory_order_release);
    return fresh;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  // owner only; all retired + current
};

}  // namespace spade

#endif  // SPADE_EXEC_WORK_DEQUE_H_
