#include "src/exec/cube_evaluator.h"

#include <algorithm>
#include <utility>

#include "src/core/arraycube.h"
#include "src/core/pgcube.h"
#include "src/exec/sharded_evaluator.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace spade {

const char* EvalAlgorithmName(EvalAlgorithm algo) {
  switch (algo) {
    case EvalAlgorithm::kMvdCube:
      return "MVDCube";
    case EvalAlgorithm::kPgCubeStar:
      return "PGCube*";
    case EvalAlgorithm::kPgCubeDistinct:
      return "PGCube_d";
    case EvalAlgorithm::kArrayCube:
      return "ArrayCube";
  }
  return "?";
}

void CubeEvaluator::Prepare(const CubeEvalInputs& /*in*/, const Arm& /*arm*/,
                            TaskScheduler* /*scheduler*/, EvalStats* /*stats*/) {}

EvalStats CubeEvaluator::EvaluateCfs(const CubeEvalInputs& in, Arm* arm,
                                     TaskScheduler* scheduler) {
  EvalStats stats;
  Prepare(in, *arm, scheduler, &stats);
  for (size_t li = 0; li < in.lattices->size(); ++li) {
    if (in.cancel != nullptr && in.cancel->AbortNow()) {
      stats.aborted = true;
      return stats;
    }
    if (stats.budget_truncated) break;  // budget: keep the prefix, stop here
    EvaluateLattice(in, li, arm, scheduler, &stats);
  }
  // A deadline that expired inside the last lattice left a timing-dependent
  // partial emit; make sure the caller sees the abort and discards it.
  if (in.cancel != nullptr && in.cancel->AbortNow()) stats.aborted = true;
  return stats;
}

size_t ResolveLatticeWorkers(const TaskScheduler* scheduler) {
  return scheduler != nullptr ? scheduler->num_threads() : 1;
}

namespace {

/// \brief MVDCube behind the uniform interface.
///
/// Prepare() builds the per-lattice encodings / MMSTs / translations. With
/// early-stop enabled it additionally runs the CI planner — serially, since
/// the stratified reservoirs draw from one sequential RNG stream (bit-equal
/// results across thread counts). Without early-stop the per-lattice
/// pre-builds are independent pure functions and fan out on the scheduler.
class MvdCubeEvaluator : public CubeEvaluator {
 public:
  explicit MvdCubeEvaluator(const CubeEvalOptions& options)
      : options_(options) {}

  const char* name() const override { return "MVDCube"; }

  void Prepare(const CubeEvalInputs& in, const Arm& arm,
               TaskScheduler* scheduler, EvalStats* stats) override {
    const std::vector<LatticeSpec>& lattices = *in.lattices;
    encodings_.assign(lattices.size(), {});
    mmsts_.assign(lattices.size(), {});
    translations_.assign(lattices.size(), {});

    if (options_.enable_earlystop) {
      Timer es_timer;
      Rng rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * (in.cfs_id + 1)));
      EarlyStopOptions es_options = options_.earlystop;
      es_options.kind = options_.interestingness;
      es_options.top_k = std::max(es_options.top_k, options_.top_k);
      EarlyStopPlanner planner(in.db, in.cfs_id, in.cfs, in.offline_stats,
                               es_options);
      for (size_t li = 0; li < lattices.size(); ++li) {
        BuildLattice(in, li, es_options.sample_size, &rng);
        planner.AddLattice(lattices[li], encodings_[li], mmsts_[li].layout(),
                           translations_[li], &measures_);
      }
      // `arm` is the per-CFS shard — empty here on the pipeline path. The
      // seed passed the global ARM, whose other-CFS exact scores tightened
      // the k-th-best threshold; that coupling made pruning depend on CFS
      // evaluation order, so the per-CFS scope trades a little pruning
      // power for thread-count-independent results (ARCHITECTURE.md,
      // "Determinism under parallelism").
      EarlyStopResult es = planner.Plan(arm);
      pruned_ = std::move(es.pruned);
      // Unique pruned MDA keys (a shared node would otherwise be counted
      // once per lattice).
      stats->num_mdas_pruned += pruned_.size();
      stats->earlystop_ms += es_timer.ElapsedMillis();
      pre_built_ = true;
      return;
    }

    // No early-stop: the pre-builds are independent per lattice (no shared
    // RNG), identical to what EvaluateLatticeMvd would build internally.
    // Fan them out when a scheduler is available; a lone lattice or serial
    // scheduler falls through to EvaluateLatticeMvd's internal build.
    if (scheduler != nullptr && scheduler->parallel() && lattices.size() > 1) {
      // Cancellation may skip individual builds; the aborted CFS's results
      // are discarded wholesale by the driver, so a hole is harmless.
      scheduler->ParallelFor(
          lattices.size(),
          [&](size_t li) {
            BuildLattice(in, li, /*sample_capacity=*/0, /*rng=*/nullptr);
          },
          in.cancel);
      pre_built_ = true;
    }
  }

  void EvaluateLattice(const CubeEvalInputs& in, size_t li, Arm* arm,
                       TaskScheduler* scheduler, EvalStats* stats) override {
    MvdCubeStats s = EvaluateLatticeMvd(
        *in.db, in.cfs_id, *in.cfs, (*in.lattices)[li], options_.mvd, arm,
        &measures_, pruned_.empty() ? nullptr : &pruned_,
        pre_built_ ? &translations_[li] : nullptr,
        pre_built_ ? &mmsts_[li] : nullptr,
        pre_built_ ? &encodings_[li] : nullptr, scheduler,
        ResolveLatticeWorkers(scheduler), in.cancel, budget_bytes_used_);
    budget_bytes_used_ += s.bitmap_bytes_peak;
    stats->num_mdas_evaluated += s.num_mdas_evaluated;
    stats->num_mdas_reused += s.num_mdas_reused;
    stats->num_groups_emitted += s.num_groups_emitted;
    stats->num_groups_skipped += s.num_groups_skipped;
    if (s.budget_truncated) stats->budget_truncated = true;
    stats->peak_bitmap_bytes =
        std::max(stats->peak_bitmap_bytes, s.bitmap_bytes_peak);
    stats->MergeLattice(s.lattice);
  }

 private:
  /// Pre-build lattice `li`'s encoding, MMST and translation — the one
  /// definition both Prepare branches share, and the bit-identical twin of
  /// EvaluateLatticeMvd's internal build (plus optional reservoir sampling
  /// for early-stop).
  void BuildLattice(const CubeEvalInputs& in, size_t li,
                    size_t sample_capacity, Rng* rng) {
    mmsts_[li] = BuildMmstForSpec(*in.db, *in.cfs, (*in.lattices)[li],
                                  &encodings_[li],
                                  options_.mvd.partition_chunk);
    TranslationOptions topt;
    topt.max_combos_per_fact = options_.mvd.max_combos_per_fact;
    topt.sample_capacity = sample_capacity;
    topt.rng = rng;
    translations_[li] = TranslateData(encodings_[li], mmsts_[li].layout(), topt);
  }

  CubeEvalOptions options_;
  MeasureCache measures_;
  std::set<AggregateKey> pruned_;
  std::vector<std::vector<DimensionEncoding>> encodings_;
  std::vector<Mmst> mmsts_;
  std::vector<Translation> translations_;
  bool pre_built_ = false;
  /// Bitmap bytes admitted by earlier lattices of this CFS — the budget is
  /// per CFS, not per lattice (one evaluator instance per CFS).
  uint64_t budget_bytes_used_ = 0;
};

/// PGCube shares nothing across lattices (each is one "query"), so its
/// evaluator is stateless between EvaluateLattice calls.
class PgCubeEvaluator : public CubeEvaluator {
 public:
  explicit PgCubeEvaluator(PgCubeVariant variant) : variant_(variant) {}

  const char* name() const override {
    return variant_ == PgCubeVariant::kStar ? "PGCube*" : "PGCube_d";
  }

  void EvaluateLattice(const CubeEvalInputs& in, size_t li, Arm* arm,
                       TaskScheduler* /*scheduler*/, EvalStats* stats) override {
    PgCubeStats s;
    EvaluateLatticePgCube(*in.db, in.cfs_id, *in.cfs, (*in.lattices)[li],
                          variant_, arm, &s);
    stats->num_mdas_evaluated += s.num_mdas_evaluated;
    stats->num_groups_emitted += s.num_groups_emitted;
  }

 private:
  PgCubeVariant variant_;
};

/// ArrayCube baseline behind the interface: evaluates each lattice with the
/// classical one-pass algorithm and streams the (deliberately incorrect on
/// multi-valued dimensions) results into the ARM, reusing keys shared
/// across lattices like MVDCube does.
class ArrayCubeEvaluator : public CubeEvaluator {
 public:
  explicit ArrayCubeEvaluator(const MvdCubeOptions& options)
      : options_(options) {}

  const char* name() const override { return "ArrayCube"; }

  void EvaluateLattice(const CubeEvalInputs& in, size_t li, Arm* arm,
                       TaskScheduler* /*scheduler*/, EvalStats* stats) override {
    std::vector<AggregateResult> results = EvaluateLatticeArrayCube(
        *in.db, in.cfs_id, *in.cfs, (*in.lattices)[li], options_, &measures_);
    for (AggregateResult& result : results) {
      Arm::Handle handle = arm->Register(result.key);
      if (handle == Arm::kInvalidHandle) {
        ++stats->num_mdas_reused;
        continue;
      }
      ++stats->num_mdas_evaluated;
      for (GroupResult& group : result.groups) {
        arm->AddGroup(handle, std::move(group.dim_values), group.value);
        ++stats->num_groups_emitted;
      }
    }
  }

 private:
  MvdCubeOptions options_;
  MeasureCache measures_;
};

}  // namespace

size_t ResolveShardCount(EvalAlgorithm algorithm, bool enable_earlystop,
                         size_t requested_shards, size_t num_threads) {
  if (algorithm != EvalAlgorithm::kMvdCube || enable_earlystop) return 1;
  size_t shards = requested_shards == 0 ? num_threads : requested_shards;
  return std::max<size_t>(1, shards);
}

std::unique_ptr<CubeEvaluator> MakeCubeEvaluator(const CubeEvalOptions& options) {
  switch (options.algorithm) {
    case EvalAlgorithm::kMvdCube:
      if (ResolveShardCount(options.algorithm, options.enable_earlystop,
                            options.num_shards, /*num_threads=*/1) > 1) {
        return MakeShardedMvdCubeEvaluator(options);
      }
      return std::make_unique<MvdCubeEvaluator>(options);
    case EvalAlgorithm::kPgCubeStar:
      return std::make_unique<PgCubeEvaluator>(PgCubeVariant::kStar);
    case EvalAlgorithm::kPgCubeDistinct:
      return std::make_unique<PgCubeEvaluator>(PgCubeVariant::kDistinct);
    case EvalAlgorithm::kArrayCube:
      return std::make_unique<ArrayCubeEvaluator>(options.mvd);
  }
  return std::make_unique<MvdCubeEvaluator>(options);
}

}  // namespace spade
