#ifndef SPADE_EXEC_SHARDED_EVALUATOR_H_
#define SPADE_EXEC_SHARDED_EVALUATOR_H_

#include <memory>

#include "src/exec/cube_evaluator.h"

namespace spade {

/// Build the within-CFS sharded MVDCube evaluator: `num_shards` fact-id-range
/// shards prepared concurrently on the TaskScheduler, merged exactly in
/// ascending shard order (see sharded_evaluator.cc for the determinism
/// argument). `num_shards` must be >= 2 and early-stop must be off; the
/// MakeCubeEvaluator factory enforces both and falls back to the plain
/// MvdCubeEvaluator otherwise.
std::unique_ptr<CubeEvaluator> MakeShardedMvdCubeEvaluator(
    const CubeEvalOptions& options);

}  // namespace spade

#endif  // SPADE_EXEC_SHARDED_EVALUATOR_H_
