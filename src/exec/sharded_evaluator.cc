#include "src/exec/sharded_evaluator.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "src/util/timer.h"

namespace spade {

namespace {

/// \brief MVDCube with within-CFS parallelism: the per-fact stages of one
/// CFS — dimension encoding, data translation and measure loading — are
/// split into `num_shards` contiguous fact-id ranges and run concurrently on
/// the TaskScheduler; the per-shard partials are merged back in ascending
/// shard order before the lattice computation — itself partition-parallel
/// (ParallelLatticeRun, canonical merge-and-emit) — streams into the
/// per-CFS ARM shard.
///
/// Why this is bit-identical to unsharded evaluation, at every shard and
/// thread count:
///   - Translation: each shard translates facts [lo, hi) in ascending fact
///     order, so concatenating the per-shard partition vectors in ascending
///     shard order reproduces the unsharded fact-major append order exactly;
///     root-group counts are integers and add exactly.
///   - Measure vectors: slot f depends only on fact f's own rows, and every
///     per-fact accumulation (sum/min/max over that fact's values) happens
///     inside one shard, in the same ascending value order as the unsharded
///     build. Disjoint ranges write disjoint slots; the table-wide flags are
///     "no counterexample seen" properties and AND-combine exactly.
///   - Encodings / MMSTs are pure per-lattice functions of the store and the
///     CFS, built once and shared.
/// EvaluateLatticeMvd therefore consumes inputs equal byte-for-byte to the
/// unsharded ones, and its ARM stream — order included — is unchanged.
///
/// Aggregate-value-level merging (summing per-shard partial sums per group)
/// was rejected: it would reorder the floating-point reductions and break
/// the bit-identical guarantee the parallel pipeline is built on.
///
/// Early-stop is out of scope by construction (the factory falls back): its
/// stratified reservoirs draw from one sequential RNG stream across all
/// facts, which a fact-range split cannot reproduce.
class ShardedMvdCubeEvaluator : public CubeEvaluator {
 public:
  explicit ShardedMvdCubeEvaluator(const CubeEvalOptions& options)
      : options_(options), num_shards_(std::max<size_t>(1, options.num_shards)) {}

  const char* name() const override { return "MVDCube/sharded"; }

  void Prepare(const CubeEvalInputs& in, const Arm& /*arm*/,
               TaskScheduler* scheduler, EvalStats* stats) override {
    const std::vector<LatticeSpec>& lattices = *in.lattices;
    const size_t num_lattices = lattices.size();
    TaskScheduler inline_scheduler(nullptr);
    if (scheduler == nullptr) scheduler = &inline_scheduler;

    std::vector<FactRange> shards = MakeFactShards(in.cfs->size(), num_shards_);
    stats->shard_fact_counts.resize(shards.size());
    for (size_t s = 0; s < shards.size(); ++s) {
      stats->shard_fact_counts[s] = shards[s].size();
    }

    // Stage 1: per-lattice encodings + MMST layouts (pure, shared by every
    // shard of that lattice).
    encodings_.assign(num_lattices, {});
    mmsts_.assign(num_lattices, {});
    translations_.assign(num_lattices, {});
    // All Prepare fan-outs take the cancel check: skipped builds leave holes,
    // which is fine — an aborted CFS's results are discarded wholesale.
    scheduler->ParallelFor(
        num_lattices,
        [&](size_t li) {
          mmsts_[li] = BuildMmstForSpec(*in.db, *in.cfs, lattices[li],
                                        &encodings_[li],
                                        options_.mvd.partition_chunk);
        },
        in.cancel);

    // Stage 2: per-(lattice, shard) translation of that shard's fact range.
    std::vector<std::vector<Translation>> partials(num_lattices);
    for (auto& p : partials) p.resize(shards.size());
    scheduler->ParallelFor(
        num_lattices * shards.size(),
        [&](size_t task) {
          size_t li = task / shards.size();
          size_t s = task % shards.size();
          SPADE_FAILPOINT("core.translate");
          TranslationOptions topt;
          topt.max_combos_per_fact = options_.mvd.max_combos_per_fact;
          topt.fact_begin = shards[s].begin;
          topt.fact_end = shards[s].end;
          partials[li][s] =
              TranslateData(encodings_[li], mmsts_[li].layout(), topt);
        },
        in.cancel);

    // Stage 3: merge partials in ascending shard order (exact: concatenation
    // plus integer addition).
    Timer merge_timer;
    for (size_t li = 0; li < num_lattices; ++li) {
      translations_[li] = MergeShardTranslations(std::move(partials[li]));
    }
    stats->shard_merge_ms += merge_timer.ElapsedMillis();

    // Stage 4: measure loading. One flat fan-out over (attribute, shard)
    // pairs — not a barrier per attribute — so the pool stays full even
    // when there are more workers than shards. Each task writes the
    // disjoint slot range of its shard; flags combine by AND afterwards.
    std::set<AttrId> measure_attr_set;
    for (const LatticeSpec& spec : lattices) {
      for (const MeasureSpec& m : spec.measures) {
        if (!m.is_count_star()) measure_attr_set.insert(m.attr);
      }
    }
    std::vector<AttrId> attrs(measure_attr_set.begin(), measure_attr_set.end());
    size_t n = in.cfs->size();
    std::vector<MeasureVector> vectors(attrs.size());
    for (MeasureVector& mv : vectors) mv.Init(n);
    std::vector<std::vector<MeasureFillFlags>> flags(
        attrs.size(), std::vector<MeasureFillFlags>(shards.size()));
    scheduler->ParallelFor(
        attrs.size() * shards.size(),
        [&](size_t task) {
          size_t a = task / shards.size();
          size_t s = task % shards.size();
          SPADE_FAILPOINT("core.measure.load");
          flags[a][s] = FillMeasureVectorRange(*in.db, *in.cfs, attrs[a],
                                               shards[s], &vectors[a]);
        },
        in.cancel);
    for (size_t a = 0; a < attrs.size(); ++a) {
      MeasureVector& mv = vectors[a];
      mv.numeric = true;
      mv.single_valued = true;
      for (const MeasureFillFlags& f : flags[a]) {
        mv.numeric &= f.numeric;
        mv.single_valued &= f.single_valued;
      }
      measures_.Put(attrs[a], std::move(mv));
    }
  }

  void EvaluateLattice(const CubeEvalInputs& in, size_t li, Arm* arm,
                       TaskScheduler* scheduler, EvalStats* stats) override {
    // Lattice computation is partition-parallel: one slice per compute
    // thread, canonical merge-and-emit (see ParallelLatticeRun) — the
    // worker count never changes the ARM stream, only wall-clock.
    size_t workers = ResolveLatticeWorkers(scheduler);
    MvdCubeStats s = EvaluateLatticeMvd(
        *in.db, in.cfs_id, *in.cfs, (*in.lattices)[li], options_.mvd, arm,
        &measures_, /*pruned=*/nullptr, &translations_[li], &mmsts_[li],
        &encodings_[li], scheduler, workers, in.cancel, budget_bytes_used_);
    budget_bytes_used_ += s.bitmap_bytes_peak;
    stats->num_mdas_evaluated += s.num_mdas_evaluated;
    stats->num_mdas_reused += s.num_mdas_reused;
    stats->num_groups_emitted += s.num_groups_emitted;
    stats->num_groups_skipped += s.num_groups_skipped;
    if (s.budget_truncated) stats->budget_truncated = true;
    stats->peak_bitmap_bytes =
        std::max(stats->peak_bitmap_bytes, s.bitmap_bytes_peak);
    stats->MergeLattice(s.lattice);
  }

 private:
  CubeEvalOptions options_;
  size_t num_shards_;
  MeasureCache measures_;
  std::vector<std::vector<DimensionEncoding>> encodings_;
  std::vector<Mmst> mmsts_;
  std::vector<Translation> translations_;
  uint64_t budget_bytes_used_ = 0;  ///< budget is per CFS, across lattices
};

}  // namespace

std::unique_ptr<CubeEvaluator> MakeShardedMvdCubeEvaluator(
    const CubeEvalOptions& options) {
  return std::make_unique<ShardedMvdCubeEvaluator>(options);
}

}  // namespace spade
