#ifndef SPADE_SUMMARY_SUMMARY_H_
#define SPADE_SUMMARY_SUMMARY_H_

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/rdf/graph.h"
#include "src/util/span.h"

namespace spade {

/// \brief RDFQuotient-style structural summary (Goasdoué et al., VLDBJ'20).
///
/// Spade's offline phase summarizes the graph to (a) enumerate properties and
/// (b) propose groups of structurally equivalent nodes that become
/// summary-based candidate fact sets (Section 3, step 1).
///
/// We implement *weak equivalence*: data properties are grouped into cliques
/// — two properties are related if some node carries both (as outgoing
/// properties: source cliques; as incoming: target cliques) — and nodes are
/// equivalent iff their properties fall in the same cliques. Operationally
/// this is a union–find: every node is unioned with a per-property anchor for
/// each of its outgoing (and incoming) properties, which yields exactly the
/// transitively-closed weak-equivalence partition. rdf:type triples are
/// excluded from the clique computation, as in RDFQuotient, where types
/// annotate rather than define the structure.
///
/// Like the attribute tables, a summary can *borrow* its data (Attach): the
/// snapshot loader points it at flat CSR segments — class-member lists,
/// class-property lists, and a node-sorted (node, class) array for ClassOf —
/// and the span accessors (ClassMembers / ClassPropertySpan) serve both
/// modes identically.
class StructuralSummary {
 public:
  struct Options {
    /// Also union nodes by shared *incoming* properties (full weak
    /// equivalence). When false, only source (outgoing) cliques are used,
    /// which yields a finer partition.
    bool use_incoming = true;
    /// Literal objects never form equivalence classes of their own.
    bool skip_literal_nodes = true;
  };

  /// Build the summary of `graph` (overload: default options).
  static StructuralSummary Build(const Graph& graph);
  static StructuralSummary Build(const Graph& graph, const Options& options);

  /// One entry of the borrowed node -> class map, sorted by node id.
  /// Fixed 8-byte layout, persisted verbatim in snapshots.
  struct NodeClass {
    TermId node = 0;
    uint32_t cls = 0;
  };
  static_assert(sizeof(NodeClass) == 8, "persisted layout");

  /// Borrow the summary from flat CSR arrays (typically mmap'd snapshot
  /// segments): `class_offsets` (size num_classes + 1) slices `members`
  /// into per-class sorted member lists; `prop_offsets` / `props` likewise
  /// for per-class property lists; `node_classes` is sorted by node id.
  /// Replaces any built state; the backing memory must outlive the summary.
  void Attach(Span<uint32_t> class_offsets, Span<TermId> members,
              Span<uint32_t> prop_offsets, Span<TermId> props,
              Span<NodeClass> node_classes);

  bool borrowed() const { return borrowed_; }

  size_t num_classes() const {
    return borrowed_ ? class_offsets_.size() - 1 : classes_.size();
  }

  /// Members of class `c`, sorted by TermId (both modes; classes ordered by
  /// descending size).
  Span<TermId> ClassMembers(size_t c) const {
    if (!borrowed_) return Span<TermId>(classes_[c]);
    return members_.subspan(class_offsets_[c],
                            class_offsets_[c + 1] - class_offsets_[c]);
  }

  /// Properties whose subjects fall in class `c`, sorted (both modes).
  Span<TermId> ClassPropertySpan(size_t c) const {
    if (!borrowed_) return Span<TermId>(class_properties_[c]);
    return props_.subspan(prop_offsets_[c],
                          prop_offsets_[c + 1] - prop_offsets_[c]);
  }

  /// Class index of a node, or -1 if the node is not summarized.
  int ClassOf(TermId node) const;

  /// Equivalence classes over the graph's non-literal nodes, each sorted by
  /// TermId; classes ordered by descending size. Built (owned) summaries
  /// only — span-based consumers should use ClassMembers().
  const std::vector<std::vector<TermId>>& classes() const {
    assert(!borrowed_ && "classes() needs an owned summary; use ClassMembers()");
    return classes_;
  }

  /// Properties whose subjects fall in class `cls` (the summary edge
  /// labels). Built (owned) summaries only; see ClassPropertySpan().
  const std::vector<TermId>& ClassProperties(int cls) const {
    assert(!borrowed_ &&
           "ClassProperties() needs an owned summary; use ClassPropertySpan()");
    return class_properties_[cls];
  }

 private:
  std::vector<std::vector<TermId>> classes_;
  std::vector<std::vector<TermId>> class_properties_;
  std::unordered_map<TermId, int> class_of_;
  // Borrowed CSR views (Attach); empty in owned mode.
  bool borrowed_ = false;
  Span<uint32_t> class_offsets_;
  Span<TermId> members_;
  Span<uint32_t> prop_offsets_;
  Span<TermId> props_;
  Span<NodeClass> node_classes_;
};

}  // namespace spade

#endif  // SPADE_SUMMARY_SUMMARY_H_
