#ifndef SPADE_SUMMARY_SUMMARY_H_
#define SPADE_SUMMARY_SUMMARY_H_

#include <unordered_map>
#include <vector>

#include "src/rdf/graph.h"

namespace spade {

/// \brief RDFQuotient-style structural summary (Goasdoué et al., VLDBJ'20).
///
/// Spade's offline phase summarizes the graph to (a) enumerate properties and
/// (b) propose groups of structurally equivalent nodes that become
/// summary-based candidate fact sets (Section 3, step 1).
///
/// We implement *weak equivalence*: data properties are grouped into cliques
/// — two properties are related if some node carries both (as outgoing
/// properties: source cliques; as incoming: target cliques) — and nodes are
/// equivalent iff their properties fall in the same cliques. Operationally
/// this is a union–find: every node is unioned with a per-property anchor for
/// each of its outgoing (and incoming) properties, which yields exactly the
/// transitively-closed weak-equivalence partition. rdf:type triples are
/// excluded from the clique computation, as in RDFQuotient, where types
/// annotate rather than define the structure.
class StructuralSummary {
 public:
  struct Options {
    /// Also union nodes by shared *incoming* properties (full weak
    /// equivalence). When false, only source (outgoing) cliques are used,
    /// which yields a finer partition.
    bool use_incoming = true;
    /// Literal objects never form equivalence classes of their own.
    bool skip_literal_nodes = true;
  };

  /// Build the summary of `graph` (overload: default options).
  static StructuralSummary Build(const Graph& graph);
  static StructuralSummary Build(const Graph& graph, const Options& options);

  /// Equivalence classes over the graph's non-literal nodes, each sorted by
  /// TermId; classes ordered by descending size.
  const std::vector<std::vector<TermId>>& classes() const { return classes_; }

  /// Class index of a node, or -1 if the node is not summarized.
  int ClassOf(TermId node) const;

  /// Properties whose subjects fall in class `cls` (the summary edge labels).
  const std::vector<TermId>& ClassProperties(int cls) const {
    return class_properties_[cls];
  }

  size_t num_classes() const { return classes_.size(); }

 private:
  std::vector<std::vector<TermId>> classes_;
  std::vector<std::vector<TermId>> class_properties_;
  std::unordered_map<TermId, int> class_of_;
};

}  // namespace spade

#endif  // SPADE_SUMMARY_SUMMARY_H_
