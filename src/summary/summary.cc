#include "src/summary/summary.h"

#include <algorithm>
#include <map>
#include <set>

namespace spade {

namespace {

/// Plain union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

StructuralSummary StructuralSummary::Build(const Graph& graph) {
  return Build(graph, Options());
}

StructuralSummary StructuralSummary::Build(const Graph& graph,
                                           const Options& options) {
  const Dictionary& dict = graph.dict();
  const TermId rdf_type = graph.rdf_type();

  // Dense-index the summarizable nodes and the properties.
  std::map<TermId, size_t> node_index;
  std::map<TermId, size_t> out_prop_index, in_prop_index;
  auto is_node = [&](TermId id) {
    return !options.skip_literal_nodes ||
           dict.Get(id).kind != TermKind::kLiteral;
  };
  for (const Triple& t : graph.triples()) {
    if (t.p == rdf_type) continue;
    node_index.emplace(t.s, 0);
    if (is_node(t.o)) node_index.emplace(t.o, 0);
    out_prop_index.emplace(t.p, 0);
    in_prop_index.emplace(t.p, 0);
  }
  // Typed nodes with no other triples still deserve a class.
  graph.Match(kInvalidTerm, rdf_type, kInvalidTerm,
              [&](const Triple& t) { node_index.emplace(t.s, 0); });

  size_t next = 0;
  for (auto& [id, idx] : node_index) idx = next++;
  // (node indices occupy [0, after_out); property anchors follow)
  for (auto& [id, idx] : out_prop_index) idx = next++;
  size_t after_out = next;
  for (auto& [id, idx] : in_prop_index) idx = next++;
  (void)after_out;

  UnionFind uf(next);
  for (const Triple& t : graph.triples()) {
    if (t.p == rdf_type) continue;
    uf.Union(node_index.at(t.s), out_prop_index.at(t.p));
    if (options.use_incoming && is_node(t.o)) {
      uf.Union(node_index.at(t.o), in_prop_index.at(t.p));
    }
  }

  // Gather classes.
  std::map<size_t, std::vector<TermId>> by_root;
  for (const auto& [id, idx] : node_index) by_root[uf.Find(idx)].push_back(id);

  StructuralSummary summary;
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    summary.classes_.push_back(std::move(members));
  }
  std::stable_sort(summary.classes_.begin(), summary.classes_.end(),
                   [](const auto& a, const auto& b) { return a.size() > b.size(); });

  summary.class_properties_.resize(summary.classes_.size());
  for (size_t c = 0; c < summary.classes_.size(); ++c) {
    std::set<TermId> props;
    for (TermId node : summary.classes_[c]) {
      summary.class_of_[node] = static_cast<int>(c);
      for (TermId p : graph.PropertiesOf(node)) {
        if (p != rdf_type) props.insert(p);
      }
    }
    summary.class_properties_[c].assign(props.begin(), props.end());
  }
  return summary;
}

void StructuralSummary::Attach(Span<uint32_t> class_offsets,
                               Span<TermId> members,
                               Span<uint32_t> prop_offsets, Span<TermId> props,
                               Span<NodeClass> node_classes) {
  assert(!class_offsets.empty() && !prop_offsets.empty() &&
         class_offsets.size() == prop_offsets.size() &&
         "CSR offset arrays must agree on num_classes + 1");
  classes_.clear();
  class_properties_.clear();
  class_of_.clear();
  class_offsets_ = class_offsets;
  members_ = members;
  prop_offsets_ = prop_offsets;
  props_ = props;
  node_classes_ = node_classes;
  borrowed_ = true;
}

int StructuralSummary::ClassOf(TermId node) const {
  if (borrowed_) {
    auto it = std::lower_bound(
        node_classes_.begin(), node_classes_.end(), node,
        [](const NodeClass& a, TermId b) { return a.node < b; });
    if (it == node_classes_.end() || it->node != node) return -1;
    return static_cast<int>(it->cls);
  }
  auto it = class_of_.find(node);
  if (it == class_of_.end()) return -1;
  return it->second;
}

}  // namespace spade
