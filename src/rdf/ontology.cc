#include "src/rdf/ontology.h"

#include <map>
#include <set>
#include <vector>

namespace spade {

namespace {

// Transitive closure of a successor relation, as sorted adjacency.
void Close(std::map<TermId, std::set<TermId>>* rel) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [from, tos] : *rel) {
      std::set<TermId> add;
      for (TermId mid : tos) {
        auto it = rel->find(mid);
        if (it == rel->end()) continue;
        for (TermId to : it->second) {
          if (to != from && !tos.count(to)) add.insert(to);
        }
      }
      if (!add.empty()) {
        tos.insert(add.begin(), add.end());
        changed = true;
      }
    }
  }
}

}  // namespace

size_t Saturate(Graph* graph) {
  Dictionary& dict = graph->dict();
  const TermId type = graph->rdf_type();
  const TermId sub_class = dict.InternIri(vocab::kRdfsSubClassOf);
  const TermId sub_prop = dict.InternIri(vocab::kRdfsSubPropertyOf);
  const TermId domain = dict.InternIri(vocab::kRdfsDomain);
  const TermId range = dict.InternIri(vocab::kRdfsRange);

  // Collect schema triples.
  std::map<TermId, std::set<TermId>> class_up, prop_up;
  std::map<TermId, std::vector<TermId>> prop_domain, prop_range;
  graph->Match(kInvalidTerm, sub_class, kInvalidTerm, [&](const Triple& t) {
    class_up[t.s].insert(t.o);
  });
  graph->Match(kInvalidTerm, sub_prop, kInvalidTerm, [&](const Triple& t) {
    prop_up[t.s].insert(t.o);
  });
  graph->Match(kInvalidTerm, domain, kInvalidTerm, [&](const Triple& t) {
    prop_domain[t.s].push_back(t.o);
  });
  graph->Match(kInvalidTerm, range, kInvalidTerm, [&](const Triple& t) {
    prop_range[t.s].push_back(t.o);
  });

  Close(&class_up);
  Close(&prop_up);

  size_t before = graph->NumTriples();

  // Schema closure triples (rdfs5 / rdfs11).
  for (const auto& [c, ups] : class_up) {
    for (TermId up : ups) graph->Add(c, sub_class, up);
  }
  for (const auto& [p, ups] : prop_up) {
    for (TermId up : ups) graph->Add(p, sub_prop, up);
  }

  // Instance rules. Property propagation (rdfs7) can trigger domain/range
  // typing of the *super* property, and typing can trigger class closure, so
  // we apply: (1) propagate properties through the closed subPropertyOf,
  // (2) apply domain/range over the propagated data, (3) close types through
  // the closed subClassOf. Because the property closure is transitive, one
  // round of each suffices for a fixpoint.
  std::vector<Triple> data = graph->triples().ToVector();
  for (const Triple& t : data) {
    auto it = prop_up.find(t.p);
    if (it != prop_up.end()) {
      for (TermId super : it->second) graph->Add(t.s, super, t.o);
    }
  }

  data = graph->triples().ToVector();
  for (const Triple& t : data) {
    auto dit = prop_domain.find(t.p);
    if (dit != prop_domain.end()) {
      for (TermId c : dit->second) graph->Add(t.s, type, c);
    }
    auto rit = prop_range.find(t.p);
    if (rit != prop_range.end()) {
      const Term& obj = dict.Get(t.o);
      if (obj.kind != TermKind::kLiteral) {
        for (TermId c : rit->second) graph->Add(t.o, type, c);
      }
    }
  }

  data = graph->triples().ToVector();
  for (const Triple& t : data) {
    if (t.p != type) continue;
    auto it = class_up.find(t.o);
    if (it != class_up.end()) {
      for (TermId super : it->second) graph->Add(t.s, type, super);
    }
  }

  graph->Freeze();
  return graph->NumTriples() - before;
}

}  // namespace spade
