#include "src/rdf/ntriples.h"

#include <cstdio>
#include <sstream>

#include "src/util/string_util.h"

namespace spade {

namespace {

// Append the UTF-8 encoding of `cp` to `out`.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7f) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7ff) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp <= 0xffff) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

bool HexVal(char c, uint32_t* v) {
  if (c >= '0' && c <= '9') {
    *v = static_cast<uint32_t>(c - '0');
    return true;
  }
  if (c >= 'a' && c <= 'f') {
    *v = static_cast<uint32_t>(c - 'a' + 10);
    return true;
  }
  if (c >= 'A' && c <= 'F') {
    *v = static_cast<uint32_t>(c - 'A' + 10);
    return true;
  }
  return false;
}

// Decode the escaped body of a quoted string starting after the opening
// quote; on success sets *end to the index of the closing quote.
Status DecodeQuoted(std::string_view line, size_t start, std::string* out,
                    size_t* end) {
  out->clear();
  size_t i = start;
  while (i < line.size()) {
    char c = line[i];
    if (c == '"') {
      *end = i;
      return Status::OK();
    }
    if (c != '\\') {
      out->push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= line.size()) return Status::ParseError("dangling escape");
    char e = line[i + 1];
    i += 2;
    switch (e) {
      case 't':
        out->push_back('\t');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 'b':
        out->push_back('\b');
        break;
      case 'f':
        out->push_back('\f');
        break;
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case 'u':
      case 'U': {
        size_t n = (e == 'u') ? 4 : 8;
        if (i + n > line.size()) return Status::ParseError("truncated \\u escape");
        uint32_t cp = 0;
        for (size_t k = 0; k < n; ++k) {
          uint32_t v;
          if (!HexVal(line[i + k], &v)) return Status::ParseError("bad hex digit");
          cp = (cp << 4) | v;
        }
        i += n;
        AppendUtf8(cp, out);
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape \\") + e);
    }
  }
  return Status::ParseError("unterminated string literal");
}

void SkipWs(std::string_view line, size_t* i) {
  while (*i < line.size() && (line[*i] == ' ' || line[*i] == '\t')) ++(*i);
}

// Parse one term starting at *i; advances *i past the term.
Status ParseTerm(std::string_view line, size_t* i, bool allow_literal, Term* out,
                 Dictionary* dict) {
  SkipWs(line, i);
  if (*i >= line.size()) return Status::ParseError("unexpected end of line");
  char c = line[*i];
  if (c == '<') {
    size_t close = line.find('>', *i + 1);
    if (close == std::string_view::npos) return Status::ParseError("unclosed IRI");
    *out = Term::Iri(std::string(line.substr(*i + 1, close - *i - 1)));
    *i = close + 1;
    return Status::OK();
  }
  if (c == '_') {
    if (*i + 1 >= line.size() || line[*i + 1] != ':') {
      return Status::ParseError("bad blank node");
    }
    size_t j = *i + 2;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    *out = Term::Blank(std::string(line.substr(*i + 2, j - *i - 2)));
    *i = j;
    return Status::OK();
  }
  if (c == '"') {
    if (!allow_literal) return Status::ParseError("literal not allowed here");
    std::string lex;
    size_t close = 0;
    SPADE_RETURN_NOT_OK(DecodeQuoted(line, *i + 1, &lex, &close));
    size_t j = close + 1;
    TermId datatype = kInvalidTerm;
    std::string lang;
    if (j < line.size() && line[j] == '@') {
      size_t k = j + 1;
      while (k < line.size() && line[k] != ' ' && line[k] != '\t') ++k;
      lang = std::string(line.substr(j + 1, k - j - 1));
      j = k;
    } else if (j + 1 < line.size() && line[j] == '^' && line[j + 1] == '^') {
      if (j + 2 >= line.size() || line[j + 2] != '<') {
        return Status::ParseError("bad datatype IRI");
      }
      size_t close_dt = line.find('>', j + 3);
      if (close_dt == std::string_view::npos) {
        return Status::ParseError("unclosed datatype IRI");
      }
      datatype = dict->InternIri(std::string(line.substr(j + 3, close_dt - j - 3)));
      j = close_dt + 1;
    }
    *out = Term::Literal(std::move(lex), datatype, std::move(lang));
    *i = j;
    return Status::OK();
  }
  return Status::ParseError(std::string("unexpected character '") + c + "'");
}

}  // namespace

Status NTriplesReader::ParseLine(std::string_view line, Term* s, Term* p, Term* o,
                                 const Dictionary& /*dict_for_datatypes*/,
                                 Dictionary* dict) {
  std::string_view body = Trim(line);
  if (body.empty() || body[0] == '#') return Status::NotFound("no triple");
  size_t i = 0;
  SPADE_RETURN_NOT_OK(ParseTerm(body, &i, /*allow_literal=*/false, s, dict));
  SPADE_RETURN_NOT_OK(ParseTerm(body, &i, /*allow_literal=*/false, p, dict));
  if (p->kind != TermKind::kIri) return Status::ParseError("predicate must be IRI");
  SPADE_RETURN_NOT_OK(ParseTerm(body, &i, /*allow_literal=*/true, o, dict));
  SkipWs(body, &i);
  if (i >= body.size() || body[i] != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  return Status::OK();
}

Status NTriplesChunkReader::NextChunk(size_t max_triples,
                                      std::vector<Triple>* out, bool* done) {
  out->clear();
  *done = done_;
  if (!error_.ok()) return error_;
  if (done_) return Status::OK();
  while (out->size() < max_triples && std::getline(*in_, line_)) {
    ++lineno_;
    Term s, p, o;
    Status st =
        NTriplesReader::ParseLine(line_, &s, &p, &o, graph_->dict(),
                                  &graph_->dict());
    if (st.code() == Status::Code::kNotFound) continue;  // blank/comment
    if (!st.ok()) {
      done_ = true;
      *done = true;
      error_ = Status::ParseError("line " + std::to_string(lineno_) + ": " +
                                  st.message());
      return error_;
    }
    out->push_back(Triple{graph_->dict().Intern(s), graph_->dict().Intern(p),
                          graph_->dict().Intern(o)});
  }
  if (out->size() < max_triples) {
    done_ = true;
    *done = true;
  }
  return Status::OK();
}

Status NTriplesReader::Parse(std::istream& in, Graph* graph) {
  NTriplesChunkReader reader(in, graph);
  std::vector<Triple> chunk;
  bool done = false;
  while (!done) {
    SPADE_RETURN_NOT_OK(reader.NextChunk(1 << 16, &chunk, &done));
    for (const Triple& t : chunk) graph->Add(t);
  }
  graph->Freeze();
  return Status::OK();
}

Status NTriplesReader::ParseString(std::string_view text, Graph* graph) {
  std::istringstream in{std::string(text)};
  return Parse(in, graph);
}

std::string NTriplesWriter::FormatTerm(const Dictionary& dict, TermId id) {
  const Term& t = dict.Get(id);
  switch (t.kind) {
    case TermKind::kIri:
      return "<" + t.lexical + ">";
    case TermKind::kBlank:
      return "_:" + t.lexical;
    case TermKind::kLiteral: {
      std::string out = "\"";
      for (char c : t.lexical) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out.push_back(c);
        }
      }
      out += "\"";
      if (!t.language.empty()) {
        out += "@" + t.language;
      } else if (t.datatype != kInvalidTerm) {
        out += "^^<" + dict.Get(t.datatype).lexical + ">";
      }
      return out;
    }
  }
  return "";
}

void NTriplesWriter::Write(const Graph& graph, std::ostream& out) {
  for (const Triple& t : graph.triples()) {
    out << FormatTerm(graph.dict(), t.s) << ' ' << FormatTerm(graph.dict(), t.p)
        << ' ' << FormatTerm(graph.dict(), t.o) << " .\n";
  }
}

}  // namespace spade
