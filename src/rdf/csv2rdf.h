#ifndef SPADE_RDF_CSV2RDF_H_
#define SPADE_RDF_CSV2RDF_H_

#include <istream>
#include <string>
#include <string_view>

#include "src/rdf/graph.h"
#include "src/util/status.h"

namespace spade {

/// Options of the relational-to-RDF conversion.
struct Csv2RdfOptions {
  /// Namespace for the generated IRIs; row i becomes <ns>row/<i>, column c
  /// becomes the property <ns><c>.
  std::string base_iri = "http://csv.spade/";
  /// rdf:type attached to every row fact (local name under base_iri).
  std::string row_type = "Row";
  /// Field separator.
  char separator = ',';
  /// First line holds column names; otherwise columns are named col0, col1...
  bool header = true;
  /// Numeric-looking fields become xsd:integer / xsd:double literals (so the
  /// pipeline can use them as measures); otherwise plain strings.
  bool type_numeric_columns = true;
  /// Empty fields produce no triple (RDF has no NULL — heterogeneity is
  /// expressed by absence, exactly what Spade expects).
  bool skip_empty = true;
};

/// \brief Convert a CSV table into an RDF graph, one candidate fact per row.
///
/// This is how the paper obtained its Airline graph from a relational
/// flight-delay table: "each tuple becomes a CF with a fixed set of
/// properties" (Section 6). Quoted fields (RFC 4180: doubled quotes escape)
/// and CRLF line ends are handled.
///
/// Returns the number of rows converted.
Result<size_t> CsvToRdf(std::istream& in, const Csv2RdfOptions& options,
                        Graph* graph);
Result<size_t> CsvToRdfString(std::string_view text,
                              const Csv2RdfOptions& options, Graph* graph);

/// Split one CSV record (RFC 4180 quoting). Exposed for tests.
Result<std::vector<std::string>> SplitCsvRecord(std::string_view line,
                                                char separator);

}  // namespace spade

#endif  // SPADE_RDF_CSV2RDF_H_
