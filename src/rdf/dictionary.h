#ifndef SPADE_RDF_DICTIONARY_H_
#define SPADE_RDF_DICTIONARY_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/rdf/term.h"

namespace spade {

/// \brief Bidirectional term <-> TermId mapping.
///
/// All triples are dictionary-encoded on ingestion; ids are dense and start
/// at 1 (0 is kInvalidTerm), so modules can use ids directly as array
/// indices. Interning the same term twice returns the same id.
class Dictionary {
 public:
  Dictionary() { terms_.emplace_back(); }  // slot 0 = invalid

  /// Intern a term, returning its (possibly pre-existing) id.
  TermId Intern(const Term& term);

  /// Convenience interners.
  TermId InternIri(const std::string& iri) { return Intern(Term::Iri(iri)); }
  TermId InternBlank(const std::string& label) { return Intern(Term::Blank(label)); }
  TermId InternString(const std::string& lex) { return Intern(Term::Literal(lex)); }
  TermId InternInteger(int64_t v);
  TermId InternDouble(double v);

  /// Lookup without interning.
  std::optional<TermId> Lookup(const Term& term) const;

  const Term& Get(TermId id) const { return terms_[id]; }

  /// Number of interned terms (excluding the invalid slot).
  size_t size() const { return terms_.size() - 1; }

  /// Largest valid id (== size()).
  TermId max_id() const { return static_cast<TermId>(terms_.size() - 1); }

  /// True if `id` names a literal with a numeric XSD datatype; fills *out.
  bool NumericValue(TermId id, double* out) const;

 private:
  static std::string Key(const Term& term);

  std::vector<Term> terms_;
  std::unordered_map<std::string, TermId> index_;
  // Cached datatype ids, interned lazily.
  TermId xsd_integer_ = kInvalidTerm;
  TermId xsd_double_ = kInvalidTerm;
};

}  // namespace spade

#endif  // SPADE_RDF_DICTIONARY_H_
