#ifndef SPADE_RDF_DICTIONARY_H_
#define SPADE_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/rdf/term.h"
#include "src/util/span.h"

namespace spade {

/// \brief Bidirectional term <-> TermId mapping.
///
/// All triples are dictionary-encoded on ingestion; ids are dense and start
/// at 1 (0 is kInvalidTerm), so modules can use ids directly as array
/// indices. Interning the same term twice returns the same id.
///
/// Two storage modes share one id space:
///
///  - **Owned** (the build path): terms live in a vector, the intern index
///    maps composite keys to ids. The index is keyed by string_view into
///    key strings the dictionary owns, so the Intern/Lookup hot path probes
///    with a reused scratch buffer and allocates only for genuinely new
///    terms — not once per triple.
///  - **Borrowed** (the snapshot load path): AttachArena() points the
///    dictionary at a flat record array + string arena (typically an mmap'd
///    snapshot segment). The view accessors (KindOf/LexicalOf/LanguageOf/
///    DatatypeOf) read the arena directly with zero copies; Get() lazily
///    materializes full Terms into a small cache; Intern() of a new term
///    transparently appends to owned overflow storage, so a loaded
///    dictionary still supports every operation.
class Dictionary {
 public:
  Dictionary() { terms_.emplace_back(); }  // slot 0 = invalid

  /// Movable: compaction builds a canonical replacement graph and moves it
  /// (dictionary included) over the live one. The intern index keys are
  /// string_views into deque-backed storage whose element addresses survive
  /// the move; the term-cache mutex is not movable, so the destination gets
  /// a fresh one (moves require external synchronization anyway, like every
  /// other mutation).
  Dictionary(Dictionary&& other);
  Dictionary& operator=(Dictionary&& other);
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Intern a term, returning its (possibly pre-existing) id.
  /// Not thread-safe (external synchronization, as for any mutation).
  TermId Intern(const Term& term);

  /// Convenience interners.
  TermId InternIri(const std::string& iri) { return Intern(Term::Iri(iri)); }
  TermId InternBlank(const std::string& label) { return Intern(Term::Blank(label)); }
  TermId InternString(const std::string& lex) { return Intern(Term::Literal(lex)); }
  TermId InternInteger(int64_t v);
  TermId InternDouble(double v);

  /// Lookup without interning. On a borrowed dictionary the first call
  /// builds the lazy intern index (so it is not const-thread-safe until
  /// either Lookup or Intern has run once after AttachArena).
  std::optional<TermId> Lookup(const Term& term) const;

  /// Full term of `id`. Borrowed mode materializes the term once into a
  /// mutex-guarded cache (references stay valid for the dictionary's
  /// lifetime); hot paths should prefer the view accessors below, which
  /// never allocate or lock in either mode.
  const Term& Get(TermId id) const;

  // --- View accessors: allocation-free in both modes. ---------------------

  TermKind KindOf(TermId id) const {
    if (id < records_.size()) return static_cast<TermKind>(records_[id].kind);
    return terms_[id - records_.size()].kind;
  }
  std::string_view LexicalOf(TermId id) const {
    if (id < records_.size()) {
      const ArenaRecord& r = records_[id];
      return std::string_view(arena_.data() + r.lex_offset, r.lex_len);
    }
    return terms_[id - records_.size()].lexical;
  }
  std::string_view LanguageOf(TermId id) const {
    if (id < records_.size()) {
      const ArenaRecord& r = records_[id];
      return std::string_view(arena_.data() + r.lex_offset + r.lex_len,
                              r.lang_len);
    }
    return terms_[id - records_.size()].language;
  }
  TermId DatatypeOf(TermId id) const {
    if (id < records_.size()) return records_[id].datatype;
    return terms_[id - records_.size()].datatype;
  }

  /// Number of interned terms (excluding the invalid slot).
  size_t size() const {
    return borrowed() ? records_.size() - 1 + terms_.size() : terms_.size() - 1;
  }

  /// Largest valid id (== size()).
  TermId max_id() const { return static_cast<TermId>(size()); }

  /// True if `id` names a literal whose lexical form parses as a number;
  /// fills *out. Reads the arena directly in borrowed mode (hot path of the
  /// measure loaders).
  bool NumericValue(TermId id, double* out) const;

  // --- Arena-backed borrowed mode (snapshot loading). ---------------------

  /// One term of the flat snapshot representation: offsets into the string
  /// arena (language bytes follow the lexical bytes). Fixed 24-byte layout,
  /// persisted verbatim; bump the snapshot version when changing it.
  struct ArenaRecord {
    uint64_t lex_offset = 0;  ///< byte offset of the lexical form
    uint32_t lex_len = 0;     ///< lexical byte count
    uint32_t datatype = 0;    ///< datatype TermId (kInvalidTerm = none)
    uint16_t lang_len = 0;    ///< language-tag bytes, stored after lexical
    uint8_t kind = 0;         ///< TermKind
    uint8_t pad0 = 0;
    uint32_t pad1 = 0;
  };
  static_assert(sizeof(ArenaRecord) == 24, "persisted layout");

  /// Replace the dictionary's contents with a borrowed record array +
  /// string arena. records[0] must be the invalid slot (id == index). The
  /// backing memory must outlive the dictionary (or the next AttachArena).
  /// Any previously interned terms are discarded.
  void AttachArena(Span<ArenaRecord> records, Span<char> arena);

  bool borrowed() const { return !records_.empty(); }

 private:
  /// Append the composite intern key of a term to *out (cleared first).
  static void AppendKey(TermKind kind, std::string_view lexical, TermId datatype,
                        std::string_view language, std::string* out);
  /// Build the intern index over borrowed records on first Intern/Lookup
  /// after AttachArena (O(terms); the loaded pipeline never needs it).
  void EnsureIndexed() const;

  std::vector<Term> terms_;  ///< owned terms; borrowed mode: overflow only
  /// Intern index. Keys are string_views into key_storage_ entries (deque:
  /// stable addresses). Mutable: built lazily on borrowed dictionaries.
  mutable std::unordered_map<std::string_view, TermId> index_;
  mutable std::deque<std::string> key_storage_;
  /// Reused probe buffer: Intern of an already-known term allocates nothing.
  std::string key_scratch_;
  mutable bool indexed_ = true;  ///< false between AttachArena and EnsureIndexed

  // Borrowed read path (empty in owned mode).
  Span<ArenaRecord> records_;
  Span<char> arena_;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<TermId, Term> term_cache_;  // node-based: stable refs

  // Cached datatype ids, interned lazily.
  TermId xsd_integer_ = kInvalidTerm;
  TermId xsd_double_ = kInvalidTerm;
};

}  // namespace spade

#endif  // SPADE_RDF_DICTIONARY_H_
