#ifndef SPADE_RDF_GRAPH_H_
#define SPADE_RDF_GRAPH_H_

#include <functional>
#include <vector>

#include "src/rdf/dictionary.h"
#include "src/rdf/term.h"
#include "src/util/span.h"

namespace spade {

/// \brief Staged net effect of one mutation batch (see Graph::StageDelta).
///
/// Batch semantics: the final triple set is `(current \ retracts) ∪ adds`,
/// so a triple retracted and re-added in the same batch ends up present.
/// `added`/`removed` hold only the *net* changes relative to the current
/// graph; retractions of absent triples and adds of present triples are
/// counted as no-ops.
struct GraphDelta {
  std::vector<Triple> added;    ///< net-new triples (absent before), SPO order
  std::vector<Triple> removed;  ///< net-removed (present before), SPO order
  size_t noop_adds = 0;         ///< added triples that were already present
  size_t noop_retracts = 0;     ///< retractions that removed nothing
  /// The three permutations of the post-delta triple set, ready to commit.
  std::vector<Triple> spo;
  std::vector<Triple> pos;
  std::vector<Triple> osp;
};

/// \brief In-memory RDF graph: a dictionary plus an indexed triple set.
///
/// This is the storage substrate every other module builds on (the paper uses
/// OntoSQL over PostgreSQL; see DESIGN.md S1/S6 for the substitution).
///
/// Triples are appended, then the graph is frozen: three sorted permutations
/// (SPO, POS, OSP) are built so that any triple pattern with at least one
/// bound position resolves to a binary-searchable range. Queries auto-freeze
/// a dirty graph, so interleaving writes and reads stays correct (at re-sort
/// cost).
///
/// A graph can also *borrow* its permutations (AttachTriples): the snapshot
/// loader points it at three pre-sorted, typically mmap'd arrays, and every
/// accessor binary-searches those views directly — identical semantics, zero
/// copies, O(1) attach. Adding triples to a borrowed graph thaws it (the
/// borrowed data is copied once, then the normal freeze path runs).
class Graph {
 public:
  Graph();

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Append one triple (duplicates are removed at Freeze time).
  void Add(TermId s, TermId p, TermId o);
  void Add(const Triple& t) { Add(t.s, t.p, t.o); }

  /// Convenience: intern and add in one call.
  void AddIri(const std::string& s, const std::string& p, const std::string& o);
  void AddLiteral(const std::string& s, const std::string& p, const Term& literal);

  /// Sort indexes and deduplicate. Idempotent; queries call it lazily.
  void Freeze();

  /// Borrow pre-sorted triple permutations (each sorted in its own order,
  /// deduplicated — exactly what Freeze() produces and a snapshot stores).
  /// Replaces any existing triples; the backing memory must outlive the
  /// graph. `rdf_type` is the dictionary id of rdf:type in the attached
  /// dictionary (persisted in the snapshot header).
  void AttachTriples(Span<Triple> spo, Span<Triple> pos, Span<Triple> osp,
                     TermId rdf_type);

  /// True if the triple indexes are borrowed from external memory.
  bool borrowed() const { return borrowed_; }

  /// Compute the net effect of applying `adds` and `retracts` as one batch
  /// (semantics in GraphDelta's doc) without modifying the graph. The staged
  /// permutations are built by subtracting/merging the net delta against the
  /// current sorted permutations — O(T + d log d) for T triples and a delta
  /// of d — and are guaranteed identical to what Freeze() would produce for
  /// the mutated triple set. Commit with CommitDelta().
  void StageDelta(std::vector<Triple> adds, std::vector<Triple> retracts,
                  GraphDelta* out) const;

  /// Install permutations staged by StageDelta() on this graph. Only swaps
  /// (noexcept), so callers can stage fallibly and commit atomically. A
  /// borrowed graph becomes owned; the backing snapshot mapping is no longer
  /// referenced by the triple indexes (the dictionary may still borrow it).
  void CommitDelta(GraphDelta&& staged) noexcept;

  size_t NumTriples() const;

  /// True if the exact triple is present.
  bool Contains(TermId s, TermId p, TermId o) const;

  /// Enumerate triples matching a pattern; kInvalidTerm = wildcard.
  /// `fn` receives each matching Triple.
  void Match(TermId s, TermId p, TermId o,
             const std::function<void(const Triple&)>& fn) const;

  /// All objects of (s, p, *), in id order.
  std::vector<TermId> Objects(TermId s, TermId p) const;

  /// All subjects of (*, p, o), in id order.
  std::vector<TermId> Subjects(TermId p, TermId o) const;

  /// Distinct properties appearing on subject s.
  std::vector<TermId> PropertiesOf(TermId s) const;

  /// Distinct property ids in the whole graph.
  std::vector<TermId> AllProperties() const;

  /// Distinct subject ids in the whole graph (nodes with outgoing edges).
  std::vector<TermId> AllSubjects() const;

  /// Distinct objects of rdf:type triples.
  std::vector<TermId> AllTypes() const;

  /// Nodes having rdf:type `type`.
  TermId rdf_type() const { return rdf_type_; }
  std::vector<TermId> NodesOfType(TermId type) const;

  /// Full triple list (frozen order: SPO). A view: valid until the next
  /// mutation of the graph.
  Span<Triple> triples() const;

  /// The POS / OSP permutations (frozen order). Snapshot serialization
  /// persists all three so a load never re-sorts.
  Span<Triple> triples_pos() const;
  Span<Triple> triples_osp() const;

 private:
  void EnsureFrozen() const;
  Span<Triple> spo_view() const {
    return borrowed_ ? bspo_ : Span<Triple>(spo_);
  }
  Span<Triple> pos_view() const {
    return borrowed_ ? bpos_ : Span<Triple>(pos_);
  }
  Span<Triple> osp_view() const {
    return borrowed_ ? bosp_ : Span<Triple>(osp_);
  }

  Dictionary dict_;
  TermId rdf_type_;
  mutable bool dirty_ = false;
  mutable std::vector<Triple> spo_;  // also the canonical triple list
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  std::vector<Triple> pending_;
  // Borrowed permutations (AttachTriples); empty in owned mode.
  mutable bool borrowed_ = false;
  mutable Span<Triple> bspo_;
  mutable Span<Triple> bpos_;
  mutable Span<Triple> bosp_;
};

}  // namespace spade

#endif  // SPADE_RDF_GRAPH_H_
