#ifndef SPADE_RDF_GRAPH_H_
#define SPADE_RDF_GRAPH_H_

#include <functional>
#include <vector>

#include "src/rdf/dictionary.h"
#include "src/rdf/term.h"

namespace spade {

/// \brief In-memory RDF graph: a dictionary plus an indexed triple set.
///
/// This is the storage substrate every other module builds on (the paper uses
/// OntoSQL over PostgreSQL; see DESIGN.md S1/S6 for the substitution).
///
/// Triples are appended, then the graph is frozen: three sorted permutations
/// (SPO, POS, OSP) are built so that any triple pattern with at least one
/// bound position resolves to a binary-searchable range. Queries auto-freeze
/// a dirty graph, so interleaving writes and reads stays correct (at re-sort
/// cost).
class Graph {
 public:
  Graph();

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Append one triple (duplicates are removed at Freeze time).
  void Add(TermId s, TermId p, TermId o);
  void Add(const Triple& t) { Add(t.s, t.p, t.o); }

  /// Convenience: intern and add in one call.
  void AddIri(const std::string& s, const std::string& p, const std::string& o);
  void AddLiteral(const std::string& s, const std::string& p, const Term& literal);

  /// Sort indexes and deduplicate. Idempotent; queries call it lazily.
  void Freeze();

  size_t NumTriples() const;

  /// True if the exact triple is present.
  bool Contains(TermId s, TermId p, TermId o) const;

  /// Enumerate triples matching a pattern; kInvalidTerm = wildcard.
  /// `fn` receives each matching Triple.
  void Match(TermId s, TermId p, TermId o,
             const std::function<void(const Triple&)>& fn) const;

  /// All objects of (s, p, *), in id order.
  std::vector<TermId> Objects(TermId s, TermId p) const;

  /// All subjects of (*, p, o), in id order.
  std::vector<TermId> Subjects(TermId p, TermId o) const;

  /// Distinct properties appearing on subject s.
  std::vector<TermId> PropertiesOf(TermId s) const;

  /// Distinct property ids in the whole graph.
  std::vector<TermId> AllProperties() const;

  /// Distinct subject ids in the whole graph (nodes with outgoing edges).
  std::vector<TermId> AllSubjects() const;

  /// Distinct objects of rdf:type triples.
  std::vector<TermId> AllTypes() const;

  /// Nodes having rdf:type `type`.
  std::vector<TermId> NodesOfType(TermId type) const;

  /// Id of rdf:type (interned at construction).
  TermId rdf_type() const { return rdf_type_; }

  /// Full triple list (frozen order: SPO).
  const std::vector<Triple>& triples() const;

 private:
  void EnsureFrozen() const;

  Dictionary dict_;
  TermId rdf_type_;
  mutable bool dirty_ = false;
  mutable std::vector<Triple> spo_;  // also the canonical triple list
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  std::vector<Triple> pending_;
};

}  // namespace spade

#endif  // SPADE_RDF_GRAPH_H_
