#include "src/rdf/dictionary.h"

#include "src/util/string_util.h"

namespace spade {

Dictionary::Dictionary(Dictionary&& other)
    : terms_(std::move(other.terms_)),
      index_(std::move(other.index_)),
      key_storage_(std::move(other.key_storage_)),
      key_scratch_(std::move(other.key_scratch_)),
      indexed_(other.indexed_),
      records_(other.records_),
      arena_(other.arena_),
      term_cache_(std::move(other.term_cache_)),
      xsd_integer_(other.xsd_integer_),
      xsd_double_(other.xsd_double_) {
  other.records_ = Span<ArenaRecord>();
  other.arena_ = Span<char>();
  other.indexed_ = true;
  other.xsd_integer_ = kInvalidTerm;
  other.xsd_double_ = kInvalidTerm;
}

Dictionary& Dictionary::operator=(Dictionary&& other) {
  if (this == &other) return *this;
  terms_ = std::move(other.terms_);
  index_ = std::move(other.index_);
  key_storage_ = std::move(other.key_storage_);
  key_scratch_ = std::move(other.key_scratch_);
  indexed_ = other.indexed_;
  records_ = other.records_;
  arena_ = other.arena_;
  {
    // term_cache_ is guarded in the read path; the destination keeps its own
    // mutex and just takes the cached terms.
    std::lock_guard<std::mutex> lock(other.cache_mutex_);
    term_cache_ = std::move(other.term_cache_);
  }
  xsd_integer_ = other.xsd_integer_;
  xsd_double_ = other.xsd_double_;
  other.records_ = Span<ArenaRecord>();
  other.arena_ = Span<char>();
  other.indexed_ = true;
  other.xsd_integer_ = kInvalidTerm;
  other.xsd_double_ = kInvalidTerm;
  return *this;
}

void Dictionary::AppendKey(TermKind kind, std::string_view lexical,
                           TermId datatype, std::string_view language,
                           std::string* out) {
  out->clear();
  out->push_back(static_cast<char>('0' + static_cast<int>(kind)));
  out->append(lexical);
  out->push_back('\x01');
  // Fixed-width datatype encoding: appending digits via to_string would
  // allocate; four raw bytes are unambiguous and branch-free.
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((datatype >> shift) & 0xff));
  }
  out->push_back('\x01');
  out->append(language);
}

void Dictionary::EnsureIndexed() const {
  if (indexed_) return;
  // Borrowed dictionary, first Intern/Lookup: index every arena term. The
  // keys must own their bytes (the scratch buffer is reused), so this is the
  // one O(terms)-allocation step of a loaded dictionary — and it only runs
  // when somebody actually needs to intern or look up by value.
  for (TermId id = 1; id < records_.size(); ++id) {
    key_storage_.emplace_back();
    std::string* key = &key_storage_.back();
    AppendKey(KindOf(id), LexicalOf(id), DatatypeOf(id), LanguageOf(id), key);
    index_.emplace(std::string_view(*key), id);
  }
  indexed_ = true;
}

TermId Dictionary::Intern(const Term& term) {
  EnsureIndexed();
  AppendKey(term.kind, term.lexical, term.datatype, term.language, &key_scratch_);
  auto it = index_.find(std::string_view(key_scratch_));
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(records_.size() + terms_.size());
  terms_.push_back(term);
  key_storage_.push_back(key_scratch_);
  index_.emplace(std::string_view(key_storage_.back()), id);
  return id;
}

TermId Dictionary::InternInteger(int64_t v) {
  if (xsd_integer_ == kInvalidTerm) xsd_integer_ = InternIri(vocab::kXsdInteger);
  return Intern(Term::Literal(std::to_string(v), xsd_integer_));
}

TermId Dictionary::InternDouble(double v) {
  if (xsd_double_ == kInvalidTerm) xsd_double_ = InternIri(vocab::kXsdDouble);
  return Intern(Term::Literal(FormatDouble(v, 6), xsd_double_));
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  EnsureIndexed();
  // Local probe buffer: Lookup stays safe for concurrent readers of an
  // indexed dictionary (it is a cold path; Intern owns the scratch member).
  std::string key;
  AppendKey(term.kind, term.lexical, term.datatype, term.language, &key);
  auto it = index_.find(std::string_view(key));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Term& Dictionary::Get(TermId id) const {
  if (id >= records_.size()) {
    // Owned mode entirely (records_ is empty), or borrowed overflow.
    return terms_[id - records_.size()];
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = term_cache_.find(id);
  if (it == term_cache_.end()) {
    Term t;
    t.kind = KindOf(id);
    t.lexical = std::string(LexicalOf(id));
    t.datatype = DatatypeOf(id);
    t.language = std::string(LanguageOf(id));
    it = term_cache_.emplace(id, std::move(t)).first;
  }
  return it->second;
}

bool Dictionary::NumericValue(TermId id, double* out) const {
  if (id == kInvalidTerm || id > max_id()) return false;
  if (KindOf(id) != TermKind::kLiteral) return false;
  return ParseDouble(LexicalOf(id), out);
}

void Dictionary::AttachArena(Span<ArenaRecord> records, Span<char> arena) {
  records_ = records;
  arena_ = arena;
  terms_.clear();
  index_.clear();
  key_storage_.clear();
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    term_cache_.clear();
  }
  indexed_ = false;
  // Re-resolved through the lazy index if anything interns after the attach.
  xsd_integer_ = kInvalidTerm;
  xsd_double_ = kInvalidTerm;
}

}  // namespace spade
