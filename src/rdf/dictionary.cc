#include "src/rdf/dictionary.h"

#include "src/util/string_util.h"

namespace spade {

std::string Dictionary::Key(const Term& term) {
  std::string key;
  key.reserve(term.lexical.size() + term.language.size() + 12);
  key.push_back(static_cast<char>('0' + static_cast<int>(term.kind)));
  key += term.lexical;
  key.push_back('\x01');
  key += std::to_string(term.datatype);
  key.push_back('\x01');
  key += term.language;
  return key;
}

TermId Dictionary::Intern(const Term& term) {
  auto [it, inserted] = index_.try_emplace(Key(term), 0);
  if (!inserted) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  it->second = id;
  return id;
}

TermId Dictionary::InternInteger(int64_t v) {
  if (xsd_integer_ == kInvalidTerm) xsd_integer_ = InternIri(vocab::kXsdInteger);
  return Intern(Term::Literal(std::to_string(v), xsd_integer_));
}

TermId Dictionary::InternDouble(double v) {
  if (xsd_double_ == kInvalidTerm) xsd_double_ = InternIri(vocab::kXsdDouble);
  return Intern(Term::Literal(FormatDouble(v, 6), xsd_double_));
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(Key(term));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool Dictionary::NumericValue(TermId id, double* out) const {
  if (id == kInvalidTerm || id >= terms_.size()) return false;
  const Term& t = terms_[id];
  if (t.kind != TermKind::kLiteral) return false;
  return ParseDouble(t.lexical, out);
}

}  // namespace spade
