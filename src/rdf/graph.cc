#include "src/rdf/graph.h"

#include <algorithm>

namespace spade {

namespace {

struct OrderSPO {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct OrderPOS {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OrderOSP {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

}  // namespace

Graph::Graph() { rdf_type_ = dict_.InternIri(vocab::kRdfType); }

void Graph::Add(TermId s, TermId p, TermId o) {
  pending_.push_back({s, p, o});
  dirty_ = true;
}

void Graph::AddIri(const std::string& s, const std::string& p, const std::string& o) {
  Add(dict_.InternIri(s), dict_.InternIri(p), dict_.InternIri(o));
}

void Graph::AddLiteral(const std::string& s, const std::string& p,
                       const Term& literal) {
  Add(dict_.InternIri(s), dict_.InternIri(p), dict_.Intern(literal));
}

void Graph::Freeze() {
  if (!dirty_) return;
  if (borrowed_) {
    // Thaw: adding to a borrowed graph copies the borrowed triples once,
    // then the owned path takes over (the mapping itself stays read-only).
    spo_ = bspo_.ToVector();
    bspo_ = bpos_ = bosp_ = Span<Triple>();
    borrowed_ = false;
  }
  spo_.insert(spo_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  std::sort(spo_.begin(), spo_.end(), OrderSPO());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), OrderPOS());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OrderOSP());
  dirty_ = false;
}

void Graph::AttachTriples(Span<Triple> spo, Span<Triple> pos, Span<Triple> osp,
                          TermId rdf_type) {
  pending_.clear();
  spo_.clear();
  pos_.clear();
  osp_.clear();
  spo_.shrink_to_fit();
  pos_.shrink_to_fit();
  osp_.shrink_to_fit();
  bspo_ = spo;
  bpos_ = pos;
  bosp_ = osp;
  borrowed_ = true;
  dirty_ = false;
  rdf_type_ = rdf_type;
}

void Graph::StageDelta(std::vector<Triple> adds, std::vector<Triple> retracts,
                       GraphDelta* out) const {
  EnsureFrozen();
  auto sort_unique = [](std::vector<Triple>* v) {
    std::sort(v->begin(), v->end(), OrderSPO());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  sort_unique(&adds);
  sort_unique(&retracts);
  Span<Triple> cur = spo_view();
  // Adds win over retractions of the same triple within one batch.
  std::vector<Triple> net_retracts;
  net_retracts.reserve(retracts.size());
  std::set_difference(retracts.begin(), retracts.end(), adds.begin(),
                      adds.end(), std::back_inserter(net_retracts), OrderSPO());
  out->removed.clear();
  std::set_intersection(net_retracts.begin(), net_retracts.end(), cur.begin(),
                        cur.end(), std::back_inserter(out->removed),
                        OrderSPO());
  out->added.clear();
  std::set_difference(adds.begin(), adds.end(), cur.begin(), cur.end(),
                      std::back_inserter(out->added), OrderSPO());
  out->noop_adds = adds.size() - out->added.size();
  out->noop_retracts = retracts.size() - out->removed.size();
  // Each staged permutation is (base \ removed) merged with added, with the
  // (small) delta re-sorted per order. The subtraction and merge both
  // preserve sortedness and uniqueness, so the result is exactly what
  // Freeze() would build for the mutated triple set.
  auto stage_perm = [&](Span<Triple> base, auto order,
                        std::vector<Triple>* dst) {
    std::vector<Triple> rem = out->removed;
    std::vector<Triple> add = out->added;
    std::sort(rem.begin(), rem.end(), order);
    std::sort(add.begin(), add.end(), order);
    std::vector<Triple> kept;
    kept.reserve(base.size() - rem.size());
    std::set_difference(base.begin(), base.end(), rem.begin(), rem.end(),
                        std::back_inserter(kept), order);
    dst->clear();
    dst->reserve(kept.size() + add.size());
    std::merge(kept.begin(), kept.end(), add.begin(), add.end(),
               std::back_inserter(*dst), order);
  };
  stage_perm(spo_view(), OrderSPO(), &out->spo);
  stage_perm(pos_view(), OrderPOS(), &out->pos);
  stage_perm(osp_view(), OrderOSP(), &out->osp);
}

void Graph::CommitDelta(GraphDelta&& staged) noexcept {
  spo_.swap(staged.spo);
  pos_.swap(staged.pos);
  osp_.swap(staged.osp);
  pending_.clear();
  bspo_ = bpos_ = bosp_ = Span<Triple>();
  borrowed_ = false;
  dirty_ = false;
}

void Graph::EnsureFrozen() const { const_cast<Graph*>(this)->Freeze(); }

size_t Graph::NumTriples() const {
  EnsureFrozen();
  return spo_view().size();
}

Span<Triple> Graph::triples() const {
  EnsureFrozen();
  return spo_view();
}

Span<Triple> Graph::triples_pos() const {
  EnsureFrozen();
  return pos_view();
}

Span<Triple> Graph::triples_osp() const {
  EnsureFrozen();
  return osp_view();
}

bool Graph::Contains(TermId s, TermId p, TermId o) const {
  EnsureFrozen();
  Span<Triple> spo = spo_view();
  Triple probe{s, p, o};
  return std::binary_search(spo.begin(), spo.end(), probe, OrderSPO());
}

void Graph::Match(TermId s, TermId p, TermId o,
                  const std::function<void(const Triple&)>& fn) const {
  EnsureFrozen();
  // Choose the index by bound positions; each branch scans a contiguous range
  // and post-filters remaining bound positions (at most one wildcard gap).
  Span<Triple> spo = spo_view();
  if (s != kInvalidTerm) {
    auto lo = std::lower_bound(spo.begin(), spo.end(), Triple{s, 0, 0}, OrderSPO());
    for (auto it = lo; it != spo.end() && it->s == s; ++it) {
      if (p != kInvalidTerm && it->p != p) continue;
      if (o != kInvalidTerm && it->o != o) continue;
      fn(*it);
    }
    return;
  }
  if (p != kInvalidTerm) {
    Span<Triple> pos = pos_view();
    auto lo = std::lower_bound(pos.begin(), pos.end(), Triple{0, p, 0}, OrderPOS());
    for (auto it = lo; it != pos.end() && it->p == p; ++it) {
      if (o != kInvalidTerm && it->o != o) continue;
      fn(*it);
    }
    return;
  }
  if (o != kInvalidTerm) {
    Span<Triple> osp = osp_view();
    auto lo = std::lower_bound(osp.begin(), osp.end(), Triple{0, 0, o}, OrderOSP());
    for (auto it = lo; it != osp.end() && it->o == o; ++it) {
      fn(*it);
    }
    return;
  }
  for (const Triple& t : spo) fn(t);
}

std::vector<TermId> Graph::Objects(TermId s, TermId p) const {
  EnsureFrozen();
  std::vector<TermId> out;
  Span<Triple> spo = spo_view();
  auto lo = std::lower_bound(spo.begin(), spo.end(), Triple{s, p, 0}, OrderSPO());
  for (auto it = lo; it != spo.end() && it->s == s && it->p == p; ++it) {
    out.push_back(it->o);
  }
  return out;
}

std::vector<TermId> Graph::Subjects(TermId p, TermId o) const {
  EnsureFrozen();
  std::vector<TermId> out;
  Span<Triple> pos = pos_view();
  auto lo = std::lower_bound(pos.begin(), pos.end(), Triple{0, p, o}, OrderPOS());
  for (auto it = lo; it != pos.end() && it->p == p && it->o == o; ++it) {
    out.push_back(it->s);
  }
  return out;
}

std::vector<TermId> Graph::PropertiesOf(TermId s) const {
  EnsureFrozen();
  std::vector<TermId> out;
  Span<Triple> spo = spo_view();
  auto lo = std::lower_bound(spo.begin(), spo.end(), Triple{s, 0, 0}, OrderSPO());
  for (auto it = lo; it != spo.end() && it->s == s; ++it) {
    if (out.empty() || out.back() != it->p) out.push_back(it->p);
  }
  return out;
}

std::vector<TermId> Graph::AllProperties() const {
  EnsureFrozen();
  std::vector<TermId> out;
  for (const Triple& t : pos_view()) {
    if (out.empty() || out.back() != t.p) out.push_back(t.p);
  }
  return out;
}

std::vector<TermId> Graph::AllSubjects() const {
  EnsureFrozen();
  std::vector<TermId> out;
  for (const Triple& t : spo_view()) {
    if (out.empty() || out.back() != t.s) out.push_back(t.s);
  }
  return out;
}

std::vector<TermId> Graph::AllTypes() const {
  EnsureFrozen();
  std::vector<TermId> out;
  Span<Triple> pos = pos_view();
  auto lo = std::lower_bound(pos.begin(), pos.end(), Triple{0, rdf_type_, 0},
                             OrderPOS());
  for (auto it = lo; it != pos.end() && it->p == rdf_type_; ++it) {
    if (out.empty() || out.back() != it->o) out.push_back(it->o);
  }
  return out;
}

std::vector<TermId> Graph::NodesOfType(TermId type) const {
  return Subjects(rdf_type_, type);
}

}  // namespace spade
