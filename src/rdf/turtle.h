#ifndef SPADE_RDF_TURTLE_H_
#define SPADE_RDF_TURTLE_H_

#include <istream>
#include <string_view>

#include "src/rdf/graph.h"
#include "src/util/status.h"

namespace spade {

/// \brief Turtle (Terse RDF Triple Language) reader.
///
/// The paper's datasets circulate both as N-Triples dumps and as Turtle
/// (e.g. the Nobel endpoint); this parser covers the Turtle constructs those
/// files use:
///   - @prefix / @base directives (and the SPARQL-style PREFIX/BASE),
///   - prefixed names (ex:name) and relative IRIs resolved against the base,
///   - predicate lists (`;`) and object lists (`,`),
///   - `a` as rdf:type,
///   - literals with escapes, language tags, datatypes, and the long-string
///     `"""..."""` form; bare integers, decimals, and booleans,
///   - blank node labels (_:b) and anonymous blank nodes `[]`, including
///     property lists `[ p o ; q r ]`,
///   - RDF collections `( a b c )`, expanded to rdf:first/rdf:rest chains,
///   - comments.
///
/// Not supported (absent from the target data): @forSome/@forAll (N3),
/// reification syntax, RDF-star.
class TurtleReader {
 public:
  /// Parse a whole document into `graph`. On error, names the line.
  static Status Parse(std::istream& in, Graph* graph);
  static Status ParseString(std::string_view text, Graph* graph);
};

/// RDF collection vocabulary (used by the expansion of `( ... )`).
namespace vocab {
inline constexpr const char* kRdfFirst =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
inline constexpr const char* kRdfRest =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
inline constexpr const char* kRdfNil =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
inline constexpr const char* kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
}  // namespace vocab

}  // namespace spade

#endif  // SPADE_RDF_TURTLE_H_
