#ifndef SPADE_RDF_TURTLE_H_
#define SPADE_RDF_TURTLE_H_

#include <istream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/rdf/graph.h"
#include "src/util/status.h"

namespace spade {

/// \brief Turtle (Terse RDF Triple Language) reader.
///
/// The paper's datasets circulate both as N-Triples dumps and as Turtle
/// (e.g. the Nobel endpoint); this parser covers the Turtle constructs those
/// files use:
///   - @prefix / @base directives (and the SPARQL-style PREFIX/BASE),
///   - prefixed names (ex:name) and relative IRIs resolved against the base,
///   - predicate lists (`;`) and object lists (`,`),
///   - `a` as rdf:type,
///   - literals with escapes, language tags, datatypes, and the long-string
///     `"""..."""` form; bare integers, decimals, and booleans,
///   - blank node labels (_:b) and anonymous blank nodes `[]`, including
///     property lists `[ p o ; q r ]`,
///   - RDF collections `( a b c )`, expanded to rdf:first/rdf:rest chains,
///   - comments.
///
/// Not supported (absent from the target data): @forSome/@forAll (N3),
/// reification syntax, RDF-star.
class TurtleReader {
 public:
  /// Parse a whole document into `graph`. On error, names the line.
  static Status Parse(std::istream& in, Graph* graph);
  static Status ParseString(std::string_view text, Graph* graph);
};

/// \brief Pull-based Turtle reader: the streaming-ingest counterpart of
/// TurtleReader (whose one-shot parse runs on the same statement parser, so
/// the two paths cannot drift).
///
/// Turtle is not line-oriented — statements span lines, and @prefix/@base
/// directives scope over everything after them — so the chunk unit is the
/// *statement*: NextChunk() parses whole statements until at least
/// `max_triples` triples have been produced. A chunk boundary therefore
/// never splits a directive or a statement; a single statement that expands
/// to more triples than the budget (object lists, collections, nested blank
/// nodes) overflows its chunk rather than being torn. Prefixes declared in
/// one chunk stay in force for all later chunks.
///
/// The reader owns the document text (Turtle needs lookahead; the paper's
/// Turtle dumps are the small ones — the DBpedia-scale inputs circulate as
/// line-oriented N-Triples, which stream without buffering). Terms are
/// interned into `graph->dict()` in document order, matching the one-shot
/// parse; triples are returned to the caller, not added to the graph.
/// Errors carry absolute line numbers and latch: after a ParseError the
/// stream stays failed.
class TurtleChunkReader {
 public:
  /// `graph` is borrowed and must outlive the reader; `text` is owned.
  TurtleChunkReader(std::string text, Graph* graph);
  ~TurtleChunkReader();

  /// Parse whole statements into `out` (cleared first) until it holds at
  /// least `max_triples` triples or the document ends; sets *done at the
  /// end of the document (the final batch may arrive together with done).
  Status NextChunk(size_t max_triples, std::vector<Triple>* out, bool* done);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RDF collection vocabulary (used by the expansion of `( ... )`).
namespace vocab {
inline constexpr const char* kRdfFirst =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
inline constexpr const char* kRdfRest =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
inline constexpr const char* kRdfNil =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
inline constexpr const char* kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
}  // namespace vocab

}  // namespace spade

#endif  // SPADE_RDF_TURTLE_H_
