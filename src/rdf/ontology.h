#ifndef SPADE_RDF_ONTOLOGY_H_
#define SPADE_RDF_ONTOLOGY_H_

#include <cstddef>

#include "src/rdf/graph.h"

namespace spade {

/// \brief RDFS saturation (Section 2).
///
/// The paper assumes the input graph's implicit triples are materialized
/// before analysis ("we consider ontologies for which this process is finite
/// as in [23], and apply it prior to our analysis"). Saturate() forward-chains
/// the four RDFS entailment rules that matter for aggregate discovery until a
/// fixpoint:
///
///   rdfs5  (p1 subPropertyOf p2) (p2 subPropertyOf p3) -> p1 subPropertyOf p3
///   rdfs7  (s p1 o) (p1 subPropertyOf p2)              -> (s p2 o)
///   rdfs9  (s type c1) (c1 subClassOf c2)              -> (s type c2)
///   rdfs11 (c1 subClassOf c2) (c2 subClassOf c3)       -> c1 subClassOf c3
///   rdfs2  (s p o) (p domain c)                        -> (s type c)
///   rdfs3  (s p o) (p range c), o an IRI/blank         -> (o type c)
///
/// Returns the number of triples added. The fixpoint exists because rules
/// only add triples over the finite term vocabulary.
size_t Saturate(Graph* graph);

}  // namespace spade

#endif  // SPADE_RDF_ONTOLOGY_H_
