#include "src/rdf/turtle.h"

#include <cctype>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>

#include "src/util/string_util.h"

namespace spade {

namespace {

/// Character-level parser over the whole document (Turtle is not
/// line-oriented: statements span lines freely). Parsed triples are emitted
/// into a caller-owned buffer, not the graph: the one-shot reader drains the
/// whole document and adds them itself, the chunk reader hands batches to
/// the ingest pipeline. Parsing can be suspended at any statement boundary
/// (ParseSome) and resumed — prefixes, the base IRI and the blank-node
/// counter persist across calls.
class TurtleParser {
 public:
  TurtleParser(std::string_view text, Graph* graph)
      : text_(text), graph_(graph), dict_(&graph->dict()) {}

  /// Parse whole statements into `out` until it holds >= max_triples
  /// triples or the document ends (*done). Errors latch.
  Status ParseSome(size_t max_triples, std::vector<Triple>* out, bool* done) {
    out_ = out;
    if (!error_.ok()) {  // latched: the stream ended at the error
      *done = true;
      return error_;
    }
    *done = false;
    while (out->size() < max_triples) {
      SkipWs();
      if (AtEnd()) {
        *done = true;
        break;
      }
      Status st = ParseStatement();
      if (!st.ok()) {
        error_ = st;
        *done = true;
        return error_;
      }
    }
    return Status::OK();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead >= text_.size() ? '\0' : text_[pos_ + ahead];
  }

  void SkipWs() {
    while (!AtEnd()) {
      char c = text_[pos_];
      if (c == '#') {
        while (!AtEnd() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line_;
        ++pos_;
      } else {
        break;
      }
    }
  }

  Status Err(const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line_) + ": " + msg);
  }

  bool ConsumeKeyword(const char* kw) {
    size_t len = std::strlen(kw);
    if (pos_ + len > text_.size()) return false;
    for (size_t i = 0; i < len; ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    // Keyword must not continue as a name.
    char next = PeekAt(len);
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
      return false;
    }
    pos_ += len;
    return true;
  }

  Status ParseStatement() {
    if (Peek() == '@') {
      ++pos_;
      if (ConsumeKeyword("prefix")) return ParsePrefix(/*dotted=*/true);
      if (ConsumeKeyword("base")) return ParseBase(/*dotted=*/true);
      return Err("unknown @directive");
    }
    // SPARQL-style directives (no trailing dot).
    size_t save = pos_;
    if (ConsumeKeyword("prefix")) return ParsePrefix(/*dotted=*/false);
    pos_ = save;
    if (ConsumeKeyword("base")) return ParseBase(/*dotted=*/false);
    pos_ = save;
    return ParseTriples();
  }

  Status ParsePrefix(bool dotted) {
    SkipWs();
    // prefix name up to ':'.
    size_t start = pos_;
    while (!AtEnd() && text_[pos_] != ':' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    SkipWs();
    if (Peek() != ':') return Err("expected ':' in prefix declaration");
    ++pos_;
    SkipWs();
    std::string iri;
    SPADE_RETURN_NOT_OK(ParseIriRef(&iri));
    prefixes_[name] = iri;
    if (dotted) {
      SkipWs();
      if (Peek() != '.') return Err("expected '.' after @prefix");
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseBase(bool dotted) {
    SkipWs();
    SPADE_RETURN_NOT_OK(ParseIriRef(&base_));
    if (dotted) {
      SkipWs();
      if (Peek() != '.') return Err("expected '.' after @base");
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseIriRef(std::string* out) {
    if (Peek() != '<') return Err("expected IRI");
    size_t close = text_.find('>', pos_ + 1);
    if (close == std::string_view::npos) return Err("unclosed IRI");
    std::string raw(text_.substr(pos_ + 1, close - pos_ - 1));
    pos_ = close + 1;
    // Resolve relative IRIs against @base (string prefixing is all the
    // target data needs; full RFC 3986 resolution is out of scope).
    if (!base_.empty() && raw.find("://") == std::string::npos &&
        !StartsWith(raw, "urn:") && !StartsWith(raw, "mailto:")) {
      raw = base_ + raw;
    }
    *out = std::move(raw);
    return Status::OK();
  }

  Status ParseTriples() {
    TermId subject;
    if (Peek() == '[') {
      SPADE_RETURN_NOT_OK(ParseBlankNodePropertyList(&subject));
      SkipWs();
      // `[ ... ] .` is a valid statement on its own.
      if (Peek() == '.') {
        ++pos_;
        return Status::OK();
      }
    } else {
      SPADE_RETURN_NOT_OK(ParseTerm(/*as_subject=*/true, &subject));
    }
    SPADE_RETURN_NOT_OK(ParsePredicateObjectList(subject));
    SkipWs();
    if (Peek() != '.') return Err("expected '.' at end of statement");
    ++pos_;
    return Status::OK();
  }

  Status ParsePredicateObjectList(TermId subject) {
    while (true) {
      SkipWs();
      TermId predicate;
      if (Peek() == 'a' &&
          (std::isspace(static_cast<unsigned char>(PeekAt(1))) ||
           PeekAt(1) == '<' || PeekAt(1) == '[' || PeekAt(1) == '_')) {
        ++pos_;
        predicate = graph_->rdf_type();
      } else {
        SPADE_RETURN_NOT_OK(ParseTerm(/*as_subject=*/true, &predicate));
        if (dict_->Get(predicate).kind != TermKind::kIri) {
          return Err("predicate must be an IRI");
        }
      }
      // Object list.
      while (true) {
        SkipWs();
        TermId object;
        SPADE_RETURN_NOT_OK(ParseObject(&object));
        Emit(subject, predicate, object);
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipWs();
      if (Peek() == ';') {
        ++pos_;
        SkipWs();
        // Trailing ';' before '.' is legal Turtle.
        if (Peek() == '.' || Peek() == ']') break;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseObject(TermId* out) {
    char c = Peek();
    if (c == '[') return ParseBlankNodePropertyList(out);
    if (c == '(') return ParseCollection(out);
    return ParseTerm(/*as_subject=*/false, out);
  }

  Status ParseBlankNodePropertyList(TermId* out) {
    ++pos_;  // over '['
    TermId node = dict_->InternBlank("anon" + std::to_string(next_anon_++));
    SkipWs();
    if (Peek() != ']') {
      SPADE_RETURN_NOT_OK(ParsePredicateObjectList(node));
      SkipWs();
    }
    if (Peek() != ']') return Err("expected ']'");
    ++pos_;
    *out = node;
    return Status::OK();
  }

  Status ParseCollection(TermId* out) {
    ++pos_;  // over '('
    TermId first = dict_->InternIri(vocab::kRdfFirst);
    TermId rest = dict_->InternIri(vocab::kRdfRest);
    TermId nil = dict_->InternIri(vocab::kRdfNil);
    TermId head = nil;
    TermId tail = kInvalidTerm;
    while (true) {
      SkipWs();
      if (Peek() == ')') {
        ++pos_;
        break;
      }
      if (AtEnd()) return Err("unterminated collection");
      TermId item;
      SPADE_RETURN_NOT_OK(ParseObject(&item));
      TermId cell = dict_->InternBlank("list" + std::to_string(next_anon_++));
      Emit(cell, first, item);
      if (tail == kInvalidTerm) {
        head = cell;
      } else {
        Emit(tail, rest, cell);
      }
      tail = cell;
    }
    if (tail != kInvalidTerm) Emit(tail, rest, nil);
    *out = head;
    return Status::OK();
  }

  // IRIs, prefixed names, blank labels, literals, numbers, booleans.
  Status ParseTerm(bool as_subject, TermId* out) {
    SkipWs();
    char c = Peek();
    if (c == '<') {
      std::string iri;
      SPADE_RETURN_NOT_OK(ParseIriRef(&iri));
      *out = dict_->InternIri(iri);
      return Status::OK();
    }
    if (c == '_') {
      if (PeekAt(1) != ':') return Err("bad blank node");
      pos_ += 2;
      size_t start = pos_;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_' || Peek() == '-')) {
        ++pos_;
      }
      *out = dict_->InternBlank(std::string(text_.substr(start, pos_ - start)));
      return Status::OK();
    }
    if (c == '"' || c == '\'') {
      if (as_subject) return Err("literal not allowed as subject/predicate");
      return ParseLiteral(out);
    }
    if (!as_subject &&
        (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-')) {
      return ParseNumber(out);
    }
    if (!as_subject && (ConsumeKeyword("true"))) {
      *out = dict_->Intern(Term::Literal("true", dict_->InternIri(vocab::kXsdBoolean)));
      return Status::OK();
    }
    if (!as_subject && (ConsumeKeyword("false"))) {
      *out = dict_->Intern(
          Term::Literal("false", dict_->InternIri(vocab::kXsdBoolean)));
      return Status::OK();
    }
    return ParsePrefixedName(out);
  }

  Status ParsePrefixedName(TermId* out) {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.')) {
      ++pos_;
    }
    if (Peek() != ':') return Err("expected a term");
    std::string prefix(text_.substr(start, pos_ - start));
    ++pos_;  // over ':'
    size_t lstart = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.' ||
                        Peek() == '/')) {
      ++pos_;
    }
    // A trailing '.' terminates the statement, not the name.
    while (pos_ > lstart && text_[pos_ - 1] == '.') --pos_;
    std::string local(text_.substr(lstart, pos_ - lstart));
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) return Err("unknown prefix '" + prefix + "'");
    *out = dict_->InternIri(it->second + local);
    return Status::OK();
  }

  Status ParseLiteral(TermId* out) {
    char quote = Peek();
    bool long_form = PeekAt(1) == quote && PeekAt(2) == quote;
    pos_ += long_form ? 3 : 1;
    std::string lex;
    while (true) {
      if (AtEnd()) return Err("unterminated literal");
      char c = text_[pos_];
      if (c == quote) {
        if (!long_form) {
          ++pos_;
          break;
        }
        // Long form: `"""` terminates, but quotes directly before the
        // terminator belong to the content (`""""` = one quote + close).
        if (PeekAt(1) == quote && PeekAt(2) == quote && PeekAt(3) != quote) {
          pos_ += 3;
          break;
        }
        lex.push_back(c);
        ++pos_;
        continue;
      }
      if (c == '\\') {
        char e = PeekAt(1);
        pos_ += 2;
        switch (e) {
          case 't':
            lex.push_back('\t');
            break;
          case 'n':
            lex.push_back('\n');
            break;
          case 'r':
            lex.push_back('\r');
            break;
          case '"':
            lex.push_back('"');
            break;
          case '\'':
            lex.push_back('\'');
            break;
          case '\\':
            lex.push_back('\\');
            break;
          case 'u':
          case 'U': {
            size_t n = (e == 'u') ? 4 : 8;
            uint32_t cp = 0;
            for (size_t k = 0; k < n; ++k) {
              char h = Peek();
              uint32_t v;
              if (h >= '0' && h <= '9') {
                v = static_cast<uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                v = static_cast<uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                v = static_cast<uint32_t>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
              cp = (cp << 4) | v;
              ++pos_;
            }
            // UTF-8 encode.
            if (cp <= 0x7f) {
              lex.push_back(static_cast<char>(cp));
            } else if (cp <= 0x7ff) {
              lex.push_back(static_cast<char>(0xc0 | (cp >> 6)));
              lex.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else if (cp <= 0xffff) {
              lex.push_back(static_cast<char>(0xe0 | (cp >> 12)));
              lex.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
              lex.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
              lex.push_back(static_cast<char>(0xf0 | (cp >> 18)));
              lex.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
              lex.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
              lex.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default:
            return Err(std::string("unknown escape \\") + e);
        }
        continue;
      }
      if (c == '\n') {
        if (!long_form) return Err("newline in short literal");
        ++line_;
      }
      lex.push_back(c);
      ++pos_;
    }
    // Language tag or datatype.
    TermId datatype = kInvalidTerm;
    std::string lang;
    if (Peek() == '@') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '-')) {
        ++pos_;
      }
      lang = std::string(text_.substr(start, pos_ - start));
    } else if (Peek() == '^' && PeekAt(1) == '^') {
      pos_ += 2;
      TermId dt_term;
      SPADE_RETURN_NOT_OK(ParseTerm(/*as_subject=*/true, &dt_term));
      datatype = dt_term;
    }
    *out = dict_->Intern(Term::Literal(std::move(lex), datatype, std::move(lang)));
    return Status::OK();
  }

  Status ParseNumber(TermId* out) {
    size_t start = pos_;
    if (Peek() == '+' || Peek() == '-') ++pos_;
    bool has_dot = false, has_exp = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !has_dot &&
                 std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
        has_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !has_exp) {
        has_exp = true;
        ++pos_;
        if (Peek() == '+' || Peek() == '-') ++pos_;
      } else {
        break;
      }
    }
    std::string lex(text_.substr(start, pos_ - start));
    const char* dt = has_dot || has_exp ? spade::vocab::kXsdDouble
                                        : spade::vocab::kXsdInteger;
    *out = dict_->Intern(Term::Literal(std::move(lex), dict_->InternIri(dt)));
    return Status::OK();
  }

  void Emit(TermId s, TermId p, TermId o) { out_->push_back(Triple{s, p, o}); }

  std::string_view text_;
  Graph* graph_;
  Dictionary* dict_;
  std::vector<Triple>* out_ = nullptr;  ///< valid during ParseSome
  size_t pos_ = 0;
  size_t line_ = 1;
  std::string base_;
  std::map<std::string, std::string> prefixes_;
  size_t next_anon_ = 0;
  Status error_ = Status::OK();  ///< latched first parse error
};

}  // namespace

Status TurtleReader::Parse(std::istream& in, Graph* graph) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseString(buffer.str(), graph);
}

Status TurtleReader::ParseString(std::string_view text, Graph* graph) {
  TurtleParser parser(text, graph);
  std::vector<Triple> triples;
  bool done = false;
  SPADE_RETURN_NOT_OK(
      parser.ParseSome(std::numeric_limits<size_t>::max(), &triples, &done));
  for (const Triple& t : triples) graph->Add(t);
  graph->Freeze();
  return Status::OK();
}

struct TurtleChunkReader::Impl {
  // The parser views `text`, so the member order matters: text first.
  std::string text;
  TurtleParser parser;
  Impl(std::string t, Graph* graph) : text(std::move(t)), parser(text, graph) {}
};

TurtleChunkReader::TurtleChunkReader(std::string text, Graph* graph)
    : impl_(std::make_unique<Impl>(std::move(text), graph)) {}

TurtleChunkReader::~TurtleChunkReader() = default;

Status TurtleChunkReader::NextChunk(size_t max_triples,
                                    std::vector<Triple>* out, bool* done) {
  out->clear();
  return impl_->parser.ParseSome(max_triples, out, done);
}

}  // namespace spade
