#ifndef SPADE_RDF_TERM_H_
#define SPADE_RDF_TERM_H_

#include <cstdint>
#include <string>

namespace spade {

/// Dictionary-encoded identifier of an RDF term. Id 0 is reserved as
/// "invalid / no term".
using TermId = uint32_t;

constexpr TermId kInvalidTerm = 0;

/// RDF term kinds (Section 2: U, L, B).
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// \brief One RDF term: an IRI, a literal (with optional datatype IRI and
/// language tag), or a blank node label.
///
/// Terms are immutable once interned in a Dictionary; all graph processing
/// manipulates TermIds and only goes back to the Term for value inspection
/// (statistics, derivations) and output.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI string, literal lexical form, or blank node label.
  std::string lexical;
  /// Datatype IRI id for literals (kInvalidTerm = plain literal).
  TermId datatype = kInvalidTerm;
  /// BCP-47 language tag for literals ("" = none).
  std::string language;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype && language == other.language;
  }

  static Term Iri(std::string iri) {
    Term t;
    t.kind = TermKind::kIri;
    t.lexical = std::move(iri);
    return t;
  }
  static Term Literal(std::string lex, TermId datatype = kInvalidTerm,
                      std::string lang = "") {
    Term t;
    t.kind = TermKind::kLiteral;
    t.lexical = std::move(lex);
    t.datatype = datatype;
    t.language = std::move(lang);
    return t;
  }
  static Term Blank(std::string label) {
    Term t;
    t.kind = TermKind::kBlank;
    t.lexical = std::move(label);
    return t;
  }
};

/// One RDF triple of dictionary-encoded terms.
struct Triple {
  TermId s = kInvalidTerm;
  TermId p = kInvalidTerm;
  TermId o = kInvalidTerm;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// Well-known vocabulary IRIs used by the analysis.
namespace vocab {
inline constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr const char* kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr const char* kRdfsSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr const char* kRdfsDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr const char* kRdfsRange =
    "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr const char* kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr const char* kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr const char* kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr const char* kXsdDate =
    "http://www.w3.org/2001/XMLSchema#date";
}  // namespace vocab

/// Short human-readable rendering ("<iri>", "\"lit\"", "_:b"). Used by
/// examples and error messages; N-Triples serialization lives in ntriples.h.
std::string TermToString(const Term& term);

}  // namespace spade

#endif  // SPADE_RDF_TERM_H_
