#ifndef SPADE_RDF_NTRIPLES_H_
#define SPADE_RDF_NTRIPLES_H_

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "src/rdf/graph.h"
#include "src/util/status.h"

namespace spade {

/// \brief N-Triples reader/writer (the format of the paper's dataset dumps).
///
/// Supports the full line-oriented N-Triples grammar needed in practice:
/// IRIs, blank nodes, plain / typed / language-tagged literals, the string
/// escapes \" \\ \n \r \t \b \f and \uXXXX / \UXXXXXXXX (decoded to UTF-8),
/// comments (#...) and blank lines.
class NTriplesReader {
 public:
  /// Parse an entire stream into `graph`. Stops at the first malformed line
  /// with a ParseError naming the line number.
  static Status Parse(std::istream& in, Graph* graph);

  /// Parse a string (convenience for tests and generators).
  static Status ParseString(std::string_view text, Graph* graph);

  /// Parse one line into s/p/o Terms. Returns NotFound for blank/comment
  /// lines (no triple), ParseError on bad syntax.
  static Status ParseLine(std::string_view line, Term* s, Term* p, Term* o,
                          const Dictionary& dict_for_datatypes, Dictionary* dict);
};

class NTriplesWriter {
 public:
  /// Serialize the whole graph, one triple per line, escaping literals.
  static void Write(const Graph& graph, std::ostream& out);

  /// Serialize one term in N-Triples syntax.
  static std::string FormatTerm(const Dictionary& dict, TermId id);
};

}  // namespace spade

#endif  // SPADE_RDF_NTRIPLES_H_
