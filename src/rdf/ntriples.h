#ifndef SPADE_RDF_NTRIPLES_H_
#define SPADE_RDF_NTRIPLES_H_

#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/rdf/graph.h"
#include "src/util/status.h"

namespace spade {

/// \brief N-Triples reader/writer (the format of the paper's dataset dumps).
///
/// Supports the full line-oriented N-Triples grammar needed in practice:
/// IRIs, blank nodes, plain / typed / language-tagged literals, the string
/// escapes \" \\ \n \r \t \b \f and \uXXXX / \UXXXXXXXX (decoded to UTF-8),
/// comments (#...) and blank lines.
class NTriplesReader {
 public:
  /// Parse an entire stream into `graph`. Stops at the first malformed line
  /// with a ParseError naming the line number.
  static Status Parse(std::istream& in, Graph* graph);

  /// Parse a string (convenience for tests and generators).
  static Status ParseString(std::string_view text, Graph* graph);

  /// Parse one line into s/p/o Terms. Returns NotFound for blank/comment
  /// lines (no triple), ParseError on bad syntax.
  static Status ParseLine(std::string_view line, Term* s, Term* p, Term* o,
                          const Dictionary& dict_for_datatypes, Dictionary* dict);
};

/// \brief Pull-based N-Triples reader: the streaming-ingest counterpart of
/// NTriplesReader::Parse (which is itself implemented on top of this class,
/// so the two paths cannot drift).
///
/// Each NextChunk() call parses up to `max_triples` triples, interning their
/// terms into `graph->dict()` in document order — the same interning order
/// the one-shot parse produces, which is what makes a streamed build
/// byte-identical to a sequential one (TermIds are assigned by first
/// appearance). The reader does NOT add triples to the graph; the caller
/// (the ingest pipeline, or Parse) owns that, so chunks can be handed to
/// worker tasks while the next chunk parses.
///
/// Errors stop the stream at the offending line with a ParseError naming the
/// absolute line number, no matter how many chunks preceded it.
class NTriplesChunkReader {
 public:
  /// `in` and `graph` are borrowed and must outlive the reader.
  NTriplesChunkReader(std::istream& in, Graph* graph)
      : in_(&in), graph_(graph) {}

  /// Parse up to `max_triples` more triples into `out` (cleared first).
  /// Sets *done = true once the stream is exhausted — the final batch may
  /// arrive together with done, and a comment-only tail yields an empty
  /// final chunk. A ParseError ends the stream (further calls re-fail).
  Status NextChunk(size_t max_triples, std::vector<Triple>* out, bool* done);

  /// Lines consumed so far (error messages use absolute line numbers).
  size_t line_number() const { return lineno_; }

 private:
  std::istream* in_;
  Graph* graph_;
  std::string line_;
  size_t lineno_ = 0;
  bool done_ = false;
  Status error_ = Status::OK();
};

class NTriplesWriter {
 public:
  /// Serialize the whole graph, one triple per line, escaping literals.
  static void Write(const Graph& graph, std::ostream& out);

  /// Serialize one term in N-Triples syntax.
  static std::string FormatTerm(const Dictionary& dict, TermId id);
};

}  // namespace spade

#endif  // SPADE_RDF_NTRIPLES_H_
