#include "src/rdf/csv2rdf.h"

#include <sstream>

#include "src/util/string_util.h"

namespace spade {

Result<std::vector<std::string>> SplitCsvRecord(std::string_view line,
                                                char separator) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("quote inside unquoted field");
      }
      in_quotes = true;
    } else if (c == separator) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // CRLF line end.
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

Result<size_t> CsvToRdf(std::istream& in, const Csv2RdfOptions& options,
                        Graph* graph) {
  Dictionary& dict = graph->dict();
  TermId row_type = dict.InternIri(options.base_iri + options.row_type);

  std::string line;
  std::vector<TermId> columns;
  size_t lineno = 0;
  size_t rows = 0;
  bool have_header = false;

  auto make_columns = [&](const std::vector<std::string>& names) {
    columns.clear();
    for (const std::string& raw : names) {
      // Sanitize the column name into an IRI-safe local name.
      std::string local;
      for (char c : raw) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
          local.push_back(c);
        } else if (c == ' ' || c == '-' || c == '_') {
          local.push_back('_');
        }
      }
      if (local.empty()) local = "col" + std::to_string(columns.size());
      columns.push_back(dict.InternIri(options.base_iri + local));
    }
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (Trim(line).empty()) continue;
    Result<std::vector<std::string>> fields =
        SplitCsvRecord(line, options.separator);
    if (!fields.ok()) {
      return Status::ParseError("line " + std::to_string(lineno) + ": " +
                                fields.status().message());
    }
    if (options.header && !have_header) {
      make_columns(*fields);
      have_header = true;
      continue;
    }
    if (columns.empty()) {
      std::vector<std::string> names;
      for (size_t c = 0; c < fields->size(); ++c) {
        names.push_back("col" + std::to_string(c));
      }
      make_columns(names);
    }
    if (fields->size() != columns.size()) {
      return Status::ParseError(
          "line " + std::to_string(lineno) + ": expected " +
          std::to_string(columns.size()) + " fields, got " +
          std::to_string(fields->size()));
    }
    TermId row =
        dict.InternIri(options.base_iri + "row/" + std::to_string(rows));
    graph->Add(row, graph->rdf_type(), row_type);
    for (size_t c = 0; c < fields->size(); ++c) {
      const std::string& value = (*fields)[c];
      if (options.skip_empty && Trim(value).empty()) continue;
      TermId object;
      int64_t iv;
      double dv;
      if (options.type_numeric_columns && ParseInt64(value, &iv)) {
        object = dict.InternInteger(iv);
      } else if (options.type_numeric_columns && ParseDouble(value, &dv)) {
        object = dict.InternDouble(dv);
      } else {
        object = dict.InternString(std::string(Trim(value)));
      }
      graph->Add(row, columns[c], object);
    }
    ++rows;
  }
  graph->Freeze();
  return rows;
}

Result<size_t> CsvToRdfString(std::string_view text,
                              const Csv2RdfOptions& options, Graph* graph) {
  std::istringstream in{std::string(text)};
  return CsvToRdf(in, options, graph);
}

}  // namespace spade
