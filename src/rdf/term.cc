#include "src/rdf/term.h"

namespace spade {

std::string TermToString(const Term& term) {
  switch (term.kind) {
    case TermKind::kIri:
      return "<" + term.lexical + ">";
    case TermKind::kLiteral:
      if (!term.language.empty()) return "\"" + term.lexical + "\"@" + term.language;
      return "\"" + term.lexical + "\"";
    case TermKind::kBlank:
      return "_:" + term.lexical;
  }
  return "?";
}

}  // namespace spade
