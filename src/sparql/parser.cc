#include "src/sparql/parser.h"

#include <cctype>
#include <map>

#include "src/util/string_util.h"

namespace spade {
namespace sparql {

namespace {

enum class TokKind {
  kEnd,
  kKeyword,   // upper-cased identifier: SELECT, WHERE, ...
  kVar,       // ?name
  kIri,       // <...>
  kPname,     // prefix:local (or plain identifier such as 'a')
  kLiteral,   // "..." with optional @lang / ^^<dt>
  kNumber,    // integer or decimal
  kPunct,     // { } ( ) . / * = != < <= > >= ,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;    // keyword/pname/var name/punct spelling
  Term term;           // for kIri / kLiteral
  double num = 0;      // for kNumber
  bool is_integer = false;
  size_t pos = 0;
};

class Lexer {
 public:
  Lexer(std::string_view text, Dictionary* dict) : text_(text), dict_(dict) {}

  Status Next(Token* out) {
    SkipWs();
    out->pos = i_;
    if (i_ >= text_.size()) {
      out->kind = TokKind::kEnd;
      return Status::OK();
    }
    char c = text_[i_];
    if (c == '<') {
      // '<' opens an IRI unless it reads as a comparison: "<=" or "< " (an
      // IRI cannot contain whitespace, so the lookahead is unambiguous).
      if (i_ + 1 < text_.size() &&
          (text_[i_ + 1] == '=' || std::isspace(static_cast<unsigned char>(text_[i_ + 1])))) {
        return LexPunct(out);
      }
      return LexIri(out);
    }
    if (c == '"') return LexLiteral(out);
    if (c == '?' || c == '$') return LexVar(out);
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[i_ + 1])))) {
      return LexNumber(out);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return LexName(out);
    return LexPunct(out);
  }

 private:
  void SkipWs() {
    while (i_ < text_.size()) {
      char c = text_[i_];
      if (c == '#') {  // comment to end of line
        while (i_ < text_.size() && text_[i_] != '\n') ++i_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
      } else {
        break;
      }
    }
  }

  Status LexIri(Token* out) {
    size_t close = text_.find('>', i_ + 1);
    if (close == std::string_view::npos) return Err("unclosed IRI");
    out->kind = TokKind::kIri;
    out->term = Term::Iri(std::string(text_.substr(i_ + 1, close - i_ - 1)));
    i_ = close + 1;
    return Status::OK();
  }

  Status LexLiteral(Token* out) {
    std::string lex;
    size_t j = i_ + 1;
    while (j < text_.size() && text_[j] != '"') {
      if (text_[j] == '\\' && j + 1 < text_.size()) {
        char e = text_[j + 1];
        lex.push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
        j += 2;
      } else {
        lex.push_back(text_[j]);
        ++j;
      }
    }
    if (j >= text_.size()) return Err("unterminated literal");
    ++j;  // closing quote
    TermId datatype = kInvalidTerm;
    std::string lang;
    if (j < text_.size() && text_[j] == '@') {
      size_t k = j + 1;
      while (k < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[k])) || text_[k] == '-')) {
        ++k;
      }
      lang = std::string(text_.substr(j + 1, k - j - 1));
      j = k;
    } else if (j + 1 < text_.size() && text_[j] == '^' && text_[j + 1] == '^') {
      if (j + 2 >= text_.size() || text_[j + 2] != '<') return Err("bad datatype");
      size_t close = text_.find('>', j + 3);
      if (close == std::string_view::npos) return Err("unclosed datatype IRI");
      datatype = dict_->InternIri(std::string(text_.substr(j + 3, close - j - 3)));
      j = close + 1;
    }
    out->kind = TokKind::kLiteral;
    out->term = Term::Literal(std::move(lex), datatype, std::move(lang));
    i_ = j;
    return Status::OK();
  }

  Status LexVar(Token* out) {
    size_t j = i_ + 1;
    while (j < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[j])) || text_[j] == '_')) {
      ++j;
    }
    if (j == i_ + 1) return Err("empty variable name");
    out->kind = TokKind::kVar;
    out->text = std::string(text_.substr(i_ + 1, j - i_ - 1));
    i_ = j;
    return Status::OK();
  }

  Status LexNumber(Token* out) {
    size_t j = i_;
    if (text_[j] == '-') ++j;
    bool has_dot = false;
    while (j < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[j])) || text_[j] == '.')) {
      if (text_[j] == '.') {
        // Trailing '.' is the triple terminator, not a decimal point.
        if (j + 1 >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[j + 1]))) {
          break;
        }
        has_dot = true;
      }
      ++j;
    }
    double v;
    if (!ParseDouble(text_.substr(i_, j - i_), &v)) return Err("bad number");
    out->kind = TokKind::kNumber;
    out->num = v;
    out->is_integer = !has_dot;
    i_ = j;
    return Status::OK();
  }

  Status LexName(Token* out) {
    size_t j = i_;
    while (j < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[j])) || text_[j] == '_' ||
            text_[j] == '-')) {
      ++j;
    }
    std::string word(text_.substr(i_, j - i_));
    // prefix:local?
    if (j < text_.size() && text_[j] == ':') {
      size_t k = j + 1;
      while (k < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[k])) || text_[k] == '_' ||
              text_[k] == '-' || text_[k] == '.')) {
        ++k;
      }
      out->kind = TokKind::kPname;
      out->text = word + ":" + std::string(text_.substr(j + 1, k - j - 1));
      i_ = k;
      return Status::OK();
    }
    out->kind = TokKind::kKeyword;
    for (char& ch : word) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    // Keep the original spelling for 'a' (type shorthand) detection.
    out->text = word;
    i_ = j;
    return Status::OK();
  }

  Status LexPunct(Token* out) {
    char c = text_[i_];
    out->kind = TokKind::kPunct;
    if ((c == '!' || c == '<' || c == '>') && i_ + 1 < text_.size() &&
        text_[i_ + 1] == '=') {
      out->text = std::string(1, c) + "=";
      i_ += 2;
      return Status::OK();
    }
    static const std::string kSingles = "{}().,/*=<>;:";
    if (kSingles.find(c) == std::string::npos) {
      return Err(std::string("unexpected character '") + c + "'");
    }
    out->text = std::string(1, c);
    ++i_;
    return Status::OK();
  }

  Status Err(std::string msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(i_));
  }

  std::string_view text_;
  Dictionary* dict_;
  size_t i_ = 0;
};

// Run a Status-returning step inside a Result-returning function.
#define SPADE_ASSIGN(expr)                  \
  do {                                      \
    ::spade::Status _st = (expr);           \
    if (!_st.ok()) return _st;              \
  } while (false)

class Parser {
 public:
  Parser(std::string_view text, Dictionary* dict) : lexer_(text, dict), dict_(dict) {}

  Result<Query> Parse() {
    SPADE_ASSIGN(Advance());
    while (IsKeyword("PREFIX")) {
      SPADE_ASSIGN(ParsePrefix());
    }
    if (!IsKeyword("SELECT")) return Status::ParseError("expected SELECT");
    SPADE_ASSIGN(Advance());
    if (IsKeyword("DISTINCT")) {
      query_.select_distinct = true;
      SPADE_ASSIGN(Advance());
    }
    SPADE_ASSIGN(ParseSelectItems());
    if (!IsKeyword("WHERE")) return Status::ParseError("expected WHERE");
    SPADE_ASSIGN(Advance());
    SPADE_ASSIGN(Expect("{"));
    while (!IsPunct("}")) {
      if (IsKeyword("FILTER")) {
        SPADE_ASSIGN(ParseFilter());
      } else {
        SPADE_ASSIGN(ParseTriplePattern());
      }
    }
    SPADE_ASSIGN(Expect("}"));
    if (IsKeyword("GROUP")) {
      SPADE_ASSIGN(Advance());
      if (!IsKeyword("BY")) return Status::ParseError("expected BY after GROUP");
      SPADE_ASSIGN(Advance());
      while (tok_.kind == TokKind::kVar) {
        query_.group_by.push_back(VarIndex(tok_.text));
        SPADE_ASSIGN(Advance());
      }
      if (query_.group_by.empty()) {
        return Status::ParseError("GROUP BY requires at least one variable");
      }
    }
    if (IsKeyword("LIMIT")) {
      SPADE_ASSIGN(Advance());
      if (tok_.kind != TokKind::kNumber || !tok_.is_integer) {
        return Status::ParseError("LIMIT requires an integer");
      }
      query_.limit = static_cast<int64_t>(tok_.num);
      SPADE_ASSIGN(Advance());
    }
    if (tok_.kind != TokKind::kEnd) return Status::ParseError("trailing input");
    SPADE_RETURN_NOT_OK(Validate());
    return query_;
  }

 private:
  Status Advance() { return lexer_.Next(&tok_); }

  bool IsKeyword(const char* kw) const {
    return tok_.kind == TokKind::kKeyword && tok_.text == kw;
  }
  bool IsPunct(const char* p) const {
    return tok_.kind == TokKind::kPunct && tok_.text == p;
  }

  Status Expect(const char* p) {
    if (!IsPunct(p)) {
      return Status::ParseError(std::string("expected '") + p + "', got '" +
                                tok_.text + "'");
    }
    return Advance();
  }

  int VarIndex(const std::string& name) {
    auto it = var_index_.find(name);
    if (it != var_index_.end()) return it->second;
    int idx = static_cast<int>(query_.var_names.size());
    query_.var_names.push_back(name);
    var_index_[name] = idx;
    return idx;
  }

  int FreshVar() {
    std::string name = "_path" + std::to_string(fresh_counter_++);
    return VarIndex(name);
  }

  Status ParsePrefix() {
    SPADE_ASSIGN(Advance());  // over PREFIX
    if (tok_.kind != TokKind::kPname && tok_.kind != TokKind::kKeyword &&
        tok_.kind != TokKind::kPunct) {
      return Status::ParseError("expected prefix name");
    }
    std::string prefix;
    if (tok_.kind == TokKind::kPname) {
      // Lexer consumed "name:" (with empty local part) as pname "name:".
      prefix = tok_.text.substr(0, tok_.text.find(':'));
      SPADE_ASSIGN(Advance());
    } else {
      prefix = ToLower(tok_.text);
      SPADE_ASSIGN(Advance());
      SPADE_ASSIGN(Expect(":"));
    }
    if (tok_.kind != TokKind::kIri) return Status::ParseError("expected IRI");
    prefixes_[prefix] = tok_.term.lexical;
    return Advance();
  }

  Result<TermId> ResolvePname(const std::string& pname) {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("unknown prefix '" + prefix + "'");
    }
    return dict_->InternIri(it->second + local);
  }

  Status ParseSelectItems() {
    bool any = false;
    while (true) {
      if (tok_.kind == TokKind::kVar) {
        SelectItem item;
        item.var = VarIndex(tok_.text);
        item.alias = tok_.text;
        query_.select.push_back(item);
        SPADE_ASSIGN(Advance());
        any = true;
      } else if (IsPunct("*")) {
        // SELECT *: expanded to all variables at validation time.
        select_star_ = true;
        SPADE_ASSIGN(Advance());
        any = true;
      } else if (IsPunct("(")) {
        SPADE_ASSIGN(ParseAggregateItem());
        any = true;
      } else {
        break;
      }
    }
    if (!any) return Status::ParseError("empty SELECT clause");
    return Status::OK();
  }

  Status ParseAggregateItem() {
    SPADE_ASSIGN(Advance());  // over '('
    static const std::map<std::string, AggFunc> kFuncs = {
        {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum}, {"AVG", AggFunc::kAvg},
        {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax},
    };
    if (tok_.kind != TokKind::kKeyword || !kFuncs.count(tok_.text)) {
      return Status::ParseError("expected aggregate function");
    }
    SelectItem item;
    item.is_aggregate = true;
    item.func = kFuncs.at(tok_.text);
    SPADE_ASSIGN(Advance());
    SPADE_ASSIGN(Expect("("));
    if (IsKeyword("DISTINCT")) {
      item.distinct = true;
      SPADE_ASSIGN(Advance());
    }
    if (IsPunct("*")) {
      if (item.func != AggFunc::kCount) {
        return Status::ParseError("'*' is only valid in COUNT");
      }
      item.count_star = true;
      SPADE_ASSIGN(Advance());
    } else if (tok_.kind == TokKind::kVar) {
      item.var = VarIndex(tok_.text);
      SPADE_ASSIGN(Advance());
    } else {
      return Status::ParseError("expected variable or '*' in aggregate");
    }
    SPADE_ASSIGN(Expect(")"));
    if (!IsKeyword("AS")) return Status::ParseError("expected AS");
    SPADE_ASSIGN(Advance());
    if (tok_.kind != TokKind::kVar) return Status::ParseError("expected alias var");
    item.alias = tok_.text;
    SPADE_ASSIGN(Advance());
    query_.select.push_back(item);
    return Expect(")");
  }

  // subject/object positions.
  Result<PatternTerm> ParseNode(bool allow_literal) {
    switch (tok_.kind) {
      case TokKind::kVar: {
        PatternTerm p = PatternTerm::Var(VarIndex(tok_.text));
        SPADE_ASSIGN(Advance());
        return p;
      }
      case TokKind::kIri: {
        PatternTerm p = PatternTerm::Const(dict_->Intern(tok_.term));
        SPADE_ASSIGN(Advance());
        return p;
      }
      case TokKind::kPname: {
        Result<TermId> id = ResolvePname(tok_.text);
        if (!id.ok()) return id.status();
        SPADE_ASSIGN(Advance());
        return PatternTerm::Const(*id);
      }
      case TokKind::kLiteral: {
        if (!allow_literal) return Status::ParseError("literal not allowed here");
        PatternTerm p = PatternTerm::Const(dict_->Intern(tok_.term));
        SPADE_ASSIGN(Advance());
        return p;
      }
      case TokKind::kNumber: {
        if (!allow_literal) return Status::ParseError("number not allowed here");
        TermId id = tok_.is_integer
                        ? dict_->InternInteger(static_cast<int64_t>(tok_.num))
                        : dict_->InternDouble(tok_.num);
        SPADE_ASSIGN(Advance());
        return PatternTerm::Const(id);
      }
      default:
        return Status::ParseError("expected term, got '" + tok_.text + "'");
    }
  }

  // One path step: IRI, pname, 'a', or variable.
  Result<PatternTerm> ParseVerb() {
    if (tok_.kind == TokKind::kKeyword && tok_.text == "A") {
      SPADE_ASSIGN(Advance());
      return PatternTerm::Const(dict_->InternIri(vocab::kRdfType));
    }
    return ParseNode(/*allow_literal=*/false);
  }

  Status ParseTriplePattern() {
    Result<PatternTerm> subject = ParseNode(/*allow_literal=*/false);
    if (!subject.ok()) return subject.status();

    // Parse the property path: verb ('/' verb)*.
    std::vector<PatternTerm> path;
    while (true) {
      Result<PatternTerm> verb = ParseVerb();
      if (!verb.ok()) return verb.status();
      path.push_back(*verb);
      if (IsPunct("/")) {
        SPADE_ASSIGN(Advance());
        continue;
      }
      break;
    }

    Result<PatternTerm> object = ParseNode(/*allow_literal=*/true);
    if (!object.ok()) return object.status();
    SPADE_ASSIGN(Expect("."));

    // Rewrite the sequence path into a chain over fresh variables.
    PatternTerm current = *subject;
    for (size_t i = 0; i < path.size(); ++i) {
      PatternTerm next =
          (i + 1 == path.size()) ? *object : PatternTerm::Var(FreshVar());
      query_.where.push_back(TriplePattern{current, path[i], next});
      current = next;
    }
    return Status::OK();
  }

  Status ParseFilter() {
    SPADE_ASSIGN(Advance());  // over FILTER
    SPADE_ASSIGN(Expect("("));
    if (tok_.kind != TokKind::kVar) return Status::ParseError("expected variable");
    Filter f;
    f.var = VarIndex(tok_.text);
    SPADE_ASSIGN(Advance());
    static const std::map<std::string, Filter::Op> kOps = {
        {"=", Filter::Op::kEq}, {"!=", Filter::Op::kNe}, {"<", Filter::Op::kLt},
        {"<=", Filter::Op::kLe}, {">", Filter::Op::kGt}, {">=", Filter::Op::kGe},
    };
    if (tok_.kind != TokKind::kPunct || !kOps.count(tok_.text)) {
      return Status::ParseError("expected comparison operator");
    }
    f.op = kOps.at(tok_.text);
    SPADE_ASSIGN(Advance());
    if (tok_.kind == TokKind::kNumber) {
      f.numeric = true;
      f.num = tok_.num;
      SPADE_ASSIGN(Advance());
    } else if (tok_.kind == TokKind::kLiteral || tok_.kind == TokKind::kIri) {
      f.term = dict_->Intern(tok_.term);
      SPADE_ASSIGN(Advance());
    } else if (tok_.kind == TokKind::kPname) {
      Result<TermId> id = ResolvePname(tok_.text);
      if (!id.ok()) return id.status();
      f.term = *id;
      SPADE_ASSIGN(Advance());
    } else {
      return Status::ParseError("expected filter constant");
    }
    query_.filters.push_back(f);
    return Expect(")");
  }

  Status Validate() {
    if (select_star_) {
      query_.select.clear();
      for (size_t v = 0; v < query_.var_names.size(); ++v) {
        if (StartsWith(query_.var_names[v], "_path")) continue;
        SelectItem item;
        item.var = static_cast<int>(v);
        item.alias = query_.var_names[v];
        query_.select.push_back(item);
      }
    }
    if (query_.where.empty()) return Status::ParseError("empty WHERE clause");
    bool has_agg = query_.HasAggregates();
    if (!query_.group_by.empty() || has_agg) {
      // Every non-aggregate select item must be a GROUP BY variable.
      for (const auto& item : query_.select) {
        if (item.is_aggregate) continue;
        bool grouped = false;
        for (int g : query_.group_by) grouped |= (g == item.var);
        if (!grouped) {
          return Status::ParseError("non-grouped variable '" +
                                    query_.var_names[item.var] + "' in SELECT");
        }
      }
    }
    return Status::OK();
  }

#undef SPADE_ASSIGN

  Lexer lexer_;
  Dictionary* dict_;
  Token tok_;
  Query query_;
  std::map<std::string, int> var_index_;
  std::map<std::string, std::string> prefixes_;
  bool select_star_ = false;
  int fresh_counter_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, Dictionary* dict) {
  Parser parser(text, dict);
  return parser.Parse();
}

}  // namespace sparql
}  // namespace spade
