#include "src/sparql/ast.h"

namespace spade {
namespace sparql {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

}  // namespace sparql
}  // namespace spade
