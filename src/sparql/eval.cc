#include "src/sparql/eval.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace spade {
namespace sparql {

namespace {

constexpr TermId kUnbound = kInvalidTerm;

// Resolve a pattern position under the current partial binding.
TermId Resolve(const PatternTerm& pt, const std::vector<TermId>& binding) {
  if (!pt.is_var) return pt.term;
  return binding[pt.var];
}

// True if the filter accepts the bound value.
bool FilterPasses(const Filter& f, TermId value, const Dictionary& dict) {
  if (f.numeric) {
    double v;
    if (!dict.NumericValue(value, &v)) return false;
    switch (f.op) {
      case Filter::Op::kEq:
        return v == f.num;
      case Filter::Op::kNe:
        return v != f.num;
      case Filter::Op::kLt:
        return v < f.num;
      case Filter::Op::kLe:
        return v <= f.num;
      case Filter::Op::kGt:
        return v > f.num;
      case Filter::Op::kGe:
        return v >= f.num;
    }
    return false;
  }
  switch (f.op) {
    case Filter::Op::kEq:
      return value == f.term;
    case Filter::Op::kNe:
      return value != f.term;
    default: {
      // Order non-numeric terms by lexical form.
      const std::string& a = dict.Get(value).lexical;
      const std::string& b = dict.Get(f.term).lexical;
      switch (f.op) {
        case Filter::Op::kLt:
          return a < b;
        case Filter::Op::kLe:
          return a <= b;
        case Filter::Op::kGt:
          return a > b;
        case Filter::Op::kGe:
          return a >= b;
        default:
          return false;
      }
    }
  }
}

class BgpSolver {
 public:
  BgpSolver(const Query& query, const Graph& graph)
      : query_(query), graph_(graph), binding_(query.var_names.size(), kUnbound) {}

  std::vector<std::vector<TermId>> Solve() {
    used_.assign(query_.where.size(), false);
    Recurse(0);
    return std::move(solutions_);
  }

 private:
  // Estimated number of matches for `tp` under the current binding; used to
  // greedily pick the next pattern.
  double EstimateCost(const TriplePattern& tp) const {
    TermId s = Resolve(tp.s, binding_);
    TermId p = Resolve(tp.p, binding_);
    TermId o = Resolve(tp.o, binding_);
    int bound = (s != kUnbound) + (p != kUnbound) + (o != kUnbound);
    // Coarse but effective: more bound positions first; subject-bound beats
    // object-bound beats predicate-bound at equal counts.
    double base = std::pow(1000.0, 3 - bound);
    if (s != kUnbound) base *= 0.25;
    if (o != kUnbound) base *= 0.5;
    return base;
  }

  void Recurse(size_t depth) {
    if (depth == query_.where.size()) {
      solutions_.push_back(binding_);
      return;
    }
    // Pick the cheapest unused pattern.
    size_t best = query_.where.size();
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < query_.where.size(); ++i) {
      if (used_[i]) continue;
      double cost = EstimateCost(query_.where[i]);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    const TriplePattern& tp = query_.where[best];
    used_[best] = true;

    TermId s = Resolve(tp.s, binding_);
    TermId p = Resolve(tp.p, binding_);
    TermId o = Resolve(tp.o, binding_);
    graph_.Match(s, p, o, [&](const Triple& t) {
      // Bind the free positions; a variable occurring twice in the pattern
      // must match consistently.
      std::vector<std::pair<int, TermId>> newly;
      auto bind = [&](const PatternTerm& pt, TermId val) -> bool {
        if (!pt.is_var) return true;
        TermId& slot = binding_[pt.var];
        if (slot == kUnbound) {
          slot = val;
          newly.emplace_back(pt.var, val);
          return true;
        }
        return slot == val;
      };
      bool ok = bind(tp.s, t.s) && bind(tp.p, t.p) && bind(tp.o, t.o);
      if (ok) {
        // Filters whose variable just became bound.
        for (const Filter& f : query_.filters) {
          bool fresh = false;
          for (const auto& [var, val] : newly) fresh |= (var == f.var);
          if (fresh && !FilterPasses(f, binding_[f.var], graph_.dict())) {
            ok = false;
            break;
          }
        }
      }
      if (ok) Recurse(depth + 1);
      for (const auto& [var, val] : newly) binding_[var] = kUnbound;
    });

    used_[best] = false;
  }

  const Query& query_;
  const Graph& graph_;
  std::vector<TermId> binding_;
  std::vector<bool> used_;
  std::vector<std::vector<TermId>> solutions_;
};

// Accumulator for one aggregate inside one group.
struct AggState {
  double sum = 0;
  int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::set<TermId> distinct_terms;  // for DISTINCT
  bool saw_non_numeric = false;

  void Accept(const SelectItem& item, TermId value, const Dictionary& dict) {
    if (item.distinct) {
      if (!distinct_terms.insert(value).second) return;
    }
    double v = 0;
    bool numeric = dict.NumericValue(value, &v);
    if (!numeric) saw_non_numeric = true;
    ++count;
    if (numeric) {
      sum += v;
      min = std::min(min, v);
      max = std::max(max, v);
    }
  }

  Value Finish(const SelectItem& item) const {
    switch (item.func) {
      case AggFunc::kCount:
        return Value::OfNumber(static_cast<double>(count));
      case AggFunc::kSum:
        return Value::OfNumber(sum);
      case AggFunc::kAvg:
        return Value::OfNumber(count == 0 ? 0 : sum / static_cast<double>(count));
      case AggFunc::kMin:
        return Value::OfNumber(count == 0 ? 0 : min);
      case AggFunc::kMax:
        return Value::OfNumber(count == 0 ? 0 : max);
    }
    return Value::OfNumber(0);
  }
};

}  // namespace

Result<std::vector<std::vector<TermId>>> SolveBgp(const Query& query,
                                                  const Graph& graph) {
  for (const auto& f : query.filters) {
    if (f.var < 0 || f.var >= static_cast<int>(query.var_names.size())) {
      return Status::InvalidArgument("filter variable out of range");
    }
  }
  BgpSolver solver(query, graph);
  return solver.Solve();
}

Result<ResultSet> Evaluate(const Query& query, const Graph& graph) {
  Result<std::vector<std::vector<TermId>>> solutions = SolveBgp(query, graph);
  if (!solutions.ok()) return solutions.status();

  ResultSet rs;
  for (const auto& item : query.select) rs.columns.push_back(item.alias);

  if (!query.HasAggregates() && query.group_by.empty()) {
    // Plain projection.
    std::set<std::vector<TermId>> seen;
    for (const auto& sol : *solutions) {
      std::vector<TermId> proj;
      proj.reserve(query.select.size());
      for (const auto& item : query.select) proj.push_back(sol[item.var]);
      if (query.select_distinct && !seen.insert(proj).second) continue;
      std::vector<Value> row;
      row.reserve(proj.size());
      for (TermId t : proj) row.push_back(Value::OfTerm(t));
      rs.rows.push_back(std::move(row));
      if (query.limit >= 0 && static_cast<int64_t>(rs.rows.size()) >= query.limit) {
        break;
      }
    }
    return rs;
  }

  // Group solutions by the GROUP BY key.
  std::map<std::vector<TermId>, std::vector<AggState>> groups;
  size_t num_aggs = 0;
  for (const auto& item : query.select) num_aggs += item.is_aggregate;

  for (const auto& sol : *solutions) {
    std::vector<TermId> key;
    key.reserve(query.group_by.size());
    for (int g : query.group_by) key.push_back(sol[g]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) it->second.resize(num_aggs);
    size_t agg_idx = 0;
    for (const auto& item : query.select) {
      if (!item.is_aggregate) continue;
      AggState& st = it->second[agg_idx++];
      if (item.count_star) {
        // COUNT(*): count the solution itself. DISTINCT * is not supported
        // (and not produced by the pipeline).
        ++st.count;
      } else {
        TermId v = sol[item.var];
        if (v != kUnbound) st.Accept(item, v, graph.dict());
      }
    }
  }

  for (const auto& [key, states] : groups) {
    std::vector<Value> row;
    row.reserve(query.select.size());
    size_t agg_idx = 0;
    for (const auto& item : query.select) {
      if (item.is_aggregate) {
        row.push_back(states[agg_idx++].Finish(item));
      } else {
        // Validated: non-aggregate select items are GROUP BY variables.
        for (size_t g = 0; g < query.group_by.size(); ++g) {
          if (query.group_by[g] == item.var) {
            row.push_back(Value::OfTerm(key[g]));
            break;
          }
        }
      }
    }
    rs.rows.push_back(std::move(row));
    if (query.limit >= 0 && static_cast<int64_t>(rs.rows.size()) >= query.limit) {
      break;
    }
  }
  return rs;
}

}  // namespace sparql
}  // namespace spade
