#ifndef SPADE_SPARQL_PARSER_H_
#define SPADE_SPARQL_PARSER_H_

#include <string_view>

#include "src/rdf/dictionary.h"
#include "src/sparql/ast.h"
#include "src/util/status.h"

namespace spade {
namespace sparql {

/// \brief Recursive-descent parser for the SPARQL 1.1 subset used by Spade.
///
/// Grammar (case-insensitive keywords):
///
///   query    := prefix* SELECT 'DISTINCT'? item+ WHERE '{' pattern* '}'
///               ('GROUP' 'BY' var+)? ('LIMIT' int)?
///   prefix   := 'PREFIX' pname ':' iriref
///   item     := var | '(' agg '(' ('DISTINCT'? var | '*') ')' 'AS' var ')'
///   agg      := COUNT | SUM | AVG | MIN | MAX
///   pattern  := subject path object '.'
///   path     := verb ('/' verb)*            -- sequence property paths
///   verb     := iriref | pname ':' local | 'a' | var
///   subject  := iriref | pname | blank | var
///   object   := subject | literal | number
///
/// Sequence paths are rewritten into chains of plain triple patterns over
/// fresh internal variables (named "_pathK"), which is exactly how the paper
/// materializes path-derived properties (Section 3).
///
/// Terms are interned into `dict` during parsing, so a parsed query can be
/// evaluated against any graph sharing that dictionary.
Result<Query> ParseQuery(std::string_view text, Dictionary* dict);

}  // namespace sparql
}  // namespace spade

#endif  // SPADE_SPARQL_PARSER_H_
