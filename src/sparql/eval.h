#ifndef SPADE_SPARQL_EVAL_H_
#define SPADE_SPARQL_EVAL_H_

#include "src/rdf/graph.h"
#include "src/sparql/ast.h"
#include "src/util/status.h"

namespace spade {
namespace sparql {

/// \brief Evaluate a parsed query against a graph.
///
/// The BGP is solved by index-nested-loop joins with a greedy join order: at
/// each step the evaluator picks the pattern whose currently-bound positions
/// promise the smallest match range (exact for fully-bound / subject-bound
/// patterns, index-estimated otherwise). Filters fire as soon as their
/// variable is bound. Aggregation follows SPARQL 1.1 semantics: the solution
/// multiset is grouped by the GROUP BY variables and each aggregate runs over
/// the group's bag of bindings (with DISTINCT de-duplicating per aggregate).
///
/// The query must have been parsed against the graph's own Dictionary
/// (constants are compared by TermId).
Result<ResultSet> Evaluate(const Query& query, const Graph& graph);

/// Evaluate just a BGP + filters, returning one row of TermIds per solution
/// mapping (columns = query.var_names). Exposed for tests and for the
/// derivation module, which uses BGP matching to materialize path properties.
Result<std::vector<std::vector<TermId>>> SolveBgp(const Query& query,
                                                  const Graph& graph);

}  // namespace sparql
}  // namespace spade

#endif  // SPADE_SPARQL_EVAL_H_
