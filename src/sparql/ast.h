#ifndef SPADE_SPARQL_AST_H_
#define SPADE_SPARQL_AST_H_

#include <map>
#include <string>
#include <vector>

#include "src/rdf/term.h"

namespace spade {
namespace sparql {

/// Aggregate functions of SPARQL 1.1 supported by the paper's MDAs
/// (Omega = {count, min, max, sum, avg}, Section 2).
enum class AggFunc : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// One position of a triple pattern: either a constant term or a variable
/// (identified by its dense index in Query::var_names).
struct PatternTerm {
  bool is_var = false;
  TermId term = kInvalidTerm;  // when !is_var
  int var = -1;                // when is_var

  static PatternTerm Var(int v) {
    PatternTerm p;
    p.is_var = true;
    p.var = v;
    return p;
  }
  static PatternTerm Const(TermId t) {
    PatternTerm p;
    p.term = t;
    return p;
  }
};

/// A basic graph pattern triple. Property paths (p1/p2/...) are rewritten by
/// the parser into chains of plain patterns over fresh variables, so the
/// evaluator only ever sees constant predicates or predicate variables.
struct TriplePattern {
  PatternTerm s, p, o;
};

/// FILTER (?v op constant) — the comparison subset used by the analysis
/// pipeline (e.g. support thresholds on derived values in examples).
struct Filter {
  enum class Op : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
  int var = -1;
  /// When the right-hand side parses as a number, the comparison is numeric;
  /// otherwise it is term equality / lexicographic on the lexical form.
  bool numeric = false;
  double num = 0;
  TermId term = kInvalidTerm;
  Op op = Op::kEq;
};

/// One SELECT clause item: a plain variable or an aggregate expression
/// (AGG(DISTINCT? ?v) AS ?alias; COUNT(*) sets count_star).
struct SelectItem {
  bool is_aggregate = false;
  int var = -1;  // plain variable, or the aggregated variable
  AggFunc func = AggFunc::kCount;
  bool distinct = false;
  bool count_star = false;
  std::string alias;  // output column name
};

/// A parsed SELECT query.
struct Query {
  std::vector<std::string> var_names;  // dense variable table
  bool select_distinct = false;
  std::vector<SelectItem> select;
  std::vector<TriplePattern> where;
  std::vector<Filter> filters;
  std::vector<int> group_by;  // variable indices
  int64_t limit = -1;

  bool HasAggregates() const {
    for (const auto& item : select) {
      if (item.is_aggregate) return true;
    }
    return false;
  }
};

/// A cell of a result row: a term or a computed number.
struct Value {
  enum class Kind : uint8_t { kTerm, kNumber } kind = Kind::kTerm;
  TermId term = kInvalidTerm;
  double num = 0;

  static Value OfTerm(TermId t) {
    Value v;
    v.kind = Kind::kTerm;
    v.term = t;
    return v;
  }
  static Value OfNumber(double d) {
    Value v;
    v.kind = Kind::kNumber;
    v.num = d;
    return v;
  }
  bool operator==(const Value& o) const {
    return kind == o.kind && term == o.term && num == o.num;
  }
};

/// Tabular query result.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
};

}  // namespace sparql
}  // namespace spade

#endif  // SPADE_SPARQL_AST_H_
