#include "src/stats/attr_stats.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <set>

#include "src/util/string_util.h"

namespace spade {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kEmpty:
      return "empty";
    case ValueKind::kInteger:
      return "integer";
    case ValueKind::kDecimal:
      return "decimal";
    case ValueKind::kDate:
      return "date";
    case ValueKind::kText:
      return "text";
    case ValueKind::kReference:
      return "reference";
    case ValueKind::kMixed:
      return "mixed";
  }
  return "?";
}

bool LooksLikeDate(const std::string& s) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

AttrStats ComputeAttrStats(const AttributeStore& db, AttrId attr) {
  const AttributeTable& table = db.attribute(attr);
  const Dictionary& dict = db.graph().dict();

  AttrStats st;
  st.num_values = table.num_rows();
  if (table.empty()) return st;

  std::set<TermId> distinct;
  size_t num_int = 0, num_dec = 0, num_date = 0, num_text = 0, num_ref = 0;
  double total_len = 0;
  st.min_value = std::numeric_limits<double>::infinity();
  st.max_value = -std::numeric_limits<double>::infinity();

  // Subject-run bookkeeping is free in the CSR layout: one offset slice per
  // distinct subject.
  st.num_subjects = table.num_subjects();
  for (size_t i = 0; i < table.num_subjects(); ++i) {
    if (table.values(i).size() >= 2) ++st.num_multi_subjects;
  }
  for (TermId o : table.objects()) {
    distinct.insert(o);
    const Term& term = dict.Get(o);
    if (term.kind != TermKind::kLiteral) {
      ++num_ref;
      continue;
    }
    int64_t iv;
    double dv;
    if (ParseInt64(term.lexical, &iv)) {
      ++num_int;
      st.min_value = std::min(st.min_value, static_cast<double>(iv));
      st.max_value = std::max(st.max_value, static_cast<double>(iv));
    } else if (ParseDouble(term.lexical, &dv)) {
      ++num_dec;
      st.min_value = std::min(st.min_value, dv);
      st.max_value = std::max(st.max_value, dv);
    } else if (LooksLikeDate(term.lexical)) {
      ++num_date;
    } else {
      ++num_text;
      total_len += static_cast<double>(term.lexical.size());
    }
  }
  st.num_distinct_values = distinct.size();
  if (num_text > 0) st.avg_text_length = total_len / static_cast<double>(num_text);

  // Classify: a kind must cover >= 95% of the values, otherwise kMixed.
  // (Real graphs have stray values; a couple of bad literals should not stop
  // a numeric property from being a measure.)
  size_t n = st.num_values;
  auto dominates = [n](size_t c) { return c * 20 >= n * 19; };
  if (dominates(num_ref)) {
    st.kind = ValueKind::kReference;
  } else if (dominates(num_int)) {
    st.kind = ValueKind::kInteger;
  } else if (dominates(num_int + num_dec)) {
    st.kind = ValueKind::kDecimal;
  } else if (dominates(num_date)) {
    st.kind = ValueKind::kDate;
  } else if (dominates(num_text + num_date)) {
    st.kind = ValueKind::kText;
  } else {
    st.kind = ValueKind::kMixed;
  }
  if (!st.numeric()) {
    st.min_value = 0;
    st.max_value = 0;
  }
  return st;
}

OnlineAttrStats ComputeOnlineStats(const AttributeStore& db, const CfsIndex& cfs,
                                   AttrId attr) {
  const AttributeTable& table = db.attribute(attr);
  OnlineAttrStats st;
  std::set<TermId> distinct;

  // Each CFS member that is a subject contributes its whole value slice.
  ForEachCfsMatch(table, cfs.members(), [&](size_t /*mi*/, size_t si) {
    Span<TermId> vals = table.values(si);
    ++st.support;
    if (vals.size() >= 2) ++st.num_multi_facts;
    st.num_values += vals.size();
    for (TermId o : vals) distinct.insert(o);
  });
  st.num_distinct_values = distinct.size();
  return st;
}

}  // namespace spade
