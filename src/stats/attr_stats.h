#ifndef SPADE_STATS_ATTR_STATS_H_
#define SPADE_STATS_ATTR_STATS_H_

#include <string>

#include "src/store/attribute_store.h"

namespace spade {

/// Inferred kind of an attribute's values.
enum class ValueKind : uint8_t {
  kEmpty = 0,
  kInteger,    ///< all values parse as integers
  kDecimal,    ///< all values numeric, some fractional
  kDate,       ///< all values look like YYYY-MM-DD
  kText,       ///< string literals
  kReference,  ///< IRIs / blank nodes (graph links)
  kMixed,      ///< none of the above dominates
};

const char* ValueKindName(ValueKind kind);

/// \brief Offline (whole-graph) statistics of one attribute
/// (Section 3, Offline Attribute Analysis).
///
/// These drive derivation decisions: counts for multi-valued attributes,
/// keywords/language for long text, paths for reference attributes.
struct AttrStats {
  ValueKind kind = ValueKind::kEmpty;
  size_t num_subjects = 0;        ///< distinct subjects having the attribute
  size_t num_values = 0;          ///< total (s,o) rows
  size_t num_distinct_values = 0;
  size_t num_multi_subjects = 0;  ///< subjects with >= 2 values
  double min_value = 0;           ///< numeric attrs only
  double max_value = 0;
  double avg_text_length = 0;     ///< text attrs only

  bool multi_valued() const { return num_multi_subjects > 0; }
  bool numeric() const {
    return kind == ValueKind::kInteger || kind == ValueKind::kDecimal;
  }
};

/// Compute offline statistics of `attr` over the whole graph.
AttrStats ComputeAttrStats(const AttributeStore& db, AttrId attr);

/// \brief Online (CFS-dependent) statistics (Section 3, step 2): the same
/// attribute can be a fine dimension for one fact set and useless for
/// another, so support/distinct counts are re-derived per CFS.
struct OnlineAttrStats {
  size_t support = 0;             ///< facts of the CFS having the attribute
  size_t num_values = 0;
  size_t num_distinct_values = 0;
  size_t num_multi_facts = 0;     ///< facts with >= 2 values

  double SupportRatio(size_t cfs_size) const {
    return cfs_size == 0 ? 0.0
                         : static_cast<double>(support) /
                               static_cast<double>(cfs_size);
  }
  double DistinctRatio(size_t cfs_size) const {
    return cfs_size == 0 ? 0.0
                         : static_cast<double>(num_distinct_values) /
                               static_cast<double>(cfs_size);
  }
};

/// Compute the CFS-restricted statistics of `attr`.
OnlineAttrStats ComputeOnlineStats(const AttributeStore& db, const CfsIndex& cfs,
                                   AttrId attr);

/// True if the literal's lexical form looks like an xsd:date (YYYY-MM-DD).
bool LooksLikeDate(const std::string& lexical);

}  // namespace spade

#endif  // SPADE_STATS_ATTR_STATS_H_
