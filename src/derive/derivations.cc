#include "src/derive/derivations.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <unordered_set>

#include "src/util/string_util.h"

namespace spade {

namespace {

const std::unordered_set<std::string>& EnglishStopWords() {
  static const std::unordered_set<std::string> kWords = {
      "the",  "and",  "for",  "that", "with", "this", "from", "have",
      "has",  "was",  "were", "are",  "not",  "but",  "its",  "his",
      "her",  "they", "them", "been", "will", "would", "which", "their",
      "more", "over", "into", "also", "than", "when", "where", "who",
  };
  return kWords;
}

struct LangProfile {
  const char* name;
  std::vector<std::string> stopwords;
};

const std::vector<LangProfile>& LanguageProfiles() {
  static const std::vector<LangProfile> kProfiles = {
      {"English",
       {"the", "and", "of", "to", "in", "is", "was", "for", "with", "that"}},
      {"French",
       {"le", "la", "les", "de", "des", "et", "est", "une", "un", "dans",
        "pour", "que", "qui", "avec"}},
      {"German",
       {"der", "die", "das", "und", "ist", "von", "mit", "ein", "eine",
        "nicht", "für", "auf"}},
      {"Spanish",
       {"el", "la", "los", "las", "de", "y", "es", "una", "un", "en", "por",
        "con", "para", "del"}},
  };
  return kProfiles;
}

// Lower-cased alphabetic tokens of `text`.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace

std::vector<std::string> ExtractKeywords(const std::string& text, size_t min_len) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (std::string& tok : Tokenize(text)) {
    if (tok.size() < min_len) continue;
    if (EnglishStopWords().count(tok)) continue;
    tok[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(tok[0])));
    if (seen.insert(tok).second) out.push_back(tok);
  }
  return out;
}

std::string DetectLanguage(const std::string& text) {
  std::vector<std::string> tokens = Tokenize(text);
  if (tokens.empty()) return "";
  const LangProfile* best = nullptr;
  size_t best_hits = 0;
  for (const LangProfile& profile : LanguageProfiles()) {
    size_t hits = 0;
    for (const std::string& tok : tokens) {
      for (const std::string& sw : profile.stopwords) {
        if (tok == sw) {
          ++hits;
          break;
        }
      }
    }
    if (hits > best_hits) {
      best_hits = hits;
      best = &profile;
    }
  }
  return best == nullptr ? "" : best->name;
}

size_t DeriveCounts(AttributeStore* db, const std::vector<AttrStats>& stats,
                    const DerivationOptions& /*options*/) {
  size_t added = 0;
  Dictionary& dict = *db->mutable_dict();
  std::vector<AttrId> direct = db->DirectAttributes();
  for (AttrId a : direct) {
    if (a >= stats.size() || !stats[a].multi_valued()) continue;
    const AttributeTable& src = db->attribute(a);
    AttributeTable table;
    table.name = "count(" + src.name + ")";
    table.origin = AttrOrigin::kCount;
    table.derived_from = a;
    // The CSR offsets are exactly the per-subject value counts.
    for (size_t i = 0; i < src.num_subjects(); ++i) {
      table.AddRow(src.subject(i),
                   dict.InternInteger(static_cast<int64_t>(src.values(i).size())));
    }
    db->AddAttribute(std::move(table));
    ++added;
  }
  return added;
}

size_t DeriveKeywords(AttributeStore* db, const std::vector<AttrStats>& stats,
                      const DerivationOptions& options) {
  size_t added = 0;
  Dictionary& dict = *db->mutable_dict();
  std::vector<AttrId> direct = db->DirectAttributes();
  for (AttrId a : direct) {
    if (a >= stats.size()) continue;
    const AttrStats& st = stats[a];
    if (st.kind != ValueKind::kText) continue;
    if (st.avg_text_length < options.min_text_length_for_keywords) continue;
    const AttributeTable& src = db->attribute(a);
    AttributeTable table;
    table.name = "kwIn(" + src.name + ")";
    table.origin = AttrOrigin::kKeyword;
    table.derived_from = a;
    for (size_t i = 0; i < src.num_subjects(); ++i) {
      TermId s = src.subject(i);
      for (TermId o : src.values(i)) {
        const Term& term = dict.Get(o);
        if (term.kind != TermKind::kLiteral) continue;
        for (const std::string& kw :
             ExtractKeywords(term.lexical, options.min_keyword_length)) {
          table.AddRow(s, dict.InternString(kw));
          if (table.num_staged() >= options.max_keyword_rows) break;
        }
        if (table.num_staged() >= options.max_keyword_rows) break;
      }
      if (table.num_staged() >= options.max_keyword_rows) break;
    }
    if (table.num_staged() == 0) continue;
    db->AddAttribute(std::move(table));
    ++added;
  }
  return added;
}

size_t DeriveLanguages(AttributeStore* db, const std::vector<AttrStats>& stats,
                       const DerivationOptions& options) {
  size_t added = 0;
  Dictionary& dict = *db->mutable_dict();
  std::vector<AttrId> direct = db->DirectAttributes();
  for (AttrId a : direct) {
    if (a >= stats.size()) continue;
    const AttrStats& st = stats[a];
    if (st.kind != ValueKind::kText) continue;
    if (st.avg_text_length < options.min_text_length_for_keywords) continue;
    const AttributeTable& src = db->attribute(a);
    AttributeTable table;
    table.name = "langOf(" + src.name + ")";
    table.origin = AttrOrigin::kLanguage;
    table.derived_from = a;
    src.ForEachRow([&](TermId s, TermId o) {
      const Term& term = dict.Get(o);
      if (term.kind != TermKind::kLiteral) return;
      std::string lang;
      if (!term.language.empty()) {
        // Explicit language tags beat detection.
        lang = term.language == "en"   ? "English"
               : term.language == "fr" ? "French"
               : term.language == "de" ? "German"
               : term.language == "es" ? "Spanish"
                                       : term.language;
      } else {
        lang = DetectLanguage(term.lexical);
      }
      if (lang.empty()) return;
      table.AddRow(s, dict.InternString(lang));
    });
    if (table.num_staged() == 0) continue;
    db->AddAttribute(std::move(table));
    ++added;
  }
  return added;
}

size_t DerivePaths(AttributeStore* db, const std::vector<AttrStats>& stats,
                   const DerivationOptions& options) {
  size_t added = 0;
  std::vector<AttrId> direct = db->DirectAttributes();

  for (AttrId p1 : direct) {
    if (p1 >= stats.size() || stats[p1].kind != ValueKind::kReference) continue;
    // References into the registry stay valid across AddAttribute (the store
    // keeps tables in a deque), so no defensive copy of t1 is needed.
    const AttributeTable& t1 = db->attribute(p1);
    for (AttrId p2 : direct) {
      if (added >= options.max_path_attrs) return added;
      if (p2 == p1) {
        // Self-composition (p/p) is allowed but rarely useful; skip to match
        // the paper's length-1 path enumeration over distinct properties.
        continue;
      }
      const AttributeTable& t2 = db->attribute(p2);
      Span<TermId> subj2 = t2.subjects();
      if (subj2.empty()) continue;
      // How many p1 values continue with p2?
      size_t continuing = 0;
      for (TermId o : t1.objects()) {
        if (std::binary_search(subj2.begin(), subj2.end(), o)) ++continuing;
      }
      if (continuing == 0 ||
          static_cast<double>(continuing) < options.min_path_continuation *
                                                static_cast<double>(t1.num_rows())) {
        continue;
      }
      AttributeTable table;
      table.name = t1.name + "/" + t2.name;
      table.origin = AttrOrigin::kPath;
      table.derived_from = p1;
      for (size_t i = 0; i < t1.num_subjects(); ++i) {
        TermId s = t1.subject(i);
        for (TermId mid : t1.values(i)) {
          for (TermId o2 : t2.ValuesOf(mid)) {
            table.AddRow(s, o2);
            if (table.num_staged() >= options.max_path_rows) break;
          }
          if (table.num_staged() >= options.max_path_rows) break;
        }
        if (table.num_staged() >= options.max_path_rows) break;
      }
      if (table.num_staged() == 0) continue;
      db->AddAttribute(std::move(table));
      ++added;
    }
  }
  return added;
}

DerivationReport DeriveAll(AttributeStore* db, const std::vector<AttrStats>& stats,
                           const DerivationOptions& options) {
  DerivationReport report;
  if (options.enable_counts) {
    report.num_count_attrs = DeriveCounts(db, stats, options);
  }
  if (options.enable_keywords) {
    report.num_keyword_attrs = DeriveKeywords(db, stats, options);
  }
  if (options.enable_languages) {
    report.num_language_attrs = DeriveLanguages(db, stats, options);
  }
  if (options.enable_paths) {
    report.num_path_attrs = DerivePaths(db, stats, options);
  }
  return report;
}

}  // namespace spade
