#ifndef SPADE_DERIVE_DERIVATIONS_H_
#define SPADE_DERIVE_DERIVATIONS_H_

#include <vector>

#include "src/stats/attr_stats.h"
#include "src/store/attribute_store.h"

namespace spade {

/// Options of the Derived Property Enumeration step (Section 3). Defaults
/// mirror the paper's behaviour on the six real graphs.
struct DerivationOptions {
  bool enable_counts = true;
  bool enable_keywords = true;
  bool enable_languages = true;
  bool enable_paths = true;

  /// Text attributes with average length below this are labels, not
  /// descriptions: no keyword/language derivation.
  double min_text_length_for_keywords = 20.0;
  /// Keyword tokens shorter than this are dropped (articles, stop words).
  size_t min_keyword_length = 4;
  /// Cap on derived keyword rows per attribute (guards degenerate text).
  size_t max_keyword_rows = 200000;

  /// Path derivation p1/p2 only applies when p1 is a reference attribute and
  /// at least this fraction of p1's values continue with p2.
  double min_path_continuation = 0.05;
  /// Cap on the number of generated path attributes.
  size_t max_path_attrs = 256;
  /// Cap on rows per generated path attribute.
  size_t max_path_rows = 2000000;
};

/// Statistics of a derivation pass, reported by Table 2's bench.
struct DerivationReport {
  size_t num_count_attrs = 0;
  size_t num_keyword_attrs = 0;
  size_t num_language_attrs = 0;
  size_t num_path_attrs = 0;

  size_t total() const {
    return num_count_attrs + num_keyword_attrs + num_language_attrs +
           num_path_attrs;
  }
};

/// Run every enabled derivation over the database's *direct* attributes,
/// using their offline statistics (parallel array indexed by AttrId covering
/// at least the direct attributes). New attributes are registered in `db`.
DerivationReport DeriveAll(AttributeStore* db, const std::vector<AttrStats>& stats,
                           const DerivationOptions& options);

/// Individual strategies (exposed for focused tests).
size_t DeriveCounts(AttributeStore* db, const std::vector<AttrStats>& stats,
                    const DerivationOptions& options);
size_t DeriveKeywords(AttributeStore* db, const std::vector<AttrStats>& stats,
                      const DerivationOptions& options);
size_t DeriveLanguages(AttributeStore* db, const std::vector<AttrStats>& stats,
                       const DerivationOptions& options);
size_t DerivePaths(AttributeStore* db, const std::vector<AttrStats>& stats,
                   const DerivationOptions& options);

/// Tokenize a text value into keyword tokens: lower-cased alphabetic runs of
/// at least `min_len` characters that are not stop words, capitalized as in
/// the paper's example ("Petroleum", "Production").
std::vector<std::string> ExtractKeywords(const std::string& text, size_t min_len);

/// Heuristic language detection over stop-word hits; returns "English",
/// "French", "German", "Spanish", or "" when undecidable.
std::string DetectLanguage(const std::string& text);

}  // namespace spade

#endif  // SPADE_DERIVE_DERIVATIONS_H_
