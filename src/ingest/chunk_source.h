#ifndef SPADE_INGEST_CHUNK_SOURCE_H_
#define SPADE_INGEST_CHUNK_SOURCE_H_

#include <istream>
#include <string>
#include <vector>

#include "src/rdf/graph.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/turtle.h"
#include "src/util/status.h"

namespace spade {

/// \brief Producer side of the streaming ingest: a pull source of
/// dictionary-encoded triple batches (the unit the pipeline overlaps —
/// chunk k's store building runs on workers while chunk k+1 parses).
///
/// Contract shared by every implementation:
///   - NextChunk(max, out, done) fills `out` (cleared first) with up to
///     `max` triples whose terms are already interned in the target graph's
///     dictionary, in document order. Statement-oriented formats (Turtle)
///     may overflow `max` rather than split a statement.
///   - *done = true means the source is exhausted; the final batch may
///     arrive together with done, and `out` may legitimately be empty on
///     any call (e.g. a comment-only stretch of input) — an empty chunk is
///     NOT an end-of-stream signal.
///   - An error (ParseError with an absolute line number, for the parsers)
///     ends the stream; subsequent calls return the same error.
///
/// Sources are single-threaded: the pipeline's parse loop is the only
/// caller, and it is the same thread that owns the dictionary during
/// ingest.
class TripleChunkSource {
 public:
  virtual ~TripleChunkSource() = default;

  virtual Status NextChunk(size_t max_triples, std::vector<Triple>* out,
                           bool* done) = 0;
};

/// Streams an N-Triples document line by line (never buffers the file).
class NTriplesChunkSource : public TripleChunkSource {
 public:
  /// `in` and `graph` are borrowed and must outlive the source.
  NTriplesChunkSource(std::istream& in, Graph* graph) : reader_(in, graph) {}

  Status NextChunk(size_t max_triples, std::vector<Triple>* out,
                   bool* done) override {
    return reader_.NextChunk(max_triples, out, done);
  }

 private:
  NTriplesChunkReader reader_;
};

/// Streams a Turtle document statement by statement (owns the text; see
/// TurtleChunkReader for why Turtle is buffered).
class TurtleChunkSource : public TripleChunkSource {
 public:
  TurtleChunkSource(std::string text, Graph* graph)
      : reader_(std::move(text), graph) {}

  Status NextChunk(size_t max_triples, std::vector<Triple>* out,
                   bool* done) override {
    return reader_.NextChunk(max_triples, out, done);
  }

 private:
  TurtleChunkReader reader_;
};

/// Replays pre-encoded triples in fixed caller-chosen batches — the test
/// and benchmark harness for the pipeline (including deliberately empty
/// mid-stream chunks). Triple TermIds must already be interned in the
/// target graph's dictionary.
class VectorChunkSource : public TripleChunkSource {
 public:
  explicit VectorChunkSource(std::vector<std::vector<Triple>> chunks)
      : chunks_(std::move(chunks)) {}

  Status NextChunk(size_t /*max_triples*/, std::vector<Triple>* out,
                   bool* done) override {
    out->clear();
    if (next_ < chunks_.size()) *out = chunks_[next_++];
    *done = next_ >= chunks_.size();
    return Status::OK();
  }

 private:
  std::vector<std::vector<Triple>> chunks_;
  size_t next_ = 0;
};

/// Drain `source` into `graph` sequentially (append every triple, then
/// freeze) — the fallback used when streaming ingest is disabled or
/// inapplicable (RDFS saturation rewrites the graph before the store can be
/// built), so every caller can hold a TripleChunkSource and still run the
/// sequential oracle path.
Status DrainChunkSource(TripleChunkSource* source, Graph* graph);

}  // namespace spade

#endif  // SPADE_INGEST_CHUNK_SOURCE_H_
