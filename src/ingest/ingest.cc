#include "src/ingest/ingest.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <unordered_map>

#include "src/util/failpoint.h"
#include "src/util/timer.h"

namespace spade {

Status DrainChunkSource(TripleChunkSource* source, Graph* graph) {
  std::vector<Triple> chunk;
  bool done = false;
  while (!done) {
    SPADE_RETURN_NOT_OK(source->NextChunk(1 << 16, &chunk, &done));
    for (const Triple& t : chunk) graph->Add(t);
  }
  graph->Freeze();
  return Status::OK();
}

namespace {

using Row = AttributeTable::Row;

/// One parsed chunk's contribution to the store: the raw triples (freed by
/// the scatter task) and, after scattering, one sorted deduplicated run of
/// (subject, object) rows per property — a partial CSR builder. The parse
/// thread appends entries to a deque (stable element addresses) and only
/// the chunk's own scatter task writes the entry, so parse and scatter
/// never touch the same memory without a ThreadPool happens-before edge.
struct ChunkRuns {
  std::vector<Triple> triples;
  std::unordered_map<TermId, std::vector<Row>> runs;
  double begin_ms = 0;  ///< scatter task interval, relative to pipeline t0
  double end_ms = 0;
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Status RunStreamingIngest(TripleChunkSource* source, Graph* graph,
                          AttributeStore* store,
                          std::vector<AttrStats>* offline_stats,
                          TaskScheduler* scheduler,
                          const IngestOptions& options,
                          std::function<void()> post_parse_task,
                          IngestStats* stats) {
  assert(store->num_attributes() == 0 &&
         "streaming ingest builds the direct attributes from scratch");
  *stats = IngestStats{};
  const auto t0 = std::chrono::steady_clock::now();
  const TermId rdf_type = graph->rdf_type();
  const size_t chunk_budget = std::max<size_t>(1, options.chunk_triples);
  const size_t inflight_cap =
      options.max_inflight_chunks != 0
          ? options.max_inflight_chunks
          : std::max<size_t>(4, 2 * scheduler->num_threads());

  // --- Stage 1+2: parse on this thread, scatter chunk k on workers while
  // chunk k+1 parses. The deque gives chunk entries stable addresses across
  // producer appends.
  std::deque<ChunkRuns> chunks;
  TaskGroup scatter_group(scheduler);
  std::vector<Triple> buffer;
  bool done = false;
  Status parse_status = Status::OK();
  while (!done) {
    // Chunk boundary: the one cancellation point of the parse loop. On
    // cancel the in-flight scatter tasks drain below (they reference
    // `chunks`) and the caller gets the same partial-graph contract as a
    // parse error.
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      parse_status = Status::Cancelled("ingest cancelled at chunk boundary");
      break;
    }
    parse_status = [] {
      SPADE_FAILPOINT_STATUS("ingest.chunk");
      return Status::OK();
    }();
    if (!parse_status.ok()) break;
    parse_status = source->NextChunk(chunk_budget, &buffer, &done);
    if (!parse_status.ok()) break;
    if (buffer.empty()) continue;  // e.g. a comment-only stretch: not an EOF
    stats->num_raw_triples += buffer.size();
    stats->peak_chunk_triples =
        std::max(stats->peak_chunk_triples, buffer.size());
    ++stats->num_chunks;
    for (const Triple& t : buffer) graph->Add(t);
    scatter_group.WaitPendingBelow(inflight_cap);  // bound buffered chunks
    chunks.emplace_back();
    ChunkRuns* chunk = &chunks.back();
    chunk->triples.swap(buffer);
    scatter_group.Run([chunk, rdf_type, t0] {
      chunk->begin_ms = MsSince(t0);
      SPADE_FAILPOINT("ingest.scatter");
      for (const Triple& t : chunk->triples) {
        if (t.p == rdf_type) continue;  // drives CFS selection, not analysis
        chunk->runs[t.p].emplace_back(t.s, t.o);
      }
      for (auto& [p, rows] : chunk->runs) {
        std::sort(rows.begin(), rows.end());
        rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      }
      std::vector<Triple>().swap(chunk->triples);
      chunk->end_ms = MsSince(t0);
    });
  }
  const double parse_end_ms = MsSince(t0);
  stats->parse_ms = parse_end_ms;
  try {
    scatter_group.Wait();  // tasks reference `chunks`; drain even on error
  } catch (const std::exception& e) {
    if (parse_status.ok()) {
      parse_status =
          Status::Internal(std::string("ingest scatter task failed: ") +
                           e.what());
    }
  } catch (...) {
    if (parse_status.ok()) {
      parse_status = Status::Internal("ingest scatter task failed");
    }
  }
  if (!parse_status.ok()) return parse_status;

  // --- Stage 3: freeze, then run the caller's post-parse task (the
  // structural summary) concurrently with the per-attribute merge + seal +
  // statistics fan-out.
  graph->Freeze();
  TaskGroup post_group(scheduler);
  if (post_parse_task) post_group.Run(std::move(post_parse_task));

  // Ascending property-id order — the order BuildDirectAttributes iterates
  // AllProperties() — so AttrIds and collision-suffixed names match the
  // sequential build exactly.
  std::vector<TermId> props;
  for (const ChunkRuns& chunk : chunks) {
    for (const auto& [p, rows] : chunk.runs) props.push_back(p);
  }
  std::sort(props.begin(), props.end());
  props.erase(std::unique(props.begin(), props.end()), props.end());

  std::vector<AttributeTable*> tables;
  tables.reserve(props.size());
  for (TermId p : props) tables.push_back(store->AddDirectAttributeShell(p));
  offline_stats->assign(props.size(), AttrStats{});

  std::vector<double> build_ms(props.size(), 0);
  std::vector<double> stat_ms(props.size(), 0);
  Status seal_status = Status::OK();
  try {
    scheduler->ParallelFor(props.size(), [&](size_t i) {
      Timer timer;
      SPADE_FAILPOINT("ingest.seal");
      std::vector<const std::vector<Row>*> runs;
      runs.reserve(chunks.size());
      for (const ChunkRuns& chunk : chunks) {
        auto it = chunk.runs.find(props[i]);
        if (it != chunk.runs.end()) runs.push_back(&it->second);
      }
      tables[i]->SealFromSortedRuns(runs);  // ascending chunk order
      build_ms[i] = timer.ElapsedMillis();
      timer.Restart();
      // The statistics pass starts on this sealed attribute while other
      // attributes are still merging (and the summary still building).
      (*offline_stats)[i] = ComputeAttrStats(*store, static_cast<AttrId>(i));
      stat_ms[i] = timer.ElapsedMillis();
    });
  } catch (const std::exception& e) {
    seal_status = Status::Internal(
        std::string("ingest merge-seal task failed: ") + e.what());
  } catch (...) {
    seal_status = Status::Internal("ingest merge-seal task failed");
  }
  try {
    post_group.Wait();  // the post-parse task references caller state; drain
  } catch (const std::exception& e) {
    if (seal_status.ok()) {
      seal_status = Status::Internal(
          std::string("ingest post-parse task failed: ") + e.what());
    }
  } catch (...) {
    if (seal_status.ok()) {
      seal_status = Status::Internal("ingest post-parse task failed");
    }
  }
  if (!seal_status.ok()) return seal_status;

  for (size_t i = 0; i < props.size(); ++i) {
    stats->build_work_ms += build_ms[i];
    stats->stats_work_ms += stat_ms[i];
  }
  for (const ChunkRuns& chunk : chunks) {
    stats->scatter_work_ms += chunk.end_ms - chunk.begin_ms;
    if (scheduler->parallel()) {
      // Worker time inside the parse window: the cost the overlap hid.
      stats->overlap_ms += std::max(
          0.0, std::min(chunk.end_ms, parse_end_ms) - chunk.begin_ms);
    }
  }
  stats->wall_ms = MsSince(t0);
  return Status::OK();
}

void ComputeAttrStatsRange(const AttributeStore& db, AttrId begin,
                           TaskScheduler* scheduler,
                           std::vector<AttrStats>* out) {
  const size_t n = db.num_attributes();
  out->resize(n);
  if (begin >= n) return;
  scheduler->ParallelFor(n - begin, [&](size_t i) {
    const AttrId a = begin + static_cast<AttrId>(i);
    (*out)[a] = ComputeAttrStats(db, a);
  });
}

}  // namespace spade
