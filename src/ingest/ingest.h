#ifndef SPADE_INGEST_INGEST_H_
#define SPADE_INGEST_INGEST_H_

#include <functional>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/ingest/chunk_source.h"
#include "src/stats/attr_stats.h"
#include "src/store/attribute_store.h"
#include "src/util/cancel.h"
#include "src/util/status.h"

namespace spade {

/// Knobs of the streaming offline build (SpadeOptions::ingest).
struct IngestOptions {
  /// Master switch: off keeps the strictly sequential offline phase — the
  /// oracle the streamed build is verified against (byte-identical store,
  /// identical statistics and downstream results).
  bool enabled = false;
  /// Triple budget per parsed chunk: the granularity of parse/build overlap
  /// and the unit of the peak-chunk statistic. Statement-oriented sources
  /// (Turtle) may overflow a chunk rather than split a statement.
  size_t chunk_triples = 65536;
  /// Backpressure: at most this many scattered-but-unmerged chunks in
  /// flight before the parser blocks (0 = auto: 2x compute threads, min 4).
  size_t max_inflight_chunks = 0;
  /// Cooperative cancellation, checked at chunk boundaries; null = none.
  /// On cancel the pipeline drains in-flight tasks and returns
  /// Status::Cancelled — the graph is left partially filled, the store
  /// unbuilt (same contract as a parse error).
  const CancelToken* cancel = nullptr;
};

/// Cost profile of one streaming ingest run (surfaced via SpadeReport and
/// the CLI/bench output). Work fields sum per-task time across workers;
/// wall_ms is the single number that measures end-to-end speedup.
struct IngestStats {
  size_t num_chunks = 0;          ///< non-empty chunks produced by the source
  size_t peak_chunk_triples = 0;  ///< largest single chunk
  size_t num_raw_triples = 0;     ///< parsed triples, before graph dedup
  double wall_ms = 0;             ///< whole pipeline: first pull to last seal
  double parse_ms = 0;            ///< producer loop (parse + graph append)
  double scatter_work_ms = 0;     ///< per-chunk group/sort/dedup work
  double build_work_ms = 0;       ///< per-attribute run merge + CSR seal work
  double stats_work_ms = 0;       ///< per-attribute offline statistics work
  /// Worker time that executed while the parser was still producing — the
  /// work the overlap hides entirely. 0 on a serial scheduler (nothing
  /// overlaps when every stage runs inline on one thread).
  double overlap_ms = 0;
};

/// \brief The streaming offline build (ROADMAP "Async ingest"): overlap RDF
/// parsing, attribute-store construction and the offline statistics pass on
/// one TaskScheduler.
///
/// Stage structure (see ARCHITECTURE.md "The ingest pipeline"):
///   1. The calling thread pulls chunk k from `source` (parsing and
///      dictionary interning stay single-threaded — interning order defines
///      TermIds) and appends its triples to `graph`.
///   2. A scatter task per chunk — running on workers while chunk k+1
///      parses — groups the chunk's rows by property and sorts/dedups each
///      group into a per-(chunk, attribute) sorted run: the partial CSR
///      builders.
///   3. After the final chunk: the graph freezes, `post_parse_task` (the
///      pipeline hands the structural-summary build in here) starts on a
///      worker, and a ParallelFor over the attributes — registered in
///      ascending property-id order, exactly BuildDirectAttributes' order —
///      merges each attribute's runs in ascending chunk order
///      (AttributeTable::SealFromSortedRuns) and immediately computes that
///      attribute's offline statistics: the statistics pass starts on
///      sealed attributes while other attributes are still merging.
///
/// The sealed store is byte-identical to the sequential build and the
/// statistics are identical (same pure function of the sealed table), for
/// every chunk size and thread count; only wall-clock changes.
///
/// `store` must be empty and `offline_stats` is overwritten. On a parse
/// error the stream's Status (absolute line number) is returned after
/// in-flight tasks drain; the graph is left partially filled, the store
/// unbuilt. `post_parse_task` may be empty.
Status RunStreamingIngest(TripleChunkSource* source, Graph* graph,
                          AttributeStore* store,
                          std::vector<AttrStats>* offline_stats,
                          TaskScheduler* scheduler,
                          const IngestOptions& options,
                          std::function<void()> post_parse_task,
                          IngestStats* stats);

/// Offline statistics for attributes [begin, db.num_attributes()), fanned
/// out per attribute on `scheduler` into (*out)[begin..] (the vector is
/// resized to num_attributes()). Each slot is an independent pure function
/// of its sealed table, so values are identical at every thread count. The
/// pipeline uses this for the derived attributes, whose tables only exist
/// after the (sequential) derivation enumeration.
void ComputeAttrStatsRange(const AttributeStore& db, AttrId begin,
                           TaskScheduler* scheduler,
                           std::vector<AttrStats>* out);

}  // namespace spade

#endif  // SPADE_INGEST_INGEST_H_
