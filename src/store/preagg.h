#ifndef SPADE_STORE_PREAGG_H_
#define SPADE_STORE_PREAGG_H_

#include <vector>

#include "src/store/attribute_store.h"

namespace spade {

/// \brief Per-fact pre-aggregated measure values (Section 3, offline phase;
/// consumed by Measure Loading in Section 4.3).
///
/// For an attribute M and a CFS, slot f holds the aggregate of M's values on
/// fact f: count(M), sum(M), min(M), max(M). Facts without the attribute have
/// count 0. Group-level aggregates then combine per-fact slots so that each
/// fact contributes its values exactly once per group — the key to MVDCube's
/// correctness under multi-valued dimensions:
///
///   group count = sum of fact counts     group sum = sum of fact sums
///   group avg   = group sum / group count
///   group min   = min of fact mins       group max = max of fact maxs
///
/// The paper's single-slot optimization for single-valued numeric properties
/// is reflected in `single_valued`: min == max == sum for every fact, so
/// callers may read one array.
struct MeasureVector {
  std::vector<uint32_t> count;
  std::vector<double> sum;
  std::vector<double> min;
  std::vector<double> max;
  bool numeric = false;        ///< all present values parse as numbers
  bool single_valued = false;  ///< no fact has two values

  size_t size() const { return count.size(); }

  /// Size all slots to `n` facts and reset them to the identity of the
  /// per-fact merge (count 0, +/-inf min/max sentinels). The one definition
  /// both the unsharded build and the sharded per-range fill initialize
  /// from — the sharded path's bit-identical guarantee depends on it.
  void Init(size_t n);
};

/// Build the measure vector of `attr` over the facts of `cfs`. Non-numeric
/// values contribute to count only; `numeric` is false if any present value
/// fails to parse.
MeasureVector BuildMeasureVector(const AttributeStore& db, const CfsIndex& cfs,
                                 AttrId attr);

/// Table-wide flags observed while filling one fact range; AND-combined
/// across shards (both are "no counterexample seen" properties, so the
/// combination over disjoint ranges equals the single-pass result exactly).
struct MeasureFillFlags {
  bool numeric = true;
  bool single_valued = true;
};

/// Fill slots [range.begin, range.end) of `mv` (already sized to cfs.size()).
/// Each fact's slot depends only on that fact's own rows, so disjoint ranges
/// can be filled by concurrent workers writing disjoint slots — the
/// within-CFS sharding path of the measure-loading stage.
MeasureFillFlags FillMeasureVectorRange(const AttributeStore& db,
                                        const CfsIndex& cfs, AttrId attr,
                                        FactRange range, MeasureVector* mv);

}  // namespace spade

#endif  // SPADE_STORE_PREAGG_H_
