#ifndef SPADE_STORE_ATTRIBUTE_STORE_H_
#define SPADE_STORE_ATTRIBUTE_STORE_H_

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/rdf/graph.h"
#include "src/util/span.h"
#include "src/util/status.h"

namespace spade {

/// Dense index of an attribute in the AttributeStore registry.
using AttrId = uint32_t;

/// Dense index of a fact inside one candidate fact set.
using FactId = uint32_t;

constexpr FactId kInvalidFact = static_cast<FactId>(-1);

/// How an attribute came to exist (Section 3, Derived Property Enumeration).
enum class AttrOrigin : uint8_t {
  kDirect = 0,   ///< a property of the RDF graph
  kCount,        ///< count of a multi-valued property
  kKeyword,      ///< keywords occurring in a text property
  kLanguage,     ///< language of a text property
  kPath,         ///< one-hop path p1/p2
};

const char* AttrOriginName(AttrOrigin origin);

/// \brief One attribute table t_a in columnar CSR layout: the triples
/// (s, a, o) stored as a sorted distinct-subject column, an offset column,
/// and an object column grouped by subject and sorted within each group
/// (Section 4.3 storage model, laid out for sequential scans).
///
/// Lifecycle: rows are staged with AddRow() during construction, then Seal()
/// sorts, deduplicates and compacts them into the three columns and frees the
/// staging buffer. Every read accessor requires a sealed table and is
/// zero-allocation: scans walk the columns directly, point lookups return a
/// Span into the object column.
///
/// A table can also *borrow* its columns (BorrowColumns): the snapshot
/// loader points the three column views straight into an mmap'd segment and
/// the table is sealed without ever owning the data. All read accessors go
/// through the views, so owned and borrowed tables are indistinguishable to
/// every consumer.
class AttributeTable {
 public:
  /// One staged (subject, object) row; sorted-run merging (the streaming
  /// ingest's chunked build) works on slices of these.
  using Row = std::pair<TermId, TermId>;

  /// Human-readable name: the property's local name for direct attributes,
  /// "count(x)" / "kwIn(x)" / "langOf(x)" / "p/q" for derived ones.
  std::string name;
  AttrOrigin origin = AttrOrigin::kDirect;
  /// Property term for direct attributes (kInvalidTerm for derived).
  TermId property = kInvalidTerm;
  /// The attribute this one was derived from (kInvalidAttr if direct).
  /// Enumeration rule 3(b-ii)/(c): an attribute and its derivation cannot be
  /// dimensions of the same lattice nor dimension+measure of one aggregate.
  AttrId derived_from = static_cast<AttrId>(-1);

  AttributeTable() = default;
  // The column views must track the owning vectors across copies and moves
  // (a moved vector keeps its heap buffer, a copied one gets a fresh one).
  AttributeTable(const AttributeTable& other) { *this = other; }
  AttributeTable& operator=(const AttributeTable& other) {
    if (this == &other) return *this;
    name = other.name;
    origin = other.origin;
    property = other.property;
    derived_from = other.derived_from;
    staging_ = other.staging_;
    subjects_ = other.subjects_;
    offsets_ = other.offsets_;
    objects_ = other.objects_;
    sealed_ = other.sealed_;
    borrowed_ = other.borrowed_;
    subjects_view_ = other.subjects_view_;
    offsets_view_ = other.offsets_view_;
    objects_view_ = other.objects_view_;
    RebindViews();
    return *this;
  }
  AttributeTable(AttributeTable&& other) noexcept { *this = std::move(other); }
  AttributeTable& operator=(AttributeTable&& other) noexcept {
    if (this == &other) return *this;
    name = std::move(other.name);
    origin = other.origin;
    property = other.property;
    derived_from = other.derived_from;
    staging_ = std::move(other.staging_);
    subjects_ = std::move(other.subjects_);
    offsets_ = std::move(other.offsets_);
    objects_ = std::move(other.objects_);
    sealed_ = other.sealed_;
    borrowed_ = other.borrowed_;
    subjects_view_ = other.subjects_view_;
    offsets_view_ = other.offsets_view_;
    objects_view_ = other.objects_view_;
    RebindViews();
    return *this;
  }

  // --- Building (staging rows; cheap appends, no ordering requirement).

  /// Stage one (subject, object) row. Must precede Seal(): rows staged
  /// after sealing would be silently invisible to every accessor.
  void AddRow(TermId subject, TermId object) {
    assert(!sealed_ && "AddRow after Seal(): staged rows would be lost");
    staging_.emplace_back(subject, object);
  }
  /// Rows staged so far (derivation loops cap their output on this).
  size_t num_staged() const { return staging_.size(); }

  /// Sort + dedup the staged rows and compact them into the CSR columns,
  /// freeing the staging buffer. Idempotent on an already-sealed table.
  void Seal();
  bool sealed() const { return sealed_; }

  /// Seal directly from pre-sorted runs: each run must be sorted by (s, o)
  /// and internally deduplicated (a parsed chunk's rows for this attribute,
  /// sorted on a worker while later chunks were still parsing). The runs are
  /// k-way-merged with cross-run deduplication straight into the CSR
  /// columns — no staging buffer, no global sort. Because Seal() produces
  /// the sorted deduplicated row sequence and the merge produces the same
  /// sequence from the same row multiset, the sealed columns are
  /// byte-identical to a single-shot AddRow+Seal build, for any chunking
  /// (the ingest keeps runs in ascending chunk order regardless, which also
  /// makes the merge's tie-break order deterministic). Must be the table's
  /// first and only seal; null/empty runs are permitted.
  void SealFromSortedRuns(const std::vector<const std::vector<Row>*>& runs);

  /// Seal the table directly onto externally owned columns (typically views
  /// into an mmap'd snapshot segment). The columns must be a valid CSR
  /// triple exactly as Seal() produces it: sorted distinct subjects,
  /// offsets of size num_subjects + 1 with offsets.back() == objects.size(),
  /// values grouped by subject and sorted within each group. The backing
  /// memory must outlive the table. Must be the table's first seal.
  void BorrowColumns(Span<TermId> subjects, Span<uint32_t> offsets,
                     Span<TermId> objects) {
    assert(!sealed_ && staging_.empty() &&
           "BorrowColumns on a table that was staged or sealed");
    subjects_view_ = subjects;
    offsets_view_ = offsets;
    objects_view_ = objects;
    borrowed_ = true;
    sealed_ = true;
  }
  /// True if the columns are views into external memory.
  bool borrowed() const { return borrowed_; }

  // --- Columnar read accessors (sealed tables only; none allocates).

  /// Total (subject, object) pairs.
  size_t num_rows() const { return objects_view_.size(); }
  bool empty() const { return objects_view_.empty(); }
  /// Distinct subjects, in ascending TermId order.
  Span<TermId> subjects() const { return subjects_view_; }
  size_t num_subjects() const { return subjects_view_.size(); }
  /// The i-th distinct subject (ascending order).
  TermId subject(size_t i) const { return subjects_view_[i]; }
  /// Object values of the i-th distinct subject, ascending, deduplicated.
  Span<TermId> values(size_t i) const {
    return objects_view_.subspan(offsets_view_[i],
                                 offsets_view_[i + 1] - offsets_view_[i]);
  }
  /// The whole object column (values grouped by subject).
  Span<TermId> objects() const { return objects_view_; }
  /// The offset column (size num_subjects() + 1; snapshot serialization).
  Span<uint32_t> offsets() const { return offsets_view_; }

  static constexpr size_t kNoSubject = static_cast<size_t>(-1);
  /// Position of `subject` in the subject column, kNoSubject if absent.
  size_t SubjectIndexOf(TermId subject) const;
  /// All object values of `subject` (empty span if absent), by binary search.
  Span<TermId> ValuesOf(TermId subject) const;

  /// Visit every (subject, object) row in sorted order: fn(subject, object).
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    const TermId* obj = objects_view_.data();
    const uint32_t* off = offsets_view_.data();
    for (size_t i = 0; i < subjects_view_.size(); ++i) {
      const TermId s = subjects_view_[i];
      for (uint32_t k = off[i], end = off[i + 1]; k < end; ++k) {
        fn(s, obj[k]);
      }
    }
  }

 private:
  /// Point the views at the owned columns (no-op for borrowed tables, whose
  /// views already target external memory). Seal paths and the copy/move
  /// operations call this.
  void RebindViews() {
    if (borrowed_) return;
    subjects_view_ = Span<TermId>(subjects_);
    offsets_view_ = Span<uint32_t>(offsets_);
    objects_view_ = Span<TermId>(objects_);
  }

  std::vector<Row> staging_;
  std::vector<TermId> subjects_;   ///< sorted distinct subjects
  std::vector<uint32_t> offsets_;  ///< size num_subjects()+1; objects_ slices
  std::vector<TermId> objects_;    ///< values grouped by subject, sorted
  /// All read accessors go through these views: owned mode points them at
  /// the vectors above (RebindViews), borrowed mode at external memory.
  Span<TermId> subjects_view_;
  Span<uint32_t> offsets_view_;
  Span<TermId> objects_view_;
  bool sealed_ = false;
  bool borrowed_ = false;
};

constexpr AttrId kInvalidAttr = static_cast<AttrId>(-1);

/// Merge join of `table`'s subject column against `members[begin, end)`, a
/// slice of a sorted CFS member list: calls fn(member_index, subject_index)
/// for every member that is a subject of the table, in ascending order. The
/// scan starts at the slice's own subjects, so K range-disjoint calls do
/// O(S) combined subject-scan work. This is the one audited implementation
/// of the store's central scan discipline — statistics, dimension encoding,
/// enumeration transactions and measure loading all go through it.
template <typename Fn>
void ForEachCfsMatch(const AttributeTable& table,
                     const std::vector<TermId>& members, size_t begin,
                     size_t end, Fn&& fn) {
  if (begin >= end) return;
  Span<TermId> subjects = table.subjects();
  size_t si = static_cast<size_t>(
      std::lower_bound(subjects.begin(), subjects.end(), members[begin]) -
      subjects.begin());
  for (size_t mi = begin; mi < end && si < subjects.size(); ++mi) {
    while (si < subjects.size() && subjects[si] < members[mi]) ++si;
    if (si == subjects.size() || subjects[si] != members[mi]) continue;
    fn(mi, si);
  }
}

/// ForEachCfsMatch over the whole member list.
template <typename Fn>
void ForEachCfsMatch(const AttributeTable& table,
                     const std::vector<TermId>& members, Fn&& fn) {
  ForEachCfsMatch(table, members, 0, members.size(), std::forward<Fn>(fn));
}

/// \brief Dense fact numbering for one CFS: bitmaps and measure vectors are
/// aligned on these ids ("ordered by the IDs of the CFs", Section 4.3).
class CfsIndex {
 public:
  explicit CfsIndex(std::vector<TermId> members_sorted);

  FactId FactOf(TermId node) const;
  TermId NodeOf(FactId fact) const { return members_[fact]; }
  size_t size() const { return members_.size(); }
  const std::vector<TermId>& members() const { return members_; }

 private:
  std::vector<TermId> members_;  // sorted by TermId; FactId = position
};

/// \brief Half-open fact-id range [begin, end): the unit of within-CFS
/// sharding. Shard s of K over a CFS of n facts owns [s*n/K, (s+1)*n/K) —
/// contiguous ranges in ascending fact order, so per-shard partial results
/// concatenate/merge back in ascending shard order exactly.
struct FactRange {
  FactId begin = 0;
  FactId end = 0;
  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// The `num_shards` contiguous ranges partitioning `num_facts` facts.
/// Ranges cover [0, num_facts) exactly; trailing ranges may be empty when
/// num_shards > num_facts.
std::vector<FactRange> MakeFactShards(size_t num_facts, size_t num_shards);

/// \brief The columnar analytical store: attribute tables over one RDF graph.
///
/// The paper stores one table per attribute in PostgreSQL via OntoSQL; this
/// class is the in-memory equivalent and the single data access point for
/// statistics, derivations, and all three cube algorithms. Tables live in a
/// deque, so a reference obtained from attribute() stays valid across later
/// AddAttribute() calls (derivations read source tables while registering
/// new ones).
class AttributeStore {
 public:
  explicit AttributeStore(Graph* graph) : graph_(graph) {}

  /// Build one table per distinct property of the graph (skipping rdf:type,
  /// which drives CFS selection instead of analysis). Offline step.
  void BuildDirectAttributes();

  /// Register a derived attribute table (seals it). Returns its id.
  AttrId AddAttribute(AttributeTable table);

  /// Register an *unsealed* direct-attribute shell for `property` — name,
  /// origin and collision-suffix assigned exactly as BuildDirectAttributes
  /// would — and return a pointer for the caller to fill and seal. The
  /// streaming ingest registers shells in ascending property-id order (the
  /// order BuildDirectAttributes iterates AllProperties()), then seals them
  /// in parallel; registration order is what keeps names, ids and therefore
  /// the whole store identical to the sequential build. The pointer stays
  /// valid across later registrations (deque storage).
  AttributeTable* AddDirectAttributeShell(TermId property);

  const AttributeTable& attribute(AttrId id) const { return attributes_[id]; }
  size_t num_attributes() const { return attributes_.size(); }

  std::optional<AttrId> FindAttribute(const std::string& name) const;

  /// Ids of all direct attributes.
  std::vector<AttrId> DirectAttributes() const;

  const Graph& graph() const { return *graph_; }

  /// Derivations intern new literal values (counts, keywords, languages).
  Dictionary* mutable_dict() { return &graph_->dict(); }

  /// Human-readable local name of a property IRI (suffix after '#' or '/').
  static std::string LocalName(const std::string& iri);

 private:
  /// Apply the shared collision-suffix discipline ("name", "name#2", ...)
  /// and record the table in the registry. Both registration paths
  /// (AddAttribute, AddDirectAttributeShell) go through here, so sequential
  /// and chunked builds can never disagree on naming.
  AttrId Register(AttributeTable table);

  Graph* graph_;
  std::deque<AttributeTable> attributes_;  ///< deque: stable references
  std::unordered_map<std::string, AttrId> by_name_;
};

}  // namespace spade

#endif  // SPADE_STORE_ATTRIBUTE_STORE_H_
