#include "src/store/attribute_store.h"

#include <algorithm>
#include <queue>

namespace spade {

const char* AttrOriginName(AttrOrigin origin) {
  switch (origin) {
    case AttrOrigin::kDirect:
      return "direct";
    case AttrOrigin::kCount:
      return "count";
    case AttrOrigin::kKeyword:
      return "keyword";
    case AttrOrigin::kLanguage:
      return "language";
    case AttrOrigin::kPath:
      return "path";
  }
  return "?";
}

void AttributeTable::Seal() {
  if (sealed_) return;
  std::sort(staging_.begin(), staging_.end());
  staging_.erase(std::unique(staging_.begin(), staging_.end()),
                 staging_.end());
  // Exact reserve for the object column; the subject/offset columns grow
  // amortized (pre-counting distinct subjects would cost a second pass).
  objects_.reserve(staging_.size());
  for (const auto& [s, o] : staging_) {
    if (subjects_.empty() || subjects_.back() != s) {
      subjects_.push_back(s);
      offsets_.push_back(static_cast<uint32_t>(objects_.size()));
    }
    objects_.push_back(o);
  }
  offsets_.push_back(static_cast<uint32_t>(objects_.size()));
  std::vector<std::pair<TermId, TermId>>().swap(staging_);
  sealed_ = true;
  RebindViews();
}

void AttributeTable::SealFromSortedRuns(
    const std::vector<const std::vector<Row>*>& runs) {
  assert(!sealed_ && staging_.empty() &&
         "SealFromSortedRuns on a table that was staged or sealed");
  // Heap of (next row, run index): pops ascend by row, ties by run index —
  // ascending chunk order, so the pop sequence is deterministic and equal
  // duplicates collapse onto their first (earliest-chunk) occurrence.
  struct Cursor {
    Row row;
    size_t run;
    size_t pos;
  };
  struct Greater {
    bool operator()(const Cursor& a, const Cursor& b) const {
      if (a.row != b.row) return a.row > b.row;
      return a.run > b.run;
    }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, Greater> heap;
  size_t total = 0;
  for (size_t r = 0; r < runs.size(); ++r) {
    if (runs[r] == nullptr || runs[r]->empty()) continue;
    total += runs[r]->size();
    heap.push(Cursor{(*runs[r])[0], r, 0});
  }
  objects_.reserve(total);  // upper bound; cross-run duplicates shrink it
  bool any = false;
  Row last{};
  while (!heap.empty()) {
    Cursor top = heap.top();
    heap.pop();
    if (top.pos + 1 < runs[top.run]->size()) {
      heap.push(Cursor{(*runs[top.run])[top.pos + 1], top.run, top.pos + 1});
    }
    if (any && top.row == last) continue;  // duplicate across runs
    any = true;
    last = top.row;
    if (subjects_.empty() || subjects_.back() != top.row.first) {
      subjects_.push_back(top.row.first);
      offsets_.push_back(static_cast<uint32_t>(objects_.size()));
    }
    objects_.push_back(top.row.second);
  }
  offsets_.push_back(static_cast<uint32_t>(objects_.size()));
  sealed_ = true;
  RebindViews();
}

size_t AttributeTable::SubjectIndexOf(TermId subject) const {
  auto it = std::lower_bound(subjects_view_.begin(), subjects_view_.end(),
                             subject);
  if (it == subjects_view_.end() || *it != subject) return kNoSubject;
  return static_cast<size_t>(it - subjects_view_.begin());
}

Span<TermId> AttributeTable::ValuesOf(TermId subject) const {
  size_t i = SubjectIndexOf(subject);
  if (i == kNoSubject) return Span<TermId>();
  return values(i);
}

CfsIndex::CfsIndex(std::vector<TermId> members_sorted)
    : members_(std::move(members_sorted)) {
  // Defensive: dense ids require sorted unique members.
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
}

FactId CfsIndex::FactOf(TermId node) const {
  auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it == members_.end() || *it != node) return kInvalidFact;
  return static_cast<FactId>(it - members_.begin());
}

std::vector<FactRange> MakeFactShards(size_t num_facts, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  std::vector<FactRange> shards(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards[s].begin = static_cast<FactId>(s * num_facts / num_shards);
    shards[s].end = static_cast<FactId>((s + 1) * num_facts / num_shards);
  }
  return shards;
}

void AttributeStore::BuildDirectAttributes() {
  const TermId rdf_type = graph_->rdf_type();
  for (TermId p : graph_->AllProperties()) {
    if (p == rdf_type) continue;
    AttributeTable table;
    table.name = LocalName(graph_->dict().Get(p).lexical);
    table.origin = AttrOrigin::kDirect;
    table.property = p;
    graph_->Match(kInvalidTerm, p, kInvalidTerm, [&](const Triple& t) {
      table.AddRow(t.s, t.o);
    });
    AddAttribute(std::move(table));
  }
}

AttrId AttributeStore::Register(AttributeTable table) {
  // Disambiguate name collisions (two IRIs with the same local name).
  std::string name = table.name;
  int suffix = 2;
  while (by_name_.count(name)) {
    name = table.name + "#" + std::to_string(suffix++);
  }
  table.name = name;
  AttrId id = static_cast<AttrId>(attributes_.size());
  by_name_[table.name] = id;
  attributes_.push_back(std::move(table));
  return id;
}

AttrId AttributeStore::AddAttribute(AttributeTable table) {
  table.Seal();
  return Register(std::move(table));
}

AttributeTable* AttributeStore::AddDirectAttributeShell(TermId property) {
  AttributeTable table;
  table.name = LocalName(graph_->dict().Get(property).lexical);
  table.origin = AttrOrigin::kDirect;
  table.property = property;
  return &attributes_[Register(std::move(table))];
}

std::optional<AttrId> AttributeStore::FindAttribute(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<AttrId> AttributeStore::DirectAttributes() const {
  std::vector<AttrId> out;
  for (AttrId id = 0; id < attributes_.size(); ++id) {
    if (attributes_[id].origin == AttrOrigin::kDirect) out.push_back(id);
  }
  return out;
}

std::string AttributeStore::LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/");
  if (pos == std::string::npos || pos + 1 >= iri.size()) return iri;
  return iri.substr(pos + 1);
}

}  // namespace spade
