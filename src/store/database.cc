#include "src/store/database.h"

#include <algorithm>

namespace spade {

const char* AttrOriginName(AttrOrigin origin) {
  switch (origin) {
    case AttrOrigin::kDirect:
      return "direct";
    case AttrOrigin::kCount:
      return "count";
    case AttrOrigin::kKeyword:
      return "keyword";
    case AttrOrigin::kLanguage:
      return "language";
    case AttrOrigin::kPath:
      return "path";
  }
  return "?";
}

std::vector<TermId> AttributeTable::ValuesOf(TermId subject) const {
  std::vector<TermId> out;
  auto lo = std::lower_bound(
      rows.begin(), rows.end(), std::make_pair(subject, TermId(0)));
  for (auto it = lo; it != rows.end() && it->first == subject; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<TermId> AttributeTable::Subjects() const {
  std::vector<TermId> out;
  for (const auto& [s, o] : rows) {
    if (out.empty() || out.back() != s) out.push_back(s);
  }
  return out;
}

void AttributeTable::SortRows() {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
}

CfsIndex::CfsIndex(std::vector<TermId> members_sorted)
    : members_(std::move(members_sorted)) {
  // Defensive: dense ids require sorted unique members.
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
}

FactId CfsIndex::FactOf(TermId node) const {
  auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it == members_.end() || *it != node) return kInvalidFact;
  return static_cast<FactId>(it - members_.begin());
}

void Database::BuildDirectAttributes() {
  const TermId rdf_type = graph_->rdf_type();
  for (TermId p : graph_->AllProperties()) {
    if (p == rdf_type) continue;
    AttributeTable table;
    table.name = LocalName(graph_->dict().Get(p).lexical);
    table.origin = AttrOrigin::kDirect;
    table.property = p;
    graph_->Match(kInvalidTerm, p, kInvalidTerm, [&](const Triple& t) {
      table.rows.emplace_back(t.s, t.o);
    });
    AddAttribute(std::move(table));
  }
}

AttrId Database::AddAttribute(AttributeTable table) {
  table.SortRows();
  // Disambiguate name collisions (two IRIs with the same local name).
  std::string name = table.name;
  int suffix = 2;
  while (by_name_.count(name)) {
    name = table.name + "#" + std::to_string(suffix++);
  }
  table.name = name;
  AttrId id = static_cast<AttrId>(attributes_.size());
  by_name_[table.name] = id;
  attributes_.push_back(std::move(table));
  return id;
}

std::optional<AttrId> Database::FindAttribute(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<AttrId> Database::DirectAttributes() const {
  std::vector<AttrId> out;
  for (AttrId id = 0; id < attributes_.size(); ++id) {
    if (attributes_[id].origin == AttrOrigin::kDirect) out.push_back(id);
  }
  return out;
}

std::string Database::LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/");
  if (pos == std::string::npos || pos + 1 >= iri.size()) return iri;
  return iri.substr(pos + 1);
}

}  // namespace spade
