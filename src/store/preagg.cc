#include "src/store/preagg.h"

#include <algorithm>
#include <limits>

namespace spade {

void MeasureVector::Init(size_t n) {
  count.assign(n, 0);
  sum.assign(n, 0.0);
  min.assign(n, std::numeric_limits<double>::infinity());
  max.assign(n, -std::numeric_limits<double>::infinity());
}

MeasureFillFlags FillMeasureVectorRange(const AttributeStore& db,
                                        const CfsIndex& cfs, AttrId attr,
                                        FactRange range, MeasureVector* mv) {
  const AttributeTable& table = db.attribute(attr);
  const Dictionary& dict = db.graph().dict();
  MeasureFillFlags flags;

  // A matched subject contributes its whole value slice to one slot.
  ForEachCfsMatch(table, cfs.members(), range.begin, range.end,
                  [&](size_t mi, size_t si) {
    FactId f = static_cast<FactId>(mi);
    Span<TermId> vals = table.values(si);
    mv->count[f] = static_cast<uint32_t>(vals.size());
    if (vals.size() > 1) flags.single_valued = false;
    for (TermId o : vals) {
      double v;
      if (dict.NumericValue(o, &v)) {
        mv->sum[f] += v;
        mv->min[f] = std::min(mv->min[f], v);
        mv->max[f] = std::max(mv->max[f], v);
      } else {
        flags.numeric = false;
      }
    }
  });
  return flags;
}

MeasureVector BuildMeasureVector(const AttributeStore& db, const CfsIndex& cfs,
                                 AttrId attr) {
  MeasureVector mv;
  size_t n = cfs.size();
  mv.Init(n);
  MeasureFillFlags flags = FillMeasureVectorRange(
      db, cfs, attr, FactRange{0, static_cast<FactId>(n)}, &mv);
  mv.numeric = flags.numeric;
  mv.single_valued = flags.single_valued;
  return mv;
}

}  // namespace spade
