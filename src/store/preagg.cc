#include "src/store/preagg.h"

#include <algorithm>
#include <limits>

namespace spade {

MeasureVector BuildMeasureVector(const Database& db, const CfsIndex& cfs,
                                 AttrId attr) {
  const AttributeTable& table = db.attribute(attr);
  const Dictionary& dict = db.graph().dict();

  MeasureVector mv;
  size_t n = cfs.size();
  mv.count.assign(n, 0);
  mv.sum.assign(n, 0.0);
  mv.min.assign(n, std::numeric_limits<double>::infinity());
  mv.max.assign(n, -std::numeric_limits<double>::infinity());
  mv.numeric = true;
  mv.single_valued = true;

  // Merge join: table rows and CFS members are both sorted by TermId.
  const auto& members = cfs.members();
  size_t mi = 0;
  for (const auto& [s, o] : table.rows) {
    while (mi < members.size() && members[mi] < s) ++mi;
    if (mi == members.size()) break;
    if (members[mi] != s) continue;
    FactId f = static_cast<FactId>(mi);
    if (++mv.count[f] > 1) mv.single_valued = false;
    double v;
    if (dict.NumericValue(o, &v)) {
      mv.sum[f] += v;
      mv.min[f] = std::min(mv.min[f], v);
      mv.max[f] = std::max(mv.max[f], v);
    } else {
      mv.numeric = false;
    }
  }
  return mv;
}

}  // namespace spade
