#ifndef SPADE_STORE_DATABASE_H_
#define SPADE_STORE_DATABASE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/rdf/graph.h"
#include "src/util/status.h"

namespace spade {

/// Dense index of an attribute in the Database registry.
using AttrId = uint32_t;

/// Dense index of a fact inside one candidate fact set.
using FactId = uint32_t;

constexpr FactId kInvalidFact = static_cast<FactId>(-1);

/// How an attribute came to exist (Section 3, Derived Property Enumeration).
enum class AttrOrigin : uint8_t {
  kDirect = 0,   ///< a property of the RDF graph
  kCount,        ///< count of a multi-valued property
  kKeyword,      ///< keywords occurring in a text property
  kLanguage,     ///< language of a text property
  kPath,         ///< one-hop path p1/p2
};

const char* AttrOriginName(AttrOrigin origin);

/// \brief One attribute table t_a: the (subject, object) pairs of all triples
/// (s, a, o), sorted by subject (Section 4.3 storage model).
struct AttributeTable {
  /// Human-readable name: the property's local name for direct attributes,
  /// "count(x)" / "kwIn(x)" / "langOf(x)" / "p/q" for derived ones.
  std::string name;
  AttrOrigin origin = AttrOrigin::kDirect;
  /// Property term for direct attributes (kInvalidTerm for derived).
  TermId property = kInvalidTerm;
  /// The attribute this one was derived from (kInvalidAttr if direct).
  /// Enumeration rule 3(b-ii)/(c): an attribute and its derivation cannot be
  /// dimensions of the same lattice nor dimension+measure of one aggregate.
  AttrId derived_from = static_cast<AttrId>(-1);
  /// Rows sorted by subject, then object.
  std::vector<std::pair<TermId, TermId>> rows;

  /// All object values of `subject`, by binary search.
  std::vector<TermId> ValuesOf(TermId subject) const;
  /// Distinct subjects, in id order.
  std::vector<TermId> Subjects() const;
  void SortRows();
};

constexpr AttrId kInvalidAttr = static_cast<AttrId>(-1);

/// \brief Dense fact numbering for one CFS: bitmaps and measure vectors are
/// aligned on these ids ("ordered by the IDs of the CFs", Section 4.3).
class CfsIndex {
 public:
  explicit CfsIndex(std::vector<TermId> members_sorted);

  FactId FactOf(TermId node) const;
  TermId NodeOf(FactId fact) const { return members_[fact]; }
  size_t size() const { return members_.size(); }
  const std::vector<TermId>& members() const { return members_; }

 private:
  std::vector<TermId> members_;  // sorted by TermId; FactId = position
};

/// \brief The analytical store: attribute tables over one RDF graph.
///
/// The paper stores one table per attribute in PostgreSQL via OntoSQL; this
/// class is the in-memory equivalent and the single data access point for
/// statistics, derivations, and all three cube algorithms.
class Database {
 public:
  explicit Database(Graph* graph) : graph_(graph) {}

  /// Build one table per distinct property of the graph (skipping rdf:type,
  /// which drives CFS selection instead of analysis). Offline step.
  void BuildDirectAttributes();

  /// Register a derived attribute table (sorts its rows). Returns its id.
  AttrId AddAttribute(AttributeTable table);

  const AttributeTable& attribute(AttrId id) const { return attributes_[id]; }
  size_t num_attributes() const { return attributes_.size(); }

  std::optional<AttrId> FindAttribute(const std::string& name) const;

  /// Ids of all direct attributes.
  std::vector<AttrId> DirectAttributes() const;

  const Graph& graph() const { return *graph_; }

  /// Derivations intern new literal values (counts, keywords, languages).
  Dictionary* mutable_dict() { return &graph_->dict(); }

  /// Human-readable local name of a property IRI (suffix after '#' or '/').
  static std::string LocalName(const std::string& iri);

 private:
  Graph* graph_;
  std::vector<AttributeTable> attributes_;
  std::unordered_map<std::string, AttrId> by_name_;
};

}  // namespace spade

#endif  // SPADE_STORE_DATABASE_H_
