#ifndef SPADE_STORE_DELTA_H_
#define SPADE_STORE_DELTA_H_

/// \file delta.h
/// \brief Store-level delta maintenance (the ROADMAP's "Incremental
/// maintenance for dynamic graphs" direction).
///
/// One mutation batch reaches the store as a GraphDelta (net added / removed
/// triples, see src/rdf/graph.h). This module turns that into per-attribute
/// work:
///
///  - GroupDeltaByProperty splits the net triple delta into per-property row
///    deltas (sorted unique (subject, object) pairs). rdf:type triples are
///    reported as a flag instead — they change CFS membership, not any
///    attribute table.
///  - MergeTableWithDelta merges one property's row delta into its sealed
///    base table, producing a new sealed table identical to a fresh Seal()
///    of the mutated row multiset: rows are unique per property (triple <->
///    row is a bijection), both inputs are sorted, and subtraction + merge
///    preserve order and uniqueness, so the merged row sequence equals the
///    sorted unique sequence a fresh build would sort out of the graph.
///
/// It also hosts the canonicalization helpers shared by Spade::Compact() and
/// the compaction oracle test: a term-level (representation-independent)
/// rendering of a graph's triples, plus a builder that re-interns them in one
/// canonical order. Two graphs holding the same logical triple set
/// canonicalize to byte-identical dictionaries and triple indexes — which is
/// what makes "compaction output == fresh sequential build" well-defined
/// even though a long-lived dictionary accumulates retired terms.

#include <string>
#include <vector>

#include "src/rdf/graph.h"
#include "src/store/attribute_store.h"

namespace spade {

/// Net row delta of one property's attribute table.
struct PropertyDelta {
  TermId property = kInvalidTerm;
  /// Net-new rows, sorted by (subject, object), unique.
  std::vector<AttributeTable::Row> adds;
  /// Net-removed rows (each present in the base), sorted, unique.
  std::vector<AttributeTable::Row> removes;
};

/// GroupDeltaByProperty output.
struct TripleDeltaByProperty {
  /// Per-property deltas in ascending property-id order.
  std::vector<PropertyDelta> properties;
  /// True if any rdf:type triple was added or removed (CFS membership may
  /// have changed even though no attribute table did).
  bool type_changed = false;
};

/// Split net triple deltas (SPO order, as GraphDelta carries them) into
/// per-property row deltas.
TripleDeltaByProperty GroupDeltaByProperty(const std::vector<Triple>& added,
                                           const std::vector<Triple>& removed,
                                           TermId rdf_type);

/// Merge one property's row delta into its sealed base table (null base =
/// the property is new in this delta). The returned table is sealed, owns
/// its columns, and carries origin/property but no name — the caller names
/// it when registering, so collision suffixes are recomputed exactly as a
/// fresh build would.
AttributeTable MergeTableWithDelta(const AttributeTable* base,
                                   const PropertyDelta& delta);

/// True if two sealed tables hold identical CSR columns.
bool SameColumns(const AttributeTable& a, const AttributeTable& b);

// --- Canonicalization (compaction + its oracle test). ----------------------

/// A term rendered free of its dictionary id: compares by value.
struct CanonTerm {
  TermKind kind = TermKind::kIri;
  std::string lexical;
  std::string language;
  std::string datatype;  ///< datatype IRI lexical form ("" = none)

  friend bool operator==(const CanonTerm& a, const CanonTerm& b) {
    return a.kind == b.kind && a.lexical == b.lexical &&
           a.language == b.language && a.datatype == b.datatype;
  }
  friend bool operator<(const CanonTerm& a, const CanonTerm& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.lexical != b.lexical) return a.lexical < b.lexical;
    if (a.datatype != b.datatype) return a.datatype < b.datatype;
    return a.language < b.language;
  }
};

/// A triple of value-compared terms.
struct CanonTriple {
  CanonTerm s, p, o;

  friend bool operator==(const CanonTriple& a, const CanonTriple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator<(const CanonTriple& a, const CanonTriple& b) {
    if (!(a.s == b.s)) return a.s < b.s;
    if (!(a.p == b.p)) return a.p < b.p;
    return a.o < b.o;
  }
};

/// Render one term by value.
CanonTerm RenderTerm(const Dictionary& dict, TermId id);

/// The graph's triples rendered term-level, sorted canonically, unique.
std::vector<CanonTriple> ExtractCanonicalTriples(const Graph& graph);

/// Intern one rendered term into `graph`'s dictionary (a literal's datatype
/// IRI is interned first, as every build path does).
TermId InternCanonTerm(Graph* graph, const CanonTerm& term);

/// Build `out` (which must be freshly constructed) from canonically sorted
/// triples, interning terms in walk order and freezing. Two calls with equal
/// input produce byte-identical graphs: the dictionary's intern sequence is
/// the first-occurrence order of the canonical walk.
void BuildCanonicalGraph(const std::vector<CanonTriple>& sorted, Graph* out);

}  // namespace spade

#endif  // SPADE_STORE_DELTA_H_
