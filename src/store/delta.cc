#include "src/store/delta.h"

#include <algorithm>
#include <map>

namespace spade {

TripleDeltaByProperty GroupDeltaByProperty(const std::vector<Triple>& added,
                                           const std::vector<Triple>& removed,
                                           TermId rdf_type) {
  TripleDeltaByProperty out;
  // The inputs are in SPO order, so the subsequence of any fixed property is
  // already sorted by (subject, object) and unique — no per-property re-sort.
  std::map<TermId, PropertyDelta> by_property;
  auto scatter = [&](const std::vector<Triple>& triples, bool is_add) {
    for (const Triple& t : triples) {
      if (t.p == rdf_type) {
        out.type_changed = true;
        continue;
      }
      PropertyDelta& d = by_property[t.p];
      d.property = t.p;
      (is_add ? d.adds : d.removes).emplace_back(t.s, t.o);
    }
  };
  scatter(added, /*is_add=*/true);
  scatter(removed, /*is_add=*/false);
  out.properties.reserve(by_property.size());
  for (auto& [p, delta] : by_property) {
    out.properties.push_back(std::move(delta));
  }
  return out;
}

AttributeTable MergeTableWithDelta(const AttributeTable* base,
                                   const PropertyDelta& delta) {
  // kept = base rows \ removes (both sorted: one forward walk), then merge
  // the sorted adds in.
  std::vector<AttributeTable::Row> kept;
  if (base != nullptr) {
    kept.reserve(base->num_rows());
    size_t ri = 0;
    base->ForEachRow([&](TermId s, TermId o) {
      const AttributeTable::Row row{s, o};
      while (ri < delta.removes.size() && delta.removes[ri] < row) ++ri;
      if (ri < delta.removes.size() && delta.removes[ri] == row) {
        ++ri;
        return;
      }
      kept.push_back(row);
    });
  }
  std::vector<AttributeTable::Row> merged;
  merged.reserve(kept.size() + delta.adds.size());
  std::merge(kept.begin(), kept.end(), delta.adds.begin(), delta.adds.end(),
             std::back_inserter(merged));
  AttributeTable table;
  table.origin = AttrOrigin::kDirect;
  table.property = delta.property;
  table.SealFromSortedRuns({&merged});
  return table;
}

bool SameColumns(const AttributeTable& a, const AttributeTable& b) {
  auto eq = [](auto x, auto y) {
    return x.size() == y.size() && std::equal(x.begin(), x.end(), y.begin());
  };
  return eq(a.subjects(), b.subjects()) && eq(a.offsets(), b.offsets()) &&
         eq(a.objects(), b.objects());
}

CanonTerm RenderTerm(const Dictionary& dict, TermId id) {
  CanonTerm t;
  t.kind = dict.KindOf(id);
  t.lexical = std::string(dict.LexicalOf(id));
  t.language = std::string(dict.LanguageOf(id));
  const TermId datatype = dict.DatatypeOf(id);
  if (datatype != kInvalidTerm) {
    t.datatype = std::string(dict.LexicalOf(datatype));
  }
  return t;
}

std::vector<CanonTriple> ExtractCanonicalTriples(const Graph& graph) {
  const Dictionary& dict = graph.dict();
  std::vector<CanonTriple> out;
  Span<Triple> triples = graph.triples();
  out.reserve(triples.size());
  for (const Triple& t : triples) {
    out.push_back(CanonTriple{RenderTerm(dict, t.s), RenderTerm(dict, t.p),
                              RenderTerm(dict, t.o)});
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TermId InternCanonTerm(Graph* graph, const CanonTerm& term) {
  Dictionary& dict = graph->dict();
  switch (term.kind) {
    case TermKind::kIri:
      return dict.InternIri(term.lexical);
    case TermKind::kBlank:
      return dict.InternBlank(term.lexical);
    case TermKind::kLiteral: {
      const TermId datatype =
          term.datatype.empty() ? kInvalidTerm : dict.InternIri(term.datatype);
      return dict.Intern(Term::Literal(term.lexical, datatype, term.language));
    }
  }
  return kInvalidTerm;
}

void BuildCanonicalGraph(const std::vector<CanonTriple>& sorted, Graph* out) {
  for (const CanonTriple& t : sorted) {
    const TermId s = InternCanonTerm(out, t.s);
    const TermId p = InternCanonTerm(out, t.p);
    const TermId o = InternCanonTerm(out, t.o);
    out->Add(s, p, o);
  }
  out->Freeze();
}

}  // namespace spade
