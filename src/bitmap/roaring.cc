#include "src/bitmap/roaring.h"

#include <algorithm>

namespace spade {

namespace {

inline uint16_t HighBits(uint32_t v) { return static_cast<uint16_t>(v >> 16); }
inline uint16_t LowBits(uint32_t v) { return static_cast<uint16_t>(v & 0xffff); }

}  // namespace

// ---------------------------------------------------------------------------
// Container-level helpers
// ---------------------------------------------------------------------------

void RoaringBitmap::SetBitRange(std::vector<uint64_t>* bits, uint32_t from,
                                uint32_t to) {
  size_t w1 = from >> 6, w2 = to >> 6;
  uint64_t m1 = ~0ULL << (from & 63);
  uint64_t m2 = ~0ULL >> (63 - (to & 63));
  if (w1 == w2) {
    (*bits)[w1] |= m1 & m2;
    return;
  }
  (*bits)[w1] |= m1;
  for (size_t w = w1 + 1; w < w2; ++w) (*bits)[w] = ~0ULL;
  (*bits)[w2] |= m2;
}

uint32_t RoaringBitmap::Popcount(const std::vector<uint64_t>& bits) {
  uint32_t card = 0;
  for (uint64_t w : bits) card += static_cast<uint32_t>(__builtin_popcountll(w));
  return card;
}

bool RoaringBitmap::ContainerContains(const Container& c, uint16_t low) {
  switch (c.kind) {
    case ContainerKind::kArray:
      return std::binary_search(c.vals.begin(), c.vals.end(), low);
    case ContainerKind::kRun: {
      // Last run with start <= low.
      size_t lo = 0, hi = c.vals.size() / 2;
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (c.vals[2 * mid] <= low) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == 0) return false;
      uint32_t s = c.vals[2 * (lo - 1)];
      return low <= s + c.vals[2 * (lo - 1) + 1];
    }
    case ContainerKind::kBitset:
      return (c.bits[low >> 6] >> (low & 63)) & 1;
  }
  return false;
}

void RoaringBitmap::ArrayToBitset(Container* c) {
  c->bits.assign(kWordsPerBitset, 0);
  for (uint16_t low : c->vals) c->bits[low >> 6] |= (1ULL << (low & 63));
  c->vals.clear();
  c->vals.shrink_to_fit();
  c->kind = ContainerKind::kBitset;
}

void RoaringBitmap::RunToBitset(Container* c) {
  c->bits.assign(kWordsPerBitset, 0);
  for (size_t r = 0; r + 1 < c->vals.size(); r += 2) {
    uint32_t s = c->vals[r];
    SetBitRange(&c->bits, s, s + c->vals[r + 1]);
  }
  c->vals.clear();
  c->vals.shrink_to_fit();
  c->kind = ContainerKind::kBitset;
}

void RoaringBitmap::ConvertOversizedArray(Container* c) {
  // The array outgrew kArrayToBitsetThreshold. Count maximal runs: the run
  // encoding costs 4 bytes per run, the bitset a flat 8 KiB.
  size_t runs = c->vals.empty() ? 0 : 1;
  for (size_t i = 1; i < c->vals.size(); ++i) {
    if (c->vals[i] != c->vals[i - 1] + 1) ++runs;
  }
  if (runs >= kRunToBitsetThreshold) {
    ArrayToBitset(c);
    return;
  }
  std::vector<uint16_t> pairs;
  pairs.reserve(2 * runs);
  size_t i = 0;
  while (i < c->vals.size()) {
    size_t j = i;
    while (j + 1 < c->vals.size() && c->vals[j + 1] == c->vals[j] + 1) ++j;
    pairs.push_back(c->vals[i]);
    pairs.push_back(static_cast<uint16_t>(c->vals[j] - c->vals[i]));
    i = j + 1;
  }
  c->vals = std::move(pairs);
  c->kind = ContainerKind::kRun;
}

void RoaringBitmap::NormalizeRunContainer(Container* c) {
  size_t runs = c->vals.size() / 2;
  if (runs >= kRunToBitsetThreshold) {
    RunToBitset(c);
    return;
  }
  // 2 bytes/value (array) vs 4 bytes/run: expand when the array is smaller
  // and legal (<= threshold entries).
  if (c->card <= kArrayToBitsetThreshold && c->card < 2 * runs) {
    std::vector<uint16_t> arr;
    arr.reserve(c->card);
    for (size_t r = 0; r + 1 < c->vals.size(); r += 2) {
      uint32_t v = c->vals[r];
      uint32_t end = v + c->vals[r + 1];
      for (; v <= end; ++v) arr.push_back(static_cast<uint16_t>(v));
    }
    c->vals = std::move(arr);
    c->kind = ContainerKind::kArray;
  }
}

bool RoaringBitmap::ArrayAdd(Container* c, uint16_t low) {
  auto it = std::lower_bound(c->vals.begin(), c->vals.end(), low);
  if (it != c->vals.end() && *it == low) return false;
  c->vals.insert(it, low);
  ++c->card;
  if (c->vals.size() > kArrayToBitsetThreshold) ConvertOversizedArray(c);
  return true;
}

bool RoaringBitmap::RunAdd(Container* c, uint16_t low) {
  size_t nr = c->vals.size() / 2;
  // lo = number of runs with start <= low.
  size_t lo = 0, hi = nr;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (c->vals[2 * mid] <= low) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint32_t v = low;
  if (lo > 0) {
    uint32_t s = c->vals[2 * (lo - 1)];
    if (v <= s + c->vals[2 * (lo - 1) + 1]) return false;  // inside a run
  }
  bool extend_prev =
      lo > 0 && static_cast<uint32_t>(c->vals[2 * (lo - 1)]) +
                        c->vals[2 * (lo - 1) + 1] + 1 ==
                    v;
  bool extend_next = lo < nr && static_cast<uint32_t>(c->vals[2 * lo]) == v + 1;
  if (extend_prev && extend_next) {
    uint32_t ns = c->vals[2 * (lo - 1)];
    uint32_t ne = static_cast<uint32_t>(c->vals[2 * lo]) + c->vals[2 * lo + 1];
    c->vals[2 * (lo - 1) + 1] = static_cast<uint16_t>(ne - ns);
    c->vals.erase(c->vals.begin() + 2 * lo, c->vals.begin() + 2 * lo + 2);
  } else if (extend_prev) {
    ++c->vals[2 * (lo - 1) + 1];
  } else if (extend_next) {
    c->vals[2 * lo] = low;
    ++c->vals[2 * lo + 1];
  } else {
    c->vals.insert(c->vals.begin() + 2 * lo, {low, 0});
  }
  ++c->card;
  if (c->vals.size() / 2 >= kRunToBitsetThreshold) RunToBitset(c);
  return true;
}

bool RoaringBitmap::BitsetAdd(Container* c, uint16_t low) {
  uint64_t& word = c->bits[low >> 6];
  uint64_t mask = 1ULL << (low & 63);
  if ((word & mask) != 0) return false;
  word |= mask;
  ++c->card;
  return true;
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

void RoaringBitmap::Spill() {
  spilled_ = true;
  // Inline values are sorted and distinct: the ordered-append path rebuilds
  // them as containers without any search.
  for (size_t i = 0; i < inline_size_; ++i) AppendToContainers(inline_vals_[i]);
  inline_size_ = 0;
}

const RoaringBitmap::Container* RoaringBitmap::Find(uint16_t key) const {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) return &*it;
  return nullptr;
}

bool RoaringBitmap::AddToContainers(uint32_t value) {
  uint16_t key = HighBits(value);
  uint16_t low = LowBits(value);
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) {
    Container c;
    c.key = key;
    it = containers_.insert(it, std::move(c));
  }
  switch (it->kind) {
    case ContainerKind::kArray:
      return ArrayAdd(&*it, low);
    case ContainerKind::kRun:
      return RunAdd(&*it, low);
    case ContainerKind::kBitset:
      return BitsetAdd(&*it, low);
  }
  return false;
}

bool RoaringBitmap::AppendToContainers(uint32_t value) {
  uint16_t key = HighBits(value);
  uint16_t low = LowBits(value);
  if (containers_.empty() || containers_.back().key < key) {
    Container c;
    c.key = key;
    c.vals.push_back(low);
    c.card = 1;
    containers_.push_back(std::move(c));
    return true;
  }
  Container& c = containers_.back();
  if (c.key > key) {
    assert(false && "AppendOrdered: out-of-order value (earlier chunk)");
    return AddToContainers(value);
  }
  switch (c.kind) {
    case ContainerKind::kArray: {
      uint16_t back = c.vals.back();  // array containers are never empty
      if (low == back) return false;
      if (low < back) {
        assert(false && "AppendOrdered: out-of-order value (array)");
        return AddToContainers(value);
      }
      c.vals.push_back(low);
      ++c.card;
      if (c.vals.size() > kArrayToBitsetThreshold) ConvertOversizedArray(&c);
      return true;
    }
    case ContainerKind::kRun: {
      size_t last = c.vals.size() - 2;
      uint32_t s = c.vals[last];
      uint32_t e = s + c.vals[last + 1];
      if (low <= e) {
        if (low >= s) return false;  // duplicate of the tail run
        assert(false && "AppendOrdered: out-of-order value (run)");
        return AddToContainers(value);
      }
      if (low == e + 1) {
        ++c.vals[last + 1];
      } else {
        c.vals.push_back(low);
        c.vals.push_back(0);
      }
      ++c.card;
      if (c.vals.size() / 2 >= kRunToBitsetThreshold) RunToBitset(&c);
      return true;
    }
    case ContainerKind::kBitset:
      // No order to maintain; a bit set is O(1) anyway.
      return BitsetAdd(&c, low);
  }
  return false;
}

void RoaringBitmap::Add(uint32_t value) {
  if (!spilled_) {
    size_t pos = 0;
    while (pos < inline_size_ && inline_vals_[pos] < value) ++pos;
    if (pos < inline_size_ && inline_vals_[pos] == value) return;
    if (inline_size_ < kInlineCapacity) {
      for (size_t i = inline_size_; i > pos; --i) {
        inline_vals_[i] = inline_vals_[i - 1];
      }
      inline_vals_[pos] = value;
      ++inline_size_;
      ++cardinality_;
      return;
    }
    Spill();
  }
  if (AddToContainers(value)) ++cardinality_;
}

void RoaringBitmap::AppendOrdered(uint32_t value) {
  if (!spilled_) {
    if (inline_size_ == 0 || value > inline_vals_[inline_size_ - 1]) {
      if (inline_size_ < kInlineCapacity) {
        inline_vals_[inline_size_++] = value;
        ++cardinality_;
        return;
      }
      Spill();
      if (AppendToContainers(value)) ++cardinality_;
      return;
    }
    if (value == inline_vals_[inline_size_ - 1]) return;
    assert(false && "AppendOrdered: out-of-order value (inline)");
    Add(value);
    return;
  }
  if (AppendToContainers(value)) ++cardinality_;
}

bool RoaringBitmap::Contains(uint32_t value) const {
  if (!spilled_) {
    for (size_t i = 0; i < inline_size_; ++i) {
      if (inline_vals_[i] == value) return true;
      if (inline_vals_[i] > value) return false;
    }
    return false;
  }
  const Container* c = Find(HighBits(value));
  return c != nullptr && ContainerContains(*c, LowBits(value));
}

// ---------------------------------------------------------------------------
// Union
// ---------------------------------------------------------------------------

void RoaringBitmap::MergeRunsInto(const Container& a, const Container& b,
                                  std::vector<uint16_t>* out_runs,
                                  uint32_t* out_card) {
  // Merge the two ascending interval streams (array values read as maximal
  // intervals) into one canonical run list.
  auto next = [](const Container& c, size_t* i, uint32_t* s,
                 uint32_t* e) -> bool {
    if (*i >= c.vals.size()) return false;
    if (c.kind == ContainerKind::kArray) {
      size_t j = *i;
      while (j + 1 < c.vals.size() && c.vals[j + 1] == c.vals[j] + 1) ++j;
      *s = c.vals[*i];
      *e = c.vals[j];
      *i = j + 1;
    } else {
      *s = c.vals[*i];
      *e = *s + c.vals[*i + 1];
      *i += 2;
    }
    return true;
  };
  out_runs->clear();
  uint64_t card = 0;
  auto push = [&](uint32_t s, uint32_t e) {
    if (!out_runs->empty()) {
      size_t last = out_runs->size() - 2;
      uint32_t ls = (*out_runs)[last];
      uint32_t le = ls + (*out_runs)[last + 1];
      if (s <= le + 1) {  // overlapping or adjacent: extend the tail run
        if (e > le) {
          (*out_runs)[last + 1] = static_cast<uint16_t>(e - ls);
          card += e - le;
        }
        return;
      }
    }
    out_runs->push_back(static_cast<uint16_t>(s));
    out_runs->push_back(static_cast<uint16_t>(e - s));
    card += e - s + 1;
  };
  size_t ia = 0, ib = 0;
  uint32_t sa = 0, ea = 0, sb = 0, eb = 0;
  bool ha = next(a, &ia, &sa, &ea);
  bool hb = next(b, &ib, &sb, &eb);
  while (ha || hb) {
    if (ha && (!hb || sa <= sb)) {
      push(sa, ea);
      ha = next(a, &ia, &sa, &ea);
    } else {
      push(sb, eb);
      hb = next(b, &ib, &sb, &eb);
    }
  }
  *out_card = static_cast<uint32_t>(card);
}

void RoaringBitmap::UnionContainerInPlace(Container* dst, const Container& src) {
  // Reused scratch: the lattice folds thousands of cells into one bitmap;
  // per-call vector allocations would dominate the small-cell shapes.
  thread_local std::vector<uint16_t> scratch16;
  if (dst->kind == ContainerKind::kBitset) {
    switch (src.kind) {
      case ContainerKind::kArray:
        for (uint16_t low : src.vals) {
          uint64_t& word = dst->bits[low >> 6];
          uint64_t mask = 1ULL << (low & 63);
          if ((word & mask) == 0) {
            word |= mask;
            ++dst->card;
          }
        }
        return;
      case ContainerKind::kRun:
        for (size_t r = 0; r + 1 < src.vals.size(); r += 2) {
          uint32_t s = src.vals[r];
          SetBitRange(&dst->bits, s, s + src.vals[r + 1]);
        }
        dst->card = Popcount(dst->bits);
        return;
      case ContainerKind::kBitset: {
        uint32_t card = 0;
        for (size_t w = 0; w < kWordsPerBitset; ++w) {
          dst->bits[w] |= src.bits[w];
          card += static_cast<uint32_t>(__builtin_popcountll(dst->bits[w]));
        }
        dst->card = card;
        return;
      }
    }
  }
  if (src.kind == ContainerKind::kBitset) {
    // The one unavoidable copy: the result is a bitset and dst is not.
    std::vector<uint64_t> bits = src.bits;
    uint32_t card = src.card;
    if (dst->kind == ContainerKind::kArray) {
      for (uint16_t low : dst->vals) {
        uint64_t& word = bits[low >> 6];
        uint64_t mask = 1ULL << (low & 63);
        if ((word & mask) == 0) {
          word |= mask;
          ++card;
        }
      }
    } else {
      for (size_t r = 0; r + 1 < dst->vals.size(); r += 2) {
        uint32_t s = dst->vals[r];
        SetBitRange(&bits, s, s + dst->vals[r + 1]);
      }
      card = Popcount(bits);
    }
    dst->vals.clear();
    dst->vals.shrink_to_fit();
    dst->bits = std::move(bits);
    dst->card = card;
    dst->kind = ContainerKind::kBitset;
    return;
  }
  if (dst->kind == ContainerKind::kArray && src.kind == ContainerKind::kArray) {
    scratch16.clear();
    std::set_union(dst->vals.begin(), dst->vals.end(), src.vals.begin(),
                   src.vals.end(), std::back_inserter(scratch16));
    dst->vals.assign(scratch16.begin(), scratch16.end());
    dst->card = static_cast<uint32_t>(dst->vals.size());
    if (dst->vals.size() > kArrayToBitsetThreshold) ConvertOversizedArray(dst);
    return;
  }
  // At least one run operand, no bitset: canonical run merge via scratch.
  uint32_t card = 0;
  MergeRunsInto(*dst, src, &scratch16, &card);
  dst->vals.assign(scratch16.begin(), scratch16.end());
  dst->card = card;
  dst->kind = ContainerKind::kRun;
  NormalizeRunContainer(dst);
}

void RoaringBitmap::UnionWith(const RoaringBitmap& other) {
  if (&other == this || other.Empty()) return;
  if (!other.spilled_) {
    for (size_t i = 0; i < other.inline_size_; ++i) Add(other.inline_vals_[i]);
    return;
  }
  if (!spilled_) {
    // Start from a copy of the (larger) spilled side, then add our few
    // inline values into it.
    uint32_t tmp[kInlineCapacity];
    size_t n = inline_size_;
    for (size_t i = 0; i < n; ++i) tmp[i] = inline_vals_[i];
    containers_ = other.containers_;
    cardinality_ = other.cardinality_;
    spilled_ = true;
    inline_size_ = 0;
    for (size_t i = 0; i < n; ++i) Add(tmp[i]);
    return;
  }
  // Both spilled: one merge walk over the two sorted container lists.
  // Matched keys union in place (no container copies, no list rebuild); the
  // list is rebuilt — once — only when src brings keys dst lacks, which the
  // first walk counts.
  size_t i = 0, j = 0, missing = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    if (containers_[i].key < other.containers_[j].key) {
      ++i;
    } else if (other.containers_[j].key < containers_[i].key) {
      ++missing;
      ++j;
    } else {
      UnionContainerInPlace(&containers_[i], other.containers_[j]);
      ++i;
      ++j;
    }
  }
  missing += other.containers_.size() - j;
  if (missing > 0) {
    std::vector<Container> out;
    out.reserve(containers_.size() + missing);
    i = 0;
    j = 0;
    while (i < containers_.size() && j < other.containers_.size()) {
      if (containers_[i].key <= other.containers_[j].key) {
        if (containers_[i].key == other.containers_[j].key) ++j;  // merged above
        out.push_back(std::move(containers_[i++]));
      } else {
        out.push_back(other.containers_[j++]);
      }
    }
    while (i < containers_.size()) out.push_back(std::move(containers_[i++]));
    while (j < other.containers_.size()) out.push_back(other.containers_[j++]);
    containers_ = std::move(out);
  }
  cardinality_ = 0;
  for (const Container& c : containers_) cardinality_ += c.card;
}

// ---------------------------------------------------------------------------
// Intersection
// ---------------------------------------------------------------------------

void RoaringBitmap::IntersectPair(Container* dst, const Container& src) {
  // Filter a sorted value array against runs with one forward walk.
  auto filter_array_by_runs = [](const std::vector<uint16_t>& arr,
                                 const std::vector<uint16_t>& runs,
                                 std::vector<uint16_t>* out) {
    size_t r = 0;
    for (uint16_t v : arr) {
      while (r + 1 < runs.size() &&
             static_cast<uint32_t>(runs[r]) + runs[r + 1] < v) {
        r += 2;
      }
      if (r + 1 < runs.size() && runs[r] <= v &&
          v <= static_cast<uint32_t>(runs[r]) + runs[r + 1]) {
        out->push_back(v);
      }
    }
  };
  switch (dst->kind) {
    case ContainerKind::kArray: {
      std::vector<uint16_t> kept;
      kept.reserve(dst->vals.size());
      switch (src.kind) {
        case ContainerKind::kArray:
          std::set_intersection(dst->vals.begin(), dst->vals.end(),
                                src.vals.begin(), src.vals.end(),
                                std::back_inserter(kept));
          break;
        case ContainerKind::kRun:
          filter_array_by_runs(dst->vals, src.vals, &kept);
          break;
        case ContainerKind::kBitset:
          for (uint16_t low : dst->vals) {
            if ((src.bits[low >> 6] >> (low & 63)) & 1) kept.push_back(low);
          }
          break;
      }
      dst->vals = std::move(kept);
      dst->card = static_cast<uint32_t>(dst->vals.size());
      return;
    }
    case ContainerKind::kRun:
      switch (src.kind) {
        case ContainerKind::kArray: {
          // Result has at most |src| values: an array.
          std::vector<uint16_t> kept;
          kept.reserve(src.vals.size());
          filter_array_by_runs(src.vals, dst->vals, &kept);
          dst->vals = std::move(kept);
          dst->card = static_cast<uint32_t>(dst->vals.size());
          dst->kind = ContainerKind::kArray;
          return;
        }
        case ContainerKind::kRun: {
          // Interval intersection, two-pointer walk.
          std::vector<uint16_t> out;
          uint64_t card = 0;
          size_t i = 0, j = 0;
          while (i + 1 < dst->vals.size() && j + 1 < src.vals.size()) {
            uint32_t s1 = dst->vals[i], e1 = s1 + dst->vals[i + 1];
            uint32_t s2 = src.vals[j], e2 = s2 + src.vals[j + 1];
            uint32_t s = std::max(s1, s2), e = std::min(e1, e2);
            if (s <= e) {
              out.push_back(static_cast<uint16_t>(s));
              out.push_back(static_cast<uint16_t>(e - s));
              card += e - s + 1;
            }
            if (e1 <= e2) {
              i += 2;
            } else {
              j += 2;
            }
          }
          dst->vals = std::move(out);
          dst->card = static_cast<uint32_t>(card);
          NormalizeRunContainer(dst);
          return;
        }
        case ContainerKind::kBitset: {
          // Keep the bitset bits that fall inside our runs.
          std::vector<uint64_t> bits(kWordsPerBitset, 0);
          std::vector<uint64_t> mask(kWordsPerBitset, 0);
          for (size_t r = 0; r + 1 < dst->vals.size(); r += 2) {
            uint32_t s = dst->vals[r];
            SetBitRange(&mask, s, s + dst->vals[r + 1]);
          }
          for (size_t w = 0; w < kWordsPerBitset; ++w) {
            bits[w] = src.bits[w] & mask[w];
          }
          dst->vals.clear();
          dst->vals.shrink_to_fit();
          dst->bits = std::move(bits);
          dst->kind = ContainerKind::kBitset;
          dst->card = Popcount(dst->bits);
          break;  // fall through to the bitset shrink below
        }
      }
      break;
    case ContainerKind::kBitset:
      switch (src.kind) {
        case ContainerKind::kArray: {
          // At most |src| survivors: convert to an array.
          std::vector<uint16_t> kept;
          kept.reserve(src.vals.size());
          for (uint16_t low : src.vals) {
            if ((dst->bits[low >> 6] >> (low & 63)) & 1) kept.push_back(low);
          }
          dst->bits.clear();
          dst->bits.shrink_to_fit();
          dst->kind = ContainerKind::kArray;
          dst->vals = std::move(kept);
          dst->card = static_cast<uint32_t>(dst->vals.size());
          return;
        }
        case ContainerKind::kRun: {
          std::vector<uint64_t> mask(kWordsPerBitset, 0);
          for (size_t r = 0; r + 1 < src.vals.size(); r += 2) {
            uint32_t s = src.vals[r];
            SetBitRange(&mask, s, s + src.vals[r + 1]);
          }
          for (size_t w = 0; w < kWordsPerBitset; ++w) dst->bits[w] &= mask[w];
          dst->card = Popcount(dst->bits);
          break;
        }
        case ContainerKind::kBitset: {
          uint32_t card = 0;
          for (size_t w = 0; w < kWordsPerBitset; ++w) {
            dst->bits[w] &= src.bits[w];
            card += static_cast<uint32_t>(__builtin_popcountll(dst->bits[w]));
          }
          dst->card = card;
          break;
        }
      }
      break;
  }
  // A bitset result that shrank below the array threshold converts back —
  // intersections can hollow a dense container out.
  if (dst->kind == ContainerKind::kBitset && dst->card > 0 &&
      dst->card <= kArrayToBitsetThreshold) {
    std::vector<uint16_t> arr;
    arr.reserve(dst->card);
    for (size_t w = 0; w < kWordsPerBitset; ++w) {
      uint64_t word = dst->bits[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        arr.push_back(static_cast<uint16_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
    dst->bits.clear();
    dst->bits.shrink_to_fit();
    dst->vals = std::move(arr);
    dst->kind = ContainerKind::kArray;
  }
}

void RoaringBitmap::IntersectWith(const RoaringBitmap& other) {
  if (&other == this || Empty()) return;
  if (other.Empty()) {
    Clear();
    return;
  }
  if (!spilled_) {
    size_t w = 0;
    for (size_t i = 0; i < inline_size_; ++i) {
      if (other.Contains(inline_vals_[i])) inline_vals_[w++] = inline_vals_[i];
    }
    inline_size_ = static_cast<uint8_t>(w);
    cardinality_ = w;
    return;
  }
  if (!other.spilled_) {
    // Result is a subset of other's <= kInlineCapacity values: go inline.
    uint32_t kept[kInlineCapacity];
    size_t n = 0;
    for (size_t i = 0; i < other.inline_size_; ++i) {
      if (Contains(other.inline_vals_[i])) kept[n++] = other.inline_vals_[i];
    }
    Clear();
    for (size_t i = 0; i < n; ++i) inline_vals_[i] = kept[i];
    inline_size_ = static_cast<uint8_t>(n);
    cardinality_ = n;
    return;
  }
  std::vector<Container> kept;
  kept.reserve(std::min(containers_.size(), other.containers_.size()));
  size_t i = 0, j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    if (containers_[i].key < other.containers_[j].key) {
      ++i;
    } else if (other.containers_[j].key < containers_[i].key) {
      ++j;
    } else {
      IntersectPair(&containers_[i], other.containers_[j]);
      if (containers_[i].card > 0) kept.push_back(std::move(containers_[i]));
      ++i;
      ++j;
    }
  }
  containers_ = std::move(kept);
  cardinality_ = 0;
  for (const Container& c : containers_) cardinality_ += c.card;
}

// ---------------------------------------------------------------------------
// Decode / misc
// ---------------------------------------------------------------------------

void RoaringBitmap::Clear() {
  containers_.clear();
  containers_.shrink_to_fit();
  spilled_ = false;
  inline_size_ = 0;
  cardinality_ = 0;
}

void RoaringBitmap::DecodeContainer(const Container& c, uint32_t* out) {
  uint32_t base = static_cast<uint32_t>(c.key) << 16;
  switch (c.kind) {
    case ContainerKind::kArray:
      for (uint16_t low : c.vals) *out++ = base | low;
      break;
    case ContainerKind::kRun:
      for (size_t r = 0; r + 1 < c.vals.size(); r += 2) {
        uint32_t v = c.vals[r];
        uint32_t end = v + c.vals[r + 1];
        for (; v <= end; ++v) *out++ = base | v;
      }
      break;
    case ContainerKind::kBitset:
      for (size_t w = 0; w < kWordsPerBitset; ++w) {
        uint64_t word = c.bits[w];
        while (word != 0) {
          int bit = __builtin_ctzll(word);
          *out++ = base | static_cast<uint32_t>(w * 64 + bit);
          word &= word - 1;
        }
      }
      break;
  }
}

void RoaringBitmap::DecodeInto(std::vector<uint32_t>* out) const {
  // Reserve from the O(1) cached cardinality first: when `out` is a reused
  // scratch buffer growing across calls, resize alone would re-grow it
  // geometrically (copying the stale prefix); reserve makes the single
  // exact-size allocation up front and resize then never reallocates.
  out->reserve(cardinality_);
  out->resize(cardinality_);
  if (cardinality_ == 0) return;
  uint32_t* p = out->data();
  if (!spilled_) {
    for (size_t i = 0; i < inline_size_; ++i) *p++ = inline_vals_[i];
    return;
  }
  for (const Container& c : containers_) {
    DecodeContainer(c, p);
    p += c.card;
  }
}

std::vector<uint32_t> RoaringBitmap::ToVector() const {
  std::vector<uint32_t> out;
  DecodeInto(&out);
  return out;
}

uint64_t RoaringBitmap::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  if (!spilled_) return bytes;  // inline: no heap at all
  bytes += containers_.capacity() * sizeof(Container);
  for (const Container& c : containers_) {
    bytes += c.vals.capacity() * sizeof(uint16_t);
    bytes += c.bits.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Equality
// ---------------------------------------------------------------------------

bool RoaringBitmap::ContainersEqual(const Container& a, const Container& b) {
  // Callers have checked key and cardinality equality; with equal
  // cardinalities, containment implies equality, which the mixed-kind
  // branches rely on.
  if (a.kind == b.kind) {
    // Array values and canonical run lists are unique encodings; bitsets
    // compare word-wise.
    return a.kind == ContainerKind::kBitset ? a.bits == b.bits
                                            : a.vals == b.vals;
  }
  const Container& x = a.kind < b.kind ? a : b;  // kArray < kRun < kBitset
  const Container& y = a.kind < b.kind ? b : a;
  if (x.kind == ContainerKind::kArray && y.kind == ContainerKind::kRun) {
    size_t r = 0;
    for (uint16_t v : x.vals) {
      while (r + 1 < y.vals.size() &&
             static_cast<uint32_t>(y.vals[r]) + y.vals[r + 1] < v) {
        r += 2;
      }
      if (r + 1 >= y.vals.size() || y.vals[r] > v) return false;
    }
    return true;
  }
  if (x.kind == ContainerKind::kArray && y.kind == ContainerKind::kBitset) {
    for (uint16_t low : x.vals) {
      if (((y.bits[low >> 6] >> (low & 63)) & 1) == 0) return false;
    }
    return true;
  }
  // Run vs bitset: every run range must be fully set.
  std::vector<uint64_t> mask(kWordsPerBitset, 0);
  for (size_t r = 0; r + 1 < x.vals.size(); r += 2) {
    uint32_t s = x.vals[r];
    SetBitRange(&mask, s, s + x.vals[r + 1]);
  }
  for (size_t w = 0; w < kWordsPerBitset; ++w) {
    if ((y.bits[w] & mask[w]) != mask[w]) return false;
  }
  return true;
}

bool RoaringBitmap::operator==(const RoaringBitmap& other) const {
  if (cardinality_ != other.cardinality_) return false;
  if (cardinality_ == 0) return true;
  if (!spilled_ || !other.spilled_) {
    // One side is inline, so both hold <= kInlineCapacity values.
    uint32_t a[kInlineCapacity], b[kInlineCapacity];
    size_t na = 0, nb = 0;
    ForEach([&](uint32_t v) { a[na++] = v; });
    other.ForEach([&](uint32_t v) { b[nb++] = v; });
    return std::equal(a, a + na, b);
  }
  if (containers_.size() != other.containers_.size()) return false;
  for (size_t i = 0; i < containers_.size(); ++i) {
    const Container& x = containers_[i];
    const Container& y = other.containers_[i];
    if (x.key != y.key || x.card != y.card) return false;
    if (!ContainersEqual(x, y)) return false;
  }
  return true;
}

}  // namespace spade
