#include "src/bitmap/roaring.h"

#include <algorithm>

namespace spade {

namespace {

inline uint16_t HighBits(uint32_t v) { return static_cast<uint16_t>(v >> 16); }
inline uint16_t LowBits(uint32_t v) { return static_cast<uint16_t>(v & 0xffff); }

}  // namespace

RoaringBitmap::Container* RoaringBitmap::FindOrCreate(uint16_t key) {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) return &*it;
  Container c;
  c.key = key;
  it = containers_.insert(it, std::move(c));
  return &*it;
}

const RoaringBitmap::Container* RoaringBitmap::Find(uint16_t key) const {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) return &*it;
  return nullptr;
}

void RoaringBitmap::ToBitset(Container* c) {
  c->bits.assign(kWordsPerBitset, 0);
  for (uint16_t low : c->array) c->bits[low >> 6] |= (1ULL << (low & 63));
  c->bitset_cardinality = static_cast<uint32_t>(c->array.size());
  c->array.clear();
  c->array.shrink_to_fit();
  c->kind = ContainerKind::kBitset;
}

void RoaringBitmap::Add(uint32_t value) {
  Container* c = FindOrCreate(HighBits(value));
  uint16_t low = LowBits(value);
  if (c->kind == ContainerKind::kArray) {
    auto it = std::lower_bound(c->array.begin(), c->array.end(), low);
    if (it != c->array.end() && *it == low) return;
    c->array.insert(it, low);
    if (c->array.size() > kArrayToBitsetThreshold) ToBitset(c);
  } else {
    uint64_t& word = c->bits[low >> 6];
    uint64_t mask = 1ULL << (low & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++c->bitset_cardinality;
    }
  }
}

bool RoaringBitmap::Contains(uint32_t value) const {
  const Container* c = Find(HighBits(value));
  if (c == nullptr) return false;
  uint16_t low = LowBits(value);
  if (c->kind == ContainerKind::kArray) {
    return std::binary_search(c->array.begin(), c->array.end(), low);
  }
  return (c->bits[low >> 6] >> (low & 63)) & 1;
}

uint64_t RoaringBitmap::ContainerCardinality(const Container& c) {
  if (c.kind == ContainerKind::kArray) return c.array.size();
  return c.bitset_cardinality;
}

uint64_t RoaringBitmap::Cardinality() const {
  uint64_t total = 0;
  for (const auto& c : containers_) total += ContainerCardinality(c);
  return total;
}

void RoaringBitmap::UnionContainers(Container* dst, const Container& src) {
  if (dst->kind == ContainerKind::kArray && src.kind == ContainerKind::kArray) {
    std::vector<uint16_t> merged;
    merged.reserve(dst->array.size() + src.array.size());
    std::set_union(dst->array.begin(), dst->array.end(), src.array.begin(),
                   src.array.end(), std::back_inserter(merged));
    dst->array = std::move(merged);
    if (dst->array.size() > kArrayToBitsetThreshold) ToBitset(dst);
    return;
  }
  if (dst->kind == ContainerKind::kArray) ToBitset(dst);
  if (src.kind == ContainerKind::kArray) {
    for (uint16_t low : src.array) {
      uint64_t& word = dst->bits[low >> 6];
      uint64_t mask = 1ULL << (low & 63);
      if ((word & mask) == 0) {
        word |= mask;
        ++dst->bitset_cardinality;
      }
    }
  } else {
    uint32_t card = 0;
    for (size_t w = 0; w < kWordsPerBitset; ++w) {
      dst->bits[w] |= src.bits[w];
      card += static_cast<uint32_t>(__builtin_popcountll(dst->bits[w]));
    }
    dst->bitset_cardinality = card;
  }
}

void RoaringBitmap::UnionWith(const RoaringBitmap& other) {
  for (const auto& src : other.containers_) {
    Container* dst = FindOrCreate(src.key);
    if (dst->kind == ContainerKind::kArray && dst->array.empty() &&
        src.kind == ContainerKind::kArray) {
      dst->array = src.array;  // fresh container: plain copy
      continue;
    }
    UnionContainers(dst, src);
  }
}

void RoaringBitmap::IntersectContainers(Container* dst, const Container& src) {
  if (dst->kind == ContainerKind::kArray) {
    std::vector<uint16_t> kept;
    kept.reserve(dst->array.size());
    if (src.kind == ContainerKind::kArray) {
      std::set_intersection(dst->array.begin(), dst->array.end(),
                            src.array.begin(), src.array.end(),
                            std::back_inserter(kept));
    } else {
      for (uint16_t low : dst->array) {
        if ((src.bits[low >> 6] >> (low & 63)) & 1) kept.push_back(low);
      }
    }
    dst->array = std::move(kept);
    return;
  }
  if (src.kind == ContainerKind::kArray) {
    // Convert dst to an array of the surviving values: intersection with an
    // array container has at most |array| results.
    std::vector<uint16_t> kept;
    kept.reserve(src.array.size());
    for (uint16_t low : src.array) {
      if ((dst->bits[low >> 6] >> (low & 63)) & 1) kept.push_back(low);
    }
    dst->bits.clear();
    dst->bits.shrink_to_fit();
    dst->bitset_cardinality = 0;
    dst->kind = ContainerKind::kArray;
    dst->array = std::move(kept);
    return;
  }
  uint32_t card = 0;
  for (size_t w = 0; w < kWordsPerBitset; ++w) {
    dst->bits[w] &= src.bits[w];
    card += static_cast<uint32_t>(__builtin_popcountll(dst->bits[w]));
  }
  dst->bitset_cardinality = card;
}

void RoaringBitmap::IntersectWith(const RoaringBitmap& other) {
  std::vector<Container> kept;
  kept.reserve(containers_.size());
  for (auto& dst : containers_) {
    const Container* src = other.Find(dst.key);
    if (src == nullptr) continue;
    IntersectContainers(&dst, *src);
    if (ContainerCardinality(dst) > 0) kept.push_back(std::move(dst));
  }
  containers_ = std::move(kept);
}

void RoaringBitmap::Clear() {
  containers_.clear();
  containers_.shrink_to_fit();
}

std::vector<uint32_t> RoaringBitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Cardinality());
  ForEach([&out](uint32_t v) { out.push_back(v); });
  return out;
}

uint64_t RoaringBitmap::MemoryBytes() const {
  uint64_t bytes = sizeof(*this) + containers_.capacity() * sizeof(Container);
  for (const auto& c : containers_) {
    bytes += c.array.capacity() * sizeof(uint16_t);
    bytes += c.bits.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

bool RoaringBitmap::operator==(const RoaringBitmap& other) const {
  if (Cardinality() != other.Cardinality()) return false;
  bool equal = true;
  ForEach([&](uint32_t v) {
    if (!other.Contains(v)) equal = false;
  });
  return equal;
}

}  // namespace spade
