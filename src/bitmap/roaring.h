#ifndef SPADE_BITMAP_ROARING_H_
#define SPADE_BITMAP_ROARING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spade {

/// \brief Compressed bitmap over uint32 keys, after Lemire et al. [32].
///
/// MVDCube stores, in every cell of every lattice node, the set of candidate
/// facts that fall into that cell (Section 4.3). Cells are unioned as
/// dimensions are projected away, so the container needs fast OR, ordered
/// iteration (measure computation walks facts in ID order, aligned with the
/// pre-aggregated measure arrays), and a predictable memory bound
/// (M_RB = 2*Z + 9*(u/65535 + 1) + 8 bytes, used in the Section 4.3 memory
/// analysis).
///
/// The implementation follows the Roaring design: the key space is chunked
/// into 2^16-value blocks; each non-empty chunk is either an *array
/// container* (sorted uint16 vector, <= 4096 entries) or a *bitset container*
/// (fixed 8 KiB bitset), converting between the two at the 4096-entry
/// threshold.
class RoaringBitmap {
 public:
  RoaringBitmap() = default;

  /// Insert one value (idempotent).
  void Add(uint32_t value);

  /// True if `value` is present.
  bool Contains(uint32_t value) const;

  /// Number of values stored.
  uint64_t Cardinality() const;

  bool Empty() const { return containers_.empty(); }

  /// In-place union: *this |= other.
  void UnionWith(const RoaringBitmap& other);

  /// In-place intersection: *this &= other.
  void IntersectWith(const RoaringBitmap& other);

  /// Remove every value (keeps no capacity; a cleared cell is cheap).
  void Clear();

  /// Visit values in increasing order. `fn` is called as fn(uint32_t).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& c : containers_) {
      uint32_t base = static_cast<uint32_t>(c.key) << 16;
      if (c.kind == ContainerKind::kArray) {
        for (uint16_t low : c.array) fn(base | low);
      } else {
        for (size_t w = 0; w < kWordsPerBitset; ++w) {
          uint64_t word = c.bits[w];
          while (word != 0) {
            int bit = __builtin_ctzll(word);
            fn(base | static_cast<uint32_t>(w * 64 + bit));
            word &= word - 1;
          }
        }
      }
    }
  }

  /// Materialize as a sorted vector (test/debug convenience).
  std::vector<uint32_t> ToVector() const;

  /// Approximate heap bytes used by the containers (for the memory model and
  /// the ablation bench).
  uint64_t MemoryBytes() const;

  /// Paper upper bound on the bytes a Roaring bitmap needs for Z values drawn
  /// from [0, u): 2*Z + 9*(u/65535 + 1) + 8 (Section 4.3).
  static uint64_t MemoryUpperBound(uint64_t z, uint64_t u) {
    return 2 * z + 9 * (u / 65535 + 1) + 8;
  }

  bool operator==(const RoaringBitmap& other) const;

 private:
  static constexpr size_t kArrayToBitsetThreshold = 4096;
  static constexpr size_t kWordsPerBitset = 1024;  // 65536 bits

  enum class ContainerKind : uint8_t { kArray, kBitset };

  struct Container {
    uint16_t key = 0;  // high 16 bits of the values in this container
    ContainerKind kind = ContainerKind::kArray;
    std::vector<uint16_t> array;  // sorted, used when kind == kArray
    std::vector<uint64_t> bits;   // kWordsPerBitset words, when kind == kBitset
    uint32_t bitset_cardinality = 0;
  };

  // Containers sorted by key; binary search for lookup.
  std::vector<Container> containers_;

  Container* FindOrCreate(uint16_t key);
  const Container* Find(uint16_t key) const;
  static void ToBitset(Container* c);
  static void UnionContainers(Container* dst, const Container& src);
  static void IntersectContainers(Container* dst, const Container& src);
  static uint64_t ContainerCardinality(const Container& c);
};

}  // namespace spade

#endif  // SPADE_BITMAP_ROARING_H_
