#ifndef SPADE_BITMAP_ROARING_H_
#define SPADE_BITMAP_ROARING_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace spade {

/// \brief Compressed bitmap over uint32 keys, after Lemire et al. [32].
///
/// MVDCube stores, in every cell of every lattice node, the set of candidate
/// facts that fall into that cell (Section 4.3). Cells are unioned as
/// dimensions are projected away, so the container needs fast OR, ordered
/// iteration (measure computation walks facts in ID order, aligned with the
/// pre-aggregated measure arrays), and a predictable memory bound.
///
/// The paper's Section 4.3 memory model, M_RB = 2*Z + 9*(u/65535 + 1) + 8
/// bytes for Z values drawn from [0, u), assumes the two classical Roaring
/// container kinds (2 bytes per value in arrays, 8 KiB bitsets). This
/// implementation adds the third Roaring kind — *run containers* — and an
/// inline small-set representation, both of which only ever undercut the
/// payload term of that bound: a contiguous fact range costs 4 bytes per
/// run regardless of length (the engine converts only when runs encode
/// smaller), and up to kInlineCapacity values live inside the bitmap object
/// with zero heap allocation. MemoryBytes() additionally reports the object
/// and per-container bookkeeping that the model's flat 8-byte header
/// abstracts away; the ablation bench prints measured bytes against the
/// payload bound.
///
/// Representations, chosen per 2^16-value chunk by size:
///   - *array container*: sorted uint16 vector, <= 4096 entries (2 B/value);
///   - *run container*: sorted list of (start, length-1) uint16 pairs,
///     disjoint and non-adjacent (canonical), used when 4 B/run beats both
///     the array and the bitset encodings;
///   - *bitset container*: fixed 8 KiB bitset, used beyond 4096 values when
///     runs do not compress (>= 2048 runs).
/// Below kInlineCapacity distinct values the bitmap holds them sorted in an
/// internal fixed array and owns no heap memory at all — the vast majority
/// of lattice cells never touch the allocator.
///
/// The pipeline's three access patterns each have a dedicated fast path:
/// ordered bulk build (`AppendOrdered`, O(1) amortized, no search), bulk
/// union (`UnionWith`, a single merge walk over both container lists), and
/// ordered bulk read (`DecodeInto` / `ForEachBlock`, filling dense uint32
/// buffers one container at a time instead of paying a callback per value).
class RoaringBitmap {
 public:
  /// Values stored inside the object before any heap allocation.
  static constexpr size_t kInlineCapacity = 8;

  RoaringBitmap() = default;
  RoaringBitmap(const RoaringBitmap&) = default;
  RoaringBitmap& operator=(const RoaringBitmap&) = default;
  /// Moves leave the source empty (not merely valid): the lattice fold
  /// moves cells through sorts and merges, and an inconsistent moved-from
  /// state (cached cardinality without containers) must never be observable.
  RoaringBitmap(RoaringBitmap&& other) noexcept { *this = std::move(other); }
  RoaringBitmap& operator=(RoaringBitmap&& other) noexcept {
    if (this == &other) return *this;
    for (size_t i = 0; i < other.inline_size_; ++i) {
      inline_vals_[i] = other.inline_vals_[i];
    }
    inline_size_ = other.inline_size_;
    spilled_ = other.spilled_;
    cardinality_ = other.cardinality_;
    containers_ = std::move(other.containers_);
    other.inline_size_ = 0;
    other.spilled_ = false;
    other.cardinality_ = 0;
    other.containers_.clear();
    return *this;
  }

  /// Insert one value (idempotent).
  void Add(uint32_t value);

  /// Ordered-append fast path: requires value >= every value already present
  /// (debug-asserted; equal is an idempotent no-op). The scaffold load loop
  /// feeds each cell facts in ascending id order, so the tail container is
  /// always the last one — no container search, and the in-container insert
  /// is a push_back / run extension. Falls back to Add on out-of-order input
  /// in release builds.
  void AppendOrdered(uint32_t value);

  /// True if `value` is present.
  bool Contains(uint32_t value) const;

  /// Number of values stored. Cached at the bitmap level and maintained by
  /// every mutator — O(1), safe to call per group on the emit path.
  uint64_t Cardinality() const { return cardinality_; }

  bool Empty() const { return cardinality_ == 0; }

  /// In-place union: *this |= other. Single merge walk over both sorted
  /// container lists building the output list once (no per-container
  /// re-search / vector insert); bitset unions are word-wise ORs.
  void UnionWith(const RoaringBitmap& other);

  /// In-place intersection: *this &= other.
  void IntersectWith(const RoaringBitmap& other);

  /// Remove every value (keeps no capacity; a cleared cell is cheap).
  void Clear();

  /// Visit values in increasing order. `fn` is called as fn(uint32_t).
  /// Prefer DecodeInto / ForEachBlock on hot paths: they fill a dense buffer
  /// per container instead of paying an (often uninlinable) call per value.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (!spilled_) {
      for (size_t i = 0; i < inline_size_; ++i) fn(inline_vals_[i]);
      return;
    }
    for (const auto& c : containers_) {
      uint32_t base = static_cast<uint32_t>(c.key) << 16;
      switch (c.kind) {
        case ContainerKind::kArray:
          for (uint16_t low : c.vals) fn(base | low);
          break;
        case ContainerKind::kRun:
          for (size_t r = 0; r + 1 < c.vals.size(); r += 2) {
            uint32_t v = c.vals[r];
            uint32_t end = v + c.vals[r + 1];
            for (; v <= end; ++v) fn(base | v);
          }
          break;
        case ContainerKind::kBitset:
          for (size_t w = 0; w < kWordsPerBitset; ++w) {
            uint64_t word = c.bits[w];
            while (word != 0) {
              int bit = __builtin_ctzll(word);
              fn(base | static_cast<uint32_t>(w * 64 + bit));
              word &= word - 1;
            }
          }
          break;
      }
    }
  }

  /// Batched decode: fill `out` with every value in ascending order
  /// (reserved then resized to the O(1) cached Cardinality(), so the buffer
  /// makes at most one exact-size allocation — no geometric regrowth). One
  /// tight per-container fill loop; the caller then iterates a dense uint32
  /// span. This is the span feeder of the measure-fold kernels
  /// (src/simd/measure_fold.h): the whole cell as ONE dense strictly
  /// ascending block, so the kernels' lane striding is a pure function of
  /// the stored set, independent of container/inline layout.
  void DecodeInto(std::vector<uint32_t>* out) const;

  /// Block-cursor decode: for each container (and for the inline set),
  /// materialize its values as a dense ascending uint32 span and call
  /// fn(const uint32_t* data, size_t n) once. `scratch` is caller-owned
  /// reusable storage — no allocation after it reaches the largest container
  /// cardinality (<= 65536). Blocks arrive in ascending order, so
  /// concatenating them reproduces ForEach order exactly.
  template <typename Fn>
  void ForEachBlock(std::vector<uint32_t>* scratch, Fn&& fn) const {
    if (!spilled_) {
      if (inline_size_ > 0) fn(inline_vals_, static_cast<size_t>(inline_size_));
      return;
    }
    for (const auto& c : containers_) {
      if (scratch->size() < c.card) scratch->resize(c.card);
      DecodeContainer(c, scratch->data());
      fn(scratch->data(), static_cast<size_t>(c.card));
    }
  }

  /// Materialize as a sorted vector (test/debug convenience).
  std::vector<uint32_t> ToVector() const;

  /// Heap bytes used (plus the object itself); the Section 4.3 memory-model
  /// accounting. An inline (non-spilled) bitmap reports sizeof(*this) only.
  uint64_t MemoryBytes() const;

  /// Paper upper bound on the bytes a Roaring bitmap needs for Z values drawn
  /// from [0, u): 2*Z + 9*(u/65535 + 1) + 8 (Section 4.3). Run containers
  /// and the inline representation only ever go below it.
  static uint64_t MemoryUpperBound(uint64_t z, uint64_t u) {
    return 2 * z + 9 * (u / 65535 + 1) + 8;
  }

  /// Value equality, compared container-wise: keys and cardinalities first,
  /// then per-pair content — word compares for bitset/bitset, vector
  /// compares for same-kind array/run, and containment checks (cardinality
  /// already equal) for mixed kinds. Representation differences (array vs
  /// run vs bitset vs inline) never make equal sets compare unequal.
  bool operator==(const RoaringBitmap& other) const;
  bool operator!=(const RoaringBitmap& other) const { return !(*this == other); }

 private:
  /// An array container converts at 4096 entries — to a run container when
  /// runs encode it smaller than the 8 KiB bitset, to a bitset otherwise.
  static constexpr size_t kArrayToBitsetThreshold = 4096;
  /// A run container with this many runs (4 B each) matches the 8 KiB bitset
  /// and converts.
  static constexpr size_t kRunToBitsetThreshold = 2048;
  static constexpr size_t kWordsPerBitset = 1024;  // 65536 bits

  enum class ContainerKind : uint8_t { kArray, kRun, kBitset };

  struct Container {
    uint16_t key = 0;  // high 16 bits of the values in this container
    ContainerKind kind = ContainerKind::kArray;
    uint32_t card = 0;  // values in this container, maintained by mutators
    /// kArray: sorted values. kRun: flattened (start, length-1) pairs,
    /// sorted by start, disjoint, non-adjacent (canonical form).
    std::vector<uint16_t> vals;
    std::vector<uint64_t> bits;  // kWordsPerBitset words, when kind == kBitset
  };

  // Inline small-set representation: sorted distinct values, used until the
  // set exceeds kInlineCapacity (spilled_ == false <=> containers_ empty).
  uint32_t inline_vals_[kInlineCapacity];
  uint8_t inline_size_ = 0;
  bool spilled_ = false;
  uint64_t cardinality_ = 0;

  // Containers sorted by key; binary search for lookup, tail access for the
  // ordered-append path.
  std::vector<Container> containers_;

  void Spill();
  /// Add into the container list (assumes spilled_). Returns true if the
  /// value was newly inserted.
  bool AddToContainers(uint32_t value);
  /// Ordered append into the container list (assumes spilled_ and value >=
  /// max). Returns true if newly inserted.
  bool AppendToContainers(uint32_t value);
  const Container* Find(uint16_t key) const;

  static bool ContainerContains(const Container& c, uint16_t low);
  static bool ArrayAdd(Container* c, uint16_t low);
  static bool RunAdd(Container* c, uint16_t low);
  static bool BitsetAdd(Container* c, uint16_t low);
  /// Array exceeded the threshold: convert to run or bitset, whichever is
  /// smaller.
  static void ConvertOversizedArray(Container* c);
  static void ArrayToBitset(Container* c);
  static void RunToBitset(Container* c);
  /// A freshly built run list: shrink to array if that is smaller (and
  /// legal), to bitset if the run count exceeds the threshold.
  static void NormalizeRunContainer(Container* c);
  /// dst |= src without rebuilding dst where possible: bitset targets take
  /// word/bit ORs in place, array/run merges go through a reused
  /// thread-local scratch (one assign, no per-call allocation once warm).
  static void UnionContainerInPlace(Container* dst, const Container& src);
  /// Merge the ascending interval streams of `a` and `b` (arrays read as
  /// length-1 intervals) into a canonical run list with its cardinality.
  static void MergeRunsInto(const Container& a, const Container& b,
                            std::vector<uint16_t>* out_runs,
                            uint32_t* out_card);
  static void IntersectPair(Container* dst, const Container& src);
  static bool ContainersEqual(const Container& a, const Container& b);
  static void DecodeContainer(const Container& c, uint32_t* out);
  static void SetBitRange(std::vector<uint64_t>* bits, uint32_t from,
                          uint32_t to);
  static uint32_t Popcount(const std::vector<uint64_t>& bits);
};

}  // namespace spade

#endif  // SPADE_BITMAP_ROARING_H_
