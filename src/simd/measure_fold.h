#ifndef SPADE_SIMD_MEASURE_FOLD_H_
#define SPADE_SIMD_MEASURE_FOLD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace spade {
namespace simd {

/// \brief Runtime-dispatched measure-fold kernels.
///
/// The online critical path of MVDCube (Section 4.3) is the per-group
/// measure fold: gather the per-fact pre-aggregated measure columns
/// (count / sum / min / max) by fact id over the group's dense ascending id
/// span and combine them with the ⊗ of Figure 5. This layer provides that
/// fold as a set of interchangeable kernels — portable scalar, AVX2 (x86),
/// NEON (aarch64) — selected once at runtime (CPUID on x86) and called
/// through a plain function pointer. It deliberately depends on nothing but
/// raw column pointers so every cube algorithm (MVDCube's emit fold,
/// ArrayCube's root-cell fold) and the benches share one definition.
///
/// Determinism contract. All kernels accumulate in the SAME fixed
/// *lane-strided* order: element i of the span (its global rank, counted
/// across the whole span — never per SIMD block) lands in logical lane
/// i mod kFoldLanes, and the final horizontal reduction combines lanes in
/// ascending order (((l0 ⊗ l1) ⊗ l2) ⊗ l3). The lane count is fixed at 4 on
/// every backend — AVX2 uses one 4-wide register, NEON two 2-wide
/// registers, the scalar kernel four accumulator variables — so the result
/// is a pure function of the span contents: bit-identical across scalar vs
/// vector, x86 vs ARM, and every thread / shard / worker configuration
/// (the span itself is configuration-independent: it is the sorted fact-id
/// set of the group). Facts with count[fact] == 0 (measure missing)
/// contribute the fold identity to their lane — +0.0 to count and sum,
/// +inf / -inf to min / max — exactly like a masked vector lane, so the
/// scalar and vector paths agree bitwise with no tolerance.
///
/// Min/max use the comparison form `acc = acc < v ? acc : v` (the exact
/// semantics of x86 MINPD / the NEON compare-and-select), applied
/// per lane and again in the reduction.
///
/// Preconditions: fact ids index into all four columns; count values are
/// < 2^31 (the vector paths convert through signed int32 — per-fact value
/// counts are tiny in practice, debug-asserted at the call sites that build
/// the columns).

/// Logical accumulator lanes — fixed across every backend (see above).
constexpr size_t kFoldLanes = 4;

/// Lane-strided accumulator state. Aligned so vector backends can keep the
/// lanes in registers and spill with aligned stores.
struct alignas(32) FoldAcc {
  double count[kFoldLanes];
  double sum[kFoldLanes];
  double min[kFoldLanes];
  double max[kFoldLanes];

  /// Reset every lane to the fold identity (0, 0, +inf, -inf).
  void Reset();
};

/// Horizontal reduction of one accumulator, lanes combined in ascending
/// order (the one fixed order of the determinism contract).
struct FoldResult {
  double count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
};
FoldResult Reduce(const FoldAcc& acc);

/// Fold `n` facts into `acc` (which the caller Reset()s; a span may be
/// folded in several calls, but lane striding restarts at lane 0 each call,
/// so per-group folds hand the kernel ONE span covering the whole group).
///   facts  STRICTLY ascending fact-id span — both producers satisfy this
///          (bitmap decode yields a sorted set; ArrayCube root cells see
///          each fact at most once because distinct value combinations land
///          in distinct cells), and the vector backends' contiguous-run
///          fast path relies on it
///   count / sum / min / max   the MeasureVector columns
using MeasureFoldFn = void (*)(const uint32_t* facts, size_t n,
                               const uint32_t* count, const double* sum,
                               const double* min, const double* max,
                               FoldAcc* acc);

/// User-facing kernel selection (SpadeOptions / --simd).
enum class SimdMode : uint8_t {
  kAuto = 0,  ///< best kernel the CPU supports (CPUID on x86)
  kScalar,    ///< force the portable lane-strided scalar kernel
};

/// What ResolveFoldKernel actually picked.
enum class FoldKernelKind : uint8_t { kScalar = 0, kAvx2, kNeon };

struct FoldKernel {
  MeasureFoldFn fn = nullptr;
  FoldKernelKind kind = FoldKernelKind::kScalar;
};

/// Resolve `mode` to a concrete kernel. kAuto probes the CPU once (the
/// probe is cached); the environment variable SPADE_SIMD=scalar forces the
/// scalar kernel regardless of `mode` — the CI dispatch-independence job
/// runs the whole test suite under it.
FoldKernel ResolveFoldKernel(SimdMode mode);

const char* FoldKernelKindName(FoldKernelKind kind);
const char* SimdModeName(SimdMode mode);
/// Parse "auto" / "scalar" (the --simd grammar). Returns false on any other
/// input.
bool ParseSimdMode(const std::string& text, SimdMode* mode);

/// The portable kernel, exported directly so the differential tests and
/// benches can pit it against whatever ResolveFoldKernel picked.
void FoldMeasureScalar(const uint32_t* facts, size_t n, const uint32_t* count,
                       const double* sum, const double* min, const double* max,
                       FoldAcc* acc);

}  // namespace simd
}  // namespace spade

#endif  // SPADE_SIMD_MEASURE_FOLD_H_
