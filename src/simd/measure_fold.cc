#include "src/simd/measure_fold.h"

#include <cstdlib>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SPADE_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define SPADE_SIMD_NEON 1
#endif

namespace spade {
namespace simd {

namespace {
constexpr double kPosInf = std::numeric_limits<double>::infinity();
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

void FoldAcc::Reset() {
  for (size_t l = 0; l < kFoldLanes; ++l) {
    count[l] = 0.0;
    sum[l] = 0.0;
    min[l] = kPosInf;
    max[l] = kNegInf;
  }
}

FoldResult Reduce(const FoldAcc& acc) {
  // The one fixed order: ((l0 op l1) op l2) op l3, comparison-form min/max.
  FoldResult r;
  r.count = acc.count[0];
  r.sum = acc.sum[0];
  r.min = acc.min[0];
  r.max = acc.max[0];
  for (size_t l = 1; l < kFoldLanes; ++l) {
    r.count += acc.count[l];
    r.sum += acc.sum[l];
    r.min = r.min < acc.min[l] ? r.min : acc.min[l];
    r.max = r.max > acc.max[l] ? r.max : acc.max[l];
  }
  return r;
}

// Portable kernel. Written in the blend form the vector backends use —
// missing facts (count==0) contribute the identity to their lane instead of
// being skipped, and min/max are the comparison-select of MINPD/MAXPD —
// so every backend produces the same bits.
void FoldMeasureScalar(const uint32_t* facts, size_t n, const uint32_t* count,
                       const double* sum, const double* min, const double* max,
                       FoldAcc* acc) {
  static_assert(kFoldLanes == 4, "lane striding below assumes 4 lanes");
  for (size_t i = 0; i < n; ++i) {
    const size_t lane = i & (kFoldLanes - 1);
    const uint32_t f = facts[i];
    const bool present = count[f] != 0;
    // count==0 converts to +0.0, so the count lane needs no blend; the
    // int32_t hop documents the vector paths' signed-convert precondition.
    const double c = static_cast<double>(static_cast<int32_t>(count[f]));
    const double s = present ? sum[f] : 0.0;
    const double lo = present ? min[f] : kPosInf;
    const double hi = present ? max[f] : kNegInf;
    acc->count[lane] += c;
    acc->sum[lane] += s;
    acc->min[lane] = acc->min[lane] < lo ? acc->min[lane] : lo;
    acc->max[lane] = acc->max[lane] > hi ? acc->max[lane] : hi;
  }
}

#ifdef SPADE_SIMD_X86
// AVX2 kernel, compiled with a per-function target attribute so the
// translation unit needs no special flags and the binary stays runnable on
// pre-AVX2 CPUs (the resolver never hands this pointer out without CPUID).
// One 4-wide register per accumulator = the 4 logical lanes exactly.
__attribute__((target("avx2"))) void FoldMeasureAvx2(
    const uint32_t* facts, size_t n, const uint32_t* count, const double* sum,
    const double* min, const double* max, FoldAcc* acc) {
  // Tiny spans (most lattice cells hold a handful of facts) lose to the
  // fixed cost of spilling/reloading the 16 accumulator lanes; the scalar
  // kernel computes the identical bits, so fall through to it.
  if (n < 16) {
    FoldMeasureScalar(facts, n, count, sum, min, max, acc);
    return;
  }
  const __m256d id_sum = _mm256_setzero_pd();
  const __m256d id_min = _mm256_set1_pd(kPosInf);
  const __m256d id_max = _mm256_set1_pd(kNegInf);
  __m256d acc_count = _mm256_load_pd(acc->count);
  __m256d acc_sum = _mm256_load_pd(acc->sum);
  __m256d acc_min = _mm256_load_pd(acc->min);
  __m256d acc_max = _mm256_load_pd(acc->max);
  size_t i = 0;
  for (; i + kFoldLanes <= n; i += kFoldLanes) {
    __m128i cnt32;
    __m256d v_sum, v_min, v_max;
    if (facts[i] + 3 == facts[i + 3]) {
      // Contiguous run (facts are strictly ascending, so first+3 == last
      // pins all four): plain loads beat gathers by a wide margin, and
      // dense decoded cells are runs almost everywhere.
      const uint32_t f0 = facts[i];
      cnt32 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(count + f0));
      const __m128i miss32 = _mm_cmpeq_epi32(cnt32, _mm_setzero_si128());
      const __m256d miss = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(miss32));
      v_sum = _mm256_blendv_pd(_mm256_loadu_pd(sum + f0), id_sum, miss);
      v_min = _mm256_blendv_pd(_mm256_loadu_pd(min + f0), id_min, miss);
      v_max = _mm256_blendv_pd(_mm256_loadu_pd(max + f0), id_max, miss);
    } else {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(facts + i));
      cnt32 = _mm_i32gather_epi32(reinterpret_cast<const int*>(count), idx, 4);
      const __m128i miss32 = _mm_cmpeq_epi32(cnt32, _mm_setzero_si128());
      const __m256d present = _mm256_castsi256_pd(_mm256_xor_si256(
          _mm256_cvtepi32_epi64(miss32), _mm256_set1_epi64x(-1)));
      v_sum = _mm256_mask_i32gather_pd(id_sum, sum, idx, present, 8);
      v_min = _mm256_mask_i32gather_pd(id_min, min, idx, present, 8);
      v_max = _mm256_mask_i32gather_pd(id_max, max, idx, present, 8);
    }
    // Signed convert — the count < 2^31 precondition; count==0 lanes become
    // +0.0 so the count accumulator needs no mask (it never goes negative,
    // so adding +0.0 is bit-exact).
    acc_count = _mm256_add_pd(acc_count, _mm256_cvtepi32_pd(cnt32));
    acc_sum = _mm256_add_pd(acc_sum, v_sum);
    acc_min = _mm256_min_pd(acc_min, v_min);  // a < b ? a : b, per lane
    acc_max = _mm256_max_pd(acc_max, v_max);  // a > b ? a : b, per lane
  }
  _mm256_store_pd(acc->count, acc_count);
  _mm256_store_pd(acc->sum, acc_sum);
  _mm256_store_pd(acc->min, acc_min);
  _mm256_store_pd(acc->max, acc_max);
  // Tail (< 4 facts) resumes at lane 0 — i is a multiple of kFoldLanes here,
  // so the scalar kernel's lane striding lines up exactly.
  if (i < n) FoldMeasureScalar(facts + i, n - i, count, sum, min, max, acc);
}
#endif  // SPADE_SIMD_X86

#ifdef SPADE_SIMD_NEON
// NEON kernel: two 2-wide registers per accumulator, register pair
// {0,1} / {2,3} = the 4 logical lanes in order. No gather instruction on
// NEON, so elements are picked up scalar and combined vector-wide; min/max
// go through compare-and-select (NOT vminq/vmaxq, whose NaN behaviour
// differs from the comparison form the other backends use).
void FoldMeasureNeon(const uint32_t* facts, size_t n, const uint32_t* count,
                     const double* sum, const double* min, const double* max,
                     FoldAcc* acc) {
  float64x2_t acc_count_lo = vld1q_f64(acc->count);
  float64x2_t acc_count_hi = vld1q_f64(acc->count + 2);
  float64x2_t acc_sum_lo = vld1q_f64(acc->sum);
  float64x2_t acc_sum_hi = vld1q_f64(acc->sum + 2);
  float64x2_t acc_min_lo = vld1q_f64(acc->min);
  float64x2_t acc_min_hi = vld1q_f64(acc->min + 2);
  float64x2_t acc_max_lo = vld1q_f64(acc->max);
  float64x2_t acc_max_hi = vld1q_f64(acc->max + 2);
  size_t i = 0;
  for (; i + kFoldLanes <= n; i += kFoldLanes) {
    double c[4], s[4], lo[4], hi[4];
    for (size_t l = 0; l < 4; ++l) {
      const uint32_t f = facts[i + l];
      const bool present = count[f] != 0;
      c[l] = static_cast<double>(static_cast<int32_t>(count[f]));
      s[l] = present ? sum[f] : 0.0;
      lo[l] = present ? min[f] : kPosInf;
      hi[l] = present ? max[f] : kNegInf;
    }
    acc_count_lo = vaddq_f64(acc_count_lo, vld1q_f64(c));
    acc_count_hi = vaddq_f64(acc_count_hi, vld1q_f64(c + 2));
    acc_sum_lo = vaddq_f64(acc_sum_lo, vld1q_f64(s));
    acc_sum_hi = vaddq_f64(acc_sum_hi, vld1q_f64(s + 2));
    const float64x2_t v_min_lo = vld1q_f64(lo);
    const float64x2_t v_min_hi = vld1q_f64(lo + 2);
    const float64x2_t v_max_lo = vld1q_f64(hi);
    const float64x2_t v_max_hi = vld1q_f64(hi + 2);
    acc_min_lo = vbslq_f64(vcltq_f64(acc_min_lo, v_min_lo), acc_min_lo, v_min_lo);
    acc_min_hi = vbslq_f64(vcltq_f64(acc_min_hi, v_min_hi), acc_min_hi, v_min_hi);
    acc_max_lo = vbslq_f64(vcgtq_f64(acc_max_lo, v_max_lo), acc_max_lo, v_max_lo);
    acc_max_hi = vbslq_f64(vcgtq_f64(acc_max_hi, v_max_hi), acc_max_hi, v_max_hi);
  }
  vst1q_f64(acc->count, acc_count_lo);
  vst1q_f64(acc->count + 2, acc_count_hi);
  vst1q_f64(acc->sum, acc_sum_lo);
  vst1q_f64(acc->sum + 2, acc_sum_hi);
  vst1q_f64(acc->min, acc_min_lo);
  vst1q_f64(acc->min + 2, acc_min_hi);
  vst1q_f64(acc->max, acc_max_lo);
  vst1q_f64(acc->max + 2, acc_max_hi);
  if (i < n) FoldMeasureScalar(facts + i, n - i, count, sum, min, max, acc);
}
#endif  // SPADE_SIMD_NEON

namespace {
// SPADE_SIMD=scalar forces the portable kernel process-wide; the CI
// dispatch-independence job runs the entire test suite under it without
// touching any call site.
bool ScalarForcedByEnv() {
  static const bool forced = [] {
    const char* env = std::getenv("SPADE_SIMD");
    return env != nullptr && std::string(env) == "scalar";
  }();
  return forced;
}
}  // namespace

FoldKernel ResolveFoldKernel(SimdMode mode) {
  FoldKernel k{&FoldMeasureScalar, FoldKernelKind::kScalar};
  if (mode == SimdMode::kScalar || ScalarForcedByEnv()) return k;
#if defined(SPADE_SIMD_X86)
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (has_avx2) {
    k.fn = &FoldMeasureAvx2;
    k.kind = FoldKernelKind::kAvx2;
  }
#elif defined(SPADE_SIMD_NEON)
  k.fn = &FoldMeasureNeon;
  k.kind = FoldKernelKind::kNeon;
#endif
  return k;
}

const char* FoldKernelKindName(FoldKernelKind kind) {
  switch (kind) {
    case FoldKernelKind::kScalar:
      return "scalar";
    case FoldKernelKind::kAvx2:
      return "avx2";
    case FoldKernelKind::kNeon:
      return "neon";
  }
  return "unknown";
}

const char* SimdModeName(SimdMode mode) {
  return mode == SimdMode::kScalar ? "scalar" : "auto";
}

bool ParseSimdMode(const std::string& text, SimdMode* mode) {
  if (text == "auto") {
    *mode = SimdMode::kAuto;
    return true;
  }
  if (text == "scalar") {
    *mode = SimdMode::kScalar;
    return true;
  }
  return false;
}

}  // namespace simd
}  // namespace spade
