#ifndef SPADE_CORE_CFS_H_
#define SPADE_CORE_CFS_H_

#include <vector>

#include "src/core/aggregate.h"
#include "src/summary/summary.h"

namespace spade {

/// Options of Candidate Fact Set Selection (Section 3, step 1).
struct CfsOptions {
  /// Sets smaller than this are not worth aggregating.
  size_t min_size = 20;
  /// Keep at most this many sets (largest first).
  size_t max_sets = 64;
  bool type_based = true;
  bool summary_based = true;
  /// Property-based selection: each entry is a set of property TermIds; the
  /// CFS is all nodes having *all* of those outgoing properties.
  std::vector<std::vector<TermId>> property_sets;
};

/// Identify candidate fact sets using the three strategies of the paper:
/// (i) type-based (one CFS per rdf:type value), (ii) property-based (caller
/// supplied property sets), (iii) summary-based (RDFQuotient weak-equivalence
/// classes). Duplicated member sets are merged, keeping the first name.
/// `summary` may be null when summary-based selection is disabled.
std::vector<CandidateFactSet> SelectCandidateFactSets(
    const Graph& graph, const StructuralSummary* summary,
    const CfsOptions& options);

}  // namespace spade

#endif  // SPADE_CORE_CFS_H_
